// Quickstart: schedule a small LU factorization on a 4x4 PIM array and
// compare the three schedulers against the row-wise baseline.
package main

import (
	"fmt"
	"log"

	pim "repro"
)

func main() {
	// A 4x4 processor array and a 16x16 data matrix, factored by LU;
	// one execution window per elimination step.
	g := pim.SquareGrid(4)
	tr := pim.LU{}.Generate(16, g)

	// The paper's memory budget: twice the minimum per processor.
	capacity := pim.PaperCapacity(tr.NumData, g.NumProcs())
	p := pim.NewProblem(tr, capacity)

	// The straightforward baseline keeps each matrix element on the
	// processor the row-wise distribution gives it, for the whole run.
	baseline, err := (pim.Fixed{
		Label:  "row-wise",
		Assign: pim.RowWise(pim.SquareMatrix(16), g),
	}).Schedule(p)
	if err != nil {
		log.Fatal(err)
	}
	base := p.Model.TotalCost(baseline)
	fmt.Printf("row-wise baseline: %d\n", base)

	for _, s := range []pim.Scheduler{pim.SCDS{}, pim.LOMCDS{}, pim.GOMCDS{}} {
		schedule, err := s.Schedule(p)
		if err != nil {
			log.Fatal(err)
		}
		b := p.Model.Evaluate(schedule)
		fmt.Printf("%-7s residence %6d + movement %5d = %6d  (%.1f%% better)\n",
			s.Name(), b.Residence, b.Move, b.Total(),
			100*float64(base-b.Total())/float64(base))
	}
}
