// LU walks through scheduling LU factorization — the paper's benchmark
// 1 — in detail: it generates the per-step reference strings, schedules
// them with GOMCDS, applies execution-window grouping on top of LOMCDS,
// and shows how the active region (and with it the optimal data
// placement) shrinks toward the bottom-right corner as elimination
// proceeds.
package main

import (
	"fmt"
	"log"

	pim "repro"
)

func main() {
	const n = 16
	g := pim.SquareGrid(4)
	tr := pim.LU{}.Generate(n, g)
	fmt.Printf("LU %dx%d on %v: %d windows (one per elimination step), %d refs\n\n",
		n, n, g, tr.NumWindows(), tr.NumRefs())

	p := pim.NewProblem(tr, pim.PaperCapacity(tr.NumData, g.NumProcs()))

	// Track the pivot element's center across windows under GOMCDS: as
	// elimination proceeds the hot region moves, and so do the centers.
	gom, err := pim.GOMCDS{}.Schedule(p)
	if err != nil {
		log.Fatal(err)
	}
	m := pim.SquareMatrix(n)
	last := m.ID(n-1, n-1) // the final pivot, touched by every step
	fmt.Println("center of the final pivot element A(n-1,n-1) per window:")
	for w := 0; w < tr.NumWindows(); w++ {
		fmt.Printf("  step %2d -> processor %v\n", w, g.Coord(gom.Centers[w][last]))
	}

	// Compare plain LOMCDS against LOMCDS with window grouping.
	lom, err := pim.LOMCDS{}.Schedule(p)
	if err != nil {
		log.Fatal(err)
	}
	grp := pim.GreedyGrouping(p, pim.LocalCenters)
	grouped, err := pim.GroupSchedule(p, grp, pim.LocalCenters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLOMCDS total cost:          %d\n", p.Model.TotalCost(lom))
	fmt.Printf("LOMCDS + grouping:          %d\n", p.Model.TotalCost(grouped))
	fmt.Printf("GOMCDS total cost:          %d\n", p.Model.TotalCost(gom))
}
