// Online demonstrates run-time data scheduling: an application's
// reference strings are captured window by window with the Recorder
// (as an instrumented program would), and placements are decided
// without knowledge of future windows. The three online policies are
// compared against the clairvoyant offline optimum on a workload whose
// hot set drifts, oscillates and then settles.
package main

import (
	"fmt"
	"log"

	pim "repro"
)

func main() {
	g := pim.SquareGrid(4)
	const items = 32
	rec := pim.NewRecorder(g, items)

	// Phase A (drift): the hot reader walks across the array.
	for w := 0; w < 6; w++ {
		for d := 0; d < items; d++ {
			rec.TouchVolume((w*3+d)%16, pim.DataID(d), 4)
		}
		rec.Barrier()
	}
	// Phase B (oscillation): references alternate between two corners,
	// with small volume — moving every window would be wasteful.
	for w := 0; w < 6; w++ {
		corner := 0
		if w%2 == 1 {
			corner = 15
		}
		for d := 0; d < items; d++ {
			rec.Touch(corner, pim.DataID(d))
		}
		rec.Barrier()
	}
	// Phase C (settle): everything is consumed at the center, heavily
	// and for a long time — policies that never adapt keep paying.
	for w := 0; w < 10; w++ {
		for d := 0; d < items; d++ {
			rec.TouchVolume(g.Center(), pim.DataID(d), 8)
		}
		rec.Barrier()
	}
	tr := rec.Finish()

	// Items are four units large: relocating one costs four times its
	// travel distance, so chasing every hot-spot flip is expensive.
	model := pim.NewModel(tr)
	for d := range model.DataSize {
		model.DataSize[d] = 4
	}
	p := pim.NewProblemFromModel(model, pim.PaperCapacity(items, g.NumProcs()))
	offline, err := pim.GOMCDS{}.Schedule(p)
	if err != nil {
		log.Fatal(err)
	}
	offCost := p.Model.TotalCost(offline)
	fmt.Printf("captured trace: %d windows, %d refs\n", tr.NumWindows(), tr.NumRefs())
	fmt.Printf("offline optimum (GOMCDS): %d\n\n", offCost)

	for _, policy := range []pim.OnlinePolicy{pim.StayPut, pim.Chase, pim.Hysteresis} {
		s, err := (pim.OnlineScheduler{Policy: policy}).Schedule(p)
		if err != nil {
			log.Fatal(err)
		}
		c := p.Model.TotalCost(s)
		fmt.Printf("%-18s total %6d  (%.2fx offline optimum)\n",
			(pim.OnlineScheduler{Policy: policy}).Name(), c, float64(c)/float64(offCost))
	}
	fmt.Println("\nStay-put loses on the drift phase, chase loses on the")
	fmt.Println("oscillation phase; the rent-or-buy hysteresis rule stays")
	fmt.Println("within a small factor of the clairvoyant schedule on all three.")
}
