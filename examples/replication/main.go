// Replication relaxes the paper's one-copy-per-item assumption on the
// matrix-square benchmark, whose k-panel is broadcast to every
// processor each window — the access pattern where read-only replicas
// pay off most. It sweeps the per-item copy bound and reports where the
// extra memory stops buying communication.
package main

import (
	"fmt"
	"log"

	pim "repro"
)

func main() {
	const n = 16
	g := pim.SquareGrid(4)
	tr := pim.MatSquare{}.Generate(n, g)
	p := pim.NewProblem(tr, pim.PaperCapacity(tr.NumData, g.NumProcs()))

	single, err := pim.GOMCDS{}.Schedule(p)
	if err != nil {
		log.Fatal(err)
	}
	base := p.Model.TotalCost(single)
	fmt.Printf("matrix square %dx%d on %v; single-copy GOMCDS cost %d\n\n", n, n, g, base)
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "copies", "serve", "replicate", "total", "vs GOMCDS")
	for _, k := range []int{1, 2, 4, 8} {
		s, err := (pim.ReplicaGreedy{MaxCopies: k}).Schedule(p)
		if err != nil {
			log.Fatal(err)
		}
		bd := pim.EvaluateReplicas(p, s)
		fmt.Printf("%-8d %10d %10d %10d %9.2fx\n",
			k, bd.Serve, bd.Replicate, bd.Total(), float64(bd.Total())/float64(base))
	}
	fmt.Println("\nEach window broadcasts row k and column k of A to all")
	fmt.Println("processors; replicas cut the serving distance toward zero while")
	fmt.Println("the materialization cost grows only linearly in the copy count,")
	fmt.Println("so the total keeps dropping until memory or diminishing")
	fmt.Println("broadcast radius stops it.")
}
