#!/usr/bin/env bash
# End-to-end cluster walkthrough: start three pimserve shards with
# peer fill enabled, put pimrouter in front of them, schedule a few
# distinct traces through the router, and show that (a) each trace's
# residence table was built on exactly one shard and (b) the router's
# ring and routing counters tell the story. Requires curl; jq
# prettifies output when available.
set -euo pipefail
cd "$(dirname "$0")/../.."

BASE_PORT="${BASE_PORT:-18090}"
ROUTER_PORT=$((BASE_PORT + 3))

go build -o /tmp/pimserve ./cmd/pimserve
go build -o /tmp/pimrouter ./cmd/pimrouter
go build -o /tmp/pimtrace ./cmd/pimtrace

PIDS=()
trap 'for p in "${PIDS[@]}"; do kill -TERM "$p" 2>/dev/null; done; for p in "${PIDS[@]}"; do wait "$p" 2>/dev/null || true; done' EXIT

BACKENDS=""
for i in 0 1 2; do
	PORT=$((BASE_PORT + i))
	/tmp/pimserve -addr "localhost:$PORT" -peer-fill &
	PIDS+=($!)
	BACKENDS="${BACKENDS:+$BACKENDS,}localhost:$PORT"
done
/tmp/pimrouter -addr "localhost:$ROUTER_PORT" -backends "$BACKENDS" &
PIDS+=($!)
ROUTER="http://localhost:$ROUTER_PORT"

for _ in $(seq 50); do
	curl -sf "$ROUTER/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done

echo "== schedule six distinct traces through the router =="
for n in 4 5 6 7 8 9; do
	TRACE="$(/tmp/pimtrace -gen lu -n "$n" -grid 2x2)"
	BODY="$(printf '%s' "$TRACE" | python3 -c 'import json,sys; print(json.dumps({"trace": sys.stdin.read(), "algorithm": "scds"}))' 2>/dev/null ||
		printf '%s' "$TRACE" | awk 'BEGIN{RS="\0"} {gsub(/\\/,"\\\\"); gsub(/"/,"\\\""); gsub(/\n/,"\\n"); printf "{\"trace\": \"%s\", \"algorithm\": \"scds\"}", $0}')"
	COST="$(curl -s -X POST "$ROUTER/schedule" -d "$BODY" |
		(jq -c '{fingerprint, cost}' 2>/dev/null || cat))"
	echo "lu n=$n -> $COST"
done

echo
echo "== per-shard cache telemetry (each table built exactly once) =="
for i in 0 1 2; do
	PORT=$((BASE_PORT + i))
	STATS="$(curl -s "http://localhost:$PORT/stats" |
		(jq -c '{requests, tables_built, cache_hits, peer_fills}' 2>/dev/null || cat))"
	echo "shard :$PORT $STATS"
done

echo
echo "== router stats (ring membership, retries, ejections) =="
curl -s "$ROUTER/stats" | (jq . 2>/dev/null || cat)
