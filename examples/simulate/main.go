// Simulate runs the CODE benchmark through the mesh interconnect
// simulator under every scheduling scheme, showing that the analytic
// communication-cost reductions translate into shorter simulated
// execution (fewer cycles), and how link bandwidth changes the picture.
package main

import (
	"fmt"
	"log"

	pim "repro"
	"repro/internal/placement"
)

func main() {
	const n = 16
	g := pim.SquareGrid(4)
	tr := pim.Code{Seed: 1998}.Generate(n, g)
	p := pim.NewProblem(tr, pim.PaperCapacity(tr.NumData, g.NumProcs()))

	schemes := []pim.Scheduler{
		pim.Fixed{Label: "S.F.", Assign: placement.RowWise(pim.SquareMatrix(n), g)},
		pim.SCDS{},
		pim.LOMCDS{},
		pim.GOMCDS{},
	}

	for _, bw := range []int{1, 4} {
		fmt.Printf("link bandwidth %d flit/cycle:\n", bw)
		fmt.Printf("  %-8s %10s %12s %10s\n", "scheme", "cycles", "flit-hops", "max-link")
		for _, s := range schemes {
			schedule, err := s.Schedule(p)
			if err != nil {
				log.Fatal(err)
			}
			res, err := pim.Simulate(tr, schedule, pim.SimOptions{LinkBandwidth: bw})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s %10d %12d %10d\n", s.Name(), res.Cycles, res.FlitHops, res.MaxLinkFlits)
		}
		fmt.Println()
	}
	fmt.Println("Flit-hops equal the analytic total communication cost; cycles")
	fmt.Println("additionally expose link contention, which the schedulers also")
	fmt.Println("reduce by spreading traffic over shorter routes.")
}
