// Matmul schedules the matrix-square benchmark (the paper's benchmark
// 2) and compares how the choice of iteration partition — 2-D block,
// row block, cyclic — interacts with data scheduling: scheduling
// recovers much of the communication a poor partition causes, but the
// combination of a block partition and GOMCDS is strongest.
package main

import (
	"fmt"
	"log"

	pim "repro"
	"repro/internal/workload"
)

func main() {
	const n = 16
	g := pim.SquareGrid(4)

	partitions := []struct {
		name string
		part pim.IterationPartition
	}{
		{"block", workload.BlockPartition},
		{"row", workload.RowPartition},
		{"cyclic", workload.CyclicPartition},
	}

	fmt.Printf("matrix square, %dx%d data on %v array\n\n", n, n, g)
	fmt.Printf("%-8s %12s %12s %12s\n", "partition", "row-wise", "SCDS", "GOMCDS")
	for _, pt := range partitions {
		tr := pim.MatSquare{Part: pt.part}.Generate(n, g)
		p := pim.NewProblem(tr, pim.PaperCapacity(tr.NumData, g.NumProcs()))

		base, err := (pim.Fixed{
			Label:  "row-wise",
			Assign: pim.RowWise(pim.SquareMatrix(n), g),
		}).Schedule(p)
		if err != nil {
			log.Fatal(err)
		}
		scds, err := pim.SCDS{}.Schedule(p)
		if err != nil {
			log.Fatal(err)
		}
		gom, err := pim.GOMCDS{}.Schedule(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12d %12d %12d\n", pt.name,
			p.Model.TotalCost(base), p.Model.TotalCost(scds), p.Model.TotalCost(gom))
	}
	fmt.Println("\nThe iteration partition fixes who computes each product;")
	fmt.Println("data scheduling then places the operands. A cache-friendly")
	fmt.Println("block partition plus GOMCDS gives the lowest communication.")
}
