#!/usr/bin/env bash
# End-to-end pimserve walkthrough: start the server on an ephemeral
# port, schedule the same trace twice (the second request is a cache
# hit), show the verified cost and the cache telemetry, then shut the
# server down gracefully. Requires curl; uses jq to build a request
# from a freshly generated trace when available, otherwise falls back
# to the committed request.json.
set -euo pipefail
cd "$(dirname "$0")/../.."

PORT="${PORT:-18080}"
BASE="http://localhost:$PORT"

go build -o /tmp/pimserve ./cmd/pimserve
/tmp/pimserve -addr "localhost:$PORT" &
SERVER=$!
trap 'kill -TERM $SERVER 2>/dev/null; wait $SERVER 2>/dev/null || true' EXIT

for _ in $(seq 50); do
	curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done

REQ=examples/pimserve/request.json
if command -v jq >/dev/null; then
	# Build the same request from scratch: a pimtrace v1 trace goes
	# inline as a JSON string.
	go run ./cmd/pimtrace -gen lu -n 8 -grid 4x4 |
		jq -Rs '{trace: ., algorithm: "gomcds", capacity: 8}' > /tmp/pimserve-request.json
	REQ=/tmp/pimserve-request.json
fi

echo "== first request (cache miss, verify=true) =="
curl -s -X POST "$BASE/schedule?verify=true" --data-binary @"$REQ" |
	(jq 'del(.centers)' 2>/dev/null || cat)

echo "== second request, same trace (cache hit) =="
curl -s -X POST "$BASE/schedule" --data-binary @"$REQ" |
	(jq '{algorithm, cost, fingerprint, cache_hit}' 2>/dev/null || cat)

echo "== incremental session: create, delta, reschedule =="
# A session owns its own model + residence table; deltas patch them in
# place and reschedules only re-run the DP over the dirtied suffix
# (watch layers_recomputed shrink between the two schedules).
SREQ="$REQ"
if command -v jq >/dev/null; then
	# Unbounded capacity keeps the session on the incremental DP path.
	jq '{trace, algorithm, capacity: 0}' "$REQ" > /tmp/pimserve-session.json
	SREQ=/tmp/pimserve-session.json
fi
CREATED="$(curl -s -X POST "$BASE/session" --data-binary @"$SREQ")"
echo "$CREATED" | (jq '{session_id, num_windows, seq, fingerprint}' 2>/dev/null || cat)
SID="$(echo "$CREATED" | sed -n 's/.*"session_id": "\([^"]*\)".*/\1/p')"
echo "-- cold schedule (all layers) --"
curl -s -X POST "$BASE/session/$SID/schedule" |
	(jq '{cost, layers_recomputed, cached}' 2>/dev/null || cat)
echo "-- delta: rewrite item 0's volumes in window 0 --"
curl -s -X POST "$BASE/session/$SID/delta" \
	--data '{"op":"edit_item","window":0,"data":0,"volumes":[3,0,0,0,0,0,0,0,0,0,0,0,0,0,0,1]}' |
	(jq '{seq, fingerprint, num_windows}' 2>/dev/null || cat)
echo "-- reschedule (only the edited item's suffix) --"
curl -s -X POST "$BASE/session/$SID/schedule" |
	(jq '{cost, layers_recomputed, cached}' 2>/dev/null || cat)
curl -s -X DELETE "$BASE/session/$SID" -o /dev/null

echo "== /stats: one table built, one cache hit =="
curl -s "$BASE/stats"

echo "== /metrics: request counters and per-stage latency histograms =="
curl -s "$BASE/metrics" | grep -E '^pim_(requests_total|cache_(hits|misses)_total|tables_built_total) '
curl -s "$BASE/metrics" | grep -c '^pim_stage_duration_seconds_bucket' |
	xargs -I{} echo "({} stage histogram buckets; full scrape: curl $BASE/metrics)"

echo "== graceful shutdown =="
kill -TERM $SERVER
wait $SERVER || true
trap - EXIT
echo "done"
