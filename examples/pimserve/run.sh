#!/usr/bin/env bash
# End-to-end pimserve walkthrough: start the server on an ephemeral
# port, schedule the same trace twice (the second request is a cache
# hit), show the verified cost and the cache telemetry, then shut the
# server down gracefully. Requires curl; uses jq to build a request
# from a freshly generated trace when available, otherwise falls back
# to the committed request.json.
set -euo pipefail
cd "$(dirname "$0")/../.."

PORT="${PORT:-18080}"
BASE="http://localhost:$PORT"

go build -o /tmp/pimserve ./cmd/pimserve
/tmp/pimserve -addr "localhost:$PORT" &
SERVER=$!
trap 'kill -TERM $SERVER 2>/dev/null; wait $SERVER 2>/dev/null || true' EXIT

for _ in $(seq 50); do
	curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done

REQ=examples/pimserve/request.json
if command -v jq >/dev/null; then
	# Build the same request from scratch: a pimtrace v1 trace goes
	# inline as a JSON string.
	go run ./cmd/pimtrace -gen lu -n 8 -grid 4x4 |
		jq -Rs '{trace: ., algorithm: "gomcds", capacity: 8}' > /tmp/pimserve-request.json
	REQ=/tmp/pimserve-request.json
fi

echo "== first request (cache miss, verify=true) =="
curl -s -X POST "$BASE/schedule?verify=true" --data-binary @"$REQ" |
	(jq 'del(.centers)' 2>/dev/null || cat)

echo "== second request, same trace (cache hit) =="
curl -s -X POST "$BASE/schedule" --data-binary @"$REQ" |
	(jq '{algorithm, cost, fingerprint, cache_hit}' 2>/dev/null || cat)

echo "== /stats: one table built, one cache hit =="
curl -s "$BASE/stats"

echo "== /metrics: request counters and per-stage latency histograms =="
curl -s "$BASE/metrics" | grep -E '^pim_(requests_total|cache_(hits|misses)_total|tables_built_total) '
curl -s "$BASE/metrics" | grep -c '^pim_stage_duration_seconds_bucket' |
	xargs -I{} echo "({} stage histogram buckets; full scrape: curl $BASE/metrics)"

echo "== graceful shutdown =="
kill -TERM $SERVER
wait $SERVER || true
trap - EXIT
echo "done"
