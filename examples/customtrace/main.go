// Customtrace shows the full user workflow for an application that is
// not one of the built-in kernels: build a reference-string trace by
// hand (or from a profiler), persist it in the pimtrace text format,
// load it back, and schedule it. The workload is a two-phase pipeline
// whose readers shift from the left half of the array to the right half
// between phases — exactly the case where multiple-center scheduling
// pays off over any single placement.
package main

import (
	"bytes"
	"fmt"
	"log"

	pim "repro"
)

func main() {
	g := pim.SquareGrid(4)
	const items = 16
	tr := pim.NewTrace(g, items)

	// Phase 1 (windows 0-3): processors on the left half of the array
	// consume the items heavily.
	for w := 0; w < 4; w++ {
		win := tr.AddWindow()
		for d := 0; d < items; d++ {
			proc := g.Index(pim.Coord{X: d % 2, Y: (d / 2) % 4})
			win.AddVolume(proc, pim.DataID(d), 3)
		}
	}
	// Phase 2 (windows 4-7): the right half takes over the same items.
	for w := 0; w < 4; w++ {
		win := tr.AddWindow()
		for d := 0; d < items; d++ {
			proc := g.Index(pim.Coord{X: 2 + d%2, Y: (d / 2) % 4})
			win.AddVolume(proc, pim.DataID(d), 3)
		}
	}

	// Persist and reload (a real application would write a file).
	var buf bytes.Buffer
	if err := pim.EncodeTrace(&buf, tr); err != nil {
		log.Fatal(err)
	}
	encoded := buf.Len()
	loaded, err := pim.DecodeTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d windows, %d refs, %d bytes encoded\n\n",
		loaded.NumWindows(), loaded.NumRefs(), encoded)

	p := pim.NewProblem(loaded, pim.PaperCapacity(items, g.NumProcs()))
	for _, s := range []pim.Scheduler{pim.SCDS{}, pim.LOMCDS{}, pim.GOMCDS{}} {
		schedule, err := s.Schedule(p)
		if err != nil {
			log.Fatal(err)
		}
		b := p.Model.Evaluate(schedule)
		fmt.Printf("%-7s residence %5d + movement %3d = %5d\n",
			s.Name(), b.Residence, b.Move, b.Total())
	}
	fmt.Println("\nA single center must sit between the two reader sets and pay")
	fmt.Println("remote references in every window; the multiple-center")
	fmt.Println("schedulers serve both phases locally and pay one short move at")
	fmt.Println("the phase break.")
}
