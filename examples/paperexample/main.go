// Paperexample reproduces the worked example of the paper's Section
// 3.3: a single data item D on a 4x4 array over four execution windows,
// scheduled by SCDS, LOMCDS and GOMCDS. It prints the chosen center of
// every window and the resulting total communication cost, showing why
// the globally optimal center sequence beats both the single center and
// the per-window local optima.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/grid"
)

func main() {
	res, err := experiments.Example331()
	if err != nil {
		log.Fatal(err)
	}
	g := grid.Square(4)
	fmt.Print(experiments.FormatExample(g, res))

	fmt.Println("\nPer-window reference volumes for data D:")
	counts := res.Trace.BuildCounts()
	for w := range counts {
		fmt.Printf("  window %d:", w)
		for p, v := range counts[w][0] {
			if v != 0 {
				fmt.Printf(" %v x%d", g.Coord(p), v)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nGOMCDS holds the window-0 center through window 2 (moving")
	fmt.Println("would cost more than serving window 1 remotely) and moves")
	fmt.Println("only for the final window, achieving the lowest total cost.")
}
