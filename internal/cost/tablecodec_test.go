package cost

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/trace"
	"repro/internal/workload"
)

func builtTable(t *testing.T) (trace.Fingerprint, ResidenceTable) {
	t.Helper()
	gen, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(6, grid.Square(3))
	m := NewModel(tr)
	return tr.Fingerprint(), m.BuildResidenceTable()
}

func TestTableCodecRoundTrip(t *testing.T) {
	fp, table := builtTable(t)
	payload := EncodeTable(fp, table)
	gotFP, got, err := DecodeTable(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Fatalf("fingerprint %s, want %s", gotFP, fp)
	}
	if got.NumWindows() != table.NumWindows() || got.NumData() != table.NumData() || got.NumProcs() != table.NumProcs() {
		t.Fatalf("shape %dx%dx%d, want %dx%dx%d",
			got.NumWindows(), got.NumData(), got.NumProcs(),
			table.NumWindows(), table.NumData(), table.NumProcs())
	}
	if !bytes.Equal(int64Bytes(got.Cells()), int64Bytes(table.Cells())) {
		t.Fatal("decoded cells differ from original")
	}
	// The decoded table owns fresh backing: mutating it must not alias
	// the payload or the original.
	if len(got.Cells()) > 0 {
		got.Cells()[0]++
		if got.Cells()[0] == table.Cells()[0] {
			t.Fatal("decoded table aliases the original")
		}
	}
}

func int64Bytes(cells []int64) []byte {
	out := make([]byte, 0, 8*len(cells))
	for _, c := range cells {
		out = binary.LittleEndian.AppendUint64(out, uint64(c))
	}
	return out
}

func TestTableCodecRoundTripEmpty(t *testing.T) {
	var fp trace.Fingerprint
	fp[0] = 0xab
	table := NewResidenceTable(0, 3, 9)
	gotFP, got, err := DecodeTable(EncodeTable(fp, table))
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp || got.NumWindows() != 0 || got.NumData() != 3 || got.NumProcs() != 9 {
		t.Fatalf("empty table round-trip: fp %s shape %dx%dx%d", gotFP, got.NumWindows(), got.NumData(), got.NumProcs())
	}
}

func TestTableCodecRejectsCorruption(t *testing.T) {
	fp, table := builtTable(t)
	payload := EncodeTable(fp, table)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(p []byte) []byte { return nil }, "header needs"},
		{"short header", func(p []byte) []byte { return p[:tableCodecHeaderLen-1] }, "header needs"},
		{"wrong magic", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			q[0] ^= 0xff
			return q
		}, "wrong magic"},
		{"truncated cells", func(p []byte) []byte { return p[:len(p)-5] }, "cell bytes"},
		{"trailing junk", func(p []byte) []byte { return append(append([]byte(nil), p...), 0, 1, 2) }, "cell bytes"},
		{"oversized shape", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			// Overwrite numWindows with a value whose cell count would
			// overflow a naive nw*nd*np multiplication.
			binary.LittleEndian.PutUint64(q[len(tableCodecMagic)+32:], 1<<62)
			return q
		}, "out of range"},
		{"huge but in-range shape", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			binary.LittleEndian.PutUint64(q[len(tableCodecMagic)+32:], 1<<31-1)
			binary.LittleEndian.PutUint64(q[len(tableCodecMagic)+40:], 1<<31-1)
			binary.LittleEndian.PutUint64(q[len(tableCodecMagic)+48:], 1<<31-1)
			return q
		}, "cell limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeTable(tc.mutate(payload))
			if err == nil {
				t.Fatal("DecodeTable accepted a corrupt payload")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// FuzzTableCodec feeds arbitrary payloads to DecodeTable: it must never
// panic, and anything it does accept must re-encode to the exact bytes
// it decoded from (the format has no redundancy, so decode∘encode is
// the identity on valid payloads).
func FuzzTableCodec(f *testing.F) {
	var fp trace.Fingerprint
	f.Add([]byte{})
	f.Add([]byte(tableCodecMagic))
	f.Add(EncodeTable(fp, NewResidenceTable(0, 0, 0)))
	f.Add(EncodeTable(fp, NewResidenceTable(1, 1, 1)))
	f.Add(EncodeTable(fp, NewResidenceTable(2, 3, 4)))
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, table, err := DecodeTable(data)
		if err != nil {
			return
		}
		if got := EncodeTable(fp, table); !bytes.Equal(got, data) {
			t.Fatalf("decode/encode of %d-byte payload not the identity", len(data))
		}
	})
}
