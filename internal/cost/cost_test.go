package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/trace"
)

// twoWindowTrace: 2x2 grid, 2 data items, 2 windows.
//
//	window 0: proc 0 refs data 0 twice; proc 3 refs data 0 once;
//	          proc 1 refs data 1 once.
//	window 1: proc 3 refs data 0 three times.
func twoWindowTrace() *trace.Trace {
	tr := trace.New(grid.Square(2), 2)
	w0 := tr.AddWindow()
	w0.AddVolume(0, 0, 2)
	w0.Add(3, 0)
	w0.Add(1, 1)
	w1 := tr.AddWindow()
	w1.AddVolume(3, 0, 3)
	return tr
}

func TestResidenceHandComputed(t *testing.T) {
	m := NewModel(twoWindowTrace())
	// Window 0, data 0 at proc 0: 2*0 (proc 0) + 1*dist(3,0)=2 -> 2.
	if got := m.Residence(0, 0, 0); got != 2 {
		t.Errorf("R(0,0,0) = %d, want 2", got)
	}
	// At proc 3: 2*2 + 1*0 = 4.
	if got := m.Residence(0, 0, 3); got != 4 {
		t.Errorf("R(0,0,3) = %d, want 4", got)
	}
	// At proc 1: 2*1 + 1*1 = 3.
	if got := m.Residence(0, 0, 1); got != 3 {
		t.Errorf("R(0,0,1) = %d, want 3", got)
	}
	// Window 1, data 0 at proc 0: 3*2 = 6; at proc 3: 0.
	if got := m.Residence(1, 0, 0); got != 6 {
		t.Errorf("R(1,0,0) = %d, want 6", got)
	}
	if got := m.Residence(1, 0, 3); got != 0 {
		t.Errorf("R(1,0,3) = %d, want 0", got)
	}
}

func TestBuildResidenceTableMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		tr := randomCostTrace(rng)
		m := NewModel(tr)
		table := m.BuildResidenceTable()
		for w := 0; w < m.NumWindows(); w++ {
			for d := 0; d < m.NumData; d++ {
				for c := 0; c < m.Grid.NumProcs(); c++ {
					if table.At(w, d, c) != m.Residence(w, trace.DataID(d), c) {
						t.Fatalf("iter %d: table[%d][%d][%d] = %d, want %d",
							iter, w, d, c, table.At(w, d, c), m.Residence(w, trace.DataID(d), c))
					}
				}
			}
		}
	}
}

// TestKernelDispatch pins the Kernel option: the default separable
// kernel, the KernelNaive fallback and the explicit naive builder all
// price every cell identically on the hand-computed trace.
func TestKernelDispatch(t *testing.T) {
	m := NewModel(twoWindowTrace())
	if m.Kernel != KernelSeparable {
		t.Fatalf("default kernel = %v, want separable", m.Kernel)
	}
	sep := m.BuildResidenceTable()
	naiveExplicit := m.BuildResidenceTableNaive()
	m.Kernel = KernelNaive
	naiveOption := m.BuildResidenceTable()
	for w := 0; w < sep.NumWindows(); w++ {
		for d := 0; d < sep.NumData(); d++ {
			sr, ne, no := sep.Row(w, d), naiveExplicit.Row(w, d), naiveOption.Row(w, d)
			for c := range sr {
				if sr[c] != ne[c] || sr[c] != no[c] {
					t.Fatalf("kernel divergence at [%d][%d][%d]: separable %d, naive %d, option %d",
						w, d, c, sr[c], ne[c], no[c])
				}
			}
		}
	}
	if KernelSeparable.String() != "separable" || KernelNaive.String() != "naive" {
		t.Error("kernel names wrong")
	}
	if Kernel(9).String() == "" {
		t.Error("unknown kernel has empty string")
	}
}

// TestBuildAggregateTableMatchesWindowSums: the separably-priced
// whole-run aggregate must equal the column sums of the per-window
// table on random instances.
func TestBuildAggregateTableMatchesWindowSums(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 20; iter++ {
		tr := randomCostTrace(rng)
		m := NewModel(tr)
		table := m.BuildResidenceTable()
		agg := m.BuildAggregateTable()
		for d := 0; d < m.NumData; d++ {
			for c := 0; c < m.Grid.NumProcs(); c++ {
				var want int64
				for w := 0; w < m.NumWindows(); w++ {
					want += table.At(w, d, c)
				}
				if agg[d][c] != want {
					t.Fatalf("iter %d: agg[%d][%d] = %d, want %d", iter, d, c, agg[d][c], want)
				}
			}
		}
	}
}

func TestUniformScheduleHasNoMoveCost(t *testing.T) {
	m := NewModel(twoWindowTrace())
	s := Uniform([]int{0, 1}, 2)
	if got := m.MoveCost(s); got != 0 {
		t.Fatalf("MoveCost of uniform schedule = %d", got)
	}
	// Residence: data 0 at proc 0 across both windows: 2 + 6 = 8.
	// Data 1 at proc 1: window 0 cost 0, window 1 no refs.
	if got := m.ResidenceCost(s); got != 8 {
		t.Fatalf("ResidenceCost = %d, want 8", got)
	}
	if got := m.TotalCost(s); got != 8 {
		t.Fatalf("TotalCost = %d, want 8", got)
	}
}

func TestMoveCost(t *testing.T) {
	m := NewModel(twoWindowTrace())
	// Data 0 moves 0 -> 3 (distance 2), data 1 stays.
	s := Schedule{Centers: [][]int{{0, 1}, {3, 1}}}
	if got := m.MoveCost(s); got != 2 {
		t.Fatalf("MoveCost = %d, want 2", got)
	}
	// Residence: w0 data0@0 = 2, w1 data0@3 = 0 -> 2. Total 4.
	if got := m.TotalCost(s); got != 4 {
		t.Fatalf("TotalCost = %d, want 4", got)
	}
}

func TestMoveCostRespectsDataSize(t *testing.T) {
	m := NewModel(twoWindowTrace())
	m.DataSize[0] = 5
	s := Schedule{Centers: [][]int{{0, 1}, {3, 1}}}
	if got := m.MoveCost(s); got != 10 {
		t.Fatalf("MoveCost with size 5 = %d, want 10", got)
	}
}

func TestDataCostMatchesScheduleDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 20; iter++ {
		tr := randomCostTrace(rng)
		m := NewModel(tr)
		s := randomSchedule(rng, m)
		var sum int64
		for d := 0; d < m.NumData; d++ {
			centers := make([]int, m.NumWindows())
			for w := range centers {
				centers[w] = s.Centers[w][d]
			}
			sum += m.DataCost(trace.DataID(d), centers)
		}
		if sum != m.TotalCost(s) {
			t.Fatalf("iter %d: per-data sum %d != total %d", iter, sum, m.TotalCost(s))
		}
	}
}

func TestEvaluateBreakdown(t *testing.T) {
	m := NewModel(twoWindowTrace())
	s := Schedule{Centers: [][]int{{0, 1}, {3, 1}}}
	b := m.Evaluate(s)
	if b.Residence != m.ResidenceCost(s) || b.Move != m.MoveCost(s) {
		t.Fatalf("breakdown %+v mismatch", b)
	}
	if b.Total() != m.TotalCost(s) {
		t.Fatalf("Total() = %d, want %d", b.Total(), m.TotalCost(s))
	}
}

func TestScheduleValidate(t *testing.T) {
	g := grid.Square(2)
	ok := Uniform([]int{0, 3}, 2)
	if err := ok.Validate(g, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(g, 2, 3); err == nil {
		t.Error("wrong window count accepted")
	}
	if err := ok.Validate(g, 3, 2); err == nil {
		t.Error("wrong data count accepted")
	}
	bad := Schedule{Centers: [][]int{{0, 9}, {0, 0}}}
	if err := bad.Validate(g, 2, 2); err == nil {
		t.Error("out-of-range center accepted")
	}
}

func TestUniformCopiesAssignment(t *testing.T) {
	a := []int{0, 1}
	s := Uniform(a, 2)
	a[0] = 3
	if s.Centers[0][0] != 0 {
		t.Error("Uniform aliases input slice")
	}
	s.Centers[0][1] = 2
	if s.Centers[1][1] != 1 {
		t.Error("Uniform windows alias each other")
	}
}

func TestNewModelPanicsOnInvalidTrace(t *testing.T) {
	tr := trace.New(grid.Square(2), 1)
	w := tr.AddWindow()
	w.Refs = append(w.Refs, trace.Ref{Proc: 99, Data: 0, Volume: 1})
	defer func() {
		if recover() == nil {
			t.Error("NewModel on invalid trace did not panic")
		}
	}()
	NewModel(tr)
}

func TestEmptyTraceCosts(t *testing.T) {
	tr := trace.New(grid.Square(2), 3)
	m := NewModel(tr)
	s := Schedule{}
	if m.TotalCost(s) != 0 {
		t.Fatal("empty trace has nonzero cost")
	}
}

// Property: residence cost is translation-consistent — serving all
// references locally (center = the only referencing processor) costs 0.
func TestSingleReaderLocalPlacementIsFree(t *testing.T) {
	g := grid.Square(4)
	f := func(proc, data uint8, vol uint8) bool {
		p := int(proc) % 16
		tr := trace.New(g, 4)
		w := tr.AddWindow()
		w.AddVolume(p, trace.DataID(int(data)%4), 1+int(vol)%5)
		m := NewModel(tr)
		return m.Residence(0, trace.DataID(int(data)%4), p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: residence cost is linear in the reference volume.
func TestResidenceLinearInVolume(t *testing.T) {
	g := grid.Square(3)
	f := func(proc, center uint8, vol uint8) bool {
		p, c := int(proc)%9, int(center)%9
		v := 1 + int(vol)%7
		one := trace.New(g, 1)
		one.AddWindow().Add(p, 0)
		many := trace.New(g, 1)
		many.AddWindow().AddVolume(p, 0, v)
		m1, mv := NewModel(one), NewModel(many)
		return mv.Residence(0, 0, c) == int64(v)*m1.Residence(0, 0, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomCostTrace(rng *rand.Rand) *trace.Trace {
	g := grid.New(1+rng.Intn(4), 1+rng.Intn(4))
	nd := 1 + rng.Intn(6)
	tr := trace.New(g, nd)
	for w := 0; w < 1+rng.Intn(4); w++ {
		win := tr.AddWindow()
		for r := 0; r < rng.Intn(12); r++ {
			win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(4))
		}
	}
	return tr
}

func randomSchedule(rng *rand.Rand, m *Model) Schedule {
	s := Schedule{Centers: make([][]int, m.NumWindows())}
	for w := range s.Centers {
		s.Centers[w] = make([]int, m.NumData)
		for d := range s.Centers[w] {
			s.Centers[w][d] = rng.Intn(m.Grid.NumProcs())
		}
	}
	return s
}

// benchModel builds a dense benchmark instance: an n x n array, n*n
// data items, and windows of refsPerWindow random unit references.
func benchModel(n, windows, refsPerWindow int) *Model {
	rng := rand.New(rand.NewSource(5))
	g := grid.Square(n)
	nd := n * n
	tr := trace.New(g, nd)
	for w := 0; w < windows; w++ {
		win := tr.AddWindow()
		for r := 0; r < refsPerWindow; r++ {
			win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
		}
	}
	return NewModel(tr)
}

// BenchmarkBuildResidenceTable compares the two kernels on the same
// instance; benchstat over the sub-benchmarks gives the speedup.
func BenchmarkBuildResidenceTable(b *testing.B) {
	m := benchModel(4, 16, 1024)
	b.Run("separable", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.buildSeparable()
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.buildNaive()
		}
	})
}

// BenchmarkBuildAggregateTable times the whole-run aggregation SCDS
// and LOMCDS use for initial placement, under both kernels.
func BenchmarkBuildAggregateTable(b *testing.B) {
	m := benchModel(4, 16, 1024)
	for _, kernel := range []Kernel{KernelSeparable, KernelNaive} {
		b.Run(kernel.String(), func(b *testing.B) {
			m.Kernel = kernel
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = m.BuildAggregateTable()
			}
		})
	}
}

func BenchmarkTotalCost(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := grid.Square(4)
	tr := trace.New(g, 256)
	for w := 0; w < 16; w++ {
		win := tr.AddWindow()
		for r := 0; r < 1024; r++ {
			win.Add(rng.Intn(16), trace.DataID(rng.Intn(256)))
		}
	}
	m := NewModel(tr)
	s := randomSchedule(rng, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.TotalCost(s)
	}
}

func TestScheduleCloneAndEqual(t *testing.T) {
	s := Schedule{Centers: [][]int{{0, 1}, {2, 3}}}
	c := s.Clone()
	if !s.Equal(c) || !c.Equal(s) {
		t.Fatalf("clone differs: %v vs %v", s.Centers, c.Centers)
	}
	c.Centers[1][0] = 9
	if s.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if s.Centers[1][0] == 9 {
		t.Fatal("clone aliases the original")
	}
	if s.Equal(Schedule{Centers: [][]int{{0, 1}}}) {
		t.Fatal("window-count mismatch reported equal")
	}
	if s.Equal(Schedule{Centers: [][]int{{0, 1}, {2}}}) {
		t.Fatal("ragged schedule reported equal")
	}
}
