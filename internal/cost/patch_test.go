package cost

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/trace"
)

// tablesEqual asserts two residence tables agree cell-for-cell.
func tablesEqual(t *testing.T, got, want ResidenceTable, context string) {
	t.Helper()
	if got.NumWindows() != want.NumWindows() {
		t.Fatalf("%s: table covers %d windows, want %d", context, got.NumWindows(), want.NumWindows())
	}
	for w := 0; w < want.NumWindows(); w++ {
		for d := 0; d < want.NumData(); d++ {
			gr, wr := got.Row(w, d), want.Row(w, d)
			for c := range wr {
				if gr[c] != wr[c] {
					t.Fatalf("%s: R[%d][%d][%d] = %d, full rebuild gives %d",
						context, w, d, c, gr[c], wr[c])
				}
			}
		}
	}
}

// randomPatchTrace builds a small random instance for the patch sweep.
func randomPatchTrace(rng *rand.Rand) *trace.Trace {
	g := grid.New(1+rng.Intn(4), 1+rng.Intn(4))
	nd := 1 + rng.Intn(4)
	tr := trace.New(g, nd)
	for w := 0; w < rng.Intn(5); w++ {
		win := tr.AddWindow()
		for r := rng.Intn(6); r > 0; r-- {
			win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
		}
	}
	return tr
}

// TestPatchMatchesRebuild drives a model + table through random window
// mutations with the Patch* methods and pins the result, after every
// step, to a from-scratch model built over the mutated trace.
func TestPatchMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60; i++ {
		tr := randomPatchTrace(rng)
		m := NewModel(tr)
		table := m.BuildResidenceTable()
		np := tr.Grid.NumProcs()
		for step := 0; step < 10; step++ {
			switch op := rng.Intn(3); {
			case op == 0 || len(tr.Windows) == 0: // append
				win := tr.AddWindow()
				for r := rng.Intn(6); r > 0; r-- {
					win.AddVolume(rng.Intn(np), trace.DataID(rng.Intn(tr.NumData)), 1+rng.Intn(3))
				}
				table = m.PatchAppendWindow(table, win, nil)
			case op == 1: // edit one item's refs in one window
				w := rng.Intn(len(tr.Windows))
				d := trace.DataID(rng.Intn(tr.NumData))
				win := &tr.Windows[w]
				kept := win.Refs[:0]
				for _, r := range win.Refs {
					if r.Data != d {
						kept = append(kept, r)
					}
				}
				win.Refs = kept
				for r := rng.Intn(4); r > 0; r-- {
					win.AddVolume(rng.Intn(np), d, 1+rng.Intn(3))
				}
				m.PatchEditItem(table, w, d, win, nil)
			default: // remove
				w := rng.Intn(len(tr.Windows))
				tr.Windows = append(tr.Windows[:w], tr.Windows[w+1:]...)
				table = m.PatchRemoveWindow(table, w)
			}
			fresh := NewModel(tr)
			tablesEqual(t, table, fresh.BuildResidenceTable(), "instance/step")
			if m.NumWindows() != len(tr.Windows) {
				t.Fatalf("instance %d step %d: model tracks %d windows, trace has %d",
					i, step, m.NumWindows(), len(tr.Windows))
			}
			// The patched counts must also feed the aggregate table (the
			// SCDS/LOMCDS input) identically to a fresh model's.
			agg, freshAgg := m.BuildAggregateTable(), fresh.BuildAggregateTable()
			for d := range freshAgg {
				for c := range freshAgg[d] {
					if agg[d][c] != freshAgg[d][c] {
						t.Fatalf("instance %d step %d: aggregate[%d][%d] = %d, fresh gives %d",
							i, step, d, c, agg[d][c], freshAgg[d][c])
					}
				}
			}
		}
	}
}

// TestResidenceRowMatchesResidence pins the single-row kernel to the
// cell-by-cell Residence accessor on a seeded instance.
func TestResidenceRowMatchesResidence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randomPatchTrace(rng)
	for tr.NumWindows() == 0 {
		tr = randomPatchTrace(rng)
	}
	m := NewModel(tr)
	np := tr.Grid.NumProcs()
	row := make([]int64, np)
	for w := 0; w < tr.NumWindows(); w++ {
		for d := 0; d < tr.NumData; d++ {
			m.ResidenceRow(w, trace.DataID(d), row)
			for c := 0; c < np; c++ {
				if want := m.Residence(w, trace.DataID(d), c); row[c] != want {
					t.Fatalf("ResidenceRow[%d][%d][%d] = %d, Residence gives %d", w, d, c, row[c], want)
				}
			}
		}
	}
}
