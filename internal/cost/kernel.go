// Residence-table kernels.
//
// The x-y routing distance is separable by dimension:
//
//	dist(p, c) = |px - cx| + |py - cy|
//
// so the residence cost of one (window, item) pair decomposes into two
// independent one-dimensional problems: project the reference volumes
// onto a per-column histogram and a per-row histogram, compute the
// weighted-distance profile of each axis with a prefix-sum recurrence in
// O(X) / O(Y), and emit R[w][d][c] = Cx[cx] + Cy[cy]. The whole table
// costs O(W*D*(X+Y+P)) independent of how dense the reference string
// is, against O(W*D*P*refs) for the naive per-cell summation. The naive
// kernel is kept both as the differential referee's counterpart and as
// a fallback selectable through Model.Kernel.
package cost

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/trace"
)

// Kernel selects the algorithm BuildResidenceTable uses.
type Kernel int

const (
	// KernelSeparable is the prefix-sum kernel (the default):
	// O(X+Y+P) per (window, item) pair, independent of reference count.
	KernelSeparable Kernel = iota
	// KernelNaive prices every cell by summing over the window's
	// referencing processors: O(P*refs) per (window, item) pair.
	KernelNaive
)

// String returns the kernel name.
func (k Kernel) String() string {
	switch k {
	case KernelSeparable:
		return "separable"
	case KernelNaive:
		return "naive"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// axisCosts fills out[x] with the weighted one-dimensional distance sum
// sum_i vol[i] * |i - x| for every coordinate x, in O(len(vol)) via the
// standard prefix recurrence: moving the evaluation point one step right
// adds the volume already passed and subtracts the volume still ahead.
func axisCosts(vol, out []int64) {
	var total, weighted int64
	for x, v := range vol {
		total += v
		weighted += v * int64(x)
	}
	out[0] = weighted // cost at x = 0: every unit pays its coordinate
	var left int64
	for x := 1; x < len(vol); x++ {
		left += vol[x-1]
		out[x] = out[x-1] + left - (total - left)
	}
}

// buildSeparable computes the table with the prefix-sum kernel,
// parallelized over data items like the naive builder.
func (m *Model) buildSeparable() ResidenceTable {
	table := NewResidenceTable(m.NumWindows(), m.NumData, m.Grid.NumProcs())
	m.fillSeparable(table)
	return table
}

// fillSeparable prices every row of an existing table in place with the
// prefix-sum kernel. The table shape must match the model; rows of
// unreferenced (window, item) pairs are zeroed, so the result is
// identical to a fresh build regardless of the table's prior contents.
func (m *Model) fillSeparable(table ResidenceTable) {
	nw, nd := m.NumWindows(), m.NumData
	m.checkShape(table)
	parallel.ForEach(nd, func(d int) {
		sc := m.NewRowScratch()
		for w := 0; w < nw; w++ {
			m.residenceRowInto(sc, w, trace.DataID(d), table.Row(w, d))
		}
	})
}

// projectVolumes accumulates one count row onto the column and row
// histograms and reports whether any volume was seen. The histograms
// must arrive zeroed; on a false return they are still zeroed.
func (m *Model) projectVolumes(counts []int, colVol, rowVol []int64) bool {
	any := false
	for p, v := range counts {
		if v != 0 {
			colVol[m.colOf[p]] += int64(v)
			rowVol[m.rowOf[p]] += int64(v)
			any = true
		}
	}
	return any
}

// buildNaive computes the table cell by cell, summing every reference's
// distance — the original kernel, kept as the in-package counterpart
// for differential testing and as a Kernel option.
func (m *Model) buildNaive() ResidenceTable {
	nw, nd, np := m.NumWindows(), m.NumData, m.Grid.NumProcs()
	table := NewResidenceTable(nw, nd, np)
	parallel.ForEach(nd, func(d int) {
		// Scratch for the sparse (processor, volume) pairs of one window.
		procs := make([]int, 0, np)
		vols := make([]int64, 0, np)
		for w := 0; w < nw; w++ {
			procs, vols = procs[:0], vols[:0]
			for p, v := range m.counts[w][d] {
				if v != 0 {
					procs = append(procs, p)
					vols = append(vols, int64(v))
				}
			}
			row := table.Row(w, d)
			for c := 0; c < np; c++ {
				var total int64
				for i, p := range procs {
					total += vols[i] * int64(m.dist[p][c])
				}
				row[c] = total
			}
		}
	})
	return table
}

// checkShape panics unless the table's shape matches the model's
// current trace dimensions.
func (m *Model) checkShape(table ResidenceTable) {
	if table.NumWindows() != m.NumWindows() || table.NumData() != m.NumData || table.NumProcs() != m.Grid.NumProcs() {
		panic(fmt.Sprintf("cost: table shape %dx%dx%d does not match model %dx%dx%d",
			table.NumWindows(), table.NumData(), table.NumProcs(),
			m.NumWindows(), m.NumData, m.Grid.NumProcs()))
	}
}

// BuildAggregateTable returns A[d][c], the residence cost of item d at
// center c summed over every window — the "merged single execution
// window" SCDS and LOMCDS minimize over for initial placement. Because
// residence cost is linear in the reference volumes, the whole-run
// aggregate is priced directly from the per-item volume totals with the
// selected kernel, without materializing (or re-reading) the per-window
// table.
func (m *Model) BuildAggregateTable() [][]int64 {
	defer m.stage("cost.aggregate_table")()
	nd, np := m.NumData, m.Grid.NumProcs()
	nx, ny := m.Grid.Width(), m.Grid.Height()
	flat := make([]int64, nd*np)
	agg := make([][]int64, nd)
	for d := range agg {
		agg[d], flat = flat[:np], flat[np:]
	}
	parallel.ForEach(nd, func(d int) {
		merged := make([]int, np)
		for w := range m.counts {
			for p, v := range m.counts[w][d] {
				merged[p] += v
			}
		}
		row := agg[d]
		switch m.Kernel {
		case KernelNaive:
			for c := 0; c < np; c++ {
				var total int64
				for p, v := range merged {
					if v != 0 {
						total += int64(v) * int64(m.dist[p][c])
					}
				}
				row[c] = total
			}
		default:
			colVol := make([]int64, nx)
			rowVol := make([]int64, ny)
			if !m.projectVolumes(merged, colVol, rowVol) {
				return // never referenced: all-zero row is exact
			}
			colCost := make([]int64, nx)
			rowCost := make([]int64, ny)
			axisCosts(colVol, colCost)
			axisCosts(rowVol, rowCost)
			for c := 0; c < np; c++ {
				row[c] = colCost[m.colOf[c]] + rowCost[m.rowOf[c]]
			}
		}
	})
	return agg
}
