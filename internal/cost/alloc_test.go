package cost

import (
	"testing"

	"repro/internal/trace"
)

// The steady-state allocation pins below are part of the hot-path
// contract: the row-pricing kernel and the table patch kernels must not
// touch the heap once their scratch exists, or per-request and
// per-delta garbage creeps back in unnoticed. testing.AllocsPerRun
// reports the average allocations of a run, so any regression — even a
// single conditional allocation — fails the pin.

func TestResidenceRowIntoZeroAlloc(t *testing.T) {
	m := NewModel(twoWindowTrace())
	sc := m.NewRowScratch()
	out := make([]int64, m.Grid.NumProcs())
	if n := testing.AllocsPerRun(200, func() {
		m.ResidenceRowInto(sc, 0, 0, out)
		m.ResidenceRowInto(sc, 1, 1, out)
	}); n != 0 {
		t.Fatalf("ResidenceRowInto allocates %v per run, want 0", n)
	}
}

func TestPatchEditItemZeroAlloc(t *testing.T) {
	tr := twoWindowTrace()
	m := NewModel(tr)
	table := m.BuildResidenceTable()
	sc := m.NewRowScratch()
	win := &tr.Windows[0]
	if n := testing.AllocsPerRun(200, func() {
		m.PatchEditItem(table, 0, trace.DataID(0), win, sc)
	}); n != 0 {
		t.Fatalf("PatchEditItem allocates %v per run, want 0", n)
	}
}

// Window removal must also stay off the heap: the flat backing array
// is shifted down in place, never reallocated. (Appends are exempt —
// extending the counts matrix allocates the new window's rows.)
func TestPatchRemoveWindowZeroAlloc(t *testing.T) {
	tr := twoWindowTrace()
	for len(tr.Windows) < 130 {
		win := tr.AddWindow()
		win.Add(2, 1)
	}
	m := NewModel(tr)
	table := m.BuildResidenceTable()
	if n := testing.AllocsPerRun(100, func() {
		last := len(tr.Windows) - 1
		tr.Windows = tr.Windows[:last]
		table = m.PatchRemoveWindow(table, last)
	}); n != 0 {
		t.Fatalf("PatchRemoveWindow allocates %v per run, want 0", n)
	}
}
