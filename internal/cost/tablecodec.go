package cost

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/trace"
)

// tableCodecMagic is the version tag leading every encoded residence
// table. Bumping it invalidates all previously encoded payloads instead
// of letting an incompatible layout decode into garbage: a peer running
// an older codec simply fails the fetch and the shard falls back to a
// local build.
const tableCodecMagic = "pimtab-v1\n"

// tableCodecHeaderLen is the byte length of the fixed header: magic,
// the trace fingerprint the table was built from, and the three shape
// fields as 8-byte little-endian unsigned integers.
const tableCodecHeaderLen = len(tableCodecMagic) + len(trace.Fingerprint{}) + 3*8

// maxDecodedTableBytes bounds the cell payload DecodeTable will accept
// (1 GiB of cells), so a corrupt header cannot make a shard attempt a
// multi-terabyte allocation.
const maxDecodedTableBytes = 1 << 30

// EncodeTable serializes a residence table into the flat, version-tagged
// peer-fill wire format:
//
//	magic "pimtab-v1\n"
//	fingerprint            (32 bytes, the trace the table was built from)
//	numWindows, numData, numProcs  (8-byte little endian each)
//	cells                  (nw*nd*np int64 values, little endian, in the
//	                        documented (w*nd+d)*np+c layout)
//
// Every field is fixed width and the cell count is fully determined by
// the header, so DecodeTable can reject truncated or padded payloads
// exactly. The fingerprint rides inside the payload (not just in the
// request URL) so a decoder can refuse a table that was built for a
// different trace even if a proxy or a buggy peer mixed responses up.
func EncodeTable(fp trace.Fingerprint, t ResidenceTable) []byte {
	cells := t.Cells()
	out := make([]byte, 0, tableCodecHeaderLen+8*len(cells))
	out = append(out, tableCodecMagic...)
	out = append(out, fp[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(t.nw))
	out = binary.LittleEndian.AppendUint64(out, uint64(t.nd))
	out = binary.LittleEndian.AppendUint64(out, uint64(t.np))
	for _, c := range cells {
		out = binary.LittleEndian.AppendUint64(out, uint64(c))
	}
	return out
}

// DecodeTable parses a payload produced by EncodeTable, returning the
// fingerprint it was built for and the reconstructed table. It never
// panics: a wrong magic, an impossible shape, a truncated cell stream
// or trailing junk all yield descriptive errors, so a shard can treat
// any decode failure as a peer-fill miss and build locally.
func DecodeTable(data []byte) (trace.Fingerprint, ResidenceTable, error) {
	var fp trace.Fingerprint
	if len(data) < tableCodecHeaderLen {
		return fp, ResidenceTable{}, fmt.Errorf("cost: table payload %d bytes, header needs %d", len(data), tableCodecHeaderLen)
	}
	if string(data[:len(tableCodecMagic)]) != tableCodecMagic {
		return fp, ResidenceTable{}, fmt.Errorf("cost: table payload has wrong magic %q", data[:len(tableCodecMagic)])
	}
	data = data[len(tableCodecMagic):]
	copy(fp[:], data[:len(fp)])
	data = data[len(fp):]
	nw := binary.LittleEndian.Uint64(data[0:])
	nd := binary.LittleEndian.Uint64(data[8:])
	np := binary.LittleEndian.Uint64(data[16:])
	data = data[24:]

	// Reject shapes that cannot be a real table before multiplying, so
	// an adversarial header cannot overflow the cell count into a small
	// allocation that the cell loop then indexes past.
	const maxDim = math.MaxInt32
	if nw > maxDim || nd > maxDim || np > maxDim {
		return fp, ResidenceTable{}, fmt.Errorf("cost: table shape %dx%dx%d out of range", nw, nd, np)
	}
	cellCount := nw * nd * np
	if cellCount > maxDecodedTableBytes/8 {
		return fp, ResidenceTable{}, fmt.Errorf("cost: table shape %dx%dx%d exceeds %d-byte cell limit", nw, nd, np, maxDecodedTableBytes)
	}
	if uint64(len(data)) != 8*cellCount {
		return fp, ResidenceTable{}, fmt.Errorf("cost: table payload carries %d cell bytes, shape %dx%dx%d needs %d", len(data), nw, nd, np, 8*cellCount)
	}
	t := NewResidenceTable(int(nw), int(nd), int(np))
	for i := range t.cells {
		t.cells[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return fp, t, nil
}
