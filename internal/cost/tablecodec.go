package cost

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/trace"
)

// tableCodecMagic is the version tag leading every encoded residence
// table. Bumping it invalidates all previously encoded payloads instead
// of letting an incompatible layout decode into garbage: a peer running
// an older codec simply fails the fetch and the shard falls back to a
// local build.
const tableCodecMagic = "pimtab-v1\n"

// tableCodecHeaderLen is the byte length of the fixed header: magic,
// the trace fingerprint the table was built from, and the three shape
// fields as 8-byte little-endian unsigned integers.
const tableCodecHeaderLen = len(tableCodecMagic) + len(trace.Fingerprint{}) + 3*8

// maxDecodedTableBytes bounds the cell payload DecodeTable will accept
// (1 GiB of cells), so a corrupt header cannot make a shard attempt a
// multi-terabyte allocation.
const maxDecodedTableBytes = 1 << 30

// EncodeTable serializes a residence table into the flat, version-tagged
// peer-fill wire format:
//
//	magic "pimtab-v1\n"
//	fingerprint            (32 bytes, the trace the table was built from)
//	numWindows, numData, numProcs  (8-byte little endian each)
//	cells                  (nw*nd*np int64 values, little endian, in the
//	                        documented (w*nd+d)*np+c layout)
//
// Every field is fixed width and the cell count is fully determined by
// the header, so DecodeTable can reject truncated or padded payloads
// exactly. The fingerprint rides inside the payload (not just in the
// request URL) so a decoder can refuse a table that was built for a
// different trace even if a proxy or a buggy peer mixed responses up.
func EncodeTable(fp trace.Fingerprint, t ResidenceTable) []byte {
	cells := t.Cells()
	out := make([]byte, 0, tableCodecHeaderLen+8*len(cells))
	out = append(out, tableCodecMagic...)
	out = append(out, fp[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(t.nw))
	out = binary.LittleEndian.AppendUint64(out, uint64(t.nd))
	out = binary.LittleEndian.AppendUint64(out, uint64(t.np))
	for _, c := range cells {
		out = binary.LittleEndian.AppendUint64(out, uint64(c))
	}
	return out
}

// DecodeTable parses a payload produced by EncodeTable, returning the
// fingerprint it was built for and the reconstructed table. It never
// panics: a wrong magic, an impossible shape, a truncated cell stream
// or trailing junk all yield descriptive errors, so a shard can treat
// any decode failure as a peer-fill miss and build locally.
//
// It accepts only pimtab-v1; use DecodeTableAny where a peer may send
// either version, or where a tighter cell budget than the codec's hard
// ceiling must hold.
func DecodeTable(data []byte) (trace.Fingerprint, ResidenceTable, error) {
	return decodeTableV1(data, MaxTableCodecCells)
}

// MaxTableCodecCells is the codec's hard cell ceiling (1 GiB of flat
// cells). Decoders never exceed it even when asked for a larger budget.
const MaxTableCodecCells = maxDecodedTableBytes / 8

// decodeTableHeader validates the fixed header shared by both codec
// versions (magic already checked by the caller) and returns the
// fingerprint, shape, cell count, and the cell stream that follows.
func decodeTableHeader(magic string, data []byte, maxCells int64) (fp trace.Fingerprint, nw, nd, np int, rest []byte, err error) {
	if len(data) < tableCodecHeaderLen {
		return fp, 0, 0, 0, nil, fmt.Errorf("cost: table payload %d bytes, header needs %d", len(data), tableCodecHeaderLen)
	}
	if string(data[:len(magic)]) != magic {
		return fp, 0, 0, 0, nil, fmt.Errorf("cost: table payload has wrong magic %q", data[:len(magic)])
	}
	data = data[len(magic):]
	copy(fp[:], data[:len(fp)])
	data = data[len(fp):]
	unw := binary.LittleEndian.Uint64(data[0:])
	und := binary.LittleEndian.Uint64(data[8:])
	unp := binary.LittleEndian.Uint64(data[16:])
	rest = data[24:]

	// Reject shapes that cannot be a real table before multiplying, so
	// an adversarial header cannot overflow the cell count into a small
	// allocation that the cell loop then indexes past.
	const maxDim = math.MaxInt32
	if unw > maxDim || und > maxDim || unp > maxDim {
		return fp, 0, 0, 0, nil, fmt.Errorf("cost: table shape %dx%dx%d out of range", unw, und, unp)
	}
	if maxCells <= 0 || maxCells > MaxTableCodecCells {
		maxCells = MaxTableCodecCells
	}
	if unw*und*unp > uint64(maxCells) {
		return fp, 0, 0, 0, nil, fmt.Errorf("cost: table shape %dx%dx%d exceeds %d-cell limit", unw, und, unp, maxCells)
	}
	return fp, int(unw), int(und), int(unp), rest, nil
}

func decodeTableV1(data []byte, maxCells int64) (trace.Fingerprint, ResidenceTable, error) {
	fp, nw, nd, np, rest, err := decodeTableHeader(tableCodecMagic, data, maxCells)
	if err != nil {
		return fp, ResidenceTable{}, err
	}
	cellCount := uint64(nw) * uint64(nd) * uint64(np)
	if uint64(len(rest)) != 8*cellCount {
		return fp, ResidenceTable{}, fmt.Errorf("cost: table payload carries %d cell bytes, shape %dx%dx%d needs %d", len(rest), nw, nd, np, 8*cellCount)
	}
	t := NewResidenceTable(nw, nd, np)
	for i := range t.cells {
		t.cells[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return fp, t, nil
}

// tableCodecV2Magic tags the compressed residence-table codec. The
// header layout is identical to v1; only the cell stream differs.
const tableCodecV2Magic = "pimtab-v2\n"

// TableCodecV2 is the negotiation token clients send in the
// X-Pim-Table-Codec request header (service.TableCodecHeader) to ask a
// peer for the compressed codec.
const TableCodecV2 = "pimtab-v2"

// zigzag folds signed deltas into unsigned varint space: small
// magnitudes of either sign encode short.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeTableV2 serializes a residence table into the compressed
// pimtab-v2 wire format. The header matches v1 byte for byte except the
// magic; the cell stream replaces fixed 8-byte cells with zig-zag
// varint deltas:
//
//	magic "pimtab-v2\n"
//	fingerprint            (32 bytes)
//	numWindows, numData, numProcs  (8-byte little endian each)
//	cells                  (one uvarint per cell, zig-zag encoded,
//	                        row-major in the (w*nd+d)*np+c layout)
//
// Within each np-cell row a cell is the delta from the previous cell;
// each row's first cell is the delta from the previous row's first cell
// (the very first is absolute). Residence costs vary smoothly along
// both axes, so paper-shaped tables land well under 8 bytes/cell.
func EncodeTableV2(fp trace.Fingerprint, t ResidenceTable) []byte {
	return AppendTableV2(make([]byte, 0, tableCodecHeaderLen+2*t.nw*t.nd*t.np), fp, t)
}

// AppendTableV2 appends the pimtab-v2 encoding of t to dst and returns
// the extended slice, so callers with a reusable buffer avoid the
// allocation EncodeTableV2 makes.
func AppendTableV2(dst []byte, fp trace.Fingerprint, t ResidenceTable) []byte {
	dst = append(dst, tableCodecV2Magic...)
	dst = append(dst, fp[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.nw))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.nd))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.np))
	cells, np := t.cells, t.np
	var rowHead int64
	for base := 0; base < len(cells); base += np {
		prev := rowHead
		for i, c := range cells[base : base+np] {
			dst = binary.AppendUvarint(dst, zigzag(c-prev))
			prev = c
			if i == 0 {
				rowHead = c
			}
		}
	}
	return dst
}

// DecodeTableV2 parses a pimtab-v2 payload under the codec's hard cell
// ceiling. Like DecodeTable it never panics and yields descriptive
// errors for wrong magic, impossible shapes, truncated cell streams,
// and trailing junk.
func DecodeTableV2(data []byte) (trace.Fingerprint, ResidenceTable, error) {
	return decodeTableV2(data, MaxTableCodecCells)
}

func decodeTableV2(data []byte, maxCells int64) (trace.Fingerprint, ResidenceTable, error) {
	fp, nw, nd, np, rest, err := decodeTableHeader(tableCodecV2Magic, data, maxCells)
	if err != nil {
		return fp, ResidenceTable{}, err
	}
	t := NewResidenceTable(nw, nd, np)
	cells := t.cells
	var rowHead int64
	for base := 0; base < len(cells); base += np {
		prev := rowHead
		for i := range np {
			u, n := binary.Uvarint(rest)
			if n <= 0 {
				return fp, ResidenceTable{}, fmt.Errorf("cost: table cell stream truncated at cell %d of %d", base+i, len(cells))
			}
			rest = rest[n:]
			prev += unzigzag(u)
			cells[base+i] = prev
			if i == 0 {
				rowHead = prev
			}
		}
	}
	if len(rest) != 0 {
		return fp, ResidenceTable{}, fmt.Errorf("cost: table payload carries %d trailing bytes after %d cells", len(rest), len(cells))
	}
	return fp, t, nil
}

// DecodeTableAny parses a residence table in either codec version,
// dispatching on the magic, under a caller-supplied cell budget
// (service.Config.MaxTableCells on every table-accepting path; <= 0
// falls back to the codec's hard ceiling). A shape exceeding the budget
// is rejected before any allocation, closing the asymmetry where a
// shipped table could commit a shard to memory its own trace guards
// would refuse.
func DecodeTableAny(data []byte, maxCells int64) (trace.Fingerprint, ResidenceTable, error) {
	if len(data) >= len(tableCodecV2Magic) && string(data[:len(tableCodecV2Magic)]) == tableCodecV2Magic {
		return decodeTableV2(data, maxCells)
	}
	return decodeTableV1(data, maxCells)
}
