// Incremental maintenance of the cost model and its residence table
// under trace deltas.
//
// Both derived structures are sums of per-(window, item) terms: the
// reference-count matrix has one independent row per (window, item),
// and the separable kernel prices each residence-table row R[w][d][*]
// from that window's per-axis volume histograms alone. A delta that
// touches one (window, item) pair therefore invalidates exactly one
// counts row and one table row; a window append or removal adds or
// drops one window's worth of rows and leaves every other cell
// untouched. The Patch* methods below exploit that: they keep an
// existing model's counts and a caller-held residence table in
// lockstep with a mutated trace at per-delta cost O(touched refs +
// X + Y + P) instead of the full O(W·D·(X+Y+P)) rebuild.
//
// The grid and the data-space size are fixed at model construction;
// deltas may change reference events and the window list only. The
// differential replay referee in internal/verify pins every patched
// table cell-for-cell to a from-scratch rebuild.
package cost

import (
	"fmt"

	"repro/internal/trace"
)

// ResidenceRow prices one (window, item) residence-table row into out
// (length NumProcs) with the separable per-axis kernel, from the
// model's current counts. It is the single-row form of
// BuildResidenceTable, used to refresh exactly the rows a trace delta
// dirtied.
func (m *Model) ResidenceRow(w int, d trace.DataID, out []int64) {
	np := m.Grid.NumProcs()
	if len(out) != np {
		panic(fmt.Sprintf("cost: residence row has %d cells, array has %d processors", len(out), np))
	}
	nx, ny := m.Grid.Width(), m.Grid.Height()
	colVol := make([]int64, nx)
	rowVol := make([]int64, ny)
	if !m.projectVolumes(m.counts[w][d], colVol, rowVol) {
		for c := range out {
			out[c] = 0
		}
		return
	}
	colCost := make([]int64, nx)
	rowCost := make([]int64, ny)
	axisCosts(colVol, colCost)
	axisCosts(rowVol, rowCost)
	for c := 0; c < np; c++ {
		out[c] = colCost[m.colOf[c]] + rowCost[m.rowOf[c]]
	}
}

// PatchEditItem re-derives counts[w][d] from the window's current
// events and refreshes the matching residence-table row in place. The
// window must already hold the post-delta events; rows of other items
// and windows are untouched.
func (m *Model) PatchEditItem(table ResidenceTable, w int, d trace.DataID, win *trace.Window) {
	m.checkPatch(table, w)
	row := m.counts[w][d]
	for p := range row {
		row[p] = 0
	}
	for _, r := range win.Refs {
		if r.Data == d {
			row[r.Proc] += r.Volume
		}
	}
	m.ResidenceRow(w, d, table[w][d])
}

// PatchAppendWindow extends the model's counts and the table with one
// new window holding win's events, and returns the extended table.
// Only items the window actually references get a priced row; the rest
// keep the exact all-zero row an unreferenced (window, item) pair has
// in a full build.
func (m *Model) PatchAppendWindow(table ResidenceTable, win *trace.Window) ResidenceTable {
	if len(table) != len(m.counts) {
		panic(fmt.Sprintf("cost: table covers %d windows, model has %d", len(table), len(m.counts)))
	}
	nd, np := m.NumData, m.Grid.NumProcs()

	flat := make([]int, nd*np)
	wc := make([][]int, nd)
	for d := 0; d < nd; d++ {
		wc[d], flat = flat[:np], flat[np:]
	}
	touched := make(map[trace.DataID]bool)
	for _, r := range win.Refs {
		wc[r.Data][r.Proc] += r.Volume
		touched[r.Data] = true
	}
	m.counts = append(m.counts, wc)

	tflat := make([]int64, nd*np)
	trows := make([][]int64, nd)
	for d := range trows {
		trows[d], tflat = tflat[:np], tflat[np:]
	}
	table = append(table, trows)
	w := len(table) - 1
	for d := range touched {
		m.ResidenceRow(w, d, table[w][d])
	}
	return table
}

// PatchRemoveWindow drops window w from the model's counts and the
// table, shifting later windows down by one, and returns the shrunken
// table.
func (m *Model) PatchRemoveWindow(table ResidenceTable, w int) ResidenceTable {
	m.checkPatch(table, w)
	m.counts = append(m.counts[:w], m.counts[w+1:]...)
	return append(table[:w], table[w+1:]...)
}

func (m *Model) checkPatch(table ResidenceTable, w int) {
	if len(table) != len(m.counts) {
		panic(fmt.Sprintf("cost: table covers %d windows, model has %d", len(table), len(m.counts)))
	}
	if w < 0 || w >= len(m.counts) {
		panic(fmt.Sprintf("cost: patch window %d outside [0,%d)", w, len(m.counts)))
	}
}
