// Incremental maintenance of the cost model and its residence table
// under trace deltas.
//
// Both derived structures are sums of per-(window, item) terms: the
// reference-count matrix has one independent row per (window, item),
// and the separable kernel prices each residence-table row R[w][d][*]
// from that window's per-axis volume histograms alone. A delta that
// touches one (window, item) pair therefore invalidates exactly one
// counts row and one table row; a window append or removal adds or
// drops one window's worth of rows and leaves every other cell
// untouched. The Patch* methods below exploit that: they keep an
// existing model's counts and a caller-held residence table in
// lockstep with a mutated trace at per-delta cost O(touched refs +
// X + Y + P) instead of the full O(W·D·(X+Y+P)) rebuild.
//
// The steady-state patch path allocates nothing: rows are priced in
// place through a caller-held RowScratch, window removal shifts the
// flat backing slice down, and window appends reuse backing capacity
// left by earlier removals (growing it geometrically otherwise).
//
// The grid and the data-space size are fixed at model construction;
// deltas may change reference events and the window list only. The
// differential replay referee in internal/verify pins every patched
// table cell-for-cell to a from-scratch rebuild.
package cost

import (
	"fmt"
	"slices"

	"repro/internal/trace"
)

// RowScratch holds the per-axis histograms and cost profiles one
// residence-row pricing needs, so repeated row refreshes allocate
// nothing. A scratch is tied to the grid shape of the model that
// created it and is not safe for concurrent use; hold one per
// goroutine (an incremental session owns exactly one).
type RowScratch struct {
	colVol, rowVol   []int64
	colCost, rowCost []int64
}

// NewRowScratch returns a scratch sized for the model's grid.
func (m *Model) NewRowScratch() *RowScratch {
	nx, ny := m.Grid.Width(), m.Grid.Height()
	return &RowScratch{
		colVol:  make([]int64, nx),
		rowVol:  make([]int64, ny),
		colCost: make([]int64, nx),
		rowCost: make([]int64, ny),
	}
}

// ResidenceRow prices one (window, item) residence-table row into out
// (length NumProcs) with the separable per-axis kernel, from the
// model's current counts. It is the single-row form of
// BuildResidenceTable, used to refresh exactly the rows a trace delta
// dirtied. It allocates transient scratch; hot paths should hold a
// RowScratch and call ResidenceRowInto instead.
func (m *Model) ResidenceRow(w int, d trace.DataID, out []int64) {
	m.ResidenceRowInto(m.NewRowScratch(), w, d, out)
}

// ResidenceRowInto is ResidenceRow pricing through a caller-held
// scratch: the steady-state form, allocation-free. The scratch must
// come from this model's NewRowScratch (grid shapes must match).
func (m *Model) ResidenceRowInto(sc *RowScratch, w int, d trace.DataID, out []int64) {
	np := m.Grid.NumProcs()
	if len(out) != np {
		panic(fmt.Sprintf("cost: residence row has %d cells, array has %d processors", len(out), np))
	}
	if len(sc.colVol) != m.Grid.Width() || len(sc.rowVol) != m.Grid.Height() {
		panic(fmt.Sprintf("cost: row scratch shaped %dx%d, grid is %dx%d",
			len(sc.colVol), len(sc.rowVol), m.Grid.Width(), m.Grid.Height()))
	}
	m.residenceRowInto(sc, w, d, out)
}

// residenceRowInto is the unchecked kernel body shared with the full
// table builder.
func (m *Model) residenceRowInto(sc *RowScratch, w int, d trace.DataID, out []int64) {
	clear(sc.colVol)
	clear(sc.rowVol)
	if !m.projectVolumes(m.counts[w][d], sc.colVol, sc.rowVol) {
		clear(out)
		return
	}
	axisCosts(sc.colVol, sc.colCost)
	axisCosts(sc.rowVol, sc.rowCost)
	for c := range out {
		out[c] = sc.colCost[m.colOf[c]] + sc.rowCost[m.rowOf[c]]
	}
}

// PatchEditItem re-derives counts[w][d] from the window's current
// events and refreshes the matching residence-table row in place. The
// window must already hold the post-delta events; rows of other items
// and windows are untouched. sc may be nil (a transient scratch is
// allocated); sessions pass their own for an allocation-free patch.
func (m *Model) PatchEditItem(table ResidenceTable, w int, d trace.DataID, win *trace.Window, sc *RowScratch) {
	m.checkPatch(table, w)
	row := m.counts[w][d]
	for p := range row {
		row[p] = 0
	}
	for _, r := range win.Refs {
		if r.Data == d {
			row[r.Proc] += r.Volume
		}
	}
	if sc == nil {
		sc = m.NewRowScratch()
	}
	m.ResidenceRowInto(sc, w, d, table.Row(w, int(d)))
}

// PatchAppendWindow extends the model's counts and the table with one
// new window holding win's events, and returns the extended table.
// Only items the window actually references get a priced row; the rest
// keep the exact all-zero row an unreferenced (window, item) pair has
// in a full build. sc may be nil, as in PatchEditItem.
func (m *Model) PatchAppendWindow(table ResidenceTable, win *trace.Window, sc *RowScratch) ResidenceTable {
	if table.NumWindows() != len(m.counts) {
		panic(fmt.Sprintf("cost: table covers %d windows, model has %d", table.NumWindows(), len(m.counts)))
	}
	nd, np := m.NumData, m.Grid.NumProcs()

	flat := make([]int, nd*np)
	wc := make([][]int, nd)
	for d := 0; d < nd; d++ {
		wc[d], flat = flat[:np], flat[np:]
	}
	touched := make(map[trace.DataID]bool)
	for _, r := range win.Refs {
		wc[r.Data][r.Proc] += r.Volume
		touched[r.Data] = true
	}
	m.counts = append(m.counts, wc)

	// Extend the flat backing by one window's worth of zeroed cells,
	// reusing capacity when available (clear wipes whatever a removed
	// window left behind there).
	n := len(table.cells)
	table.cells = slices.Grow(table.cells, nd*np)[:n+nd*np]
	clear(table.cells[n:])
	table.nw++
	w := table.nw - 1
	if sc == nil {
		sc = m.NewRowScratch()
	}
	for d := range touched {
		m.ResidenceRowInto(sc, w, d, table.Row(w, int(d)))
	}
	return table
}

// PatchRemoveWindow drops window w from the model's counts and the
// table, shifting later windows down by one, and returns the shrunken
// table. The backing capacity is retained for future appends.
func (m *Model) PatchRemoveWindow(table ResidenceTable, w int) ResidenceTable {
	m.checkPatch(table, w)
	m.counts = append(m.counts[:w], m.counts[w+1:]...)
	stride := table.nd * table.np
	copy(table.cells[w*stride:], table.cells[(w+1)*stride:])
	table.cells = table.cells[:len(table.cells)-stride]
	table.nw--
	return table
}

func (m *Model) checkPatch(table ResidenceTable, w int) {
	if table.NumWindows() != len(m.counts) {
		panic(fmt.Sprintf("cost: table covers %d windows, model has %d", table.NumWindows(), len(m.counts)))
	}
	if w < 0 || w >= len(m.counts) {
		panic(fmt.Sprintf("cost: patch window %d outside [0,%d)", w, len(m.counts)))
	}
}
