package cost

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/trace"
	"repro/internal/workload"
)

func sameTable(a, b ResidenceTable) bool {
	return a.NumWindows() == b.NumWindows() && a.NumData() == b.NumData() &&
		a.NumProcs() == b.NumProcs() &&
		bytes.Equal(int64Bytes(a.Cells()), int64Bytes(b.Cells()))
}

func TestTableCodecV2RoundTrip(t *testing.T) {
	shapes := []struct {
		kind string
		n    int
		side int
	}{
		{"lu", 6, 3}, {"matsquare", 8, 4}, {"stencil", 10, 2}, {"code", 5, 3},
	}
	for _, sh := range shapes {
		gen, err := workload.ByName(sh.kind)
		if err != nil {
			t.Fatal(err)
		}
		tr := gen.Generate(sh.n, grid.Square(sh.side))
		fp := tr.Fingerprint()
		table := NewModel(tr).BuildResidenceTable()
		payload := EncodeTableV2(fp, table)
		gotFP, got, err := DecodeTableV2(payload)
		if err != nil {
			t.Fatalf("%s/%d: %v", sh.kind, sh.n, err)
		}
		if gotFP != fp {
			t.Fatalf("%s/%d: fingerprint %s, want %s", sh.kind, sh.n, gotFP, fp)
		}
		if !sameTable(got, table) {
			t.Fatalf("%s/%d: decoded table differs from original", sh.kind, sh.n)
		}
	}
}

func TestTableCodecV2RoundTripExtremeCells(t *testing.T) {
	var fp trace.Fingerprint
	fp[3] = 0x7c
	table := NewResidenceTable(2, 3, 4)
	cells := table.Cells()
	cells[0] = math.MinInt64
	cells[1] = math.MaxInt64
	cells[2] = -1
	cells[len(cells)-1] = math.MaxInt64
	cells[len(cells)-2] = math.MinInt64
	_, got, err := DecodeTableV2(EncodeTableV2(fp, table))
	if err != nil {
		t.Fatal(err)
	}
	if !sameTable(got, table) {
		t.Fatal("extreme cell values did not survive the round trip")
	}
}

// TestDecodeTableAnyCrossDecode pins version negotiation: the same
// table shipped in either codec decodes to identical cells through the
// one entry point table-accepting endpoints use.
func TestDecodeTableAnyCrossDecode(t *testing.T) {
	fp, table := builtTable(t)
	for _, tc := range []struct {
		name    string
		payload []byte
	}{
		{"v1", EncodeTable(fp, table)},
		{"v2", EncodeTableV2(fp, table)},
	} {
		gotFP, got, err := DecodeTableAny(tc.payload, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if gotFP != fp || !sameTable(got, table) {
			t.Fatalf("%s: cross-decode mismatch", tc.name)
		}
	}
	// Version-pinned decoders must refuse the other version's magic.
	if _, _, err := DecodeTable(EncodeTableV2(fp, table)); err == nil || !strings.Contains(err.Error(), "wrong magic") {
		t.Fatalf("DecodeTable accepted a v2 payload: %v", err)
	}
	if _, _, err := DecodeTableV2(EncodeTable(fp, table)); err == nil || !strings.Contains(err.Error(), "wrong magic") {
		t.Fatalf("DecodeTableV2 accepted a v1 payload: %v", err)
	}
}

// TestDecodeTableAnyCellLimit pins the uniform DoS guard: a payload
// whose declared shape exceeds the caller's budget is rejected before
// any cell allocation, in both codec versions.
func TestDecodeTableAnyCellLimit(t *testing.T) {
	fp, table := builtTable(t)
	cells := int64(table.NumWindows()) * int64(table.NumData()) * int64(table.NumProcs())
	for _, tc := range []struct {
		name    string
		payload []byte
	}{
		{"v1", EncodeTable(fp, table)},
		{"v2", EncodeTableV2(fp, table)},
	} {
		if _, _, err := DecodeTableAny(tc.payload, cells); err != nil {
			t.Fatalf("%s: rejected a table exactly at the budget: %v", tc.name, err)
		}
		_, _, err := DecodeTableAny(tc.payload, cells-1)
		if err == nil || !strings.Contains(err.Error(), "cell limit") {
			t.Fatalf("%s: budget %d did not reject a %d-cell table: %v", tc.name, cells-1, cells, err)
		}
	}
}

func TestTableCodecV2RejectsCorruption(t *testing.T) {
	fp, table := builtTable(t)
	payload := EncodeTableV2(fp, table)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(p []byte) []byte { return nil }, "header needs"},
		{"short header", func(p []byte) []byte { return p[:tableCodecHeaderLen-1] }, "header needs"},
		{"wrong magic", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			q[0] ^= 0xff
			return q
		}, "wrong magic"},
		{"truncated cells", func(p []byte) []byte { return p[:len(p)-5] }, "truncated"},
		{"trailing junk", func(p []byte) []byte { return append(append([]byte(nil), p...), 0, 1, 2) }, "trailing"},
		{"oversized shape", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			binary.LittleEndian.PutUint64(q[len(tableCodecV2Magic)+32:], 1<<62)
			return q
		}, "out of range"},
		{"huge but in-range shape", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			binary.LittleEndian.PutUint64(q[len(tableCodecV2Magic)+32:], 1<<31-1)
			binary.LittleEndian.PutUint64(q[len(tableCodecV2Magic)+40:], 1<<31-1)
			binary.LittleEndian.PutUint64(q[len(tableCodecV2Magic)+48:], 1<<31-1)
			return q
		}, "cell limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeTableV2(tc.mutate(payload))
			if err == nil {
				t.Fatal("DecodeTableV2 accepted a corrupt payload")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestTableCodecV2Compresses pins the tentpole's storage claim on a
// paper-shaped table: delta+varint must land at no more than half the
// flat encoding (the ≥2x acceptance bar), because the cold tier's whole
// point is holding more tables per byte.
func TestTableCodecV2Compresses(t *testing.T) {
	gen, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(16, grid.Square(4))
	fp := tr.Fingerprint()
	table := NewModel(tr).BuildResidenceTable()
	flat := len(EncodeTable(fp, table))
	comp := len(EncodeTableV2(fp, table))
	if ratio := float64(flat) / float64(comp); ratio < 2 {
		t.Fatalf("compression ratio %.2f (flat %d, v2 %d), want >= 2", ratio, flat, comp)
	}
}

// FuzzTableCodecV2 feeds arbitrary payloads to DecodeTableV2: it must
// never panic, and anything it accepts must survive a re-encode/decode
// cycle with identical values. Unlike v1, byte identity is NOT required
// — varints are non-canonical, so an over-long encoding decodes fine
// but re-encodes shorter; value identity is the invariant.
func FuzzTableCodecV2(f *testing.F) {
	var fp trace.Fingerprint
	f.Add([]byte{})
	f.Add([]byte(tableCodecV2Magic))
	f.Add(EncodeTableV2(fp, NewResidenceTable(0, 0, 0)))
	f.Add(EncodeTableV2(fp, NewResidenceTable(1, 1, 1)))
	f.Add(EncodeTableV2(fp, NewResidenceTable(2, 3, 4)))
	f.Add(EncodeTable(fp, NewResidenceTable(2, 3, 4))) // v1 magic must be rejected, not crash
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, table, err := DecodeTableV2(data)
		if err != nil {
			return
		}
		fp2, table2, err := DecodeTableV2(EncodeTableV2(fp, table))
		if err != nil {
			t.Fatalf("re-decode of an accepted payload failed: %v", err)
		}
		if fp2 != fp || !sameTable(table2, table) {
			t.Fatal("decode/encode/decode is not value-identity")
		}
	})
}

// BenchmarkTableCodecV2 measures encode and decode throughput and
// reports the compression ratio over the v1 flat codec on a
// paper-shaped table; scripts/bench.sh snapshots the ratio into
// BENCH_CACHE.json.
func BenchmarkTableCodecV2(b *testing.B) {
	gen, err := workload.ByName("lu")
	if err != nil {
		b.Fatal(err)
	}
	tr := gen.Generate(16, grid.Square(4))
	fp := tr.Fingerprint()
	table := NewModel(tr).BuildResidenceTable()
	flat := len(EncodeTable(fp, table))
	payload := EncodeTableV2(fp, table)
	ratio := float64(flat) / float64(len(payload))

	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, len(payload))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendTableV2(buf[:0], fp, table)
		}
		b.ReportMetric(ratio, "ratio")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := DecodeTableV2(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(ratio, "ratio")
	})
}
