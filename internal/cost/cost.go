// Package cost implements the communication-cost model of the paper.
//
// The cost of a processor p referencing v units of a data item resident
// on processor c is v * dist(p, c), where dist is the x-y routing
// (Manhattan) distance on the processor array. The total communication
// cost of a schedule is the sum of
//
//   - the residence cost of every window: every reference weighted by
//     the distance to the window's center for the referenced item, and
//   - the movement cost between consecutive windows: the distance the
//     item travels when its center changes, weighted by the item size.
//
// The model pre-computes a residence table R[w][d][c] — the total cost
// of window w if data item d is stored at processor c — which is the
// quantity all three schedulers (SCDS, LOMCDS, GOMCDS) minimize over.
package cost

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Schedule assigns a center (storage processor) to every data item in
// every execution window: Centers[w][d] is the processor holding item d
// during window w.
type Schedule struct {
	Centers [][]int
}

// NumWindows returns the number of windows the schedule covers.
func (s Schedule) NumWindows() int { return len(s.Centers) }

// Uniform returns a schedule that keeps the given single-window
// assignment for all numWindows windows, i.e. a schedule without data
// movement. It copies the assignment so later mutation of either side
// is safe.
func Uniform(assign []int, numWindows int) Schedule {
	centers := make([][]int, numWindows)
	for w := range centers {
		centers[w] = make([]int, len(assign))
		copy(centers[w], assign)
	}
	return Schedule{Centers: centers}
}

// Clone returns a deep copy of the schedule, so callers can perturb or
// archive one side without aliasing the other.
func (s Schedule) Clone() Schedule {
	centers := make([][]int, len(s.Centers))
	for w, row := range s.Centers {
		centers[w] = make([]int, len(row))
		copy(centers[w], row)
	}
	return Schedule{Centers: centers}
}

// Equal reports whether two schedules place every item identically in
// every window.
func (s Schedule) Equal(o Schedule) bool {
	if len(s.Centers) != len(o.Centers) {
		return false
	}
	for w, row := range s.Centers {
		if len(row) != len(o.Centers[w]) {
			return false
		}
		for d, c := range row {
			if c != o.Centers[w][d] {
				return false
			}
		}
	}
	return true
}

// Validate checks that the schedule has one center per data item per
// window and that all centers are processors of the array.
func (s Schedule) Validate(g grid.Grid, numData, numWindows int) error {
	if len(s.Centers) != numWindows {
		return fmt.Errorf("cost: schedule covers %d windows, trace has %d", len(s.Centers), numWindows)
	}
	np := g.NumProcs()
	for w, row := range s.Centers {
		if len(row) != numData {
			return fmt.Errorf("cost: window %d places %d items, trace has %d", w, len(row), numData)
		}
		for d, c := range row {
			if c < 0 || c >= np {
				return fmt.Errorf("cost: window %d data %d on processor %d outside %v array", w, d, c, g)
			}
		}
	}
	return nil
}

// Model evaluates schedules against a trace. Create one with NewModel;
// it owns the distance table and per-window reference counts.
type Model struct {
	Grid    grid.Grid
	NumData int

	// DataSize[d] is the movement volume of item d (units transferred
	// when the item changes centers). NewModel initializes all sizes to
	// one, matching the paper's unit-data assumption; callers may
	// overwrite entries to model coarser items.
	DataSize []int

	// Kernel selects the residence-table algorithm. The zero value is
	// KernelSeparable, the fast prefix-sum kernel; set KernelNaive to
	// fall back to per-cell summation (the differential referee runs
	// both and demands cell-for-cell agreement).
	Kernel Kernel

	// Stages, when non-nil, receives one (stage, duration) observation
	// per table build ("cost.residence_table", "cost.aggregate_table",
	// ...). It is the package-local form of obs.Stages — declared as a
	// plain func so the core cost model stays free of observability
	// imports — and must be safe for concurrent use when the model is
	// shared (the scheduling service caches models across requests).
	// Nil is a no-op.
	Stages func(stage string, d time.Duration)

	dist   [][]int
	counts trace.Counts

	// colOf[p] / rowOf[p] are the x / y coordinates of processor p,
	// precomputed so the separable kernel projects volumes onto axis
	// histograms without coordinate arithmetic in the inner loop.
	colOf, rowOf []int
}

// NewModel builds a cost model for the trace. The trace must be valid
// (see trace.Validate); NewModel panics on a malformed trace because
// every caller constructs traces through validated paths.
func NewModel(t *trace.Trace) *Model {
	if err := t.Validate(); err != nil {
		panic("cost: " + err.Error())
	}
	sizes := make([]int, t.NumData)
	for i := range sizes {
		sizes[i] = 1
	}
	np := t.Grid.NumProcs()
	colOf := make([]int, np)
	rowOf := make([]int, np)
	for p := 0; p < np; p++ {
		c := t.Grid.Coord(p)
		colOf[p], rowOf[p] = c.X, c.Y
	}
	return &Model{
		Grid:     t.Grid,
		NumData:  t.NumData,
		DataSize: sizes,
		dist:     t.Grid.DistanceTable(),
		counts:   t.BuildCounts(),
		colOf:    colOf,
		rowOf:    rowOf,
	}
}

// NumWindows returns the number of execution windows in the underlying
// trace.
func (m *Model) NumWindows() int { return len(m.counts) }

// Dist returns the x-y routing distance between two processors.
func (m *Model) Dist(a, b int) int { return m.dist[a][b] }

// Counts returns the reference-count matrix (shared, do not mutate).
func (m *Model) Counts() trace.Counts { return m.counts }

// Residence returns the residence cost of storing data item d at
// processor c during window w: the sum over all processors p of
// counts[w][d][p] * dist(p, c).
func (m *Model) Residence(w int, d trace.DataID, c int) int64 {
	var total int64
	for p, v := range m.counts[w][d] {
		if v != 0 {
			total += int64(v) * int64(m.dist[p][c])
		}
	}
	return total
}

// ResidenceTable holds R[w][d][c], the residence cost of window w with
// item d stored at processor c, in one flat backing slice indexed
// arithmetically: cell (w, d, c) lives at (w*nd + d)*np + c. The flat
// layout keeps every row of one window contiguous (all items of window
// w occupy cells [w*nd*np, (w+1)*nd*np)), which is what the batched DP
// sweep (costgraph.Solver.SolveBatch) streams through layer by layer.
// Access rows with Row and single cells with At; Cells exposes the
// backing slice for kernels that consume the documented layout
// directly.
type ResidenceTable struct {
	nw, nd, np int
	cells      []int64
}

// NewResidenceTable returns a zeroed nw x nd x np table.
func NewResidenceTable(nw, nd, np int) ResidenceTable {
	if nw < 0 || nd < 0 || np < 0 {
		panic(fmt.Sprintf("cost: negative table shape %dx%dx%d", nw, nd, np))
	}
	return ResidenceTable{nw: nw, nd: nd, np: np, cells: make([]int64, nw*nd*np)}
}

// NumWindows returns the number of windows the table covers.
func (t ResidenceTable) NumWindows() int { return t.nw }

// NumData returns the number of data items per window.
func (t ResidenceTable) NumData() int { return t.nd }

// NumProcs returns the number of processors per row.
func (t ResidenceTable) NumProcs() int { return t.np }

// Row returns the np-cell residence row of (window w, item d) as a
// full-capacity subslice of the backing store: writing through it
// mutates the table, and no allocation happens.
func (t ResidenceTable) Row(w, d int) []int64 {
	base := (w*t.nd + d) * t.np
	return t.cells[base : base+t.np : base+t.np]
}

// At returns the residence cost of window w with item d at processor c.
func (t ResidenceTable) At(w, d, c int) int64 {
	return t.cells[(w*t.nd+d)*t.np+c]
}

// Cells returns the flat backing slice in the documented
// (w*nd + d)*np + c layout (shared, do not resize).
func (t ResidenceTable) Cells() []int64 { return t.cells }

// BuildResidenceTable computes the full residence table with the
// kernel selected by m.Kernel (the separable prefix-sum kernel by
// default), parallelized over data items. Most scheduler run time is
// spent here, so the table is built once and shared across SCDS,
// LOMCDS and GOMCDS runs on the same trace.
func (m *Model) BuildResidenceTable() ResidenceTable {
	defer m.stage("cost.residence_table")()
	if m.Kernel == KernelNaive {
		return m.buildNaive()
	}
	return m.buildSeparable()
}

// BuildResidenceTableNaive computes the table with the per-cell
// summation kernel regardless of m.Kernel, for differential testing
// against the separable kernel.
func (m *Model) BuildResidenceTableNaive() ResidenceTable {
	defer m.stage("cost.residence_table_naive")()
	return m.buildNaive()
}

// stage opens a span for one named build phase: the returned func
// records the elapsed time with m.Stages. Nil-safe and free when no
// sink is installed.
func (m *Model) stage(name string) func() {
	if m.Stages == nil {
		return func() {}
	}
	start := time.Now()
	return func() { m.Stages(name, time.Since(start)) }
}

// ResidenceCost returns the total residence cost of the schedule: the
// cost of serving every reference from each window's chosen centers.
func (m *Model) ResidenceCost(s Schedule) int64 {
	return parallel.SumInt64(m.NumData, func(d int) int64 {
		var total int64
		for w := range s.Centers {
			total += m.Residence(w, trace.DataID(d), s.Centers[w][d])
		}
		return total
	})
}

// MoveCost returns the total data-movement cost of the schedule: for
// every data item and every pair of consecutive windows, the distance
// between the two centers weighted by the item size.
func (m *Model) MoveCost(s Schedule) int64 {
	return parallel.SumInt64(m.NumData, func(d int) int64 {
		var total int64
		for w := 1; w < len(s.Centers); w++ {
			total += int64(m.DataSize[d]) * int64(m.dist[s.Centers[w-1][d]][s.Centers[w][d]])
		}
		return total
	})
}

// TotalCost returns ResidenceCost + MoveCost, the objective the paper's
// data-scheduling problem minimizes.
func (m *Model) TotalCost(s Schedule) int64 {
	return m.ResidenceCost(s) + m.MoveCost(s)
}

// DataCost returns the contribution of one data item to the total cost
// given its per-window center sequence. Schedulers use it to reason
// about items independently.
func (m *Model) DataCost(d trace.DataID, centers []int) int64 {
	var total int64
	for w, c := range centers {
		total += m.Residence(w, d, c)
		if w > 0 {
			total += int64(m.DataSize[d]) * int64(m.dist[centers[w-1]][c])
		}
	}
	return total
}

// Breakdown reports the residence, movement and total cost of a
// schedule in one pass, for experiment tables.
type Breakdown struct {
	Residence int64
	Move      int64
}

// Total returns the combined cost.
func (b Breakdown) Total() int64 { return b.Residence + b.Move }

// Evaluate returns the cost breakdown of a schedule.
func (m *Model) Evaluate(s Schedule) Breakdown {
	return Breakdown{Residence: m.ResidenceCost(s), Move: m.MoveCost(s)}
}
