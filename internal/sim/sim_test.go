package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestSingleMessageLatency(t *testing.T) {
	// One ref of volume 2 from proc 3 with data on proc 0 (2x2 grid,
	// distance 2): store-and-forward, 2 flits per hop -> 2 hops x 2
	// cycles = 4 cycles; flit-hops = 4.
	g := grid.Square(2)
	tr := trace.New(g, 1)
	tr.AddWindow().AddVolume(3, 0, 2)
	sc := cost.Uniform([]int{0}, 1)
	res, err := Simulate(tr, sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 4 {
		t.Errorf("Cycles = %d, want 4", res.Cycles)
	}
	if res.FlitHops != 4 {
		t.Errorf("FlitHops = %d, want 4", res.FlitHops)
	}
	if res.Messages != 1 {
		t.Errorf("Messages = %d", res.Messages)
	}
}

func TestLocalReferenceIsFree(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 1)
	tr.AddWindow().AddVolume(2, 0, 5)
	sc := cost.Uniform([]int{2}, 1)
	res, err := Simulate(tr, sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.FlitHops != 0 || res.Messages != 0 {
		t.Errorf("local reference not free: %+v", res)
	}
}

func TestMovementPhase(t *testing.T) {
	// Two windows; the item moves from proc 0 to proc 3 (distance 2)
	// between them, and nothing references it in window 1.
	g := grid.Square(2)
	tr := trace.New(g, 1)
	tr.AddWindow().Add(0, 0)
	tr.AddWindow()
	sc := cost.Schedule{Centers: [][]int{{0}, {3}}}
	res, err := Simulate(tr, sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MoveCycles != 2 {
		t.Errorf("MoveCycles = %d, want 2", res.MoveCycles)
	}
	if res.FlitHops != 2 {
		t.Errorf("FlitHops = %d, want 2", res.FlitHops)
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	// 1x3 row: data items on proc 0 and both referenced by proc 2.
	// Both messages cross link 1->2; with contention the second waits.
	g := grid.New(3, 1)
	tr := trace.New(g, 2)
	w := tr.AddWindow()
	w.AddVolume(2, 0, 3)
	w.AddVolume(2, 1, 3)
	sc := cost.Uniform([]int{0, 0}, 1)

	free, err := Simulate(tr, sc, Options{NoContention: true})
	if err != nil {
		t.Fatal(err)
	}
	// Each message: 2 hops x 3 cycles = 6.
	if free.Cycles != 6 {
		t.Errorf("no-contention Cycles = %d, want 6", free.Cycles)
	}
	loaded, err := Simulate(tr, sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cycles <= free.Cycles {
		t.Errorf("contention did not lengthen makespan: %d vs %d", loaded.Cycles, free.Cycles)
	}
	// Flit-hops are contention-invariant.
	if loaded.FlitHops != free.FlitHops {
		t.Errorf("FlitHops changed with contention: %d vs %d", loaded.FlitHops, free.FlitHops)
	}
	if loaded.MaxLinkFlits != 6 {
		t.Errorf("MaxLinkFlits = %d, want 6 on the shared link", loaded.MaxLinkFlits)
	}
}

func TestBandwidthShortensCrossing(t *testing.T) {
	g := grid.New(2, 1)
	tr := trace.New(g, 1)
	tr.AddWindow().AddVolume(1, 0, 4)
	sc := cost.Uniform([]int{0}, 1)
	slow, err := Simulate(tr, sc, Options{LinkBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Simulate(tr, sc, Options{LinkBandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles != 4 || fast.Cycles != 1 {
		t.Errorf("Cycles = %d and %d, want 4 and 1", slow.Cycles, fast.Cycles)
	}
}

// The cross-validation invariant: simulated flit-hops equal the
// analytic total communication cost, for any schedule and trace.
func TestFlitHopsMatchAnalyticCost(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for iter := 0; iter < 40; iter++ {
		g := grid.New(1+rng.Intn(4), 1+rng.Intn(4))
		nd := 1 + rng.Intn(6)
		tr := trace.New(g, nd)
		for w := 0; w < 1+rng.Intn(4); w++ {
			win := tr.AddWindow()
			for r := 0; r < rng.Intn(14); r++ {
				win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
			}
		}
		m := cost.NewModel(tr)
		sc := cost.Schedule{Centers: make([][]int, tr.NumWindows())}
		for w := range sc.Centers {
			sc.Centers[w] = make([]int, nd)
			for d := range sc.Centers[w] {
				sc.Centers[w][d] = rng.Intn(g.NumProcs())
			}
		}
		res, err := Simulate(tr, sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := m.TotalCost(sc); res.FlitHops != want {
			t.Fatalf("iter %d: FlitHops %d != analytic cost %d", iter, res.FlitHops, want)
		}
	}
}

// Schedule quality carries over to simulated execution time: on the
// paper benchmarks, GOMCDS's makespan does not exceed the row-wise
// baseline's.
func TestBetterScheduleFewerCycles(t *testing.T) {
	g := grid.Square(4)
	for _, b := range workload.PaperBenchmarks() {
		tr := b.Gen.Generate(8, g)
		p := sched.NewProblem(tr, 0)
		base, err := sched.Fixed{
			Label:  "S.F.",
			Assign: placement.RowWise(trace.SquareMatrix(8), g),
		}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		best, err := sched.GOMCDS{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		rBase, err := Simulate(tr, base, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rBest, err := Simulate(tr, best, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rBest.Cycles > rBase.Cycles {
			t.Errorf("benchmark %d: GOMCDS %d cycles > S.F. %d cycles", b.ID, rBest.Cycles, rBase.Cycles)
		}
		if rBest.FlitHops >= rBase.FlitHops {
			t.Errorf("benchmark %d: GOMCDS flit-hops %d >= S.F. %d", b.ID, rBest.FlitHops, rBase.FlitHops)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := grid.Square(4)
	tr := workload.Code{Seed: 3}.Generate(8, g)
	p := sched.NewProblem(tr, 0)
	sc, err := sched.LOMCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Simulate(tr, sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Simulate(tr, sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d differs: %+v vs %+v", i, again, first)
		}
	}
}

func TestRunValidation(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 1)
	tr.AddWindow().Add(0, 0)
	// Wrong window count.
	if _, err := Simulate(tr, cost.Schedule{}, Options{}); err == nil {
		t.Error("short schedule accepted")
	}
	// Mismatched grid.
	s := New(grid.Square(3), Options{})
	if _, err := s.Run(tr, cost.Uniform([]int{0}, 1)); err == nil {
		t.Error("grid mismatch accepted")
	}
	// Invalid trace.
	bad := trace.New(g, 1)
	bad.AddWindow().Refs = append(bad.Windows[0].Refs, trace.Ref{Proc: 9, Data: 0, Volume: 1})
	if _, err := Simulate(bad, cost.Uniform([]int{0}, 1), Options{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSimulatorReuse(t *testing.T) {
	// Running twice on the same Simulator must reset link state.
	g := grid.Square(2)
	tr := trace.New(g, 1)
	tr.AddWindow().AddVolume(3, 0, 2)
	sc := cost.Uniform([]int{0}, 1)
	s := New(g, Options{})
	a, err := s.Run(tr, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(tr, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("reused simulator gave %+v then %+v", a, b)
	}
}

func TestEmptyTraceSimulates(t *testing.T) {
	tr := trace.New(grid.Square(2), 1)
	res, err := Simulate(tr, cost.Schedule{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Messages != 0 {
		t.Errorf("empty trace result %+v", res)
	}
}

func BenchmarkSimulateLU16(b *testing.B) {
	g := grid.Square(4)
	tr := workload.LU{}.Generate(16, g)
	p := sched.NewProblem(tr, 0)
	sc, err := sched.GOMCDS{}.Schedule(p)
	if err != nil {
		b.Fatal(err)
	}
	s := New(g, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(tr, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRoutingNames(t *testing.T) {
	if RouteXY.String() != "xy" || RouteYX.String() != "yx" || RouteBalanced.String() != "balanced" {
		t.Fatal("routing names wrong")
	}
	if Routing(9).String() == "" {
		t.Fatal("unknown routing empty")
	}
	for _, name := range []string{"xy", "yx", "balanced"} {
		if _, err := RoutingByName(name); err != nil {
			t.Errorf("RoutingByName(%q): %v", name, err)
		}
	}
	if _, err := RoutingByName("zigzag"); err == nil {
		t.Error("bogus routing accepted")
	}
}

// All disciplines are minimal: flit-hops are routing-invariant, and the
// no-contention makespan is identical.
func TestRoutingInvariants(t *testing.T) {
	g := grid.Square(4)
	tr := workload.Code{Seed: 9}.Generate(8, g)
	p := sched.NewProblem(tr, 0)
	sc, err := sched.LOMCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	var base Result
	for i, routing := range []Routing{RouteXY, RouteYX, RouteBalanced} {
		res, err := Simulate(tr, sc, Options{Routing: routing})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			continue
		}
		if res.FlitHops != base.FlitHops {
			t.Errorf("%v: flit-hops %d != %d", routing, res.FlitHops, base.FlitHops)
		}
		if res.Messages != base.Messages {
			t.Errorf("%v: messages %d != %d", routing, res.Messages, base.Messages)
		}
	}
}

// Balanced routing relieves a pathological hot link: many messages from
// one row's corner to another corner of the same row share every XY
// link, while YX halves split the load... construct column conflict:
// two sources in one column sending to two destinations in another
// column share the horizontal link under XY at the source row... use a
// synthetic pattern where XY concentrates on one row.
func TestBalancedRoutingReducesHotLink(t *testing.T) {
	g := grid.Square(4)
	tr := trace.New(g, 8)
	w := tr.AddWindow()
	// All items live at (0,0); readers spread across column x=3.
	// XY routing sends everything along row 0 then down: row 0 links
	// carry all traffic. Balanced routing sends half along columns.
	for d := 0; d < 8; d++ {
		w.AddVolume(g.Index(grid.Coord{X: 3, Y: d % 4}), trace.DataID(d), 4)
	}
	sc := cost.Uniform(make([]int, 8), 1)
	xy, err := Simulate(tr, sc, Options{Routing: RouteXY})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Simulate(tr, sc, Options{Routing: RouteBalanced})
	if err != nil {
		t.Fatal(err)
	}
	if bal.MaxLinkFlits >= xy.MaxLinkFlits {
		t.Errorf("balanced max link %d >= xy max link %d", bal.MaxLinkFlits, xy.MaxLinkFlits)
	}
}

func TestRunPlanMatchesRun(t *testing.T) {
	g := grid.Square(4)
	tr := workload.LU{}.Generate(8, g)
	p := sched.NewProblem(tr, 0)
	sc, err := sched.GOMCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Build(tr, sc)
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, Options{})
	a, err := s.Run(tr, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunPlan(pl)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Run %+v != RunPlan %+v", a, b)
	}
}

func TestRunPlanValidation(t *testing.T) {
	s := New(grid.Square(2), Options{})
	bad := &plan.Plan{Grid: grid.Square(3)}
	if _, err := s.RunPlan(bad); err == nil {
		t.Error("grid mismatch accepted")
	}
	corrupt := &plan.Plan{Grid: grid.Square(2), Phases: []plan.Phase{{
		Serves: []plan.Message{{Src: 0, Dst: 9, Volume: 1}},
	}}}
	if _, err := s.RunPlan(corrupt); err == nil {
		t.Error("corrupt plan accepted")
	}
}
