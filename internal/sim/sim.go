// Package sim is a discrete-event, packet-level simulator of the PIM
// array's 2-D mesh interconnect. It executes a data schedule against a
// trace: every execution window runs a data-movement phase (items whose
// centers changed travel between processors) followed by a serve phase
// (every remote reference pulls its data from the window's center),
// with x-y routed, store-and-forward messages contending for links.
//
// The simulator exists to validate the paper's analytic cost model and
// to express schedule quality in execution time: with contention
// disabled, the total flit-hops it reports equal the analytic total
// communication cost exactly (a property the tests enforce), while the
// makespan in cycles additionally exposes link serialization that the
// analytic model abstracts away.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/trace"
)

// Routing selects the dimension-ordered routing discipline.
type Routing int

const (
	// RouteXY routes along x first, then y (the paper's assumption).
	RouteXY Routing = iota
	// RouteYX routes along y first, then x.
	RouteYX
	// RouteBalanced alternates XY and YX per message (the O1TURN
	// discipline), spreading load over both dimension orders.
	RouteBalanced
)

// String returns the routing name.
func (r Routing) String() string {
	switch r {
	case RouteXY:
		return "xy"
	case RouteYX:
		return "yx"
	case RouteBalanced:
		return "balanced"
	}
	return fmt.Sprintf("Routing(%d)", int(r))
}

// RoutingByName resolves "xy", "yx" or "balanced".
func RoutingByName(name string) (Routing, error) {
	switch name {
	case "xy":
		return RouteXY, nil
	case "yx":
		return RouteYX, nil
	case "balanced":
		return RouteBalanced, nil
	}
	return 0, fmt.Errorf("sim: unknown routing %q (want xy, yx or balanced)", name)
}

// Options configures the interconnect.
type Options struct {
	// LinkBandwidth is the number of flits a link forwards per cycle.
	// 0 or less means 1 (the unit assumption of the paper's model).
	LinkBandwidth int
	// NoContention disables link arbitration: messages never wait for
	// one another. Per-hop serialization of a message's own flits still
	// applies.
	NoContention bool
	// Routing selects the dimension order; the default is RouteXY. All
	// disciplines are minimal, so FlitHops is routing-invariant.
	Routing Routing
}

// Result aggregates one simulation run.
type Result struct {
	// Cycles is the makespan: the cycle at which the last message of
	// the last window's serve phase arrives.
	Cycles int64
	// FlitHops is the total volume-weighted hop count of all messages;
	// it equals the analytic total communication cost of the schedule.
	FlitHops int64
	// Messages is the number of point-to-point messages simulated.
	Messages int
	// MoveCycles and ServeCycles split the makespan into the two phase
	// kinds, summed over windows.
	MoveCycles, ServeCycles int64
	// MaxLinkFlits is the largest number of flits carried by any single
	// link, a congestion indicator.
	MaxLinkFlits int64
}

// message is one point-to-point transfer.
type message struct {
	id   int
	src  int
	dst  int
	size int64
}

// event is a message arriving at the head of its next link.
type event struct {
	time int64
	msg  int // index into the phase's message list
	hop  int // next link index on the route
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].msg != q[j].msg {
		return q[i].msg < q[j].msg
	}
	return q[i].hop < q[j].hop
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Simulator holds the immutable topology for repeated runs.
type Simulator struct {
	g      grid.Grid
	opts   Options
	routes map[[3]int][]int // cached routes keyed by (src, dst, orderYX)

	// linkFree[l] is the cycle at which link l becomes idle;
	// linkFlits[l] counts flits carried. Links are directed mesh edges
	// indexed by from*numProcs+to (sparse map avoided for speed).
	linkFree  []int64
	linkFlits []int64
}

// New returns a simulator for the given array.
func New(g grid.Grid, opts Options) *Simulator {
	if opts.LinkBandwidth <= 0 {
		opts.LinkBandwidth = 1
	}
	np := g.NumProcs()
	return &Simulator{
		g:         g,
		opts:      opts,
		routes:    make(map[[3]int][]int),
		linkFree:  make([]int64, np*np),
		linkFlits: make([]int64, np*np),
	}
}

// route returns the message's path under the configured discipline.
// msgID selects the dimension order for RouteBalanced.
func (s *Simulator) route(src, dst, msgID int) []int {
	yx := 0
	switch s.opts.Routing {
	case RouteYX:
		yx = 1
	case RouteBalanced:
		yx = msgID & 1
	}
	key := [3]int{src, dst, yx}
	if r, ok := s.routes[key]; ok {
		return r
	}
	var r []int
	if yx == 1 {
		r = s.g.RouteYX(src, dst)
	} else {
		r = s.g.Route(src, dst)
	}
	s.routes[key] = r
	return r
}

// Run lowers the schedule into a communication plan and executes it.
// The schedule must cover the trace; Run returns an error otherwise.
func (s *Simulator) Run(t *trace.Trace, sc cost.Schedule) (Result, error) {
	if t.Grid != s.g {
		return Result{}, fmt.Errorf("sim: trace array %v does not match simulator array %v", t.Grid, s.g)
	}
	p, err := plan.Build(t, sc)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %v", err)
	}
	return s.RunPlan(p)
}

// RunPlan executes a lowered communication plan: each phase's movement
// messages inject together, drain, and then the phase's serve messages
// inject — the windows are barriers, matching the execution-window
// semantics of the schedule the plan came from.
func (s *Simulator) RunPlan(p *plan.Plan) (Result, error) {
	if p.Grid != s.g {
		return Result{}, fmt.Errorf("sim: plan array %v does not match simulator array %v", p.Grid, s.g)
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %v", err)
	}
	for i := range s.linkFree {
		s.linkFree[i] = 0
		s.linkFlits[i] = 0
	}

	var res Result
	now := int64(0)
	for w := range p.Phases {
		if msgs := convert(p.Phases[w].Moves); len(msgs) > 0 {
			end := s.runPhase(msgs, now, &res)
			res.MoveCycles += end - now
			now = end
		}
		end := s.runPhase(convert(p.Phases[w].Serves), now, &res)
		res.ServeCycles += end - now
		now = end
	}
	res.Cycles = now
	for _, f := range s.linkFlits {
		if f > res.MaxLinkFlits {
			res.MaxLinkFlits = f
		}
	}
	return res, nil
}

func convert(msgs []plan.Message) []message {
	out := make([]message, len(msgs))
	for i, m := range msgs {
		out[i] = message{id: i, src: m.Src, dst: m.Dst, size: m.Volume}
	}
	return out
}

// runPhase injects all messages at time start and advances the
// discrete-event loop until the phase drains, returning the phase's
// completion time.
func (s *Simulator) runPhase(msgs []message, start int64, res *Result) int64 {
	res.Messages += len(msgs)
	q := make(eventQueue, 0, len(msgs))
	for i := range msgs {
		q = append(q, event{time: start, msg: i, hop: 0})
	}
	heap.Init(&q)
	end := start
	np := s.g.NumProcs()
	bw := int64(s.opts.LinkBandwidth)
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		m := &msgs[e.msg]
		route := s.route(m.src, m.dst, m.id)
		if e.hop >= len(route)-1 {
			// Arrived at the destination.
			if e.time > end {
				end = e.time
			}
			continue
		}
		from, to := route[e.hop], route[e.hop+1]
		link := from*np + to
		crossing := (m.size + bw - 1) / bw
		var begin int64
		if s.opts.NoContention {
			begin = e.time
		} else {
			begin = e.time
			if s.linkFree[link] > begin {
				begin = s.linkFree[link]
			}
			s.linkFree[link] = begin + crossing
		}
		s.linkFlits[link] += m.size
		res.FlitHops += m.size
		heap.Push(&q, event{time: begin + crossing, msg: e.msg, hop: e.hop + 1})
	}
	return end
}

// Simulate is a convenience wrapper: build a simulator and run once.
func Simulate(t *trace.Trace, sc cost.Schedule, opts Options) (Result, error) {
	return New(t.Grid, opts).Run(t, sc)
}
