package cliutil

import (
	"reflect"
	"testing"
)

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("4x4")
	if err != nil || g.Width() != 4 || g.Height() != 4 {
		t.Fatalf("ParseGrid(4x4) = %v, %v", g, err)
	}
	g, err = ParseGrid("8X2")
	if err != nil || g.Width() != 8 || g.Height() != 2 {
		t.Fatalf("ParseGrid(8X2) = %v, %v", g, err)
	}
	for _, bad := range []string{"", "4", "4x", "x4", "0x4", "4x-1", "axb", "4x4x4"} {
		if _, err := ParseGrid(bad); err == nil {
			t.Errorf("ParseGrid(%q) succeeded", bad)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes("8,16,32")
	if err != nil || !reflect.DeepEqual(got, []int{8, 16, 32}) {
		t.Fatalf("ParseSizes = %v, %v", got, err)
	}
	got, err = ParseSizes(" 8 , 16 ")
	if err != nil || !reflect.DeepEqual(got, []int{8, 16}) {
		t.Fatalf("ParseSizes with spaces = %v, %v", got, err)
	}
	for _, bad := range []string{"", ",", "a", "0", "-4", "8,x"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) succeeded", bad)
		}
	}
}
