// Package cliutil holds flag-parsing helpers shared by the command-line
// tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/grid"
)

// ParseGrid parses a "WxH" grid specification (e.g. "4x4").
func ParseGrid(s string) (grid.Grid, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return grid.Grid{}, fmt.Errorf("invalid grid %q (want WxH, e.g. 4x4)", s)
	}
	w, err1 := strconv.Atoi(parts[0])
	h, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || w <= 0 || h <= 0 {
		return grid.Grid{}, fmt.Errorf("invalid grid %q (want WxH with positive dimensions)", s)
	}
	return grid.New(w, h), nil
}

// ParseSizes parses a comma-separated list of positive integers
// (e.g. "8,16,32").
func ParseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid size %q (want positive integers, e.g. 8,16,32)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes in %q", s)
	}
	return out, nil
}
