package service

import (
	"context"
	"testing"

	"repro/internal/grid"
)

// TestScheduleSteadyStateAllocsBounded pins the allocation count of a
// full in-process cache-hot Schedule call. Unlike the kernel pins this
// cannot be zero — every request decodes its own trace text and
// assembles its own response, both proportional to the instance — but
// it must be a fixed bound at a fixed instance: the table build, the
// DP scratch and the solver are all pooled or cached, so any growth
// here means per-request garbage returned to the steady state. The
// budget is the measured value (~1050 on this lu/8, 4x4, gomcds
// instance) plus headroom for toolchain drift.
func TestScheduleSteadyStateAllocsBounded(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	text := traceText(t, "lu", 8, grid.Square(4))
	req := Request{Trace: text, Algorithm: "gomcds"}
	ctx := context.Background()
	if _, err := svc.Schedule(ctx, req); err != nil {
		t.Fatal(err) // warm: builds and caches the table
	}
	const budget = 1400
	if n := testing.AllocsPerRun(100, func() {
		if _, err := svc.Schedule(ctx, req); err != nil {
			t.Fatal(err)
		}
	}); n > budget {
		t.Fatalf("cache-hot Schedule allocates %v per run, budget %d", n, budget)
	}
}
