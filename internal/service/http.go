package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/trace"
)

// Handler returns the service's HTTP surface:
//
//	POST   /schedule[?verify=true]     run a scheduler over an inline trace
//	POST   /schedule/batch             run many specs over one shared trace
//	GET    /table/{fingerprint}        serve a cached residence table (peer fill)
//	POST   /table/prefill              adopt a trace's table from a peer (replication)
//	POST   /session                    open an incremental session
//	GET    /session/{id}               describe a session
//	POST   /session/{id}/delta         apply one trace delta
//	POST   /session/{id}/schedule      schedule the session's current trace
//	POST   /session/{id}/export        serialize a session for migration
//	POST   /session/import             resume an exported session
//	DELETE /session/{id}               close a session
//	GET    /healthz                    liveness (503 once shutdown began)
//	GET    /stats                      counter snapshot as JSON
//	GET    /metrics                    Prometheus text exposition
//
// Error responses are JSON objects {"error": "..."} with the status
// conveying the class: 400 malformed request, 404 unknown path or
// session, 405 bad method, 413 oversized body, 429 shed load (with
// Retry-After), 503 shutting down, 504 deadline expired, 500 internal
// inconsistency.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", s.handleSchedule)
	mux.HandleFunc("POST /schedule/batch", s.handleScheduleBatch)
	mux.HandleFunc("GET /table/{fingerprint}", s.handleTableGet)
	mux.HandleFunc("POST /table/prefill", s.handleTablePrefill)
	mux.HandleFunc("POST /session", s.handleSessionCreate)
	mux.HandleFunc("GET /session/{id}", s.handleSessionInfo)
	mux.HandleFunc("DELETE /session/{id}", s.handleSessionDelete)
	mux.HandleFunc("POST /session/{id}/delta", s.handleSessionDelta)
	mux.HandleFunc("POST /session/{id}/schedule", s.handleSessionSchedule)
	mux.HandleFunc("POST /session/{id}/export", s.handleSessionExport)
	mux.HandleFunc("POST /session/import", s.handleSessionImport)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	return mux
}

func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req Request
	if !s.decodeBody(w, r, &req) {
		return
	}
	if v := r.URL.Query().Get("verify"); v == "true" || v == "1" {
		req.Verify = true
	}
	req.PeerHint = r.Header.Get(PeerHintHeader)

	resp, err := s.Schedule(r.Context(), req)
	if err != nil {
		s.scheduleError(w, err)
		return
	}
	sp := s.stages.Start("encode")
	writeJSON(w, http.StatusOK, resp)
	sp.End()
}

// PeerHintHeader names the request header the router uses to tell a
// shard which peer to ask for a cached table before building one
// locally. Its value is the peer's base URL.
const PeerHintHeader = "X-Pim-Peer"

// TableCodecHeader names the request header a peer sends on GET
// /table/{fingerprint} to negotiate the table codec version. Absent or
// unrecognized means pimtab-v1 (every decoder this fleet ever shipped
// reads it); the value cost.TableCodecV2 asks for the compressed codec,
// which a cold-tier table serves without recompression.
const TableCodecHeader = "X-Pim-Table-Codec"

// scheduleError maps a Schedule/ScheduleBatch error onto its status.
func (s *Service) scheduleError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case isRequestError(err):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		// Headers must be installed before writeJSON calls
		// WriteHeader: anything set afterwards is silently dropped.
		// The backoff tracks the decaying average service time, so
		// shed clients wait about one request's worth of work.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	httpError(w, status, err.Error())
}

func (s *Service) handleScheduleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	req.PeerHint = r.Header.Get(PeerHintHeader)

	resp, err := s.ScheduleBatch(r.Context(), req)
	if err != nil {
		s.scheduleError(w, err)
		return
	}
	sp := s.stages.Start("encode")
	writeJSON(w, http.StatusOK, resp)
	sp.End()
}

// handleTableGet serves a cached residence table in the version-tagged
// codec the peer negotiated via TableCodecHeader (flat pimtab-v1 by
// default), the read side of peer cache-fill. A fingerprint that is not
// resident — never seen, evicted, or still being built — is a 404: the
// peer treats any non-200 as a miss and builds locally, so this
// endpoint never blocks on an in-flight build.
func (s *Service) handleTableGet(w http.ResponseWriter, r *http.Request) {
	fp, err := trace.ParseFingerprint(r.PathValue("fingerprint"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	wantV2 := strings.Contains(r.Header.Get(TableCodecHeader), cost.TableCodecV2)
	payload, ok := s.cache.encodedTable(fp, wantV2)
	if !ok {
		httpError(w, http.StatusNotFound, "table not cached: "+fp.String())
		return
	}
	s.tablesServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.Write(payload)
}

// decodeBody decodes a size-bounded JSON request body into v, writing
// the error response itself on failure. The body must be exactly one
// JSON value: trailing non-whitespace after it (a second value, a stray
// brace, a concatenated request) is a 400, not silently ignored. The
// read buffer comes from the shared pool, so steady-state decodes do
// not grow the heap.
func (s *Service) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	buf := getBuffer()
	defer putBuffer(buf)
	if _, err := buf.ReadFrom(body); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "read request: "+err.Error())
		return false
	}
	dec := json.NewDecoder(buf)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return false
	}
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, "decode request: unexpected data after JSON body")
		return false
	}
	return true
}

// bufferPool holds the scratch buffers behind request decoding and
// response encoding. Buffers that grew past maxPooledBuffer (one
// pathological request) are dropped instead of pinning their backing
// array for the process lifetime.
var bufferPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuffer = 1 << 20

func getBuffer() *bytes.Buffer {
	return bufferPool.Get().(*bytes.Buffer)
}

func putBuffer(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuffer {
		return
	}
	b.Reset()
	bufferPool.Put(b)
}

// sessionError maps the session API's error classes onto statuses.
func (s *Service) sessionError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var notFound *ErrSessionNotFound
	var exists *ErrSessionExists
	switch {
	case errors.As(err, &notFound):
		status = http.StatusNotFound
	case errors.As(err, &exists):
		status = http.StatusConflict
	case isRequestError(err):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	httpError(w, status, err.Error())
}

func (s *Service) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	info, err := s.CreateSession(req)
	if err != nil {
		s.sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Service) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.SessionInfo(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.DeleteSession(r.PathValue("id")); err != nil {
		s.sessionError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	var d delta.Delta
	if !s.decodeBody(w, r, &d) {
		return
	}
	resp, err := s.ApplySessionDelta(r.PathValue("id"), d)
	if err != nil {
		s.sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSessionSchedule(w http.ResponseWriter, r *http.Request) {
	resp, err := s.ScheduleSession(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSessionExport(w http.ResponseWriter, r *http.Request) {
	exp, err := s.ExportSession(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

func (s *Service) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	var exp SessionExport
	if !s.decodeBody(w, r, &exp) {
		return
	}
	info, err := s.ImportSession(exp)
	if err != nil {
		s.sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleTablePrefill is the push side of replicated ownership: the
// router names a trace and a peer, and this shard pulls the table from
// that peer into its cache. 204 on success or no-op; 501 when the
// service has no peer-fill hook; 502 when the peer fetch failed (the
// router retries on the key's next request).
func (s *Service) handleTablePrefill(w http.ResponseWriter, r *http.Request) {
	var req PrefillRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	req.PeerHint = r.Header.Get(PeerHintHeader)
	if err := s.Prefill(r.Context(), req); err != nil {
		status := http.StatusBadGateway
		switch {
		case isRequestError(err):
			status = http.StatusBadRequest
		case errors.Is(err, ErrNoPeerFill):
			status = http.StatusNotImplemented
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.Closed() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// writeJSON encodes v into a pooled buffer first, so an encode failure
// becomes a clean 500 instead of a 200 status line followed by a
// truncated body (WriteHeader is only called once the bytes to back it
// exist). Successful responses carry Content-Length, letting clients
// detect a connection cut mid-body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuffer()
	defer putBuffer(buf)
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		// A static body cannot itself fail to encode.
		io.WriteString(w, `{"error":"service: encode response: `+jsonSafe(err.Error())+`"}`+"\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	w.Write(buf.Bytes()) // nothing useful to do with a write error mid-response
}

// jsonSafe strips characters that would break a hand-assembled JSON
// string literal out of an error message.
func jsonSafe(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '"' || r == '\\' || r < 0x20 {
			r = ' '
		}
		b.WriteRune(r)
	}
	return b.String()
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
