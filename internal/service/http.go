package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP surface:
//
//	POST /schedule[?verify=true]  run a scheduler over an inline trace
//	GET  /healthz                 liveness (503 once shutdown began)
//	GET  /stats                   counter snapshot as JSON
//	GET  /metrics                 Prometheus text exposition
//
// Error responses are JSON objects {"error": "..."} with the status
// conveying the class: 400 malformed request, 404 unknown path, 405 bad
// method, 413 oversized body, 429 shed load (with Retry-After), 503
// shutting down, 504 deadline expired, 500 internal inconsistency.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", s.handleSchedule)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	return mux
}

func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "decode request: "+err.Error())
		return
	}
	if v := r.URL.Query().Get("verify"); v == "true" || v == "1" {
		req.Verify = true
	}

	resp, err := s.Schedule(r.Context(), req)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case isRequestError(err):
			status = http.StatusBadRequest
		case errors.Is(err, ErrOverloaded):
			// Headers must be installed before writeJSON calls
			// WriteHeader: anything set afterwards is silently dropped.
			// The backoff tracks the decaying average service time, so
			// shed clients wait about one request's worth of work.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			status = http.StatusTooManyRequests
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
		}
		httpError(w, status, err.Error())
		return
	}
	sp := s.stages.Start("encode")
	writeJSON(w, http.StatusOK, resp)
	sp.End()
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.Closed() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing useful to do with a write error mid-response
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
