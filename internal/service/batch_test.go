package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// TestScheduleBatchMatchesSingleRuns is the batch endpoint's core
// differential check: every spec's response must be bit-identical to a
// single-threaded sched run, while the whole batch costs one table
// build and one cache event.
func TestScheduleBatchMatchesSingleRuns(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	text := traceText(t, "lu", 8, grid.Square(4))

	specs := []BatchSpec{
		{Algorithm: "gomcds", Capacity: 8},
		{Algorithm: "scds"},
		{Algorithm: "lomcds", Capacity: 8},
		{Algorithm: "gomcds", Verify: true},
	}
	resp, err := svc.ScheduleBatch(context.Background(), BatchRequest{Trace: text, Requests: specs})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != len(specs) {
		t.Fatalf("%d responses for %d specs", len(resp.Responses), len(specs))
	}
	if resp.CacheHit {
		t.Fatal("first batch over a fresh trace reported a cache hit")
	}
	for i, spec := range specs {
		item := resp.Responses[i]
		if item.Error != "" {
			t.Fatalf("spec %d: %s", i, item.Error)
		}
		wantCenters, wantCost := directRun(t, text, spec.Algorithm, spec.Capacity)
		if !reflect.DeepEqual(item.Response.Centers, wantCenters) {
			t.Errorf("spec %d (%s): centers differ from single run", i, spec.Algorithm)
		}
		if item.Response.Cost != wantCost {
			t.Errorf("spec %d (%s): cost %+v, want %+v", i, spec.Algorithm, item.Response.Cost, wantCost)
		}
		if spec.Verify && item.Response.Verified == nil {
			t.Errorf("spec %d: verify requested but no referee breakdown returned", i)
		}
	}

	// A second identical batch is one cache hit, not four.
	resp2, err := svc.ScheduleBatch(context.Background(), BatchRequest{Trace: text, Requests: specs})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.CacheHit {
		t.Fatal("second batch over the same trace missed the cache")
	}
	st := svc.Stats()
	if st.TablesBuilt != 1 {
		t.Fatalf("tables_built = %d after 2 batches x %d specs over 1 trace, want 1", st.TablesBuilt, len(specs))
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("cache misses/hits = %d/%d, want 1/1 (one cache pass per batch)", st.CacheMisses, st.CacheHits)
	}
	if st.Batches != 2 || st.BatchSpecs != uint64(2*len(specs)) {
		t.Fatalf("batches/specs = %d/%d, want 2/%d", st.Batches, st.BatchSpecs, 2*len(specs))
	}
	if st.Requests != 2 || st.Completed != 2 {
		t.Fatalf("requests/completed = %d/%d, want 2/2 (a batch is one request)", st.Requests, st.Completed)
	}
}

func TestScheduleBatchValidation(t *testing.T) {
	svc := New(Config{MaxBatchSpecs: 4})
	defer svc.Close()
	text := traceText(t, "lu", 4, grid.Square(2))

	cases := []struct {
		name string
		req  BatchRequest
		want string
	}{
		{"empty batch", BatchRequest{Trace: text}, "empty batch"},
		{"unknown algorithm", BatchRequest{Trace: text, Requests: []BatchSpec{{Algorithm: "nope"}}}, "spec 0"},
		{"negative capacity", BatchRequest{Trace: text, Requests: []BatchSpec{{Algorithm: "scds", Capacity: -1}}}, "negative capacity"},
		{"too many specs", BatchRequest{Trace: text, Requests: make([]BatchSpec, 5)}, "limit 4"},
		{"bad trace", BatchRequest{Trace: "junk", Requests: []BatchSpec{{Algorithm: "scds"}}}, "pimtrace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.req.Requests) == 5 {
				for i := range tc.req.Requests {
					tc.req.Requests[i] = BatchSpec{Algorithm: "scds"}
				}
			}
			_, err := svc.ScheduleBatch(context.Background(), tc.req)
			if err == nil || !isRequestError(err) {
				t.Fatalf("error %v, want a RequestError", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if st := svc.Stats(); st.BadRequests != uint64(len(cases)) || st.Batches != 0 {
		t.Fatalf("bad_requests/batches = %d/%d, want %d/0", st.BadRequests, st.Batches, len(cases))
	}
}

// A spec that fails at run time (infeasible capacity) reports its error
// in place; the remaining specs still succeed and the batch is a 200.
func TestScheduleBatchPerItemError(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// lu/8 on a 2x2 array with capacity 1 is infeasible: 8 items cannot
	// fit 4 processors one each.
	text := traceText(t, "lu", 8, grid.Square(2))
	body, err := json.Marshal(BatchRequest{Trace: text, Requests: []BatchSpec{
		{Algorithm: "gomcds", Capacity: 1},
		{Algorithm: "scds"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := ts.Client().Post(ts.URL+"/schedule/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", httpResp.StatusCode, data)
	}
	var resp BatchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Responses[0].Error == "" || resp.Responses[0].Response != nil {
		t.Fatalf("infeasible spec: %+v, want an in-place error", resp.Responses[0])
	}
	if resp.Responses[1].Error != "" || resp.Responses[1].Response == nil {
		t.Fatalf("feasible spec: %+v, want a response", resp.Responses[1])
	}
	wantCenters, wantCost := directRun(t, text, "scds", 0)
	if !reflect.DeepEqual(resp.Responses[1].Response.Centers, wantCenters) || resp.Responses[1].Response.Cost != wantCost {
		t.Fatal("feasible spec's result differs from single run")
	}
}

// TestTableGetServesCodecPayload covers the peer-fill read side: a
// cached table round-trips through GET /table/{fingerprint} in the
// flat codec; absent and malformed fingerprints are clean errors.
func TestTableGetServesCodecPayload(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	text := traceText(t, "lu", 6, grid.Square(3))
	resp, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"})
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, data
	}

	status, payload := get("/table/" + resp.Fingerprint)
	if status != http.StatusOK {
		t.Fatalf("GET cached table: status %d: %s", status, payload)
	}
	fp, table, err := cost.DecodeTable(payload)
	if err != nil {
		t.Fatal(err)
	}
	if fp.String() != resp.Fingerprint {
		t.Fatalf("payload fingerprint %s, want %s", fp, resp.Fingerprint)
	}
	tr, err := trace.Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := cost.NewModel(tr).BuildResidenceTable()
	if !reflect.DeepEqual(table.Cells(), want.Cells()) {
		t.Fatal("served table cells differ from a fresh local build")
	}

	if status, _ := get("/table/" + strings.Repeat("0", 64)); status != http.StatusNotFound {
		t.Fatalf("GET unknown table: status %d, want 404", status)
	}
	if status, _ := get("/table/nothex"); status != http.StatusBadRequest {
		t.Fatalf("GET malformed fingerprint: status %d, want 400", status)
	}
	if st := svc.Stats(); st.TablesServed != 1 {
		t.Fatalf("tables_served = %d, want 1", st.TablesServed)
	}
}

// peerFillVia returns a PeerFillFunc that fetches from peerURL's
// /table endpoint — the same shape internal/cluster installs, inlined
// here so the service tests stay free of a cluster dependency.
func peerFillVia(client *http.Client) PeerFillFunc {
	return func(ctx context.Context, fp trace.Fingerprint, peerURL string) (cost.ResidenceTable, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL+"/table/"+fp.String(), nil)
		if err != nil {
			return cost.ResidenceTable{}, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return cost.ResidenceTable{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return cost.ResidenceTable{}, fmt.Errorf("peer status %d", resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return cost.ResidenceTable{}, err
		}
		gotFP, table, err := cost.DecodeTable(data)
		if err != nil {
			return cost.ResidenceTable{}, err
		}
		if gotFP != fp {
			return cost.ResidenceTable{}, fmt.Errorf("peer table is for %s, want %s", gotFP, fp)
		}
		return table, nil
	}
}

// TestPeerFillAdoptsTable: a shard with a peer hint adopts the peer's
// cached table instead of building — tables_built stays zero on the
// adopting shard — and still answers bit-identically.
func TestPeerFillAdoptsTable(t *testing.T) {
	owner := New(Config{})
	defer owner.Close()
	ownerTS := httptest.NewServer(owner.Handler())
	defer ownerTS.Close()

	text := traceText(t, "lu", 8, grid.Square(4))
	if _, err := owner.Schedule(context.Background(), Request{Trace: text, Algorithm: "gomcds", Capacity: 8}); err != nil {
		t.Fatal(err)
	}

	adopter := New(Config{PeerFill: peerFillVia(ownerTS.Client())})
	defer adopter.Close()
	resp, err := adopter.Schedule(context.Background(),
		Request{Trace: text, Algorithm: "gomcds", Capacity: 8, PeerHint: ownerTS.URL})
	if err != nil {
		t.Fatal(err)
	}
	wantCenters, wantCost := directRun(t, text, "gomcds", 8)
	if !reflect.DeepEqual(resp.Centers, wantCenters) || resp.Cost != wantCost {
		t.Fatal("peer-filled response differs from single run")
	}
	st := adopter.Stats()
	if st.TablesBuilt != 0 {
		t.Fatalf("adopter tables_built = %d, want 0 (table adopted, not built)", st.TablesBuilt)
	}
	if st.PeerFills != 1 || st.PeerFillFallback != 0 {
		t.Fatalf("peer_fills/fallbacks = %d/%d, want 1/0", st.PeerFills, st.PeerFillFallback)
	}
	if ownerSt := owner.Stats(); ownerSt.TablesServed != 1 {
		t.Fatalf("owner tables_served = %d, want 1", ownerSt.TablesServed)
	}
}

// TestPeerFillFallsBack: every peer failure mode — error, deadline,
// wrong-shape table — silently degrades to a local build.
func TestPeerFillFallsBack(t *testing.T) {
	text := traceText(t, "lu", 4, grid.Square(2))
	wantCenters, wantCost := directRun(t, text, "scds", 0)

	cases := []struct {
		name string
		fill PeerFillFunc
	}{
		{"peer error", func(ctx context.Context, fp trace.Fingerprint, peerURL string) (cost.ResidenceTable, error) {
			return cost.ResidenceTable{}, fmt.Errorf("connection refused")
		}},
		{"peer hangs past deadline", func(ctx context.Context, fp trace.Fingerprint, peerURL string) (cost.ResidenceTable, error) {
			<-ctx.Done() // the fetch deadline, not the request's
			return cost.ResidenceTable{}, ctx.Err()
		}},
		{"wrong shape", func(ctx context.Context, fp trace.Fingerprint, peerURL string) (cost.ResidenceTable, error) {
			return cost.NewResidenceTable(1, 1, 1), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc := New(Config{PeerFill: tc.fill, PeerFillTimeout: 20 * time.Millisecond})
			defer svc.Close()
			start := time.Now()
			resp, err := svc.Schedule(context.Background(),
				Request{Trace: text, Algorithm: "scds", PeerHint: "http://peer.invalid"})
			if err != nil {
				t.Fatal(err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("fallback took %v, the fetch deadline did not bound the fill", elapsed)
			}
			if !reflect.DeepEqual(resp.Centers, wantCenters) || resp.Cost != wantCost {
				t.Fatal("fallback response differs from single run")
			}
			st := svc.Stats()
			if st.TablesBuilt != 1 || st.PeerFills != 0 || st.PeerFillFallback != 1 {
				t.Fatalf("built/fills/fallbacks = %d/%d/%d, want 1/0/1", st.TablesBuilt, st.PeerFills, st.PeerFillFallback)
			}
		})
	}

	// No hint (direct client traffic) skips the hook entirely.
	svc := New(Config{PeerFill: func(ctx context.Context, fp trace.Fingerprint, peerURL string) (cost.ResidenceTable, error) {
		panic("peer fill consulted without a hint")
	}})
	defer svc.Close()
	if _, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"}); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.PeerFillFallback != 0 {
		t.Fatalf("peer_fill_fallbacks = %d without a hint, want 0", st.PeerFillFallback)
	}
}

// TestTraceScaleGuard: a tiny request body must not be able to declare
// an astronomically large array — the implied residence-table size is
// bounded before any build starts, on every trace-accepting endpoint.
// Found by FuzzBatchDecode: a mutated grid directive wedged the worker
// in a multi-exabyte table build.
func TestTraceScaleGuard(t *testing.T) {
	svc := New(Config{MaxTableCells: 1 << 10})
	defer svc.Close()
	huge := "pimtrace v1\ngrid 99999 99999\ndata 999999\nwindow\nref 0 0 1\n"

	_, err := svc.Schedule(context.Background(), Request{Trace: huge, Algorithm: "scds"})
	if err == nil || !isRequestError(err) || !strings.Contains(err.Error(), "limit 1024") {
		t.Fatalf("Schedule: %v, want a table-cells RequestError", err)
	}
	_, err = svc.ScheduleBatch(context.Background(), BatchRequest{Trace: huge, Requests: []BatchSpec{{Algorithm: "scds"}}})
	if err == nil || !isRequestError(err) {
		t.Fatalf("ScheduleBatch: %v, want a table-cells RequestError", err)
	}
	_, err = svc.CreateSession(CreateSessionRequest{Trace: huge})
	if err == nil || !isRequestError(err) {
		t.Fatalf("CreateSession: %v, want a table-cells RequestError", err)
	}

	// A trace inside the budget still schedules.
	ok := traceText(t, "lu", 4, grid.Square(2))
	if _, err := svc.Schedule(context.Background(), Request{Trace: ok, Algorithm: "scds"}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBatchDecode hammers the batch endpoint with arbitrary bodies:
// whatever arrives, the handler must produce a well-formed JSON
// response with a sane status — never panic, never return a 200 whose
// response count disagrees with the batch it decoded.
func FuzzBatchDecode(f *testing.F) {
	text := traceText(f, "lu", 4, grid.Square(2))
	valid, _ := json.Marshal(BatchRequest{Trace: text, Requests: []BatchSpec{{Algorithm: "scds"}}})
	f.Add(string(valid))
	f.Add(`{}`)
	f.Add(`{"trace": 3, "requests": "x"}`)
	f.Add(`{"trace": "pimtrace v1", "requests": []}`)
	f.Add(string(valid[:len(valid)/2]))
	f.Add(string(valid) + string(valid))
	f.Add(`{"trace":"` + strings.Repeat("a", 100) + `","requests":[{"algorithm":"gomcds","capacity":-1}]}`)

	// MaxTableCells keeps mutated-but-valid traces cheap: a few
	// directive bytes can otherwise declare an array whose table build
	// takes effectively forever, wedging the fuzz worker.
	svc := New(Config{MaxBodyBytes: 1 << 16, MaxBatchSpecs: 8, MaxTableCells: 1 << 16})
	defer svc.Close()
	handler := svc.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		begin := time.Now()
		req := httptest.NewRequest(http.MethodPost, "/schedule/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		// Hang tripwire: with the trace-scale guard in place no body can
		// commit the handler to unbounded work, and an exec is normally
		// microseconds. Generous enough to never trip on a loaded
		// machine under -race.
		if d := time.Since(begin); d > 20*time.Second {
			t.Fatalf("exec took %v for body %q — a cheap body bought expensive work", d, body)
		}
		switch rec.Code {
		case http.StatusOK:
			var resp BatchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with unparseable body: %v", err)
			}
			if len(resp.Responses) == 0 {
				t.Fatal("200 with no responses (empty batches must be 400)")
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
			var e map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
				t.Fatalf("status %d with malformed error body %q", rec.Code, rec.Body.Bytes())
			}
		default:
			t.Fatalf("unexpected status %d for fuzzed body", rec.Code)
		}
	})
}
