package service

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// traceText renders a generated workload in the pimtrace v1 codec, the
// form requests carry.
func traceText(t testing.TB, gen string, n int, g grid.Grid) string {
	t.Helper()
	generator, err := workload.ByName(gen)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, generator.Generate(n, g)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// directRun computes the reference answer the service must reproduce
// bit-for-bit: a single-threaded sched run over the same trace.
func directRun(t testing.TB, traceStr, algorithm string, capacity int) ([][]int, CostJSON) {
	t.Helper()
	tr, err := trace.Decode(strings.NewReader(traceStr))
	if err != nil {
		t.Fatal(err)
	}
	scheduler, err := sched.ByName(algorithm)
	if err != nil {
		t.Fatal(err)
	}
	p := sched.NewProblem(tr, capacity)
	schedule, err := scheduler.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	bd := p.Model.Evaluate(schedule)
	return schedule.Centers, CostJSON{Residence: bd.Residence, Move: bd.Move, Total: bd.Total()}
}

func TestScheduleMatchesDirectRunAndCaches(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	text := traceText(t, "lu", 8, grid.Square(4))

	wantCenters, wantCost := directRun(t, text, "gomcds", 8)
	for i := 0; i < 3; i++ {
		resp, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "gomcds", Capacity: 8})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !reflect.DeepEqual(resp.Centers, wantCenters) {
			t.Fatalf("request %d: centers differ from direct sched run", i)
		}
		if resp.Cost != wantCost {
			t.Fatalf("request %d: cost %+v, want %+v", i, resp.Cost, wantCost)
		}
		if wantHit := i > 0; resp.CacheHit != wantHit {
			t.Fatalf("request %d: CacheHit = %v, want %v", i, resp.CacheHit, wantHit)
		}
	}
	st := svc.Stats()
	if st.TablesBuilt != 1 {
		t.Fatalf("TablesBuilt = %d, want 1 (cache must skip rebuilds)", st.TablesBuilt)
	}
	if st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}
	if st.Completed != 3 || st.Requests != 3 {
		t.Fatalf("completed/requests = %d/%d, want 3/3", st.Completed, st.Requests)
	}
}

// TestCacheSharedAcrossAlgorithmAndCapacity pins the key design point:
// cache entries depend only on the trace, so requests differing in
// algorithm or capacity share one residence table.
func TestCacheSharedAcrossAlgorithmAndCapacity(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	text := traceText(t, "matsquare", 6, grid.Square(3))
	for _, req := range []Request{
		{Trace: text, Algorithm: "scds", Capacity: 0},
		{Trace: text, Algorithm: "lomcds", Capacity: 8},
		{Trace: text, Algorithm: "gomcds", Capacity: 12},
	} {
		wantCenters, wantCost := directRun(t, text, req.Algorithm, req.Capacity)
		resp, err := svc.Schedule(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", req.Algorithm, err)
		}
		if !reflect.DeepEqual(resp.Centers, wantCenters) || resp.Cost != wantCost {
			t.Fatalf("%s: response differs from direct run", req.Algorithm)
		}
	}
	if st := svc.Stats(); st.TablesBuilt != 1 {
		t.Fatalf("TablesBuilt = %d, want 1 across algorithms and capacities", st.TablesBuilt)
	}
}

func TestScheduleVerify(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	text := traceText(t, "stencil", 6, grid.Square(3))
	resp, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "lomcds", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verified == nil {
		t.Fatal("Verify requested but response has no verified cost")
	}
	if *resp.Verified != resp.Cost {
		t.Fatalf("referee breakdown %+v disagrees with model %+v", *resp.Verified, resp.Cost)
	}
}

func TestScheduleBadRequests(t *testing.T) {
	svc := New(Config{MaxBodyBytes: 1 << 16})
	defer svc.Close()
	good := traceText(t, "lu", 4, grid.Square(2))
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown algorithm", Request{Trace: good, Algorithm: "bogus"}},
		{"empty trace", Request{Trace: "", Algorithm: "scds"}},
		{"malformed trace", Request{Trace: "pimtrace v1\ngrid 0 0\n", Algorithm: "scds"}},
		{"negative capacity", Request{Trace: good, Algorithm: "scds", Capacity: -1}},
		{"oversized trace", Request{Trace: "pimtrace v1\n#" + strings.Repeat("x", 1<<16) + "\ngrid 2 2\ndata 1\n", Algorithm: "scds"}},
		{"infeasible capacity", Request{Trace: traceText(t, "lu", 8, grid.Square(2)), Algorithm: "gomcds", Capacity: 1}},
	}
	for _, c := range cases {
		_, err := svc.Schedule(context.Background(), c.req)
		if !isRequestError(err) {
			t.Errorf("%s: err = %v, want RequestError", c.name, err)
		}
	}
	if st := svc.Stats(); st.BadRequests != uint64(len(cases)) {
		t.Fatalf("BadRequests = %d, want %d", st.BadRequests, len(cases))
	}
}

// TestStampedeBuildsTableOnce drives many concurrent misses on one
// fingerprint through the cache and requires singleflight semantics:
// the residence table is built exactly once.
func TestStampedeBuildsTableOnce(t *testing.T) {
	const clients = 32
	svc := New(Config{})
	defer svc.Close()

	// Barrier: every worker reaches the hook before any touches the
	// cache, so all of them race acquire() with the entry unbuilt.
	var barrier sync.WaitGroup
	barrier.Add(clients)
	svc.testHookRunning = func() {
		barrier.Done()
		barrier.Wait()
	}

	text := traceText(t, "lu", 8, grid.Square(4))
	wantCenters, wantCost := directRun(t, text, "gomcds", 0)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "gomcds"})
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(resp.Centers, wantCenters) || resp.Cost != wantCost {
				errs <- errors.New("response differs from direct run")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.TablesBuilt != 1 {
		t.Fatalf("TablesBuilt = %d, want 1 (stampede must singleflight)", st.TablesBuilt)
	}
	if st.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want 1", st.CacheMisses)
	}
	if st.CacheHits+st.CacheSharedBuild != clients-1 {
		t.Fatalf("hits %d + shared builds %d != %d", st.CacheHits, st.CacheSharedBuild, clients-1)
	}
}

func TestCacheEviction(t *testing.T) {
	svc := New(Config{CacheSize: 1})
	defer svc.Close()
	a := traceText(t, "lu", 4, grid.Square(2))
	b := traceText(t, "matsquare", 4, grid.Square(2))

	for _, text := range []string{a, b, a} { // b evicts a, a evicts b
		if _, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.CacheMisses != 3 || st.CacheHits != 0 {
		t.Fatalf("misses/hits = %d/%d, want 3/0 with a single-entry cache", st.CacheMisses, st.CacheHits)
	}
	if st.CacheEvictions != 2 {
		t.Fatalf("CacheEvictions = %d, want 2", st.CacheEvictions)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("CacheEntries = %d, want 1", st.CacheEntries)
	}
	if st.TablesBuilt != 3 {
		t.Fatalf("TablesBuilt = %d, want 3", st.TablesBuilt)
	}
}

func TestScheduleDeadlineExpiry(t *testing.T) {
	svc := New(Config{Timeout: time.Nanosecond})
	defer svc.Close()
	text := traceText(t, "lu", 8, grid.Square(4))
	_, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "gomcds"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st := svc.Stats(); st.DeadlineExpired != 1 {
		t.Fatalf("DeadlineExpired = %d, want 1", st.DeadlineExpired)
	}
	// Close must still drain cleanly: the abandoned run (if it started)
	// holds its registration until it finishes.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Inflight != 0 {
		t.Fatalf("Inflight = %d after Close, want 0", st.Inflight)
	}
}

// TestShutdownDrain: Close refuses new work immediately but waits for
// the in-flight request to complete, and that request still succeeds.
func TestShutdownDrain(t *testing.T) {
	svc := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.testHookRunning = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	text := traceText(t, "lu", 4, grid.Square(2))

	type result struct {
		resp *Response
		err  error
	}
	first := make(chan result, 1)
	go func() {
		resp, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"})
		first <- result{resp, err}
	}()
	<-entered

	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()

	// Close must flip the refusal flag promptly even while draining.
	deadline := time.After(5 * time.Second)
	for !svc.Closed() {
		select {
		case <-deadline:
			t.Fatal("Closed() never became true")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("request during drain: err = %v, want ErrClosed", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a request was still in flight")
	default:
	}

	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight request finished")
	}
	r := <-first
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if st := svc.Stats(); st.RejectedClosed != 1 {
		t.Fatalf("RejectedClosed = %d, want 1", st.RejectedClosed)
	}
}

func TestLoadSheddingService(t *testing.T) {
	svc := New(Config{MaxInflight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.testHookRunning = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	text := traceText(t, "lu", 4, grid.Square(2))

	done := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"})
		done <- err
	}()
	<-entered

	if _, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second request: err = %v, want ErrOverloaded", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first request: %v", err)
	}
	svc.Close()
	st := svc.Stats()
	if st.RejectedOverload != 1 || st.Completed != 1 {
		t.Fatalf("rejected/completed = %d/%d, want 1/1", st.RejectedOverload, st.Completed)
	}
}
