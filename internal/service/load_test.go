package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/grid"
)

// TestLoadConcurrentClients is the service's load referee: at least 100
// in-flight HTTP clients hammer /schedule with a small set of distinct
// traces and all three algorithms, under the race detector in CI
// (scripts/check.sh). It proves three things at once:
//
//   - correctness under concurrency: every response's center matrix and
//     cost breakdown are bit-for-bit identical to a single-threaded
//     sched run of the same request;
//   - the cache works: the number of residence-table builds equals the
//     number of distinct traces, not the number of requests, and the
//     /stats counters expose the hit traffic; and
//   - nothing leaks: after the storm the service drains to zero
//     in-flight work.
func TestLoadConcurrentClients(t *testing.T) {
	const clients = 100
	iters := 6
	if testing.Short() {
		iters = 2
	}

	type testCase struct {
		req         Request
		wantCenters [][]int
		wantCost    CostJSON
	}
	var cases []testCase
	for _, tt := range []struct {
		gen  string
		n    int
		g    grid.Grid
		algo string
		cap  int
	}{
		{"lu", 8, grid.Square(4), "gomcds", 8},
		{"lu", 8, grid.Square(4), "scds", 0}, // same trace, different algorithm: shares the table
		{"matsquare", 6, grid.Square(3), "lomcds", 8},
		{"stencil", 6, grid.Square(3), "gomcds", 0},
		{"code", 6, grid.New(4, 2), "lomcds", 0},
		{"lu", 6, grid.Square(2), "scds", 12},
	} {
		text := traceText(t, tt.gen, tt.n, tt.g)
		req := Request{Trace: text, Algorithm: tt.algo, Capacity: tt.cap}
		centers, cost := directRun(t, text, tt.algo, tt.cap)
		cases = append(cases, testCase{req: req, wantCenters: centers, wantCost: cost})
	}
	distinctTraces := 5 // six cases, two share a trace

	svc := New(Config{MaxInflight: 2 * clients, CacheSize: 32})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = clients

	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			errs <- func() error {
				for i := 0; i < iters; i++ {
					tc := cases[(c+i)%len(cases)]
					b, err := json.Marshal(tc.req)
					if err != nil {
						return err
					}
					resp, err := client.Post(ts.URL+"/schedule", "application/json", bytes.NewReader(b))
					if err != nil {
						return err
					}
					data, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						return err
					}
					if resp.StatusCode != http.StatusOK {
						return fmt.Errorf("client %d iter %d: status %d: %s", c, i, resp.StatusCode, data)
					}
					var out Response
					if err := json.Unmarshal(data, &out); err != nil {
						return err
					}
					if !reflect.DeepEqual(out.Centers, tc.wantCenters) {
						return fmt.Errorf("client %d iter %d (%s): centers differ from single-threaded sched run", c, i, tc.req.Algorithm)
					}
					if out.Cost != tc.wantCost {
						return fmt.Errorf("client %d iter %d (%s): cost %+v, want %+v", c, i, tc.req.Algorithm, out.Cost, tc.wantCost)
					}
				}
				return nil
			}()
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	total := uint64(clients * iters)
	if st.Requests != total || st.Completed != total {
		t.Fatalf("requests/completed = %d/%d, want %d/%d", st.Requests, st.Completed, total, total)
	}
	// The cache-hit path must have skipped rebuilds: one build per
	// distinct trace (singleflight may not even need that many if no
	// stampede raced, but never more), and real hit traffic.
	if st.TablesBuilt != uint64(distinctTraces) {
		t.Fatalf("TablesBuilt = %d, want %d (one per distinct trace)", st.TablesBuilt, distinctTraces)
	}
	if st.CacheMisses != uint64(distinctTraces) {
		t.Fatalf("CacheMisses = %d, want %d", st.CacheMisses, distinctTraces)
	}
	if st.CacheHits+st.CacheSharedBuild != total-uint64(distinctTraces) {
		t.Fatalf("hits %d + shared %d != %d", st.CacheHits, st.CacheSharedBuild, total-uint64(distinctTraces))
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits under sustained repeated load")
	}
	if st.Inflight != 0 {
		t.Fatalf("Inflight = %d after drain, want 0", st.Inflight)
	}
	if st.RejectedOverload != 0 || st.Errors != 0 || st.DeadlineExpired != 0 {
		t.Fatalf("unexpected rejections/errors: %+v", st)
	}
	if st.CacheEntries != distinctTraces {
		t.Fatalf("CacheEntries = %d, want %d", st.CacheEntries, distinctTraces)
	}
}
