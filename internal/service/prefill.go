package service

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/trace"
)

// PrefillRequest asks a shard to adopt a trace's residence table from a
// peer before any client demands it — the write side of replicated
// ownership. The router sends it to a key's replica owners right after
// the primary serves the key, naming the primary in the X-Pim-Peer
// header; the replica fetches the table over the same GET
// /table/{fingerprint} codec peer fill uses.
type PrefillRequest struct {
	Trace string `json:"trace"`

	// PeerHint is the base URL of the shard holding the table, set by
	// the HTTP layer from the X-Pim-Peer header — never from the body,
	// for the same reason as Request.PeerHint.
	PeerHint string `json:"-"`
}

// ErrNoPeerFill reports a prefill request on a service that has no
// peer-fill hook configured; the HTTP layer maps it to 501.
var ErrNoPeerFill = errors.New("service: peer fill not configured")

// Prefill adopts the residence table for req.Trace from the hinted
// peer. It is deliberately asymmetric to Schedule's resolveTable: the
// fetch happens before the cache is touched, so a failed fetch strands
// no waiters and counts no cache miss; an already-resident (or
// in-flight) fingerprint is a cheap no-op. A successful adoption bumps
// tables_prefilled — never tables_built or peer_fills, which stay
// about demand traffic.
func (s *Service) Prefill(ctx context.Context, req PrefillRequest) error {
	if s.cfg.PeerFill == nil {
		return ErrNoPeerFill
	}
	if req.PeerHint == "" {
		return badRequest("prefill without %s header", PeerHintHeader)
	}
	if int64(len(req.Trace)) > s.cfg.maxBodyBytes() {
		return badRequest("trace text %d bytes exceeds limit %d", len(req.Trace), s.cfg.maxBodyBytes())
	}
	tr, err := trace.Decode(strings.NewReader(req.Trace))
	if err != nil {
		return &RequestError{Err: err}
	}
	if err := s.checkTraceScale(tr); err != nil {
		return err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	fp := tr.Fingerprint()
	if s.cache.resident(fp) {
		return nil // already resident (either tier); nothing to transfer
	}

	fetchCtx, cancel := context.WithTimeout(context.Background(), s.cfg.peerFillTimeout())
	defer cancel()
	table, err := s.cfg.PeerFill(fetchCtx, fp, req.PeerHint)
	if err != nil {
		return fmt.Errorf("service: prefill fetch from %s: %w", req.PeerHint, err)
	}
	if table.NumWindows() != tr.NumWindows() || table.NumData() != tr.NumData ||
		table.NumProcs() != tr.Grid.NumProcs() {
		return fmt.Errorf("service: prefill table shape %dx%dx%d does not match trace %dx%dx%d",
			table.NumWindows(), table.NumData(), table.NumProcs(),
			tr.NumWindows(), tr.NumData, tr.Grid.NumProcs())
	}
	m := cost.NewModel(tr)
	m.Stages = s.stages
	if s.cache.adopt(fp, m, table) {
		s.tablesPrefilled.Add(1)
	}
	return nil
}
