package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/grid"
	"repro/internal/trace"
)

// Regression test: decodeBody used to stop reading at the end of the
// first JSON value, so a body with trailing garbage — a second request
// concatenated by a buggy client, a stray closing brace, half of a
// corrupted upload — was accepted and the junk silently dropped. Every
// handler must reject such bodies with 400.
func TestDecodeBodyRejectsTrailingGarbage(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	text := traceText(t, "lu", 4, grid.Square(2))
	valid, err := json.Marshal(Request{Trace: text, Algorithm: "scds"})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, trailer string
		want          int
	}{
		{"clean", "", http.StatusOK},
		{"trailing whitespace", "\n\t \n", http.StatusOK},
		{"stray brace", "}", http.StatusBadRequest},
		{"second value", string(valid), http.StatusBadRequest},
		{"garbage", "xxxx", http.StatusBadRequest},
	} {
		body := string(valid) + tc.trailer
		resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// The session endpoints share decodeBody; spot-check one.
	resp, err := ts.Client().Post(ts.URL+"/session", "application/json",
		strings.NewReader(`{"trace":"bogus","algorithm":"scds"} trailing`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("session create with trailing data: status %d, want 400", resp.StatusCode)
	}
}

// Regression test: writeJSON used to call WriteHeader before encoding,
// so a value the encoder rejects produced a 200 status line with a
// truncated (empty) body. Encoding now happens first: failures become a
// clean 500 with a JSON error body, and successes carry Content-Length.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, make(chan int)) // channels cannot marshal
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d after encode failure, want 500", rec.Code)
	}
	if msg := decodeError(t, rec.Body.Bytes()); !strings.Contains(msg, "encode response") {
		t.Fatalf("error %q does not mention the encode failure", msg)
	}
}

func TestWriteJSONSetsContentLength(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusCreated, map[string]int{"a": 1})
	if rec.Code != http.StatusCreated {
		t.Fatalf("status %d, want 201", rec.Code)
	}
	if got, want := rec.Header().Get("Content-Length"), len(rec.Body.Bytes()); got != itoa(want) {
		t.Fatalf("Content-Length %q, body is %d bytes", got, want)
	}
	var out map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["a"] != 1 {
		t.Fatalf("body %q did not round-trip: %v", rec.Body.Bytes(), err)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// newSessionForRace builds a service with one live session over a small
// incremental-path trace and returns both plus a ready-to-apply delta.
func newSessionForRace(t testing.TB, cfg Config) (*Service, string, delta.Delta) {
	t.Helper()
	svc := New(cfg)
	text := traceText(t, "lu", 4, grid.Square(2))
	info, err := svc.CreateSession(CreateSessionRequest{Trace: text, Algorithm: "gomcds"})
	if err != nil {
		t.Fatal(err)
	}
	return svc, info.SessionID, delta.AppendWindow([]delta.Ref{{Proc: 0, Data: 1, Volume: 2}})
}

// Regression test: an operation that looked its session up and then
// lost the race to a concurrent DELETE used to proceed against the
// unregistered session and report success — the client of a deleted
// session saw its deltas acknowledged into state the service had
// already dropped. The deterministic interleaving (delete exactly in
// the lookup/lock window, via the test hook) must now yield a clean
// session-not-found, and the delta must not be counted as applied.
func TestSessionOpRacingDeleteGets404(t *testing.T) {
	svc, id, d := newSessionForRace(t, Config{})
	defer svc.Close()

	var once sync.Once
	svc.testHookSessionOp = func() {
		once.Do(func() {
			if err := svc.DeleteSession(id); err != nil {
				t.Errorf("racing delete: %v", err)
			}
		})
	}
	_, err := svc.ApplySessionDelta(id, d)
	var notFound *ErrSessionNotFound
	if !errors.As(err, &notFound) {
		t.Fatalf("delta racing delete returned %v, want session-not-found", err)
	}
	if n := svc.Stats().DeltasApplied; n != 0 {
		t.Fatalf("deltas_applied = %d after a delta that lost to DELETE, want 0", n)
	}
	if n := svc.sessionCount(); n != 0 {
		t.Fatalf("sessions_active = %d after delete, want 0", n)
	}
}

// The same race end to end under the race detector, unsynchronized:
// deltas, schedules and info reads hammer a session while it is
// deleted; every operation must either succeed (it won the race) or
// report session-not-found, the active-session gauge must end at zero
// (never negative — len of a map can only misbehave through double
// accounting, which a second DELETE exercises directly), and the
// MaxSessions slot must be released exactly once so a new session fits.
func TestSessionDeleteRaceStress(t *testing.T) {
	svc, id, d := newSessionForRace(t, Config{MaxSessions: 1})
	defer svc.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				checkRaceErr(t, "delta", func() error { _, err := svc.ApplySessionDelta(id, d); return err })
				checkRaceErr(t, "schedule", func() error { _, err := svc.ScheduleSession(id); return err })
				checkRaceErr(t, "info", func() error { _, err := svc.SessionInfo(id); return err })
			}
		}()
	}
	if err := svc.DeleteSession(id); err != nil {
		t.Errorf("delete: %v", err)
	}
	var notFound *ErrSessionNotFound
	if err := svc.DeleteSession(id); !errors.As(err, &notFound) {
		t.Errorf("second delete returned %v, want session-not-found", err)
	}
	wg.Wait()

	if n := svc.sessionCount(); n != 0 {
		t.Fatalf("sessions_active = %d after delete, want 0", n)
	}
	// The slot freed by the delete admits a new session under MaxSessions=1.
	text := traceText(t, "lu", 4, grid.Square(2))
	if _, err := svc.CreateSession(CreateSessionRequest{Trace: text, Algorithm: "gomcds"}); err != nil {
		t.Fatalf("create after delete under MaxSessions=1: %v", err)
	}
}

// Regression test: the cache-hit counter used to increment inside
// acquire, before the request finished, so a request whose context was
// canceled after the lookup but before a response was delivered still
// counted as a hit — under deadline pressure cache_hits drifted above
// the number of responses actually served from cache, poisoning the
// hit-rate the router's capacity planning reads. The counter must
// settle once, on the actual outcome: a canceled request contributes
// nothing; the next successful request counts normally.
func TestCanceledRequestDoesNotInflateCacheHits(t *testing.T) {
	svc := New(Config{})
	text := traceText(t, "lu", 4, grid.Square(2))
	req := Request{Trace: text, Algorithm: "scds"}
	if _, err := svc.Schedule(context.Background(), req); err != nil {
		t.Fatal(err) // seeds the cache: one build, no hit
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.testHookRunning = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(ctx, req)
		errc <- err
	}()
	<-entered
	cancel() // abandon the request while its worker holds the hook
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request returned %v, want context.Canceled", err)
	}
	close(release) // let the abandoned worker run to completion

	// A later request over the same trace is a genuine, delivered hit.
	if _, err := svc.Schedule(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	svc.Close() // waits out the abandoned background run
	st := svc.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("cache_hits = %d (1 delivered hit + 1 canceled request), want 1", st.CacheHits)
	}
	if st.TablesBuilt != 1 {
		t.Fatalf("tables_built = %d, want 1", st.TablesBuilt)
	}
}

// The sibling inflation on the singleflight path: a waiter that
// piggybacks on an in-flight build but is canceled before the build
// completes used to count as a shared build at lookup time. It must not
// count at all — it never received the table. The test itself plays the
// stalled builder by acquiring the entry first and publishing only
// after the waiter has been canceled.
func TestCanceledWaiterDoesNotInflateSharedBuilds(t *testing.T) {
	svc := New(Config{})
	text := traceText(t, "lu", 4, grid.Square(2))
	req := Request{Trace: text, Algorithm: "scds"}
	tr, err := trace.Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}

	entry, role, _ := svc.cache.acquire(tr.Fingerprint())
	if role != cacheRoleBuilder {
		t.Fatal("test did not win builder election on an empty cache")
	}

	waiterIn := make(chan struct{})
	var calls atomic.Int32
	svc.testHookRunning = func() {
		if calls.Add(1) == 1 {
			close(waiterIn)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := svc.Schedule(ctx, req)
		waiterErr <- err
	}()
	<-waiterIn // the waiter is past the hook, heading into the singleflight wait
	runtime.Gosched()
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}

	// Finish the build so the abandoned background run can drain.
	m := cost.NewModel(tr)
	svc.cache.publish(entry, m, m.BuildResidenceTable())
	svc.Close()
	st := svc.Stats()
	if st.CacheSharedBuild != 0 {
		t.Fatalf("cache_shared_builds = %d after a canceled waiter, want 0", st.CacheSharedBuild)
	}
	if st.CacheHits != 0 {
		t.Fatalf("cache_hits = %d, want 0", st.CacheHits)
	}
	if st.TablesBuilt != 0 {
		t.Fatalf("tables_built = %d (the test built by hand), want 0", st.TablesBuilt)
	}
}

func checkRaceErr(t *testing.T, op string, fn func() error) {
	t.Helper()
	err := fn()
	if err == nil {
		return
	}
	var notFound *ErrSessionNotFound
	if !errors.As(err, &notFound) {
		t.Errorf("%s racing delete: %v, want nil or session-not-found", op, err)
	}
}
