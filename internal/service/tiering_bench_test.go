package service

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/trace"
	"repro/internal/workload"
)

func benchTraceText(b *testing.B, kind string, n int, g grid.Grid) string {
	b.Helper()
	gen, err := workload.ByName(kind)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, gen.Generate(n, g)); err != nil {
		b.Fatal(err)
	}
	return buf.String()
}

// BenchmarkScheduleColdHit measures a schedule served through a
// cold-tier promotion: the byte budget fits one flat table, so
// alternating two traces makes every call decode the compressed victim
// back to the hot tier (and demote the other). The delta against a
// flat cache-hot Schedule (BenchmarkServeSchedule) is the price of a
// cold hit — which the cache pays instead of a full table rebuild.
// scripts/bench.sh snapshots it into BENCH_CACHE.json.
func BenchmarkScheduleColdHit(b *testing.B) {
	// lu/8 on 4x4 is 57 KiB flat, matsquare/8 is 64 KiB: 70 KB holds
	// either flat plus the other compressed, never both flat.
	svc := New(Config{CacheBytes: 70_000})
	defer svc.Close()
	reqs := []Request{
		{Trace: benchTraceText(b, "lu", 8, grid.Square(4)), Algorithm: "gomcds"},
		{Trace: benchTraceText(b, "matsquare", 8, grid.Square(4)), Algorithm: "gomcds"},
	}
	ctx := context.Background()
	for _, req := range reqs { // warm: build both tables once
		if _, err := svc.Schedule(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Schedule(ctx, reqs[i%2]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs := svc.cache.counters()
	if b.N > 4 && cs.promotions < uint64(b.N)/2 {
		b.Fatalf("only %d promotions over %d schedules: the benchmark is not measuring cold hits", cs.promotions, b.N)
	}
}
