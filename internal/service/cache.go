package service

import (
	"container/list"
	"sync"

	"repro/internal/cost"
	"repro/internal/trace"
)

// cacheEntry is one cached {cost model, residence table} pair. The
// fields are written exactly once by the elected builder, before ready
// is closed; readers must wait on ready first (the close establishes
// the happens-before edge), so no lock is needed after that.
type cacheEntry struct {
	fp    trace.Fingerprint
	ready chan struct{}
	model *cost.Model
	table cost.ResidenceTable
}

// cacheOutcome classifies how one request resolved against the cache;
// the request path settles it into the hit/shared-build counters only
// once the request actually completes (see settle).
type cacheOutcome uint8

const (
	// cacheOutcomeBuild: the request was elected builder (the miss was
	// already counted at election, when the build became inevitable).
	cacheOutcomeBuild cacheOutcome = iota
	// cacheOutcomeHit: the entry was ready at acquire time.
	cacheOutcomeHit
	// cacheOutcomeShared: the request piggybacked on an in-flight build.
	cacheOutcomeShared
)

// tableCache is the fingerprint-keyed LRU with singleflight semantics:
// acquire elects exactly one builder per fingerprint; concurrent misses
// on the same key piggyback on the in-flight build instead of building
// their own table (the stampede guard the load tests pin down).
//
// Entries are evicted strictly by recency. Evicting an entry that is
// still being built is harmless: the builder and its waiters hold the
// *cacheEntry directly, so the build completes and serves them; only
// future requests re-miss.
type tableCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	items map[trace.Fingerprint]*list.Element

	hits, misses, sharedBuilds, evictions uint64
}

func newTableCache(max int) *tableCache {
	// A capacity below one would let acquire evict the entry it just
	// inserted, silently degrading singleflight to build-per-request;
	// clamp so at least the in-flight entry always survives.
	if max < 1 {
		max = 1
	}
	return &tableCache{max: max, ll: list.New(), items: make(map[trace.Fingerprint]*list.Element)}
}

// acquire returns the cache entry for fp and whether the caller has
// been elected to build it. When builder is false the caller must wait
// on entry.ready before touching model/table.
//
// Misses and evictions are counted here: election makes the build
// inevitable (it runs to completion even if the requester is later
// abandoned), so the miss is a fact at acquire time. Hits and shared
// builds are NOT counted here — a waiter whose caller cancels mid-wait
// never receives the table, so those settle later, once the request
// actually completes (see settle).
func (c *tableCache) acquire(fp trace.Fingerprint) (entry *cacheEntry, builder bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry), false
	}
	c.misses++
	e := &cacheEntry{fp: fp, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.items[fp] = el
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		if back == el {
			break // never evict the entry this acquire just inserted
		}
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).fp)
		c.evictions++
	}
	return e, true
}

// peek returns the ready entry for fp, or false when the fingerprint is
// not cached or its build is still in flight. It serves the peer-fill
// read side (GET /table/{fingerprint}): a peer asking for an in-flight
// entry gets a miss rather than a wait, so a fill request is always
// answered in bounded time. A successful peek refreshes recency — a
// table a peer wants is a table worth keeping — but counts neither as
// hit nor miss, so shard-local cache statistics stay about local
// request traffic.
func (c *tableCache) peek(fp trace.Fingerprint) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[fp]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	select {
	case <-e.ready:
	default:
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e, true
}

// adopt inserts a ready entry for fp if the fingerprint is absent,
// reporting whether the insert happened. It is the replica-prefill
// path: a pushed table is not a demand miss, so adopt counts neither
// miss nor hit — only the eviction it may force — keeping the cache
// statistics about local request traffic. An entry already present
// (ready or still building) wins; the caller drops its table.
func (c *tableCache) adopt(fp trace.Fingerprint, m *cost.Model, t cost.ResidenceTable) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[fp]; ok {
		return false
	}
	e := &cacheEntry{fp: fp, ready: make(chan struct{}), model: m, table: t}
	close(e.ready)
	el := c.ll.PushFront(e)
	c.items[fp] = el
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		if back == el {
			break
		}
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).fp)
		c.evictions++
	}
	return true
}

// settle records how a completed request resolved against the cache.
// The request path calls it exactly once per successful request, after
// the response is in hand; abandoned waiters (context expired while
// blocked on an in-flight build) never settle, so cache_hits counts
// tables actually delivered, not lookups optimistically started.
func (c *tableCache) settle(o cacheOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch o {
	case cacheOutcomeHit:
		c.hits++
	case cacheOutcomeShared:
		c.sharedBuilds++
	}
}

// publish installs the built model and table and wakes all waiters.
// Only the elected builder may call it, exactly once.
func (c *tableCache) publish(e *cacheEntry, m *cost.Model, t cost.ResidenceTable) {
	e.model = m
	e.table = t
	close(e.ready)
}

// counters returns a snapshot of the cache statistics.
func (c *tableCache) counters() (hits, misses, sharedBuilds, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.sharedBuilds, c.evictions, c.ll.Len()
}
