package service

import (
	"container/list"
	"encoding/binary"
	"sync"

	"repro/internal/cost"
	"repro/internal/trace"
)

// cacheEntry is one cached {cost model, residence table} pair. The
// fields are written exactly once by the elected builder (or promoter),
// before ready is closed; readers must wait on ready first (the close
// establishes the happens-before edge), so no lock is needed after
// that. Entries are immutable once published: demotion and eviction
// swap the cache's own reference, never the entry, so in-flight
// requests holding one keep a consistent view.
type cacheEntry struct {
	fp    trace.Fingerprint
	ready chan struct{}
	model *cost.Model
	table cost.ResidenceTable
}

// cacheOutcome classifies how one request resolved against the cache;
// the request path settles it into the hit/shared-build counters only
// once the request actually completes (see settle).
type cacheOutcome uint8

const (
	// cacheOutcomeBuild: the request was elected builder (the miss was
	// already counted at election, when the build became inevitable).
	cacheOutcomeBuild cacheOutcome = iota
	// cacheOutcomeHit: the entry was ready at acquire time.
	cacheOutcomeHit
	// cacheOutcomeShared: the request piggybacked on an in-flight build.
	cacheOutcomeShared
	// cacheOutcomePromote: the request was elected to decode a cold-tier
	// table back to the hot tier. The table was resident, so it settles
	// as a hit (the promotion itself was counted at election); only
	// tables_built distinguishes a promote from a flat hit.
	cacheOutcomePromote
)

// cacheRole is what acquire elected the caller to do.
type cacheRole uint8

const (
	// cacheRoleWait: another request owns the entry; wait on ready (a
	// closed channel means an immediate hit).
	cacheRoleWait cacheRole = iota
	// cacheRoleBuilder: the caller must build the table and publish.
	cacheRoleBuilder
	// cacheRolePromoter: the caller must decode the returned cold
	// payload (or rebuild on decode failure) and publish.
	cacheRolePromoter
)

// tierState is where a fingerprint's table currently lives.
type tierState uint8

const (
	tierBuilding  tierState = iota // entry open; elected builder running
	tierHot                        // entry ready; flat table
	tierPromoting                  // entry open; elected promoter decoding comp
	tierCold                       // no entry; compressed pimtab-v2 payload
)

// cacheNode is the cache's own mutable handle on one fingerprint. The
// node moves between tiers under the cache lock; the immutable
// cacheEntry it points at (hot tiers) or the compressed payload it
// holds (cold tier) is what requests actually consume.
type cacheNode struct {
	fp    trace.Fingerprint
	state tierState
	el    *list.Element // position in hot (building/hot/promoting) or cold
	entry *cacheEntry   // nil when cold
	comp  []byte        // pimtab-v2 payload; set when cold or promoting
	bytes int64         // accounted size of the current representation
}

// flatTableBytes is the accounted size of a hot-tier table: the cell
// backing only. The cost model alongside it is deliberately excluded —
// it is rebuilt from the trace on promotion, not stored cold, and
// counting it would make the budget depend on model internals.
func flatTableBytes(t cost.ResidenceTable) int64 {
	return 8 * int64(len(t.Cells()))
}

// freqSketch is a small count-min sketch with saturating 8-bit
// counters, backing cache admission: on eviction pressure the victim's
// estimated access frequency is compared against the newcomer's, so a
// one-shot scan cannot flush a working set that is provably hotter.
// Counters halve after sketchDecaySamples bumps, so the estimate tracks
// recent popularity rather than all-time counts.
type freqSketch struct {
	rows    [4][sketchWidth]uint8
	samples int
}

const (
	sketchWidth        = 1024 // power of two; indices mask into it
	sketchDecaySamples = 8 * sketchWidth
)

// sketchIdx derives row r's counter index from the fingerprint itself:
// a trace fingerprint is already a uniform SHA-256, so consecutive
// 8-byte chunks are independent hashes for free.
func sketchIdx(fp trace.Fingerprint, r int) uint32 {
	return uint32(binary.LittleEndian.Uint64(fp[8*r:])) & (sketchWidth - 1)
}

func (s *freqSketch) bump(fp trace.Fingerprint) {
	for r := range s.rows {
		if c := &s.rows[r][sketchIdx(fp, r)]; *c < 255 {
			*c++
		}
	}
	if s.samples++; s.samples >= sketchDecaySamples {
		s.samples = 0
		for r := range s.rows {
			for i := range s.rows[r] {
				s.rows[r][i] >>= 1
			}
		}
	}
}

func (s *freqSketch) estimate(fp trace.Fingerprint) uint8 {
	min := s.rows[0][sketchIdx(fp, 0)]
	for r := 1; r < len(s.rows); r++ {
		if c := s.rows[r][sketchIdx(fp, r)]; c < min {
			min = c
		}
	}
	return min
}

// tableCache is the fingerprint-keyed, bytes-bounded, two-tier cache
// with singleflight semantics: acquire elects exactly one builder per
// fingerprint; concurrent misses on the same key piggyback on the
// in-flight build instead of building their own table (the stampede
// guard the load tests pin down). The same election mechanism covers
// promotion: exactly one request decodes a cold table, and concurrent
// requests for it wait on the entry like any in-flight build.
//
// Two independent bounds apply, enforced when a table is published or
// adopted (never at acquire — an in-flight build must stay findable, so
// building entries can transiently overshoot, bounded by MaxInflight):
//
//   - maxEntries counts fingerprints across both tiers and evicts
//     outright from the least-recently-used end (cold tail first).
//   - maxBytes bounds the summed representation sizes. Over budget, hot
//     tables are demoted — re-encoded into the compressed pimtab-v2
//     codec and kept resident — before anything is evicted; only when
//     no hot table remains demotable does the cold tail go.
//
// Eviction (not demotion) consults the admission sketch: when the
// victim's estimated frequency strictly exceeds the newcomer's, the
// newcomer is rejected instead, so a scan of one-shot fingerprints
// cannot flush a Zipf-hot working set. Ties admit, preserving plain
// LRU behaviour for uniform traffic.
//
// Evicting an entry that is still being built is harmless: the builder
// and its waiters hold the *cacheEntry directly, so the build completes
// and serves them; only future requests re-miss.
type tableCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	coldTier   bool // false = flat one-tier LRU (demotion disabled)
	hot        *list.List
	cold       *list.List // front = most recently used; values are *cacheNode
	items      map[trace.Fingerprint]*cacheNode
	bytes      int64
	sketch     freqSketch

	hits, misses, sharedBuilds, evictions   uint64
	demotions, promotions, admissionRejects uint64
}

// cacheStats is one consistent snapshot of the cache counters.
type cacheStats struct {
	hits, misses, sharedBuilds, evictions   uint64
	demotions, promotions, admissionRejects uint64
	hotEntries, coldEntries                 int
	bytes                                   int64
}

func (st cacheStats) entries() int { return st.hotEntries + st.coldEntries }

func newTableCache(maxEntries int, maxBytes int64, coldTier bool) *tableCache {
	// A capacity below one would let enforcement evict the entry just
	// published, silently degrading singleflight to build-per-request;
	// clamp so the newest entry always survives. The byte budget needs
	// no clamp — enforcement never removes the newest node.
	if maxEntries < 1 {
		maxEntries = 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &tableCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		coldTier:   coldTier,
		hot:        list.New(),
		cold:       list.New(),
		items:      make(map[trace.Fingerprint]*cacheNode),
	}
}

// acquire resolves fp against both tiers and elects the caller's role.
// cacheRoleWait callers wait on entry.ready before touching model and
// table; cacheRoleBuilder callers must build and publish; a
// cacheRolePromoter receives the compressed payload to decode (outside
// any lock) and must likewise publish.
//
// Misses and promotions are counted here: election makes the work
// inevitable (it runs to completion even if the requester is later
// abandoned), so it is a fact at acquire time. Hits and shared builds
// are NOT counted here — a waiter whose caller cancels mid-wait never
// receives the table, so those settle later, once the request actually
// completes (see settle).
func (c *tableCache) acquire(fp trace.Fingerprint) (entry *cacheEntry, role cacheRole, comp []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sketch.bump(fp)
	if n, ok := c.items[fp]; ok {
		if n.state == tierCold {
			// Elect this caller to promote: move the node to the hot
			// list now so concurrent requests wait on the entry instead
			// of re-electing, exactly like an in-flight build. The
			// compressed payload stays on the node (and is returned) —
			// it is immutable, so the promoter can read it after the
			// node itself is evicted or re-demoted.
			e := &cacheEntry{fp: fp, ready: make(chan struct{})}
			c.cold.Remove(n.el)
			n.el = c.hot.PushFront(n)
			n.state = tierPromoting
			n.entry = e
			c.promotions++
			return e, cacheRolePromoter, n.comp
		}
		c.touch(n)
		return n.entry, cacheRoleWait, nil
	}
	c.misses++
	e := &cacheEntry{fp: fp, ready: make(chan struct{})}
	n := &cacheNode{fp: fp, state: tierBuilding, entry: e}
	n.el = c.hot.PushFront(n)
	c.items[fp] = n
	return e, cacheRoleBuilder, nil
}

// touch refreshes a node's recency in whichever tier list holds it.
func (c *tableCache) touch(n *cacheNode) {
	if n.state == tierCold {
		c.cold.MoveToFront(n.el)
	} else {
		c.hot.MoveToFront(n.el)
	}
}

// resident reports whether fp has a table in either tier (or in
// flight), refreshing its recency. It serves the prefill residency
// check; like the old ready-entry peek it counts neither hit nor miss,
// keeping cache statistics about local demand traffic. A building or
// promoting entry counts as resident — a prefill push for it would be
// dropped by adopt anyway.
func (c *tableCache) resident(fp trace.Fingerprint) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.items[fp]
	if !ok {
		return false
	}
	c.touch(n)
	return true
}

// encodedTable returns the wire encoding of fp's cached table for the
// peer-fill read side (GET /table/{fingerprint}), in pimtab-v2 when the
// peer negotiated it, else pimtab-v1. A fingerprint that is absent or
// still being built reports false: a fill request is always answered in
// bounded time, never blocked on an in-flight build. A cold hit serves
// the stored compressed payload directly to v2 peers — the negotiation
// exists precisely so cluster fill traffic rides the cold tier for
// free. Like resident, it refreshes recency (a table a peer wants is a
// table worth keeping) but counts neither hit nor miss.
func (c *tableCache) encodedTable(fp trace.Fingerprint, wantV2 bool) ([]byte, bool) {
	c.mu.Lock()
	var entry *cacheEntry
	var comp []byte
	n, ok := c.items[fp]
	if ok {
		switch n.state {
		case tierHot:
			entry = n.entry
			c.touch(n)
		case tierCold, tierPromoting:
			comp = n.comp
			c.touch(n)
		}
	}
	c.mu.Unlock()
	switch {
	case entry != nil && wantV2:
		return cost.EncodeTableV2(fp, entry.table), true
	case entry != nil:
		return cost.EncodeTable(fp, entry.table), true
	case comp != nil && wantV2:
		return comp, true
	case comp != nil:
		// A pre-v2 peer asked for a cold table: transcode. Rare — only
		// mixed-version fleets hit it — and still cheaper than a 404
		// that forces the peer to rebuild.
		_, t, err := cost.DecodeTableAny(comp, 0)
		if err != nil {
			return nil, false
		}
		return cost.EncodeTable(fp, t), true
	}
	return nil, false
}

// adopt inserts a ready hot entry for fp if the fingerprint is absent,
// reporting whether the insert happened. It is the replica-prefill
// path: a pushed table is not a demand miss, so adopt counts neither
// miss nor hit — only the demotions/evictions it may force — keeping
// the cache statistics about local request traffic. An entry already
// present (any tier, or still building) wins; the caller drops its
// table.
func (c *tableCache) adopt(fp trace.Fingerprint, m *cost.Model, t cost.ResidenceTable) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[fp]; ok {
		return false
	}
	// A pushed table carries demand evidence (the router saw the primary
	// serve this key), so it gets the same single frequency bump a
	// demand request would — without it, any eviction pressure would
	// reject the freshly adopted table against a once-seen victim.
	c.sketch.bump(fp)
	e := &cacheEntry{fp: fp, ready: make(chan struct{}), model: m, table: t}
	close(e.ready)
	n := &cacheNode{fp: fp, state: tierHot, entry: e, bytes: flatTableBytes(t)}
	n.el = c.hot.PushFront(n)
	c.items[fp] = n
	c.bytes += n.bytes
	c.enforce(n)
	return true
}

// settle records how a completed request resolved against the cache.
// The request path calls it exactly once per successful request, after
// the response is in hand; abandoned waiters (context expired while
// blocked on an in-flight build) never settle, so cache_hits counts
// tables actually delivered, not lookups optimistically started.
func (c *tableCache) settle(o cacheOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch o {
	case cacheOutcomeHit, cacheOutcomePromote:
		c.hits++
	case cacheOutcomeShared:
		c.sharedBuilds++
	}
}

// publish installs the built (or promoted) model and table and wakes
// all waiters. Only the elected builder or promoter may call it,
// exactly once. Publication is also where the cache bounds are
// enforced: the node's representation size is known only now.
func (c *tableCache) publish(e *cacheEntry, m *cost.Model, t cost.ResidenceTable) {
	e.model = m
	e.table = t
	close(e.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.items[e.fp]
	if !ok || n.entry != e {
		// The node was evicted mid-build (or evicted and re-missed,
		// minting a fresh node): the waiters hold e directly and are
		// served; the cache simply never accounts this table.
		return
	}
	c.bytes += flatTableBytes(t) - n.bytes
	n.bytes = flatTableBytes(t)
	n.state = tierHot
	n.comp = nil
	c.hot.MoveToFront(n.el)
	c.enforce(n)
}

// enforce brings the cache back under both bounds, treating newest — the
// node just published or adopted — as undroppable, so enforcement can
// never remove the entry whose insertion triggered it. Called with c.mu
// held.
func (c *tableCache) enforce(newest *cacheNode) {
	// Entry cap first: it is a hard count, so only eviction helps.
	for c.hot.Len()+c.cold.Len() > c.maxEntries {
		evicted, still := c.pressureEvict(newest)
		if !evicted {
			break
		}
		newest = still
	}
	// Byte budget: demote hot tables into the cold tier while any
	// remain, then evict from the cold tail.
	for c.bytes > c.maxBytes {
		if c.coldTier {
			if v := c.demoteVictim(newest); v != nil {
				c.demote(v)
				continue
			}
		}
		evicted, still := c.pressureEvict(newest)
		if !evicted {
			break
		}
		newest = still
	}
}

// demoteVictim picks the least-recently-used hot table that may be
// demoted: never the newest node, never an entry still being built or
// promoted (those have nothing to compress yet).
func (c *tableCache) demoteVictim(newest *cacheNode) *cacheNode {
	for el := c.hot.Back(); el != nil; el = el.Prev() {
		if n := el.Value.(*cacheNode); n != newest && n.state == tierHot {
			return n
		}
	}
	return nil
}

// demote compresses a hot table into the cold tier, freeing the flat
// cells and the cost model (the model is rebuilt from the trace on
// promotion — it is about as large as the table itself, so keeping it
// would defeat the compression). A table whose compressed form is not
// actually smaller (tiny tables, where the 66-byte header dominates) is
// evicted instead: keeping it cold would grow the cache. Called with
// c.mu held.
func (c *tableCache) demote(v *cacheNode) {
	comp := cost.EncodeTableV2(v.fp, v.entry.table)
	if int64(len(comp)) >= v.bytes {
		c.remove(v)
		c.evictions++
		return
	}
	c.bytes += int64(len(comp)) - v.bytes
	v.bytes = int64(len(comp))
	v.comp = comp
	v.entry = nil
	v.state = tierCold
	c.hot.Remove(v.el)
	v.el = c.cold.PushFront(v)
	c.demotions++
}

// pressureEvict removes one node under pressure, subject to admission:
// if the would-be victim is estimated strictly hotter than the newcomer
// whose insertion caused the pressure, the newcomer itself is removed
// instead (admission reject) — its waiters are unaffected, they hold
// the entry directly. Reports whether anything was removed, and the
// newcomer's node if it still stands. Called with c.mu held.
func (c *tableCache) pressureEvict(newest *cacheNode) (bool, *cacheNode) {
	v := c.evictVictim(newest)
	if v == nil {
		return false, newest // nothing but the newest left; keep it
	}
	if newest != nil && c.sketch.estimate(v.fp) > c.sketch.estimate(newest.fp) {
		c.remove(newest)
		c.admissionRejects++
		return true, nil
	}
	c.remove(v)
	c.evictions++
	return true, newest
}

// evictVictim picks the least valuable resident node: the cold tail if
// the cold tier is nonempty (cold nodes were already the LRU end of the
// hot tier once), else the hot tail — skipping the newest node.
func (c *tableCache) evictVictim(newest *cacheNode) *cacheNode {
	if el := c.cold.Back(); el != nil {
		return el.Value.(*cacheNode)
	}
	for el := c.hot.Back(); el != nil; el = el.Prev() {
		if n := el.Value.(*cacheNode); n != newest {
			return n
		}
	}
	return nil
}

// remove unlinks a node from its tier and the index and un-accounts its
// bytes. Called with c.mu held.
func (c *tableCache) remove(n *cacheNode) {
	delete(c.items, n.fp)
	if n.state == tierCold {
		c.cold.Remove(n.el)
	} else {
		c.hot.Remove(n.el)
	}
	c.bytes -= n.bytes
}

// counters returns a snapshot of the cache statistics.
func (c *tableCache) counters() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		hits: c.hits, misses: c.misses, sharedBuilds: c.sharedBuilds,
		evictions: c.evictions, demotions: c.demotions,
		promotions: c.promotions, admissionRejects: c.admissionRejects,
		hotEntries: c.hot.Len(), coldEntries: c.cold.Len(),
		bytes: c.bytes,
	}
}
