package service

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/sched"
	"repro/internal/trace"
)

// SessionExport is the wire form of a live session, complete enough
// that ImportSession on another shard resumes it bit-identically: the
// materialized current trace (pimtrace v1 text), the head of the
// chained fingerprint sequence, the applied-delta count, and the
// session's patched residence table in the compressed pimtab-v2 binary
// codec (base64 under encoding/json; importers accept v1 payloads too,
// so exports from pre-v2 shards still resume here). The table is the
// expensive part — it carries every delta's incremental patch, so the
// importer re-solves from it instead of rebuilding windows x data x
// processors cells.
type SessionExport struct {
	SessionID   string `json:"session_id"`
	Algorithm   string `json:"algorithm"`
	Capacity    int    `json:"capacity"`
	Seq         uint64 `json:"seq"`
	Fingerprint string `json:"fingerprint"`
	Trace       string `json:"trace"`
	Table       []byte `json:"table"`
}

// ErrSessionExists reports an import under a session ID this shard
// already holds; the HTTP layer maps it to 409. IDs carry a random
// fleet-unique suffix, so a collision means the same session was
// imported twice, not an accident worth overwriting state for.
type ErrSessionExists struct{ ID string }

func (e *ErrSessionExists) Error() string { return "service: session already exists: " + e.ID }

// ExportSession serializes a live session for migration. The session
// stays live — the router deletes it at the source once the import
// succeeded, so a failed migration loses nothing.
func (s *Service) ExportSession(id string) (*SessionExport, error) {
	var exp *SessionExport
	if err := s.withSession(id, func(e *sessionEntry) error {
		var buf strings.Builder
		if err := trace.Encode(&buf, e.sess.Trace()); err != nil {
			return fmt.Errorf("service: export session %s: %w", id, err)
		}
		fp := e.sess.Fingerprint()
		exp = &SessionExport{
			SessionID:   id,
			Algorithm:   e.sess.Algorithm(),
			Capacity:    e.sess.Capacity(),
			Seq:         e.sess.Seq(),
			Fingerprint: fp.String(),
			Trace:       buf.String(),
			Table:       cost.EncodeTableV2(fp, e.sess.Table()),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	s.sessionsExported.Add(1)
	return exp, nil
}

// ImportSession registers an exported session under its original ID,
// adopting the shipped table instead of building one (tables_built
// stays flat — migration is a transfer, not a rebuild). The chained
// fingerprint and sequence number carry over, so subsequent deltas and
// schedules continue exactly where the source shard stopped.
func (s *Service) ImportSession(exp SessionExport) (*SessionInfo, error) {
	if exp.SessionID == "" {
		return nil, badRequest("import without session_id")
	}
	scheduler, err := sched.ByName(exp.Algorithm)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if exp.Capacity < 0 {
		return nil, badRequest("negative capacity %d", exp.Capacity)
	}
	if int64(len(exp.Trace)) > s.cfg.maxBodyBytes() {
		return nil, badRequest("trace text %d bytes exceeds limit %d", len(exp.Trace), s.cfg.maxBodyBytes())
	}
	wantFP, err := trace.ParseFingerprint(exp.Fingerprint)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	tr, err := trace.Decode(strings.NewReader(exp.Trace))
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if err := s.checkTraceScale(tr); err != nil {
		return nil, err
	}
	// The shipped table is decoded under the same cell budget the trace
	// guard enforces: the trace cross-check alone runs only after this
	// decode, so without the budget a crafted payload header could
	// commit the shard to an allocation its own guards would refuse.
	tableFP, table, err := cost.DecodeTableAny(exp.Table, s.cfg.maxTableCells())
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if tableFP != wantFP {
		return nil, badRequest("table payload fingerprint %s does not match session fingerprint %s",
			tableFP, wantFP)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.sessions[exp.SessionID]; ok {
		return nil, &ErrSessionExists{ID: exp.SessionID}
	}
	if len(s.sessions) >= s.cfg.maxSessions() {
		return nil, fmt.Errorf("%w: %d sessions live", ErrOverloaded, len(s.sessions))
	}
	sess, err := delta.RestoreSession(tr, scheduler, exp.Capacity, exp.Seq, table, delta.Options{
		Stages: s.stages,
		OnLayersRecomputed: func(layers int) {
			s.deltaLayersRecomputed.Store(int64(layers))
		},
	})
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	// The restored session recomputes the chained fingerprint from the
	// materialized trace; a mismatch with the envelope means the export
	// was corrupted in flight and must not be resumed.
	if got := sess.Fingerprint(); got != wantFP {
		return nil, errors.New("service: restored session fingerprint " + got.String() +
			" does not match export " + wantFP.String())
	}
	if s.sessions == nil {
		s.sessions = make(map[string]*sessionEntry)
	}
	s.sessions[exp.SessionID] = &sessionEntry{id: exp.SessionID, sess: sess, grid: tr.Grid.String()}
	s.sessionsImported.Add(1)
	return s.sessionInfo(s.sessions[exp.SessionID]), nil
}
