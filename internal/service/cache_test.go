package service

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// fpN returns a distinct fingerprint for each n.
func fpN(n byte) trace.Fingerprint {
	var fp trace.Fingerprint
	fp[0] = n
	return fp
}

// Regression test: a tableCache constructed with max <= 1 must still
// singleflight. Before the guard, newTableCache(0) accepted the bogus
// capacity and acquire evicted the entry it had just inserted, so every
// request — even over a trace just seen — re-elected a builder and the
// cache silently degraded to build-per-request.
func TestTableCacheTinyCapacitySingleflights(t *testing.T) {
	for _, max := range []int{0, 1} {
		c := newTableCache(max)
		e, builder := c.acquire(fpN(1))
		if !builder {
			t.Fatalf("max=%d: first acquire did not elect a builder", max)
		}
		c.publish(e, nil, cost.ResidenceTable{})
		for i := 0; i < 3; i++ {
			e2, builder := c.acquire(fpN(1))
			if builder {
				t.Fatalf("max=%d: acquire %d re-elected a builder for a cached fingerprint (the entry evicted itself)", max, i)
			}
			select {
			case <-e2.ready:
				c.settle(cacheOutcomeHit) // as the request path does on completion
			default:
				t.Fatalf("max=%d: acquire %d returned an unpublished entry with no builder", max, i)
			}
		}
		hits, misses, _, _, entries := c.counters()
		if hits != 3 || misses != 1 || entries != 1 {
			t.Fatalf("max=%d: hits=%d misses=%d entries=%d, want 3/1/1", max, hits, misses, entries)
		}
	}
}

// The same failure observed end to end: repeated requests over one
// trace must build exactly one residence table (tables_built ==
// distinct traces) even when the cache capacity is degenerate.
func TestTinyCacheTablesBuiltEqualsDistinctTraces(t *testing.T) {
	for _, max := range []int{0, 1} {
		svc := New(Config{})
		svc.cache = newTableCache(max) // bypass Config's default clamp
		text := traceText(t, "lu", 4, grid.Square(2))
		for i := 0; i < 4; i++ {
			if _, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"}); err != nil {
				t.Fatalf("max=%d: request %d: %v", max, i, err)
			}
		}
		if st := svc.Stats(); st.TablesBuilt != 1 {
			t.Errorf("max=%d: tables_built = %d after 4 requests over 1 distinct trace, want 1", max, st.TablesBuilt)
		}
		svc.Close()
	}
}

// Eviction must never remove the entry acquire just inserted, even
// under interleaved fingerprints at capacity 1: the newest entry is the
// one the caller is about to build.
func TestTableCacheNeverEvictsJustInserted(t *testing.T) {
	c := newTableCache(1)
	for n := byte(1); n <= 4; n++ {
		e, builder := c.acquire(fpN(n))
		if !builder {
			t.Fatalf("fingerprint %d: expected builder election", n)
		}
		if _, ok := c.items[fpN(n)]; !ok {
			t.Fatalf("fingerprint %d: just-inserted entry already evicted", n)
		}
		c.publish(e, nil, cost.ResidenceTable{})
	}
	if _, _, _, evictions, entries := c.counters(); entries != 1 || evictions != 3 {
		t.Fatalf("entries=%d evictions=%d, want 1 entry and 3 evictions of older entries", entries, evictions)
	}
}
