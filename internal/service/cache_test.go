package service

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// fpN returns a distinct fingerprint for each n.
func fpN(n byte) trace.Fingerprint {
	var fp trace.Fingerprint
	fp[0] = n
	return fp
}

// testCacheBytes is a byte budget high enough that entry-count tests
// never trip byte pressure.
const testCacheBytes = 1 << 30

// Regression test: a tableCache constructed with max <= 1 must still
// singleflight. Before the guard, newTableCache(0, ...) accepted the
// bogus capacity and acquire evicted the entry it had just inserted, so
// every request — even over a trace just seen — re-elected a builder
// and the cache silently degraded to build-per-request.
func TestTableCacheTinyCapacitySingleflights(t *testing.T) {
	for _, max := range []int{0, 1} {
		c := newTableCache(max, testCacheBytes, true)
		e, role, _ := c.acquire(fpN(1))
		if role != cacheRoleBuilder {
			t.Fatalf("max=%d: first acquire did not elect a builder", max)
		}
		c.publish(e, nil, cost.ResidenceTable{})
		for i := 0; i < 3; i++ {
			e2, role, _ := c.acquire(fpN(1))
			if role != cacheRoleWait {
				t.Fatalf("max=%d: acquire %d re-elected role %d for a cached fingerprint (the entry evicted itself)", max, i, role)
			}
			select {
			case <-e2.ready:
				c.settle(cacheOutcomeHit) // as the request path does on completion
			default:
				t.Fatalf("max=%d: acquire %d returned an unpublished entry with no builder", max, i)
			}
		}
		cs := c.counters()
		if cs.hits != 3 || cs.misses != 1 || cs.entries() != 1 {
			t.Fatalf("max=%d: hits=%d misses=%d entries=%d, want 3/1/1", max, cs.hits, cs.misses, cs.entries())
		}
	}
}

// The same failure observed end to end: repeated requests over one
// trace must build exactly one residence table (tables_built ==
// distinct traces) even when the cache capacity is degenerate.
func TestTinyCacheTablesBuiltEqualsDistinctTraces(t *testing.T) {
	for _, max := range []int{0, 1} {
		svc := New(Config{})
		svc.cache = newTableCache(max, testCacheBytes, true) // bypass Config's default clamp
		text := traceText(t, "lu", 4, grid.Square(2))
		for i := 0; i < 4; i++ {
			if _, err := svc.Schedule(context.Background(), Request{Trace: text, Algorithm: "scds"}); err != nil {
				t.Fatalf("max=%d: request %d: %v", max, i, err)
			}
		}
		if st := svc.Stats(); st.TablesBuilt != 1 {
			t.Errorf("max=%d: tables_built = %d after 4 requests over 1 distinct trace, want 1", max, st.TablesBuilt)
		}
		svc.Close()
	}
}

// Eviction must never remove the entry acquire just inserted, even
// under interleaved fingerprints at capacity 1: the newest entry is the
// one the caller is about to build.
func TestTableCacheNeverEvictsJustInserted(t *testing.T) {
	c := newTableCache(1, testCacheBytes, true)
	for n := byte(1); n <= 4; n++ {
		e, role, _ := c.acquire(fpN(n))
		if role != cacheRoleBuilder {
			t.Fatalf("fingerprint %d: expected builder election", n)
		}
		if _, ok := c.items[fpN(n)]; !ok {
			t.Fatalf("fingerprint %d: just-inserted entry already evicted", n)
		}
		c.publish(e, nil, cost.ResidenceTable{})
	}
	if cs := c.counters(); cs.entries() != 1 || cs.evictions != 3 {
		t.Fatalf("entries=%d evictions=%d, want 1 entry and 3 evictions of older entries", cs.entries(), cs.evictions)
	}
}

// buildInto runs one acquire-as-builder/publish cycle for fp with a
// table of the given shape, as the request path would.
func buildInto(t *testing.T, c *tableCache, fp trace.Fingerprint, nw, nd, np int) {
	t.Helper()
	e, role, _ := c.acquire(fp)
	if role != cacheRoleBuilder {
		t.Fatalf("fingerprint %v: expected builder election, got role %d", fp[0], role)
	}
	table := cost.NewResidenceTable(nw, nd, np)
	for i, cells := 0, table.Cells(); i < len(cells); i++ {
		cells[i] = int64(100 + i%7) // smooth-ish, nonzero, deterministic
	}
	c.publish(e, nil, table)
	c.settle(cacheOutcomeBuild)
}

// Byte pressure demotes the LRU hot table into the cold tier instead of
// evicting it; a later acquire elects a promoter carrying the
// compressed payload back out.
func TestTableCacheDemotesAndPromotesUnderBytePressure(t *testing.T) {
	// Each 8x8x8 table is 4096 flat bytes; a 6000-byte budget fits one
	// flat table plus a compressed one, but never two flat.
	c := newTableCache(16, 6000, true)
	buildInto(t, c, fpN(1), 8, 8, 8)
	buildInto(t, c, fpN(2), 8, 8, 8)

	cs := c.counters()
	if cs.demotions != 1 || cs.evictions != 0 {
		t.Fatalf("demotions=%d evictions=%d after overflow, want 1 demotion and 0 evictions", cs.demotions, cs.evictions)
	}
	if cs.hotEntries != 1 || cs.coldEntries != 1 {
		t.Fatalf("hot=%d cold=%d, want 1/1", cs.hotEntries, cs.coldEntries)
	}
	if cs.bytes > 6000 {
		t.Fatalf("cache bytes %d exceed the 6000-byte budget", cs.bytes)
	}

	e, role, comp := c.acquire(fpN(1))
	if role != cacheRolePromoter {
		t.Fatalf("acquire of the demoted fingerprint elected role %d, want promoter", role)
	}
	if len(comp) == 0 {
		t.Fatal("promoter received no compressed payload")
	}
	gotFP, table, err := cost.DecodeTableAny(comp, 0)
	if err != nil {
		t.Fatalf("cold payload does not decode: %v", err)
	}
	if gotFP != fpN(1) {
		t.Fatalf("cold payload is for %v, want %v", gotFP, fpN(1))
	}
	// Concurrent requests for an in-flight promotion must wait on the
	// entry, not re-elect.
	if _, role2, _ := c.acquire(fpN(1)); role2 != cacheRoleWait {
		t.Fatalf("second acquire during promotion elected role %d, want wait", role2)
	}
	c.publish(e, nil, table)
	c.settle(cacheOutcomePromote)

	cs = c.counters()
	if cs.promotions != 1 {
		t.Fatalf("promotions=%d, want 1", cs.promotions)
	}
	if cs.hits != 1 {
		t.Fatalf("hits=%d after a settled promotion, want 1", cs.hits)
	}
	// Promoting fp1 re-overflowed the budget, so fp2 must now be cold.
	if cs.demotions != 2 {
		t.Fatalf("demotions=%d, want 2 (fp2 demoted when fp1 came back)", cs.demotions)
	}
	if cs.bytes > 6000 {
		t.Fatalf("cache bytes %d exceed the budget after promotion", cs.bytes)
	}
}

// With the cold tier disabled the same pressure evicts outright: the
// ablation knob really does restore the flat one-tier LRU.
func TestTableCacheColdTierDisabledEvicts(t *testing.T) {
	c := newTableCache(16, 6000, false)
	buildInto(t, c, fpN(1), 8, 8, 8)
	buildInto(t, c, fpN(2), 8, 8, 8)
	cs := c.counters()
	if cs.demotions != 0 || cs.evictions != 1 || cs.coldEntries != 0 {
		t.Fatalf("demotions=%d evictions=%d cold=%d with cold tier disabled, want 0/1/0",
			cs.demotions, cs.evictions, cs.coldEntries)
	}
	if _, role, _ := c.acquire(fpN(1)); role != cacheRoleBuilder {
		t.Fatalf("evicted fingerprint re-acquired as role %d, want builder", role)
	}
}

// A table too small to shrink under the v2 header is evicted rather
// than demoted: "demoting" it would grow the cache.
func TestTableCacheTinyTableEvictsInsteadOfDemoting(t *testing.T) {
	c := newTableCache(16, 20, true)
	buildInto(t, c, fpN(1), 1, 1, 2) // 16 flat bytes; v2 payload is 66+ bytes
	buildInto(t, c, fpN(2), 1, 1, 2)
	cs := c.counters()
	if cs.demotions != 0 || cs.evictions != 1 {
		t.Fatalf("demotions=%d evictions=%d for an incompressible table, want 0/1", cs.demotions, cs.evictions)
	}
}

// Admission: when eviction pressure would remove a table demonstrably
// hotter than the newcomer, the newcomer is rejected instead — a scan
// of one-shot fingerprints must not flush a hot working set.
func TestTableCacheAdmissionprotectsHotVictim(t *testing.T) {
	c := newTableCache(16, 6000, false) // flat mode isolates admission from demotion
	buildInto(t, c, fpN(1), 8, 8, 8)
	// Make fp1 provably hot.
	for i := 0; i < 5; i++ {
		e, role, _ := c.acquire(fpN(1))
		if role != cacheRoleWait {
			t.Fatalf("warm acquire %d elected role %d", i, role)
		}
		<-e.ready
		c.settle(cacheOutcomeHit)
	}
	// A one-shot scan table arrives; the budget forces a choice.
	buildInto(t, c, fpN(2), 8, 8, 8)
	cs := c.counters()
	if cs.admissionRejects != 1 || cs.evictions != 0 {
		t.Fatalf("admissionRejects=%d evictions=%d, want the scan rejected and the hot table kept", cs.admissionRejects, cs.evictions)
	}
	if _, ok := c.items[fpN(1)]; !ok {
		t.Fatal("hot fingerprint was flushed by a one-shot scan")
	}
	if _, ok := c.items[fpN(2)]; ok {
		t.Fatal("rejected newcomer still resident")
	}
	// Equal frequency admits (ties preserve plain LRU behaviour), so a
	// genuinely recurring newcomer still displaces the old resident
	// once its frequency catches up.
	for i := 0; i < 6; i++ {
		e, role, _ := c.acquire(fpN(2))
		if role == cacheRoleBuilder {
			c.publish(e, nil, func() cost.ResidenceTable {
				tb := cost.NewResidenceTable(8, 8, 8)
				return tb
			}())
		}
		c.settle(cacheOutcomeHit)
	}
	if _, ok := c.items[fpN(2)]; !ok {
		t.Fatal("recurring newcomer never admitted")
	}
}

// Accounting invariant: after arbitrary churn, the cache's byte counter
// equals the sum of resident node sizes and every resident node is in
// exactly one tier list.
func TestTableCacheByteAccountingConsistent(t *testing.T) {
	c := newTableCache(8, 10000, true)
	for n := byte(1); n <= 12; n++ {
		buildInto(t, c, fpN(n), 8, int(n), 8)
	}
	for _, n := range []byte{3, 7, 11, 2, 12} {
		if e, role, comp := c.acquire(fpN(n)); role == cacheRolePromoter {
			_, table, err := cost.DecodeTableAny(comp, 0)
			if err != nil {
				t.Fatalf("fingerprint %d: cold payload corrupt: %v", n, err)
			}
			c.publish(e, nil, table)
			c.settle(cacheOutcomePromote)
		} else if role == cacheRoleBuilder {
			c.publish(e, nil, cost.NewResidenceTable(8, int(n), 8))
			c.settle(cacheOutcomeBuild)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for _, n := range c.items {
		sum += n.bytes
	}
	if sum != c.bytes {
		t.Fatalf("accounted bytes %d != summed node bytes %d", c.bytes, sum)
	}
	if got := c.hot.Len() + c.cold.Len(); got != len(c.items) {
		t.Fatalf("tier lists hold %d nodes, index holds %d", got, len(c.items))
	}
	if c.bytes > 10000 {
		t.Fatalf("cache bytes %d exceed the budget", c.bytes)
	}
}
