package service

import (
	"context"
	"errors"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// DefaultMaxBatchSpecs bounds the specs one batch may carry when
// Config.MaxBatchSpecs is zero. A batch holds one concurrency slot for
// its whole run, so the bound keeps a single request from monopolizing
// a worker for unbounded time.
const DefaultMaxBatchSpecs = 1024

// BatchSpec is one scheduling job inside a batch: everything a Request
// carries except the trace, which the batch shares.
type BatchSpec struct {
	Algorithm string `json:"algorithm"`
	Capacity  int    `json:"capacity"`
	Verify    bool   `json:"verify,omitempty"`
}

// BatchRequest is the POST /schedule/batch body: one trace, decoded and
// fingerprinted once, scheduled under every spec. The cache is
// consulted exactly once for the whole batch, so N specs over a fresh
// trace cost one table build, not N.
type BatchRequest struct {
	Trace    string      `json:"trace"`
	Requests []BatchSpec `json:"requests"`

	// PeerHint mirrors Request.PeerHint: router-supplied, never decoded
	// from the body.
	PeerHint string `json:"-"`
}

// BatchItem is one spec's outcome. Exactly one of Response and Error is
// set: a spec whose scheduler run fails (infeasible capacity, referee
// rejection) reports its error in place without failing the batch.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// BatchResponse carries the per-spec outcomes in request order.
type BatchResponse struct {
	Fingerprint string      `json:"fingerprint"`
	CacheHit    bool        `json:"cache_hit"`
	Responses   []BatchItem `json:"responses"`
	ElapsedUS   int64       `json:"elapsed_us"`

	cacheOutcome cacheOutcome
}

// ScheduleBatch runs one batch request: decode and fingerprint the
// trace once, resolve the table cache once, then run every spec against
// the shared {model, table}. The batch occupies one concurrency slot
// (it is one unit of shedding and one unit of deadline); specs run
// sequentially inside it.
func (s *Service) ScheduleBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	s.requests.Add(1)
	start := time.Now()

	resp, err := s.scheduleBatch(ctx, req)
	switch {
	case err == nil:
		elapsed := time.Since(start)
		resp.ElapsedUS = elapsed.Microseconds()
		s.completed.Add(1)
		s.batches.Add(1)
		s.batchSpecs.Add(uint64(len(req.Requests)))
		s.observeServiceTime(elapsed)
		s.metrics.request.ObserveDuration(elapsed)
	case errors.Is(err, ErrOverloaded):
		s.rejectedOverload.Add(1)
	case errors.Is(err, ErrClosed):
		s.rejectedClosed.Add(1)
	case isRequestError(err):
		s.badRequests.Add(1)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.deadlineExpired.Add(1)
	default:
		s.internalErrors.Add(1)
	}
	return resp, err
}

func (s *Service) scheduleBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	stages := obs.Tee(s.stages, obs.StagesFrom(ctx))

	if len(req.Requests) == 0 {
		return nil, badRequest("empty batch: no request specs")
	}
	if max := s.cfg.maxBatchSpecs(); len(req.Requests) > max {
		return nil, badRequest("batch carries %d specs, limit %d", len(req.Requests), max)
	}
	// Specs are validated up front so a malformed batch is rejected
	// whole before any heavy work: mixing a typo'd algorithm into a
	// thousand-spec batch is a client bug, not a partial success.
	schedulers := make([]sched.Scheduler, len(req.Requests))
	for i, spec := range req.Requests {
		scheduler, err := sched.ByName(spec.Algorithm)
		if err != nil {
			return nil, badRequest("spec %d: %v", i, err)
		}
		if spec.Capacity < 0 {
			return nil, badRequest("spec %d: negative capacity %d", i, spec.Capacity)
		}
		schedulers[i] = scheduler
	}
	if int64(len(req.Trace)) > s.cfg.maxBodyBytes() {
		return nil, badRequest("trace text %d bytes exceeds limit %d", len(req.Trace), s.cfg.maxBodyBytes())
	}
	sp := stages.Start("decode")
	tr, err := trace.Decode(strings.NewReader(req.Trace))
	sp.End()
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if err := s.checkTraceScale(tr); err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()

	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
		default:
			s.wg.Done()
			return nil, ErrOverloaded
		}
	}
	s.inflight.Add(1)
	finished := func() {
		if s.slots != nil {
			<-s.slots
		}
		s.inflight.Add(-1)
		s.wg.Done()
	}

	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	sp = stages.Start("fingerprint")
	fp := tr.Fingerprint()
	sp.End()
	work := func() (*BatchResponse, error) {
		if s.testHookRunning != nil {
			s.testHookRunning()
		}
		entry, outcome := s.resolveTable(stages, fp, tr, req.PeerHint)
		resp := &BatchResponse{
			Fingerprint:  fp.String(),
			CacheHit:     outcome != cacheOutcomeBuild,
			Responses:    make([]BatchItem, len(req.Requests)),
			cacheOutcome: outcome,
		}
		for i, spec := range req.Requests {
			resp.Responses[i] = s.runBatchSpec(stages, tr, entry, schedulers[i], spec)
		}
		return resp, nil
	}
	resp, err := awaitDone(ctx, work, finished)
	if err == nil {
		s.cache.settle(resp.cacheOutcome)
	}
	return resp, err
}

// runBatchSpec runs one spec of a batch against the shared cache entry,
// mapping a scheduler failure to a per-item error.
func (s *Service) runBatchSpec(stages obs.Stages, tr *trace.Trace, entry *cacheEntry, scheduler sched.Scheduler, spec BatchSpec) BatchItem {
	p := &sched.Problem{Model: entry.model, Table: entry.table, Capacity: spec.Capacity}
	sp := stages.Start("sched." + strings.ToLower(scheduler.Name()))
	schedule, err := scheduler.Schedule(p)
	sp.End()
	if err != nil {
		return BatchItem{Error: err.Error()}
	}
	bd := p.Model.Evaluate(schedule)
	resp := &Response{
		Algorithm:  scheduler.Name(),
		Grid:       tr.Grid.String(),
		NumData:    tr.NumData,
		NumWindows: tr.NumWindows(),
		Capacity:   spec.Capacity,
		Centers:    schedule.Centers,
		Cost:       CostJSON{Residence: bd.Residence, Move: bd.Move, Total: bd.Total()},

		// Fingerprint and CacheHit ride at the batch level; repeating
		// them per item would bloat large batches for no information.
	}
	if spec.Verify {
		sp := stages.Start("verify")
		defer sp.End()
		if err := verify.Check(tr, schedule, spec.Capacity); err != nil {
			return BatchItem{Error: "service: referee rejected schedule: " + err.Error()}
		}
		claim := verify.Breakdown{Residence: bd.Residence, Move: bd.Move}
		if err := verify.CrossCheck(tr, schedule, p.Model.DataSize, claim); err != nil {
			return BatchItem{Error: "service: " + err.Error()}
		}
		resp.Verified = &CostJSON{Residence: claim.Residence, Move: claim.Move, Total: claim.Total()}
	}
	return BatchItem{Response: resp}
}

func (c Config) maxBatchSpecs() int {
	if c.MaxBatchSpecs <= 0 {
		return DefaultMaxBatchSpecs
	}
	return c.MaxBatchSpecs
}
