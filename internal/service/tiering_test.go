package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// respJSON renders a response exactly as the HTTP layer would, so
// "bit-identical" below means what a client observes (timing fields
// excluded — they are not schedule content).
func respJSON(t *testing.T, r *Response) string {
	t.Helper()
	cp := *r
	cp.ElapsedUS = 0
	cp.CacheHit = false
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestColdTierHitBitIdentical is the named check.sh gate: a schedule
// served from a promoted cold-tier table must be bit-identical to the
// schedule the flat table produced, with tables_built staying flat —
// the cold tier trades decode work for rebuilds, never answers.
func TestColdTierHitBitIdentical(t *testing.T) {
	// Two ~60 KiB tables against a 100 KB budget: either fits flat
	// alone, both together must demote one.
	svc := New(Config{CacheBytes: 100_000})
	defer svc.Close()
	reqA := Request{Trace: traceText(t, "lu", 8, grid.Square(4)), Algorithm: "gomcds", Capacity: 8, Verify: true}
	reqB := Request{Trace: traceText(t, "matsquare", 8, grid.Square(4)), Algorithm: "gomcds", Capacity: 8, Verify: true}

	respA1, err := svc.Schedule(context.Background(), reqA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Schedule(context.Background(), reqB); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.CacheDemotions == 0 {
		t.Fatalf("no demotion after two over-budget tables (cache_bytes=%d); the gate is not exercising the cold tier", st.CacheBytes)
	}

	respA2, err := svc.Schedule(context.Background(), reqA)
	if err != nil {
		t.Fatal(err)
	}
	if !respA2.CacheHit {
		t.Fatal("promoted response not marked as a cache hit")
	}
	if got, want := respJSON(t, respA2), respJSON(t, respA1); got != want {
		t.Fatalf("cold-tier hit served a different schedule:\n got %s\nwant %s", got, want)
	}
	st = svc.Stats()
	if st.TablesBuilt != 2 {
		t.Fatalf("tables_built = %d after a cold-tier hit, want 2 (promotion must not rebuild)", st.TablesBuilt)
	}
	if st.CachePromotions == 0 {
		t.Fatal("cache_promotions = 0; the third request did not promote")
	}
	if st.CacheHits == 0 {
		t.Fatal("cache_hits = 0; a settled promotion must count as a hit")
	}
}

// TestCacheTierRaceStress hammers one small set of fingerprints with
// concurrent schedules, prefill adoptions, and peer-table reads under a
// byte budget that forces continuous demote/promote/evict churn. Run
// under -race by scripts/check.sh. Afterwards: every response matches
// the serial reference bit for bit, the demand counters settle exactly
// (each completed request is one of miss/hit/shared), and the byte
// accounting is internally consistent.
func TestCacheTierRaceStress(t *testing.T) {
	kinds := []struct {
		kind string
		n    int
	}{{"lu", 8}, {"matsquare", 8}, {"stencil", 8}}
	reqs := make([]Request, len(kinds))
	refs := make([]string, len(kinds))
	prefillTables := map[trace.Fingerprint][]byte{}

	// Serial reference on an unconstrained service.
	ref := New(Config{})
	for i, k := range kinds {
		reqs[i] = Request{Trace: traceText(t, k.kind, k.n, grid.Square(4)), Algorithm: "gomcds", Capacity: 8}
		resp, err := ref.Schedule(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = respJSON(t, resp)
		tr, err := trace.Decode(strings.NewReader(reqs[i].Trace))
		if err != nil {
			t.Fatal(err)
		}
		fp := tr.Fingerprint()
		prefillTables[fp] = cost.EncodeTableV2(fp, cost.NewModel(tr).BuildResidenceTable())
	}
	ref.Close()

	// The stressed service: budget fits roughly one flat table, so every
	// interleaving of the three traces demotes and promotes; the peer
	// fill hook serves the canned payloads so Prefill exercises adopt
	// concurrently with the schedule churn.
	svc := New(Config{
		CacheBytes: 70_000,
		PeerFill: func(ctx context.Context, fp trace.Fingerprint, peerURL string) (cost.ResidenceTable, error) {
			payload, ok := prefillTables[fp]
			if !ok {
				return cost.ResidenceTable{}, errors.New("no canned table")
			}
			_, table, err := cost.DecodeTableAny(payload, 0)
			return table, err
		},
	})
	defer svc.Close()

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	completed := make([]int64, len(kinds))
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % len(kinds)
				if w%4 == 3 {
					// This worker interleaves prefill pushes (adopt) with
					// everyone else's demand traffic.
					err := svc.Prefill(context.Background(), PrefillRequest{Trace: reqs[k].Trace, PeerHint: "canned"})
					if err != nil {
						errc <- fmt.Errorf("worker %d iter %d: prefill: %w", w, i, err)
						return
					}
					continue
				}
				resp, err := svc.Schedule(context.Background(), reqs[k])
				if err != nil {
					errc <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				if got := respJSON(t, resp); got != refs[k] {
					errc <- fmt.Errorf("worker %d iter %d: response diverged from serial reference", w, i)
					return
				}
				mu.Lock()
				completed[k]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	var total uint64
	for _, n := range completed {
		total += uint64(n)
	}
	cs := svc.cache.counters()
	if got := cs.hits + cs.misses + cs.sharedBuilds; got != total {
		t.Fatalf("counters settle to %d (hits %d + misses %d + shared %d), want %d completed schedules",
			got, cs.hits, cs.misses, cs.sharedBuilds, total)
	}
	svc.cache.mu.Lock()
	var sum int64
	for _, n := range svc.cache.items {
		sum += n.bytes
	}
	if sum != svc.cache.bytes {
		svc.cache.mu.Unlock()
		t.Fatalf("accounted bytes %d != summed node bytes %d after churn", svc.cache.bytes, sum)
	}
	if got := svc.cache.hot.Len() + svc.cache.cold.Len(); got != len(svc.cache.items) {
		svc.cache.mu.Unlock()
		t.Fatalf("tier lists hold %d nodes, index holds %d", got, len(svc.cache.items))
	}
	svc.cache.mu.Unlock()
}

// TestImportRejectsOversizedTablePayload is the /session/import half of
// the DoS-guard fix. Before it, the shipped table was decoded with only
// the codec's 1 GiB ceiling — the service's MaxTableCells applied to
// the trace but not to the payload header, whose declared shape commits
// the allocation first. The crafted export below used to sail through
// the decode and fail later (fingerprint mismatch); now it must be
// refused at the cell limit, before any allocation.
func TestImportRejectsOversizedTablePayload(t *testing.T) {
	svc := New(Config{MaxTableCells: 4096})
	defer svc.Close()

	text := traceText(t, "lu", 4, grid.Square(2)) // well under 4096 cells
	tr, err := trace.Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	fp := tr.Fingerprint()
	// The table payload declares a shape far over the budget; its byte
	// size is modest, so only the cell guard can catch it.
	big := cost.EncodeTable(fp, cost.NewResidenceTable(100, 100, 10))
	_, err = svc.ImportSession(SessionExport{
		SessionID:   "evil-1",
		Algorithm:   "scds",
		Fingerprint: fp.String(),
		Trace:       text,
		Table:       big,
	})
	if err == nil {
		t.Fatal("import accepted a table payload over MaxTableCells")
	}
	if !isRequestError(err) {
		t.Fatalf("oversized table payload returned %v, want a RequestError (400)", err)
	}
	if !strings.Contains(err.Error(), "cell limit") {
		t.Fatalf("error %q does not name the cell limit — the payload was rejected for the wrong reason", err)
	}
	if st := svc.Stats(); st.SessionsImported != 0 {
		t.Fatalf("sessions_imported = %d after a rejected import, want 0", st.SessionsImported)
	}
}

// A migration round trip through the new v2 export format must resume
// bit-identically, and a legacy v1-encoded export must stay importable.
func TestImportAcceptsBothCodecVersions(t *testing.T) {
	src := New(Config{})
	defer src.Close()
	info, err := src.CreateSession(CreateSessionRequest{
		Trace: traceText(t, "lu", 6, grid.Square(3)), Algorithm: "scds",
	})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := src.ExportSession(info.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(exp.Table), "pimtab-v2\n") {
		t.Fatalf("export table payload is not pimtab-v2 (leads with %q)", string(exp.Table[:10]))
	}

	// v2 import.
	dst2 := New(Config{})
	defer dst2.Close()
	if _, err := dst2.ImportSession(*exp); err != nil {
		t.Fatalf("v2 import: %v", err)
	}

	// The same export transcoded to v1 (what a pre-v2 shard would have
	// sent) must import equally well.
	fp, table, err := cost.DecodeTableAny(exp.Table, 0)
	if err != nil {
		t.Fatal(err)
	}
	legacy := *exp
	legacy.Table = cost.EncodeTable(fp, table)
	dst1 := New(Config{})
	defer dst1.Close()
	if _, err := dst1.ImportSession(legacy); err != nil {
		t.Fatalf("v1 import: %v", err)
	}
}
