package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/delta"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DefaultMaxSessions bounds concurrently live incremental sessions when
// Config.MaxSessions is zero.
const DefaultMaxSessions = 64

// ErrSessionNotFound is returned for operations on an unknown or
// already-deleted session; the HTTP layer maps it to 404.
type ErrSessionNotFound struct{ ID string }

func (e *ErrSessionNotFound) Error() string { return "service: no session " + e.ID }

// CreateSessionRequest opens an incremental scheduling session over a
// starting trace (which may be empty apart from its header). The
// algorithm and capacity are fixed for the session's lifetime.
type CreateSessionRequest struct {
	Trace     string `json:"trace"`
	Algorithm string `json:"algorithm"`
	Capacity  int    `json:"capacity"`
}

// SessionInfo describes one live session.
type SessionInfo struct {
	SessionID   string `json:"session_id"`
	Algorithm   string `json:"algorithm"`
	Grid        string `json:"grid"`
	NumData     int    `json:"num_data"`
	NumWindows  int    `json:"num_windows"`
	Capacity    int    `json:"capacity"`
	Seq         uint64 `json:"seq"`
	Fingerprint string `json:"fingerprint"`
}

// DeltaResponse reports one applied delta: its position in the
// session's delta log and the chained fingerprint, which equals the
// canonical fingerprint of the materialized post-delta trace (so it
// remains a valid key for the table cache and any external store).
type DeltaResponse struct {
	SessionID   string `json:"session_id"`
	Seq         uint64 `json:"seq"`
	Fingerprint string `json:"fingerprint"`
	NumWindows  int    `json:"num_windows"`
}

// SessionScheduleResponse is a schedule of a session's current trace.
// LayersRecomputed counts the DP layers the call actually relaxed —
// zero for a cache hit, the stale suffix on the incremental path, or
// items x windows when the configuration forces a full scheduler rerun.
type SessionScheduleResponse struct {
	SessionID        string   `json:"session_id"`
	Algorithm        string   `json:"algorithm"`
	Seq              uint64   `json:"seq"`
	NumWindows       int      `json:"num_windows"`
	Centers          [][]int  `json:"centers"`
	Cost             CostJSON `json:"cost"`
	Fingerprint      string   `json:"fingerprint"`
	LayersRecomputed int      `json:"layers_recomputed"`
	Cached           bool     `json:"cached"`
	ElapsedUS        int64    `json:"elapsed_us"`
}

// sessionEntry pairs a session with its service-assigned ID. opMu and
// closed fence session operations against deletion: an operation holds
// opMu for its whole session access, and DeleteSession marks the entry
// closed under the same lock after unregistering it, so a request that
// lost the race to a concurrent DELETE observes closed and reports 404
// instead of operating on (and reporting success against) a session
// the service no longer owns.
type sessionEntry struct {
	id   string
	sess *delta.Session
	grid string

	opMu   sync.Mutex
	closed bool
}

func (c Config) maxSessions() int {
	if c.MaxSessions <= 0 {
		return DefaultMaxSessions
	}
	return c.MaxSessions
}

// CreateSession decodes the starting trace, builds a session (its own
// model and residence table, counted in tables_built exactly once — no
// table work ever runs again for this session's deltas), and registers
// it under a fresh ID.
func (s *Service) CreateSession(req CreateSessionRequest) (*SessionInfo, error) {
	scheduler, err := sched.ByName(req.Algorithm)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if req.Capacity < 0 {
		return nil, badRequest("negative capacity %d", req.Capacity)
	}
	if int64(len(req.Trace)) > s.cfg.maxBodyBytes() {
		return nil, badRequest("trace text %d bytes exceeds limit %d", len(req.Trace), s.cfg.maxBodyBytes())
	}
	tr, err := trace.Decode(strings.NewReader(req.Trace))
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if err := s.checkTraceScale(tr); err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.sessions) >= s.cfg.maxSessions() {
		return nil, fmt.Errorf("%w: %d sessions live", ErrOverloaded, len(s.sessions))
	}
	sess, err := delta.NewSession(tr, scheduler, req.Capacity, delta.Options{
		Stages: s.stages,
		OnLayersRecomputed: func(layers int) {
			s.deltaLayersRecomputed.Store(int64(layers))
		},
	})
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	s.tablesBuilt.Add(1) // the session's private table, built in NewSession
	s.sessionSeq++
	// The random suffix makes IDs unique across the whole fleet, not
	// just this instance: a cluster router pins sessions to shards by
	// ID, and two shards issuing the same "s000001" would cross their
	// pins. The sequence prefix keeps IDs orderable for humans.
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("service: session id: %w", err)
	}
	id := fmt.Sprintf("s%06d-%s", s.sessionSeq, hex.EncodeToString(nonce[:]))
	if s.sessions == nil {
		s.sessions = make(map[string]*sessionEntry)
	}
	s.sessions[id] = &sessionEntry{id: id, sess: sess, grid: tr.Grid.String()}
	s.sessionsCreated.Add(1)
	return s.sessionInfo(s.sessions[id]), nil
}

func (s *Service) sessionInfo(e *sessionEntry) *SessionInfo {
	return &SessionInfo{
		SessionID:   e.id,
		Algorithm:   e.sess.Algorithm(),
		Grid:        e.grid,
		NumData:     e.sess.NumData(),
		NumWindows:  e.sess.NumWindows(),
		Capacity:    e.sess.Capacity(),
		Seq:         e.sess.Seq(),
		Fingerprint: e.sess.Fingerprint().String(),
	}
}

func (s *Service) lookupSession(id string) (*sessionEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	e, ok := s.sessions[id]
	if !ok {
		return nil, &ErrSessionNotFound{ID: id}
	}
	return e, nil
}

// withSession runs fn holding the entry's operation lock, after
// re-checking that a concurrent DeleteSession did not close the entry
// between the registry lookup and the lock acquisition. The registry
// lock is never held across fn, so session work does not serialize
// unrelated requests; operations on one session serialize with each
// other and with its deletion.
func (s *Service) withSession(id string, fn func(e *sessionEntry) error) error {
	e, err := s.lookupSession(id)
	if err != nil {
		return err
	}
	if s.testHookSessionOp != nil {
		s.testHookSessionOp()
	}
	e.opMu.Lock()
	defer e.opMu.Unlock()
	if e.closed {
		return &ErrSessionNotFound{ID: id}
	}
	return fn(e)
}

// SessionInfo returns the current description of a session.
func (s *Service) SessionInfo(id string) (*SessionInfo, error) {
	var info *SessionInfo
	if err := s.withSession(id, func(e *sessionEntry) error {
		info = s.sessionInfo(e)
		return nil
	}); err != nil {
		return nil, err
	}
	return info, nil
}

// ApplySessionDelta applies one delta to a session. Deltas on one
// session are serialized in arrival order; the returned sequence number
// is the delta's position in that order.
func (s *Service) ApplySessionDelta(id string, d delta.Delta) (*DeltaResponse, error) {
	var resp *DeltaResponse
	if err := s.withSession(id, func(e *sessionEntry) error {
		res, err := e.sess.Apply(d)
		if err != nil {
			return &RequestError{Err: err}
		}
		s.deltasApplied.Add(1)
		resp = &DeltaResponse{
			SessionID:   id,
			Seq:         res.Seq,
			Fingerprint: res.Fingerprint.String(),
			NumWindows:  res.NumWindows,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return resp, nil
}

// ScheduleSession computes (or serves from the session's cache) the
// schedule of a session's current trace.
func (s *Service) ScheduleSession(id string) (*SessionScheduleResponse, error) {
	var resp *SessionScheduleResponse
	if err := s.withSession(id, func(e *sessionEntry) error {
		start := time.Now()
		res, err := e.sess.Schedule()
		if err != nil {
			return &RequestError{Err: err} // infeasible capacity etc.
		}
		resp = &SessionScheduleResponse{
			SessionID:        id,
			Algorithm:        e.sess.Algorithm(),
			Seq:              e.sess.Seq(),
			NumWindows:       len(res.Schedule.Centers),
			Centers:          res.Schedule.Centers,
			Cost:             CostJSON{Residence: res.Cost.Residence, Move: res.Cost.Move, Total: res.Cost.Total()},
			Fingerprint:      e.sess.Fingerprint().String(),
			LayersRecomputed: res.LayersRecomputed,
			Cached:           res.Cached,
			ElapsedUS:        time.Since(start).Microseconds(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return resp, nil
}

// DeleteSession removes a session, freeing its table and DP state. The
// entry leaves the registry first (releasing its MaxSessions slot
// exactly once — a second DELETE no longer finds it), then is closed
// under its operation lock, which waits out any operation that found
// the entry before it left the map; an operation still between lookup
// and lock acquisition observes closed and reports 404.
func (s *Service) DeleteSession(id string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	e, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return &ErrSessionNotFound{ID: id}
	}
	delete(s.sessions, id)
	s.mu.Unlock()

	e.opMu.Lock()
	e.closed = true
	e.opMu.Unlock()
	return nil
}

// sessionCount returns the number of live sessions.
func (s *Service) sessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
