// Package service turns the one-shot schedulers of internal/sched into
// a long-running, concurrency-bounded scheduling service: the substrate
// the ROADMAP's "heavy traffic" north star builds on.
//
// A Service accepts schedule requests (a trace in the pimtrace v1 text
// codec plus an algorithm name and memory capacity), runs the requested
// scheduler, and returns the center matrix with its cost breakdown.
// Three properties distinguish it from calling sched directly:
//
//   - Model reuse. Cost models and residence tables — the dominant cost
//     of a scheduler run — are cached in an LRU keyed by the trace's
//     canonical trace.Fingerprint. Requests carrying a trace already
//     seen skip the rebuild entirely; concurrent misses on the same
//     fingerprint are deduplicated so the table is built exactly once
//     (singleflight).
//   - Bounded concurrency. At most MaxInflight schedule computations
//     run at once; excess load is shed immediately with ErrOverloaded
//     (HTTP 429 + Retry-After) instead of queuing unboundedly.
//   - Deadlines and drain. Every request runs under a context; when it
//     expires the caller gets the context error at once while the
//     abandoned computation finishes in the background, still holding
//     its concurrency slot. Close refuses new requests and waits for
//     all in-flight work, so shutdown never strands a computation.
//
// The cached entries are capacity-independent (the residence table
// depends only on the trace), so requests that share a trace but differ
// in algorithm or capacity still share one table.
package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Defaults for Config fields left zero.
const (
	DefaultCacheSize    = 64
	DefaultMaxBodyBytes = 32 << 20

	// DefaultMaxTableCells matches the codec's 1 GiB payload ceiling
	// (cost.DecodeTable), so any table a shard will build is also one a
	// peer can ship.
	DefaultMaxTableCells = 128 << 20

	// DefaultTableBytes is the per-table allowance used to derive the
	// byte budget when Config.CacheBytes is unset: CacheSize tables of
	// this size keep the default deployment's memory ceiling in the same
	// regime the entry-capped cache had.
	DefaultTableBytes = 4 << 20
)

// ErrOverloaded is returned when MaxInflight computations are already
// running; the HTTP layer maps it to 429 with a Retry-After header.
var ErrOverloaded = errors.New("service: overloaded")

// ErrClosed is returned for requests arriving after Close began.
var ErrClosed = errors.New("service: shutting down")

// RequestError marks a client-side error (malformed trace, unknown
// algorithm, oversized body); the HTTP layer maps it to 400.
type RequestError struct {
	Err error
}

func (e *RequestError) Error() string { return "service: bad request: " + e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

func badRequest(format string, args ...any) error {
	return &RequestError{Err: fmt.Errorf(format, args...)}
}

// Config tunes a Service. The zero value is usable: unbounded
// concurrency, no server-side deadline, DefaultCacheSize cache entries
// and DefaultMaxBodyBytes request bodies.
type Config struct {
	// MaxInflight bounds concurrent schedule computations (table builds
	// and scheduler runs); <= 0 means unbounded. Excess requests are
	// shed with ErrOverloaded, never queued.
	MaxInflight int

	// CacheSize is the number of {model, residence table} entries the
	// fingerprint-keyed LRU holds across both tiers; <= 0 means
	// DefaultCacheSize. Entries over the cap are evicted outright.
	CacheSize int

	// CacheBytes bounds the summed bytes of cached residence tables:
	// flat cells in the hot tier, compressed pimtab-v2 payloads in the
	// cold tier. Over budget, hot tables are demoted (compressed, kept
	// resident) before anything is evicted. <= 0 derives
	// CacheSize x DefaultTableBytes.
	CacheBytes int64

	// DisableColdTier reverts to a flat one-tier LRU under the same
	// byte budget: over-budget tables are evicted instead of demoted.
	// An ablation and benchmarking knob (scripts/bench.sh uses it to
	// measure what the cold tier saves), not a production setting.
	DisableColdTier bool

	// Timeout is the server-side deadline applied to every request on
	// top of the caller's context; <= 0 means none.
	Timeout time.Duration

	// MaxBodyBytes bounds the request body and the inline trace text;
	// <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// MaxSessions bounds concurrently live incremental sessions (each
	// holds a residence table and per-item DP state in memory); <= 0
	// means DefaultMaxSessions. Excess creations are shed with
	// ErrOverloaded.
	MaxSessions int

	// MaxBatchSpecs bounds the request specs one POST /schedule/batch
	// call may carry; <= 0 means DefaultMaxBatchSpecs.
	MaxBatchSpecs int

	// MaxTableCells bounds the residence table implied by a decoded
	// trace's declared shape (windows x data x processors); <= 0 means
	// DefaultMaxTableCells. A few directive bytes can declare an
	// arbitrarily large array, so body size alone does not bound the
	// work a request commits the service to — this does.
	MaxTableCells int64

	// PeerFill, when set, is consulted by an elected builder before it
	// computes a residence table locally: given the fingerprint and the
	// peer base URL the router supplied (the ring's previous owner of
	// the key), it returns the peer's cached table. Any error — peer
	// down, table not cached there, deadline, corrupt payload — is a
	// silent fallback to the local build. internal/cluster provides the
	// HTTP implementation over GET /table/{fingerprint}.
	PeerFill PeerFillFunc

	// PeerFillTimeout bounds one peer-fill fetch; <= 0 means
	// DefaultPeerFillTimeout. It deliberately stays well under a table
	// build's worst case: a slow peer must never cost more than the
	// rebuild it was meant to save.
	PeerFillTimeout time.Duration
}

// PeerFillFunc fetches a peer's cached {model, residence table} for a
// fingerprint. peerURL is the base URL of the shard to ask; the
// returned table must have been built from the exact trace the
// fingerprint names (implementations verify the fingerprint echoed in
// the payload).
type PeerFillFunc func(ctx context.Context, fp trace.Fingerprint, peerURL string) (cost.ResidenceTable, error)

// DefaultPeerFillTimeout bounds a peer-fill fetch when
// Config.PeerFillTimeout is zero.
const DefaultPeerFillTimeout = 500 * time.Millisecond

func (c Config) peerFillTimeout() time.Duration {
	if c.PeerFillTimeout <= 0 {
		return DefaultPeerFillTimeout
	}
	return c.PeerFillTimeout
}

func (c Config) cacheSize() int {
	if c.CacheSize <= 0 {
		return DefaultCacheSize
	}
	return c.CacheSize
}

func (c Config) cacheBytes() int64 {
	if c.CacheBytes <= 0 {
		return int64(c.cacheSize()) * DefaultTableBytes
	}
	return c.CacheBytes
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return c.MaxBodyBytes
}

func (c Config) maxTableCells() int64 {
	if c.MaxTableCells <= 0 {
		return DefaultMaxTableCells
	}
	return c.MaxTableCells
}

// checkTraceScale rejects a trace whose declared shape implies a
// residence table over the cell budget. The product is taken in
// float64: each factor has already been validated non-negative, but
// their product can overflow int64 and a guard that overflows is no
// guard.
func (s *Service) checkTraceScale(tr *trace.Trace) error {
	cells := float64(tr.NumWindows()) * float64(tr.NumData) *
		float64(tr.Grid.Width()) * float64(tr.Grid.Height())
	if cells > float64(s.cfg.maxTableCells()) {
		return badRequest("trace shape %d windows x %d data x %s implies %.3g residence-table cells, limit %d",
			tr.NumWindows(), tr.NumData, tr.Grid, cells, s.cfg.maxTableCells())
	}
	return nil
}

// Request is one scheduling job: a trace in the pimtrace v1 text
// format, the algorithm to run, and the per-processor memory capacity
// (0 = unbounded). Verify additionally re-checks the schedule with the
// independent referee (internal/verify) before responding.
type Request struct {
	Trace     string `json:"trace"`
	Algorithm string `json:"algorithm"`
	Capacity  int    `json:"capacity"`
	Verify    bool   `json:"verify,omitempty"`

	// PeerHint is the base URL of the shard to ask for a cached table
	// before building one locally, set by the HTTP layer from the
	// router's X-Pim-Peer header — never from the request body, so
	// clients cannot steer the service at arbitrary URLs.
	PeerHint string `json:"-"`
}

// CostJSON is a cost breakdown in a response.
type CostJSON struct {
	Residence int64 `json:"residence"`
	Move      int64 `json:"move"`
	Total     int64 `json:"total"`
}

// Response carries the schedule, its cost, and per-request telemetry.
type Response struct {
	Algorithm   string    `json:"algorithm"`
	Grid        string    `json:"grid"`
	NumData     int       `json:"num_data"`
	NumWindows  int       `json:"num_windows"`
	Capacity    int       `json:"capacity"`
	Centers     [][]int   `json:"centers"`
	Cost        CostJSON  `json:"cost"`
	Verified    *CostJSON `json:"verified,omitempty"`
	Fingerprint string    `json:"fingerprint"`
	CacheHit    bool      `json:"cache_hit"`
	ElapsedUS   int64     `json:"elapsed_us"`

	// cacheOutcome remembers how this request resolved against the
	// table cache; Schedule settles it into the counters only when the
	// response is actually delivered.
	cacheOutcome cacheOutcome
}

// Stats is a snapshot of the service's counters, served at /stats.
type Stats struct {
	Requests          uint64 `json:"requests"`
	Completed         uint64 `json:"completed"`
	RejectedOverload  uint64 `json:"rejected_overload"`
	RejectedClosed    uint64 `json:"rejected_closed"`
	BadRequests       uint64 `json:"bad_requests"`
	DeadlineExpired   uint64 `json:"deadline_expired"`
	Errors            uint64 `json:"errors"`
	Inflight          int64  `json:"inflight"`
	TablesBuilt       uint64 `json:"tables_built"`
	CacheHits         uint64 `json:"cache_hits"`
	CacheMisses       uint64 `json:"cache_misses"`
	CacheSharedBuild  uint64 `json:"cache_shared_builds"`
	CacheEvictions    uint64 `json:"cache_evictions"`
	CacheEntries      int    `json:"cache_entries"`
	CacheHotEntries   int    `json:"cache_hot_entries"`
	CacheColdEntries  int    `json:"cache_cold_entries"`
	CacheBytes        int64  `json:"cache_bytes"`
	CacheDemotions    uint64 `json:"cache_demotions"`
	CachePromotions   uint64 `json:"cache_promotions"`
	CacheAdmitRejects uint64 `json:"cache_admission_rejects"`
	SessionsCreated   uint64 `json:"sessions_created"`
	SessionsActive    int    `json:"sessions_active"`
	DeltasApplied     uint64 `json:"deltas_applied"`
	Batches           uint64 `json:"batches"`
	BatchSpecs        uint64 `json:"batch_specs"`
	PeerFills         uint64 `json:"peer_fills"`
	PeerFillFallback  uint64 `json:"peer_fill_fallbacks"`
	TablesServed      uint64 `json:"tables_served"`
	TablesPrefilled   uint64 `json:"tables_prefilled"`
	SessionsExported  uint64 `json:"sessions_exported"`
	SessionsImported  uint64 `json:"sessions_imported"`
}

// Service is a concurrent scheduling service. Create one with New; it
// is safe for use by any number of goroutines.
type Service struct {
	cfg   Config
	cache *tableCache
	slots chan struct{} // nil when MaxInflight <= 0

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // all request work, incl. abandoned background runs

	// sessions are the live incremental scheduling sessions, keyed by
	// service-assigned ID; sessionSeq mints those IDs.
	sessions   map[string]*sessionEntry
	sessionSeq uint64

	requests         atomic.Uint64
	completed        atomic.Uint64
	rejectedOverload atomic.Uint64
	rejectedClosed   atomic.Uint64
	badRequests      atomic.Uint64
	deadlineExpired  atomic.Uint64
	internalErrors   atomic.Uint64
	inflight         atomic.Int64
	tablesBuilt      atomic.Uint64
	sessionsCreated  atomic.Uint64
	deltasApplied    atomic.Uint64
	batches          atomic.Uint64
	batchSpecs       atomic.Uint64
	peerFills        atomic.Uint64
	peerFillFallback atomic.Uint64
	tablesServed     atomic.Uint64
	tablesPrefilled  atomic.Uint64
	sessionsExported atomic.Uint64
	sessionsImported atomic.Uint64

	// deltaLayersRecomputed remembers the layer count of the most recent
	// session schedule computation, exposed as a gauge: near zero under
	// delta traffic, spiking to items x windows on cold or fallback runs.
	deltaLayersRecomputed atomic.Int64

	// ewmaNanos is the decaying average of completed-request service
	// times, backing the Retry-After header on load-shed responses.
	ewmaNanos atomic.Int64

	// metrics is the obs registry over the counters above plus the
	// per-stage latency histograms; stages is the span sink feeding it.
	metrics *serviceMetrics
	stages  obs.Stages

	// testHookRunning, when set, is called by the worker after it has
	// claimed its concurrency slot and before any heavy work; tests use
	// it to hold a request in-flight deterministically.
	testHookRunning func()

	// testHookSessionOp, when set, is called by session operations
	// between the registry lookup and taking the entry's operation
	// lock; tests use it to interleave a DELETE into that window
	// deterministically.
	testHookSessionOp func()
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	s := &Service{cfg: cfg, cache: newTableCache(cfg.cacheSize(), cfg.cacheBytes(), !cfg.DisableColdTier)}
	if cfg.MaxInflight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInflight)
	}
	s.metrics = newServiceMetrics(s)
	s.stages = s.metrics.stageSink()
	return s
}

// Metrics returns the service's metric registry (served at /metrics by
// Handler); callers embedding the service elsewhere can mount or
// extend it.
func (s *Service) Metrics() *obs.Registry { return s.metrics.reg }

// observeServiceTime folds one completed request's duration into the
// decaying average behind Retry-After (alpha = 1/8; the first sample
// seeds the average directly).
func (s *Service) observeServiceTime(d time.Duration) {
	for {
		old := s.ewmaNanos.Load()
		next := d.Nanoseconds()
		if next < 1 {
			next = 1 // a zero average would look unseeded
		}
		if old > 0 {
			next = old + (next-old)/8
			if next < 1 {
				next = 1
			}
		}
		if s.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds is the backoff advertised on load-shed responses:
// the decayed average service time rounded up to whole seconds,
// floored at 1 (no history looks like a fast service, and Retry-After
// must stay a positive integer) and capped at 60 so one pathological
// request cannot park clients for minutes.
func (s *Service) retryAfterSeconds() int {
	secs := (s.ewmaNanos.Load() + int64(time.Second) - 1) / int64(time.Second)
	switch {
	case secs < 1:
		return 1
	case secs > 60:
		return 60
	}
	return int(secs)
}

// Closed reports whether Close has begun; /healthz uses it.
func (s *Service) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close refuses new requests and waits for every in-flight computation
// — including runs abandoned by expired deadlines — to finish. It is
// idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats returns a consistent-enough snapshot of the counters (each
// counter is individually atomic; the set is not taken under one lock).
func (s *Service) Stats() Stats {
	st := Stats{
		Requests:         s.requests.Load(),
		Completed:        s.completed.Load(),
		RejectedOverload: s.rejectedOverload.Load(),
		RejectedClosed:   s.rejectedClosed.Load(),
		BadRequests:      s.badRequests.Load(),
		DeadlineExpired:  s.deadlineExpired.Load(),
		Errors:           s.internalErrors.Load(),
		Inflight:         s.inflight.Load(),
		TablesBuilt:      s.tablesBuilt.Load(),
		SessionsCreated:  s.sessionsCreated.Load(),
		SessionsActive:   s.sessionCount(),
		DeltasApplied:    s.deltasApplied.Load(),
		Batches:          s.batches.Load(),
		BatchSpecs:       s.batchSpecs.Load(),
		PeerFills:        s.peerFills.Load(),
		PeerFillFallback: s.peerFillFallback.Load(),
		TablesServed:     s.tablesServed.Load(),
		TablesPrefilled:  s.tablesPrefilled.Load(),
		SessionsExported: s.sessionsExported.Load(),
		SessionsImported: s.sessionsImported.Load(),
	}
	cs := s.cache.counters()
	st.CacheHits, st.CacheMisses, st.CacheSharedBuild = cs.hits, cs.misses, cs.sharedBuilds
	st.CacheEvictions, st.CacheEntries = cs.evictions, cs.entries()
	st.CacheHotEntries, st.CacheColdEntries, st.CacheBytes = cs.hotEntries, cs.coldEntries, cs.bytes
	st.CacheDemotions, st.CachePromotions, st.CacheAdmitRejects = cs.demotions, cs.promotions, cs.admissionRejects
	return st
}

// Schedule runs one request. It validates and decodes the trace, takes
// a concurrency slot (or sheds), resolves the fingerprint against the
// model cache (building at most once per fingerprint), runs the
// scheduler, and optionally referees the result. The context bounds the
// caller's wait, not the computation: an expired context returns
// immediately while the work completes in the background.
func (s *Service) Schedule(ctx context.Context, req Request) (*Response, error) {
	s.requests.Add(1)
	start := time.Now()

	resp, err := s.schedule(ctx, req)
	switch {
	case err == nil:
		elapsed := time.Since(start)
		resp.ElapsedUS = elapsed.Microseconds()
		s.completed.Add(1)
		s.observeServiceTime(elapsed)
		s.metrics.request.ObserveDuration(elapsed)
	case errors.Is(err, ErrOverloaded):
		s.rejectedOverload.Add(1)
	case errors.Is(err, ErrClosed):
		s.rejectedClosed.Add(1)
	case isRequestError(err):
		s.badRequests.Add(1)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.deadlineExpired.Add(1)
	default:
		s.internalErrors.Add(1)
	}
	return resp, err
}

func isRequestError(err error) bool {
	var re *RequestError
	return errors.As(err, &re)
}

func (s *Service) schedule(ctx context.Context, req Request) (*Response, error) {
	// Per-stage spans record into the service histograms and any sink
	// the caller carried in via obs.WithStages (pimbench-style
	// breakdowns over an embedded service).
	stages := obs.Tee(s.stages, obs.StagesFrom(ctx))

	scheduler, err := sched.ByName(req.Algorithm)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if req.Capacity < 0 {
		return nil, badRequest("negative capacity %d", req.Capacity)
	}
	if int64(len(req.Trace)) > s.cfg.maxBodyBytes() {
		return nil, badRequest("trace text %d bytes exceeds limit %d", len(req.Trace), s.cfg.maxBodyBytes())
	}
	sp := stages.Start("decode")
	tr, err := trace.Decode(strings.NewReader(req.Trace))
	sp.End()
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if err := s.checkTraceScale(tr); err != nil {
		return nil, err
	}

	// Refuse after Close; wg.Add under the same lock so Close's Wait
	// cannot slip between the check and the registration.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()

	// Claim a concurrency slot without queuing: full means shed now.
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
		default:
			s.wg.Done()
			return nil, ErrOverloaded
		}
	}
	s.inflight.Add(1)
	finished := func() {
		if s.slots != nil {
			<-s.slots
		}
		s.inflight.Add(-1)
		s.wg.Done()
	}

	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	sp = stages.Start("fingerprint")
	fp := tr.Fingerprint()
	sp.End()
	work := func() (*Response, error) {
		if s.testHookRunning != nil {
			s.testHookRunning()
		}
		entry, outcome := s.resolveTable(stages, fp, tr, req.PeerHint)
		p := &sched.Problem{Model: entry.model, Table: entry.table, Capacity: req.Capacity}
		sp := stages.Start("sched." + strings.ToLower(scheduler.Name()))
		schedule, err := scheduler.Schedule(p)
		sp.End()
		if err != nil {
			return nil, &RequestError{Err: err} // infeasible capacity etc.
		}
		bd := p.Model.Evaluate(schedule)
		resp := &Response{
			Algorithm:    scheduler.Name(),
			Grid:         tr.Grid.String(),
			NumData:      tr.NumData,
			NumWindows:   tr.NumWindows(),
			Capacity:     req.Capacity,
			Centers:      schedule.Centers,
			Cost:         CostJSON{Residence: bd.Residence, Move: bd.Move, Total: bd.Total()},
			Fingerprint:  fp.String(),
			CacheHit:     outcome != cacheOutcomeBuild,
			cacheOutcome: outcome,
		}
		if req.Verify {
			sp := stages.Start("verify")
			err := func() error {
				if err := verify.Check(tr, schedule, req.Capacity); err != nil {
					return fmt.Errorf("service: referee rejected schedule: %v", err)
				}
				claim := verify.Breakdown{Residence: bd.Residence, Move: bd.Move}
				if err := verify.CrossCheck(tr, schedule, p.Model.DataSize, claim); err != nil {
					return fmt.Errorf("service: %v", err)
				}
				resp.Verified = &CostJSON{Residence: claim.Residence, Move: claim.Move, Total: claim.Total()}
				return nil
			}()
			sp.End()
			if err != nil {
				return nil, err
			}
		}
		return resp, nil
	}
	resp, err := awaitDone(ctx, work, finished)
	if err == nil {
		// The hit/shared-build counters settle here, on the actual
		// outcome: a waiter abandoned by its context while the build was
		// still in flight never delivered a table, so it must not count
		// as cache traffic (the regression test pins this down).
		s.cache.settle(resp.cacheOutcome)
	}
	return resp, err
}

// resolveTable resolves a fingerprint against the table cache. The
// elected builder first tries a peer fill when a hint is present,
// falling back silently to a local build; an elected promoter decodes
// the cold tier's compressed payload back to a flat table; everyone
// else either finds the entry ready (hit) or waits out the in-flight
// work (shared build). The returned entry is always ready. The caller
// settles the returned outcome into the cache counters once its
// request completes.
func (s *Service) resolveTable(stages obs.Stages, fp trace.Fingerprint, tr *trace.Trace, peerHint string) (*cacheEntry, cacheOutcome) {
	entry, role, comp := s.cache.acquire(fp)
	switch role {
	case cacheRoleBuilder:
		// The model outlives this request in the cache, so it must
		// not capture a request-scoped sink: service histograms only.
		m := cost.NewModel(tr)
		m.Stages = s.stages
		if table, ok := s.fetchPeerTable(stages, fp, tr, peerHint); ok {
			// Adopted, not built: tables_built stays flat, which is what
			// keeps the fleet-wide tables_built == distinct-traces
			// invariant true across shard topology changes.
			s.cache.publish(entry, m, table)
		} else {
			sp := stages.Start("table.build")
			s.cache.publish(entry, m, m.BuildResidenceTable())
			s.tablesBuilt.Add(1)
			sp.End()
		}
		return entry, cacheOutcomeBuild
	case cacheRolePromoter:
		// The cold tier held the table compressed; decode it instead of
		// rebuilding. The model was dropped at demotion (it is as large
		// as the table) and is rebuilt from the trace here.
		m := cost.NewModel(tr)
		m.Stages = s.stages
		sp := stages.Start("table.promote")
		table, err := s.decodePromoted(comp, fp, tr)
		sp.End()
		if err != nil {
			// A shard decoding a payload it compressed itself should
			// never get here; treat it as a miss and rebuild rather
			// than failing the request.
			sp := stages.Start("table.build")
			table = m.BuildResidenceTable()
			s.tablesBuilt.Add(1)
			sp.End()
		}
		s.cache.publish(entry, m, table)
		return entry, cacheOutcomePromote
	}
	select {
	case <-entry.ready:
		// Cache hit: record a zero-length span so hit counts
		// appear alongside build and wait in the stage series.
		stages.Record("table.hit", 0)
		return entry, cacheOutcomeHit
	default:
		// Another request is building this entry; its worker
		// always completes (pure CPU work), so waiting here
		// cannot hang. Our own caller is still free to time out
		// via awaitDone.
		sp := stages.Start("table.wait")
		<-entry.ready
		sp.End()
		return entry, cacheOutcomeShared
	}
}

// decodePromoted decodes a cold-tier payload back to a flat table,
// cross-checking the embedded fingerprint and the shape against the
// request's trace — the same paranoia peer fill applies, because a
// promoted table feeds schedules exactly like an adopted one.
func (s *Service) decodePromoted(comp []byte, fp trace.Fingerprint, tr *trace.Trace) (cost.ResidenceTable, error) {
	gotFP, table, err := cost.DecodeTableAny(comp, s.cfg.maxTableCells())
	if err != nil {
		return cost.ResidenceTable{}, err
	}
	if gotFP != fp {
		return cost.ResidenceTable{}, fmt.Errorf("cold table is for %s, want %s", gotFP, fp)
	}
	if table.NumWindows() != tr.NumWindows() || table.NumData() != tr.NumData ||
		table.NumProcs() != tr.Grid.NumProcs() {
		return cost.ResidenceTable{}, fmt.Errorf("cold table shape %dx%dx%d does not match trace %dx%dx%d",
			table.NumWindows(), table.NumData(), table.NumProcs(),
			tr.NumWindows(), tr.NumData, tr.Grid.NumProcs())
	}
	return table, nil
}

// fetchPeerTable asks the hinted peer for its cached table, bounded by
// the peer-fill deadline. Every failure mode — no hook, no hint, peer
// down or slow, corrupt payload, or a table whose shape does not match
// the trace — reports false, and the caller builds locally.
func (s *Service) fetchPeerTable(stages obs.Stages, fp trace.Fingerprint, tr *trace.Trace, peerHint string) (cost.ResidenceTable, bool) {
	if s.cfg.PeerFill == nil || peerHint == "" {
		return cost.ResidenceTable{}, false
	}
	// The fetch deadline is independent of the request context: the
	// builder's work survives an abandoned requester, and the fetch must
	// stay bounded either way.
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.peerFillTimeout())
	defer cancel()
	sp := stages.Start("table.peerfill")
	table, err := s.cfg.PeerFill(ctx, fp, peerHint)
	sp.End()
	if err == nil && (table.NumWindows() != tr.NumWindows() ||
		table.NumData() != tr.NumData || table.NumProcs() != tr.Grid.NumProcs()) {
		err = fmt.Errorf("peer table shape %dx%dx%d does not match trace %dx%dx%d",
			table.NumWindows(), table.NumData(), table.NumProcs(),
			tr.NumWindows(), tr.NumData, tr.Grid.NumProcs())
	}
	if err != nil {
		s.peerFillFallback.Add(1)
		return cost.ResidenceTable{}, false
	}
	s.peerFills.Add(1)
	return table, true
}

// awaitDone runs fn in a goroutine and waits for it or for the context,
// whichever finishes first; done fires exactly once, when fn actually
// returns (or immediately if the context was dead before fn started).
// It mirrors sched.RunContextDone for the service's own composite work.
func awaitDone[T any](ctx context.Context, fn func() (T, error), done func()) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		done()
		return zero, err
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := fn()
		ch <- result{v, err}
		done()
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}
