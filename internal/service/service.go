// Package service turns the one-shot schedulers of internal/sched into
// a long-running, concurrency-bounded scheduling service: the substrate
// the ROADMAP's "heavy traffic" north star builds on.
//
// A Service accepts schedule requests (a trace in the pimtrace v1 text
// codec plus an algorithm name and memory capacity), runs the requested
// scheduler, and returns the center matrix with its cost breakdown.
// Three properties distinguish it from calling sched directly:
//
//   - Model reuse. Cost models and residence tables — the dominant cost
//     of a scheduler run — are cached in an LRU keyed by the trace's
//     canonical trace.Fingerprint. Requests carrying a trace already
//     seen skip the rebuild entirely; concurrent misses on the same
//     fingerprint are deduplicated so the table is built exactly once
//     (singleflight).
//   - Bounded concurrency. At most MaxInflight schedule computations
//     run at once; excess load is shed immediately with ErrOverloaded
//     (HTTP 429 + Retry-After) instead of queuing unboundedly.
//   - Deadlines and drain. Every request runs under a context; when it
//     expires the caller gets the context error at once while the
//     abandoned computation finishes in the background, still holding
//     its concurrency slot. Close refuses new requests and waits for
//     all in-flight work, so shutdown never strands a computation.
//
// The cached entries are capacity-independent (the residence table
// depends only on the trace), so requests that share a trace but differ
// in algorithm or capacity still share one table.
package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Defaults for Config fields left zero.
const (
	DefaultCacheSize    = 64
	DefaultMaxBodyBytes = 32 << 20
)

// ErrOverloaded is returned when MaxInflight computations are already
// running; the HTTP layer maps it to 429 with a Retry-After header.
var ErrOverloaded = errors.New("service: overloaded")

// ErrClosed is returned for requests arriving after Close began.
var ErrClosed = errors.New("service: shutting down")

// RequestError marks a client-side error (malformed trace, unknown
// algorithm, oversized body); the HTTP layer maps it to 400.
type RequestError struct {
	Err error
}

func (e *RequestError) Error() string { return "service: bad request: " + e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

func badRequest(format string, args ...any) error {
	return &RequestError{Err: fmt.Errorf(format, args...)}
}

// Config tunes a Service. The zero value is usable: unbounded
// concurrency, no server-side deadline, DefaultCacheSize cache entries
// and DefaultMaxBodyBytes request bodies.
type Config struct {
	// MaxInflight bounds concurrent schedule computations (table builds
	// and scheduler runs); <= 0 means unbounded. Excess requests are
	// shed with ErrOverloaded, never queued.
	MaxInflight int

	// CacheSize is the number of {model, residence table} entries the
	// fingerprint-keyed LRU holds; <= 0 means DefaultCacheSize.
	CacheSize int

	// Timeout is the server-side deadline applied to every request on
	// top of the caller's context; <= 0 means none.
	Timeout time.Duration

	// MaxBodyBytes bounds the request body and the inline trace text;
	// <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// MaxSessions bounds concurrently live incremental sessions (each
	// holds a residence table and per-item DP state in memory); <= 0
	// means DefaultMaxSessions. Excess creations are shed with
	// ErrOverloaded.
	MaxSessions int
}

func (c Config) cacheSize() int {
	if c.CacheSize <= 0 {
		return DefaultCacheSize
	}
	return c.CacheSize
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return c.MaxBodyBytes
}

// Request is one scheduling job: a trace in the pimtrace v1 text
// format, the algorithm to run, and the per-processor memory capacity
// (0 = unbounded). Verify additionally re-checks the schedule with the
// independent referee (internal/verify) before responding.
type Request struct {
	Trace     string `json:"trace"`
	Algorithm string `json:"algorithm"`
	Capacity  int    `json:"capacity"`
	Verify    bool   `json:"verify,omitempty"`
}

// CostJSON is a cost breakdown in a response.
type CostJSON struct {
	Residence int64 `json:"residence"`
	Move      int64 `json:"move"`
	Total     int64 `json:"total"`
}

// Response carries the schedule, its cost, and per-request telemetry.
type Response struct {
	Algorithm   string    `json:"algorithm"`
	Grid        string    `json:"grid"`
	NumData     int       `json:"num_data"`
	NumWindows  int       `json:"num_windows"`
	Capacity    int       `json:"capacity"`
	Centers     [][]int   `json:"centers"`
	Cost        CostJSON  `json:"cost"`
	Verified    *CostJSON `json:"verified,omitempty"`
	Fingerprint string    `json:"fingerprint"`
	CacheHit    bool      `json:"cache_hit"`
	ElapsedUS   int64     `json:"elapsed_us"`
}

// Stats is a snapshot of the service's counters, served at /stats.
type Stats struct {
	Requests         uint64 `json:"requests"`
	Completed        uint64 `json:"completed"`
	RejectedOverload uint64 `json:"rejected_overload"`
	RejectedClosed   uint64 `json:"rejected_closed"`
	BadRequests      uint64 `json:"bad_requests"`
	DeadlineExpired  uint64 `json:"deadline_expired"`
	Errors           uint64 `json:"errors"`
	Inflight         int64  `json:"inflight"`
	TablesBuilt      uint64 `json:"tables_built"`
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	CacheSharedBuild uint64 `json:"cache_shared_builds"`
	CacheEvictions   uint64 `json:"cache_evictions"`
	CacheEntries     int    `json:"cache_entries"`
	SessionsCreated  uint64 `json:"sessions_created"`
	SessionsActive   int    `json:"sessions_active"`
	DeltasApplied    uint64 `json:"deltas_applied"`
}

// Service is a concurrent scheduling service. Create one with New; it
// is safe for use by any number of goroutines.
type Service struct {
	cfg   Config
	cache *tableCache
	slots chan struct{} // nil when MaxInflight <= 0

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // all request work, incl. abandoned background runs

	// sessions are the live incremental scheduling sessions, keyed by
	// service-assigned ID; sessionSeq mints those IDs.
	sessions   map[string]*sessionEntry
	sessionSeq uint64

	requests         atomic.Uint64
	completed        atomic.Uint64
	rejectedOverload atomic.Uint64
	rejectedClosed   atomic.Uint64
	badRequests      atomic.Uint64
	deadlineExpired  atomic.Uint64
	internalErrors   atomic.Uint64
	inflight         atomic.Int64
	tablesBuilt      atomic.Uint64
	sessionsCreated  atomic.Uint64
	deltasApplied    atomic.Uint64

	// deltaLayersRecomputed remembers the layer count of the most recent
	// session schedule computation, exposed as a gauge: near zero under
	// delta traffic, spiking to items x windows on cold or fallback runs.
	deltaLayersRecomputed atomic.Int64

	// ewmaNanos is the decaying average of completed-request service
	// times, backing the Retry-After header on load-shed responses.
	ewmaNanos atomic.Int64

	// metrics is the obs registry over the counters above plus the
	// per-stage latency histograms; stages is the span sink feeding it.
	metrics *serviceMetrics
	stages  obs.Stages

	// testHookRunning, when set, is called by the worker after it has
	// claimed its concurrency slot and before any heavy work; tests use
	// it to hold a request in-flight deterministically.
	testHookRunning func()

	// testHookSessionOp, when set, is called by session operations
	// between the registry lookup and taking the entry's operation
	// lock; tests use it to interleave a DELETE into that window
	// deterministically.
	testHookSessionOp func()
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	s := &Service{cfg: cfg, cache: newTableCache(cfg.cacheSize())}
	if cfg.MaxInflight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInflight)
	}
	s.metrics = newServiceMetrics(s)
	s.stages = s.metrics.stageSink()
	return s
}

// Metrics returns the service's metric registry (served at /metrics by
// Handler); callers embedding the service elsewhere can mount or
// extend it.
func (s *Service) Metrics() *obs.Registry { return s.metrics.reg }

// observeServiceTime folds one completed request's duration into the
// decaying average behind Retry-After (alpha = 1/8; the first sample
// seeds the average directly).
func (s *Service) observeServiceTime(d time.Duration) {
	for {
		old := s.ewmaNanos.Load()
		next := d.Nanoseconds()
		if next < 1 {
			next = 1 // a zero average would look unseeded
		}
		if old > 0 {
			next = old + (next-old)/8
			if next < 1 {
				next = 1
			}
		}
		if s.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds is the backoff advertised on load-shed responses:
// the decayed average service time rounded up to whole seconds,
// floored at 1 (no history looks like a fast service, and Retry-After
// must stay a positive integer) and capped at 60 so one pathological
// request cannot park clients for minutes.
func (s *Service) retryAfterSeconds() int {
	secs := (s.ewmaNanos.Load() + int64(time.Second) - 1) / int64(time.Second)
	switch {
	case secs < 1:
		return 1
	case secs > 60:
		return 60
	}
	return int(secs)
}

// Closed reports whether Close has begun; /healthz uses it.
func (s *Service) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close refuses new requests and waits for every in-flight computation
// — including runs abandoned by expired deadlines — to finish. It is
// idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats returns a consistent-enough snapshot of the counters (each
// counter is individually atomic; the set is not taken under one lock).
func (s *Service) Stats() Stats {
	st := Stats{
		Requests:         s.requests.Load(),
		Completed:        s.completed.Load(),
		RejectedOverload: s.rejectedOverload.Load(),
		RejectedClosed:   s.rejectedClosed.Load(),
		BadRequests:      s.badRequests.Load(),
		DeadlineExpired:  s.deadlineExpired.Load(),
		Errors:           s.internalErrors.Load(),
		Inflight:         s.inflight.Load(),
		TablesBuilt:      s.tablesBuilt.Load(),
		SessionsCreated:  s.sessionsCreated.Load(),
		SessionsActive:   s.sessionCount(),
		DeltasApplied:    s.deltasApplied.Load(),
	}
	st.CacheHits, st.CacheMisses, st.CacheSharedBuild, st.CacheEvictions, st.CacheEntries = s.cache.counters()
	return st
}

// Schedule runs one request. It validates and decodes the trace, takes
// a concurrency slot (or sheds), resolves the fingerprint against the
// model cache (building at most once per fingerprint), runs the
// scheduler, and optionally referees the result. The context bounds the
// caller's wait, not the computation: an expired context returns
// immediately while the work completes in the background.
func (s *Service) Schedule(ctx context.Context, req Request) (*Response, error) {
	s.requests.Add(1)
	start := time.Now()

	resp, err := s.schedule(ctx, req)
	switch {
	case err == nil:
		elapsed := time.Since(start)
		resp.ElapsedUS = elapsed.Microseconds()
		s.completed.Add(1)
		s.observeServiceTime(elapsed)
		s.metrics.request.ObserveDuration(elapsed)
	case errors.Is(err, ErrOverloaded):
		s.rejectedOverload.Add(1)
	case errors.Is(err, ErrClosed):
		s.rejectedClosed.Add(1)
	case isRequestError(err):
		s.badRequests.Add(1)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.deadlineExpired.Add(1)
	default:
		s.internalErrors.Add(1)
	}
	return resp, err
}

func isRequestError(err error) bool {
	var re *RequestError
	return errors.As(err, &re)
}

func (s *Service) schedule(ctx context.Context, req Request) (*Response, error) {
	// Per-stage spans record into the service histograms and any sink
	// the caller carried in via obs.WithStages (pimbench-style
	// breakdowns over an embedded service).
	stages := obs.Tee(s.stages, obs.StagesFrom(ctx))

	scheduler, err := sched.ByName(req.Algorithm)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	if req.Capacity < 0 {
		return nil, badRequest("negative capacity %d", req.Capacity)
	}
	if int64(len(req.Trace)) > s.cfg.maxBodyBytes() {
		return nil, badRequest("trace text %d bytes exceeds limit %d", len(req.Trace), s.cfg.maxBodyBytes())
	}
	sp := stages.Start("decode")
	tr, err := trace.Decode(strings.NewReader(req.Trace))
	sp.End()
	if err != nil {
		return nil, &RequestError{Err: err}
	}

	// Refuse after Close; wg.Add under the same lock so Close's Wait
	// cannot slip between the check and the registration.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()

	// Claim a concurrency slot without queuing: full means shed now.
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
		default:
			s.wg.Done()
			return nil, ErrOverloaded
		}
	}
	s.inflight.Add(1)
	finished := func() {
		if s.slots != nil {
			<-s.slots
		}
		s.inflight.Add(-1)
		s.wg.Done()
	}

	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	sp = stages.Start("fingerprint")
	fp := tr.Fingerprint()
	sp.End()
	work := func() (*Response, error) {
		if s.testHookRunning != nil {
			s.testHookRunning()
		}
		entry, builder := s.cache.acquire(fp)
		if builder {
			sp := stages.Start("table.build")
			m := cost.NewModel(tr)
			// The model outlives this request in the cache, so it must
			// not capture a request-scoped sink: service histograms only.
			m.Stages = s.stages
			s.cache.publish(entry, m, m.BuildResidenceTable())
			s.tablesBuilt.Add(1)
			sp.End()
		} else {
			select {
			case <-entry.ready:
				// Cache hit: record a zero-length span so hit counts
				// appear alongside build and wait in the stage series.
				stages.Record("table.hit", 0)
			default:
				// Another request is building this entry; its worker
				// always completes (pure CPU work), so waiting here
				// cannot hang. Our own caller is still free to time out
				// via awaitDone.
				sp := stages.Start("table.wait")
				<-entry.ready
				sp.End()
			}
		}
		p := &sched.Problem{Model: entry.model, Table: entry.table, Capacity: req.Capacity}
		sp := stages.Start("sched." + strings.ToLower(scheduler.Name()))
		schedule, err := scheduler.Schedule(p)
		sp.End()
		if err != nil {
			return nil, &RequestError{Err: err} // infeasible capacity etc.
		}
		bd := p.Model.Evaluate(schedule)
		resp := &Response{
			Algorithm:   scheduler.Name(),
			Grid:        tr.Grid.String(),
			NumData:     tr.NumData,
			NumWindows:  tr.NumWindows(),
			Capacity:    req.Capacity,
			Centers:     schedule.Centers,
			Cost:        CostJSON{Residence: bd.Residence, Move: bd.Move, Total: bd.Total()},
			Fingerprint: fp.String(),
			CacheHit:    !builder,
		}
		if req.Verify {
			sp := stages.Start("verify")
			err := func() error {
				if err := verify.Check(tr, schedule, req.Capacity); err != nil {
					return fmt.Errorf("service: referee rejected schedule: %v", err)
				}
				claim := verify.Breakdown{Residence: bd.Residence, Move: bd.Move}
				if err := verify.CrossCheck(tr, schedule, p.Model.DataSize, claim); err != nil {
					return fmt.Errorf("service: %v", err)
				}
				resp.Verified = &CostJSON{Residence: claim.Residence, Move: claim.Move, Total: claim.Total()}
				return nil
			}()
			sp.End()
			if err != nil {
				return nil, err
			}
		}
		return resp, nil
	}
	return awaitDone(ctx, work, finished)
}

// awaitDone runs fn in a goroutine and waits for it or for the context,
// whichever finishes first; done fires exactly once, when fn actually
// returns (or immediately if the context was dead before fn started).
// It mirrors sched.RunContextDone for the service's own composite work.
func awaitDone[T any](ctx context.Context, fn func() (T, error), done func()) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		done()
		return zero, err
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := fn()
		ch <- result{v, err}
		done()
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}
