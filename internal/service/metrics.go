package service

import (
	"time"

	"repro/internal/obs"
)

// serviceMetrics is the obs registry view over the service. The hot
// path keeps writing the same plain atomics it always did (and the
// stage histograms, which are themselves single atomic increments); the
// registry reads everything else lazily at scrape time through func
// metrics, so /metrics costs the request path nothing.
type serviceMetrics struct {
	reg     *obs.Registry
	stage   *obs.HistogramVec
	request *obs.Histogram
}

func newServiceMetrics(s *Service) *serviceMetrics {
	reg := obs.NewRegistry()
	m := &serviceMetrics{
		reg: reg,
		stage: reg.HistogramVec("pim_stage_duration_seconds",
			"Time spent in each schedule-pipeline stage (decode, fingerprint, table.build/wait/hit, sched.<algorithm>, verify, encode).",
			"stage", obs.LatencyBuckets),
		request: reg.Histogram("pim_request_duration_seconds",
			"End-to-end latency of completed schedule requests.", obs.LatencyBuckets),
	}
	reg.CounterFunc("pim_requests_total", "Schedule requests received.", s.requests.Load)
	reg.CounterFunc("pim_requests_completed_total", "Schedule requests completed successfully.", s.completed.Load)
	reg.LabeledCounterFunc("pim_requests_rejected_total", "Requests shed before running.",
		"reason", "overload", s.rejectedOverload.Load)
	reg.LabeledCounterFunc("pim_requests_rejected_total", "Requests shed before running.",
		"reason", "closed", s.rejectedClosed.Load)
	reg.CounterFunc("pim_bad_requests_total", "Malformed or infeasible requests.", s.badRequests.Load)
	reg.CounterFunc("pim_deadline_expired_total", "Requests abandoned by an expired deadline.", s.deadlineExpired.Load)
	reg.CounterFunc("pim_internal_errors_total", "Requests failed by internal errors.", s.internalErrors.Load)
	reg.CounterFunc("pim_tables_built_total", "Residence tables actually built (elected cache misses).", s.tablesBuilt.Load)
	reg.GaugeFunc("pim_requests_inflight", "Schedule computations currently running.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("pim_retry_after_seconds", "Backoff currently advertised on load-shed responses.",
		func() float64 { return float64(s.retryAfterSeconds()) })

	cacheCounter := func(pick func(cacheStats) uint64) func() uint64 {
		return func() uint64 { return pick(s.cache.counters()) }
	}
	reg.CounterFunc("pim_cache_hits_total", "Residence-table cache hits (flat hot-tier hits and cold-tier promotions).",
		cacheCounter(func(cs cacheStats) uint64 { return cs.hits }))
	reg.CounterFunc("pim_cache_misses_total", "Residence-table cache misses.",
		cacheCounter(func(cs cacheStats) uint64 { return cs.misses }))
	reg.CounterFunc("pim_cache_shared_builds_total", "Concurrent misses that piggybacked on an in-flight build.",
		cacheCounter(func(cs cacheStats) uint64 { return cs.sharedBuilds }))
	reg.CounterFunc("pim_cache_evictions_total", "Residence-table cache evictions.",
		cacheCounter(func(cs cacheStats) uint64 { return cs.evictions }))
	reg.CounterFunc("pim_cache_demotions_total", "Hot tables compressed into the cold tier under byte pressure.",
		cacheCounter(func(cs cacheStats) uint64 { return cs.demotions }))
	reg.CounterFunc("pim_cache_promotions_total", "Cold tables decoded back to the hot tier on demand.",
		cacheCounter(func(cs cacheStats) uint64 { return cs.promotions }))
	reg.CounterFunc("pim_cache_admission_rejects_total", "Newly cached tables dropped because the eviction victim was hotter.",
		cacheCounter(func(cs cacheStats) uint64 { return cs.admissionRejects }))
	reg.GaugeFunc("pim_cache_entries", "Residence-table cache entries resident across both tiers.",
		func() float64 { return float64(s.cache.counters().entries()) })
	reg.GaugeFunc("pim_cache_bytes", "Bytes of cached residence tables (flat hot cells plus compressed cold payloads).",
		func() float64 { return float64(s.cache.counters().bytes) })

	reg.CounterFunc("pim_batches_total", "Batch schedule requests completed.", s.batches.Load)
	reg.CounterFunc("pim_batch_specs_total", "Request specs completed inside batches.", s.batchSpecs.Load)
	reg.CounterFunc("pim_peer_fills_total", "Residence tables adopted from a peer shard instead of built.", s.peerFills.Load)
	reg.CounterFunc("pim_peer_fill_fallbacks_total", "Peer-fill attempts that fell back to a local build.", s.peerFillFallback.Load)
	reg.CounterFunc("pim_tables_served_total", "Cached residence tables served to peer shards.", s.tablesServed.Load)
	reg.CounterFunc("pim_tables_prefilled_total", "Residence tables adopted via router-pushed replica prefill.", s.tablesPrefilled.Load)
	reg.CounterFunc("pim_sessions_exported_total", "Sessions serialized for migration to another shard.", s.sessionsExported.Load)
	reg.CounterFunc("pim_sessions_imported_total", "Migrated sessions resumed from another shard's export.", s.sessionsImported.Load)

	reg.CounterFunc("pim_sessions_created_total", "Incremental scheduling sessions opened.", s.sessionsCreated.Load)
	reg.CounterFunc("pim_deltas_applied_total", "Trace deltas applied across all sessions.", s.deltasApplied.Load)
	reg.GaugeFunc("pim_sessions_active", "Incremental scheduling sessions currently live.",
		func() float64 { return float64(s.sessionCount()) })
	reg.GaugeFunc("pim_delta_layers_recomputed", "DP layers relaxed by the most recent session schedule computation.",
		func() float64 { return float64(s.deltaLayersRecomputed.Load()) })
	return m
}

// stageSink adapts the stage histogram vec to the obs.Stages hook the
// pipeline spans record into.
func (m *serviceMetrics) stageSink() obs.Stages {
	return func(stage string, d time.Duration) { m.stage.With(stage).ObserveDuration(d) }
}
