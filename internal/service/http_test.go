package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
)

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeError(t testing.TB, data []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, data)
	}
	if e.Error == "" {
		t.Fatalf("error body has no error field: %q", data)
	}
	return e.Error
}

func TestHTTPScheduleEndToEnd(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	text := traceText(t, "lu", 8, grid.Square(4))
	wantCenters, wantCost := directRun(t, text, "gomcds", 8)

	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/schedule?verify=true",
			Request{Trace: text, Algorithm: "gomcds", Capacity: 8})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, data)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q", ct)
		}
		var out Response
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out.Centers, wantCenters) || out.Cost != wantCost {
			t.Fatalf("request %d: response differs from direct sched run", i)
		}
		if out.Verified == nil || *out.Verified != wantCost {
			t.Fatalf("request %d: verified breakdown missing or wrong: %+v", i, out.Verified)
		}
		if wantHit := i > 0; out.CacheHit != wantHit {
			t.Fatalf("request %d: CacheHit = %v, want %v", i, out.CacheHit, wantHit)
		}
		if out.Grid != "4x4" || out.NumWindows == 0 || out.Fingerprint == "" {
			t.Fatalf("request %d: bad metadata: %+v", i, out)
		}
	}
}

func TestHTTPScheduleErrorPaths(t *testing.T) {
	svc := New(Config{MaxBodyBytes: 1 << 16})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	good := traceText(t, "lu", 4, grid.Square(2))

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Post(ts.URL+"/schedule", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	t.Run("wrong method", func(t *testing.T) {
		resp, err := client.Get(ts.URL + "/schedule")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("Allow = %q, want POST", allow)
		}
	})
	t.Run("malformed json", func(t *testing.T) {
		resp, data := post("{not json")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, data)
		}
		decodeError(t, data)
	})
	t.Run("unknown field", func(t *testing.T) {
		resp, data := post(`{"trace": "x", "algorithm": "scds", "bogus": 1}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, data)
		}
	})
	t.Run("bad trace", func(t *testing.T) {
		resp, data := post(`{"trace": "garbage", "algorithm": "scds"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, data)
		}
		if msg := decodeError(t, data); !strings.Contains(msg, "line 1") {
			t.Fatalf("error %q does not cite the offending line", msg)
		}
	})
	t.Run("unknown algorithm", func(t *testing.T) {
		resp, _ := postJSON(t, client, ts.URL+"/schedule", Request{Trace: good, Algorithm: "bogus"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("infeasible capacity", func(t *testing.T) {
		resp, _ := postJSON(t, client, ts.URL+"/schedule",
			Request{Trace: traceText(t, "lu", 8, grid.Square(2)), Algorithm: "gomcds", Capacity: 1})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		resp, data := post(fmt.Sprintf(`{"trace": %q, "algorithm": "scds"}`,
			"pimtrace v1\n#"+strings.Repeat("x", 1<<16)))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, data)
		}
	})
	t.Run("unknown path", func(t *testing.T) {
		resp, err := client.Get(ts.URL + "/nope")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
	})
}

func TestHTTPHealthzAndStats(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Wrong methods on the read-only endpoints.
	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := client.Post(ts.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status = %d, want 405", path, resp.StatusCode)
		}
	}

	// Stats reflects traffic.
	text := traceText(t, "lu", 4, grid.Square(2))
	postJSON(t, client, ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	resp, err = client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.Completed != 1 || st.TablesBuilt != 1 {
		t.Fatalf("stats after one request: %+v", st)
	}

	// After Close: healthz flips to 503, schedule is refused with 503.
	svc.Close()
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: status = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, client, ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("schedule after Close: status = %d, want 503", resp.StatusCode)
	}
}

// TestHTTPMetricsEndpoint scrapes /metrics around /schedule round-trips
// and asserts the counters and stage histograms move: two requests for
// the same trace must show one table build (miss) and one cache hit, a
// decode/sched/encode stage sample per request, and a completed-request
// latency observation per request.
func TestHTTPMetricsEndpoint(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	scrape := func() string {
		t.Helper()
		resp, err := client.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("GET /metrics: Content-Type %q", ct)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	sample := func(body, series string) float64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if rest, ok := strings.CutPrefix(line, series+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("series %s: bad value %q", series, rest)
				}
				return v
			}
		}
		t.Fatalf("series %s absent from scrape:\n%s", series, body)
		return 0
	}

	before := scrape()
	if got := sample(before, "pim_requests_total"); got != 0 {
		t.Fatalf("pim_requests_total before traffic = %v, want 0", got)
	}

	text := traceText(t, "lu", 4, grid.Square(2))
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, client, ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, data)
		}
	}

	after := scrape()
	for series, want := range map[string]float64{
		"pim_requests_total":                                    2,
		"pim_requests_completed_total":                          2,
		"pim_tables_built_total":                                1,
		"pim_cache_misses_total":                                1,
		"pim_cache_hits_total":                                  1,
		"pim_cache_entries":                                     1,
		"pim_request_duration_seconds_count":                    2,
		`pim_stage_duration_seconds_count{stage="decode"}`:      2,
		`pim_stage_duration_seconds_count{stage="fingerprint"}`: 2,
		`pim_stage_duration_seconds_count{stage="table.build"}`: 1,
		`pim_stage_duration_seconds_count{stage="table.hit"}`:   1,
		`pim_stage_duration_seconds_count{stage="sched.scds"}`:  2,
		`pim_stage_duration_seconds_count{stage="encode"}`:      2,
	} {
		if got := sample(after, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if !strings.Contains(after, `pim_stage_duration_seconds_bucket{stage="sched.scds",le="+Inf"}`) {
		t.Error("scrape lacks the +Inf bucket of the sched.scds stage histogram")
	}
}

func TestHTTPLoadShedding(t *testing.T) {
	svc := New(Config{MaxInflight: 1})
	defer svc.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.testHookRunning = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	text := traceText(t, "lu", 4, grid.Square(2))

	// No t.Fatal off the test goroutine: report via the channel.
	first := make(chan int, 1)
	go func() {
		b, _ := json.Marshal(Request{Trace: text, Algorithm: "scds"})
		resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", bytes.NewReader(b))
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered

	resp, data := postJSON(t, ts.Client(), ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response lacks Retry-After")
	}
	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request: status = %d, want 200", code)
	}
}

func TestHTTPDeadlineExpiry(t *testing.T) {
	svc := New(Config{Timeout: time.Nanosecond})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	text := traceText(t, "lu", 8, grid.Square(4))
	resp, data := postJSON(t, ts.Client(), ts.URL+"/schedule", Request{Trace: text, Algorithm: "gomcds"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, data)
	}
	decodeError(t, data)
}

// Regression test: Retry-After must track observed service times, not a
// hardcoded constant. A 2.1s request is injected (the worker test hook
// stalls the first request), after which a load-shed response must
// advertise a backoff covering the decayed average service time —
// pre-fix the header was always "1" regardless of how slow the service
// actually was. The header must also always parse as a positive
// integer, and with no history the floor is 1 second.
func TestRetryAfterTracksServiceTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps >2s to inject a slow service time")
	}
	svc := New(Config{MaxInflight: 1})
	defer svc.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	svc.testHookRunning = func() {
		switch calls.Add(1) {
		case 1:
			time.Sleep(2100 * time.Millisecond) // the injected slow request
		case 2:
			close(entered) // holds the only slot while we provoke a shed
			<-release
		}
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	text := traceText(t, "lu", 4, grid.Square(2))

	// No-history shed first? No: floor is checked on a fresh service below.
	resp, data := postJSON(t, ts.Client(), ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow request: status %d (%s)", resp.StatusCode, data)
	}

	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		b, _ := json.Marshal(Request{Trace: text, Algorithm: "scds"})
		resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", bytes.NewReader(b))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered

	resp, data = postJSON(t, ts.Client(), ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, data)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		t.Fatalf("Retry-After %q does not parse as a positive integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 2 {
		t.Errorf("Retry-After = %ds after a 2.1s service time; the backoff must track observed service times", secs)
	}
	close(release)
	<-blocked

	// A fresh service with no completed requests floors at 1 second.
	svc2 := New(Config{MaxInflight: 1})
	defer svc2.Close()
	entered2 := make(chan struct{})
	release2 := make(chan struct{})
	var once sync.Once
	svc2.testHookRunning = func() {
		once.Do(func() { close(entered2) })
		<-release2
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	go func() {
		b, _ := json.Marshal(Request{Trace: text, Algorithm: "scds"})
		resp, err := ts2.Client().Post(ts2.URL+"/schedule", "application/json", bytes.NewReader(b))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered2
	resp, _ = postJSON(t, ts2.Client(), ts2.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After with no service-time history = %q, want floor \"1\"", got)
	}
	close(release2)
}
