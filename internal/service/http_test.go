package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeError(t testing.TB, data []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, data)
	}
	if e.Error == "" {
		t.Fatalf("error body has no error field: %q", data)
	}
	return e.Error
}

func TestHTTPScheduleEndToEnd(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	text := traceText(t, "lu", 8, grid.Square(4))
	wantCenters, wantCost := directRun(t, text, "gomcds", 8)

	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/schedule?verify=true",
			Request{Trace: text, Algorithm: "gomcds", Capacity: 8})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, data)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q", ct)
		}
		var out Response
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out.Centers, wantCenters) || out.Cost != wantCost {
			t.Fatalf("request %d: response differs from direct sched run", i)
		}
		if out.Verified == nil || *out.Verified != wantCost {
			t.Fatalf("request %d: verified breakdown missing or wrong: %+v", i, out.Verified)
		}
		if wantHit := i > 0; out.CacheHit != wantHit {
			t.Fatalf("request %d: CacheHit = %v, want %v", i, out.CacheHit, wantHit)
		}
		if out.Grid != "4x4" || out.NumWindows == 0 || out.Fingerprint == "" {
			t.Fatalf("request %d: bad metadata: %+v", i, out)
		}
	}
}

func TestHTTPScheduleErrorPaths(t *testing.T) {
	svc := New(Config{MaxBodyBytes: 1 << 16})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	good := traceText(t, "lu", 4, grid.Square(2))

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Post(ts.URL+"/schedule", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	t.Run("wrong method", func(t *testing.T) {
		resp, err := client.Get(ts.URL + "/schedule")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("Allow = %q, want POST", allow)
		}
	})
	t.Run("malformed json", func(t *testing.T) {
		resp, data := post("{not json")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, data)
		}
		decodeError(t, data)
	})
	t.Run("unknown field", func(t *testing.T) {
		resp, data := post(`{"trace": "x", "algorithm": "scds", "bogus": 1}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, data)
		}
	})
	t.Run("bad trace", func(t *testing.T) {
		resp, data := post(`{"trace": "garbage", "algorithm": "scds"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, data)
		}
		if msg := decodeError(t, data); !strings.Contains(msg, "line 1") {
			t.Fatalf("error %q does not cite the offending line", msg)
		}
	})
	t.Run("unknown algorithm", func(t *testing.T) {
		resp, _ := postJSON(t, client, ts.URL+"/schedule", Request{Trace: good, Algorithm: "bogus"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("infeasible capacity", func(t *testing.T) {
		resp, _ := postJSON(t, client, ts.URL+"/schedule",
			Request{Trace: traceText(t, "lu", 8, grid.Square(2)), Algorithm: "gomcds", Capacity: 1})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		resp, data := post(fmt.Sprintf(`{"trace": %q, "algorithm": "scds"}`,
			"pimtrace v1\n#"+strings.Repeat("x", 1<<16)))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, data)
		}
	})
	t.Run("unknown path", func(t *testing.T) {
		resp, err := client.Get(ts.URL + "/nope")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
	})
}

func TestHTTPHealthzAndStats(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Wrong methods on the read-only endpoints.
	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := client.Post(ts.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status = %d, want 405", path, resp.StatusCode)
		}
	}

	// Stats reflects traffic.
	text := traceText(t, "lu", 4, grid.Square(2))
	postJSON(t, client, ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	resp, err = client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.Completed != 1 || st.TablesBuilt != 1 {
		t.Fatalf("stats after one request: %+v", st)
	}

	// After Close: healthz flips to 503, schedule is refused with 503.
	svc.Close()
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: status = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, client, ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("schedule after Close: status = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPLoadShedding(t *testing.T) {
	svc := New(Config{MaxInflight: 1})
	defer svc.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.testHookRunning = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	text := traceText(t, "lu", 4, grid.Square(2))

	// No t.Fatal off the test goroutine: report via the channel.
	first := make(chan int, 1)
	go func() {
		b, _ := json.Marshal(Request{Trace: text, Algorithm: "scds"})
		resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", bytes.NewReader(b))
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered

	resp, data := postJSON(t, ts.Client(), ts.URL+"/schedule", Request{Trace: text, Algorithm: "scds"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response lacks Retry-After")
	}
	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request: status = %d, want 200", code)
	}
}

func TestHTTPDeadlineExpiry(t *testing.T) {
	svc := New(Config{Timeout: time.Nanosecond})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	text := traceText(t, "lu", 8, grid.Square(4))
	resp, data := postJSON(t, ts.Client(), ts.URL+"/schedule", Request{Trace: text, Algorithm: "gomcds"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, data)
	}
	decodeError(t, data)
}
