package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/delta"
	"repro/internal/grid"
	"repro/internal/trace"
)

// postJSON posts v and decodes the JSON response into out (when
// non-nil), returning the status code.
func sessionPost(t testing.TB, client *http.Client, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s response %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPSessionLifecycle walks the full session surface: create,
// inspect, apply deltas, schedule (twice, for the cache), delete, and
// then a 404 on the deleted ID. Every schedule is pinned against a
// serial replay of the delta log through /schedule semantics.
func TestHTTPSessionLifecycle(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	text := traceText(t, "lu", 6, grid.Square(4))

	var info SessionInfo
	if code := sessionPost(t, ts.Client(), ts.URL+"/session",
		CreateSessionRequest{Trace: text, Algorithm: "gomcds"}, &info); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	if info.SessionID == "" || info.NumWindows == 0 || info.Seq != 0 {
		t.Fatalf("create session returned %+v", info)
	}
	tr, err := trace.Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != tr.Fingerprint().String() {
		t.Fatalf("session fingerprint %s != trace fingerprint %s", info.Fingerprint, tr.Fingerprint())
	}

	base := ts.URL + "/session/" + info.SessionID
	deltas := []delta.Delta{
		delta.EditItemVolumes(0, 0, append([]int{7}, make([]int, 15)...)),
		delta.AppendWindow([]delta.Ref{{Proc: 5, Data: 1, Volume: 3}}),
		delta.RemoveWindow(1),
	}
	for i, d := range deltas {
		var dr DeltaResponse
		if code := sessionPost(t, ts.Client(), base+"/delta", d, &dr); code != http.StatusOK {
			t.Fatalf("delta %d: status %d", i, code)
		}
		if dr.Seq != uint64(i+1) {
			t.Fatalf("delta %d: seq %d", i, dr.Seq)
		}
		if err := delta.Materialize(tr, d); err != nil {
			t.Fatal(err)
		}
		if dr.Fingerprint != tr.Fingerprint().String() {
			t.Fatalf("delta %d: session fingerprint %s != materialized %s", i, dr.Fingerprint, tr.Fingerprint())
		}
	}

	var sr SessionScheduleResponse
	if code := sessionPost(t, ts.Client(), base+"/schedule", struct{}{}, &sr); code != http.StatusOK {
		t.Fatalf("schedule: status %d", code)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	wantCenters, wantCost := directRun(t, buf.String(), "gomcds", 0)
	if !reflect2Equal(sr.Centers, wantCenters) || sr.Cost != wantCost {
		t.Fatalf("session schedule (%v, %+v) != serial replay (%v, %+v)", sr.Centers, sr.Cost, wantCenters, wantCost)
	}
	if sr.Cached || sr.LayersRecomputed == 0 {
		t.Fatalf("first schedule: cached=%v layers=%d", sr.Cached, sr.LayersRecomputed)
	}
	var again SessionScheduleResponse
	sessionPost(t, ts.Client(), base+"/schedule", struct{}{}, &again)
	if !again.Cached || again.LayersRecomputed != 0 || again.Cost != sr.Cost {
		t.Fatalf("repeat schedule: %+v", again)
	}

	// GET reflects the applied deltas.
	resp, err := ts.Client().Get(base)
	if err != nil {
		t.Fatal(err)
	}
	var got SessionInfo
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.Seq != 3 || got.NumWindows != tr.NumWindows() || got.Fingerprint != tr.Fingerprint().String() {
		t.Fatalf("session info after deltas: %+v", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if code := sessionPost(t, ts.Client(), base+"/schedule", struct{}{}, nil); code != http.StatusNotFound {
		t.Fatalf("schedule on deleted session: status %d, want 404", code)
	}

	st := svc.Stats()
	if st.SessionsCreated != 1 || st.SessionsActive != 0 || st.DeltasApplied != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func reflect2Equal(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestHTTPSessionConcurrentClients hammers ONE session with 32
// concurrent clients, each applying deltas and scheduling. The service
// serializes deltas and stamps each with its sequence number; after the
// storm the test replays the observed sequence order serially and
// demands the session's final {fingerprint, schedule, cost} equal the
// replay's — linearizability, checked end to end. tables_built must not
// grow with deltas: one build for the session, ever.
func TestHTTPSessionConcurrentClients(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	g := grid.New(4, 2)
	np := g.NumProcs()
	text := traceText(t, "stencil", 8, g)

	var info SessionInfo
	if code := sessionPost(t, ts.Client(), ts.URL+"/session",
		CreateSessionRequest{Trace: text, Algorithm: "gomcds"}, &info); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	base := ts.URL + "/session/" + info.SessionID
	builtBefore := svc.Stats().TablesBuilt

	const clients = 32
	const deltasPerClient = 4
	type applied struct {
		seq uint64
		d   delta.Delta
	}
	var mu sync.Mutex
	var log []applied
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for k := 0; k < deltasPerClient; k++ {
				// Window indices must stay valid no matter how deltas
				// interleave, so clients only append and edit window 0
				// (8 starting windows are never removed).
				var d delta.Delta
				if rng.Intn(2) == 0 {
					refs := make([]delta.Ref, 1+rng.Intn(3))
					for i := range refs {
						refs[i] = delta.Ref{Proc: rng.Intn(np), Data: trace.DataID(rng.Intn(info.NumData)), Volume: 1 + rng.Intn(4)}
					}
					d = delta.AppendWindow(refs)
				} else {
					vols := make([]int, np)
					for p := range vols {
						vols[p] = rng.Intn(3)
					}
					d = delta.EditItemVolumes(0, trace.DataID(rng.Intn(info.NumData)), vols)
				}
				var dr DeltaResponse
				if code := sessionPost(t, ts.Client(), base+"/delta", d, &dr); code != http.StatusOK {
					t.Errorf("client %d delta %d: status %d", c, k, code)
					return
				}
				mu.Lock()
				log = append(log, applied{seq: dr.Seq, d: d})
				mu.Unlock()
				if code := sessionPost(t, ts.Client(), base+"/schedule", struct{}{}, nil); code != http.StatusOK {
					t.Errorf("client %d schedule %d: status %d", c, k, code)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Serial replay in observed sequence order is the linearization the
	// session claims; pin the final state to it.
	sort.Slice(log, func(i, j int) bool { return log[i].seq < log[j].seq })
	if len(log) != clients*deltasPerClient {
		t.Fatalf("observed %d deltas, want %d", len(log), clients*deltasPerClient)
	}
	for i, a := range log {
		if a.seq != uint64(i+1) {
			t.Fatalf("sequence numbers not dense: position %d holds seq %d", i, a.seq)
		}
	}
	tr, err := trace.Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range log {
		if err := delta.Materialize(tr, a.d); err != nil {
			t.Fatalf("replay seq %d (%v): %v", a.seq, a.d, err)
		}
	}

	var final SessionScheduleResponse
	if code := sessionPost(t, ts.Client(), base+"/schedule", struct{}{}, &final); code != http.StatusOK {
		t.Fatalf("final schedule: status %d", code)
	}
	if final.Fingerprint != tr.Fingerprint().String() {
		t.Fatalf("final fingerprint %s != serial replay %s", final.Fingerprint, tr.Fingerprint())
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	wantCenters, wantCost := directRun(t, buf.String(), "gomcds", 0)
	if !reflect2Equal(final.Centers, wantCenters) || final.Cost != wantCost {
		t.Fatalf("final schedule diverges from serial replay:\n got (%v, %+v)\nwant (%v, %+v)",
			final.Centers, final.Cost, wantCenters, wantCost)
	}

	st := svc.Stats()
	if st.TablesBuilt != builtBefore {
		t.Fatalf("tables_built grew from %d to %d under delta traffic", builtBefore, st.TablesBuilt)
	}
	if st.DeltasApplied != uint64(clients*deltasPerClient) {
		t.Fatalf("deltas_applied = %d, want %d", st.DeltasApplied, clients*deltasPerClient)
	}
}

// TestSessionLimitsAndErrors covers the shed/validation surface of the
// session API.
func TestSessionLimitsAndErrors(t *testing.T) {
	svc := New(Config{MaxSessions: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	text := traceText(t, "lu", 4, grid.Square(2))

	if code := sessionPost(t, ts.Client(), ts.URL+"/session",
		CreateSessionRequest{Trace: "not a trace", Algorithm: "gomcds"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad trace: status %d", code)
	}
	if code := sessionPost(t, ts.Client(), ts.URL+"/session",
		CreateSessionRequest{Trace: text, Algorithm: "quantum"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: status %d", code)
	}
	if code := sessionPost(t, ts.Client(), ts.URL+"/session",
		CreateSessionRequest{Trace: text, Algorithm: "gomcds", Capacity: -1}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative capacity: status %d", code)
	}

	var infos [2]SessionInfo
	for i := range infos {
		if code := sessionPost(t, ts.Client(), ts.URL+"/session",
			CreateSessionRequest{Trace: text, Algorithm: "gomcds"}, &infos[i]); code != http.StatusCreated {
			t.Fatalf("session %d: status %d", i, code)
		}
	}
	if infos[0].SessionID == infos[1].SessionID {
		t.Fatal("duplicate session IDs")
	}
	resp, err := ts.Client().Post(ts.URL+"/session", "application/json",
		strings.NewReader(fmt.Sprintf(`{"trace":%q,"algorithm":"gomcds"}`, text)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over session limit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed session creation lacks Retry-After")
	}

	// Unknown session IDs 404 on every per-session route.
	if code := sessionPost(t, ts.Client(), ts.URL+"/session/nope/delta", delta.RemoveWindow(0), nil); code != http.StatusNotFound {
		t.Fatalf("delta on unknown session: status %d", code)
	}
	// Invalid delta on a live session is a 400 and leaves it usable.
	if code := sessionPost(t, ts.Client(), ts.URL+"/session/"+infos[0].SessionID+"/delta",
		delta.RemoveWindow(99), nil); code != http.StatusBadRequest {
		t.Fatalf("invalid delta: status %d", code)
	}
	if code := sessionPost(t, ts.Client(), ts.URL+"/session/"+infos[0].SessionID+"/schedule", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("schedule after rejected delta: status %d", code)
	}

	// Deleting frees a slot for a new session.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+infos[1].SessionID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if code := sessionPost(t, ts.Client(), ts.URL+"/session",
		CreateSessionRequest{Trace: text, Algorithm: "gomcds"}, nil); code != http.StatusCreated {
		t.Fatalf("create after delete: status %d", code)
	}
}
