package verify_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/verify"
)

// TestPaperWorkedExample reruns the paper's Section 3.3 walk-through
// end-to-end and prices every scheme's center sequence with the
// independent evaluator. The expected totals are the exact costs the
// reproduction reports for the worked example (SCDS 8, LOMCDS 9,
// GOMCDS 6), so the test pins the example through a code path that
// shares nothing with the residence-table machinery that produced it.
func TestPaperWorkedExample(t *testing.T) {
	res, err := experiments.Example331()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		scheme    string
		total     int64
		residence int64
		move      int64
	}{
		// SCDS never moves: all 8 units are remote-reference cost.
		{scheme: "SCDS", total: 8, residence: 8, move: 0},
		// LOMCDS chases each window's local center: only window 0's
		// second reader stays remote (1 hop) but the item is dragged
		// across 8 hops of movement.
		{scheme: "LOMCDS", total: 9, residence: 1, move: 8},
		// GOMCDS holds the window-0 center while moving costs more
		// than serving remotely and relocates once at the end.
		{scheme: "GOMCDS", total: 6},
	}
	for _, tc := range cases {
		sc, err := experiments.ExampleSchedule(res, tc.scheme)
		if err != nil {
			t.Fatalf("%s: %v", tc.scheme, err)
		}
		bd, err := verify.Cost(res.Trace, sc)
		if err != nil {
			t.Fatalf("%s: %v", tc.scheme, err)
		}
		if bd.Total() != tc.total {
			t.Errorf("%s: independent cost %d, paper example reports %d", tc.scheme, bd.Total(), tc.total)
		}
		if bd.Total() != res.Costs[tc.scheme] {
			t.Errorf("%s: independent cost %d disagrees with model cost %d", tc.scheme, bd.Total(), res.Costs[tc.scheme])
		}
		if tc.scheme != "GOMCDS" && (bd.Residence != tc.residence || bd.Move != tc.move) {
			t.Errorf("%s: breakdown %+v, want residence %d move %d", tc.scheme, bd, tc.residence, tc.move)
		}
	}
	// The example's oracle check: GOMCDS's 6 is not just best of three,
	// it is the true optimum of the instance (1 item, 16 procs exceeds
	// the default oracle bound, so widen the processor limit).
	opt, _, err := verify.OptimalBounded(res.Trace, verify.Limits{MaxProcs: 16, MaxWindows: 4, MaxData: 4})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Total() != 6 {
		t.Errorf("exhaustive optimum = %d, want 6 (the paper's GOMCDS cost)", opt.Total())
	}
}
