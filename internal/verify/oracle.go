// The exhaustive oracle: the true minimum-cost schedule for tiny
// instances, found by brute-force enumeration rather than any of the
// algorithms under test.
package verify

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/trace"
)

// Limits bound the exhaustive search. The enumeration visits
// NumProcs^NumWindows center sequences per data item, so the bounds
// keep the oracle instant while still covering instances large enough
// to exercise every scheduler decision (moves, stays, ties).
type Limits struct {
	MaxProcs   int
	MaxWindows int
	MaxData    int
}

// DefaultLimits caps instances at a 3x3 array, 4 windows and 4 data
// items: at most 9^4 = 6561 sequences per item.
func DefaultLimits() Limits {
	return Limits{MaxProcs: 9, MaxWindows: 4, MaxData: 4}
}

// Optimal finds the minimum-total-cost schedule of the trace under
// unbounded memory capacity by enumerating, independently for every
// data item, all NumProcs^NumWindows center sequences and keeping the
// cheapest. With unbounded capacity the items do not interact, so the
// per-item minima compose into the global optimum — the ground truth
// any correct global scheduler must reach.
//
// Optimal refuses instances beyond DefaultLimits; use OptimalBounded to
// widen the bounds explicitly.
func Optimal(t *trace.Trace) (Breakdown, cost.Schedule, error) {
	return OptimalBounded(t, DefaultLimits())
}

// OptimalBounded is Optimal with caller-chosen enumeration bounds.
func OptimalBounded(t *trace.Trace, lim Limits) (Breakdown, cost.Schedule, error) {
	if t == nil {
		return Breakdown{}, cost.Schedule{}, fmt.Errorf("verify: nil trace")
	}
	if err := t.Validate(); err != nil {
		return Breakdown{}, cost.Schedule{}, fmt.Errorf("verify: %v", err)
	}
	np, nw, nd := t.Grid.NumProcs(), t.NumWindows(), t.NumData
	if np > lim.MaxProcs || nw > lim.MaxWindows || nd > lim.MaxData {
		return Breakdown{}, cost.Schedule{}, fmt.Errorf(
			"verify: instance %d procs x %d windows x %d items exceeds oracle limits %d/%d/%d",
			np, nw, nd, lim.MaxProcs, lim.MaxWindows, lim.MaxData)
	}
	best := cost.Schedule{Centers: make([][]int, nw)}
	for w := range best.Centers {
		best.Centers[w] = make([]int, nd)
	}
	if nw == 0 {
		return Breakdown{}, best, nil
	}

	// refCost[w][c] for the current item: the residence cost of window w
	// with the item at processor c, summed naively over the raw events.
	refCost := make([][]int64, nw)
	for w := range refCost {
		refCost[w] = make([]int64, np)
	}
	seq := make([]int, nw)
	var total Breakdown
	for d := 0; d < nd; d++ {
		for w := range refCost {
			row := refCost[w]
			for c := range row {
				row[c] = 0
			}
			for _, r := range t.Windows[w].Refs {
				if int(r.Data) != d {
					continue
				}
				for c := 0; c < np; c++ {
					row[c] += int64(r.Volume) * int64(manhattan(t.Grid, r.Proc, c))
				}
			}
		}

		// Enumerate every center sequence as a base-np counter.
		bestRes, bestMove := int64(-1), int64(-1)
		bestSeq := make([]int, nw)
		for i := range seq {
			seq[i] = 0
		}
		for {
			var res, move int64
			for w, c := range seq {
				res += refCost[w][c]
				if w > 0 {
					move += int64(manhattan(t.Grid, seq[w-1], c))
				}
			}
			if bestRes < 0 || res+move < bestRes+bestMove {
				bestRes, bestMove = res, move
				copy(bestSeq, seq)
			}
			// Advance the counter; stop after the last sequence.
			i := nw - 1
			for ; i >= 0; i-- {
				seq[i]++
				if seq[i] < np {
					break
				}
				seq[i] = 0
			}
			if i < 0 {
				break
			}
		}
		total.Residence += bestRes
		total.Move += bestMove
		for w := 0; w < nw; w++ {
			best.Centers[w][d] = bestSeq[w]
		}
	}
	return total, best, nil
}
