package verify_test

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/verify"
)

// FuzzVerifyCost cross-checks the two cost evaluators on fuzz-chosen
// random instances: for any trace and any valid schedule, the model's
// table-free evaluation and the referee's naive recomputation must
// agree exactly — including under non-unit data sizes.
func FuzzVerifyCost(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(-7))
	f.Add(int64(1998))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(1+rng.Intn(4), 1+rng.Intn(4))
		nd := rng.Intn(6)
		nw := rng.Intn(5)
		tr := verify.RandomTrace(rng, g, nd, nw, 8)
		s := verify.RandomSchedule(rng, tr)
		m := cost.NewModel(tr)
		for d := range m.DataSize {
			m.DataSize[d] = 1 + rng.Intn(4)
		}
		bd := m.Evaluate(s)
		if err := verify.CrossCheck(tr, s, m.DataSize, verify.Breakdown{Residence: bd.Residence, Move: bd.Move}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}

// FuzzCheckSchedule feeds arbitrary center matrices to the invariant
// checker and the cost evaluator: whatever shape the bytes decode to —
// ragged rows, out-of-range or negative centers, too many or too few
// windows — the referee must reject gracefully, never panic.
func FuzzCheckSchedule(f *testing.F) {
	f.Add(int64(0), []byte{})
	f.Add(int64(1), []byte{0, 1, 2, 3})
	f.Add(int64(2), []byte{0xFF, 0x80, 0x00, 0x7F, 0x10})
	f.Add(int64(42), []byte("arbitrary schedule bytes"))
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := rng.Intn(4)
		nw := rng.Intn(4)
		tr := verify.RandomTrace(rng, g, nd, nw, 4)

		// Decode the fuzz bytes into a center matrix of arbitrary shape:
		// the first bytes choose row count and lengths, the rest fill
		// centers (shifted so negatives and huge values both occur).
		var s cost.Schedule
		pos := 0
		next := func() int {
			if pos >= len(raw) {
				return 0
			}
			b := raw[pos]
			pos++
			return int(int8(b)) // signed: exercise negative centers
		}
		rows := next() & 0x7 // 0..7 windows, independent of the trace
		for w := 0; w < rows; w++ {
			row := make([]int, next()&0x7)
			for i := range row {
				row[i] = next() * (1 + next()&0x3)
			}
			s.Centers = append(s.Centers, row)
		}

		// Neither entry point may panic, whatever the matrix looks like.
		_ = verify.Check(tr, s, 0)
		_ = verify.Check(tr, s, 1)
		if _, err := verify.Cost(tr, s); err == nil {
			// If the referee accepted the schedule it must be genuinely
			// valid; re-check the invariants to be sure.
			if err := verify.Check(tr, s, 0); err != nil {
				t.Fatalf("Cost accepted a schedule Check rejects: %v", err)
			}
		}
	})
}
