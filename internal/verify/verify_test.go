package verify

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// handTrace builds a 2x2 instance small enough to cost by hand:
//
//	window 0: processor 0 references item 0 twice, processor 3 item 1 once
//	window 1: processor 1 references item 0 once
func handTrace() *trace.Trace {
	t := trace.New(grid.Square(2), 2)
	w0 := t.AddWindow()
	w0.AddVolume(0, 0, 2)
	w0.AddVolume(3, 1, 1)
	w1 := t.AddWindow()
	w1.AddVolume(1, 0, 1)
	return t
}

func handSchedule() cost.Schedule {
	return cost.Schedule{Centers: [][]int{{0, 1}, {3, 1}}}
}

func TestCostByHand(t *testing.T) {
	tr := handTrace()
	// Residence: w0 item0@0 serves proc 0 locally (0), item1@1 serves
	// proc 3 over 1 hop (1); w1 item0@3 serves proc 1 over 1 hop (1).
	// Movement: item 0 travels 0 -> 3 (2 hops), item 1 stays.
	bd, err := Cost(tr, handSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if bd.Residence != 2 || bd.Move != 2 || bd.Total() != 4 {
		t.Fatalf("breakdown = %+v, want residence 2 move 2", bd)
	}
}

func TestCostWithSizes(t *testing.T) {
	tr := handTrace()
	bd, err := CostWithSizes(tr, handSchedule(), []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Residence != 2 || bd.Move != 6 {
		t.Fatalf("breakdown = %+v, want residence 2 move 6 (item 0 weighs 3)", bd)
	}
	if _, err := CostWithSizes(tr, handSchedule(), []int{1}); err == nil {
		t.Error("short size vector accepted")
	}
}

func TestCostRejectsInvalidInputs(t *testing.T) {
	tr := handTrace()
	if _, err := Cost(nil, handSchedule()); err == nil {
		t.Error("nil trace accepted")
	}
	bad := trace.New(grid.Square(2), 1)
	bad.AddWindow().Add(9, 0) // processor outside the array
	if _, err := Cost(bad, cost.Schedule{Centers: [][]int{{0}}}); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, err := Cost(tr, cost.Schedule{Centers: [][]int{{0, 1}}}); err == nil {
		t.Error("window-count mismatch accepted")
	}
}

func TestCheck(t *testing.T) {
	tr := handTrace()
	cases := []struct {
		name     string
		s        cost.Schedule
		capacity int
		wantErr  string
	}{
		{"valid", handSchedule(), 0, ""},
		{"valid under capacity", handSchedule(), 1, ""},
		{"wrong window count", cost.Schedule{Centers: [][]int{{0, 1}}}, 0, "windows"},
		{"ragged row", cost.Schedule{Centers: [][]int{{0, 1}, {3}}}, 0, "centers"},
		{"nil rows", cost.Schedule{Centers: [][]int{nil, nil}}, 0, "centers"},
		{"center out of range", cost.Schedule{Centers: [][]int{{0, 4}, {0, 0}}}, 0, "outside"},
		{"negative center", cost.Schedule{Centers: [][]int{{0, -1}, {0, 0}}}, 0, "outside"},
		{"capacity violated", cost.Schedule{Centers: [][]int{{2, 2}, {0, 1}}}, 1, "more than"},
	}
	for _, tc := range cases {
		err := Check(tr, tc.s, tc.capacity)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	if err := Check(nil, handSchedule(), 0); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestCrossCheck(t *testing.T) {
	tr := handTrace()
	if err := CrossCheck(tr, handSchedule(), nil, Breakdown{Residence: 2, Move: 2}); err != nil {
		t.Fatalf("agreeing claim rejected: %v", err)
	}
	err := CrossCheck(tr, handSchedule(), nil, Breakdown{Residence: 2, Move: 3})
	if err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("diverging claim passed (err = %v)", err)
	}
}

func TestManhattanMatchesGrid(t *testing.T) {
	g := grid.New(3, 2)
	for a := 0; a < g.NumProcs(); a++ {
		for b := 0; b < g.NumProcs(); b++ {
			if manhattan(g, a, b) != g.Dist(a, b) {
				t.Fatalf("manhattan(%d,%d) = %d, grid says %d", a, b, manhattan(g, a, b), g.Dist(a, b))
			}
		}
	}
}

func TestRandomTraceAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		tr := RandomTrace(rng, g, rng.Intn(5), rng.Intn(5), 6)
		if err := tr.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		s := RandomSchedule(rng, tr)
		if err := Check(tr, s, 0); err != nil {
			t.Fatalf("iteration %d: random schedule invalid: %v", i, err)
		}
	}
}
