package verify_test

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// referee runs one scheduler and subjects the result to the full
// independent check: structural invariants, then exact agreement
// between the cost model's evaluation and the referee's from-scratch
// recomputation. It returns the (now doubly-attested) total cost.
func referee(t *testing.T, tr *trace.Trace, p *sched.Problem, s sched.Scheduler) int64 {
	t.Helper()
	sc, err := s.Schedule(p)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if err := verify.Check(tr, sc, p.Capacity); err != nil {
		t.Fatalf("%s: invariant violation: %v", s.Name(), err)
	}
	bd := p.Model.Evaluate(sc)
	if err := verify.CrossCheck(tr, sc, p.Model.DataSize, verify.Breakdown{Residence: bd.Residence, Move: bd.Move}); err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return bd.Total()
}

// TestDifferentialSchedulers is the tier-1 differential gate: on seeded
// random tiny instances with unbounded capacity it asserts the
// dominance chain cost(GOMCDS) <= cost(LOMCDS) and <= cost(SCDS), and
// that GOMCDS exactly reaches the exhaustive oracle's optimum (with
// unbounded capacity its per-item shortest path is provably optimal, so
// any gap convicts either the scheduler, the cost tables, or the
// oracle). Every schedule along the way is cross-checked against the
// independent evaluator.
func TestDifferentialSchedulers(t *testing.T) {
	rng := rand.New(rand.NewSource(1998)) // deterministic: failures name their instance index
	const instances = 120
	for i := 0; i < instances; i++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := 1 + rng.Intn(4)
		nw := 1 + rng.Intn(4)
		tr := verify.RandomTrace(rng, g, nd, nw, 6)
		p := sched.NewProblem(tr, 0) // unbounded: items independent, GOMCDS optimal

		costs := make(map[string]int64)
		for _, s := range sched.All() {
			costs[s.Name()] = referee(t, tr, p, s)
		}
		if costs["GOMCDS"] > costs["LOMCDS"] {
			t.Errorf("instance %d (%v, %d items, %d windows): GOMCDS %d > LOMCDS %d",
				i, g, nd, nw, costs["GOMCDS"], costs["LOMCDS"])
		}
		if costs["GOMCDS"] > costs["SCDS"] {
			t.Errorf("instance %d (%v, %d items, %d windows): GOMCDS %d > SCDS %d",
				i, g, nd, nw, costs["GOMCDS"], costs["SCDS"])
		}
		opt, _, err := verify.Optimal(tr)
		if err != nil {
			t.Fatalf("instance %d: oracle: %v", i, err)
		}
		if costs["GOMCDS"] != opt.Total() {
			t.Errorf("instance %d (%v, %d items, %d windows): GOMCDS %d != exhaustive optimum %d",
				i, g, nd, nw, costs["GOMCDS"], opt.Total())
		}
	}
}

// TestDifferentialCapacitated repeats the sweep under the paper's
// memory discipline. Greedy capacity commits void the optimality and
// dominance guarantees, so here the referee checks what must still
// hold: capacity respected in every window, and exact cost agreement.
func TestDifferentialCapacitated(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 60; i++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := 1 + rng.Intn(4)
		nw := 1 + rng.Intn(4)
		tr := verify.RandomTrace(rng, g, nd, nw, 6)
		capa := placement.MinCapacity(nd, g.NumProcs())
		if rng.Intn(2) == 0 {
			capa *= 2
		}
		p := sched.NewProblem(tr, capa)
		for _, s := range sched.All() {
			referee(t, tr, p, s)
		}
	}
}

// TestDifferentialRandomSchedulesNeverBeatOracle pits arbitrary valid
// schedules (which no scheduler would emit) against the oracle, closing
// the remaining gap: the oracle is a lower bound for everything, not
// just for the three algorithms under test.
func TestDifferentialRandomSchedulesNeverBeatOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		tr := verify.RandomTrace(rng, g, 1+rng.Intn(4), 1+rng.Intn(4), 6)
		opt, _, err := verify.Optimal(tr)
		if err != nil {
			t.Fatal(err)
		}
		m := cost.NewModel(tr)
		for j := 0; j < 10; j++ {
			s := verify.RandomSchedule(rng, tr)
			bd := m.Evaluate(s)
			if err := verify.CrossCheck(tr, s, m.DataSize, verify.Breakdown{Residence: bd.Residence, Move: bd.Move}); err != nil {
				t.Fatalf("instance %d schedule %d: %v", i, j, err)
			}
			if bd.Total() < opt.Total() {
				t.Fatalf("instance %d: random schedule cost %d beats oracle %d", i, bd.Total(), opt.Total())
			}
		}
	}
}
