package verify_test

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
	"repro/internal/verify"
)

// residenceFromTrace recomputes one residence-table cell straight from
// the trace's reference events with coordinate arithmetic only — the
// referee-side ground truth neither kernel shares any code with.
func residenceFromTrace(tr *trace.Trace, w int, d trace.DataID, c int) int64 {
	var total int64
	for _, r := range tr.Windows[w].Refs {
		if r.Data == d {
			ca, cb := tr.Grid.Coord(r.Proc), tr.Grid.Coord(c)
			dx, dy := ca.X-cb.X, ca.Y-cb.Y
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			total += int64(r.Volume) * int64(dx+dy)
		}
	}
	return total
}

// checkKernelsAgree builds the residence table with both kernels and
// demands cell-for-cell agreement with each other and with the
// referee's from-trace recomputation; it also pins the aggregate table
// to the per-window column sums under both kernel settings.
func checkKernelsAgree(t *testing.T, tr *trace.Trace, label string) {
	t.Helper()
	m := cost.NewModel(tr) // KernelSeparable is the default
	fast := m.BuildResidenceTable()
	naive := m.BuildResidenceTableNaive()
	nw, nd, np := m.NumWindows(), m.NumData, m.Grid.NumProcs()
	for w := 0; w < nw; w++ {
		for d := 0; d < nd; d++ {
			fr, nr := fast.Row(w, d), naive.Row(w, d)
			for c := 0; c < np; c++ {
				if fr[c] != nr[c] {
					t.Fatalf("%s: kernel divergence at [%d][%d][%d]: separable %d, naive %d",
						label, w, d, c, fr[c], nr[c])
				}
				if want := residenceFromTrace(tr, w, trace.DataID(d), c); fr[c] != want {
					t.Fatalf("%s: cell [%d][%d][%d] = %d, referee recomputation gives %d",
						label, w, d, c, fr[c], want)
				}
			}
		}
	}
	for _, kernel := range []cost.Kernel{cost.KernelSeparable, cost.KernelNaive} {
		m.Kernel = kernel
		agg := m.BuildAggregateTable()
		for d := 0; d < nd; d++ {
			for c := 0; c < np; c++ {
				var want int64
				for w := 0; w < nw; w++ {
					want += naive.At(w, d, c)
				}
				if agg[d][c] != want {
					t.Fatalf("%s: %v aggregate[%d][%d] = %d, per-window sum gives %d",
						label, kernel, d, c, agg[d][c], want)
				}
			}
		}
	}
}

// TestResidenceKernelsAgree is the differential gate for the kernel
// swap: on seeded random instances the separable prefix-sum kernel and
// the naive per-cell kernel must produce identical tables, and both
// must match the referee's independent from-trace recomputation.
func TestResidenceKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	const instances = 140
	for i := 0; i < instances; i++ {
		g := grid.New(1+rng.Intn(6), 1+rng.Intn(6))
		nd := 1 + rng.Intn(5)
		nw := 1 + rng.Intn(5)
		tr := verify.RandomTrace(rng, g, nd, nw, 10)
		checkKernelsAgree(t, tr, "instance "+strconv.Itoa(i))
	}
}

// TestResidenceKernelsDegenerate drives both kernels through the grid
// shapes where a separability bug would hide: single-row and
// single-column arrays (one axis contributes nothing), the 1x1 array
// (every distance is zero), empty windows, and items no window
// references.
func TestResidenceKernelsDegenerate(t *testing.T) {
	cases := []struct {
		name  string
		build func() *trace.Trace
	}{
		{"1x1-single-proc", func() *trace.Trace {
			tr := trace.New(grid.New(1, 1), 2)
			tr.AddWindow().AddVolume(0, 0, 7)
			tr.AddWindow() // empty window
			return tr
		}},
		{"1xN-row-array", func() *trace.Trace {
			tr := trace.New(grid.New(8, 1), 3)
			w := tr.AddWindow()
			w.AddVolume(0, 0, 3)
			w.AddVolume(7, 0, 2)
			w.AddVolume(4, 1, 1)
			tr.AddWindow().AddVolume(3, 1, 5) // item 2 never referenced
			return tr
		}},
		{"Nx1-column-array", func() *trace.Trace {
			tr := trace.New(grid.New(1, 8), 3)
			w := tr.AddWindow()
			w.AddVolume(0, 0, 3)
			w.AddVolume(7, 0, 2)
			w.AddVolume(4, 1, 1)
			tr.AddWindow().AddVolume(3, 1, 5)
			return tr
		}},
		{"empty-windows-only", func() *trace.Trace {
			tr := trace.New(grid.New(3, 2), 2)
			tr.AddWindow()
			tr.AddWindow()
			return tr
		}},
		{"no-windows", func() *trace.Trace {
			return trace.New(grid.New(2, 3), 2)
		}},
		{"zero-items", func() *trace.Trace {
			tr := trace.New(grid.New(2, 2), 0)
			tr.AddWindow()
			return tr
		}},
		{"all-volume-one-corner", func() *trace.Trace {
			tr := trace.New(grid.New(5, 4), 1)
			tr.AddWindow().AddVolume(19, 0, 1000)
			return tr
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkKernelsAgree(t, tc.build(), tc.name)
		})
	}
}

// FuzzResidenceKernels lets the fuzzer pick the instance: whatever
// trace the seed generates, the separable and naive kernels must agree
// cell-for-cell (and with the referee's recomputation).
func FuzzResidenceKernels(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(-1))
	f.Add(int64(2026))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(1+rng.Intn(5), 1+rng.Intn(5))
		nd := rng.Intn(5)
		nw := rng.Intn(4)
		tr := verify.RandomTrace(rng, g, nd, nw, 12)
		checkKernelsAgree(t, tr, "fuzz")
	})
}
