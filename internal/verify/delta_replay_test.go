package verify_test

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// randomDelta draws one random mutation valid against the current
// trace shape. Roughly one edit in six is a deliberate no-op (it
// rewrites the item's existing per-processor volumes), so the referee
// also pins the do-nothing path.
func randomDelta(rng *rand.Rand, tr *trace.Trace) delta.Delta {
	np := tr.Grid.NumProcs()
	switch op := rng.Intn(6); {
	case op <= 1 || len(tr.Windows) == 0: // append
		refs := make([]delta.Ref, rng.Intn(6))
		for i := range refs {
			refs[i] = delta.Ref{Proc: rng.Intn(np), Data: trace.DataID(rng.Intn(tr.NumData)), Volume: 1 + rng.Intn(4)}
		}
		return delta.AppendWindow(refs)
	case op <= 3: // random edit
		vols := make([]int, np)
		for p := range vols {
			vols[p] = rng.Intn(3)
		}
		return delta.EditItemVolumes(rng.Intn(len(tr.Windows)), trace.DataID(rng.Intn(tr.NumData)), vols)
	case op == 4: // no-op edit: re-state the item's current volumes
		w := rng.Intn(len(tr.Windows))
		d := trace.DataID(rng.Intn(tr.NumData))
		vols := make([]int, np)
		for _, r := range tr.Windows[w].Refs {
			if r.Data == d {
				vols[r.Proc] += r.Volume
			}
		}
		return delta.EditItemVolumes(w, d, vols)
	default: // remove
		return delta.RemoveWindow(rng.Intn(len(tr.Windows)))
	}
}

// checkAgainstReplay is the differential replay referee's inner step:
// given a session and the delta log's serial materialization, it
// demands bit-identical fingerprints, residence tables, schedules and
// costs between the incremental path and a from-scratch recomputation,
// then subjects the schedule to the independent evaluator.
func checkAgainstReplay(t *testing.T, s *delta.Session, shadow *trace.Trace, scheduler sched.Scheduler, capacity int, context string) {
	t.Helper()
	if got, want := s.Fingerprint(), shadow.Fingerprint(); got != want {
		t.Fatalf("%s: session fingerprint %v != materialized trace %v", context, got, want)
	}
	m := cost.NewModel(shadow)
	fullTable := m.BuildResidenceTable()
	table := s.Table()
	if table.NumWindows() != fullTable.NumWindows() {
		t.Fatalf("%s: session table has %d windows, full rebuild %d",
			context, table.NumWindows(), fullTable.NumWindows())
	}
	for w := 0; w < fullTable.NumWindows(); w++ {
		for d := 0; d < fullTable.NumData(); d++ {
			pr, fr := table.Row(w, d), fullTable.Row(w, d)
			for c := range fr {
				if pr[c] != fr[c] {
					t.Fatalf("%s: patched R[%d][%d][%d] = %d, full rebuild gives %d",
						context, w, d, c, pr[c], fr[c])
				}
			}
		}
	}

	got, err := s.Schedule()
	if err != nil {
		t.Fatalf("%s: incremental schedule: %v", context, err)
	}
	p := &sched.Problem{Model: m, Table: fullTable, Capacity: capacity}
	want, err := scheduler.Schedule(p)
	if err != nil {
		t.Fatalf("%s: full schedule: %v", context, err)
	}
	if !got.Schedule.Equal(want) {
		t.Fatalf("%s: incremental schedule %v != full recomputation %v", context, got.Schedule, want)
	}
	if wantBD := m.Evaluate(want); got.Cost != wantBD {
		t.Fatalf("%s: incremental cost %+v != full recomputation %+v", context, got.Cost, wantBD)
	}
	if err := verify.Check(shadow, got.Schedule, capacity); err != nil {
		t.Fatalf("%s: invariant violation: %v", context, err)
	}
	claim := verify.Breakdown{Residence: got.Cost.Residence, Move: got.Cost.Move}
	if err := verify.CrossCheck(shadow, got.Schedule, m.DataSize, claim); err != nil {
		t.Fatalf("%s: %v", context, err)
	}
}

// TestDeltaReplayAgrees is the headline referee of the incremental
// machinery: 160 seeded instances, each driven through 1-20 random
// deltas, with the session's {fingerprint, table, schedule, cost}
// pinned to a full from-scratch recomputation after every step. A
// quarter of the instances run fallback configurations — SCDS, LOMCDS
// and capacity-bounded GOMCDS, whose capacity commits plant
// forbidden-Inf vertices in the DP — so the patched-table-plus-full-
// scheduler path is refereed too.
func TestDeltaReplayAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1998))
	const instances = 160
	for i := 0; i < instances; i++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := 1 + rng.Intn(4)
		nw := rng.Intn(4)
		tr := verify.RandomTrace(rng, g, nd, nw, 6)

		scheduler, capacity := sched.Scheduler(sched.GOMCDS{}), 0
		switch i % 8 {
		case 5:
			scheduler = sched.SCDS{}
		case 6:
			scheduler = sched.LOMCDS{}
		case 7:
			capacity = placement.MinCapacity(nd, g.NumProcs())
		}

		s, err := delta.NewSession(tr, scheduler, capacity, delta.Options{})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		shadow := tr.Clone()
		steps := 1 + rng.Intn(20)
		for step := 0; step < steps; step++ {
			d := randomDelta(rng, shadow)
			if _, err := s.Apply(d); err != nil {
				t.Fatalf("instance %d step %d: apply %v: %v", i, step, d, err)
			}
			if err := delta.Materialize(shadow, d); err != nil {
				t.Fatalf("instance %d step %d: materialize %v: %v", i, step, d, err)
			}
			context := "instance " + itoa(i) + " step " + itoa(step) + " after " + d.String() +
				" (" + scheduler.Name() + ", capacity " + itoa(capacity) + ")"
			checkAgainstReplay(t, s, shadow, scheduler, capacity, context)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestDeltaReplayDegenerate covers the table's corners: an empty
// starting trace grown from nothing, a single-window trace, a 1xN grid
// (where the y-sweep degenerates), and a trace removed down to empty.
func TestDeltaReplayDegenerate(t *testing.T) {
	scheduler := sched.GOMCDS{}

	t.Run("empty trace grows", func(t *testing.T) {
		tr := trace.New(grid.New(2, 2), 2)
		s, err := delta.NewSession(tr, scheduler, 0, delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		shadow := tr.Clone()
		checkAgainstReplay(t, s, shadow, scheduler, 0, "empty before any delta")
		for step, d := range []delta.Delta{
			delta.AppendWindow(nil), // an empty window is legal
			delta.AppendWindow([]delta.Ref{{Proc: 3, Data: 1, Volume: 2}}),
			delta.EditItemVolumes(0, 0, []int{1, 0, 0, 4}),
		} {
			if _, err := s.Apply(d); err != nil {
				t.Fatal(err)
			}
			if err := delta.Materialize(shadow, d); err != nil {
				t.Fatal(err)
			}
			checkAgainstReplay(t, s, shadow, scheduler, 0, "empty-grown step "+itoa(step))
		}
	})

	t.Run("single window", func(t *testing.T) {
		rng := rand.New(rand.NewSource(71))
		tr := verify.RandomTrace(rng, grid.New(2, 2), 3, 1, 6)
		s, err := delta.NewSession(tr, scheduler, 0, delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		shadow := tr.Clone()
		for step := 0; step < 8; step++ {
			d := delta.EditItemVolumes(0, trace.DataID(rng.Intn(3)), []int{rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(3)})
			if _, err := s.Apply(d); err != nil {
				t.Fatal(err)
			}
			if err := delta.Materialize(shadow, d); err != nil {
				t.Fatal(err)
			}
			checkAgainstReplay(t, s, shadow, scheduler, 0, "single-window step "+itoa(step))
		}
	})

	t.Run("1xN grid", func(t *testing.T) {
		rng := rand.New(rand.NewSource(72))
		tr := verify.RandomTrace(rng, grid.New(5, 1), 2, 3, 6)
		s, err := delta.NewSession(tr, scheduler, 0, delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		shadow := tr.Clone()
		for step := 0; step < 10; step++ {
			d := randomDelta(rng, shadow)
			if _, err := s.Apply(d); err != nil {
				t.Fatal(err)
			}
			if err := delta.Materialize(shadow, d); err != nil {
				t.Fatal(err)
			}
			checkAgainstReplay(t, s, shadow, scheduler, 0, "1xN step "+itoa(step)+" after "+d.String())
		}
	})

	t.Run("remove to empty", func(t *testing.T) {
		rng := rand.New(rand.NewSource(73))
		tr := verify.RandomTrace(rng, grid.New(2, 3), 2, 4, 6)
		s, err := delta.NewSession(tr, scheduler, 0, delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		shadow := tr.Clone()
		for shadow.NumWindows() > 0 {
			w := rng.Intn(shadow.NumWindows())
			d := delta.RemoveWindow(w)
			if _, err := s.Apply(d); err != nil {
				t.Fatal(err)
			}
			if err := delta.Materialize(shadow, d); err != nil {
				t.Fatal(err)
			}
			checkAgainstReplay(t, s, shadow, scheduler, 0, "drain at "+itoa(shadow.NumWindows())+" windows")
		}
	})
}

// FuzzDeltaApply feeds arbitrary bytes as a delta program: each byte
// chunk decodes to one mutation over a small fixed starting trace, and
// the incremental session is pinned against serial materialization +
// full recomputation after the whole program runs (and structurally
// after every delta via the fingerprint). The fuzzer hunts for delta
// interleavings the seeded referee missed.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x41, 0x02, 0x90, 0x11})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x01, 0x02, 0x03})
	f.Add([]byte("append edit remove"))

	f.Fuzz(func(t *testing.T, program []byte) {
		g := grid.New(2, 2)
		const nd = 3
		tr := trace.New(g, nd)
		tr.AddWindow().Add(0, 0)
		tr.AddWindow().Add(3, 1)

		scheduler := sched.GOMCDS{}
		s, err := delta.NewSession(tr, scheduler, 0, delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		shadow := tr.Clone()

		next := func() (byte, bool) {
			if len(program) == 0 {
				return 0, false
			}
			b := program[0]
			program = program[1:]
			return b, true
		}
		for steps := 0; steps < 64; steps++ {
			op, ok := next()
			if !ok {
				break
			}
			var d delta.Delta
			switch op % 3 {
			case 0:
				var refs []delta.Ref
				for {
					b, ok := next()
					if !ok || b%5 == 4 {
						break
					}
					v, _ := next()
					refs = append(refs, delta.Ref{Proc: int(b % 4), Data: trace.DataID(b % nd), Volume: 1 + int(v%4)})
				}
				d = delta.AppendWindow(refs)
			case 1:
				if shadow.NumWindows() == 0 {
					continue
				}
				w, _ := next()
				dat, _ := next()
				vols := make([]int, 4)
				for p := range vols {
					b, _ := next()
					vols[p] = int(b % 3)
				}
				d = delta.EditItemVolumes(int(w)%shadow.NumWindows(), trace.DataID(dat%nd), vols)
			default:
				if shadow.NumWindows() == 0 {
					continue
				}
				w, _ := next()
				d = delta.RemoveWindow(int(w) % shadow.NumWindows())
			}
			if _, err := s.Apply(d); err != nil {
				t.Fatalf("apply %v: %v", d, err)
			}
			if err := delta.Materialize(shadow, d); err != nil {
				t.Fatalf("materialize %v: %v", d, err)
			}
			if got, want := s.Fingerprint(), shadow.Fingerprint(); got != want {
				t.Fatalf("after %v: session fingerprint %v != materialized %v", d, got, want)
			}
		}

		checkAgainstReplay(t, s, shadow, scheduler, 0, "fuzz program end")
	})
}
