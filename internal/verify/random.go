// Deterministic random instance generation for the differential and
// fuzz harnesses.
package verify

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// RandomTrace builds a pseudo-random scheduling instance: numWindows
// execution windows, each with up to maxRefsPerWindow reference events
// of volume 1..3 from random processors to random items. The rng makes
// generation deterministic, so test failures reproduce from the seed.
// Windows may be empty and items may go unreferenced — both are legal
// inputs the schedulers must handle.
func RandomTrace(rng *rand.Rand, g grid.Grid, numData, numWindows, maxRefsPerWindow int) *trace.Trace {
	t := trace.New(g, numData)
	np := g.NumProcs()
	for w := 0; w < numWindows; w++ {
		win := t.AddWindow()
		if numData == 0 || maxRefsPerWindow <= 0 {
			continue
		}
		for r := rng.Intn(maxRefsPerWindow + 1); r > 0; r-- {
			win.AddVolume(rng.Intn(np), trace.DataID(rng.Intn(numData)), 1+rng.Intn(3))
		}
	}
	return t
}

// RandomSchedule builds a uniformly random valid schedule for a trace:
// every item gets an independent random center in every window. It is
// the referee-side counterpart of RandomTrace for cross-checking cost
// evaluators on schedules no real scheduler would emit.
func RandomSchedule(rng *rand.Rand, t *trace.Trace) cost.Schedule {
	np := t.Grid.NumProcs()
	centers := make([][]int, t.NumWindows())
	for w := range centers {
		row := make([]int, t.NumData)
		for d := range row {
			row[d] = rng.Intn(np)
		}
		centers[w] = row
	}
	return cost.Schedule{Centers: centers}
}
