// Package verify is an independent referee for data schedules.
//
// The three schedulers in internal/sched all minimize over the same
// precomputed residence table built by internal/cost, so a bug in the
// table machinery or the cost model would corrupt every reported result
// in the same way and stay invisible to ordinary tests. This package
// deliberately shares none of that machinery: costs are recomputed
// directly from the trace with naive O(refs) summation and coordinate
// arithmetic, schedules are checked against the problem's structural
// invariants, and an exhaustive oracle recovers the true optimum on
// tiny instances by enumerating every center sequence.
//
// The package imports internal/cost only for the Schedule container; it
// never touches the residence-table builder or the model's distance
// cache, so an error there cannot leak into the referee.
package verify

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// Breakdown is the referee's independently recomputed cost split. It
// mirrors the shape of the cost model's breakdown so the two can be
// compared field by field, but is produced by a different code path.
type Breakdown struct {
	Residence int64
	Move      int64
}

// Total returns the combined communication cost.
func (b Breakdown) Total() int64 { return b.Residence + b.Move }

// manhattan computes the x-y routing distance between two linear
// processor indices from coordinates alone — no shared distance table.
func manhattan(g grid.Grid, a, b int) int {
	ca, cb := g.Coord(a), g.Coord(b)
	dx, dy := ca.X-cb.X, ca.Y-cb.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Check enforces the structural invariants of a schedule against its
// trace:
//
//   - the schedule covers exactly the trace's execution windows;
//   - every window assigns exactly one center to every data item (the
//     paper's single-copy residency);
//   - every center is a processor of the array; and
//   - with capacity > 0, no processor holds more than capacity items in
//     any window.
//
// Check never panics, whatever the center matrix looks like; malformed
// schedules yield descriptive errors.
func Check(t *trace.Trace, s cost.Schedule, capacity int) error {
	if t == nil {
		return fmt.Errorf("verify: nil trace")
	}
	if len(s.Centers) != t.NumWindows() {
		return fmt.Errorf("verify: schedule covers %d windows, trace has %d", len(s.Centers), t.NumWindows())
	}
	np := t.Grid.NumProcs()
	occ := make([]int, np)
	for w, row := range s.Centers {
		if len(row) != t.NumData {
			return fmt.Errorf("verify: window %d assigns %d centers, trace has %d data items", w, len(row), t.NumData)
		}
		for i := range occ {
			occ[i] = 0
		}
		for d, c := range row {
			if c < 0 || c >= np {
				return fmt.Errorf("verify: window %d data %d on processor %d outside %v array", w, d, c, t.Grid)
			}
			occ[c]++
			if capacity > 0 && occ[c] > capacity {
				return fmt.Errorf("verify: window %d processor %d holds more than %d items", w, c, capacity)
			}
		}
	}
	return nil
}

// Cost recomputes the total communication cost of a schedule directly
// from the trace, assuming unit data sizes (the paper's default): every
// reference event is charged volume times the x-y distance to the
// window's center for the referenced item, and every center change
// between consecutive windows is charged the distance traveled.
func Cost(t *trace.Trace, s cost.Schedule) (Breakdown, error) {
	return CostWithSizes(t, s, nil)
}

// CostWithSizes is Cost with explicit per-item movement sizes, for
// traces whose items model coarser blocks. sizes may be nil (all ones)
// or must have one entry per data item.
func CostWithSizes(t *trace.Trace, s cost.Schedule, sizes []int) (Breakdown, error) {
	if t == nil {
		return Breakdown{}, fmt.Errorf("verify: nil trace")
	}
	if err := t.Validate(); err != nil {
		return Breakdown{}, fmt.Errorf("verify: %v", err)
	}
	if err := Check(t, s, 0); err != nil {
		return Breakdown{}, err
	}
	if sizes != nil && len(sizes) != t.NumData {
		return Breakdown{}, fmt.Errorf("verify: %d sizes for %d data items", len(sizes), t.NumData)
	}
	var bd Breakdown
	for w := range t.Windows {
		row := s.Centers[w]
		for _, r := range t.Windows[w].Refs {
			bd.Residence += int64(r.Volume) * int64(manhattan(t.Grid, r.Proc, row[r.Data]))
		}
	}
	for d := 0; d < t.NumData; d++ {
		size := 1
		if sizes != nil {
			size = sizes[d]
		}
		for w := 1; w < len(s.Centers); w++ {
			bd.Move += int64(size) * int64(manhattan(t.Grid, s.Centers[w-1][d], s.Centers[w][d]))
		}
	}
	return bd, nil
}

// CrossCheck recomputes a schedule's cost from scratch and compares it
// against the breakdown the cost model claims. A nil return proves the
// two independent evaluators agree exactly; any divergence — in either
// component — is reported with both values so the failing layer is
// identifiable.
func CrossCheck(t *trace.Trace, s cost.Schedule, sizes []int, claimed Breakdown) error {
	got, err := CostWithSizes(t, s, sizes)
	if err != nil {
		return err
	}
	if got != claimed {
		return fmt.Errorf("verify: cost divergence: model claims residence %d + movement %d = %d, independent recomputation gives residence %d + movement %d = %d",
			claimed.Residence, claimed.Move, claimed.Total(), got.Residence, got.Move, got.Total())
	}
	return nil
}
