package verify_test

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/costgraph"
	"repro/internal/grid"
)

// pathCostFromScratch re-prices a layered path with nothing but
// coordinate arithmetic — the referee-side ground truth neither DP
// kernel shares code with.
func pathCostFromScratch(nodeCost [][]int64, w int, size int64, path []int) int64 {
	var total int64
	for l, p := range path {
		total += nodeCost[l][p]
		if l > 0 {
			q := path[l-1]
			dx, dy := p%w-q%w, p/w-q/w
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			total += size * int64(dx+dy)
		}
	}
	return total
}

// checkLayeredKernelsAgree runs both DP kernels on one instance and
// demands: equal total cost (the acceptance bar), identical paths (the
// sweep reproduces the dense tie-breaks), the referee's from-scratch
// path pricing matching the claimed total, and no forbidden vertex on
// the returned path.
func checkLayeredKernelsAgree(t *testing.T, nodeCost [][]int64, w, h int, size int64, label string) {
	t.Helper()
	naiveTotal, naivePath := costgraph.ShortestLayeredPathNaive(nodeCost, w, h, size)
	sweepTotal, sweepPath := costgraph.ShortestLayeredPathGrid(nodeCost, w, h, size)
	if sweepTotal != naiveTotal {
		t.Fatalf("%s (%dx%d, size %d): sweep total %d != naive total %d\nnodeCost=%v",
			label, w, h, size, sweepTotal, naiveTotal, nodeCost)
	}
	if !reflect.DeepEqual(sweepPath, naivePath) {
		t.Fatalf("%s (%dx%d, size %d): sweep path %v != naive path %v (cost %d)\nnodeCost=%v",
			label, w, h, size, sweepPath, naivePath, sweepTotal, nodeCost)
	}
	if sweepTotal == costgraph.Inf {
		if sweepPath != nil {
			t.Fatalf("%s: blocked instance returned path %v", label, sweepPath)
		}
		return
	}
	if got := pathCostFromScratch(nodeCost, w, size, sweepPath); got != sweepTotal {
		t.Fatalf("%s: path %v re-prices to %d, kernel claimed %d", label, sweepPath, got, sweepTotal)
	}
	for l, p := range sweepPath {
		if nodeCost[l][p] == costgraph.Inf {
			t.Fatalf("%s: path %v stands on forbidden vertex at layer %d", label, sweepPath, l)
		}
	}
}

// randomLayeredInstance draws a layered DP instance: grids down to 1xN
// and Nx1, tie-heavy small costs (many equal alternatives exercise the
// tie-break rules), random Inf forbidden vertices, and sizes 0..3.
func randomLayeredInstance(rng *rand.Rand) (nodeCost [][]int64, w, h int, size int64) {
	w, h = 1+rng.Intn(6), 1+rng.Intn(6)
	switch rng.Intn(4) {
	case 0:
		h = 1 // 1xN row array
	case 1:
		w = 1 // Nx1 column array
	}
	layers := 1 + rng.Intn(6)
	forbidP := rng.Intn(4) // 0..3 in 10 => up to 30% forbidden
	nodeCost = make([][]int64, layers)
	for l := range nodeCost {
		row := make([]int64, w*h)
		for p := range row {
			if rng.Intn(10) < forbidP {
				row[p] = costgraph.Inf
			} else {
				row[p] = int64(rng.Intn(5))
			}
		}
		nodeCost[l] = row
	}
	return nodeCost, w, h, int64(rng.Intn(4))
}

// TestLayeredKernelsAgree is the differential gate for the DP-kernel
// swap: on 160 seeded instances the separable sweep kernel and the
// dense relaxation must return bit-identical totals and paths, and the
// paths must survive independent re-pricing.
func TestLayeredKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	const instances = 160
	for i := 0; i < instances; i++ {
		nodeCost, w, h, size := randomLayeredInstance(rng)
		checkLayeredKernelsAgree(t, nodeCost, w, h, size, "instance "+strconv.Itoa(i))
	}
}

// TestLayeredKernelsDegenerate drives both kernels through the shapes
// where a separability or tie-break bug would hide: degenerate arrays,
// all-tied costs, fully and partially blocked layers, and free moves.
func TestLayeredKernelsDegenerate(t *testing.T) {
	inf := int64(costgraph.Inf)
	cases := []struct {
		name     string
		w, h     int
		size     int64
		nodeCost [][]int64
	}{
		{"1x1-two-layers", 1, 1, 5, [][]int64{{3}, {4}}},
		{"1xN-row", 5, 1, 2, [][]int64{{9, 0, 0, 0, 9}, {0, 9, 9, 9, 0}}},
		{"Nx1-column", 1, 5, 2, [][]int64{{9, 0, 0, 0, 9}, {0, 9, 9, 9, 0}}},
		{"all-ties", 3, 3, 1, [][]int64{
			{1, 1, 1, 1, 1, 1, 1, 1, 1},
			{1, 1, 1, 1, 1, 1, 1, 1, 1},
			{1, 1, 1, 1, 1, 1, 1, 1, 1},
		}},
		{"zero-size-free-moves", 2, 2, 0, [][]int64{{5, 1, 2, 3}, {4, 4, 0, 4}}},
		{"forbidden-wall", 3, 1, 1, [][]int64{{0, inf, 5}, {0, inf, 0}, {5, inf, 0}}},
		{"blocked-layer", 2, 2, 1, [][]int64{{0, 1, 2, 3}, {inf, inf, inf, inf}}},
		{"forbidden-first-layer", 2, 2, 1, [][]int64{{inf, inf, inf, 2}, {1, inf, inf, inf}}},
		{"single-survivor", 2, 3, 3, [][]int64{
			{inf, inf, inf, 7, inf, inf},
			{inf, inf, inf, inf, inf, 1},
			{2, inf, inf, inf, inf, inf},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkLayeredKernelsAgree(t, tc.nodeCost, tc.w, tc.h, tc.size, tc.name)
		})
	}
}

// TestLayeredKernelSolverReuse reuses one Solver across differently
// blocked instances of the same shape: scratch from an earlier item
// must not leak into a later solve.
func TestLayeredKernelSolverReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2028))
	solvers := map[grid.Grid]*costgraph.Solver{}
	for i := 0; i < 80; i++ {
		nodeCost, w, h, size := randomLayeredInstance(rng)
		key := grid.New(w, h)
		s := solvers[key]
		if s == nil {
			s = costgraph.NewSolver(w, h)
			solvers[key] = s
		}
		freshTotal, freshPath := costgraph.ShortestLayeredPathGrid(nodeCost, w, h, size)
		gotTotal, gotPath := s.Solve(nodeCost, size)
		if gotTotal != freshTotal || !reflect.DeepEqual(gotPath, freshPath) {
			t.Fatalf("instance %d (%dx%d): reused solver (%d, %v) != fresh (%d, %v)",
				i, w, h, gotTotal, gotPath, freshTotal, freshPath)
		}
	}
}

// FuzzLayeredKernels lets the fuzzer pick the instance: whatever
// layered DP the seed generates, the sweep and dense kernels must
// agree on total and path, with the referee re-pricing the result.
func FuzzLayeredKernels(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(-1))
	f.Add(int64(2027))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		nodeCost, w, h, size := randomLayeredInstance(rng)
		checkLayeredKernelsAgree(t, nodeCost, w, h, size, "fuzz")
	})
}
