package verify

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/trace"
)

func TestOptimalSingleWindowByHand(t *testing.T) {
	// One item on a 2x2 array: processor 0 (corner (0,0)) needs it once,
	// processor 3 (corner (1,1)) three times. Storing at 3 costs 2 (the
	// single far reference travels 2 hops); every other center is worse.
	tr := trace.New(grid.Square(2), 1)
	w := tr.AddWindow()
	w.AddVolume(0, 0, 1)
	w.AddVolume(3, 0, 3)
	bd, s, err := Optimal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() != 2 || bd.Move != 0 {
		t.Fatalf("breakdown = %+v, want total 2 with no movement", bd)
	}
	if s.Centers[0][0] != 3 {
		t.Fatalf("optimal center = %d, want 3", s.Centers[0][0])
	}
}

func TestOptimalTradesMovementAgainstResidence(t *testing.T) {
	// 1x3 row: heavy use at processor 0 in window 0, heavy use at
	// processor 2 in window 1. Moving the item (2 hops) beats serving
	// either window remotely (3 x 2 hops).
	tr := trace.New(grid.New(3, 1), 1)
	tr.AddWindow().AddVolume(0, 0, 3)
	tr.AddWindow().AddVolume(2, 0, 3)
	bd, s, err := Optimal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Centers[0][0] != 0 || s.Centers[1][0] != 2 {
		t.Fatalf("centers = %v, want item to follow the references", s.Centers)
	}
	if bd.Residence != 0 || bd.Move != 2 {
		t.Fatalf("breakdown = %+v, want residence 0 move 2", bd)
	}
}

func TestOptimalScheduleCostsWhatItClaims(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		tr := RandomTrace(rng, g, 1+rng.Intn(4), 1+rng.Intn(4), 5)
		bd, s, err := Optimal(tr)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		recomputed, err := Cost(tr, s)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if recomputed != bd {
			t.Fatalf("iteration %d: oracle claims %+v, its schedule costs %+v", i, bd, recomputed)
		}
	}
}

func TestOptimalDominatesRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20; i++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		tr := RandomTrace(rng, g, 1+rng.Intn(4), 1+rng.Intn(4), 5)
		bd, _, err := Optimal(tr)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		for j := 0; j < 20; j++ {
			other, err := Cost(tr, RandomSchedule(rng, tr))
			if err != nil {
				t.Fatal(err)
			}
			if other.Total() < bd.Total() {
				t.Fatalf("iteration %d: random schedule cost %d beats oracle optimum %d", i, other.Total(), bd.Total())
			}
		}
	}
}

func TestOptimalLimits(t *testing.T) {
	big := trace.New(grid.Square(4), 1) // 16 processors > MaxProcs 9
	big.AddWindow().Add(0, 0)
	if _, _, err := Optimal(big); err == nil {
		t.Error("oversized array accepted")
	}
	wide := trace.New(grid.Square(2), 1)
	for i := 0; i < 5; i++ { // 5 windows > MaxWindows 4
		wide.AddWindow().Add(0, 0)
	}
	if _, _, err := Optimal(wide); err == nil {
		t.Error("too many windows accepted")
	}
	many := trace.New(grid.Square(2), 5) // 5 items > MaxData 4
	many.AddWindow().Add(0, 4)
	if _, _, err := Optimal(many); err == nil {
		t.Error("too many items accepted")
	}
	// The same instance passes with wider explicit bounds.
	if _, _, err := OptimalBounded(many, Limits{MaxProcs: 9, MaxWindows: 4, MaxData: 8}); err != nil {
		t.Errorf("widened bounds rejected: %v", err)
	}
	if _, _, err := Optimal(nil); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestOptimalEmptyTrace(t *testing.T) {
	tr := trace.New(grid.Square(2), 2)
	bd, s, err := Optimal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() != 0 || len(s.Centers) != 0 {
		t.Fatalf("empty trace: breakdown %+v, %d windows", bd, len(s.Centers))
	}
}
