package stats

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestComputeHandExample(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 2)
	w0 := tr.AddWindow()
	w0.AddVolume(0, 0, 2) // local if item 0 at proc 0
	w0.Add(3, 1)          // remote (item 1 at proc 0): dist 2
	w1 := tr.AddWindow()
	w1.Add(3, 0)
	p := sched.NewProblem(tr, 0)
	// Item 0: proc 0 then proc 3 (moves); item 1: proc 0 always.
	s := cost.Schedule{Centers: [][]int{{0, 0}, {3, 0}}}
	st := Compute(p, s)

	if st.Moves != 1 || st.MoveDistance != 2 {
		t.Errorf("moves=%d dist=%d, want 1/2", st.Moves, st.MoveDistance)
	}
	if st.PerWindowMove[0] != 0 || st.PerWindowMove[1] != 2 {
		t.Errorf("move series = %v", st.PerWindowMove)
	}
	// Window 0 residence: item0 local (0) + item1 dist 2 = 2; window 1:
	// item0 at 3 local = 0.
	if st.PerWindowResidence[0] != 2 || st.PerWindowResidence[1] != 0 {
		t.Errorf("residence series = %v", st.PerWindowResidence)
	}
	// Volumes: total 2+1+1 = 4; local: item0 w0 (2) + item0 w1 (1) = 3.
	if st.TotalVolume != 4 || st.LocalVolume != 3 {
		t.Errorf("volumes %d/%d", st.LocalVolume, st.TotalVolume)
	}
	if got := st.Locality(); got != 0.75 {
		t.Errorf("Locality = %v", got)
	}
	// Weighted distance: 1 unit at dist 2 -> avg = 2/4.
	if st.AvgRefDistance != 0.5 {
		t.Errorf("AvgRefDistance = %v", st.AvgRefDistance)
	}
	// Occupancy: window 0 has both items on proc 0 -> max 2.
	if st.MaxOccupancy != 2 {
		t.Errorf("MaxOccupancy = %d", st.MaxOccupancy)
	}
	if st.OccupancyCV <= 0 {
		t.Errorf("OccupancyCV = %v, want > 0 for unbalanced placement", st.OccupancyCV)
	}
}

// The per-window series must sum to the model's costs.
func TestSeriesSumToModelCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for iter := 0; iter < 30; iter++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := 1 + rng.Intn(5)
		tr := trace.New(g, nd)
		for w := 0; w < 1+rng.Intn(5); w++ {
			win := tr.AddWindow()
			for r := 0; r < rng.Intn(10); r++ {
				win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
			}
		}
		p := sched.NewProblem(tr, 0)
		s, err := sched.LOMCDS{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		st := Compute(p, s)
		var res, move int64
		for w := range st.PerWindowResidence {
			res += st.PerWindowResidence[w]
			move += st.PerWindowMove[w]
		}
		if res != p.Model.ResidenceCost(s) {
			t.Fatalf("iter %d: residence series sums to %d, model says %d", iter, res, p.Model.ResidenceCost(s))
		}
		if move != p.Model.MoveCost(s) {
			t.Fatalf("iter %d: move series sums to %d, model says %d", iter, move, p.Model.MoveCost(s))
		}
	}
}

func TestEmptySchedule(t *testing.T) {
	tr := trace.New(grid.Square(2), 2)
	p := sched.NewProblem(tr, 0)
	st := Compute(p, cost.Schedule{})
	if st.TotalVolume != 0 || st.Locality() != 0 || st.Moves != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestComputeTrace(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 3)
	w0 := tr.AddWindow()
	w0.Add(0, 0) // item 0: 1 reader
	w0.Add(1, 0) // item 0: 2nd reader
	w0.Add(2, 1)
	tr.AddWindow() // empty window
	w2 := tr.AddWindow()
	w2.AddVolume(3, 0, 4)

	st := ComputeTrace(tr)
	if st.Windows != 3 || st.Items != 3 || st.Refs != 4 {
		t.Fatalf("shape: %+v", st)
	}
	if st.TotalVolume != 7 {
		t.Errorf("TotalVolume = %d", st.TotalVolume)
	}
	// Sharing: item0@w0 has 2 readers, item1@w0 has 1, item0@w2 has 1
	// -> mean 4/3.
	if st.SharingDegree < 1.33 || st.SharingDegree > 1.34 {
		t.Errorf("SharingDegree = %v", st.SharingDegree)
	}
	// Reuse: item 0 seen at w0 then w2 -> distance 2, one sample.
	if st.ReuseDistance != 2 {
		t.Errorf("ReuseDistance = %v", st.ReuseDistance)
	}
	// Hot item: item 0 (volume 6) first.
	if len(st.HotItems) == 0 || st.HotItems[0] != 0 {
		t.Errorf("HotItems = %v", st.HotItems)
	}
}

func TestComputeTraceOnBenchmarks(t *testing.T) {
	g := grid.Square(4)
	lu := workload.LU{}.Generate(8, g)
	st := ComputeTrace(lu)
	if st.SharingDegree <= 1 {
		t.Errorf("LU sharing degree %v, want > 1 (pivot row/column broadcast)", st.SharingDegree)
	}
	if len(st.HotItems) != 10 {
		t.Errorf("HotItems length %d", len(st.HotItems))
	}
	// LU's hottest element is an early diagonal/pivot-adjacent element,
	// certainly referenced more than a last-row element... just assert
	// descending volume ordering.
	counts := lu.BuildCounts()
	vol := func(d trace.DataID) int64 {
		var v int64
		for w := range counts {
			for _, x := range counts[w][d] {
				v += int64(x)
			}
		}
		return v
	}
	for i := 1; i < len(st.HotItems); i++ {
		if vol(st.HotItems[i-1]) < vol(st.HotItems[i]) {
			t.Fatalf("hot items not sorted by volume at %d", i)
		}
	}
}

func TestGOMCDSImprovesLocalityOverBaseline(t *testing.T) {
	g := grid.Square(4)
	tr := workload.MatSquare{}.Generate(8, g)
	p := sched.NewProblem(tr, 0)
	base := cost.Uniform(make([]int, tr.NumData), tr.NumWindows()) // all items on proc 0
	gom, err := sched.GOMCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if Compute(p, gom).Locality() <= Compute(p, base).Locality() {
		t.Error("GOMCDS locality not better than everything-on-proc-0")
	}
}
