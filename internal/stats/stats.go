// Package stats computes descriptive statistics of traces and
// schedules: per-window cost series, movement profiles, locality, and
// memory-occupancy balance. The CLI tools use it to explain *why* one
// schedule beats another, beyond the single total-cost number of the
// paper's tables.
package stats

import (
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/sched"
	"repro/internal/trace"
)

// ScheduleStats summarizes one schedule against its problem.
type ScheduleStats struct {
	// PerWindowResidence[w] is window w's reference-serving cost.
	PerWindowResidence []int64
	// PerWindowMove[w] is the movement cost paid entering window w
	// (index 0 is always zero).
	PerWindowMove []int64
	// Moves counts item relocations across all window boundaries.
	Moves int
	// MoveDistance is the total distance moved (unweighted by size).
	MoveDistance int64
	// LocalVolume is the reference volume served at distance zero;
	// TotalVolume is all reference volume. Locality() derives the rate.
	LocalVolume, TotalVolume int64
	// AvgRefDistance is the volume-weighted mean serving distance.
	AvgRefDistance float64
	// MaxOccupancy is the largest number of items any processor holds
	// in any window; OccupancyCV is the coefficient of variation of the
	// per-processor occupancy averaged over windows (0 = perfectly
	// balanced memory load).
	MaxOccupancy int
	OccupancyCV  float64
}

// Locality returns the fraction of reference volume served locally.
func (s ScheduleStats) Locality() float64 {
	if s.TotalVolume == 0 {
		return 0
	}
	return float64(s.LocalVolume) / float64(s.TotalVolume)
}

// Compute derives the statistics of a schedule.
func Compute(p *sched.Problem, s cost.Schedule) ScheduleStats {
	nw, nd, np := p.Model.NumWindows(), p.Model.NumData, p.Model.Grid.NumProcs()
	out := ScheduleStats{
		PerWindowResidence: make([]int64, nw),
		PerWindowMove:      make([]int64, nw),
	}
	counts := p.Model.Counts()
	var weightedDist int64
	var cvSum float64
	for w := 0; w < nw; w++ {
		occupancy := make([]int64, np)
		for d := 0; d < nd; d++ {
			c := s.Centers[w][d]
			occupancy[c]++
			out.PerWindowResidence[w] += p.Table.At(w, d, c)
			for proc, v := range counts[w][d] {
				if v == 0 {
					continue
				}
				out.TotalVolume += int64(v)
				dist := p.Model.Dist(proc, c)
				if dist == 0 {
					out.LocalVolume += int64(v)
				}
				weightedDist += int64(v) * int64(dist)
			}
			if w > 0 {
				prev := s.Centers[w-1][d]
				if prev != c {
					out.Moves++
					out.MoveDistance += int64(p.Model.Dist(prev, c))
				}
			}
		}
		for _, o := range occupancy {
			if int(o) > out.MaxOccupancy {
				out.MaxOccupancy = int(o)
			}
		}
		cvSum += coefficientOfVariation(occupancy)
	}
	// Movement cost series (size-weighted), computed cleanly.
	for w := 1; w < nw; w++ {
		var move int64
		for d := 0; d < nd; d++ {
			move += int64(p.Model.DataSize[d]) * int64(p.Model.Dist(s.Centers[w-1][d], s.Centers[w][d]))
		}
		out.PerWindowMove[w] = move
	}
	if out.TotalVolume > 0 {
		out.AvgRefDistance = float64(weightedDist) / float64(out.TotalVolume)
	}
	if nw > 0 {
		out.OccupancyCV = cvSum / float64(nw)
	}
	return out
}

func coefficientOfVariation(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// TraceStats summarizes a trace's reference behaviour, independent of
// any schedule.
type TraceStats struct {
	Windows, Items, Refs int
	TotalVolume          int64
	// SharingDegree is the mean number of distinct processors
	// referencing an item within a window (over referenced items) — the
	// broadcast pressure replication exploits.
	SharingDegree float64
	// ReuseDistance is the mean number of windows between consecutive
	// windows referencing the same item.
	ReuseDistance float64
	// HotItems lists the IDs of the most-referenced items, descending.
	HotItems []trace.DataID
}

// ComputeTrace derives trace statistics.
func ComputeTrace(t *trace.Trace) TraceStats {
	counts := t.BuildCounts()
	out := TraceStats{Windows: t.NumWindows(), Items: t.NumData, Refs: t.NumRefs()}
	sharingSamples := 0
	var sharingSum int64
	lastSeen := make([]int, t.NumData)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var reuseSum int64
	reuseSamples := 0
	itemVolume := make([]int64, t.NumData)
	for w := range counts {
		for d := 0; d < t.NumData; d++ {
			readers := 0
			for _, v := range counts[w][d] {
				if v != 0 {
					readers++
					out.TotalVolume += int64(v)
					itemVolume[d] += int64(v)
				}
			}
			if readers > 0 {
				sharingSum += int64(readers)
				sharingSamples++
				if lastSeen[d] >= 0 {
					reuseSum += int64(w - lastSeen[d])
					reuseSamples++
				}
				lastSeen[d] = w
			}
		}
	}
	if sharingSamples > 0 {
		out.SharingDegree = float64(sharingSum) / float64(sharingSamples)
	}
	if reuseSamples > 0 {
		out.ReuseDistance = float64(reuseSum) / float64(reuseSamples)
	}
	ids := make([]trace.DataID, t.NumData)
	for i := range ids {
		ids[i] = trace.DataID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if itemVolume[ids[a]] != itemVolume[ids[b]] {
			return itemVolume[ids[a]] > itemVolume[ids[b]]
		}
		return ids[a] < ids[b]
	})
	n := 10
	if n > len(ids) {
		n = len(ids)
	}
	out.HotItems = ids[:n]
	return out
}
