// Package coarse provides multilevel data scheduling: when the data
// space is too large to schedule item by item, items are aggregated
// into blocks (tiles of the data matrix, or any user partition), the
// block-level trace is scheduled with the ordinary algorithms, and the
// block placement is expanded back to the items. The cost model
// composes cleanly because a block's residence row is the sum of its
// members' rows; the trade-off — scheduling speed against placement
// granularity — is measured by the coarsening ablation in the
// experiments package.
package coarse

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/trace"
)

// Map aggregates fine data items into coarse blocks: Block[d] is the
// block of item d. Blocks must be dense (0..NumBlocks-1).
type Map struct {
	Block     []int
	NumBlocks int
}

// Validate checks density and range.
func (m Map) Validate() error {
	if m.NumBlocks < 0 {
		return fmt.Errorf("coarse: negative block count %d", m.NumBlocks)
	}
	seen := make([]bool, m.NumBlocks)
	for d, b := range m.Block {
		if b < 0 || b >= m.NumBlocks {
			return fmt.Errorf("coarse: item %d in block %d outside [0,%d)", d, b, m.NumBlocks)
		}
		seen[b] = true
	}
	for b, ok := range seen {
		if !ok {
			return fmt.Errorf("coarse: block %d is empty", b)
		}
	}
	return nil
}

// BlockSizes returns the number of items in each block.
func (m Map) BlockSizes() []int {
	sizes := make([]int, m.NumBlocks)
	for _, b := range m.Block {
		sizes[b]++
	}
	return sizes
}

// MaxBlockSize returns the largest block.
func (m Map) MaxBlockSize() int {
	max := 0
	for _, s := range m.BlockSizes() {
		if s > max {
			max = s
		}
	}
	return max
}

// TileMatrix partitions a data matrix into tile x tile blocks in
// row-major block order (ragged edges allowed). tile must be positive.
func TileMatrix(m trace.Matrix, tile int) Map {
	if tile <= 0 {
		panic(fmt.Sprintf("coarse: non-positive tile size %d", tile))
	}
	bCols := (m.Cols + tile - 1) / tile
	bRows := (m.Rows + tile - 1) / tile
	out := Map{Block: make([]int, m.NumElements()), NumBlocks: bRows * bCols}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Block[m.ID(i, j)] = (i/tile)*bCols + j/tile
		}
	}
	return out
}

// Coarsen rewrites a trace over blocks: every reference to an item
// becomes a reference to its block, volumes preserved. Scheduling the
// result is equivalent to scheduling the original under the constraint
// that a block's items stay together.
func Coarsen(t *trace.Trace, m Map) (*trace.Trace, error) {
	if len(m.Block) != t.NumData {
		return nil, fmt.Errorf("coarse: map covers %d items, trace has %d", len(m.Block), t.NumData)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := trace.New(t.Grid, m.NumBlocks)
	for i := range t.Windows {
		w := out.AddWindow()
		for _, r := range t.Windows[i].Refs {
			w.Refs = append(w.Refs, trace.Ref{Proc: r.Proc, Data: trace.DataID(m.Block[r.Data]), Volume: r.Volume})
		}
	}
	return out, nil
}

// Expand turns a block-level schedule into an item-level schedule:
// every item sits where its block sits.
func Expand(blockSched cost.Schedule, m Map) cost.Schedule {
	out := cost.Schedule{Centers: make([][]int, len(blockSched.Centers))}
	for w := range blockSched.Centers {
		row := make([]int, len(m.Block))
		for d, b := range m.Block {
			row[d] = blockSched.Centers[w][b]
		}
		out.Centers[w] = row
	}
	return out
}

// CoarseCapacity converts a per-processor item capacity into a safe
// block capacity: a processor holding that many blocks can never exceed
// the item capacity, whatever the block mix (conservative: divides by
// the largest block). Returns 0 (unbounded) when the item capacity is
// unbounded.
func CoarseCapacity(itemCapacity int, m Map) int {
	if itemCapacity <= 0 {
		return 0
	}
	max := m.MaxBlockSize()
	if max == 0 {
		return 0
	}
	c := itemCapacity / max
	if c < 1 {
		c = 1 // the expansion may then exceed the fine capacity; callers
		// must coarsen less aggressively if that matters
	}
	return c
}
