package coarse

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestTileMatrix(t *testing.T) {
	m := trace.SquareMatrix(4)
	tm := TileMatrix(m, 2)
	if tm.NumBlocks != 4 {
		t.Fatalf("blocks = %d", tm.NumBlocks)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	// (0,0) and (1,1) in block 0; (0,2) in block 1; (2,0) in block 2.
	if tm.Block[m.ID(0, 0)] != 0 || tm.Block[m.ID(1, 1)] != 0 {
		t.Error("top-left tile wrong")
	}
	if tm.Block[m.ID(0, 2)] != 1 || tm.Block[m.ID(2, 0)] != 2 || tm.Block[m.ID(3, 3)] != 3 {
		t.Error("tile layout wrong")
	}
	if tm.MaxBlockSize() != 4 {
		t.Errorf("MaxBlockSize = %d", tm.MaxBlockSize())
	}
}

func TestTileMatrixRagged(t *testing.T) {
	m := trace.Matrix{Rows: 5, Cols: 3}
	tm := TileMatrix(m, 2)
	if tm.NumBlocks != 3*2 {
		t.Fatalf("blocks = %d", tm.NumBlocks)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := tm.BlockSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != m.NumElements() {
		t.Fatalf("block sizes sum to %d, want %d", total, m.NumElements())
	}
}

func TestTileMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero tile did not panic")
		}
	}()
	TileMatrix(trace.SquareMatrix(4), 0)
}

func TestMapValidateErrors(t *testing.T) {
	if err := (Map{Block: []int{0, 5}, NumBlocks: 2}).Validate(); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := (Map{Block: []int{0, 0}, NumBlocks: 2}).Validate(); err == nil {
		t.Error("empty block accepted")
	}
	if err := (Map{Block: nil, NumBlocks: -1}).Validate(); err == nil {
		t.Error("negative block count accepted")
	}
}

func TestCoarsenPreservesVolumeAndWindows(t *testing.T) {
	g := grid.Square(4)
	tr := workload.LU{}.Generate(8, g)
	tm := TileMatrix(trace.SquareMatrix(8), 2)
	ct, err := Coarsen(tr, tm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	if ct.NumWindows() != tr.NumWindows() || ct.NumRefs() != tr.NumRefs() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", ct.NumWindows(), ct.NumRefs(), tr.NumWindows(), tr.NumRefs())
	}
	if ct.NumData != 16 {
		t.Fatalf("blocks = %d", ct.NumData)
	}
}

func TestCoarsenRejectsMismatch(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 4)
	tr.AddWindow().Add(0, 0)
	if _, err := Coarsen(tr, Map{Block: []int{0}, NumBlocks: 1}); err == nil {
		t.Error("short map accepted")
	}
}

func TestExpand(t *testing.T) {
	tm := Map{Block: []int{0, 0, 1}, NumBlocks: 2}
	blockSched := cost.Schedule{Centers: [][]int{{5, 9}}}
	fine := Expand(blockSched, tm)
	if fine.Centers[0][0] != 5 || fine.Centers[0][1] != 5 || fine.Centers[0][2] != 9 {
		t.Fatalf("expanded = %v", fine.Centers[0])
	}
}

// The expanded coarse schedule's cost on the fine model equals the
// block schedule's cost on the coarse model, when the block movement
// size equals the sum of its members' sizes.
func TestCoarseCostEquivalence(t *testing.T) {
	g := grid.Square(4)
	tr := workload.MatSquare{}.Generate(8, g)
	tm := TileMatrix(trace.SquareMatrix(8), 2)
	ct, err := Coarsen(tr, tm)
	if err != nil {
		t.Fatal(err)
	}
	cm := cost.NewModel(ct)
	for b, s := range tm.BlockSizes() {
		cm.DataSize[b] = s // moving a block moves all its items
	}
	cp := sched.NewProblemFromModel(cm, 0)
	bs, err := sched.GOMCDS{}.Schedule(cp)
	if err != nil {
		t.Fatal(err)
	}
	fineModel := cost.NewModel(tr)
	fine := Expand(bs, tm)
	if got, want := fineModel.TotalCost(fine), cp.Model.TotalCost(bs); got != want {
		t.Fatalf("fine cost %d != coarse cost %d", got, want)
	}
}

// Coarse scheduling is an upper bound on the fine optimum.
func TestCoarseNeverBeatsFine(t *testing.T) {
	g := grid.Square(4)
	for _, b := range workload.PaperBenchmarks()[:2] {
		tr := b.Gen.Generate(8, g)
		fineP := sched.NewProblem(tr, 0)
		fineS, err := sched.GOMCDS{}.Schedule(fineP)
		if err != nil {
			t.Fatal(err)
		}
		fineCost := fineP.Model.TotalCost(fineS)

		tm := TileMatrix(trace.SquareMatrix(8), 2)
		ct, err := Coarsen(tr, tm)
		if err != nil {
			t.Fatal(err)
		}
		cm := cost.NewModel(ct)
		for blk, s := range tm.BlockSizes() {
			cm.DataSize[blk] = s
		}
		cp := sched.NewProblemFromModel(cm, 0)
		bs, err := sched.GOMCDS{}.Schedule(cp)
		if err != nil {
			t.Fatal(err)
		}
		coarseCost := fineP.Model.TotalCost(Expand(bs, tm))
		if coarseCost < fineCost {
			t.Errorf("benchmark %d: coarse %d < fine optimum %d", b.ID, coarseCost, fineCost)
		}
	}
}

func TestCoarseCapacity(t *testing.T) {
	tm := Map{Block: []int{0, 0, 0, 1}, NumBlocks: 2} // max block 3
	if got := CoarseCapacity(9, tm); got != 3 {
		t.Errorf("CoarseCapacity(9) = %d, want 3", got)
	}
	if got := CoarseCapacity(2, tm); got != 1 {
		t.Errorf("CoarseCapacity(2) = %d, want floor of 1", got)
	}
	if got := CoarseCapacity(0, tm); got != 0 {
		t.Errorf("CoarseCapacity(0) = %d, want 0 (unbounded)", got)
	}
}

func BenchmarkCoarseVsFineGOMCDS(b *testing.B) {
	g := grid.Square(4)
	tr := workload.LU{}.Generate(32, g)
	tm := TileMatrix(trace.SquareMatrix(32), 4)
	ct, err := Coarsen(tr, tm)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fine", func(b *testing.B) {
		p := sched.NewProblem(tr, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := (sched.GOMCDS{}).Schedule(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coarse", func(b *testing.B) {
		p := sched.NewProblem(ct, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := (sched.GOMCDS{}).Schedule(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
