// Package placement provides the memory-capacity model of the PIM
// array and the straightforward initial data distributions the paper
// compares against (row-wise, column-wise, block and block-cyclic).
//
// A placement assigns every data item to exactly one processor — the
// paper's single-copy assumption. The proposed schedulers refine these
// assignments; the straightforward distributions serve as the "S.F."
// baseline column of Tables 1 and 2.
package placement

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/trace"
)

// Assignment maps each data item (by ID) to the linear index of the
// processor holding it. It describes the data layout for one execution
// window.
type Assignment []int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// Validate checks that every item is mapped to a processor inside the
// array and that no processor holds more than capacity items. A
// capacity of 0 or less means unbounded.
func (a Assignment) Validate(g grid.Grid, capacity int) error {
	used := make([]int, g.NumProcs())
	for d, p := range a {
		if p < 0 || p >= g.NumProcs() {
			return fmt.Errorf("placement: data %d on processor %d outside %v array", d, p, g)
		}
		used[p]++
	}
	if capacity > 0 {
		for p, n := range used {
			if n > capacity {
				return fmt.Errorf("placement: processor %d holds %d items, capacity %d", p, n, capacity)
			}
		}
	}
	return nil
}

// MinCapacity returns the smallest per-processor memory size (in data
// items) that can hold numData items on numProcs processors:
// ceil(numData / numProcs).
func MinCapacity(numData, numProcs int) int {
	if numProcs <= 0 {
		panic(fmt.Sprintf("placement: non-positive processor count %d", numProcs))
	}
	if numData <= 0 {
		return 0
	}
	return (numData + numProcs - 1) / numProcs
}

// PaperCapacity returns the per-processor memory size used in the
// paper's experiments: twice the minimum ("the memory size of processor
// is twice more than the minimum memory size it requires").
func PaperCapacity(numData, numProcs int) int {
	return 2 * MinCapacity(numData, numProcs)
}

// RowWise distributes the elements of the data matrix over the
// processors in row-major order: the matrix is linearized row by row
// and split into equal contiguous chunks, one per processor in linear
// (row-major) processor order. This is the straightforward baseline of
// the paper's experiments.
func RowWise(m trace.Matrix, g grid.Grid) Assignment {
	return contiguous(m.NumElements(), g.NumProcs(), func(d int) int { return d })
}

// ColumnWise distributes the elements in column-major order: the
// matrix is linearized column by column and split into equal contiguous
// chunks over the processors.
func ColumnWise(m trace.Matrix, g grid.Grid) Assignment {
	a := make(Assignment, m.NumElements())
	n := m.NumElements()
	np := g.NumProcs()
	chunk := MinCapacity(n, np)
	pos := 0
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			a[m.ID(i, j)] = pos / chunk
			pos++
		}
	}
	return a
}

// contiguous splits n linearized items into ceil(n/np)-sized chunks.
// order maps the contiguous position to the data ID it occupies.
func contiguous(n, np int, order func(pos int) int) Assignment {
	a := make(Assignment, n)
	if n == 0 {
		return a
	}
	chunk := MinCapacity(n, np)
	for pos := 0; pos < n; pos++ {
		a[order(pos)] = pos / chunk
	}
	return a
}

// Cyclic deals items to processors round-robin by data ID: item d goes
// to processor d mod numProcs. It is the one-dimensional block-cyclic
// distribution with block size one.
func Cyclic(numData int, g grid.Grid) Assignment {
	a := make(Assignment, numData)
	np := g.NumProcs()
	for d := range a {
		a[d] = d % np
	}
	return a
}

// Block2D tiles the data matrix into a (grid height x grid width)
// array of rectangular tiles and maps tile (ti, tj) to processor
// (x=tj, y=ti). Elements beyond an even split land in the last row or
// column of processors.
func Block2D(m trace.Matrix, g grid.Grid) Assignment {
	a := make(Assignment, m.NumElements())
	th := (m.Rows + g.Height() - 1) / g.Height()
	tw := (m.Cols + g.Width() - 1) / g.Width()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			ti, tj := i/th, j/tw
			if ti >= g.Height() {
				ti = g.Height() - 1
			}
			if tj >= g.Width() {
				tj = g.Width() - 1
			}
			a[m.ID(i, j)] = g.Index(grid.Coord{X: tj, Y: ti})
		}
	}
	return a
}

// BlockCyclic2D distributes the matrix block-cyclically with the given
// block size in both dimensions: block (bi, bj) goes to processor
// (x = bj mod W, y = bi mod H). Block-cyclic distributions are the
// layouts targeted by the redistribution literature the paper cites.
func BlockCyclic2D(m trace.Matrix, g grid.Grid, blockSize int) Assignment {
	if blockSize <= 0 {
		panic(fmt.Sprintf("placement: non-positive block size %d", blockSize))
	}
	a := make(Assignment, m.NumElements())
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			bi, bj := i/blockSize, j/blockSize
			a[m.ID(i, j)] = g.Index(grid.Coord{X: bj % g.Width(), Y: bi % g.Height()})
		}
	}
	return a
}

// Tracker tracks per-processor memory occupancy while a scheduler
// assigns data items one by one. Capacity 0 or less means unbounded.
type Tracker struct {
	capacity int
	used     []int
}

// NewTracker returns an occupancy tracker for numProcs processors with
// the given per-processor capacity.
func NewTracker(numProcs, capacity int) *Tracker {
	return &Tracker{capacity: capacity, used: make([]int, numProcs)}
}

// TryPlace reserves one memory slot on processor p if one is free and
// reports whether it succeeded.
func (t *Tracker) TryPlace(p int) bool {
	if t.capacity > 0 && t.used[p] >= t.capacity {
		return false
	}
	t.used[p]++
	return true
}

// Release frees one slot on processor p. It panics if p holds nothing,
// which would indicate unbalanced bookkeeping in a scheduler.
func (t *Tracker) Release(p int) {
	if t.used[p] <= 0 {
		panic(fmt.Sprintf("placement: release on empty processor %d", p))
	}
	t.used[p]--
}

// Used returns the number of occupied slots on processor p.
func (t *Tracker) Used(p int) int { return t.used[p] }

// Capacity returns the per-processor capacity (0 or less = unbounded).
func (t *Tracker) Capacity() int { return t.capacity }

// Reset clears all occupancy.
func (t *Tracker) Reset() {
	for i := range t.used {
		t.used[i] = 0
	}
}
