package placement

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/trace"
)

func TestMinCapacity(t *testing.T) {
	cases := []struct{ data, procs, want int }{
		{64, 16, 4},
		{65, 16, 5},
		{16, 16, 1},
		{15, 16, 1},
		{0, 16, 0},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := MinCapacity(c.data, c.procs); got != c.want {
			t.Errorf("MinCapacity(%d,%d) = %d, want %d", c.data, c.procs, got, c.want)
		}
	}
}

func TestPaperCapacity(t *testing.T) {
	// Paper example: 8x8 data on 4x4 array -> memory size eight.
	if got := PaperCapacity(64, 16); got != 8 {
		t.Fatalf("PaperCapacity(64,16) = %d, want 8", got)
	}
}

func TestMinCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinCapacity with zero procs did not panic")
		}
	}()
	MinCapacity(4, 0)
}

func TestRowWise(t *testing.T) {
	m := trace.SquareMatrix(8)
	g := grid.Square(4)
	a := RowWise(m, g)
	// 64 elements / 16 procs = 4 consecutive row-major elements each.
	if a[m.ID(0, 0)] != 0 || a[m.ID(0, 3)] != 0 || a[m.ID(0, 4)] != 1 {
		t.Errorf("row 0 assignment: %v %v %v", a[m.ID(0, 0)], a[m.ID(0, 3)], a[m.ID(0, 4)])
	}
	// Element (7,7) is the last item -> last processor.
	if a[m.ID(7, 7)] != 15 {
		t.Errorf("last element on proc %d", a[m.ID(7, 7)])
	}
	if err := a.Validate(g, MinCapacity(64, 16)); err != nil {
		t.Errorf("row-wise exceeds minimum capacity: %v", err)
	}
}

func TestColumnWise(t *testing.T) {
	m := trace.SquareMatrix(8)
	g := grid.Square(4)
	a := ColumnWise(m, g)
	// First column of the matrix fills procs 0 and 1.
	if a[m.ID(0, 0)] != 0 || a[m.ID(3, 0)] != 0 || a[m.ID(4, 0)] != 1 {
		t.Errorf("column 0 assignment: %v %v %v", a[m.ID(0, 0)], a[m.ID(3, 0)], a[m.ID(4, 0)])
	}
	if err := a.Validate(g, MinCapacity(64, 16)); err != nil {
		t.Errorf("column-wise exceeds minimum capacity: %v", err)
	}
}

func TestCyclic(t *testing.T) {
	g := grid.Square(2)
	a := Cyclic(10, g)
	for d, p := range a {
		if p != d%4 {
			t.Fatalf("Cyclic[%d] = %d", d, p)
		}
	}
}

func TestBlock2D(t *testing.T) {
	m := trace.SquareMatrix(8)
	g := grid.Square(4)
	a := Block2D(m, g)
	// Tile size 2x2: element (0,0) on proc (0,0); (0,2) on (1,0); (2,0) on (0,1).
	if a[m.ID(0, 0)] != g.Index(grid.Coord{X: 0, Y: 0}) {
		t.Errorf("(0,0) on %d", a[m.ID(0, 0)])
	}
	if a[m.ID(0, 2)] != g.Index(grid.Coord{X: 1, Y: 0}) {
		t.Errorf("(0,2) on %d", a[m.ID(0, 2)])
	}
	if a[m.ID(2, 0)] != g.Index(grid.Coord{X: 0, Y: 1}) {
		t.Errorf("(2,0) on %d", a[m.ID(2, 0)])
	}
	if err := a.Validate(g, MinCapacity(64, 16)); err != nil {
		t.Errorf("block 2D unbalanced: %v", err)
	}
}

func TestBlock2DRaggedClamps(t *testing.T) {
	// 5x5 matrix on 2x2 grid: tile size 3; elements in row/col >= 3 land
	// on the second row/column of processors, the rest clamp legally.
	m := trace.Matrix{Rows: 5, Cols: 5}
	g := grid.Square(2)
	a := Block2D(m, g)
	if err := a.Validate(g, 0); err != nil {
		t.Fatal(err)
	}
	if a[m.ID(4, 4)] != g.Index(grid.Coord{X: 1, Y: 1}) {
		t.Errorf("(4,4) on %d", a[m.ID(4, 4)])
	}
}

func TestBlockCyclic2D(t *testing.T) {
	m := trace.SquareMatrix(8)
	g := grid.Square(2)
	a := BlockCyclic2D(m, g, 2)
	// Block (0,0) -> proc (0,0); block (0,1) -> (1,0); block (0,2) -> (0,0) again.
	if a[m.ID(0, 0)] != 0 {
		t.Errorf("(0,0) on %d", a[m.ID(0, 0)])
	}
	if a[m.ID(0, 2)] != g.Index(grid.Coord{X: 1, Y: 0}) {
		t.Errorf("(0,2) on %d", a[m.ID(0, 2)])
	}
	if a[m.ID(0, 4)] != 0 {
		t.Errorf("(0,4) on %d", a[m.ID(0, 4)])
	}
	// Perfectly balanced: 64 items over 4 procs = 16 each.
	if err := a.Validate(g, 16); err != nil {
		t.Fatal(err)
	}
}

func TestBlockCyclicPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BlockCyclic2D(blockSize=0) did not panic")
		}
	}()
	BlockCyclic2D(trace.SquareMatrix(4), grid.Square(2), 0)
}

// Property: every baseline distribution places every item on a valid
// processor and respects the paper's 2x-minimum capacity.
func TestBaselinesRespectPaperCapacity(t *testing.T) {
	f := func(sizeSel, gridSel uint8) bool {
		n := []int{4, 8, 12, 16}[int(sizeSel)%4]
		gs := []int{2, 4}[int(gridSel)%2]
		m := trace.SquareMatrix(n)
		g := grid.Square(gs)
		cap := PaperCapacity(m.NumElements(), g.NumProcs())
		for _, a := range []Assignment{
			RowWise(m, g), ColumnWise(m, g), Cyclic(m.NumElements(), g),
			Block2D(m, g),
		} {
			if err := a.Validate(g, cap); err != nil {
				return false
			}
		}
		// Block-cyclic layouts may legally concentrate items when the
		// block grid does not cover the processor grid (e.g. a 4x4
		// matrix in 2x2 blocks has only 2x2 blocks to deal out), so it
		// is only checked for structural validity.
		return BlockCyclic2D(m, g, 2).Validate(g, 0) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateErrors(t *testing.T) {
	g := grid.Square(2)
	if err := (Assignment{0, 5}).Validate(g, 0); err == nil {
		t.Error("out-of-range processor accepted")
	}
	if err := (Assignment{0, -1}).Validate(g, 0); err == nil {
		t.Error("negative processor accepted")
	}
	if err := (Assignment{0, 0, 0}).Validate(g, 2); err == nil {
		t.Error("capacity violation accepted")
	}
	if err := (Assignment{0, 0, 0}).Validate(g, 0); err != nil {
		t.Errorf("unbounded capacity rejected: %v", err)
	}
}

func TestClone(t *testing.T) {
	a := Assignment{1, 2, 3}
	c := a.Clone()
	c[0] = 9
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(4, 2)
	if tr.Capacity() != 2 {
		t.Fatalf("Capacity = %d", tr.Capacity())
	}
	if !tr.TryPlace(0) || !tr.TryPlace(0) {
		t.Fatal("TryPlace failed under capacity")
	}
	if tr.TryPlace(0) {
		t.Fatal("TryPlace succeeded over capacity")
	}
	if tr.Used(0) != 2 {
		t.Fatalf("Used = %d", tr.Used(0))
	}
	tr.Release(0)
	if !tr.TryPlace(0) {
		t.Fatal("TryPlace failed after Release")
	}
	tr.Reset()
	if tr.Used(0) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestTrackerUnbounded(t *testing.T) {
	tr := NewTracker(1, 0)
	for i := 0; i < 100; i++ {
		if !tr.TryPlace(0) {
			t.Fatal("unbounded tracker refused placement")
		}
	}
}

func TestTrackerReleasePanicsWhenEmpty(t *testing.T) {
	tr := NewTracker(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("Release on empty did not panic")
		}
	}()
	tr.Release(0)
}
