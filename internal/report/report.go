// Package report renders the experiment results as aligned text tables
// in the layout of the paper's Tables 1 and 2.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Improvement returns the percentage improvement of value over base:
// (base - value) / base * 100. A zero base yields 0.
func Improvement(base, value int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(base-value) / float64(base) * 100
}

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row. Rows shorter than the header are padded with
// empty cells; longer rows panic, since that indicates a harness bug.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Header) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddF appends a row of formatted values: strings pass through,
// integers print as decimals, float64 as "%.1f".
func (t *Table) AddF(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = fmt.Sprintf("%.1f", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.Add(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return ""
	}
	return b.String()
}
