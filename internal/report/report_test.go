package report

import (
	"strings"
	"testing"
)

func TestImprovement(t *testing.T) {
	cases := []struct {
		base, value int64
		want        float64
	}{
		{100, 70, 30},
		{100, 100, 0},
		{100, 130, -30},
		{0, 50, 0},
		{200, 50, 75},
	}
	for _, c := range cases {
		if got := Improvement(c.base, c.value); got != c.want {
			t.Errorf("Improvement(%d,%d) = %v, want %v", c.base, c.value, got, c.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.Add("alpha", "1")
	tbl.Add("b", "22")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") || !strings.Contains(lines[1], "value") {
		t.Errorf("header = %q", lines[1])
	}
	// Columns aligned: "alpha" (5 chars) and "b" padded to 5.
	if !strings.HasPrefix(lines[3], "alpha  1") {
		t.Errorf("row 1 = %q", lines[3])
	}
	if !strings.HasPrefix(lines[4], "b      22") {
		t.Errorf("row 2 = %q", lines[4])
	}
}

func TestTableAddShortRow(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.Add("x")
	if tbl.NumRows() != 1 {
		t.Fatal("row not added")
	}
	if out := tbl.String(); !strings.Contains(out, "x") {
		t.Errorf("output %q", out)
	}
}

func TestTableAddLongRowPanics(t *testing.T) {
	tbl := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Error("long row did not panic")
		}
	}()
	tbl.Add("1", "2")
}

func TestAddF(t *testing.T) {
	tbl := NewTable("", "s", "i", "f")
	tbl.AddF("x", 42, 3.14159)
	out := tbl.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "3.1") {
		t.Errorf("AddF output %q", out)
	}
	if strings.Contains(out, "3.14159") {
		t.Errorf("float not rounded: %q", out)
	}
}

func TestNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.Add("1")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("empty title emitted a blank line")
	}
}
