package workload

import (
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/trace"
)

func TestBlockPartitionTiles(t *testing.T) {
	m := trace.SquareMatrix(8)
	g := grid.Square(4)
	// Tile size 2x2: iteration (0,0) on proc (0,0); (0,2) on (1,0);
	// (2,0) on (0,1); (7,7) on (3,3).
	cases := []struct {
		i, j int
		want grid.Coord
	}{
		{0, 0, grid.Coord{X: 0, Y: 0}},
		{0, 2, grid.Coord{X: 1, Y: 0}},
		{2, 0, grid.Coord{X: 0, Y: 1}},
		{7, 7, grid.Coord{X: 3, Y: 3}},
	}
	for _, c := range cases {
		if got := BlockPartition(m, g, c.i, c.j); got != g.Index(c.want) {
			t.Errorf("BlockPartition(%d,%d) = %d, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestRowPartition(t *testing.T) {
	m := trace.SquareMatrix(8)
	g := grid.Square(2) // 4 procs, 2 rows each
	if got := RowPartition(m, g, 0, 5); got != 0 {
		t.Errorf("row 0 -> %d", got)
	}
	if got := RowPartition(m, g, 7, 0); got != 3 {
		t.Errorf("row 7 -> %d", got)
	}
}

func TestCyclicPartition(t *testing.T) {
	m := trace.SquareMatrix(4)
	g := grid.Square(2)
	if got := CyclicPartition(m, g, 0, 0); got != 0 {
		t.Errorf("(0,0) -> %d", got)
	}
	if got := CyclicPartition(m, g, 0, 3); got != 3 {
		t.Errorf("(0,3) -> %d", got)
	}
	if got := CyclicPartition(m, g, 1, 0); got != 0 {
		t.Errorf("(1,0) -> %d", got)
	}
}

func TestPartitionByName(t *testing.T) {
	for _, name := range []string{"block", "row", "cyclic"} {
		if _, err := PartitionByName(name); err != nil {
			t.Errorf("PartitionByName(%q): %v", name, err)
		}
	}
	if _, err := PartitionByName("bogus"); err == nil {
		t.Error("bogus partition accepted")
	}
}

// All partitions keep every iteration on a valid processor.
func TestPartitionsInRange(t *testing.T) {
	for _, n := range []int{3, 8, 17} {
		m := trace.SquareMatrix(n)
		for _, g := range []grid.Grid{grid.Square(2), grid.Square(4), grid.New(3, 2)} {
			for _, part := range []Partition{BlockPartition, RowPartition, CyclicPartition} {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						p := part(m, g, i, j)
						if p < 0 || p >= g.NumProcs() {
							t.Fatalf("n=%d grid=%v (%d,%d): proc %d out of range", n, g, i, j, p)
						}
					}
				}
			}
		}
	}
}

func TestLUShape(t *testing.T) {
	n := 8
	tr := LU{}.Generate(n, grid.Square(4))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != n-1 {
		t.Fatalf("LU windows = %d, want %d", tr.NumWindows(), n-1)
	}
	if tr.NumData != n*n {
		t.Fatalf("LU data = %d", tr.NumData)
	}
	// Window k references: 2(n-1-k) scaling refs + 3(n-1-k)^2 update refs.
	for k := 0; k < n-1; k++ {
		r := n - 1 - k
		want := 2*r + 3*r*r
		if got := len(tr.Windows[k].Refs); got != want {
			t.Fatalf("LU window %d has %d refs, want %d", k, got, want)
		}
	}
}

func TestLULastWindowTouchesCorner(t *testing.T) {
	n := 4
	tr := LU{}.Generate(n, grid.Square(2))
	m := trace.SquareMatrix(n)
	last := tr.Windows[n-2]
	touched := map[trace.DataID]bool{}
	for _, r := range last.Refs {
		touched[r.Data] = true
	}
	for _, id := range []trace.DataID{m.ID(3, 3), m.ID(3, 2), m.ID(2, 3), m.ID(2, 2)} {
		if !touched[id] {
			t.Errorf("final LU step does not touch element %d", id)
		}
	}
	if touched[m.ID(0, 1)] {
		t.Error("final LU step touches the factored row 0")
	}
}

func TestMatSquareShape(t *testing.T) {
	n := 6
	tr := MatSquare{}.Generate(n, grid.Square(2))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != n {
		t.Fatalf("windows = %d, want %d", tr.NumWindows(), n)
	}
	for k := 0; k < n; k++ {
		if got := len(tr.Windows[k].Refs); got != 2*n*n {
			t.Fatalf("window %d refs = %d, want %d", k, got, 2*n*n)
		}
	}
	// Window k references only row k and column k of A.
	m := trace.SquareMatrix(n)
	for _, r := range tr.Windows[2].Refs {
		i, j := m.Element(r.Data)
		if i != 2 && j != 2 {
			t.Fatalf("window 2 references (%d,%d) outside row/col 2", i, j)
		}
	}
}

func TestCodeDeterministicAndIrregular(t *testing.T) {
	g := grid.Square(4)
	a := Code{Seed: 7}.Generate(8, g)
	b := Code{Seed: 7}.Generate(8, g)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Windows, b.Windows) {
		t.Fatal("same seed produced different traces")
	}
	c := Code{Seed: 8}.Generate(8, g)
	if reflect.DeepEqual(a.Windows, c.Windows) {
		t.Fatal("different seeds produced identical traces")
	}
	if a.NumWindows() != 8 {
		t.Fatalf("windows = %d, want 8 (default n)", a.NumWindows())
	}
	// Each window: 16 procs x 2n refs.
	if got := len(a.Windows[0].Refs); got != 16*16 {
		t.Fatalf("window refs = %d, want 256", got)
	}
	// Irregular: consecutive windows reference different data sets.
	set := func(w int) map[trace.DataID]int {
		out := map[trace.DataID]int{}
		for _, r := range a.Windows[w].Refs {
			out[r.Data]++
		}
		return out
	}
	if reflect.DeepEqual(set(0), set(1)) {
		t.Fatal("CODE windows 0 and 1 have identical reference multisets")
	}
}

func TestCodeCustomShape(t *testing.T) {
	tr := Code{Seed: 1, Windows: 3, RefsPerProc: 5}.Generate(4, grid.Square(2))
	if tr.NumWindows() != 3 {
		t.Fatalf("windows = %d", tr.NumWindows())
	}
	if got := len(tr.Windows[0].Refs); got != 4*5 {
		t.Fatalf("refs = %d, want 20", got)
	}
}

func TestStencilShape(t *testing.T) {
	tr := Stencil{Steps: 2}.Generate(4, grid.Square(2))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 2 {
		t.Fatalf("windows = %d", tr.NumWindows())
	}
	// 4x4 cells: 4 corners (3 refs), 8 edges (4 refs), 4 interior (5 refs).
	want := 4*3 + 8*4 + 4*5
	if got := len(tr.Windows[0].Refs); got != want {
		t.Fatalf("refs = %d, want %d", got, want)
	}
}

func TestStencilDefaultSteps(t *testing.T) {
	if got := (Stencil{}).Generate(6, grid.Square(2)).NumWindows(); got != 3 {
		t.Fatalf("default steps = %d, want n/2 = 3", got)
	}
	if got := (Stencil{}).Generate(1, grid.Square(2)).NumWindows(); got != 1 {
		t.Fatalf("n=1 steps = %d, want 1", got)
	}
}

func TestAffineNest(t *testing.T) {
	// A transpose-read nest: iteration (i,j) reads (j,i); footprint
	// shifts right by one column per step, so late windows drop
	// out-of-range accesses.
	an := AffineNest{
		Label:    "transpose",
		Steps:    2,
		Accesses: []Access{{AI: 0, AJ: 1, BI: 1, BJ: 0}},
		ShiftB:   1,
	}
	if an.Name() != "transpose" {
		t.Fatalf("Name = %q", an.Name())
	}
	tr := an.Generate(3, grid.Square(2))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 2 {
		t.Fatalf("windows = %d", tr.NumWindows())
	}
	// Step 0: all 9 accesses in range. Step 1: column j+... element
	// (j, i+1): i+1 <= 2 requires i < 2, so 6 accesses.
	if got := len(tr.Windows[0].Refs); got != 9 {
		t.Fatalf("step 0 refs = %d", got)
	}
	if got := len(tr.Windows[1].Refs); got != 6 {
		t.Fatalf("step 1 refs = %d", got)
	}
	if (AffineNest{}).Name() != "affine" {
		t.Fatal("default name wrong")
	}
}

func TestConcatAndReversedGenerators(t *testing.T) {
	g := grid.Square(2)
	lu := LU{}
	code := Code{Seed: 1}
	comb := Concat{Label: "x", Gens: []Generator{lu, code}}
	tr := comb.Generate(4, g)
	if tr.NumWindows() != lu.Generate(4, g).NumWindows()+code.Generate(4, g).NumWindows() {
		t.Fatal("concat window count wrong")
	}
	rev := Reversed{Gen: code}
	if rev.Name() != "code-reversed" {
		t.Fatalf("Name = %q", rev.Name())
	}
	rt := rev.Generate(4, g)
	ct := code.Generate(4, g)
	if !reflect.DeepEqual(rt.Windows[0].Refs, ct.Windows[ct.NumWindows()-1].Refs) {
		t.Fatal("reversed generator window order wrong")
	}
}

func TestPaperBenchmarks(t *testing.T) {
	bs := PaperBenchmarks()
	if len(bs) != 5 {
		t.Fatalf("%d benchmarks, want 5", len(bs))
	}
	g := grid.Square(4)
	for _, b := range bs {
		if b.ID < 1 || b.ID > 5 {
			t.Errorf("bad benchmark ID %d", b.ID)
		}
		tr := b.Gen.Generate(8, g)
		if err := tr.Validate(); err != nil {
			t.Errorf("benchmark %d: %v", b.ID, err)
		}
		if tr.NumData != 64 {
			t.Errorf("benchmark %d: data = %d", b.ID, tr.NumData)
		}
		if tr.NumWindows() == 0 || tr.NumRefs() == 0 {
			t.Errorf("benchmark %d is empty", b.ID)
		}
	}
	// Benchmark 5 is CODE followed by its mirror: first window equals
	// last window.
	tr5 := bs[4].Gen.Generate(8, g)
	nw := tr5.NumWindows()
	if !reflect.DeepEqual(tr5.Windows[0].Refs, tr5.Windows[nw-1].Refs) {
		t.Error("benchmark 5 is not a palindrome at its endpoints")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"lu", "matsquare", "code", "stencil", "lu+code", "matsquare+code", "code+rcode"} {
		gen, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if gen.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, gen.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("bogus generator accepted")
	}
}

func TestGeneratorsRespectPartition(t *testing.T) {
	// With a row partition, every reference in LU window 0 must be
	// issued by the row owner of its iteration.
	n := 8
	g := grid.Square(2)
	m := trace.SquareMatrix(n)
	tr := LU{Part: RowPartition}.Generate(n, g)
	// The scaling refs of window 0 come from owners of (i, 0).
	for _, r := range tr.Windows[0].Refs[:2] {
		_ = r
	}
	// Every proc index must be a legal RowPartition output for some row.
	valid := map[int]bool{}
	for i := 0; i < n; i++ {
		valid[RowPartition(m, g, i, 0)] = true
	}
	for _, r := range tr.Windows[0].Refs {
		if !valid[r.Proc] {
			t.Fatalf("ref from proc %d not produced by row partition", r.Proc)
		}
	}
}

func BenchmarkGenerateLU32(b *testing.B) {
	g := grid.Square(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = LU{}.Generate(32, g)
	}
}

func BenchmarkGenerateCode32(b *testing.B) {
	g := grid.Square(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Code{Seed: codeSeed}.Generate(32, g)
	}
}
