// Package workload rebuilds the paper's reference-string benchmarks:
// LU factorization, matrix squaring, the irregular CODE kernel, and
// their combinations (benchmarks 1-5 of the evaluation), plus a
// five-point stencil and a generic affine loop-nest tracer for user
// workloads.
//
// A generator performs the paper's first preparation stage — the
// iteration partition — by mapping every operation of the computation
// to a processor of the PIM array, and then emits the data reference
// string of each processor, split into execution windows. The second
// stage, data scheduling, is the job of the sched package.
package workload

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/trace"
)

// Partition maps an iteration-space point (i, j) over a data matrix to
// the processor that executes it — the iteration partition of the
// paper's Section 2.
type Partition func(m trace.Matrix, g grid.Grid, i, j int) int

// BlockPartition tiles the iteration space into (grid height x grid
// width) rectangular blocks, block (bi, bj) executing on processor
// (x=bj, y=bi). This owner-computes layout is the default iteration
// partition for all built-in generators.
func BlockPartition(m trace.Matrix, g grid.Grid, i, j int) int {
	th := (m.Rows + g.Height() - 1) / g.Height()
	tw := (m.Cols + g.Width() - 1) / g.Width()
	ti, tj := i/th, j/tw
	if ti >= g.Height() {
		ti = g.Height() - 1
	}
	if tj >= g.Width() {
		tj = g.Width() - 1
	}
	return g.Index(grid.Coord{X: tj, Y: ti})
}

// RowPartition assigns iterations by row blocks: consecutive rows go to
// consecutive processors in linear order.
func RowPartition(m trace.Matrix, g grid.Grid, i, j int) int {
	np := g.NumProcs()
	rowsPer := (m.Rows + np - 1) / np
	p := i / rowsPer
	if p >= np {
		p = np - 1
	}
	return p
}

// CyclicPartition deals iterations round-robin over the processors by
// row-major iteration index.
func CyclicPartition(m trace.Matrix, g grid.Grid, i, j int) int {
	return (i*m.Cols + j) % g.NumProcs()
}

// PartitionByName returns a built-in partition by its command-line
// name: "block", "row" or "cyclic".
func PartitionByName(name string) (Partition, error) {
	switch name {
	case "block":
		return BlockPartition, nil
	case "row":
		return RowPartition, nil
	case "cyclic":
		return CyclicPartition, nil
	}
	return nil, fmt.Errorf("workload: unknown partition %q (want block, row or cyclic)", name)
}
