package workload

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/trace"
)

// Generator produces the reference-string trace of one computation on
// an n x n data matrix mapped onto a processor array.
type Generator interface {
	// Name returns a short identifier for tables and CLIs.
	Name() string
	// Generate emits the trace. n is the data matrix dimension.
	Generate(n int, g grid.Grid) *trace.Trace
}

// LU generates the reference strings of right-looking LU factorization
// without pivoting (the paper's benchmark 1). Execution window k holds
// elimination step k: the column scaling A(i,k) /= A(k,k) and the
// trailing update A(i,j) -= A(i,k)*A(k,j). Every operation references
// the elements it reads and writes; the iteration partition maps the
// update of (i, j) to Part(i, j).
type LU struct {
	// Part is the iteration partition; nil means BlockPartition.
	Part Partition
}

// Name implements Generator.
func (LU) Name() string { return "lu" }

// Generate implements Generator.
func (l LU) Generate(n int, g grid.Grid) *trace.Trace {
	part := l.Part
	if part == nil {
		part = BlockPartition
	}
	m := trace.SquareMatrix(n)
	t := trace.New(g, m.NumElements())
	for k := 0; k < n-1; k++ {
		w := t.AddWindow()
		// Column scaling: A(i,k) /= A(k,k), executed where (i,k) lives.
		for i := k + 1; i < n; i++ {
			p := part(m, g, i, k)
			w.Add(p, m.ID(i, k))
			w.Add(p, m.ID(k, k))
		}
		// Trailing submatrix update.
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				p := part(m, g, i, j)
				w.Add(p, m.ID(i, j))
				w.Add(p, m.ID(i, k))
				w.Add(p, m.ID(k, j))
			}
		}
	}
	return t
}

// MatSquare generates the reference strings of computing the square of
// a matrix, C = A*A (the paper's benchmark 2), in outer-product order:
// execution window k accumulates the rank-1 update C(i,j) +=
// A(i,k)*A(k,j). The data items are the elements of A; the accumulator
// C(i,j) stays in the registers of the processor computing iteration
// (i, j), so only the A references travel.
type MatSquare struct {
	// Part is the iteration partition; nil means BlockPartition.
	Part Partition
}

// Name implements Generator.
func (MatSquare) Name() string { return "matsquare" }

// Generate implements Generator.
func (ms MatSquare) Generate(n int, g grid.Grid) *trace.Trace {
	part := ms.Part
	if part == nil {
		part = BlockPartition
	}
	m := trace.SquareMatrix(n)
	t := trace.New(g, m.NumElements())
	for k := 0; k < n; k++ {
		w := t.AddWindow()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := part(m, g, i, j)
				w.Add(p, m.ID(i, k))
				w.Add(p, m.ID(k, j))
			}
		}
	}
	return t
}

// Code is the stand-in for the irregular kernel of the paper's
// technical report [5] ("CODE"), which is not retrievable. It produces
// deterministic, non-affine, non-uniform reference strings: in every
// execution window each processor issues RefsPerProc references, half
// of them clustered around a hot region that drifts across the data
// space from window to window, the rest scattered pseudo-randomly.
// This preserves what the paper uses CODE for — complicated reference
// patterns whose locality shifts over time, where movement-aware
// scheduling pays off most. See DESIGN.md for the substitution note.
type Code struct {
	// Seed selects the pseudo-random stream; the same seed always
	// yields the same trace.
	Seed uint64
	// Windows is the number of execution windows; 0 means n (matching
	// the dense kernels' window count).
	Windows int
	// RefsPerProc is the number of references each processor issues in
	// each window; 0 means 2*n.
	RefsPerProc int
}

// Name implements Generator.
func (Code) Name() string { return "code" }

// Generate implements Generator.
func (c Code) Generate(n int, g grid.Grid) *trace.Trace {
	m := trace.SquareMatrix(n)
	nd := m.NumElements()
	nw := c.Windows
	if nw <= 0 {
		nw = n
	}
	rpp := c.RefsPerProc
	if rpp <= 0 {
		rpp = 2 * n
	}
	t := trace.New(g, nd)
	rng := xorshift(c.Seed ^ 0x9e3779b97f4a7c15)
	for wi := 0; wi < nw; wi++ {
		w := t.AddWindow()
		// The hot region drifts by a coprime stride so it sweeps the
		// whole data space over the run.
		hotStart := (wi * (nd/nw + 1)) % nd
		hotLen := nd / 8
		if hotLen < n {
			hotLen = n
		}
		if hotLen < 1 {
			hotLen = 1
		}
		for p := 0; p < g.NumProcs(); p++ {
			for r := 0; r < rpp; r++ {
				x := rng.next()
				var d int
				if x&7 != 0 {
					// Clustered reference near the drifting hot region
					// (seven eighths of the stream).
					d = (hotStart + int((x>>3)%uint64(hotLen))) % nd
				} else {
					// Scattered irregular reference: a quadratic probe
					// keeps the pattern non-affine in (p, r, wi).
					q := int((x >> 3) % uint64(nd))
					d = (q*q + 3*q + p) % nd
				}
				w.Add(p, trace.DataID(d))
			}
		}
	}
	return t
}

// xorshift is a tiny deterministic PRNG (xorshift64*), so traces do not
// depend on math/rand's stream stability across Go releases.
type xorshift uint64

func (s *xorshift) next() uint64 {
	x := uint64(*s)
	if x == 0 {
		x = 0x853c49e6748fea9b
	}
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*s = xorshift(x)
	return x * 0x2545f4914f6cdd1d
}

// Stencil generates a five-point stencil sweep: in every time step
// (one execution window) the owner of cell (i, j) references the cell
// and its four neighbours. It is not one of the paper's benchmarks but
// a standard regular workload used by the examples and ablations.
type Stencil struct {
	// Part is the iteration partition; nil means BlockPartition.
	Part Partition
	// Steps is the number of sweeps; 0 means n/2.
	Steps int
}

// Name implements Generator.
func (Stencil) Name() string { return "stencil" }

// Generate implements Generator.
func (s Stencil) Generate(n int, g grid.Grid) *trace.Trace {
	part := s.Part
	if part == nil {
		part = BlockPartition
	}
	steps := s.Steps
	if steps <= 0 {
		steps = n / 2
		if steps == 0 {
			steps = 1
		}
	}
	m := trace.SquareMatrix(n)
	t := trace.New(g, m.NumElements())
	for step := 0; step < steps; step++ {
		w := t.AddWindow()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := part(m, g, i, j)
				w.Add(p, m.ID(i, j))
				for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					ni, nj := i+d[0], j+d[1]
					if ni >= 0 && ni < n && nj >= 0 && nj < n {
						w.Add(p, m.ID(ni, nj))
					}
				}
			}
		}
	}
	return t
}

// Access is one affine array access of a loop nest: iteration (i, j)
// touches matrix element (AI*i + AJ*j + A0, BI*i + BJ*j + B0).
// Accesses falling outside the matrix are skipped.
type Access struct {
	AI, AJ, A0 int
	BI, BJ, B0 int
}

// At returns the element accessed by iteration (i, j).
func (a Access) At(i, j int) (int, int) {
	return a.AI*i + a.AJ*j + a.A0, a.BI*i + a.BJ*j + a.B0
}

// AffineNest is a generic tracer for doubly nested affine loops,
// covering the regular workloads the prior redistribution literature
// assumes. Each outer step t in [0, Steps) forms one execution window
// sweeping the full (i, j) iteration rectangle and issuing every access
// in Accesses; accesses may reference t through the Shift fields.
type AffineNest struct {
	// Label is the generator name.
	Label string
	// Part is the iteration partition; nil means BlockPartition.
	Part Partition
	// Steps is the number of execution windows; 0 means n.
	Steps int
	// Accesses are the per-iteration array accesses.
	Accesses []Access
	// ShiftA, ShiftB optionally translate every access by
	// (t*ShiftA, t*ShiftB) at step t, letting the footprint drift.
	ShiftA, ShiftB int
}

// Name implements Generator.
func (an AffineNest) Name() string {
	if an.Label != "" {
		return an.Label
	}
	return "affine"
}

// Generate implements Generator.
func (an AffineNest) Generate(n int, g grid.Grid) *trace.Trace {
	part := an.Part
	if part == nil {
		part = BlockPartition
	}
	steps := an.Steps
	if steps <= 0 {
		steps = n
	}
	m := trace.SquareMatrix(n)
	t := trace.New(g, m.NumElements())
	for step := 0; step < steps; step++ {
		w := t.AddWindow()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := part(m, g, i, j)
				for _, acc := range an.Accesses {
					r, c := acc.At(i, j)
					r += step * an.ShiftA
					c += step * an.ShiftB
					if r >= 0 && r < m.Rows && c >= 0 && c < m.Cols {
						w.Add(p, m.ID(r, c))
					}
				}
			}
		}
	}
	return t
}

// Concat chains generators into one program: the windows of each
// generator's trace follow the previous one's, sharing the same data
// space. It implements the paper's combined benchmarks.
type Concat struct {
	Label string
	Gens  []Generator
}

// Name implements Generator.
func (c Concat) Name() string { return c.Label }

// Generate implements Generator.
func (c Concat) Generate(n int, g grid.Grid) *trace.Trace {
	if len(c.Gens) == 0 {
		panic("workload: Concat with no generators")
	}
	traces := make([]*trace.Trace, len(c.Gens))
	for i, gen := range c.Gens {
		traces[i] = gen.Generate(n, g)
	}
	return trace.Concat(traces...)
}

// Reversed wraps a generator, emitting its windows in reverse order
// (benchmark 5's "reverse execution order of the CODE").
type Reversed struct {
	Gen Generator
}

// Name implements Generator.
func (r Reversed) Name() string { return r.Gen.Name() + "-reversed" }

// Generate implements Generator.
func (r Reversed) Generate(n int, g grid.Grid) *trace.Trace {
	return r.Gen.Generate(n, g).Reversed()
}

// Benchmark is one row family of the paper's Tables 1 and 2.
type Benchmark struct {
	// ID is the paper's benchmark number (1-5).
	ID int
	// Description matches the paper's prose.
	Description string
	// Gen produces the benchmark's trace.
	Gen Generator
}

// codeSeed fixes the CODE stand-in's stream for the paper tables.
const codeSeed = 1998

// PaperBenchmarks returns the five benchmarks of the evaluation
// section:
//
//	1: LU factorization
//	2: the square of a matrix
//	3: benchmark 1 combined with CODE
//	4: benchmark 2 combined with CODE
//	5: CODE combined with CODE in reverse execution order
func PaperBenchmarks() []Benchmark {
	code := Code{Seed: codeSeed}
	return []Benchmark{
		{ID: 1, Description: "LU factorization", Gen: LU{}},
		{ID: 2, Description: "matrix square", Gen: MatSquare{}},
		{ID: 3, Description: "LU + CODE", Gen: Concat{Label: "lu+code", Gens: []Generator{LU{}, code}}},
		{ID: 4, Description: "matrix square + CODE", Gen: Concat{Label: "matsquare+code", Gens: []Generator{MatSquare{}, code}}},
		{ID: 5, Description: "CODE + reverse CODE", Gen: Concat{Label: "code+rcode", Gens: []Generator{code, Reversed{Gen: code}}}},
	}
}

// ByName returns a built-in generator by its command-line name.
func ByName(name string) (Generator, error) {
	switch name {
	case "lu":
		return LU{}, nil
	case "matsquare":
		return MatSquare{}, nil
	case "code":
		return Code{Seed: codeSeed}, nil
	case "stencil":
		return Stencil{}, nil
	}
	for _, b := range PaperBenchmarks() {
		if b.Gen.Name() == name {
			return b.Gen, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown generator %q", name)
}
