package trace

import "fmt"

// Matrix describes a two-dimensional logical data array whose elements
// are the data items of a trace. All the paper's benchmarks operate on
// square matrices; the data item for element (i, j) has the row-major
// ID i*Cols + j.
type Matrix struct {
	Rows, Cols int
}

// SquareMatrix returns an n x n data array.
func SquareMatrix(n int) Matrix { return Matrix{Rows: n, Cols: n} }

// NumElements returns the number of data items in the array.
func (m Matrix) NumElements() int { return m.Rows * m.Cols }

// String renders the shape as "RxC".
func (m Matrix) String() string { return fmt.Sprintf("%dx%d", m.Rows, m.Cols) }

// ID returns the data ID of element (i, j). It panics when the element
// is out of range, since workload generators index with loop bounds
// derived from the same Matrix and an escape indicates a generator bug.
func (m Matrix) ID(i, j int) DataID {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("trace: matrix element (%d,%d) outside %v", i, j, m))
	}
	return DataID(i*m.Cols + j)
}

// Element returns the (row, column) of a data ID.
func (m Matrix) Element(d DataID) (i, j int) {
	if d < 0 || int(d) >= m.NumElements() {
		panic(fmt.Sprintf("trace: data %d outside %v", d, m))
	}
	return int(d) / m.Cols, int(d) % m.Cols
}
