package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// fingerprintVersion is folded into every fingerprint so that a change
// to the canonical encoding below invalidates all previously computed
// fingerprints instead of silently colliding with them.
const fingerprintVersion = "pimtrace-fp-v1"

// Fingerprint is a stable content hash of a trace: two traces have the
// same fingerprint exactly when they have the same grid dimensions,
// data-space size, window structure and reference-event sequence
// (modulo SHA-256 collisions). It is the cache key long-running
// services use to share cost models and residence tables across
// requests that carry the same trace.
//
// The fingerprint is computed from the events themselves, not from any
// derived matrix, so two traces that differ only in the order of events
// inside a window hash differently. That is deliberately conservative:
// a cache keyed by Fingerprint can return stale entries never, only
// miss more often than strictly necessary.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex, the form used in
// service telemetry and logs.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Fingerprint computes the canonical content hash of the trace.
//
// The canonical encoding hashed is:
//
//	version string
//	width, height, numData, numWindows   (fixed 8-byte little endian)
//	for every window: numRefs, then (proc, data, volume) per event
//
// Every field has a fixed width and the per-window ref count is
// included, so the encoding is injective: distinct traces produce
// distinct byte streams (and hence, with overwhelming probability,
// distinct fingerprints), including traces that differ only in where a
// window boundary falls.
func (t *Trace) Fingerprint() Fingerprint {
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))

	// Batch fixed-width fields through a scratch buffer so large traces
	// do not pay one hasher call per field.
	buf := make([]byte, 0, 4096)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	put := func(v int64) {
		if len(buf)+8 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}

	put(int64(t.Grid.Width()))
	put(int64(t.Grid.Height()))
	put(int64(t.NumData))
	put(int64(len(t.Windows)))
	for wi := range t.Windows {
		refs := t.Windows[wi].Refs
		put(int64(len(refs)))
		for _, r := range refs {
			put(int64(r.Proc))
			put(int64(r.Data))
			put(int64(r.Volume))
		}
	}
	flush()

	var f Fingerprint
	h.Sum(f[:0])
	return f
}
