package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/grid"
)

// fingerprintVersion is folded into every fingerprint so that a change
// to the canonical encoding below invalidates all previously computed
// fingerprints instead of silently colliding with them. v2 introduced
// the two-level (per-window digest) encoding that makes fingerprints
// incrementally maintainable under trace deltas.
const fingerprintVersion = "pimtrace-fp-v2"

// Fingerprint is a stable content hash of a trace: two traces have the
// same fingerprint exactly when they have the same grid dimensions,
// data-space size, window structure and reference-event sequence
// (modulo SHA-256 collisions). It is the cache key long-running
// services use to share cost models and residence tables across
// requests that carry the same trace.
//
// The fingerprint is computed from the events themselves, not from any
// derived matrix, so two traces that differ only in the order of events
// inside a window hash differently. That is deliberately conservative:
// a cache keyed by Fingerprint can return stale entries never, only
// miss more often than strictly necessary.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex, the form used in
// service telemetry and logs.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// ParseFingerprint parses the hex form String produces. The cluster
// tier uses it to turn a /table/{fingerprint} path element back into a
// cache key.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	if len(s) != hex.EncodedLen(len(f)) {
		return f, fmt.Errorf("trace: fingerprint %q has %d hex digits, want %d", s, len(s), hex.EncodedLen(len(f)))
	}
	if _, err := hex.Decode(f[:], []byte(s)); err != nil {
		return Fingerprint{}, fmt.Errorf("trace: fingerprint %q: %v", s, err)
	}
	return f, nil
}

// Fingerprint computes the canonical content hash of the trace.
//
// The canonical encoding hashed is two-level:
//
//	version string
//	width, height, numData, numWindows   (fixed 8-byte little endian)
//	one SHA-256 digest per window, in window order
//
// where each window digest covers the window's event count followed by
// its (proc, data, volume) triples, all fixed 8-byte little endian.
// Every field has a fixed width and both levels carry explicit counts,
// so the encoding is injective: distinct traces produce distinct byte
// streams (and hence, with overwhelming probability, distinct
// fingerprints), including traces that differ only in where a window
// boundary falls.
//
// The two-level structure exists for incremental maintenance: a delta
// that touches one window only re-hashes that window's events, then
// recombines the per-window digests — see Fingerprinter. This method is
// the one-shot form: it is definitionally identical to building a
// Fingerprinter over all windows and asking it to Sum.
func (t *Trace) Fingerprint() Fingerprint {
	f := NewFingerprinter(t.Grid, t.NumData)
	for i := range t.Windows {
		f.AppendWindow(&t.Windows[i])
	}
	return f.Fingerprint()
}

// Fingerprinter maintains a trace fingerprint incrementally: it holds
// the header fields and one digest per window, so a mutation that
// touches one window costs one window re-hash plus an O(numWindows)
// digest recombination instead of a full-trace re-encode. An
// incremental session updates its Fingerprinter alongside every applied
// delta; the resulting Fingerprint always equals the Fingerprint of the
// materialized trace, so fingerprint-keyed caches stay canonical.
//
// A Fingerprinter is not safe for concurrent use.
type Fingerprinter struct {
	width, height, numData int
	windows                [][sha256.Size]byte
}

// NewFingerprinter returns a Fingerprinter over an empty trace with the
// given grid and data space.
func NewFingerprinter(g grid.Grid, numData int) *Fingerprinter {
	return &Fingerprinter{width: g.Width(), height: g.Height(), numData: numData}
}

// NumWindows returns the number of windows currently hashed.
func (f *Fingerprinter) NumWindows() int { return len(f.windows) }

// AppendWindow hashes one more window onto the end of the trace.
func (f *Fingerprinter) AppendWindow(w *Window) {
	f.windows = append(f.windows, hashWindow(w))
}

// SetWindow re-hashes window i after its events changed. It panics on
// an out-of-range index, a programming error in delta bookkeeping.
func (f *Fingerprinter) SetWindow(i int, w *Window) {
	f.checkIndex(i)
	f.windows[i] = hashWindow(w)
}

// RemoveWindow drops window i; later windows shift down by one. It
// panics on an out-of-range index.
func (f *Fingerprinter) RemoveWindow(i int) {
	f.checkIndex(i)
	f.windows = append(f.windows[:i], f.windows[i+1:]...)
}

func (f *Fingerprinter) checkIndex(i int) {
	if i < 0 || i >= len(f.windows) {
		panic(fmt.Sprintf("trace: fingerprinter window %d outside [0,%d)", i, len(f.windows)))
	}
}

// Fingerprint combines the header and the per-window digests into the
// trace fingerprint, in O(numWindows).
func (f *Fingerprinter) Fingerprint() Fingerprint {
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(f.width))
	binary.LittleEndian.PutUint64(buf[8:], uint64(f.height))
	binary.LittleEndian.PutUint64(buf[16:], uint64(f.numData))
	binary.LittleEndian.PutUint64(buf[24:], uint64(len(f.windows)))
	h.Write(buf[:])
	for i := range f.windows {
		h.Write(f.windows[i][:])
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// hashWindow digests one window's canonical encoding: the event count
// followed by the (proc, data, volume) triples in event order.
func hashWindow(w *Window) [sha256.Size]byte {
	h := sha256.New()

	// Batch fixed-width fields through a scratch buffer so large windows
	// do not pay one hasher call per field.
	buf := make([]byte, 0, 4096)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	put := func(v int64) {
		if len(buf)+8 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}

	put(int64(len(w.Refs)))
	for _, r := range w.Refs {
		put(int64(r.Proc))
		put(int64(r.Data))
		put(int64(r.Volume))
	}
	flush()

	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
