package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func sampleTrace() *Trace {
	t := New(grid.Square(2), 3)
	w0 := t.AddWindow()
	w0.Add(0, 1)
	w0.Add(1, 1)
	w0.AddVolume(3, 2, 5)
	w1 := t.AddWindow()
	w1.Add(2, 0)
	w1.Add(2, 1)
	w1.Add(0, 0)
	return t
}

func TestAccessorCounts(t *testing.T) {
	tr := sampleTrace()
	if tr.NumWindows() != 2 {
		t.Fatalf("NumWindows = %d", tr.NumWindows())
	}
	if tr.NumRefs() != 6 {
		t.Fatalf("NumRefs = %d", tr.NumRefs())
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
	}{
		{"bad proc", func(tr *Trace) { tr.Windows[0].Refs[0].Proc = 4 }},
		{"negative proc", func(tr *Trace) { tr.Windows[0].Refs[0].Proc = -1 }},
		{"bad data", func(tr *Trace) { tr.Windows[1].Refs[0].Data = 3 }},
		{"negative data", func(tr *Trace) { tr.Windows[1].Refs[0].Data = -1 }},
		{"zero volume", func(tr *Trace) { tr.Windows[0].Refs[2].Volume = 0 }},
		{"negative numdata", func(tr *Trace) { tr.NumData = -1 }},
	}
	for _, c := range cases {
		tr := sampleTrace()
		c.mut(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
		}
	}
}

func TestBuildCounts(t *testing.T) {
	tr := sampleTrace()
	counts := tr.BuildCounts()
	if len(counts) != 2 {
		t.Fatalf("counts for %d windows", len(counts))
	}
	// Window 0: data 1 referenced by procs 0 and 1 (unit), data 2 by
	// proc 3 with volume 5.
	if counts[0][1][0] != 1 || counts[0][1][1] != 1 {
		t.Errorf("window 0 data 1 counts = %v", counts[0][1])
	}
	if counts[0][2][3] != 5 {
		t.Errorf("window 0 data 2 proc 3 = %d, want 5", counts[0][2][3])
	}
	if counts[0][0][0] != 0 {
		t.Errorf("window 0 data 0 should be unreferenced")
	}
	// Window 1: data 0 by procs 2 and 0; data 1 by proc 2.
	if counts[1][0][2] != 1 || counts[1][0][0] != 1 || counts[1][1][2] != 1 {
		t.Errorf("window 1 counts wrong: %v", counts[1])
	}
}

func TestBuildCountsAccumulatesRepeats(t *testing.T) {
	tr := New(grid.Square(2), 1)
	w := tr.AddWindow()
	for i := 0; i < 4; i++ {
		w.Add(2, 0)
	}
	w.AddVolume(2, 0, 3)
	counts := tr.BuildCounts()
	if counts[0][0][2] != 7 {
		t.Fatalf("accumulated count = %d, want 7", counts[0][0][2])
	}
}

func TestReferenceStrings(t *testing.T) {
	tr := sampleTrace()
	if got := tr.ProcessorReferenceString(0, 1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("ProcessorReferenceString(0,1) = %v", got)
	}
	if got := tr.ProcessorReferenceString(1, 2); got != nil {
		t.Errorf("ProcessorReferenceString(1,2) = %v, want nil", got)
	}
	if got := tr.DataReferenceString(1, 2); !reflect.DeepEqual(got, []DataID{0, 1}) {
		t.Errorf("DataReferenceString(1,2) = %v", got)
	}
}

func TestMerged(t *testing.T) {
	tr := sampleTrace()
	m := tr.Merged([]Interval{{0, 2}})
	if m.NumWindows() != 1 {
		t.Fatalf("merged windows = %d", m.NumWindows())
	}
	if m.NumRefs() != tr.NumRefs() {
		t.Fatalf("merged refs = %d, want %d", m.NumRefs(), tr.NumRefs())
	}
	// Order preserved: window 0 events then window 1 events.
	if m.Windows[0].Refs[0] != tr.Windows[0].Refs[0] {
		t.Error("merged window does not preserve order")
	}
	if m.Windows[0].Refs[3] != tr.Windows[1].Refs[0] {
		t.Error("merged window does not append second window refs")
	}
}

func TestMergedIdentity(t *testing.T) {
	tr := sampleTrace()
	m := tr.Merged(SingletonIntervals(tr.NumWindows()))
	if !reflect.DeepEqual(m.Windows, tr.Windows) {
		t.Error("identity merge changed windows")
	}
}

func TestMergedPanicsOnBadPartition(t *testing.T) {
	tr := sampleTrace()
	bad := [][]Interval{
		{{0, 1}},         // does not cover
		{{0, 1}, {0, 2}}, // overlap
		{{1, 2}},         // gap at start
		{{0, 0}, {0, 2}}, // empty interval
		{},               // empty grouping of non-empty trace
	}
	for i, groups := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Merged(%v) did not panic", i, groups)
				}
			}()
			tr.Merged(groups)
		}()
	}
}

func TestConcatAndReversed(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	c := Concat(a, b)
	if c.NumWindows() != 4 || c.NumRefs() != a.NumRefs()*2 {
		t.Fatalf("Concat: %d windows, %d refs", c.NumWindows(), c.NumRefs())
	}
	r := a.Reversed()
	if !reflect.DeepEqual(r.Windows[0].Refs, a.Windows[1].Refs) {
		t.Error("Reversed window 0 != original window 1")
	}
	if !reflect.DeepEqual(r.Windows[1].Refs, a.Windows[0].Refs) {
		t.Error("Reversed window 1 != original window 0")
	}
	// Double reversal is identity.
	if !reflect.DeepEqual(r.Reversed().Windows, a.Windows) {
		t.Error("double Reversed is not identity")
	}
}

func TestConcatPanicsOnMismatch(t *testing.T) {
	a := New(grid.Square(2), 3)
	b := New(grid.Square(3), 3)
	defer func() {
		if recover() == nil {
			t.Error("Concat of mismatched grids did not panic")
		}
	}()
	Concat(a, b)
}

func TestClone(t *testing.T) {
	a := sampleTrace()
	c := a.Clone()
	if !reflect.DeepEqual(a.Windows, c.Windows) {
		t.Fatal("clone differs")
	}
	c.Windows[0].Refs[0].Proc = 3
	if a.Windows[0].Refs[0].Proc == 3 {
		t.Fatal("clone shares backing storage")
	}
}

func TestUniformIntervals(t *testing.T) {
	got := UniformIntervals(7, 3)
	want := []Interval{{0, 3}, {3, 6}, {6, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UniformIntervals(7,3) = %v, want %v", got, want)
	}
	if got := UniformIntervals(0, 3); got != nil {
		t.Errorf("UniformIntervals(0,3) = %v, want nil", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("UniformIntervals(3,0) did not panic")
			}
		}()
		UniformIntervals(3, 0)
	}()
}

func TestSingletonIntervals(t *testing.T) {
	got := SingletonIntervals(3)
	want := []Interval{{0, 1}, {1, 2}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SingletonIntervals(3) = %v", got)
	}
}

// randomTrace builds a valid random trace for property tests.
func randomTrace(rng *rand.Rand) *Trace {
	g := grid.New(1+rng.Intn(4), 1+rng.Intn(4))
	nd := 1 + rng.Intn(8)
	tr := New(g, nd)
	for w := 0; w < 1+rng.Intn(5); w++ {
		win := tr.AddWindow()
		for r := 0; r < rng.Intn(10); r++ {
			win.AddVolume(rng.Intn(g.NumProcs()), DataID(rng.Intn(nd)), 1+rng.Intn(3))
		}
	}
	return tr
}

// Property: total reference volume is invariant under merging.
func TestMergePreservesTotalVolume(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		sz := 1 + int(size)%3
		m := tr.Merged(UniformIntervals(tr.NumWindows(), sz))
		return totalVolume(tr.BuildCounts()) == totalVolume(m.BuildCounts())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func totalVolume(c Counts) int {
	total := 0
	for _, wc := range c {
		for _, dc := range wc {
			for _, v := range dc {
				total += v
			}
		}
	}
	return total
}

// Property: counts match reference strings: the number of entries of p
// in the processor reference string of (w, d) with unit volumes equals
// Counts[w][d][p].
func TestCountsMatchReferenceStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		tr := New(g, 4)
		win := tr.AddWindow()
		for r := 0; r < rng.Intn(20); r++ {
			win.Add(rng.Intn(g.NumProcs()), DataID(rng.Intn(4)))
		}
		counts := tr.BuildCounts()
		for d := DataID(0); d < 4; d++ {
			perProc := make([]int, g.NumProcs())
			for _, p := range tr.ProcessorReferenceString(0, d) {
				perProc[p]++
			}
			for p, n := range perProc {
				if counts[0][d][p] != n {
					t.Fatalf("iter %d: counts[0][%d][%d] = %d, want %d", iter, d, p, counts[0][d][p], n)
				}
			}
		}
	}
}
