package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode checks that arbitrary input never panics the decoder and
// that anything it accepts survives an encode/decode round trip.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"pimtrace v1\ngrid 2 2\ndata 3\nwindow\nref 0 1 1\n",
		"pimtrace v1\ngrid 4 4\ndata 0\n",
		"pimtrace v1\ngrid 1 1\ndata 1\nwindow\nwindow\nref 0 0 9\n",
		"pimtrace v1\n# comment\ngrid 2 3\ndata 5\nwindow\nref 5 4 2\n",
		"garbage",
		"pimtrace v1\ngrid -1 2\ndata 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("Encode of decoded trace failed: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-Decode failed: %v", err)
		}
		if again.Grid != tr.Grid || again.NumData != tr.NumData || again.NumWindows() != tr.NumWindows() || again.NumRefs() != tr.NumRefs() {
			t.Fatalf("round trip changed shape: %v/%d/%d/%d vs %v/%d/%d/%d",
				again.Grid, again.NumData, again.NumWindows(), again.NumRefs(),
				tr.Grid, tr.NumData, tr.NumWindows(), tr.NumRefs())
		}
	})
}

// FuzzMatrixElement checks the Matrix ID/Element bijection under
// arbitrary shapes.
func FuzzMatrixElement(f *testing.F) {
	f.Add(3, 4, 5)
	f.Add(1, 1, 0)
	f.Fuzz(func(t *testing.T, rows, cols, raw int) {
		if rows <= 0 || cols <= 0 || rows > 1<<12 || cols > 1<<12 {
			return
		}
		m := Matrix{Rows: rows, Cols: cols}
		n := m.NumElements()
		if n <= 0 {
			return
		}
		d := DataID(((raw % n) + n) % n)
		i, j := m.Element(d)
		if i < 0 || i >= rows || j < 0 || j >= cols {
			t.Fatalf("Element(%d) = (%d,%d) outside %v", d, i, j, m)
		}
		if m.ID(i, j) != d {
			t.Fatalf("ID(Element(%d)) = %d", d, m.ID(i, j))
		}
	})
}

// FuzzDecodeLongLines guards the scanner's buffer handling.
func FuzzDecodeLongLines(f *testing.F) {
	f.Add(10)
	f.Fuzz(func(t *testing.T, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		in := "pimtrace v1\n# " + strings.Repeat("x", n) + "\ngrid 2 2\ndata 1\n"
		if _, err := Decode(strings.NewReader(in)); err != nil {
			t.Fatalf("long comment rejected: %v", err)
		}
	})
}
