package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestFingerprintStableAcrossClone(t *testing.T) {
	tr := sampleTrace()
	if got, want := tr.Clone().Fingerprint(), tr.Fingerprint(); got != want {
		t.Fatalf("clone fingerprint %v != original %v", got, want)
	}
	// Recomputing on the same value is deterministic.
	if tr.Fingerprint() != tr.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestFingerprintStableAcrossCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != tr.Fingerprint() {
			t.Fatalf("iter %d: fingerprint changed across encode/decode", i)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := func() *Trace {
		tr := New(grid.New(2, 2), 3)
		w := tr.AddWindow()
		w.Add(0, 1)
		w.Add(3, 2)
		tr.AddWindow().Add(1, 0)
		return tr
	}
	mutations := map[string]func(*Trace){
		"grid shape": func(tr *Trace) { tr.Grid = grid.New(4, 1) },
		"data count": func(tr *Trace) { tr.NumData = 4 },
		"ref proc":   func(tr *Trace) { tr.Windows[0].Refs[0].Proc = 2 },
		"ref data":   func(tr *Trace) { tr.Windows[0].Refs[1].Data = 0 },
		"ref volume": func(tr *Trace) { tr.Windows[0].Refs[0].Volume = 5 },
		"extra ref":  func(tr *Trace) { tr.Windows[1].Add(2, 2) },
		"extra window": func(tr *Trace) {
			tr.AddWindow()
		},
		"event order in window": func(tr *Trace) {
			refs := tr.Windows[0].Refs
			refs[0], refs[1] = refs[1], refs[0]
		},
	}
	want := base().Fingerprint()
	for name, mutate := range mutations {
		tr := base()
		mutate(tr)
		if tr.Fingerprint() == want {
			t.Errorf("%s: mutated trace has the same fingerprint", name)
		}
	}
}

// TestFingerprintWindowBoundary pins the injectivity of the canonical
// encoding: the same event sequence split at a different window
// boundary must hash differently, since window structure changes the
// scheduling problem.
func TestFingerprintWindowBoundary(t *testing.T) {
	oneWindow := New(grid.New(2, 2), 2)
	w := oneWindow.AddWindow()
	w.Add(0, 0)
	w.Add(1, 1)

	twoWindows := New(grid.New(2, 2), 2)
	twoWindows.AddWindow().Add(0, 0)
	twoWindows.AddWindow().Add(1, 1)

	if oneWindow.Fingerprint() == twoWindows.Fingerprint() {
		t.Fatal("window boundary does not affect the fingerprint")
	}
}

func TestFingerprintString(t *testing.T) {
	s := sampleTrace().Fingerprint().String()
	if len(s) != 64 || strings.Trim(s, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint string %q is not 64 hex chars", s)
	}
}

// TestFingerprinterIncrementalMatchesFull is the staleness regression
// the delta machinery depends on: a Fingerprinter maintained through a
// random sequence of window mutations (append, in-place edit, remove)
// must always equal the from-scratch fingerprint of the materialized
// trace. Before the two-level v2 encoding this was impossible — editing
// a middle window invalidated the whole SHA stream — so incremental
// sessions would have served stale cache keys.
func TestFingerprinterIncrementalMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 50; i++ {
		tr := randomTrace(rng)
		fp := NewFingerprinter(tr.Grid, tr.NumData)
		for w := range tr.Windows {
			fp.AppendWindow(&tr.Windows[w])
		}
		if got, want := fp.Fingerprint(), tr.Fingerprint(); got != want {
			t.Fatalf("instance %d: initial fingerprinter %v != full %v", i, got, want)
		}
		np := tr.Grid.NumProcs()
		for step := 0; step < 12; step++ {
			switch op := rng.Intn(3); {
			case op == 0 || len(tr.Windows) == 0: // append
				w := tr.AddWindow()
				for r := rng.Intn(4); r > 0; r-- {
					w.AddVolume(rng.Intn(np), DataID(rng.Intn(tr.NumData)), 1+rng.Intn(3))
				}
				fp.AppendWindow(w)
			case op == 1: // edit in place
				wi := rng.Intn(len(tr.Windows))
				win := &tr.Windows[wi]
				win.Refs = win.Refs[:0]
				for r := rng.Intn(4); r > 0; r-- {
					win.AddVolume(rng.Intn(np), DataID(rng.Intn(tr.NumData)), 1+rng.Intn(3))
				}
				fp.SetWindow(wi, win)
			default: // remove
				wi := rng.Intn(len(tr.Windows))
				tr.Windows = append(tr.Windows[:wi], tr.Windows[wi+1:]...)
				fp.RemoveWindow(wi)
			}
			if got, want := fp.Fingerprint(), tr.Fingerprint(); got != want {
				t.Fatalf("instance %d step %d: incremental fingerprint %v != materialized %v", i, step, got, want)
			}
		}
	}
}

// FuzzFingerprint checks that fingerprinting never panics on anything
// the decoder accepts, that equal traces produce equal fingerprints
// (via an encode/decode round trip), and that a structural mutation
// changes the fingerprint.
func FuzzFingerprint(f *testing.F) {
	seeds := []string{
		"pimtrace v1\ngrid 2 2\ndata 3\nwindow\nref 0 1 1\n",
		"pimtrace v1\ngrid 4 4\ndata 0\n",
		"pimtrace v1\ngrid 1 1\ndata 1\nwindow\nwindow\nref 0 0 9\n",
		"pimtrace v1\ngrid 2 3\ndata 5\nwindow\nref 5 4 2\nref 0 0 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		fp := tr.Fingerprint()

		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("Encode of decoded trace failed: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-Decode failed: %v", err)
		}
		if again.Fingerprint() != fp {
			t.Fatal("equal traces produced different fingerprints")
		}

		// Mutate: append a reference event (always structural — even on
		// an empty trace it adds a window).
		mutated := tr.Clone()
		if mutated.NumData == 0 {
			mutated.NumData = 1
		}
		if len(mutated.Windows) == 0 {
			mutated.AddWindow()
		}
		mutated.Windows[len(mutated.Windows)-1].Add(0, 0)
		if mutated.Fingerprint() == fp {
			t.Fatal("mutated trace kept the original fingerprint")
		}
	})
}
