// Package trace models the input of the data-scheduling problem: the
// data reference strings of an application, already split into
// execution windows.
//
// Terminology follows the paper:
//
//   - The *data reference string* of a processor in one execution
//     window is the sequence of data items the processor refers to in
//     that window.
//   - The *processor reference string* with respect to a data item in
//     one execution window is the sequence of processors requiring that
//     item in that window.
//
// Both views are projections of the same event list, so a Trace stores
// ordered reference events per window and derives either string (or the
// per-window reference-count matrix consumed by the cost model) on
// demand.
package trace

import (
	"fmt"

	"repro/internal/grid"
)

// DataID identifies a data item. IDs are dense: a trace over n items
// uses IDs 0..n-1.
type DataID int

// Ref is a single reference event: processor Proc touches data item
// Data, transferring Volume units if the item is remote. The paper's
// experiments use unit volume; generators may use larger volumes to
// model coarser data granularity.
type Ref struct {
	Proc   int
	Data   DataID
	Volume int
}

// Window is one execution window: an ordered list of reference events
// that execute between two potential data-movement points.
type Window struct {
	Refs []Ref
}

// Add appends a unit-volume reference event.
func (w *Window) Add(proc int, data DataID) {
	w.Refs = append(w.Refs, Ref{Proc: proc, Data: data, Volume: 1})
}

// AddVolume appends a reference event with an explicit volume.
func (w *Window) AddVolume(proc int, data DataID, volume int) {
	w.Refs = append(w.Refs, Ref{Proc: proc, Data: data, Volume: volume})
}

// Trace is a complete scheduling problem instance: the processor array,
// the number of distinct data items, and the per-window reference
// events.
type Trace struct {
	Grid    grid.Grid
	NumData int
	Windows []Window
}

// New returns an empty trace over the given array and data space.
func New(g grid.Grid, numData int) *Trace {
	return &Trace{Grid: g, NumData: numData}
}

// AddWindow appends an empty execution window and returns a pointer to
// it so callers can populate it in place.
func (t *Trace) AddWindow() *Window {
	t.Windows = append(t.Windows, Window{})
	return &t.Windows[len(t.Windows)-1]
}

// NumWindows returns the number of execution windows.
func (t *Trace) NumWindows() int { return len(t.Windows) }

// NumRefs returns the total number of reference events across all
// windows.
func (t *Trace) NumRefs() int {
	n := 0
	for i := range t.Windows {
		n += len(t.Windows[i].Refs)
	}
	return n
}

// Validate checks structural invariants: every event names a processor
// inside the array, a data item inside [0, NumData), and a positive
// volume. It returns a descriptive error for the first violation.
func (t *Trace) Validate() error {
	if t.NumData < 0 {
		return fmt.Errorf("trace: negative data count %d", t.NumData)
	}
	np := t.Grid.NumProcs()
	for wi := range t.Windows {
		for ri, r := range t.Windows[wi].Refs {
			switch {
			case r.Proc < 0 || r.Proc >= np:
				return fmt.Errorf("trace: window %d ref %d: processor %d outside %v array", wi, ri, r.Proc, t.Grid)
			case r.Data < 0 || int(r.Data) >= t.NumData:
				return fmt.Errorf("trace: window %d ref %d: data %d outside [0,%d)", wi, ri, r.Data, t.NumData)
			case r.Volume <= 0:
				return fmt.Errorf("trace: window %d ref %d: non-positive volume %d", wi, ri, r.Volume)
			}
		}
	}
	return nil
}

// Counts is the per-window reference-count matrix of a trace:
// Counts[w][d][p] is the total volume processor p requests of data item
// d during window w. It is the quantity the analytic cost model works
// with; the event ordering inside a window does not affect cost.
type Counts [][][]int

// BuildCounts projects the trace onto its reference-count matrix.
func (t *Trace) BuildCounts() Counts {
	np := t.Grid.NumProcs()
	counts := make(Counts, len(t.Windows))
	for wi := range t.Windows {
		flat := make([]int, t.NumData*np)
		wc := make([][]int, t.NumData)
		for d := 0; d < t.NumData; d++ {
			wc[d], flat = flat[:np], flat[np:]
		}
		for _, r := range t.Windows[wi].Refs {
			wc[r.Data][r.Proc] += r.Volume
		}
		counts[wi] = wc
	}
	return counts
}

// Referenced reports whether any processor references data item d in
// window w, i.e. whether the count row carries any volume. Schedulers
// use it to tell "this window defines no center for the item" apart
// from a genuine placement preference.
func (c Counts) Referenced(w int, d DataID) bool {
	for _, v := range c[w][d] {
		if v != 0 {
			return true
		}
	}
	return false
}

// ProcessorReferenceString returns, for window w, the ordered sequence
// of processors that reference data item d (Definition 1 in the paper).
func (t *Trace) ProcessorReferenceString(w int, d DataID) []int {
	var procs []int
	for _, r := range t.Windows[w].Refs {
		if r.Data == d {
			procs = append(procs, r.Proc)
		}
	}
	return procs
}

// DataReferenceString returns, for window w, the ordered sequence of
// data items referenced by processor p (Definition 2 in the paper).
func (t *Trace) DataReferenceString(w int, p int) []DataID {
	var data []DataID
	for _, r := range t.Windows[w].Refs {
		if r.Proc == p {
			data = append(data, r.Data)
		}
	}
	return data
}

// Merged returns a copy of the trace whose windows have been coalesced
// according to groups: each element of groups is a half-open interval
// [Start, End) of original window indices that becomes one window of
// the result, preserving event order. Groups must be non-empty,
// contiguous, sorted and cover all windows; Merged panics otherwise,
// since malformed groupings indicate a scheduler bug.
func (t *Trace) Merged(groups []Interval) *Trace {
	checkPartition(groups, len(t.Windows))
	out := New(t.Grid, t.NumData)
	for _, iv := range groups {
		w := out.AddWindow()
		for i := iv.Start; i < iv.End; i++ {
			w.Refs = append(w.Refs, t.Windows[i].Refs...)
		}
	}
	return out
}

// Concat returns a new trace whose window list is the concatenation of
// the operands' windows. All operands must share the same grid and data
// space; Concat panics otherwise. It implements the paper's combined
// benchmarks (e.g. "benchmark 1 + CODE").
func Concat(traces ...*Trace) *Trace {
	if len(traces) == 0 {
		panic("trace: Concat of no traces")
	}
	first := traces[0]
	out := New(first.Grid, first.NumData)
	for _, t := range traces {
		if t.Grid != first.Grid || t.NumData != first.NumData {
			panic(fmt.Sprintf("trace: Concat of incompatible traces (%v/%d data vs %v/%d data)",
				first.Grid, first.NumData, t.Grid, t.NumData))
		}
		for i := range t.Windows {
			w := out.AddWindow()
			w.Refs = append(w.Refs, t.Windows[i].Refs...)
		}
	}
	return out
}

// Reversed returns a copy of the trace with the window order reversed
// (event order inside each window is preserved). It implements the
// paper's benchmark 5 construction, "CODE + reverse CODE".
func (t *Trace) Reversed() *Trace {
	out := New(t.Grid, t.NumData)
	for i := len(t.Windows) - 1; i >= 0; i-- {
		w := out.AddWindow()
		w.Refs = append(w.Refs, t.Windows[i].Refs...)
	}
	return out
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := New(t.Grid, t.NumData)
	for i := range t.Windows {
		w := out.AddWindow()
		w.Refs = append(w.Refs, t.Windows[i].Refs...)
	}
	return out
}

// Interval is a half-open range [Start, End) of window indices.
type Interval struct {
	Start, End int
}

// Len returns the number of windows in the interval.
func (iv Interval) Len() int { return iv.End - iv.Start }

func checkPartition(groups []Interval, n int) {
	if len(groups) == 0 {
		if n == 0 {
			return
		}
		panic("trace: empty grouping of non-empty trace")
	}
	pos := 0
	for _, iv := range groups {
		if iv.Start != pos || iv.End <= iv.Start {
			panic(fmt.Sprintf("trace: grouping %v is not a contiguous partition of %d windows", groups, n))
		}
		pos = iv.End
	}
	if pos != n {
		panic(fmt.Sprintf("trace: grouping covers %d of %d windows", pos, n))
	}
}

// UniformIntervals partitions n windows into consecutive groups of the
// given size (the last group may be smaller). size must be positive.
func UniformIntervals(n, size int) []Interval {
	if size <= 0 {
		panic(fmt.Sprintf("trace: non-positive interval size %d", size))
	}
	var out []Interval
	for s := 0; s < n; s += size {
		e := s + size
		if e > n {
			e = n
		}
		out = append(out, Interval{Start: s, End: e})
	}
	return out
}

// SingletonIntervals returns the identity partition: one interval per
// window.
func SingletonIntervals(n int) []Interval {
	out := make([]Interval, n)
	for i := range out {
		out[i] = Interval{Start: i, End: i + 1}
	}
	return out
}
