package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != tr.Grid || got.NumData != tr.NumData {
		t.Fatalf("header mismatch: %v/%d", got.Grid, got.NumData)
	}
	if !reflect.DeepEqual(got.Windows, tr.Windows) {
		t.Fatalf("windows mismatch:\ngot  %v\nwant %v", got.Windows, tr.Windows)
	}
}

func TestEncodeDecodeRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.Grid != tr.Grid || got.NumData != tr.NumData || got.NumWindows() != tr.NumWindows() {
			t.Fatalf("iter %d: shape mismatch", i)
		}
		for w := range tr.Windows {
			a, b := tr.Windows[w].Refs, got.Windows[w].Refs
			if len(a) != len(b) {
				t.Fatalf("iter %d window %d: %d vs %d refs", i, w, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("iter %d window %d ref %d: %v vs %v", i, w, j, a[j], b[j])
				}
			}
		}
	}
}

func TestDecodeEmptyTrace(t *testing.T) {
	in := "pimtrace v1\ngrid 2 2\ndata 5\n"
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 0 || tr.NumData != 5 {
		t.Fatalf("got %d windows, %d data", tr.NumWindows(), tr.NumData)
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	in := `pimtrace v1
# a comment
grid 2 2

data 2
window
# inside a window
ref 0 1 1
`
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRefs() != 1 {
		t.Fatalf("NumRefs = %d", tr.NumRefs())
	}
}

// TestDecodeErrors walks every malformed-input branch of the decoder
// and, for errors attributable to a specific input line, requires the
// line number to appear in the error text — the property that makes a
// megabyte trace file debuggable. Comment and blank lines before the
// offending line are counted (line numbers refer to the raw input).
func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in string
		want     string // substring the error must contain
	}{
		{"empty", "", `want "pimtrace v1" header`},
		{"bad header", "something else\n", "line 1: bad header"},
		{"bad header with junk", "pimtrace v1 extra\n", "line 1: bad header"},
		{"missing grid", "pimtrace v1\ndata 3\nwindow\n", "line 3: window before grid/data"},
		{"missing data", "pimtrace v1\ngrid 2 2\nwindow\n", "line 3: window before grid/data"},
		{"missing grid and data at eof", "pimtrace v1\n", "missing grid/data"},
		{"duplicate grid", "pimtrace v1\ngrid 2 2\ngrid 2 2\ndata 1\n", "line 3: duplicate grid"},
		{"duplicate data", "pimtrace v1\ngrid 2 2\ndata 1\ndata 1\n", "line 4: duplicate data"},
		{"bad grid argc", "pimtrace v1\ngrid 2\ndata 1\n", "line 2: grid:"},
		{"grid trailing junk", "pimtrace v1\ngrid 2 2 9\ndata 1\n", "line 2: grid:"},
		{"bad grid value", "pimtrace v1\ngrid x 2\ndata 1\n", "line 2: grid:"},
		{"zero grid", "pimtrace v1\ngrid 0 2\ndata 1\n", "line 2: invalid grid 0x2"},
		{"negative grid", "pimtrace v1\ngrid 2 -2\ndata 1\n", "line 2: invalid grid"},
		{"bad data argc", "pimtrace v1\ngrid 2 2\ndata 1 2\n", "line 3: data takes one argument"},
		{"bad data value", "pimtrace v1\ngrid 2 2\ndata -3\n", `line 3: bad data count "-3"`},
		{"non-numeric data", "pimtrace v1\ngrid 2 2\ndata many\n", `line 3: bad data count "many"`},
		{"window trailing junk", "pimtrace v1\ngrid 2 2\ndata 1\nwindow 7\n", "line 4: window takes no arguments"},
		{"ref outside window", "pimtrace v1\ngrid 2 2\ndata 1\nref 0 0 1\n", "line 4: ref outside a window"},
		{"truncated ref", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 0\n", "line 5: ref takes three arguments"},
		{"ref trailing junk", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 0 1 junk\n", "line 5: ref takes three arguments"},
		{"ref non-numeric", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref a 0 1\n", "line 5: malformed ref"},
		{"unknown directive", "pimtrace v1\ngrid 2 2\ndata 1\nbogus\n", `line 4: unknown directive "bogus"`},
		{"ref proc out of range", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 9 0 1\n", "line 5: ref processor 9 outside 2x2"},
		{"ref proc negative", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref -1 0 1\n", "line 5: ref processor -1"},
		{"ref data out of range", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 5 1\n", "line 5: ref data 5 outside [0,1)"},
		{"ref data negative", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 -4 1\n", "line 5: ref data -4"},
		{"ref volume zero", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 0 0\n", "line 5: ref volume 0"},
		{"ref volume negative", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 0 -2\n", "line 5: ref volume -2"},
		{"line counting skips nothing", "pimtrace v1\n# comment\n\ngrid 2 2\ndata 1\nwindow\nref 9 0 1\n", "line 7: ref processor 9"},
	}
	for _, c := range cases {
		_, err := Decode(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: Decode succeeded, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

// TestDecodeRejectsWindowTrailingJunk is the regression test for the
// hardening fix: "window" with trailing fields used to be accepted
// silently, hiding typos like "window 3" that intended a count.
func TestDecodeRejectsWindowTrailingJunk(t *testing.T) {
	in := "pimtrace v1\ngrid 2 2\ndata 1\nwindow extra\nref 0 0 1\n"
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Fatal("Decode accepted a window directive with trailing fields")
	}
}

// TestDecodeRefErrorsCiteLine is the regression test for eager event
// validation: out-of-range processor/data ids and non-positive volumes
// used to be caught only by the whole-trace Validate sweep after
// parsing, which cannot name the offending input line.
func TestDecodeRefErrorsCiteLine(t *testing.T) {
	for _, in := range []string{
		"pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 4 0 1\n",
		"pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 1 1\n",
		"pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 0 -1\n",
	} {
		_, err := Decode(strings.NewReader(in))
		if err == nil {
			t.Fatalf("Decode accepted invalid input %q", in)
		}
		if !strings.Contains(err.Error(), "line 5") {
			t.Errorf("error %q does not cite line 5", err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
