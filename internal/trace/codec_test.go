package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != tr.Grid || got.NumData != tr.NumData {
		t.Fatalf("header mismatch: %v/%d", got.Grid, got.NumData)
	}
	if !reflect.DeepEqual(got.Windows, tr.Windows) {
		t.Fatalf("windows mismatch:\ngot  %v\nwant %v", got.Windows, tr.Windows)
	}
}

func TestEncodeDecodeRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.Grid != tr.Grid || got.NumData != tr.NumData || got.NumWindows() != tr.NumWindows() {
			t.Fatalf("iter %d: shape mismatch", i)
		}
		for w := range tr.Windows {
			a, b := tr.Windows[w].Refs, got.Windows[w].Refs
			if len(a) != len(b) {
				t.Fatalf("iter %d window %d: %d vs %d refs", i, w, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("iter %d window %d ref %d: %v vs %v", i, w, j, a[j], b[j])
				}
			}
		}
	}
}

func TestDecodeEmptyTrace(t *testing.T) {
	in := "pimtrace v1\ngrid 2 2\ndata 5\n"
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 0 || tr.NumData != 5 {
		t.Fatalf("got %d windows, %d data", tr.NumWindows(), tr.NumData)
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	in := `pimtrace v1
# a comment
grid 2 2

data 2
window
# inside a window
ref 0 1 1
`
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRefs() != 1 {
		t.Fatalf("NumRefs = %d", tr.NumRefs())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "something else\n"},
		{"missing grid", "pimtrace v1\ndata 3\nwindow\n"},
		{"missing data", "pimtrace v1\ngrid 2 2\nwindow\n"},
		{"duplicate grid", "pimtrace v1\ngrid 2 2\ngrid 2 2\ndata 1\n"},
		{"duplicate data", "pimtrace v1\ngrid 2 2\ndata 1\ndata 1\n"},
		{"bad grid argc", "pimtrace v1\ngrid 2\ndata 1\n"},
		{"bad grid value", "pimtrace v1\ngrid x 2\ndata 1\n"},
		{"zero grid", "pimtrace v1\ngrid 0 2\ndata 1\n"},
		{"bad data value", "pimtrace v1\ngrid 2 2\ndata -3\n"},
		{"ref outside window", "pimtrace v1\ngrid 2 2\ndata 1\nref 0 0 1\n"},
		{"ref argc", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 0\n"},
		{"ref non-numeric", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref a 0 1\n"},
		{"unknown directive", "pimtrace v1\ngrid 2 2\ndata 1\nbogus\n"},
		{"invalid ref proc", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 9 0 1\n"},
		{"invalid ref data", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 5 1\n"},
		{"invalid ref volume", "pimtrace v1\ngrid 2 2\ndata 1\nwindow\nref 0 0 0\n"},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Decode succeeded, want error", c.name)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
