package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/grid"
)

// The on-disk trace format is a line-oriented text format:
//
//	pimtrace v1
//	grid <width> <height>
//	data <numData>
//	window
//	ref <proc> <data> <volume>
//	...
//
// Blank lines and lines starting with '#' are ignored. Every "window"
// line opens a new execution window; "ref" lines belong to the most
// recently opened window.

const formatHeader = "pimtrace v1"

// Encode writes the trace in the text format described above.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "grid %d %d\n", t.Grid.Width(), t.Grid.Height())
	fmt.Fprintf(bw, "data %d\n", t.NumData)
	for wi := range t.Windows {
		fmt.Fprintln(bw, "window")
		for _, r := range t.Windows[wi].Refs {
			fmt.Fprintf(bw, "ref %d %d %d\n", r.Proc, r.Data, r.Volume)
		}
	}
	return bw.Flush()
}

// Decode parses a trace from the text format and validates it.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)

	line, lineNo, err := nextLine(sc, 0)
	if err == io.EOF {
		return nil, fmt.Errorf("trace: empty input, want %q header", formatHeader)
	}
	if err != nil {
		return nil, err
	}
	if line != formatHeader {
		return nil, fmt.Errorf("trace: line %d: bad header %q, want %q", lineNo, line, formatHeader)
	}

	var t *Trace
	var g grid.Grid
	haveGrid, haveData := false, false
	numData := 0
	var cur *Window

	for {
		line, lineNo, err = nextLine(sc, lineNo)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "grid":
			if haveGrid {
				return nil, fmt.Errorf("trace: line %d: duplicate grid directive", lineNo)
			}
			w, h, err := twoInts(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: grid: %v", lineNo, err)
			}
			if w <= 0 || h <= 0 {
				return nil, fmt.Errorf("trace: line %d: invalid grid %dx%d", lineNo, w, h)
			}
			g = grid.New(w, h)
			haveGrid = true
		case "data":
			if haveData {
				return nil, fmt.Errorf("trace: line %d: duplicate data directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: data takes one argument", lineNo)
			}
			numData, err = strconv.Atoi(fields[1])
			if err != nil || numData < 0 {
				return nil, fmt.Errorf("trace: line %d: bad data count %q", lineNo, fields[1])
			}
			haveData = true
		case "window":
			if !haveGrid || !haveData {
				return nil, fmt.Errorf("trace: line %d: window before grid/data directives", lineNo)
			}
			if len(fields) != 1 {
				return nil, fmt.Errorf("trace: line %d: window takes no arguments, got %q", lineNo, line)
			}
			if t == nil {
				t = New(g, numData)
			}
			cur = t.AddWindow()
		case "ref":
			if cur == nil {
				return nil, fmt.Errorf("trace: line %d: ref outside a window", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: ref takes three arguments", lineNo)
			}
			p, err1 := strconv.Atoi(fields[1])
			d, err2 := strconv.Atoi(fields[2])
			v, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("trace: line %d: malformed ref %q", lineNo, line)
			}
			// Validate eagerly — the grid and data directives are known to
			// precede any window — so a bad event is reported with the line
			// it came from, not by the whole-trace sweep after parsing.
			switch {
			case p < 0 || p >= g.NumProcs():
				return nil, fmt.Errorf("trace: line %d: ref processor %d outside %v array", lineNo, p, g)
			case d < 0 || d >= numData:
				return nil, fmt.Errorf("trace: line %d: ref data %d outside [0,%d)", lineNo, d, numData)
			case v <= 0:
				return nil, fmt.Errorf("trace: line %d: ref volume %d is not positive", lineNo, v)
			}
			cur.Refs = append(cur.Refs, Ref{Proc: p, Data: DataID(d), Volume: v})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if !haveGrid || !haveData {
		return nil, fmt.Errorf("trace: missing grid/data directives")
	}
	if t == nil {
		t = New(g, numData)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// nextLine returns the next meaningful (non-blank, non-comment) line.
func nextLine(sc *bufio.Scanner, lineNo int) (string, int, error) {
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, lineNo, nil
	}
	if err := sc.Err(); err != nil {
		return "", lineNo, fmt.Errorf("trace: read: %v", err)
	}
	return "", lineNo, io.EOF
}

func twoInts(fields []string) (int, int, error) {
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("want two integers, got %d fields", len(fields))
	}
	a, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
