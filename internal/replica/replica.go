// Package replica extends the data-scheduling model beyond the paper's
// single-copy assumption ("one copy of data is allowed in a system"):
// read-only data items may be replicated, so each reference is served
// by the nearest copy and hot broadcast operands (the pivot row and
// column of LU, the k-panel of matrix multiplication) stop funneling
// all traffic to one processor.
//
// The cost model generalizes the paper's: within a window, a reference
// of volume v issued by processor p costs v times the distance to the
// nearest copy; at a window boundary every copy of the new window is
// materialized from the nearest copy of the previous window, costing
// the item size times that distance (keeping a copy in place is free,
// and dropping one is free). With MaxCopies = 1 the model and the
// greedy scheduler collapse to the paper's single-copy setting.
package replica

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Schedule is a replicated data schedule: Copies[w][d] is the non-empty
// set of processors holding item d during window w.
type Schedule struct {
	Copies [][][]int
}

// NumWindows returns the number of windows covered.
func (s Schedule) NumWindows() int { return len(s.Copies) }

// Validate checks structure: one non-empty, in-range, duplicate-free
// copy set per item per window, and per-processor occupancy within
// capacity (0 or less = unbounded).
func (s Schedule) Validate(p *sched.Problem) error {
	nd, np, nw := p.Model.NumData, p.Model.Grid.NumProcs(), p.Model.NumWindows()
	if len(s.Copies) != nw {
		return fmt.Errorf("replica: schedule covers %d windows, trace has %d", len(s.Copies), nw)
	}
	for w := range s.Copies {
		if len(s.Copies[w]) != nd {
			return fmt.Errorf("replica: window %d covers %d items, trace has %d", w, len(s.Copies[w]), nd)
		}
		used := make([]int, np)
		for d, copies := range s.Copies[w] {
			if len(copies) == 0 {
				return fmt.Errorf("replica: window %d item %d has no copy", w, d)
			}
			seen := make(map[int]bool, len(copies))
			for _, c := range copies {
				if c < 0 || c >= np {
					return fmt.Errorf("replica: window %d item %d copy on processor %d outside array", w, d, c)
				}
				if seen[c] {
					return fmt.Errorf("replica: window %d item %d has duplicate copy on %d", w, d, c)
				}
				seen[c] = true
				used[c]++
			}
		}
		if p.Capacity > 0 {
			for proc, n := range used {
				if n > p.Capacity {
					return fmt.Errorf("replica: window %d processor %d holds %d copies, capacity %d",
						w, proc, n, p.Capacity)
				}
			}
		}
	}
	return nil
}

// Breakdown splits a replicated schedule's cost.
type Breakdown struct {
	// Serve is the reference-serving cost (nearest-copy distances).
	Serve int64
	// Replicate is the copy-materialization cost across window
	// boundaries.
	Replicate int64
}

// Total returns the combined cost.
func (b Breakdown) Total() int64 { return b.Serve + b.Replicate }

// Evaluate returns the cost of a replicated schedule under the
// generalized model.
func Evaluate(p *sched.Problem, s Schedule) Breakdown {
	counts := p.Model.Counts()
	var bd Breakdown
	for w := range s.Copies {
		for d := range s.Copies[w] {
			copies := s.Copies[w][d]
			for proc, v := range counts[w][d] {
				if v == 0 {
					continue
				}
				bd.Serve += int64(v) * int64(nearest(p, proc, copies))
			}
			if w > 0 {
				size := int64(p.Model.DataSize[d])
				for _, c := range copies {
					bd.Replicate += size * int64(nearest(p, c, s.Copies[w-1][d]))
				}
			}
		}
	}
	return bd
}

// nearest returns the distance from a processor to the closest of the
// given copies. An empty copy set has no nearest-copy distance; pricing
// it would silently charge the Unreachable sentinel per reference, so
// nearest panics — Validate reports the same malformed schedules as
// errors for callers that want to check first.
func nearest(p *sched.Problem, from int, copies []int) int {
	if len(copies) == 0 {
		panic("replica: empty copy set (schedule must keep at least one copy per item per window)")
	}
	best := grid.Unreachable
	for _, c := range copies {
		if d := p.Model.Dist(from, c); d < best {
			best = d
		}
	}
	return best
}

// FromSingle lifts a single-copy schedule into the replicated
// representation, so the two models can be compared directly.
func FromSingle(centers [][]int) Schedule {
	out := Schedule{Copies: make([][][]int, len(centers))}
	for w := range centers {
		out.Copies[w] = make([][]int, len(centers[w]))
		for d, c := range centers[w] {
			out.Copies[w][d] = []int{c}
		}
	}
	return out
}

// Greedy is a replication-aware scheduler: per window and item it
// starts from the local-optimal primary copy and greedily adds replicas
// while the marginal serving-cost reduction exceeds the materialization
// cost, up to MaxCopies per item, within the memory capacity.
type Greedy struct {
	// MaxCopies bounds the copies per item per window; 0 or less
	// means 1 (the paper's single-copy model).
	MaxCopies int
}

// Name returns the scheduler's identifier.
func (g Greedy) Name() string {
	k := g.MaxCopies
	if k <= 0 {
		k = 1
	}
	return fmt.Sprintf("replica-%d", k)
}

// Schedule computes the replicated schedule.
func (g Greedy) Schedule(p *sched.Problem) (Schedule, error) {
	maxCopies := g.MaxCopies
	if maxCopies <= 0 {
		maxCopies = 1
	}
	nd, np, nw := p.Model.NumData, p.Model.Grid.NumProcs(), p.Model.NumWindows()
	if p.Capacity > 0 && p.Capacity*np < nd {
		return Schedule{}, fmt.Errorf("replica: %d data items exceed total memory %d x %d", nd, np, p.Capacity)
	}
	counts := p.Model.Counts()
	out := Schedule{Copies: make([][][]int, nw)}
	prev := make([][]int, nd)

	for w := 0; w < nw; w++ {
		tracker := placement.NewTracker(np, p.Capacity)
		rows := make([][]int, nd)
		for d := 0; d < nd; d++ {
			copies := g.placeItem(p, counts, tracker, w, d, prev[d], maxCopies)
			sort.Ints(copies)
			rows[d] = copies
			prev[d] = copies
		}
		out.Copies[w] = rows
	}
	return out, nil
}

// placeItem chooses item d's copy set for window w. The primary copy
// minimizes residence plus the materialization cost from the previous
// copy set; replicas are added while profitable.
func (g Greedy) placeItem(p *sched.Problem, counts trace.Counts, tracker *placement.Tracker, w, d int, prev []int, maxCopies int) []int {
	np := p.Model.Grid.NumProcs()
	size := int64(p.Model.DataSize[d])

	// Primary copy: best residence + arrival cost among free processors.
	primary, primaryCost := -1, int64(1)<<62
	for c := 0; c < np; c++ {
		if tracker.Capacity() > 0 && tracker.Used(c) >= tracker.Capacity() {
			continue
		}
		cost := p.Table.At(w, d, c)
		if prev != nil {
			cost += size * int64(nearest(p, c, prev))
		}
		if cost < primaryCost {
			primary, primaryCost = c, cost
		}
	}
	if primary < 0 {
		panic("replica: no free processor on a feasible instance")
	}
	if !tracker.TryPlace(primary) {
		panic("replica: reservation failed")
	}
	copies := []int{primary}
	if maxCopies == 1 {
		return copies
	}

	// Current serving distance per referencing processor.
	dist := make([]int, np)
	for proc := range dist {
		dist[proc] = p.Model.Dist(proc, primary)
	}
	for len(copies) < maxCopies {
		// Marginal gain of each candidate replica: the serving volume it
		// pulls closer, minus its materialization cost.
		bestC, bestGain := -1, int64(0)
		for c := 0; c < np; c++ {
			if tracker.Capacity() > 0 && tracker.Used(c) >= tracker.Capacity() {
				continue
			}
			if containsInt(copies, c) {
				continue
			}
			var gain int64
			for proc, v := range counts[w][d] {
				if v == 0 {
					continue
				}
				if nd := p.Model.Dist(proc, c); nd < dist[proc] {
					gain += int64(v) * int64(dist[proc]-nd)
				}
			}
			// Materialization: every copy of this window arrives from
			// the nearest copy of the previous window (matching
			// Evaluate exactly); the initial window's distribution is
			// free, like the single-copy model's initial placement.
			var cost int64
			if prev != nil {
				cost = size * int64(nearest(p, c, prev))
			}
			if net := gain - cost; net > bestGain {
				bestC, bestGain = c, net
			}
		}
		if bestC < 0 {
			break
		}
		if !tracker.TryPlace(bestC) {
			panic("replica: reservation failed on a free processor")
		}
		copies = append(copies, bestC)
		for proc := range dist {
			if nd := p.Model.Dist(proc, bestC); nd < dist[proc] {
				dist[proc] = nd
			}
		}
	}
	return copies
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
