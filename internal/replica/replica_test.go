package replica

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func randomProblem(rng *rand.Rand, capacitated bool) *sched.Problem {
	g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
	nd := 1 + rng.Intn(5)
	tr := trace.New(g, nd)
	for w := 0; w < 1+rng.Intn(5); w++ {
		win := tr.AddWindow()
		for r := 0; r < rng.Intn(12); r++ {
			win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
		}
	}
	capa := 0
	if capacitated {
		capa = placement.PaperCapacity(nd, g.NumProcs())
	}
	return sched.NewProblem(tr, capa)
}

func TestName(t *testing.T) {
	if (Greedy{}).Name() != "replica-1" || (Greedy{MaxCopies: 4}).Name() != "replica-4" {
		t.Fatal("names wrong")
	}
}

// With MaxCopies = 1 the replicated model evaluates single-copy
// schedules identically to the paper's cost model.
func TestSingleCopyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, false)
		sc, err := sched.GOMCDS{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		lifted := FromSingle(sc.Centers)
		if err := lifted.Validate(p); err != nil {
			t.Fatal(err)
		}
		bd := Evaluate(p, lifted)
		if bd.Total() != p.Model.TotalCost(sc) {
			t.Fatalf("iter %d: replicated evaluation %d != single-copy cost %d",
				iter, bd.Total(), p.Model.TotalCost(sc))
		}
		if bd.Serve != p.Model.ResidenceCost(sc) || bd.Replicate != p.Model.MoveCost(sc) {
			t.Fatalf("iter %d: breakdown mismatch %+v", iter, bd)
		}
	}
}

// Replication pays on broadcast patterns: one item read by every
// processor of a 4x4 array. Four copies serve everyone closer than one.
func TestReplicationHelpsBroadcast(t *testing.T) {
	g := grid.Square(4)
	tr := trace.New(g, 1)
	for w := 0; w < 4; w++ {
		win := tr.AddWindow()
		for proc := 0; proc < 16; proc++ {
			win.AddVolume(proc, 0, 4)
		}
	}
	p := sched.NewProblem(tr, 0)
	single, err := Greedy{MaxCopies: 1}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Greedy{MaxCopies: 4}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := quad.Validate(p); err != nil {
		t.Fatal(err)
	}
	cs, cq := Evaluate(p, single).Total(), Evaluate(p, quad).Total()
	if cq >= cs {
		t.Fatalf("4 copies cost %d >= 1 copy cost %d on a broadcast pattern", cq, cs)
	}
	if got := len(quad.Copies[0][0]); got < 2 {
		t.Fatalf("greedy placed only %d copies for a broadcast item", got)
	}
}

// The greedy scheduler's single-copy mode never loses to the row-wise
// baseline on the paper benchmarks, and adding copies never hurts the
// total under no capacity (the greedy only adds profitable replicas).
func TestMoreCopiesNeverHurtUncapacitated(t *testing.T) {
	g := grid.Square(4)
	for _, b := range workload.PaperBenchmarks()[:2] { // LU and matrix square
		tr := b.Gen.Generate(8, g)
		p := sched.NewProblem(tr, 0)
		var prevCost int64 = 1 << 62
		for _, k := range []int{1, 2, 4} {
			s, err := Greedy{MaxCopies: k}.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(p); err != nil {
				t.Fatal(err)
			}
			c := Evaluate(p, s).Total()
			if c > prevCost {
				t.Fatalf("benchmark %d: k=%d cost %d > k-1 cost %d", b.ID, k, c, prevCost)
			}
			prevCost = c
		}
	}
}

func TestCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, true)
		for _, k := range []int{1, 2, 3} {
			s, err := Greedy{MaxCopies: k}.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(p); err != nil {
				t.Fatalf("iter %d k=%d: %v", iter, k, err)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	p := randomProblem(rng, false)
	if p.Model.NumWindows() == 0 || p.Model.NumData == 0 {
		t.Skip("degenerate random instance")
	}
	good, err := Greedy{MaxCopies: 2}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := Schedule{Copies: good.Copies}
	bad.Copies[0][0] = nil
	if err := bad.Validate(p); err == nil {
		t.Error("empty copy set accepted")
	}
	bad.Copies[0][0] = []int{99}
	if err := bad.Validate(p); err == nil {
		t.Error("out-of-range copy accepted")
	}
	bad.Copies[0][0] = []int{0, 0}
	if err := bad.Validate(p); err == nil {
		t.Error("duplicate copy accepted")
	}
}

// TestEvaluateRejectsEmptyCopySet pins the silent-sentinel bug:
// pricing a schedule that leaves an item with no copy used to charge
// every reference the raw 1<<30 distance sentinel and return a
// nonsense ~10^9 total. Evaluate must panic instead — an empty copy
// set is a corrupt schedule, not an expensive one (Validate reports
// the same corruption as an error for callers that check first).
func TestEvaluateRejectsEmptyCopySet(t *testing.T) {
	tr := trace.New(grid.Square(2), 1)
	tr.AddWindow().Add(0, 0)
	p := sched.NewProblem(tr, 0)
	s := Schedule{Copies: [][][]int{{nil}}} // one window, item 0 has no copy
	if err := s.Validate(p); err == nil {
		t.Fatal("Validate accepted an empty copy set")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Evaluate priced an empty copy set instead of panicking")
		}
	}()
	Evaluate(p, s)
}

func TestInfeasibleRejected(t *testing.T) {
	tr := trace.New(grid.Square(2), 10)
	tr.AddWindow().Add(0, 0)
	p := sched.NewProblem(tr, 2)
	if _, err := (Greedy{MaxCopies: 2}).Schedule(p); err == nil {
		t.Fatal("infeasible capacity accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := trace.New(grid.Square(2), 2)
	p := sched.NewProblem(tr, 0)
	s, err := Greedy{MaxCopies: 2}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWindows() != 0 {
		t.Fatal("windows scheduled for empty trace")
	}
	if Evaluate(p, s).Total() != 0 {
		t.Fatal("empty schedule has cost")
	}
}

// Property: Evaluate is consistent — serving cost is bounded above by
// the single-primary residence and below by zero.
func TestEvaluateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, false)
		s, err := Greedy{MaxCopies: 3}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		bd := Evaluate(p, s)
		if bd.Serve < 0 || bd.Replicate < 0 {
			t.Fatalf("iter %d: negative cost %+v", iter, bd)
		}
		// Serving from the full copy set is never dearer than serving
		// from the primary (first) copy alone.
		var primaryOnly int64
		counts := p.Model.Counts()
		for w := range s.Copies {
			for d := range s.Copies[w] {
				for proc, v := range counts[w][d] {
					if v != 0 {
						primaryOnly += int64(v) * int64(p.Model.Dist(proc, s.Copies[w][d][0]))
					}
				}
			}
		}
		if bd.Serve > primaryOnly {
			t.Fatalf("iter %d: nearest-copy serve %d > primary-only %d", iter, bd.Serve, primaryOnly)
		}
	}
}

func BenchmarkGreedyReplica4(b *testing.B) {
	g := grid.Square(4)
	tr := workload.MatSquare{}.Generate(16, g)
	p := sched.NewProblem(tr, placement.PaperCapacity(tr.NumData, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Greedy{MaxCopies: 4}).Schedule(p); err != nil {
			b.Fatal(err)
		}
	}
}
