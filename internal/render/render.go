// Package render draws text visualizations of the processor array:
// per-processor heatmaps of reference density, memory occupancy and
// placement, the closest a terminal gets to the paper's Figure 1.
package render

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// shades maps a 0..9 intensity to a character.
const shades = " .:-=+*#%@"

// Heatmap renders per-processor values as a W x H character map with a
// 0-9 intensity scale (blank = zero, '@' = maximum), plus the scale's
// maximum for reading absolute numbers. len(values) must equal the
// array size.
func Heatmap(g grid.Grid, values []int64, title string) string {
	if len(values) != g.NumProcs() {
		panic(fmt.Sprintf("render: %d values for a %v array", len(values), g))
	}
	var max int64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s (max %d)\n", title, max)
	}
	for y := 0; y < g.Height(); y++ {
		b.WriteString("  ")
		for x := 0; x < g.Width(); x++ {
			v := values[g.Index(grid.Coord{X: x, Y: y})]
			b.WriteByte(shades[intensity(v, max)])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func intensity(v, max int64) int {
	if max == 0 || v <= 0 {
		return 0
	}
	i := int((v*int64(len(shades)-1) + max - 1) / max)
	if i >= len(shades) {
		i = len(shades) - 1
	}
	if i < 1 {
		i = 1 // nonzero values are always visible
	}
	return i
}

// NumericMap renders per-processor values as aligned decimal cells, for
// exact reading of small grids.
func NumericMap(g grid.Grid, values []int64, title string) string {
	if len(values) != g.NumProcs() {
		panic(fmt.Sprintf("render: %d values for a %v array", len(values), g))
	}
	width := 1
	for _, v := range values {
		if n := len(fmt.Sprint(v)); n > width {
			width = n
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for y := 0; y < g.Height(); y++ {
		b.WriteString("  ")
		for x := 0; x < g.Width(); x++ {
			fmt.Fprintf(&b, "%*d ", width, values[g.Index(grid.Coord{X: x, Y: y})])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ReferenceDensity returns each processor's total reference volume in
// window w of the trace.
func ReferenceDensity(t *trace.Trace, w int) []int64 {
	out := make([]int64, t.Grid.NumProcs())
	for _, r := range t.Windows[w].Refs {
		out[r.Proc] += int64(r.Volume)
	}
	return out
}

// Occupancy returns the number of items each processor stores in
// window w of the schedule.
func Occupancy(g grid.Grid, s cost.Schedule, w int) []int64 {
	out := make([]int64, g.NumProcs())
	for _, c := range s.Centers[w] {
		out[c]++
	}
	return out
}

// ItemReferences returns, for one data item, each processor's reference
// volume in window w — the paper's Figure 1 panels.
func ItemReferences(t *trace.Trace, w int, d trace.DataID) []int64 {
	out := make([]int64, t.Grid.NumProcs())
	for _, r := range t.Windows[w].Refs {
		if r.Data == d {
			out[r.Proc] += int64(r.Volume)
		}
	}
	return out
}

// CenterMark renders the array with an 'X' on the given processor and
// '.' elsewhere, marking a chosen center.
func CenterMark(g grid.Grid, center int, title string) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for y := 0; y < g.Height(); y++ {
		b.WriteString("  ")
		for x := 0; x < g.Width(); x++ {
			if g.Index(grid.Coord{X: x, Y: y}) == center {
				b.WriteString("X ")
			} else {
				b.WriteString(". ")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
