package render

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

func TestHeatmapShape(t *testing.T) {
	g := grid.New(3, 2)
	out := Heatmap(g, []int64{0, 1, 9, 0, 5, 9}, "demo")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // title + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "max 9") {
		t.Errorf("title = %q", lines[0])
	}
	// Zero renders blank, max renders '@'.
	if lines[1][2] != ' ' {
		t.Errorf("zero cell = %q", lines[1][2])
	}
	if lines[1][6] != '@' {
		t.Errorf("max cell = %q", lines[1][6])
	}
}

func TestHeatmapAllZero(t *testing.T) {
	g := grid.Square(2)
	out := Heatmap(g, make([]int64, 4), "")
	if strings.ContainsAny(out, "@#%") {
		t.Errorf("all-zero heatmap shows intensity: %q", out)
	}
}

func TestHeatmapNonzeroVisible(t *testing.T) {
	g := grid.Square(2)
	out := Heatmap(g, []int64{1, 0, 0, 1000}, "")
	// The tiny value 1 must still be visible (not a blank).
	row0 := strings.Split(out, "\n")[0]
	if row0[2] == ' ' {
		t.Errorf("small nonzero value invisible: %q", row0)
	}
}

func TestHeatmapPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad length did not panic")
		}
	}()
	Heatmap(grid.Square(2), []int64{1}, "")
}

func TestNumericMapAligned(t *testing.T) {
	g := grid.New(2, 2)
	out := NumericMap(g, []int64{1, 100, 7, 0}, "vals")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "  1 100") {
		t.Errorf("row 0 = %q", lines[1])
	}
}

func TestReferenceDensityAndItemReferences(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 2)
	w := tr.AddWindow()
	w.AddVolume(0, 0, 3)
	w.Add(3, 0)
	w.Add(3, 1)
	dens := ReferenceDensity(tr, 0)
	if dens[0] != 3 || dens[3] != 2 || dens[1] != 0 {
		t.Errorf("density = %v", dens)
	}
	item := ItemReferences(tr, 0, 0)
	if item[0] != 3 || item[3] != 1 {
		t.Errorf("item refs = %v", item)
	}
}

func TestOccupancy(t *testing.T) {
	g := grid.Square(2)
	s := cost.Uniform([]int{0, 0, 3}, 1)
	occ := Occupancy(g, s, 0)
	if occ[0] != 2 || occ[3] != 1 || occ[1] != 0 {
		t.Errorf("occupancy = %v", occ)
	}
}

func TestCenterMark(t *testing.T) {
	g := grid.Square(2)
	out := CenterMark(g, 3, "center")
	if !strings.Contains(out, "X") {
		t.Fatalf("no mark: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[2] != "  . X " {
		t.Errorf("bottom row = %q", lines[2])
	}
}
