// Package segment derives execution windows from flat reference
// streams. The paper assumes the window structure is given by the
// compiler; when all that exists is a raw stream of reference events
// (from instrumentation or a trace file without barriers), this package
// reconstructs scheduling-friendly windows, either by fixed-size
// chunking or by phase detection: consecutive chunks whose reference
// histograms stay similar belong to the same program phase and merge
// into one window, while a drop in similarity — the application's
// working set shifting — starts a new one.
package segment

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/trace"
)

// FixedSize splits the stream into windows of perWindow consecutive
// events (the last window may be smaller). perWindow must be positive.
func FixedSize(g grid.Grid, numData int, refs []trace.Ref, perWindow int) *trace.Trace {
	if perWindow <= 0 {
		panic(fmt.Sprintf("segment: non-positive window size %d", perWindow))
	}
	t := trace.New(g, numData)
	for start := 0; start < len(refs); start += perWindow {
		end := start + perWindow
		if end > len(refs) {
			end = len(refs)
		}
		w := t.AddWindow()
		w.Refs = append(w.Refs, refs[start:end]...)
	}
	return t
}

// Options tunes phase detection.
type Options struct {
	// ChunkSize is the granularity at which the stream is examined;
	// 0 means max(64, len(refs)/64).
	ChunkSize int
	// Threshold in [0, 1] is the minimum histogram overlap for two
	// consecutive chunks to be considered the same phase; 0 means 0.5.
	Threshold float64
}

// PhaseDetect splits the stream at working-set shifts: the stream is
// cut into fixed chunks, each chunk's data-reference histogram is
// compared with the current window's, and a new window starts when the
// overlap falls below the threshold. The returned trace contains every
// input event, in order.
func PhaseDetect(g grid.Grid, numData int, refs []trace.Ref, opts Options) *trace.Trace {
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = len(refs) / 64
		if chunk < 64 {
			chunk = 64
		}
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = 0.5
	}

	t := trace.New(g, numData)
	if len(refs) == 0 {
		return t
	}

	cur := t.AddWindow()
	curHist := make(map[trace.DataID]int64)
	var curVol int64

	for start := 0; start < len(refs); start += chunk {
		end := start + chunk
		if end > len(refs) {
			end = len(refs)
		}
		hist := make(map[trace.DataID]int64)
		var vol int64
		for _, r := range refs[start:end] {
			hist[r.Data] += int64(r.Volume)
			vol += int64(r.Volume)
		}
		if curVol > 0 && overlap(curHist, curVol, hist, vol) < threshold {
			// Working set shifted: close the window and start fresh.
			cur = t.AddWindow()
			curHist = make(map[trace.DataID]int64)
			curVol = 0
		}
		cur.Refs = append(cur.Refs, refs[start:end]...)
		for d, v := range hist {
			curHist[d] += v
		}
		curVol += vol
	}
	return t
}

// overlap is the histogram intersection ratio: the volume both sides
// agree on (after scaling the larger stream down to the smaller one's
// total) divided by the smaller total. 1 means identical working-set
// shape; 0 means disjoint.
func overlap(a map[trace.DataID]int64, aVol int64, b map[trace.DataID]int64, bVol int64) float64 {
	if aVol == 0 || bVol == 0 {
		return 0
	}
	// Compare normalized shapes so a long-running window does not
	// swamp a new chunk: intersection of fractional histograms.
	var inter float64
	for d, av := range a {
		if bv, ok := b[d]; ok {
			fa := float64(av) / float64(aVol)
			fb := float64(bv) / float64(bVol)
			if fa < fb {
				inter += fa
			} else {
				inter += fb
			}
		}
	}
	return inter
}

// Flatten concatenates a windowed trace back into a flat event stream,
// the inverse of segmentation (window boundaries are discarded).
func Flatten(t *trace.Trace) []trace.Ref {
	var out []trace.Ref
	for i := range t.Windows {
		out = append(out, t.Windows[i].Refs...)
	}
	return out
}
