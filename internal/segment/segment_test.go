package segment

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// stream builds a flat two-phase reference stream: phase 1 touches
// items [0, n), phase 2 touches items [n, 2n).
func twoPhaseStream(n, perPhase int) []trace.Ref {
	var refs []trace.Ref
	for i := 0; i < perPhase; i++ {
		refs = append(refs, trace.Ref{Proc: i % 4, Data: trace.DataID(i % n), Volume: 1})
	}
	for i := 0; i < perPhase; i++ {
		refs = append(refs, trace.Ref{Proc: i % 4, Data: trace.DataID(n + i%n), Volume: 1})
	}
	return refs
}

func TestFixedSize(t *testing.T) {
	g := grid.Square(2)
	refs := twoPhaseStream(4, 100)
	tr := FixedSize(g, 8, refs, 64)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 4 { // 200 refs / 64 = 3 full + 1 partial
		t.Fatalf("windows = %d", tr.NumWindows())
	}
	if tr.NumRefs() != len(refs) {
		t.Fatalf("refs lost: %d vs %d", tr.NumRefs(), len(refs))
	}
	if !reflect.DeepEqual(Flatten(tr), refs) {
		t.Fatal("order not preserved")
	}
}

func TestFixedSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window size did not panic")
		}
	}()
	FixedSize(grid.Square(2), 1, nil, 0)
}

func TestPhaseDetectFindsTheShift(t *testing.T) {
	g := grid.Square(2)
	refs := twoPhaseStream(8, 512)
	tr := PhaseDetect(g, 16, refs, Options{ChunkSize: 64})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 2 {
		t.Fatalf("windows = %d, want 2 (one per phase)", tr.NumWindows())
	}
	// The boundary must be exactly at the phase shift (a multiple of
	// the chunk size aligned with the phase length).
	if got := len(tr.Windows[0].Refs); got != 512 {
		t.Fatalf("first window has %d refs, want 512", got)
	}
	if !reflect.DeepEqual(Flatten(tr), refs) {
		t.Fatal("stream mangled")
	}
}

func TestPhaseDetectUniformStreamOneWindow(t *testing.T) {
	g := grid.Square(2)
	rng := rand.New(rand.NewSource(1))
	var refs []trace.Ref
	for i := 0; i < 2048; i++ {
		refs = append(refs, trace.Ref{Proc: rng.Intn(4), Data: trace.DataID(rng.Intn(8)), Volume: 1})
	}
	tr := PhaseDetect(g, 8, refs, Options{ChunkSize: 256})
	if tr.NumWindows() != 1 {
		t.Fatalf("uniform stream split into %d windows", tr.NumWindows())
	}
}

func TestPhaseDetectThresholdExtremes(t *testing.T) {
	g := grid.Square(2)
	// Fully disjoint phases split under any positive threshold (the
	// boundary overlap is exactly zero).
	refs := twoPhaseStream(8, 512)
	loose := PhaseDetect(g, 16, refs, Options{ChunkSize: 64, Threshold: 1e-9})
	if loose.NumWindows() != 2 {
		t.Errorf("disjoint phases under loose threshold: %d windows, want 2", loose.NumWindows())
	}

	// A drifting stream whose consecutive chunks always share half
	// their working set: a loose threshold keeps it whole, a tight one
	// fragments it.
	var drift []trace.Ref
	for i := 0; i < 2048; i++ {
		base := (i / 256) * 4 // shift the 8-item working set by half per chunk
		drift = append(drift, trace.Ref{Proc: i % 4, Data: trace.DataID((base + i%8) % 64), Volume: 1})
	}
	looseDrift := PhaseDetect(g, 64, drift, Options{ChunkSize: 256, Threshold: 0.25})
	tightDrift := PhaseDetect(g, 64, drift, Options{ChunkSize: 256, Threshold: 0.999})
	if looseDrift.NumWindows() >= tightDrift.NumWindows() {
		t.Errorf("loose threshold (%d windows) should merge more than tight (%d windows)",
			looseDrift.NumWindows(), tightDrift.NumWindows())
	}
}

func TestPhaseDetectEmptyStream(t *testing.T) {
	tr := PhaseDetect(grid.Square(2), 4, nil, Options{})
	if tr.NumWindows() != 0 || tr.NumRefs() != 0 {
		t.Fatalf("empty stream: %d windows %d refs", tr.NumWindows(), tr.NumRefs())
	}
}

// End-to-end: flattening a real benchmark and re-segmenting it by phase
// detection yields a trace whose GOMCDS schedule still clearly beats a
// single merged window (i.e. the detected structure is useful).
func TestSegmentationPreservesSchedulingValue(t *testing.T) {
	g := grid.Square(4)
	orig := workload.Code{Seed: 4}.Generate(8, g)
	refs := Flatten(orig)

	detected := PhaseDetect(g, orig.NumData, refs, Options{ChunkSize: len(refs) / 16})
	if detected.NumWindows() < 2 {
		t.Fatalf("phase detection found %d windows on a drifting workload", detected.NumWindows())
	}
	merged := FixedSize(g, orig.NumData, refs, len(refs)) // one giant window

	pd := sched.NewProblem(detected, 0)
	pm := sched.NewProblem(merged, 0)
	sd, err := sched.GOMCDS{}.Schedule(pd)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sched.GOMCDS{}.Schedule(pm)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Model.TotalCost(sd) >= pm.Model.TotalCost(sm) {
		t.Errorf("detected windows (%d) gave cost %d, merged window gave %d — segmentation bought nothing",
			detected.NumWindows(), pd.Model.TotalCost(sd), pm.Model.TotalCost(sm))
	}
}

// Property: segmentation never loses or reorders events.
func TestSegmentationIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 30; iter++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := 1 + rng.Intn(8)
		var refs []trace.Ref
		for i := 0; i < rng.Intn(500); i++ {
			refs = append(refs, trace.Ref{
				Proc: rng.Intn(g.NumProcs()), Data: trace.DataID(rng.Intn(nd)), Volume: 1 + rng.Intn(3),
			})
		}
		for _, tr := range []*trace.Trace{
			FixedSize(g, nd, refs, 1+rng.Intn(64)),
			PhaseDetect(g, nd, refs, Options{ChunkSize: 1 + rng.Intn(64), Threshold: rng.Float64()}),
		} {
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			got := Flatten(tr)
			if len(got) != len(refs) {
				t.Fatalf("iter %d: %d of %d refs survive", iter, len(got), len(refs))
			}
			for i := range got {
				if got[i] != refs[i] {
					t.Fatalf("iter %d: event %d reordered", iter, i)
				}
			}
		}
	}
}

func BenchmarkPhaseDetect(b *testing.B) {
	g := grid.Square(4)
	refs := Flatten(workload.Code{Seed: 5}.Generate(16, g))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PhaseDetect(g, 256, refs, Options{})
	}
}
