package plan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodePlan checks the plan codec never panics and that accepted
// plans survive a round trip.
func FuzzDecodePlan(f *testing.F) {
	seeds := []string{
		"pimplan v1\ngrid 2 2\nphase\nmove 0 1 0 1\nserve 1 2 3 4\n",
		"pimplan v1\ngrid 4 4\n",
		"pimplan v1\ngrid 1 1\nphase\n",
		"junk",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode accepted invalid plan: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, p); err != nil {
			t.Fatalf("Encode failed: %v", err)
		}
		again, err := Decode(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-Decode failed: %v", err)
		}
		if again.NumMessages() != p.NumMessages() || again.FlitHops() != p.FlitHops() {
			t.Fatalf("round trip changed plan: %d/%d vs %d/%d",
				again.NumMessages(), again.FlitHops(), p.NumMessages(), p.FlitHops())
		}
	})
}
