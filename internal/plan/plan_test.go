package plan

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func buildSample(t *testing.T) (*trace.Trace, cost.Schedule, *Plan) {
	t.Helper()
	g := grid.Square(2)
	tr := trace.New(g, 2)
	w0 := tr.AddWindow()
	w0.AddVolume(3, 0, 2) // remote read of item 0
	w0.Add(0, 0)          // local if item 0 at proc 0
	tr.AddWindow().Add(1, 1)
	sc := cost.Schedule{Centers: [][]int{{0, 1}, {3, 1}}} // item 0 moves 0->3
	p, err := Build(tr, sc)
	if err != nil {
		t.Fatal(err)
	}
	return tr, sc, p
}

func TestBuildShape(t *testing.T) {
	_, _, p := buildSample(t)
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	// Window 0: no moves; serves: item 0 from 0 to 3 (volume 2). The
	// local reference and item 1 (unreferenced) produce nothing.
	if len(p.Phases[0].Moves) != 0 || len(p.Phases[0].Serves) != 1 {
		t.Fatalf("phase 0: %+v", p.Phases[0])
	}
	serve := p.Phases[0].Serves[0]
	if serve != (Message{Src: 0, Dst: 3, Data: 0, Volume: 2}) {
		t.Fatalf("serve = %+v", serve)
	}
	// Window 1: item 0 moves 0->3; item 1 served locally (nothing).
	if len(p.Phases[1].Moves) != 1 || len(p.Phases[1].Serves) != 0 {
		t.Fatalf("phase 1: %+v", p.Phases[1])
	}
	move := p.Phases[1].Moves[0]
	if move != (Message{Src: 0, Dst: 3, Data: 0, Volume: 1}) {
		t.Fatalf("move = %+v", move)
	}
}

func TestFlitHopsMatchModel(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for iter := 0; iter < 30; iter++ {
		g := grid.New(1+rng.Intn(4), 1+rng.Intn(4))
		nd := 1 + rng.Intn(5)
		tr := trace.New(g, nd)
		for w := 0; w < 1+rng.Intn(4); w++ {
			win := tr.AddWindow()
			for r := 0; r < rng.Intn(12); r++ {
				win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
			}
		}
		m := cost.NewModel(tr)
		sc := cost.Schedule{Centers: make([][]int, tr.NumWindows())}
		for w := range sc.Centers {
			sc.Centers[w] = make([]int, nd)
			for d := range sc.Centers[w] {
				sc.Centers[w][d] = rng.Intn(g.NumProcs())
			}
		}
		p, err := Build(tr, sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if got, want := p.FlitHops(), m.TotalCost(sc); got != want {
			t.Fatalf("iter %d: plan flit-hops %d != model cost %d", iter, got, want)
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 1)
	tr.AddWindow().Add(0, 0)
	if _, err := Build(tr, cost.Schedule{}); err == nil {
		t.Error("short schedule accepted")
	}
	bad := trace.New(g, 1)
	bad.AddWindow().Refs = append(bad.Windows[0].Refs, trace.Ref{Proc: 9, Data: 0, Volume: 1})
	if _, err := Build(bad, cost.Uniform([]int{0}, 1)); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, _, p := buildSample(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != p.Grid || !reflect.DeepEqual(got.Phases, p.Phases) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got.Phases, p.Phases)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"missing grid", "pimplan v1\nphase\n"},
		{"bad grid", "pimplan v1\ngrid 0 2\n"},
		{"msg outside phase", "pimplan v1\ngrid 2 2\nmove 0 1 0 1\n"},
		{"bad argc", "pimplan v1\ngrid 2 2\nphase\nmove 0 1 0\n"},
		{"non-numeric", "pimplan v1\ngrid 2 2\nphase\nmove a 1 0 1\n"},
		{"unknown directive", "pimplan v1\ngrid 2 2\nbogus\n"},
		{"self loop", "pimplan v1\ngrid 2 2\nphase\nmove 1 1 0 1\n"},
		{"bad endpoint", "pimplan v1\ngrid 2 2\nphase\nserve 0 9 0 1\n"},
		{"zero volume", "pimplan v1\ngrid 2 2\nphase\nserve 0 1 0 0\n"},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Decode succeeded", c.name)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	g := grid.Square(4)
	tr := workload.Code{Seed: 11}.Generate(8, g)
	pr := sched.NewProblem(tr, 0)
	sc, err := sched.GOMCDS{}.Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(tr, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(tr, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Build is nondeterministic")
	}
	if a.NumMessages() == 0 {
		t.Fatal("plan carries no traffic for a remote-heavy workload")
	}
}

func TestEmptyPlan(t *testing.T) {
	tr := trace.New(grid.Square(2), 1)
	p, err := Build(tr, cost.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumMessages() != 0 || p.FlitHops() != 0 {
		t.Fatalf("empty plan: %d msgs", p.NumMessages())
	}
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err != nil {
		t.Fatal(err)
	}
}
