// Package plan lowers a data schedule into the executable
// communication plan a PIM runtime would ship to the array: for every
// execution window, the ordered list of data-movement messages (items
// whose centers changed) followed by the reference-serving messages
// (one aggregated transfer per item and remote reader). The plan is the
// boundary artifact between scheduling and execution — the simulator
// executes plans, and the text codec lets plans be stored or fed to
// external tooling.
package plan

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/trace"
)

// Message is one point-to-point transfer of a data item.
type Message struct {
	Src, Dst int
	Data     trace.DataID
	Volume   int64
}

// Phase is one execution window's traffic: the moves that establish the
// window's placement, then the serves that satisfy its references.
type Phase struct {
	Moves  []Message
	Serves []Message
}

// Plan is a complete lowered schedule.
type Plan struct {
	Grid   grid.Grid
	Phases []Phase
}

// Build lowers a schedule against its trace. Movement volume is the
// model's default item size (one unit); serve messages aggregate each
// (item, reader) pair's volume within the window. Messages are emitted
// in (item, processor) order, so plans are deterministic.
func Build(t *trace.Trace, s cost.Schedule) (*Plan, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("plan: %v", err)
	}
	if err := s.Validate(t.Grid, t.NumData, t.NumWindows()); err != nil {
		return nil, fmt.Errorf("plan: %v", err)
	}
	counts := t.BuildCounts()
	p := &Plan{Grid: t.Grid, Phases: make([]Phase, t.NumWindows())}
	for w := 0; w < t.NumWindows(); w++ {
		ph := &p.Phases[w]
		if w > 0 {
			for d := 0; d < t.NumData; d++ {
				from, to := s.Centers[w-1][d], s.Centers[w][d]
				if from != to {
					ph.Moves = append(ph.Moves, Message{Src: from, Dst: to, Data: trace.DataID(d), Volume: 1})
				}
			}
		}
		for d := 0; d < t.NumData; d++ {
			c := s.Centers[w][d]
			for proc, v := range counts[w][d] {
				if v != 0 && proc != c {
					ph.Serves = append(ph.Serves, Message{Src: c, Dst: proc, Data: trace.DataID(d), Volume: int64(v)})
				}
			}
		}
	}
	return p, nil
}

// NumMessages returns the total message count.
func (p *Plan) NumMessages() int {
	n := 0
	for i := range p.Phases {
		n += len(p.Phases[i].Moves) + len(p.Phases[i].Serves)
	}
	return n
}

// FlitHops returns the total volume-weighted hop count — the analytic
// communication cost the plan realizes.
func (p *Plan) FlitHops() int64 {
	var total int64
	for i := range p.Phases {
		for _, m := range p.Phases[i].Moves {
			total += m.Volume * int64(p.Grid.Dist(m.Src, m.Dst))
		}
		for _, m := range p.Phases[i].Serves {
			total += m.Volume * int64(p.Grid.Dist(m.Src, m.Dst))
		}
	}
	return total
}

// Validate checks every message's endpoints and volume.
func (p *Plan) Validate() error {
	np := p.Grid.NumProcs()
	check := func(kind string, w int, m Message) error {
		if m.Src < 0 || m.Src >= np || m.Dst < 0 || m.Dst >= np {
			return fmt.Errorf("plan: phase %d %s message endpoints (%d,%d) outside %v array", w, kind, m.Src, m.Dst, p.Grid)
		}
		if m.Src == m.Dst {
			return fmt.Errorf("plan: phase %d %s message is a self-loop on %d", w, kind, m.Src)
		}
		if m.Volume <= 0 {
			return fmt.Errorf("plan: phase %d %s message has volume %d", w, kind, m.Volume)
		}
		if m.Data < 0 {
			return fmt.Errorf("plan: phase %d %s message has negative item %d", w, kind, m.Data)
		}
		return nil
	}
	for w := range p.Phases {
		for _, m := range p.Phases[w].Moves {
			if err := check("move", w, m); err != nil {
				return err
			}
		}
		for _, m := range p.Phases[w].Serves {
			if err := check("serve", w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

const formatHeader = "pimplan v1"

// Encode writes the plan in a line-oriented text format:
//
//	pimplan v1
//	grid <w> <h>
//	phase
//	move <src> <dst> <data> <volume>
//	serve <src> <dst> <data> <volume>
func Encode(w io.Writer, p *Plan) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "grid %d %d\n", p.Grid.Width(), p.Grid.Height())
	for i := range p.Phases {
		fmt.Fprintln(bw, "phase")
		for _, m := range p.Phases[i].Moves {
			fmt.Fprintf(bw, "move %d %d %d %d\n", m.Src, m.Dst, m.Data, m.Volume)
		}
		for _, m := range p.Phases[i].Serves {
			fmt.Fprintf(bw, "serve %d %d %d %d\n", m.Src, m.Dst, m.Data, m.Volume)
		}
	}
	return bw.Flush()
}

// Decode parses and validates a plan.
func Decode(r io.Reader) (*Plan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	line, ok := next()
	if !ok || line != formatHeader {
		return nil, fmt.Errorf("plan: line %d: bad header %q", lineNo, line)
	}
	line, ok = next()
	if !ok {
		return nil, fmt.Errorf("plan: missing grid directive")
	}
	var gw, gh int
	if _, err := fmt.Sscanf(line, "grid %d %d", &gw, &gh); err != nil || gw <= 0 || gh <= 0 {
		return nil, fmt.Errorf("plan: line %d: bad grid %q", lineNo, line)
	}
	p := &Plan{Grid: grid.New(gw, gh)}
	for {
		line, ok = next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "phase":
			p.Phases = append(p.Phases, Phase{})
		case "move", "serve":
			if len(p.Phases) == 0 {
				return nil, fmt.Errorf("plan: line %d: message outside a phase", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("plan: line %d: %s takes four arguments", lineNo, fields[0])
			}
			vals := make([]int64, 4)
			for i, f := range fields[1:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("plan: line %d: malformed %q", lineNo, line)
				}
				vals[i] = v
			}
			m := Message{Src: int(vals[0]), Dst: int(vals[1]), Data: trace.DataID(vals[2]), Volume: vals[3]}
			ph := &p.Phases[len(p.Phases)-1]
			if fields[0] == "move" {
				ph.Moves = append(ph.Moves, m)
			} else {
				ph.Serves = append(ph.Serves, m)
			}
		default:
			return nil, fmt.Errorf("plan: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("plan: read: %v", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
