package costgraph

import (
	"math/rand"
	"testing"
)

// Steady-state allocation pins for the DP kernels: once a solver's
// scratch has grown to an instance's shape, repeat solves must never
// touch the heap. These back the service hot path — a regression here
// shows up as per-request garbage under load.

// allocInstance builds a flat layers x items x np cost cube and sizes.
func allocInstance(layers, items, width, height int) (cells []int64, sizes []int64) {
	rng := rand.New(rand.NewSource(41))
	np := width * height
	cells = make([]int64, layers*items*np)
	for i := range cells {
		cells[i] = int64(rng.Intn(1000))
	}
	sizes = make([]int64, items)
	for i := range sizes {
		sizes[i] = int64(1 + rng.Intn(4))
	}
	return cells, sizes
}

func TestSolveBatchZeroAlloc(t *testing.T) {
	const layers, items, n = 6, 5, 8
	cells, sizes := allocInstance(layers, items, n, n)
	s := NewSolver(n, n)
	s.SolveBatch(cells, layers, items, 0, items, sizes) // grow scratch once
	if a := testing.AllocsPerRun(100, func() {
		s.SolveBatch(cells, layers, items, 0, items, sizes)
	}); a != 0 {
		t.Fatalf("SolveBatch allocates %v per run, want 0", a)
	}
}

func TestSolveFromIntoZeroAlloc(t *testing.T) {
	const layers, n = 6, 8
	np := n * n
	cells, sizes := allocInstance(layers, 1, n, n)
	s := NewSolver(n, n)
	nodeCost := s.NodeCost(layers)
	for l := 0; l < layers; l++ {
		copy(nodeCost[l], cells[l*np:(l+1)*np])
	}
	f := make([]int64, layers*np)
	pred := make([]int, layers*np)
	path := make([]int, layers)
	if a := testing.AllocsPerRun(100, func() {
		if _, p := s.SolveFromInto(nodeCost, sizes[0], 0, f, pred, path); p == nil {
			t.Fatal("no path on an unconstrained instance")
		}
	}); a != 0 {
		t.Fatalf("SolveFromInto allocates %v per run, want 0", a)
	}
}
