package costgraph

import (
	"math/rand"
	"testing"
)

// TestSolveBatchMatchesSolve pins the batched layer-major sweep to the
// per-item Solve on random instances — identical totals, paths and
// tie-breaks for every item of every sub-range, including with
// forbidden (Inf) vertices sprinkled in.
func TestSolveBatchMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 200; iter++ {
		width, height := 1+rng.Intn(5), 1+rng.Intn(5)
		np := width * height
		layers, items := 1+rng.Intn(5), 1+rng.Intn(5)
		cells := make([]int64, layers*items*np)
		for i := range cells {
			if rng.Intn(6) == 0 {
				cells[i] = Inf
			} else {
				cells[i] = int64(rng.Intn(50))
			}
		}
		sizes := make([]int64, items)
		for i := range sizes {
			sizes[i] = int64(rng.Intn(4))
		}
		lo := rng.Intn(items)
		hi := lo + 1 + rng.Intn(items-lo)

		s := NewSolver(width, height)
		totals, paths := s.SolveBatch(cells, layers, items, lo, hi, sizes[lo:hi])

		ref := NewSolver(width, height)
		for i := lo; i < hi; i++ {
			nodeCost := make([][]int64, layers)
			for l := 0; l < layers; l++ {
				base := (l*items + i) * np
				nodeCost[l] = cells[base : base+np]
			}
			wantTotal, wantPath := ref.Solve(nodeCost, sizes[i])
			gotTotal := totals[i-lo]
			gotPath := paths[(i-lo)*layers : (i-lo+1)*layers]
			if gotTotal != wantTotal {
				t.Fatalf("iter %d item %d: batch total %d, Solve %d", iter, i, gotTotal, wantTotal)
			}
			if wantPath == nil {
				for l, p := range gotPath {
					if p != -1 {
						t.Fatalf("iter %d item %d: blocked item has path node %d at layer %d", iter, i, p, l)
					}
				}
				continue
			}
			for l := range wantPath {
				if gotPath[l] != wantPath[l] {
					t.Fatalf("iter %d item %d layer %d: batch chose %d, Solve chose %d",
						iter, i, l, gotPath[l], wantPath[l])
				}
			}
		}
	}
}

// TestSolveBatchEdgeCases covers degenerate shapes and the argument
// panics.
func TestSolveBatchEdgeCases(t *testing.T) {
	s := NewSolver(2, 2)
	totals, paths := s.SolveBatch(nil, 0, 3, 1, 1, nil)
	if len(totals) != 0 || len(paths) != 0 {
		t.Fatalf("empty range returned %d totals, %d path cells", len(totals), len(paths))
	}
	mustPanicBatch(t, "negative layers", func() { s.SolveBatch(nil, -1, 1, 0, 1, make([]int64, 1)) })
	mustPanicBatch(t, "range outside stride", func() { s.SolveBatch(nil, 0, 2, 1, 3, make([]int64, 2)) })
	mustPanicBatch(t, "sizes mismatch", func() { s.SolveBatch(nil, 0, 2, 0, 2, make([]int64, 1)) })
	mustPanicBatch(t, "short cells", func() {
		s.SolveBatch(make([]int64, 3), 1, 1, 0, 1, make([]int64, 1))
	})
}

func mustPanicBatch(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}
