package costgraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// solveInto runs SolveFrom(start=0) into fresh caller-owned state and
// returns the state alongside the answer.
func solveInto(s *Solver, nodeCost [][]int64, size int64) (int64, []int, []int64, []int) {
	np := s.width * s.height
	f := make([]int64, len(nodeCost)*np)
	pred := make([]int, len(nodeCost)*np)
	total, path := s.SolveFrom(nodeCost, size, 0, f, pred)
	return total, path, f, pred
}

// TestSolveFromScratchMatchesSolve pins SolveFrom(start=0) to Solve on
// random instances: identical totals and identical paths, including
// forbidden-Inf vertices and tie-heavy costs.
func TestSolveFromScratchMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 300; iter++ {
		nodeCost, w, h, size := randomGridInstance(rng)
		s := NewSolver(w, h)
		wantTotal, wantPath := s.Solve(nodeCost, size)
		gotTotal, gotPath, _, _ := solveInto(s, nodeCost, size)
		if gotTotal != wantTotal || !reflect.DeepEqual(gotPath, wantPath) {
			t.Fatalf("iter %d (%dx%d, size %d, %d layers): SolveFrom(0) (%d, %v) != Solve (%d, %v)",
				iter, w, h, size, len(nodeCost), gotTotal, gotPath, wantTotal, wantPath)
		}
	}
}

// TestSolveFromSuffixResume mutates a suffix of the layers, resumes the
// DP from the first dirty layer on the cached prefix rows, and demands
// the exact answer a full recomputation gives — total, path and the
// entire f/pred state.
func TestSolveFromSuffixResume(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 300; iter++ {
		nodeCost, w, h, size := randomGridInstance(rng)
		s := NewSolver(w, h)
		_, _, f, pred := solveInto(s, nodeCost, size)

		// Dirty layers [start, L): replace them with fresh random rows.
		L, np := len(nodeCost), w*h
		start := rng.Intn(L + 1)
		for l := start; l < L; l++ {
			for p := 0; p < np; p++ {
				if rng.Intn(5) == 0 {
					nodeCost[l][p] = Inf
				} else {
					nodeCost[l][p] = int64(rng.Intn(4))
				}
			}
		}

		gotTotal, gotPath := s.SolveFrom(nodeCost, size, start, f, pred)
		wantTotal, wantPath := s.Solve(nodeCost, size)
		if gotTotal != wantTotal || !reflect.DeepEqual(gotPath, wantPath) {
			t.Fatalf("iter %d (%dx%d, size %d, resume at %d/%d): resumed (%d, %v) != full (%d, %v)",
				iter, w, h, size, start, L, gotTotal, gotPath, wantTotal, wantPath)
		}
		_, _, wantF, wantPred := solveInto(s, nodeCost, size)
		if !reflect.DeepEqual(f, wantF) || !reflect.DeepEqual(pred, wantPred) {
			t.Fatalf("iter %d: resumed DP state diverges from a from-scratch run", iter)
		}
	}
}

// TestSolveFromFullStartOnlyRederivesPath resumes at start = L, which
// must not touch the cached rows, only re-pick the best final node and
// rebuild the path.
func TestSolveFromFullStartOnlyRederivesPath(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		nodeCost, w, h, size := randomGridInstance(rng)
		s := NewSolver(w, h)
		wantTotal, wantPath, f, pred := solveInto(s, nodeCost, size)
		fCopy := append([]int64(nil), f...)
		predCopy := append([]int(nil), pred...)
		gotTotal, gotPath := s.SolveFrom(nodeCost, size, len(nodeCost), f, pred)
		if gotTotal != wantTotal || !reflect.DeepEqual(gotPath, wantPath) {
			t.Fatalf("iter %d: start=L gave (%d, %v), want (%d, %v)", iter, gotTotal, gotPath, wantTotal, wantPath)
		}
		if !reflect.DeepEqual(f, fCopy) || !reflect.DeepEqual(pred, predCopy) {
			t.Fatalf("iter %d: start=L mutated cached DP state", iter)
		}
	}
}

// TestSolveFromEmptyAndPanics covers the degenerate zero-layer instance
// and the guard rails on bad arguments.
func TestSolveFromEmptyAndPanics(t *testing.T) {
	s := NewSolver(2, 2)
	if total, path := s.SolveFrom(nil, 1, 0, nil, nil); total != 0 || path != nil {
		t.Fatalf("empty instance gave (%d, %v), want (0, nil)", total, path)
	}

	nodeCost := [][]int64{{0, 1, 2, 3}, {1, 0, 1, 0}}
	f := make([]int64, 2*4)
	pred := make([]int, 2*4)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative start", func() { s.SolveFrom(nodeCost, 1, -1, f, pred) })
	mustPanic("start past L", func() { s.SolveFrom(nodeCost, 1, 3, f, pred) })
	mustPanic("short f", func() { s.SolveFrom(nodeCost, 1, 0, f[:4], pred) })
	mustPanic("short pred", func() { s.SolveFrom(nodeCost, 1, 0, f, pred[:4]) })
}

// TestSolveFromAllForbiddenSuffix resumes into a suffix whose layers are
// entirely forbidden, which must yield Inf and no path, exactly as a
// full solve does.
func TestSolveFromAllForbiddenSuffix(t *testing.T) {
	s := NewSolver(2, 1)
	nodeCost := [][]int64{{0, 1}, {1, 0}, {2, 2}}
	_, _, f, pred := solveInto(s, nodeCost, 1)
	nodeCost[2] = []int64{Inf, Inf}
	total, path := s.SolveFrom(nodeCost, 1, 2, f, pred)
	if total != Inf || path != nil {
		t.Fatalf("all-forbidden suffix gave (%d, %v), want (Inf, nil)", total, path)
	}
	if wantTotal, wantPath := s.Solve(nodeCost, 1); total != wantTotal || !reflect.DeepEqual(path, wantPath) {
		t.Fatalf("resumed (%d, %v) != full (%d, %v)", total, path, wantTotal, wantPath)
	}
}
