// Package costgraph provides the shortest-path machinery behind
// global-optimal multiple-center data scheduling (GOMCDS).
//
// The paper constructs, per data item, an edge-weighted directed
// acyclic "cost-graph": a pseudo source s, one vertex per (execution
// window, processor) pair, and a pseudo destination d. The shortest
// s-to-d path selects the globally optimal center sequence. Three
// implementations are provided:
//
//   - Graph, a general edge-weighted DAG with single-source shortest
//     paths by topological relaxation — the literal construction from
//     the paper, also usable for other scheduling graphs;
//   - ShortestLayeredPath, a dynamic program specialized to the layered
//     structure of cost-graphs that avoids materializing the O(n·m²)
//     edges but still relaxes every (from, to) pair per layer; and
//   - Solver / ShortestLayeredPathGrid (sweep.go), the production
//     kernel: the same DP with the per-layer relaxation done as a
//     separable min-plus sweep in O(P) instead of O(P²), valid because
//     the grid transition cost is size times the Manhattan distance.
//     Tests and internal/verify pin it to the dense version
//     path-for-path.
package costgraph

import (
	"fmt"
	"math"
)

// Inf is the distance reported for unreachable nodes.
const Inf = math.MaxInt64

type edge struct {
	to int
	w  int64
}

// Graph is an edge-weighted directed graph with a fixed vertex count.
// Edge weights must be non-negative for ShortestPath to be meaningful;
// the DAG restriction is checked at query time via topological sorting.
type Graph struct {
	adj      [][]edge
	indegree []int
	edges    int
}

// NewGraph returns a graph with n vertices, numbered 0..n-1, and no
// edges.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("costgraph: negative vertex count %d", n))
	}
	return &Graph{adj: make([][]edge, n), indegree: make([]int, n)}
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge adds a directed edge from -> to with weight w. It panics on
// out-of-range endpoints or negative weight, both programming errors in
// graph construction.
func (g *Graph) AddEdge(from, to int, w int64) {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic(fmt.Sprintf("costgraph: edge (%d,%d) outside %d-node graph", from, to, len(g.adj)))
	}
	if w < 0 {
		panic(fmt.Sprintf("costgraph: negative edge weight %d", w))
	}
	g.adj[from] = append(g.adj[from], edge{to: to, w: w})
	g.indegree[to]++
	g.edges++
}

// TopoOrder returns a topological ordering of the vertices, or an error
// if the graph contains a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.adj)
	indeg := make([]int, n)
	copy(indeg, g.indegree)
	queue := make([]int, 0, n)
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.adj[v] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("costgraph: graph contains a cycle (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// ShortestFrom computes single-source shortest path distances from src
// by relaxing edges in topological order. dist[v] == Inf marks v
// unreachable; prev[v] is the predecessor of v on a shortest path (or
// -1). It returns an error if the graph has a cycle.
func (g *Graph) ShortestFrom(src int) (dist []int64, prev []int, err error) {
	if src < 0 || src >= len(g.adj) {
		return nil, nil, fmt.Errorf("costgraph: source %d outside %d-node graph", src, len(g.adj))
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	n := len(g.adj)
	dist = make([]int64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	dist[src] = 0
	for _, v := range order {
		if dist[v] == Inf {
			continue
		}
		for _, e := range g.adj[v] {
			if nd := dist[v] + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = v
			}
		}
	}
	return dist, prev, nil
}

// ShortestPath returns the length and vertex sequence of a shortest
// path from src to dst. It returns an error when dst is unreachable or
// the graph is cyclic.
func (g *Graph) ShortestPath(src, dst int) (int64, []int, error) {
	if dst < 0 || dst >= len(g.adj) {
		return 0, nil, fmt.Errorf("costgraph: destination %d outside %d-node graph", dst, len(g.adj))
	}
	dist, prev, err := g.ShortestFrom(src)
	if err != nil {
		return 0, nil, err
	}
	if dist[dst] == Inf {
		return 0, nil, fmt.Errorf("costgraph: node %d unreachable from %d", dst, src)
	}
	var path []int
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[dst], path, nil
}

// ShortestLayeredPath solves the layered shortest-path problem directly:
// given L layers of m node costs (nodeCost[l][p] is the cost of
// standing at node p in layer l) and a transition cost trans(l, from,
// to) for moving from node `from` of layer l to node `to` of layer l+1,
// it returns the minimum total cost of a path visiting one node per
// layer and the chosen node per layer.
//
// This is exactly the paper's cost-graph with the pseudo source and
// destination elided: nodeCost plays the role of the residence cost
// folded into incoming edges, trans the data-movement cost. Layers may
// have different widths. ShortestLayeredPath panics on an empty layer,
// since a cost-graph always has one vertex per processor.
//
// A node cost of Inf marks the node forbidden (capacity-constrained
// schedulers exclude full processors this way). If every path is
// blocked, ShortestLayeredPath returns (Inf, nil).
func ShortestLayeredPath(nodeCost [][]int64, trans func(layer, from, to int) int64) (int64, []int) {
	if len(nodeCost) == 0 {
		return 0, nil
	}
	for l, layer := range nodeCost {
		if len(layer) == 0 {
			panic(fmt.Sprintf("costgraph: empty layer %d", l))
		}
	}
	// f holds the best cost of reaching each node of the current layer;
	// choice[l][p] is the predecessor giving that best cost.
	f := make([]int64, len(nodeCost[0]))
	copy(f, nodeCost[0])
	choice := make([][]int, len(nodeCost))
	var next []int64
	for l := 1; l < len(nodeCost); l++ {
		cur := nodeCost[l]
		next = append(next[:0], make([]int64, len(cur))...)
		pred := make([]int, len(cur))
		for to := range cur {
			next[to] = Inf
			pred[to] = -1
			if cur[to] == Inf {
				continue
			}
			for from := range f {
				if f[from] == Inf {
					continue
				}
				if c := f[from] + trans(l-1, from, to); c < next[to]-cur[to] {
					next[to] = c + cur[to]
					pred[to] = from
				}
			}
		}
		choice[l] = pred
		f = append(f[:0], next...)
	}
	// Select the best final node and walk predecessors back.
	bestEnd, best := -1, int64(Inf)
	for p, c := range f {
		if c < best {
			best, bestEnd = c, p
		}
	}
	if bestEnd == -1 {
		return Inf, nil
	}
	path := make([]int, len(nodeCost))
	path[len(path)-1] = bestEnd
	for l := len(nodeCost) - 1; l > 0; l-- {
		path[l-1] = choice[l][path[l]]
	}
	return best, path
}
