package costgraph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestShortestPathDiamond(t *testing.T) {
	// 0 -> 1 (1), 0 -> 2 (4), 1 -> 3 (10), 2 -> 3 (1): best 0-1? No:
	// 0-1-3 = 11, 0-2-3 = 5.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 3, 10)
	g.AddEdge(2, 3, 1)
	dist, path, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dist != 5 {
		t.Fatalf("dist = %d, want 5", dist)
	}
	if !reflect.DeepEqual(path, []int{0, 2, 3}) {
		t.Fatalf("path = %v", path)
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 3)
	dist, path, err := g.ShortestPath(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist != 0 || !reflect.DeepEqual(path, []int{0}) {
		t.Fatalf("dist=%d path=%v", dist, path)
	}
}

func TestUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	if _, _, err := g.ShortestPath(0, 2); err == nil {
		t.Fatal("unreachable node did not error")
	}
}

func TestCycleDetected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, _, err := g.ShortestPath(0, 2); err == nil {
		t.Fatal("ShortestPath on cyclic graph did not error")
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := NewGraph(6)
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {2, 5}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1], 1)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range edges {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("edge %v violates order %v", e, order)
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(2)
	cases := []struct {
		from, to int
		w        int64
	}{
		{-1, 0, 1}, {0, 2, 1}, {0, 1, -1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d,%d) did not panic", c.from, c.to, c.w)
				}
			}()
			g.AddEdge(c.from, c.to, c.w)
		}()
	}
}

func TestBadEndpoints(t *testing.T) {
	g := NewGraph(2)
	if _, _, err := g.ShortestFrom(5); err == nil {
		t.Error("bad source accepted")
	}
	if _, _, err := g.ShortestPath(0, 5); err == nil {
		t.Error("bad destination accepted")
	}
}

func TestZeroWeightEdges(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	dist, path, err := g.ShortestPath(0, 2)
	if err != nil || dist != 0 || len(path) != 3 {
		t.Fatalf("dist=%d path=%v err=%v", dist, path, err)
	}
}

func TestLayeredSingleLayer(t *testing.T) {
	total, path := ShortestLayeredPath([][]int64{{5, 2, 7}}, nil)
	if total != 2 || !reflect.DeepEqual(path, []int{1}) {
		t.Fatalf("total=%d path=%v", total, path)
	}
}

func TestLayeredEmpty(t *testing.T) {
	total, path := ShortestLayeredPath(nil, nil)
	if total != 0 || path != nil {
		t.Fatalf("total=%d path=%v", total, path)
	}
}

func TestLayeredPanicsOnEmptyLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty layer did not panic")
		}
	}()
	ShortestLayeredPath([][]int64{{1}, {}}, func(l, a, b int) int64 { return 0 })
}

func TestLayeredHandExample(t *testing.T) {
	// Two layers, two nodes. Node costs: [0: 0, 1: 10], [0: 10, 1: 0].
	// Transition cost 3 between different nodes, 0 for staying.
	nodeCost := [][]int64{{0, 10}, {10, 0}}
	trans := func(l, a, b int) int64 {
		if a == b {
			return 0
		}
		return 3
	}
	total, path := ShortestLayeredPath(nodeCost, trans)
	// Options: stay at 0 (0+10=10), stay at 1 (10+0=10), move 0->1
	// (0+3+0=3), move 1->0 (10+3+10=23). Best: 3 via [0,1].
	if total != 3 || !reflect.DeepEqual(path, []int{0, 1}) {
		t.Fatalf("total=%d path=%v", total, path)
	}
}

func TestLayeredStaysWhenMovingIsDear(t *testing.T) {
	nodeCost := [][]int64{{0, 1}, {2, 1}, {0, 1}}
	trans := func(l, a, b int) int64 {
		if a == b {
			return 0
		}
		return 100
	}
	total, path := ShortestLayeredPath(nodeCost, trans)
	if total != 2 || !reflect.DeepEqual(path, []int{0, 0, 0}) {
		// stay at 0: 0+2+0 = 2; stay at 1: 3.
		t.Fatalf("total=%d path=%v", total, path)
	}
}

// buildLayeredGraph materializes the layered problem as an explicit
// Graph with pseudo source and sink, mirroring the paper's cost-graph
// construction, for cross-validation.
func buildLayeredGraph(nodeCost [][]int64, trans func(l, a, b int) int64) (*Graph, int, int) {
	L := len(nodeCost)
	m := len(nodeCost[0])
	// Node numbering: src = 0, layer l node p = 1 + l*m + p, dst = 1 + L*m.
	g := NewGraph(2 + L*m)
	src, dst := 0, 1+L*m
	id := func(l, p int) int { return 1 + l*m + p }
	for p := 0; p < m; p++ {
		g.AddEdge(src, id(0, p), nodeCost[0][p])
	}
	for l := 0; l+1 < L; l++ {
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				g.AddEdge(id(l, a), id(l+1, b), trans(l, a, b)+nodeCost[l+1][b])
			}
		}
	}
	for p := 0; p < m; p++ {
		g.AddEdge(id(L-1, p), dst, 0)
	}
	return g, src, dst
}

// Property: the layered DP matches the explicit cost-graph shortest
// path on random instances (costs and the selected path's cost).
func TestLayeredMatchesExplicitGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		L := 1 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		nodeCost := make([][]int64, L)
		for l := range nodeCost {
			nodeCost[l] = make([]int64, m)
			for p := range nodeCost[l] {
				nodeCost[l][p] = int64(rng.Intn(50))
			}
		}
		moves := make([][]int64, m)
		for a := range moves {
			moves[a] = make([]int64, m)
			for b := range moves[a] {
				moves[a][b] = int64(rng.Intn(20))
			}
		}
		trans := func(l, a, b int) int64 { return moves[a][b] }

		wantTotal, path := ShortestLayeredPath(nodeCost, trans)

		g, src, dst := buildLayeredGraph(nodeCost, trans)
		gotTotal, _, err := g.ShortestPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if gotTotal != wantTotal {
			t.Fatalf("iter %d: DP total %d != graph total %d", iter, wantTotal, gotTotal)
		}
		// The DP's own path must cost what it claims.
		var check int64
		for l, p := range path {
			check += nodeCost[l][p]
			if l > 0 {
				check += trans(l-1, path[l-1], p)
			}
		}
		if check != wantTotal {
			t.Fatalf("iter %d: path %v costs %d, claimed %d", iter, path, check, wantTotal)
		}
	}
}

func BenchmarkLayeredDP(b *testing.B) {
	const L, m = 64, 16
	nodeCost := make([][]int64, L)
	rng := rand.New(rand.NewSource(1))
	for l := range nodeCost {
		nodeCost[l] = make([]int64, m)
		for p := range nodeCost[l] {
			nodeCost[l][p] = int64(rng.Intn(100))
		}
	}
	trans := func(l, a, b int) int64 { return int64((a - b) * (a - b) % 7) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestLayeredPath(nodeCost, trans)
	}
}

func TestLayeredForbiddenNodes(t *testing.T) {
	// Node (1,0) is forbidden; path must detour through (1,1).
	nodeCost := [][]int64{{0, 5}, {Inf, 1}, {0, 5}}
	trans := func(l, a, b int) int64 {
		if a == b {
			return 0
		}
		return 2
	}
	total, path := ShortestLayeredPath(nodeCost, trans)
	// 0 -> 1 -> 0: 0 + 2 + 1 + 2 + 0 = 5.
	if total != 5 || !reflect.DeepEqual(path, []int{0, 1, 0}) {
		t.Fatalf("total=%d path=%v", total, path)
	}
}

func TestLayeredAllForbidden(t *testing.T) {
	nodeCost := [][]int64{{0}, {Inf}}
	total, path := ShortestLayeredPath(nodeCost, func(l, a, b int) int64 { return 0 })
	if total != Inf || path != nil {
		t.Fatalf("total=%d path=%v, want Inf/nil", total, path)
	}
}

func TestLayeredForbiddenFirstLayer(t *testing.T) {
	nodeCost := [][]int64{{Inf, 3}, {1, Inf}}
	total, path := ShortestLayeredPath(nodeCost, func(l, a, b int) int64 { return 1 })
	// Only path: (0,1) -> (1,0): 3 + 1 + 1 = 5.
	if total != 5 || !reflect.DeepEqual(path, []int{1, 0}) {
		t.Fatalf("total=%d path=%v", total, path)
	}
}
