// Suffix resumption of the layered min-plus DP.
//
// The forward recurrence behind Solve is strictly causal: the
// reach-cost row f[l] and the predecessor row pred[l] depend only on
// node-cost layers 0..l. When a trace delta dirties layers from some
// index onward (an edited window dirties its own layer, an appended
// window only the new final layer), every cached row before the first
// dirty layer is still exactly what a full run would recompute, so the
// DP can resume from the cached row f[start-1] and relax forward over
// the suffix alone. Path reconstruction still walks the full
// predecessor matrix — cached prefix rows included — because a changed
// suffix can reroute the optimum through different prefix nodes; pred
// stores the argmin for every node of every layer, not just along the
// previously chosen path, so the walk-back is exact.
//
// SolveFrom is the session-facing form of Solve: the caller owns the f
// and pred matrices (they are the per-item DP state an incremental
// session keeps between deltas) and tells the solver the first layer
// whose cached rows are stale.
package costgraph

import "fmt"

// SolveFrom runs the layered shortest path like Solve, resuming from a
// cached prefix. f and pred are caller-owned flat layers x np matrices
// (row l occupies [l*np, (l+1)*np)); rows [0, start) must hold the
// rows a previous Solve-equivalent run produced over byte-identical
// node-cost layers [0, start). SolveFrom recomputes rows start..L-1 in
// place, leaving f and pred valid for the whole trace, and returns the
// total and path exactly as Solve would — bit-identical costs, paths
// and tie-breaks, because the recurrence it applies to the suffix is
// the same one that produced the prefix. start = 0 recomputes
// everything (a full Solve into caller-owned state); start = L
// recomputes nothing and only re-derives the best final node and path
// from the cached rows.
func (s *Solver) SolveFrom(nodeCost [][]int64, size int64, start int, f []int64, pred []int) (int64, []int) {
	return s.SolveFromInto(nodeCost, size, start, f, pred, nil)
}

// SolveFromInto is SolveFrom with a caller-supplied path buffer: when
// path has capacity for one node per layer the chosen path is written
// into it and the same backing is returned, making a steady-state
// resume allocation-free. A nil or short buffer falls back to a fresh
// allocation; a blocked instance returns (Inf, nil) regardless.
func (s *Solver) SolveFromInto(nodeCost [][]int64, size int64, start int, f []int64, pred []int, path []int) (int64, []int) {
	np := checkGridLayers(nodeCost, s.width, s.height)
	L := len(nodeCost)
	if L == 0 {
		return 0, nil
	}
	if start < 0 || start > L {
		panic(fmt.Sprintf("costgraph: resume layer %d outside [0,%d]", start, L))
	}
	if len(f) < L*np || len(pred) < L*np {
		panic(fmt.Sprintf("costgraph: resume state holds %d/%d cells, %d layers need %d",
			len(f), len(pred), L, L*np))
	}
	if start == 0 {
		copy(f[:np], nodeCost[0])
		for p := 0; p < np; p++ {
			pred[p] = -1 // layer 0 has no predecessors; walk-back never reads it
		}
		start = 1
	}
	for l := start; l < L; l++ {
		copy(s.f, f[(l-1)*np:l*np])
		s.relax(size)
		cur := nodeCost[l]
		fr := f[l*np : (l+1)*np]
		pr := pred[l*np : (l+1)*np]
		for to := 0; to < np; to++ {
			if cur[to] == Inf || s.g[to] == Inf {
				fr[to] = Inf
				pr[to] = -1
			} else {
				fr[to] = s.g[to] + cur[to]
				pr[to] = s.ga[to]
			}
		}
	}

	bestEnd, best := -1, int64(Inf)
	for p, c := range f[(L-1)*np : L*np] {
		if c < best {
			best, bestEnd = c, p
		}
	}
	if bestEnd == -1 {
		return Inf, nil
	}
	if cap(path) < L {
		path = make([]int, L)
	}
	path = path[:L]
	path[L-1] = bestEnd
	for l := L - 1; l > 0; l-- {
		path[l-1] = pred[l*np+path[l]]
	}
	return best, path
}
