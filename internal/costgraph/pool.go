// Process-lifetime solver pooling.
//
// A Solver's scratch is fixed to one grid shape, and a scheduling
// service sees a small set of shapes over its lifetime (most traffic is
// one array geometry). GetSolver/PutSolver keep one sync.Pool of
// solvers per shape so the DP scratch survives across requests instead
// of being reallocated per schedule call. The shape directory is a
// copy-on-write slice behind an atomic pointer: the hot path is one
// atomic load plus a scan of a handful of entries — no locks, no
// allocation — and only the first request for a brand-new shape takes
// the registration mutex.
package costgraph

import (
	"sync"
	"sync/atomic"
)

type solverPoolEntry struct {
	width, height int
	pool          *sync.Pool
}

var (
	solverPools   atomic.Pointer[[]solverPoolEntry]
	solverPoolsMu sync.Mutex // serializes registration of new shapes only
)

// GetSolver returns a solver for a width x height array from the
// process-lifetime pool, allocating one only when the pool is empty.
// Return it with PutSolver when done; a solver must not be shared
// between goroutines while checked out.
func GetSolver(width, height int) *Solver {
	if pool := lookupSolverPool(width, height); pool != nil {
		return pool.Get().(*Solver)
	}
	return registerSolverPool(width, height).Get().(*Solver)
}

// PutSolver returns a solver to its shape's pool. The solver must not
// be used after Put. Nil is a no-op.
func PutSolver(s *Solver) {
	if s == nil {
		return
	}
	if pool := lookupSolverPool(s.width, s.height); pool != nil {
		pool.Put(s)
	}
}

func lookupSolverPool(width, height int) *sync.Pool {
	list := solverPools.Load()
	if list == nil {
		return nil
	}
	for i := range *list {
		if (*list)[i].width == width && (*list)[i].height == height {
			return (*list)[i].pool
		}
	}
	return nil
}

func registerSolverPool(width, height int) *sync.Pool {
	solverPoolsMu.Lock()
	defer solverPoolsMu.Unlock()
	if pool := lookupSolverPool(width, height); pool != nil {
		return pool // raced with another registration
	}
	pool := &sync.Pool{New: func() any { return NewSolver(width, height) }}
	var next []solverPoolEntry
	if cur := solverPools.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, solverPoolEntry{width: width, height: height, pool: pool})
	solverPools.Store(&next)
	return pool
}
