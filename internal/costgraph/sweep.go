// Separable min-plus sweep kernel for the layered shortest path.
//
// The GOMCDS cost-graph's transition cost is size * ManhattanDist(from,
// to) on a 2-D processor array, so the layer-to-layer relaxation
//
//	g[to] = min_from f[from] + size * (|tx-fx| + |ty-fy|)
//
// is a min-plus convolution with a separable L1 kernel: it factors into
// an independent 1-D relaxation along x followed by one along y. Each
// 1-D relaxation is two linear sweeps (one per direction) with the
// running best shifted by size per step — the same trick the residence
// table uses (cost.Kernel), applied to the scheduler's own hot path.
// One layer costs O(P) instead of the dense O(P²), turning GOMCDS from
// O(D·W·P²) into O(D·W·P).
//
// Every sweep carries the argmin alongside the cost, with ties resolved
// exactly like the dense loop (the smallest linear `from` index wins),
// so the sweep kernel reproduces not just the dense kernel's path cost
// but its predecessor choices — schedules come out bit-identical.
package costgraph

import "fmt"

// Kernel selects the layered-relaxation algorithm GOMCDS runs per
// layer, mirroring cost.Kernel for the residence table.
type Kernel int

const (
	// KernelSweep is the separable min-plus sweep (the default):
	// O(P) per layer via four directional sweeps.
	KernelSweep Kernel = iota
	// KernelNaive relaxes every (from, to) pair: O(P²) per layer.
	KernelNaive
)

// String returns the kernel name.
func (k Kernel) String() string {
	switch k {
	case KernelSweep:
		return "sweep"
	case KernelNaive:
		return "naive"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// ShortestLayeredPathGrid is ShortestLayeredPath specialized to the
// grid transition cost size * ManhattanDist(from, to) on a width x
// height array (nodes are row-major linear indices, as in grid.Grid).
// It runs the separable sweep kernel in O(layers * width * height) and
// returns the same total and the same path as the dense relaxation,
// including on ties. Layers must all have width*height nodes. A node
// cost of Inf marks the node forbidden, exactly as in
// ShortestLayeredPath.
//
// Per-item callers should reuse a Solver instead; this convenience
// wrapper allocates fresh scratch per call.
func ShortestLayeredPathGrid(nodeCost [][]int64, width, height int, size int64) (int64, []int) {
	return NewSolver(width, height).Solve(nodeCost, size)
}

// ShortestLayeredPathNaive is the dense O(P²)-per-layer reference with
// the same grid signature as ShortestLayeredPathGrid, kept as the
// differential counterpart and as the KernelNaive fallback.
func ShortestLayeredPathNaive(nodeCost [][]int64, width, height int, size int64) (int64, []int) {
	checkGridLayers(nodeCost, width, height)
	return ShortestLayeredPath(nodeCost, func(_, from, to int) int64 {
		dx := from%width - to%width
		if dx < 0 {
			dx = -dx
		}
		dy := from/width - to/width
		if dy < 0 {
			dy = -dy
		}
		return size * int64(dx+dy)
	})
}

func checkGridLayers(nodeCost [][]int64, width, height int) int {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("costgraph: invalid grid %dx%d", width, height))
	}
	np := width * height
	for l, layer := range nodeCost {
		if len(layer) != np {
			panic(fmt.Sprintf("costgraph: layer %d has %d nodes, grid %dx%d needs %d",
				l, len(layer), width, height, np))
		}
	}
	return np
}

// Solver runs the sweep kernel with reusable scratch so per-item calls
// allocate only the returned path. A Solver is fixed to one grid shape
// and is not safe for concurrent use; share via a sync.Pool when
// solving in parallel.
type Solver struct {
	width, height int

	f    []int64 // best cost of reaching each node of the current layer
	hc   []int64 // horizontal-phase costs (per-row 1-D relaxation)
	ha   []int   // horizontal-phase argmins (linear source index)
	g    []int64 // relaxed costs after the vertical phase
	ga   []int   // relaxed argmins
	pred []int   // predecessor matrix, layers x np, backing store

	ncRows [][]int64 // NodeCost row headers
	ncFlat []int64   // NodeCost backing store

	// SolveBatch scratch (see batch.go): per-item reach costs of the
	// current layer, the full predecessor cube, and the returned
	// totals/paths/sizes buffers.
	batchF      []int64
	batchPred   []int
	batchTotals []int64
	batchPaths  []int
	batchSizes  []int64
}

// NewSolver returns a Solver for a width x height array.
func NewSolver(width, height int) *Solver {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("costgraph: invalid grid %dx%d", width, height))
	}
	np := width * height
	return &Solver{
		width:  width,
		height: height,
		f:      make([]int64, np),
		hc:     make([]int64, np),
		ha:     make([]int, np),
		g:      make([]int64, np),
		ga:     make([]int, np),
	}
}

// NodeCost returns a reused layers x (width*height) cost matrix for
// assembling a Solve input without per-call allocation. Row headers are
// re-derived from the backing store on every call, so callers may
// either write costs into the rows or repoint individual rows at
// existing slices (e.g. residence-table rows); contents are otherwise
// unspecified. The matrix is valid until the next NodeCost call.
func (s *Solver) NodeCost(layers int) [][]int64 {
	np := s.width * s.height
	if cap(s.ncRows) < layers {
		s.ncRows = make([][]int64, layers)
		s.ncFlat = make([]int64, layers*np)
	}
	s.ncRows = s.ncRows[:layers]
	for l := range s.ncRows {
		s.ncRows[l] = s.ncFlat[l*np : (l+1)*np : (l+1)*np]
	}
	return s.ncRows
}

// Solve runs the layered shortest path over the solver's grid with
// transition cost size * ManhattanDist(from, to). It returns the
// minimum total cost and the chosen node per layer — the identical
// result (costs, paths and tie-breaks) of the dense relaxation, in
// O(layers * width * height). Node costs of Inf mark forbidden
// vertices; if every path is blocked Solve returns (Inf, nil). The
// returned path is freshly allocated; all other scratch is reused
// across calls.
func (s *Solver) Solve(nodeCost [][]int64, size int64) (int64, []int) {
	np := checkGridLayers(nodeCost, s.width, s.height)
	L := len(nodeCost)
	if L == 0 {
		return 0, nil
	}
	if cap(s.pred) < L*np {
		s.pred = make([]int, L*np)
	}
	s.pred = s.pred[:L*np]

	f := s.f
	copy(f, nodeCost[0])
	for l := 1; l < L; l++ {
		s.relax(size)
		cur := nodeCost[l]
		pr := s.pred[l*np : (l+1)*np]
		for to := 0; to < np; to++ {
			if cur[to] == Inf || s.g[to] == Inf {
				f[to] = Inf
				pr[to] = -1
			} else {
				f[to] = s.g[to] + cur[to]
				pr[to] = s.ga[to]
			}
		}
	}

	bestEnd, best := -1, int64(Inf)
	for p, c := range f {
		if c < best {
			best, bestEnd = c, p
		}
	}
	if bestEnd == -1 {
		return Inf, nil
	}
	path := make([]int, L)
	path[L-1] = bestEnd
	for l := L - 1; l > 0; l-- {
		path[l-1] = s.pred[l*np+path[l]]
	}
	return best, path
}

// relax computes g[to] = min_from f[from] + size*dist(from, to) with
// argmins in ga, in four directional sweeps. The tie rule everywhere is
// "smallest linear source index wins", matching the dense loop's
// ascending-from strict-less scan:
//
//   - forward sweeps (left-to-right, top-to-bottom) cover sources at
//     coordinates <= the target's; on a tie they keep the carried
//     candidate, whose index is smaller;
//   - backward sweeps cover sources >= the target's; on a tie they
//     take the local source, whose index is smaller than the carried
//     one;
//   - merging backward into forward uses strict less-than, preferring
//     the forward candidate (smaller index) on ties.
//
// The vertical phase composes over the horizontal phase, so the final
// argmin minimizes y first and then x — exactly ascending linear
// (row-major) index order. Inf sources never enter a sweep (the
// running best is only shifted by size while finite), so forbidden
// vertices cannot overflow or leak a predecessor.
func (s *Solver) relax(size int64) {
	w, h := s.width, s.height
	f, hc, ha, g, ga := s.f, s.hc, s.ha, s.g, s.ga

	for y := 0; y < h; y++ {
		base := y * w
		bc, ba := int64(Inf), -1
		for x := 0; x < w; x++ {
			i := base + x
			if bc != Inf {
				bc += size
			}
			if f[i] < bc {
				bc, ba = f[i], i
			}
			hc[i], ha[i] = bc, ba
		}
		bc, ba = Inf, -1
		for x := w - 1; x >= 0; x-- {
			i := base + x
			if bc != Inf {
				bc += size
			}
			if f[i] != Inf && f[i] <= bc {
				bc, ba = f[i], i
			}
			if bc < hc[i] {
				hc[i], ha[i] = bc, ba
			}
		}
	}

	for x := 0; x < w; x++ {
		bc, ba := int64(Inf), -1
		for y := 0; y < h; y++ {
			i := y*w + x
			if bc != Inf {
				bc += size
			}
			if hc[i] < bc {
				bc, ba = hc[i], ha[i]
			}
			g[i], ga[i] = bc, ba
		}
		bc, ba = Inf, -1
		for y := h - 1; y >= 0; y-- {
			i := y*w + x
			if bc != Inf {
				bc += size
			}
			if hc[i] != Inf && hc[i] <= bc {
				bc, ba = hc[i], ha[i]
			}
			if bc < g[i] {
				g[i], ga[i] = bc, ba
			}
		}
	}
}
