package costgraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomGridInstance builds a random layered instance on a w x h grid:
// tie-heavy small costs, a sprinkling of forbidden (Inf) vertices, and
// sizes 0..3 (size 0 exercises free movement, where everything ties).
func randomGridInstance(rng *rand.Rand) (nodeCost [][]int64, w, h int, size int64) {
	w, h = 1+rng.Intn(5), 1+rng.Intn(5)
	switch rng.Intn(4) { // force degenerate shapes often
	case 0:
		h = 1
	case 1:
		w = 1
	}
	L := 1 + rng.Intn(5)
	nodeCost = make([][]int64, L)
	for l := range nodeCost {
		row := make([]int64, w*h)
		for p := range row {
			if rng.Intn(5) == 0 {
				row[p] = Inf
			} else {
				row[p] = int64(rng.Intn(4))
			}
		}
		nodeCost[l] = row
	}
	return nodeCost, w, h, int64(rng.Intn(4))
}

// TestSweepMatchesDense pins the sweep kernel to the dense relaxation
// on random instances: identical totals AND identical paths, so the
// smallest-index tie-breaking carries over exactly.
func TestSweepMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		nodeCost, w, h, size := randomGridInstance(rng)
		wantTotal, wantPath := ShortestLayeredPathNaive(nodeCost, w, h, size)
		gotTotal, gotPath := ShortestLayeredPathGrid(nodeCost, w, h, size)
		if gotTotal != wantTotal || !reflect.DeepEqual(gotPath, wantPath) {
			t.Fatalf("iter %d (%dx%d, size %d, %d layers): sweep (%d, %v) != dense (%d, %v)\nnodeCost=%v",
				iter, w, h, size, len(nodeCost), gotTotal, gotPath, wantTotal, wantPath, nodeCost)
		}
	}
}

// TestSolverReuseMatchesFresh reuses one Solver across many instances
// of the same shape and demands the same answers as fresh solves, so
// scratch from one item cannot leak into the next.
func TestSolverReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	solvers := map[[2]int]*Solver{}
	for iter := 0; iter < 200; iter++ {
		nodeCost, w, h, size := randomGridInstance(rng)
		key := [2]int{w, h}
		s := solvers[key]
		if s == nil {
			s = NewSolver(w, h)
			solvers[key] = s
		}
		wantTotal, wantPath := ShortestLayeredPathGrid(nodeCost, w, h, size)
		gotTotal, gotPath := s.Solve(nodeCost, size)
		if gotTotal != wantTotal || !reflect.DeepEqual(gotPath, wantPath) {
			t.Fatalf("iter %d (%dx%d): reused solver (%d, %v) != fresh (%d, %v)",
				iter, w, h, gotTotal, gotPath, wantTotal, wantPath)
		}
	}
}

// TestSolverNodeCostReuse checks the NodeCost scratch: rows may be
// written or repointed at foreign slices, and the next call hands back
// clean headers over the backing store.
func TestSolverNodeCostReuse(t *testing.T) {
	s := NewSolver(2, 2)
	rows := s.NodeCost(3)
	if len(rows) != 3 || len(rows[0]) != 4 {
		t.Fatalf("NodeCost(3) = %dx%d, want 3x4", len(rows), len(rows[0]))
	}
	foreign := []int64{9, 9, 9, 9}
	rows[1] = foreign // repoint, as the uncapacitated branch does
	rows = s.NodeCost(3)
	if &rows[1][0] == &foreign[0] {
		t.Fatal("NodeCost did not restore the repointed row header")
	}
	rows = s.NodeCost(2)
	if len(rows) != 2 {
		t.Fatalf("NodeCost(2) returned %d rows", len(rows))
	}
}

func TestSweepSingleLayer(t *testing.T) {
	total, path := ShortestLayeredPathGrid([][]int64{{5, 2, 7}}, 3, 1, 1)
	if total != 2 || !reflect.DeepEqual(path, []int{1}) {
		t.Fatalf("total=%d path=%v", total, path)
	}
}

func TestSweepEmpty(t *testing.T) {
	total, path := ShortestLayeredPathGrid(nil, 2, 2, 1)
	if total != 0 || path != nil {
		t.Fatalf("total=%d path=%v", total, path)
	}
}

func TestSweepAllForbidden(t *testing.T) {
	total, path := ShortestLayeredPathGrid([][]int64{{0, 0}, {Inf, Inf}}, 2, 1, 1)
	if total != Inf || path != nil {
		t.Fatalf("total=%d path=%v, want Inf/nil", total, path)
	}
}

func TestSweepForbiddenFirstLayer(t *testing.T) {
	// Mirrors TestLayeredForbiddenFirstLayer on a 2x1 grid with unit
	// size: only path is (0,1) -> (1,0): 3 + 1 + 1 = 5.
	nodeCost := [][]int64{{Inf, 3}, {1, Inf}}
	total, path := ShortestLayeredPathGrid(nodeCost, 2, 1, 1)
	if total != 5 || !reflect.DeepEqual(path, []int{1, 0}) {
		t.Fatalf("total=%d path=%v", total, path)
	}
}

func TestSweepPanicsOnBadLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mis-sized layer did not panic")
		}
	}()
	ShortestLayeredPathGrid([][]int64{{1, 2, 3}}, 2, 2, 1)
}

func TestSweepZeroSize(t *testing.T) {
	// With free movement every layer independently picks its cheapest
	// node, smallest index on ties.
	nodeCost := [][]int64{{4, 1, 1, 7}, {2, 2, 0, 5}}
	total, path := ShortestLayeredPathGrid(nodeCost, 2, 2, 0)
	if total != 1 || !reflect.DeepEqual(path, []int{1, 2}) {
		t.Fatalf("total=%d path=%v", total, path)
	}
}
