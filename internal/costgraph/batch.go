// Batched multi-item layered DP.
//
// Without a memory capacity every data item's cost-graph is
// independent, so the per-item DPs share nothing but the residence
// table they read. Solving them one item at a time walks that table
// item-major: all W layers of item 0, then all W layers of item 1 —
// every layer visit a strided jump of nd*np cells. SolveBatch inverts
// the loop nest: it sweeps every item of one layer before advancing to
// the next, so one layer pass streams through one contiguous run of
// the flat residence table ((w*nd + d)*np + c layout — all items of a
// window are adjacent). The recurrence applied per item is exactly the
// one Solve applies, including tie-breaks, so batched paths are
// bit-identical to per-item paths; internal/verify and the costgraph
// tests pin that.
package costgraph

import "fmt"

// BatchSizes returns a reused length-n slice for the per-item movement
// sizes of a SolveBatch call, so callers converting from other integer
// widths need no allocation of their own. Contents are unspecified;
// valid until the next BatchSizes call on this solver.
func (s *Solver) BatchSizes(n int) []int64 {
	if cap(s.batchSizes) < n {
		s.batchSizes = make([]int64, n)
	}
	s.batchSizes = s.batchSizes[:n]
	return s.batchSizes
}

// SolveBatch runs the layered shortest path of items [lo, hi) of a
// flat cost table in one layer-major sweep. cells holds the node costs
// of every (layer, item, node) triple at (l*stride + d)*np + c — the
// layout of cost.ResidenceTable.Cells() with stride = NumData — and
// sizes[i] is the transition weight of item lo+i. It returns the
// per-item path totals and the chosen paths flattened item-major
// (item i's node per layer at paths[i*layers : (i+1)*layers]). Both
// returned slices are solver-owned scratch, valid until the next
// SolveBatch call; steady-state calls allocate nothing. Node costs of
// Inf mark forbidden vertices exactly as in Solve; an item with every
// path blocked reports a total of Inf and a path row of -1.
func (s *Solver) SolveBatch(cells []int64, layers, stride, lo, hi int, sizes []int64) (totals []int64, paths []int) {
	np := s.width * s.height
	items := hi - lo
	switch {
	case layers < 0:
		panic(fmt.Sprintf("costgraph: negative layer count %d", layers))
	case lo < 0 || hi < lo || hi > stride:
		panic(fmt.Sprintf("costgraph: item range [%d,%d) outside stride %d", lo, hi, stride))
	case len(sizes) != items:
		panic(fmt.Sprintf("costgraph: %d sizes for %d items", len(sizes), items))
	case len(cells) < layers*stride*np:
		panic(fmt.Sprintf("costgraph: %d cells, %d layers x stride %d x %d nodes need %d",
			len(cells), layers, stride, np, layers*stride*np))
	}

	s.batchTotals = growInt64(s.batchTotals, items)
	s.batchPaths = growInt(s.batchPaths, items*layers)
	totals, paths = s.batchTotals, s.batchPaths
	if layers == 0 || items == 0 {
		return totals, paths
	}
	s.batchF = growInt64(s.batchF, items*np)
	s.batchPred = growInt(s.batchPred, layers*items*np)
	fb, pred := s.batchF, s.batchPred

	for i := 0; i < items; i++ {
		base := (lo + i) * np
		copy(fb[i*np:(i+1)*np], cells[base:base+np])
	}
	for l := 1; l < layers; l++ {
		layerBase := l * stride * np
		for i := 0; i < items; i++ {
			copy(s.f, fb[i*np:(i+1)*np])
			s.relax(sizes[i])
			cur := cells[layerBase+(lo+i)*np : layerBase+(lo+i+1)*np]
			fr := fb[i*np : (i+1)*np]
			pr := pred[(l*items+i)*np : (l*items+i+1)*np]
			for to := 0; to < np; to++ {
				if cur[to] == Inf || s.g[to] == Inf {
					fr[to] = Inf
					pr[to] = -1
				} else {
					fr[to] = s.g[to] + cur[to]
					pr[to] = s.ga[to]
				}
			}
		}
	}

	for i := 0; i < items; i++ {
		bestEnd, best := -1, int64(Inf)
		for p, c := range fb[i*np : (i+1)*np] {
			if c < best {
				best, bestEnd = c, p
			}
		}
		path := paths[i*layers : (i+1)*layers]
		if bestEnd == -1 {
			totals[i] = Inf
			for l := range path {
				path[l] = -1
			}
			continue
		}
		totals[i] = best
		path[layers-1] = bestEnd
		for l := layers - 1; l > 0; l-- {
			path[l-1] = pred[(l*items+i)*np+path[l]]
		}
	}
	return totals, paths
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
