package window

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
)

func randomProblem(rng *rand.Rand, capacitated bool) *sched.Problem {
	g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
	nd := 1 + rng.Intn(5)
	tr := trace.New(g, nd)
	for w := 0; w < 1+rng.Intn(6); w++ {
		win := tr.AddWindow()
		for r := 0; r < rng.Intn(12); r++ {
			win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
		}
	}
	capa := 0
	if capacitated {
		capa = placement.PaperCapacity(nd, g.NumProcs())
	}
	return sched.NewProblem(tr, capa)
}

func TestMethodString(t *testing.T) {
	if LocalCenters.String() != "local" || GlobalCenters.String() != "global" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method has empty name")
	}
}

func TestSingletonsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, false)
	g := Singletons(p)
	if err := g.Validate(p.Model.NumData, p.Model.NumWindows()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := Grouping{{{Start: 0, End: 1}}} // one item, but trace has two
	if err := bad.Validate(2, 1); err == nil {
		t.Error("wrong item count accepted")
	}
	bad = Grouping{{{Start: 1, End: 2}}} // gap at 0
	if err := bad.Validate(1, 2); err == nil {
		t.Error("gap accepted")
	}
	bad = Grouping{{{Start: 0, End: 1}}} // covers 1 of 2
	if err := bad.Validate(1, 2); err == nil {
		t.Error("partial cover accepted")
	}
}

// The paper's core claim for Algorithm 3: grouping never increases the
// total communication cost relative to the ungrouped (singleton)
// partition under the same center method.
func TestGreedyNeverWorseThanSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 60; iter++ {
		p := randomProblem(rng, false)
		for _, m := range []Method{LocalCenters, GlobalCenters} {
			grp := Greedy(p, m)
			if err := grp.Validate(p.Model.NumData, p.Model.NumWindows()); err != nil {
				t.Fatal(err)
			}
			grouped, err := Schedule(p, grp, m)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := Schedule(p, Singletons(p), m)
			if err != nil {
				t.Fatal(err)
			}
			cg, cp := p.Model.TotalCost(grouped), p.Model.TotalCost(plain)
			if cg > cp {
				t.Fatalf("iter %d method %v: grouped %d > ungrouped %d", iter, m, cg, cp)
			}
		}
	}
}

// The exact DP grouper is never worse than the greedy heuristic.
func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 60; iter++ {
		p := randomProblem(rng, false)
		og, err := Schedule(p, Optimal(p), LocalCenters)
		if err != nil {
			t.Fatal(err)
		}
		gg, err := Schedule(p, Greedy(p, LocalCenters), LocalCenters)
		if err != nil {
			t.Fatal(err)
		}
		if p.Model.TotalCost(og) > p.Model.TotalCost(gg) {
			t.Fatalf("iter %d: optimal %d > greedy %d", iter, p.Model.TotalCost(og), p.Model.TotalCost(gg))
		}
	}
}

// The DP grouper matches exhaustive enumeration of all partitions on
// tiny instances.
func TestOptimalMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 40; iter++ {
		g := grid.New(1+rng.Intn(2), 1+rng.Intn(2))
		tr := trace.New(g, 1)
		nw := 1 + rng.Intn(5)
		for w := 0; w < nw; w++ {
			win := tr.AddWindow()
			for r := 0; r < rng.Intn(6); r++ {
				win.Add(rng.Intn(g.NumProcs()), 0)
			}
		}
		p := sched.NewProblem(tr, 0)
		pd := newPerData(p, 0)

		best := int64(1) << 62
		var enumerate func(start int, acc []trace.Interval)
		enumerate = func(start int, acc []trace.Interval) {
			if start == nw {
				if c := pd.partitionCost(acc, LocalCenters); c < best {
					best = c
				}
				return
			}
			for end := start + 1; end <= nw; end++ {
				enumerate(end, append(acc, trace.Interval{Start: start, End: end}))
			}
		}
		enumerate(0, nil)

		got := pd.partitionCost(Optimal(p)[0], LocalCenters)
		if got != best {
			t.Fatalf("iter %d: DP cost %d, exhaustive %d", iter, got, best)
		}
	}
}

// Theorem 3: with the *closest pair* of local-optimal centers for two
// consecutive windows, merging them cannot reduce the total cost.
func TestTheorem3TwoWindowGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		g := grid.New(1+rng.Intn(4), 1+rng.Intn(4))
		tr := trace.New(g, 1)
		for w := 0; w < 2; w++ {
			win := tr.AddWindow()
			for r := 0; r < 1+rng.Intn(8); r++ {
				win.AddVolume(rng.Intn(g.NumProcs()), 0, 1+rng.Intn(3))
			}
		}
		p := sched.NewProblem(tr, 0)
		pd := newPerData(p, 0)

		// All local-optimal centers of each window.
		optima := func(w int) []int {
			_, best := pd.groupCenter(w, w+1)
			var out []int
			for c := 0; c < pd.np; c++ {
				if pd.groupResidence(w, w+1, c) == best {
					out = append(out, c)
				}
			}
			return out
		}
		o0, o1 := optima(0), optima(1)
		closest := 1 << 30
		for _, a := range o0 {
			for _, b := range o1 {
				if d := p.Model.Dist(a, b); d < closest {
					closest = d
				}
			}
		}
		_, r0 := pd.groupCenter(0, 1)
		_, r1 := pd.groupCenter(1, 2)
		ungrouped := r0 + r1 + pd.size*int64(closest)
		_, grouped := pd.groupCenter(0, 2)
		if grouped < ungrouped {
			t.Fatalf("iter %d: grouping reduced cost %d -> %d despite closest-pair centers",
				iter, ungrouped, grouped)
		}
	}
}

// Lemma 1 / Theorem 2: the residence cost of a window increases
// strictly monotonically along any shortest path from the optimal
// center closest to a target processor toward that target.
func TestMonotoneCostAlongPathFromClosestOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 300; iter++ {
		g := grid.New(2+rng.Intn(4), 2+rng.Intn(4))
		tr := trace.New(g, 1)
		win := tr.AddWindow()
		for r := 0; r < 1+rng.Intn(8); r++ {
			win.AddVolume(rng.Intn(g.NumProcs()), 0, 1+rng.Intn(3))
		}
		p := sched.NewProblem(tr, 0)
		pd := newPerData(p, 0)

		target := rng.Intn(g.NumProcs())
		// Optimal center closest to the target.
		_, best := pd.groupCenter(0, 1)
		closestOpt, closestDist := -1, 1<<30
		for c := 0; c < pd.np; c++ {
			if pd.groupResidence(0, 1, c) == best {
				if d := p.Model.Dist(c, target); d < closestDist {
					closestOpt, closestDist = c, d
				}
			}
		}
		// Walk the canonical x-y shortest path and check strict growth.
		path := g.Route(closestOpt, target)
		for i := 1; i < len(path); i++ {
			a := pd.groupResidence(0, 1, path[i-1])
			b := pd.groupResidence(0, 1, path[i])
			if b <= a {
				t.Fatalf("iter %d: cost not strictly increasing along %v: step %d: %d -> %d",
					iter, path, i, a, b)
			}
		}
	}
}

func TestScheduleCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, true)
		for _, m := range []Method{LocalCenters, GlobalCenters} {
			s, err := Schedule(p, Greedy(p, m), m)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(p.Model.Grid, p.Model.NumData, p.Model.NumWindows()); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < p.Model.NumWindows(); w++ {
				used := make([]int, p.Model.Grid.NumProcs())
				for d := 0; d < p.Model.NumData; d++ {
					used[s.Centers[w][d]]++
				}
				for proc, n := range used {
					if n > p.Capacity {
						t.Fatalf("iter %d method %v w%d: proc %d holds %d > %d", iter, m, w, proc, n, p.Capacity)
					}
				}
			}
		}
	}
}

// A group's windows all share one center in the built schedule (unless
// the capacity fallback split the group — excluded here by using no
// capacity).
func TestScheduleConstantWithinGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, false)
		grp := Greedy(p, LocalCenters)
		s, err := Schedule(p, grp, LocalCenters)
		if err != nil {
			t.Fatal(err)
		}
		for d, groups := range grp {
			for _, g := range groups {
				for w := g.Start + 1; w < g.End; w++ {
					if s.Centers[w][d] != s.Centers[g.Start][d] {
						t.Fatalf("iter %d: item %d group %v has centers %d and %d",
							iter, d, g, s.Centers[g.Start][d], s.Centers[w][d])
					}
				}
			}
		}
	}
}

// Grouping with LocalCenters on top of LOMCDS never does worse than
// plain LOMCDS (the Table 2 vs Table 1 comparison).
func TestGroupingImprovesOnLOMCDS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 60; iter++ {
		p := randomProblem(rng, false)
		lom, err := sched.LOMCDS{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		grouped, err := Schedule(p, Greedy(p, LocalCenters), LocalCenters)
		if err != nil {
			t.Fatal(err)
		}
		if p.Model.TotalCost(grouped) > p.Model.TotalCost(lom) {
			t.Fatalf("iter %d: grouped %d > LOMCDS %d", iter,
				p.Model.TotalCost(grouped), p.Model.TotalCost(lom))
		}
	}
}

func TestScheduleRejectsBadGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := randomProblem(rng, false)
	bad := make(Grouping, p.Model.NumData+1)
	if _, err := Schedule(p, bad, LocalCenters); err == nil {
		t.Error("bad grouping accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := trace.New(grid.Square(2), 2)
	p := sched.NewProblem(tr, 0)
	grp := Greedy(p, LocalCenters)
	s, err := Schedule(p, grp, LocalCenters)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWindows() != 0 {
		t.Fatal("schedule for empty trace has windows")
	}
}

func TestGreedyAcceptEqualMergesIdenticalWindows(t *testing.T) {
	// Four identical windows: the literal Algorithm 3 acceptance merges
	// them all into one group (cost stays equal), while the strict
	// variant keeps them apart — at the same final cost, since equal
	// centers imply no movement either way.
	g := grid.Square(3)
	tr := trace.New(g, 1)
	for w := 0; w < 4; w++ {
		win := tr.AddWindow()
		win.Add(0, 0)
		win.Add(8, 0)
	}
	p := sched.NewProblem(tr, 0)
	grp := GreedyAcceptEqual(p, LocalCenters)
	want := []trace.Interval{{Start: 0, End: 4}}
	if !reflect.DeepEqual(grp[0], want) {
		t.Fatalf("accept-equal grouping = %v, want %v", grp[0], want)
	}
	strict := Greedy(p, LocalCenters)
	sa, err := Schedule(p, strict, LocalCenters)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Schedule(p, grp, LocalCenters)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.TotalCost(sa) != p.Model.TotalCost(sb) {
		t.Fatalf("strict cost %d != accept-equal cost %d",
			p.Model.TotalCost(sa), p.Model.TotalCost(sb))
	}
}

func TestGreedySplitsAlternatingHotSpots(t *testing.T) {
	// Heavy references alternate between opposite corners; with a
	// light item (size 1) and heavy windows, the best partition keeps
	// per-window centers, so greedy must not merge everything.
	g := grid.Square(4)
	tr := trace.New(g, 1)
	for w := 0; w < 6; w++ {
		win := tr.AddWindow()
		corner := 0
		if w%2 == 1 {
			corner = 15
		}
		win.AddVolume(corner, 0, 100)
	}
	p := sched.NewProblem(tr, 0)
	grp := Greedy(p, LocalCenters)
	if len(grp[0]) == 1 {
		t.Fatalf("greedy merged alternating hot spots into one group: %v", grp[0])
	}
	s, err := Schedule(p, grp, LocalCenters)
	if err != nil {
		t.Fatal(err)
	}
	// The per-window LOMCDS schedule costs 6 moves of distance 6 = 36;
	// any single-center schedule costs >= 3*100*6. Grouped must stay at
	// the LOMCDS cost.
	if got := p.Model.TotalCost(s); got != 30 {
		t.Fatalf("grouped cost = %d, want 30 (5 moves of distance 6)", got)
	}
}

func BenchmarkGreedyLocal(b *testing.B) {
	benchGroup(b, func(p *sched.Problem) { Greedy(p, LocalCenters) })
}
func BenchmarkGreedyGlobal(b *testing.B) {
	benchGroup(b, func(p *sched.Problem) { Greedy(p, GlobalCenters) })
}
func BenchmarkOptimalDP(b *testing.B) { benchGroup(b, func(p *sched.Problem) { Optimal(p) }) }

func benchGroup(b *testing.B, fn func(*sched.Problem)) {
	rng := rand.New(rand.NewSource(30))
	g := grid.Square(4)
	tr := trace.New(g, 64)
	for w := 0; w < 24; w++ {
		win := tr.AddWindow()
		for r := 0; r < 256; r++ {
			win.Add(rng.Intn(16), trace.DataID(rng.Intn(64)))
		}
	}
	p := sched.NewProblem(tr, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(p)
	}
}
