// Package window implements the paper's execution-window optimization
// (Section 4): grouping consecutive execution windows, per data item,
// into larger windows whenever serving the merged window from a single
// center does not increase the total communication cost.
//
// The paper's Algorithm 3 is the greedy Grouper used in Table 2; the
// package also provides an exact dynamic-programming grouper as an
// ablation of that design choice, and the machinery to turn a grouping
// back into a per-(window, data) schedule under the memory capacity.
package window

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/costgraph"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Method selects how centers are computed for a given window partition,
// mirroring the paper's remark that COST(T) "can be obtained by either
// SCDS, LOMCDS or GOMCDS".
type Method int

const (
	// LocalCenters places each group at its local-optimal center (the
	// processor minimizing the merged residence cost), ignoring
	// movement while choosing — the LOMCDS discipline the paper uses
	// for Table 2.
	LocalCenters Method = iota
	// GlobalCenters chooses the group centers jointly by a shortest
	// path over the group sequence (the GOMCDS discipline).
	GlobalCenters
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case LocalCenters:
		return "local"
	case GlobalCenters:
		return "global"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Grouping holds one window partition per data item: Grouping[d] is the
// ordered list of half-open window intervals forming item d's merged
// execution windows.
type Grouping [][]trace.Interval

// perData carries the per-item cost machinery: prefix sums of the
// residence table so that the residence cost of any window interval at
// any center is O(1).
type perData struct {
	pre  [][]int64 // pre[w][c] = sum of table[0..w)[d][c]
	vol  []int64   // vol[w] = total reference volume of item d in windows [0, w)
	np   int
	size int64
	dist func(a, b int) int
}

func newPerData(p *sched.Problem, d int) *perData {
	nw, np := p.Model.NumWindows(), p.Model.Grid.NumProcs()
	counts := p.Model.Counts()
	pre := make([][]int64, nw+1)
	pre[0] = make([]int64, np)
	vol := make([]int64, nw+1)
	for w := 0; w < nw; w++ {
		row := make([]int64, np)
		tr := p.Table.Row(w, d)
		for c := 0; c < np; c++ {
			row[c] = pre[w][c] + tr[c]
		}
		pre[w+1] = row
		vol[w+1] = vol[w]
		for _, v := range counts[w][d] {
			vol[w+1] += int64(v)
		}
	}
	return &perData{pre: pre, vol: vol, np: np, size: int64(p.Model.DataSize[d]), dist: p.Model.Dist}
}

// referenced reports whether item d is referenced at all in windows
// [a, b).
func (pd *perData) referenced(a, b int) bool {
	return pd.vol[b] > pd.vol[a]
}

// groupResidence returns the residence cost of serving windows [a, b)
// from center c.
func (pd *perData) groupResidence(a, b, c int) int64 {
	return pd.pre[b][c] - pd.pre[a][c]
}

// groupCenter returns the local-optimal center of windows [a, b) and
// its residence cost (lowest index wins ties, the deterministic
// processor-list order).
func (pd *perData) groupCenter(a, b int) (center int, residence int64) {
	center, residence = 0, pd.groupResidence(a, b, 0)
	for c := 1; c < pd.np; c++ {
		if r := pd.groupResidence(a, b, c); r < residence {
			center, residence = c, r
		}
	}
	return center, residence
}

// partitionCost returns the total cost (residence + movement) of the
// partition under the given center method.
func (pd *perData) partitionCost(groups []trace.Interval, m Method) int64 {
	if len(groups) == 0 {
		return 0
	}
	switch m {
	case LocalCenters:
		// Unreferenced groups define no center: the item stays at the
		// previous group's center (or, before its first reference,
		// wherever the first referenced group will place it), so they
		// contribute neither residence nor movement.
		var total int64
		prev := -1
		for _, g := range groups {
			if !pd.referenced(g.Start, g.End) {
				continue
			}
			c, r := pd.groupCenter(g.Start, g.End)
			total += r
			if prev >= 0 {
				total += pd.size * int64(pd.dist(prev, c))
			}
			prev = c
		}
		return total
	case GlobalCenters:
		total, _ := pd.globalCenters(groups, nil)
		return total
	}
	panic(fmt.Sprintf("window: unknown method %v", m))
}

// globalCenters runs the layered shortest path over the group sequence.
// forbidden, when non-nil, reports whether center c is unusable for
// group g.
func (pd *perData) globalCenters(groups []trace.Interval, forbidden func(g, c int) bool) (int64, []int) {
	nodeCost := make([][]int64, len(groups))
	for gi, g := range groups {
		row := make([]int64, pd.np)
		for c := 0; c < pd.np; c++ {
			if forbidden != nil && forbidden(gi, c) {
				row[c] = costgraph.Inf
			} else {
				row[c] = pd.groupResidence(g.Start, g.End, c)
			}
		}
		nodeCost[gi] = row
	}
	return costgraph.ShortestLayeredPath(nodeCost, func(_, from, to int) int64 {
		return pd.size * int64(pd.dist(from, to))
	})
}

// Greedy runs Algorithm 3 independently (and in parallel) for every
// data item: starting from singleton windows, it extends the current
// group by the next window whenever the resulting partition's total
// cost strictly decreases, and otherwise starts a new group there.
//
// The literal Algorithm 3 accepts merges whose cost is merely equal
// ("if COST(TNEW) <= COST(T)"). Under this package's cost model an
// equal-cost merge can never lower the final cost, but it does lengthen
// the window span a single memory slot must be reserved for, which
// hurts placements under the memory capacity; Greedy therefore demands
// strict improvement. GreedyAcceptEqual provides the paper's literal
// acceptance rule for the grouping ablation.
func Greedy(p *sched.Problem, m Method) Grouping {
	return greedy(p, m, false)
}

// GreedyAcceptEqual is Algorithm 3 with its literal acceptance test:
// merges are confirmed whenever they do not increase the cost.
func GreedyAcceptEqual(p *sched.Problem, m Method) Grouping {
	return greedy(p, m, true)
}

func greedy(p *sched.Problem, m Method, acceptEqual bool) Grouping {
	nd, nw := p.Model.NumData, p.Model.NumWindows()
	grp := make(Grouping, nd)
	parallel.ForEach(nd, func(d int) {
		grp[d] = greedyOne(newPerData(p, d), nw, m, acceptEqual)
	})
	return grp
}

func greedyOne(pd *perData, nw int, m Method, acceptEqual bool) []trace.Interval {
	if nw == 0 {
		return nil
	}
	// confirmed holds the groups strictly before `start`; the candidate
	// group is [start, j] and windows after j are singletons.
	var confirmed []trace.Interval
	start := 0
	// Current partition: confirmed + [start, j) as one group + singletons.
	partition := func(j, end int) []trace.Interval {
		out := append([]trace.Interval(nil), confirmed...)
		out = append(out, trace.Interval{Start: start, End: end})
		for w := end; w < nw; w++ {
			out = append(out, trace.Interval{Start: w, End: w + 1})
		}
		return out
	}
	curCost := pd.partitionCost(partition(start, start+1), m)
	for j := start + 1; j < nw; j++ {
		candidate := partition(start, j+1)
		c := pd.partitionCost(candidate, m)
		if c < curCost || (acceptEqual && c == curCost) {
			curCost = c
			continue
		}
		// Grouping j in would raise the cost: close [start, j) and
		// start a new group at j.
		confirmed = append(confirmed, trace.Interval{Start: start, End: j})
		start = j
		curCost = pd.partitionCost(partition(start, start+1), m)
	}
	return append(confirmed, trace.Interval{Start: start, End: nw})
}

// Optimal computes, per data item, the partition minimizing the total
// cost under LocalCenters by dynamic programming over (previous
// boundary, current boundary) pairs. It is the exact counterpart of
// Greedy and exists as an ablation of the paper's heuristic choice; its
// cost is O(windows^3) per item.
func Optimal(p *sched.Problem) Grouping {
	nd, nw := p.Model.NumData, p.Model.NumWindows()
	grp := make(Grouping, nd)
	parallel.ForEach(nd, func(d int) {
		grp[d] = optimalOne(newPerData(p, d), nw)
	})
	return grp
}

func optimalOne(pd *perData, nw int) []trace.Interval {
	if nw == 0 {
		return nil
	}
	// An unreferenced group is cost-transparent (every center serves
	// zero references for free), so some optimal partition absorbs
	// every unreferenced window into a referenced neighbour. The DP
	// therefore only considers referenced groups; a fully unreferenced
	// item trivially takes a single group.
	if !pd.referenced(0, nw) {
		return []trace.Interval{{Start: 0, End: nw}}
	}
	// centers[a][b] and res[a][b]: local-optimal center and residence
	// of windows [a, b) (b > a).
	centers := make([][]int, nw)
	res := make([][]int64, nw)
	for a := 0; a < nw; a++ {
		centers[a] = make([]int, nw+1)
		res[a] = make([]int64, nw+1)
		for b := a + 1; b <= nw; b++ {
			centers[a][b], res[a][b] = pd.groupCenter(a, b)
		}
	}
	// best[a][b]: minimum cost of covering windows [0, b) where the
	// last group is exactly [a, b); prev[a][b] the previous group start.
	const inf = int64(costgraph.Inf)
	best := make([][]int64, nw)
	prevStart := make([][]int, nw)
	for a := 0; a < nw; a++ {
		best[a] = make([]int64, nw+1)
		prevStart[a] = make([]int, nw+1)
		for b := range best[a] {
			best[a][b] = inf
			prevStart[a][b] = -1
		}
	}
	for b := 1; b <= nw; b++ {
		for a := 0; a < b; a++ {
			if !pd.referenced(a, b) {
				continue
			}
			if a == 0 {
				best[a][b] = res[a][b]
				continue
			}
			for pa := 0; pa < a; pa++ {
				if best[pa][a] == inf {
					continue
				}
				move := pd.size * int64(pd.dist(centers[pa][a], centers[a][b]))
				if c := best[pa][a] + move + res[a][b]; c < best[a][b] {
					best[a][b] = c
					prevStart[a][b] = pa
				}
			}
		}
	}
	// Pick the best last group ending at nw and walk back.
	bestA, bestCost := 0, best[0][nw]
	for a := 1; a < nw; a++ {
		if best[a][nw] < bestCost {
			bestA, bestCost = a, best[a][nw]
		}
	}
	var rev []trace.Interval
	a, b := bestA, nw
	for {
		rev = append(rev, trace.Interval{Start: a, End: b})
		pa := prevStart[a][b]
		if pa < 0 && a == 0 {
			break
		}
		a, b = pa, a
	}
	out := make([]trace.Interval, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Singletons returns the identity grouping (no windows merged).
func Singletons(p *sched.Problem) Grouping {
	nd, nw := p.Model.NumData, p.Model.NumWindows()
	grp := make(Grouping, nd)
	for d := range grp {
		grp[d] = trace.SingletonIntervals(nw)
	}
	return grp
}

// Validate checks that every item's partition is a contiguous cover of
// the window sequence.
func (g Grouping) Validate(numData, numWindows int) error {
	if len(g) != numData {
		return fmt.Errorf("window: grouping covers %d items, trace has %d", len(g), numData)
	}
	for d, groups := range g {
		pos := 0
		for _, iv := range groups {
			if iv.Start != pos || iv.End <= iv.Start {
				return fmt.Errorf("window: item %d has malformed partition %v", d, groups)
			}
			pos = iv.End
		}
		if pos != numWindows {
			return fmt.Errorf("window: item %d partition covers %d of %d windows", d, pos, numWindows)
		}
	}
	return nil
}

// Schedule converts a grouping into a per-(window, item) schedule. For
// every item each group is served from one center chosen by the given
// method; under a memory capacity, items are committed in ID order and
// a center must have a free slot in every window of its group. When no
// single processor can host a whole group (possible under heavy
// capacity pressure), the item's group is split back into per-window
// first-available placements, which always succeed on feasible
// instances.
func Schedule(p *sched.Problem, grp Grouping, m Method) (cost.Schedule, error) {
	nd, nw, np := p.Model.NumData, p.Model.NumWindows(), p.Model.Grid.NumProcs()
	if err := grp.Validate(nd, nw); err != nil {
		return cost.Schedule{}, err
	}
	if p.Capacity > 0 && p.Capacity*np < nd {
		return cost.Schedule{}, fmt.Errorf("window: %d data items exceed total memory %d x %d", nd, np, p.Capacity)
	}
	centers := make([][]int, nw)
	for w := range centers {
		centers[w] = make([]int, nd)
	}
	if nw == 0 {
		return cost.Schedule{Centers: centers}, nil
	}

	if p.Capacity <= 0 {
		parallel.ForEach(nd, func(d int) {
			pd := newPerData(p, d)
			assignGroups(pd, grp[d], m, nil, func(w, c int) { centers[w][d] = c })
		})
		return cost.Schedule{Centers: centers}, nil
	}

	trackers := make([]*placement.Tracker, nw)
	for w := range trackers {
		trackers[w] = placement.NewTracker(np, p.Capacity)
	}
	for d := 0; d < nd; d++ {
		pd := newPerData(p, d)
		assignGroups(pd, grp[d], m, trackers, func(w, c int) {
			if !trackers[w].TryPlace(c) {
				panic("window: assigned a full processor")
			}
			centers[w][d] = c
		})
	}
	return cost.Schedule{Centers: centers}, nil
}

// assignGroups picks one center per group and reports the per-window
// choice through place(w, c). place must perform the capacity
// bookkeeping itself; trackers are only consulted for feasibility.
func assignGroups(pd *perData, groups []trace.Interval, m Method, trackers []*placement.Tracker, place func(w, c int)) {
	free := func(g trace.Interval, c int) bool {
		if trackers == nil {
			return true
		}
		for w := g.Start; w < g.End; w++ {
			if trackers[w].Capacity() > 0 && trackers[w].Used(c) >= trackers[w].Capacity() {
				return false
			}
		}
		return true
	}

	var chosen []int
	switch m {
	case GlobalCenters:
		_, path := pd.globalCenters(groups, func(gi, c int) bool { return !free(groups[gi], c) })
		chosen = path
	case LocalCenters:
		chosen = make([]int, len(groups))
		prev := -1
		nw := len(pd.vol) - 1
		for gi, g := range groups {
			best, bestCost := -1, int64(costgraph.Inf)
			for c := 0; c < pd.np; c++ {
				if !free(g, c) {
					continue
				}
				var r int64
				switch {
				case pd.referenced(g.Start, g.End):
					r = pd.groupResidence(g.Start, g.End, c)
				case prev >= 0:
					// No center defined: prefer staying at (or near) the
					// previous group's center.
					r = int64(pd.dist(prev, c))
				default:
					// Before the first reference: pre-place near the
					// item's whole-run best center.
					r = pd.groupResidence(0, nw, c)
				}
				if r < bestCost {
					best, bestCost = c, r
				}
			}
			if best < 0 {
				chosen = nil
				break
			}
			chosen[gi] = best
			prev = best
		}
	default:
		panic(fmt.Sprintf("window: unknown method %v", m))
	}

	if chosen != nil {
		for gi, g := range groups {
			for w := g.Start; w < g.End; w++ {
				place(w, chosen[gi])
			}
		}
		return
	}

	// Fallback: no center can host a whole group — place this item
	// window by window, choosing the free processor minimizing the
	// window residence plus the movement from the previous window's
	// placement. This always succeeds on feasible instances and avoids
	// dragging the item around when windows do not reference it.
	prev := -1
	for _, g := range groups {
		for w := g.Start; w < g.End; w++ {
			best, bestCost := -1, int64(costgraph.Inf)
			for c := 0; c < pd.np; c++ {
				if trackers != nil && trackers[w].Capacity() > 0 && trackers[w].Used(c) >= trackers[w].Capacity() {
					continue
				}
				r := pd.groupResidence(w, w+1, c)
				if prev >= 0 {
					r += pd.size * int64(pd.dist(prev, c))
				}
				if r < bestCost {
					best, bestCost = c, r
				}
			}
			if best < 0 {
				panic("window: no free processor in a feasible instance")
			}
			place(w, best)
			prev = best
		}
	}
}
