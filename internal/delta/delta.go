// Package delta implements incremental rescheduling over trace deltas.
//
// The offline pipeline prices a whole reference trace from scratch on
// every request, but real PIM workloads evolve between scheduling
// calls: a window is edited, a few reference strings are appended, a
// stale window is dropped. Both separable kernels the pipeline runs on
// are sums of per-axis, per-layer passes — the residence table has one
// independent row per (window, item) and the GOMCDS layered DP is a
// strictly causal forward recurrence — so a delta only dirties its own
// rows and the DP layers at and after the touched window. A Session
// owns a built {cost.Model, ResidenceTable}, patches exactly the
// dirtied rows on Apply, and re-runs the per-item DP only over the
// stale suffix on Schedule, turning a full O(W·D·(X+Y+P)) reprice into
// O(touched refs + suffix layers).
//
// Correctness discipline: delta semantics are definitional (Materialize
// is the single implementation both the session and any referee use),
// and the differential replay referee in internal/verify drives seeded
// delta sequences through a Session and a from-scratch recomputation in
// lockstep, asserting bit-identical tables, costs, schedules and
// fingerprints after every step.
package delta

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/trace"
)

// Op names one kind of trace mutation.
type Op string

const (
	// OpAppendWindow appends one execution window with the given events.
	OpAppendWindow Op = "append_window"
	// OpEditItem replaces one item's reference volumes in one window.
	OpEditItem Op = "edit_item"
	// OpRemoveWindow drops one execution window.
	OpRemoveWindow Op = "remove_window"
)

// Ref is one reference event of an appended window, mirroring trace.Ref
// with the wire-format field names of the session API.
type Ref struct {
	Proc   int          `json:"proc"`
	Data   trace.DataID `json:"data"`
	Volume int          `json:"volume"`
}

// Delta is one trace mutation. Op selects the kind; only the fields
// belonging to that kind are consulted:
//
//   - append_window: Refs (may be empty — an empty window is legal);
//   - edit_item: Window, Data and Volumes, where Volumes[p] is the
//     item's post-delta reference volume from processor p (0 = no
//     reference, so an all-zero edit un-references the item);
//   - remove_window: Window.
//
// The materialization of edit_item is deterministic: the window's
// events for the edited item are deleted (all other events keep their
// order), then one event per processor with a positive volume is
// appended in ascending processor order. Determinism matters because
// fingerprints hash event sequences — two replicas applying the same
// delta sequence must converge on identical fingerprints.
type Delta struct {
	Op      Op           `json:"op"`
	Window  int          `json:"window,omitempty"`
	Data    trace.DataID `json:"data,omitempty"`
	Volumes []int        `json:"volumes,omitempty"`
	Refs    []Ref        `json:"refs,omitempty"`
}

// AppendWindow returns a delta appending one window with the given
// events.
func AppendWindow(refs []Ref) Delta {
	return Delta{Op: OpAppendWindow, Refs: refs}
}

// EditItemVolumes returns a delta setting item d's per-processor
// reference volumes in window w.
func EditItemVolumes(w int, d trace.DataID, volumes []int) Delta {
	return Delta{Op: OpEditItem, Window: w, Data: d, Volumes: volumes}
}

// RemoveWindow returns a delta dropping window w.
func RemoveWindow(w int) Delta {
	return Delta{Op: OpRemoveWindow, Window: w}
}

// String renders the delta compactly for logs and errors.
func (d Delta) String() string {
	switch d.Op {
	case OpAppendWindow:
		return fmt.Sprintf("append_window(%d refs)", len(d.Refs))
	case OpEditItem:
		return fmt.Sprintf("edit_item(window %d, data %d)", d.Window, d.Data)
	case OpRemoveWindow:
		return fmt.Sprintf("remove_window(%d)", d.Window)
	}
	return fmt.Sprintf("delta(%q)", string(d.Op))
}

// Validate checks the delta against a trace shape: the grid, data-space
// size and current window count. It returns a descriptive error for
// the first violation.
func (d Delta) Validate(g grid.Grid, numData, numWindows int) error {
	np := g.NumProcs()
	switch d.Op {
	case OpAppendWindow:
		for i, r := range d.Refs {
			switch {
			case r.Proc < 0 || r.Proc >= np:
				return fmt.Errorf("delta: append ref %d: processor %d outside %v array", i, r.Proc, g)
			case r.Data < 0 || int(r.Data) >= numData:
				return fmt.Errorf("delta: append ref %d: data %d outside [0,%d)", i, r.Data, numData)
			case r.Volume <= 0:
				return fmt.Errorf("delta: append ref %d: non-positive volume %d", i, r.Volume)
			}
		}
		return nil
	case OpEditItem:
		if d.Window < 0 || d.Window >= numWindows {
			return fmt.Errorf("delta: edit window %d outside [0,%d)", d.Window, numWindows)
		}
		if d.Data < 0 || int(d.Data) >= numData {
			return fmt.Errorf("delta: edit data %d outside [0,%d)", d.Data, numData)
		}
		if len(d.Volumes) != np {
			return fmt.Errorf("delta: edit carries %d volumes, %v array has %d processors", len(d.Volumes), g, np)
		}
		for p, v := range d.Volumes {
			if v < 0 {
				return fmt.Errorf("delta: edit volume %d for processor %d is negative", v, p)
			}
		}
		return nil
	case OpRemoveWindow:
		if d.Window < 0 || d.Window >= numWindows {
			return fmt.Errorf("delta: remove window %d outside [0,%d)", d.Window, numWindows)
		}
		return nil
	}
	return fmt.Errorf("delta: unknown op %q", string(d.Op))
}

// Materialize applies the delta to a plain trace, in place. It is the
// definitional semantics of a delta: the incremental Session routes its
// own trace mutation through this same function, so a referee that
// replays a delta log onto a copy with Materialize reconstructs exactly
// the trace the session holds.
func Materialize(t *trace.Trace, d Delta) error {
	if err := d.Validate(t.Grid, t.NumData, len(t.Windows)); err != nil {
		return err
	}
	switch d.Op {
	case OpAppendWindow:
		w := t.AddWindow()
		for _, r := range d.Refs {
			w.AddVolume(r.Proc, r.Data, r.Volume)
		}
	case OpEditItem:
		win := &t.Windows[d.Window]
		kept := win.Refs[:0]
		for _, r := range win.Refs {
			if r.Data != d.Data {
				kept = append(kept, r)
			}
		}
		win.Refs = kept
		for p, v := range d.Volumes {
			if v > 0 {
				win.AddVolume(p, d.Data, v)
			}
		}
	case OpRemoveWindow:
		t.Windows = append(t.Windows[:d.Window], t.Windows[d.Window+1:]...)
	}
	return nil
}
