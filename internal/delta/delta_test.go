package delta

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/trace"
)

func TestValidateErrors(t *testing.T) {
	g := grid.New(2, 2) // 4 processors
	cases := []struct {
		name string
		d    Delta
		want string // substring of the error, "" for valid
	}{
		{"append ok", AppendWindow([]Ref{{Proc: 3, Data: 1, Volume: 2}}), ""},
		{"append empty window ok", AppendWindow(nil), ""},
		{"append proc high", AppendWindow([]Ref{{Proc: 4, Data: 0, Volume: 1}}), "processor 4"},
		{"append proc negative", AppendWindow([]Ref{{Proc: -1, Data: 0, Volume: 1}}), "processor -1"},
		{"append data high", AppendWindow([]Ref{{Proc: 0, Data: 2, Volume: 1}}), "data 2"},
		{"append zero volume", AppendWindow([]Ref{{Proc: 0, Data: 0, Volume: 0}}), "non-positive volume"},
		{"edit ok", EditItemVolumes(1, 0, []int{0, 1, 0, 2}), ""},
		{"edit all-zero ok", EditItemVolumes(0, 1, []int{0, 0, 0, 0}), ""},
		{"edit window high", EditItemVolumes(3, 0, []int{0, 0, 0, 0}), "window 3"},
		{"edit window negative", EditItemVolumes(-1, 0, []int{0, 0, 0, 0}), "window -1"},
		{"edit data high", EditItemVolumes(0, 5, []int{0, 0, 0, 0}), "data 5"},
		{"edit short volumes", EditItemVolumes(0, 0, []int{1, 2}), "2 volumes"},
		{"edit negative volume", EditItemVolumes(0, 0, []int{0, -3, 0, 0}), "volume -3"},
		{"remove ok", RemoveWindow(2), ""},
		{"remove high", RemoveWindow(3), "window 3"},
		{"remove negative", RemoveWindow(-2), "window -2"},
		{"unknown op", Delta{Op: "compact"}, "unknown op"},
	}
	for _, tc := range cases {
		err := tc.d.Validate(g, 2, 3)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestMaterializeSemantics(t *testing.T) {
	newTrace := func() *trace.Trace {
		tr := trace.New(grid.New(2, 1), 2)
		w := tr.AddWindow()
		w.AddVolume(0, 0, 1)
		w.AddVolume(1, 1, 2)
		w.AddVolume(1, 0, 3)
		tr.AddWindow().AddVolume(0, 1, 4)
		return tr
	}

	t.Run("append", func(t *testing.T) {
		tr := newTrace()
		if err := Materialize(tr, AppendWindow([]Ref{{Proc: 1, Data: 0, Volume: 7}})); err != nil {
			t.Fatal(err)
		}
		if len(tr.Windows) != 3 {
			t.Fatalf("got %d windows, want 3", len(tr.Windows))
		}
		refs := tr.Windows[2].Refs
		if len(refs) != 1 || refs[0] != (trace.Ref{Proc: 1, Data: 0, Volume: 7}) {
			t.Fatalf("appended window holds %v", refs)
		}
	})

	t.Run("edit preserves other items' order", func(t *testing.T) {
		tr := newTrace()
		if err := Materialize(tr, EditItemVolumes(0, 0, []int{5, 0})); err != nil {
			t.Fatal(err)
		}
		want := []trace.Ref{{Proc: 1, Data: 1, Volume: 2}, {Proc: 0, Data: 0, Volume: 5}}
		got := tr.Windows[0].Refs
		if len(got) != len(want) {
			t.Fatalf("edited window holds %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("edited window holds %v, want %v", got, want)
			}
		}
	})

	t.Run("edit appends in ascending processor order", func(t *testing.T) {
		tr := newTrace()
		if err := Materialize(tr, EditItemVolumes(1, 1, []int{9, 8})); err != nil {
			t.Fatal(err)
		}
		got := tr.Windows[1].Refs
		want := []trace.Ref{{Proc: 0, Data: 1, Volume: 9}, {Proc: 1, Data: 1, Volume: 8}}
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("edited window holds %v, want %v", got, want)
		}
	})

	t.Run("all-zero edit un-references the item", func(t *testing.T) {
		tr := newTrace()
		if err := Materialize(tr, EditItemVolumes(0, 0, []int{0, 0})); err != nil {
			t.Fatal(err)
		}
		for _, r := range tr.Windows[0].Refs {
			if r.Data == 0 {
				t.Fatalf("item 0 still referenced: %v", tr.Windows[0].Refs)
			}
		}
	})

	t.Run("remove splices", func(t *testing.T) {
		tr := newTrace()
		if err := Materialize(tr, RemoveWindow(0)); err != nil {
			t.Fatal(err)
		}
		if len(tr.Windows) != 1 || len(tr.Windows[0].Refs) != 1 || tr.Windows[0].Refs[0].Volume != 4 {
			t.Fatalf("remaining windows: %+v", tr.Windows)
		}
	})

	t.Run("invalid delta leaves trace untouched", func(t *testing.T) {
		tr := newTrace()
		before := tr.Fingerprint()
		if err := Materialize(tr, RemoveWindow(5)); err == nil {
			t.Fatal("expected error")
		}
		if tr.Fingerprint() != before {
			t.Fatal("failed Materialize mutated the trace")
		}
	})
}

// TestMaterializeDeterministic applies the same delta to two equal
// traces and demands identical fingerprints — the property the chained
// session fingerprint relies on.
func TestMaterializeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := grid.New(3, 2)
	np := g.NumProcs()
	tr := trace.New(g, 3)
	for w := 0; w < 4; w++ {
		win := tr.AddWindow()
		for r := 0; r < 5; r++ {
			win.AddVolume(rng.Intn(np), trace.DataID(rng.Intn(3)), 1+rng.Intn(4))
		}
	}
	for step := 0; step < 20; step++ {
		a, b := tr.Clone(), tr.Clone()
		vols := make([]int, np)
		for p := range vols {
			vols[p] = rng.Intn(3)
		}
		d := EditItemVolumes(rng.Intn(len(tr.Windows)), trace.DataID(rng.Intn(3)), vols)
		if err := Materialize(a, d); err != nil {
			t.Fatal(err)
		}
		if err := Materialize(b, d); err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("step %d: same delta on equal traces diverged", step)
		}
		tr = a
	}
}

func TestDeltaString(t *testing.T) {
	cases := map[string]Delta{
		"append_window(2 refs)":       AppendWindow(make([]Ref, 2)),
		"edit_item(window 3, data 1)": EditItemVolumes(3, 1, nil),
		"remove_window(4)":            RemoveWindow(4),
		`delta("gc")`:                 {Op: "gc"},
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
