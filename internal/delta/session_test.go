package delta

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/trace"
)

// fullRecompute schedules the trace from scratch with the session's
// algorithm — the oracle every session answer is pinned against.
func fullRecompute(t *testing.T, tr *trace.Trace, scheduler sched.Scheduler, capacity int) (cost.Schedule, cost.Breakdown) {
	t.Helper()
	p := sched.NewProblem(tr, capacity)
	s, err := scheduler.Schedule(p)
	if err != nil {
		t.Fatalf("full recompute: %v", err)
	}
	return s, p.Model.Evaluate(s)
}

func randomDelta(rng *rand.Rand, tr *trace.Trace) Delta {
	np := tr.Grid.NumProcs()
	switch op := rng.Intn(3); {
	case op == 0 || len(tr.Windows) == 0:
		refs := make([]Ref, rng.Intn(5))
		for i := range refs {
			refs[i] = Ref{Proc: rng.Intn(np), Data: trace.DataID(rng.Intn(tr.NumData)), Volume: 1 + rng.Intn(4)}
		}
		return AppendWindow(refs)
	case op == 1:
		vols := make([]int, np)
		for p := range vols {
			vols[p] = rng.Intn(3) // often zero; sometimes a full no-op edit
		}
		return EditItemVolumes(rng.Intn(len(tr.Windows)), trace.DataID(rng.Intn(tr.NumData)), vols)
	default:
		return RemoveWindow(rng.Intn(len(tr.Windows)))
	}
}

// TestSessionMatchesFullRecompute drives random delta sequences through
// an incremental session and pins every answer — fingerprint, window
// count, schedule, cost split — to a from-scratch recomputation.
func TestSessionMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	scheduler := sched.GOMCDS{}
	for i := 0; i < 30; i++ {
		g := grid.New(1+rng.Intn(4), 1+rng.Intn(4))
		tr := trace.New(g, 1+rng.Intn(4))
		for w := 0; w < rng.Intn(4); w++ {
			win := tr.AddWindow()
			for r := rng.Intn(5); r > 0; r-- {
				win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(tr.NumData)), 1+rng.Intn(3))
			}
		}
		s, err := NewSession(tr, scheduler, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		shadow := tr.Clone()
		for step := 0; step < 12; step++ {
			d := randomDelta(rng, shadow)
			res, err := s.Apply(d)
			if err != nil {
				t.Fatalf("instance %d step %d: apply %v: %v", i, step, d, err)
			}
			if err := Materialize(shadow, d); err != nil {
				t.Fatalf("instance %d step %d: materialize %v: %v", i, step, d, err)
			}
			if res.Seq != uint64(step+1) {
				t.Fatalf("instance %d step %d: seq %d", i, step, res.Seq)
			}
			if res.NumWindows != len(shadow.Windows) {
				t.Fatalf("instance %d step %d: session has %d windows, shadow %d", i, step, res.NumWindows, len(shadow.Windows))
			}
			if want := shadow.Fingerprint(); res.Fingerprint != want {
				t.Fatalf("instance %d step %d: session fingerprint %v != materialized %v", i, step, res.Fingerprint, want)
			}
			got, err := s.Schedule()
			if err != nil {
				t.Fatalf("instance %d step %d: schedule: %v", i, step, err)
			}
			wantSched, wantBD := fullRecompute(t, shadow, scheduler, 0)
			if !got.Schedule.Equal(wantSched) {
				t.Fatalf("instance %d step %d after %v: incremental schedule %v != full %v",
					i, step, d, got.Schedule, wantSched)
			}
			if got.Cost != wantBD {
				t.Fatalf("instance %d step %d after %v: incremental cost %+v != full %+v",
					i, step, d, got.Cost, wantBD)
			}
		}
	}
}

// TestSessionScheduleCache asserts the cached flag: a repeat Schedule
// with no intervening delta is served from cache with zero layers, and
// any delta invalidates it.
func TestSessionScheduleCache(t *testing.T) {
	tr := trace.New(grid.New(2, 2), 2)
	w := tr.AddWindow()
	w.AddVolume(0, 0, 3)
	w.AddVolume(3, 1, 1)
	tr.AddWindow().AddVolume(2, 0, 2)

	var layerCalls []int
	s, err := NewSession(tr, sched.GOMCDS{}, 0, Options{OnLayersRecomputed: func(l int) { layerCalls = append(layerCalls, l) }})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.LayersRecomputed != 4 { // 2 items x 2 windows
		t.Fatalf("first schedule: cached=%v layers=%d", first.Cached, first.LayersRecomputed)
	}
	again, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.LayersRecomputed != 0 {
		t.Fatalf("repeat schedule: cached=%v layers=%d", again.Cached, again.LayersRecomputed)
	}
	if !again.Schedule.Equal(first.Schedule) || again.Cost != first.Cost {
		t.Fatal("cached schedule differs from computed one")
	}

	if _, err := s.Apply(EditItemVolumes(0, 0, []int{0, 0, 0, 5})); err != nil {
		t.Fatal(err)
	}
	after, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	// Editing item 0 in window 0 dirties only that item's two layers.
	if after.Cached || after.LayersRecomputed != 2 {
		t.Fatalf("post-delta schedule: cached=%v layers=%d, want fresh with 2 layers", after.Cached, after.LayersRecomputed)
	}
	if len(layerCalls) != 2 || layerCalls[0] != 4 || layerCalls[1] != 2 {
		t.Fatalf("OnLayersRecomputed saw %v, want [4 2]", layerCalls)
	}
}

// TestSessionFallbackPath covers the non-incremental configurations:
// SCDS, LOMCDS and capacity-bounded GOMCDS re-run their scheduler in
// full over the patched table, and still match a from-scratch run.
func TestSessionFallbackPath(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	cases := []struct {
		name      string
		scheduler sched.Scheduler
		capacity  int
	}{
		{"scds", sched.SCDS{}, 0},
		{"lomcds", sched.LOMCDS{}, 0},
		{"gomcds capacity", sched.GOMCDS{}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := grid.New(2, 2)
			tr := trace.New(g, 2)
			for w := 0; w < 3; w++ {
				win := tr.AddWindow()
				for r := 0; r < 4; r++ {
					win.AddVolume(rng.Intn(4), trace.DataID(rng.Intn(2)), 1+rng.Intn(3))
				}
			}
			s, err := NewSession(tr, tc.scheduler, tc.capacity, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if s.incremental {
				t.Fatal("fallback configuration took the incremental DP path")
			}
			shadow := tr.Clone()
			for step := 0; step < 6; step++ {
				d := randomDelta(rng, shadow)
				if _, err := s.Apply(d); err != nil {
					t.Fatal(err)
				}
				if err := Materialize(shadow, d); err != nil {
					t.Fatal(err)
				}
				got, err := s.Schedule()
				if err != nil {
					t.Fatal(err)
				}
				wantSched, wantBD := fullRecompute(t, shadow, tc.scheduler, tc.capacity)
				if !got.Schedule.Equal(wantSched) || got.Cost != wantBD {
					t.Fatalf("step %d after %v: fallback session diverged from full recompute", step, d)
				}
			}
		})
	}
}

// TestSessionRemoveToEmpty drains a trace window by window and
// schedules at every size, including the empty trace.
func TestSessionRemoveToEmpty(t *testing.T) {
	tr := trace.New(grid.New(2, 1), 2)
	tr.AddWindow().AddVolume(0, 0, 1)
	tr.AddWindow().AddVolume(1, 1, 2)
	tr.AddWindow().AddVolume(0, 1, 3)
	s, err := NewSession(tr, sched.GOMCDS{}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shadow := tr.Clone()
	for len(shadow.Windows) > 0 {
		d := RemoveWindow(0)
		if _, err := s.Apply(d); err != nil {
			t.Fatal(err)
		}
		if err := Materialize(shadow, d); err != nil {
			t.Fatal(err)
		}
		got, err := s.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		wantSched, wantBD := fullRecompute(t, shadow, sched.GOMCDS{}, 0)
		if !got.Schedule.Equal(wantSched) || got.Cost != wantBD {
			t.Fatalf("at %d windows: session diverged from full recompute", len(shadow.Windows))
		}
	}
	if got, _ := s.Schedule(); len(got.Schedule.Centers) != 0 || got.Cost.Total() != 0 {
		t.Fatalf("empty trace scheduled to %+v", got)
	}
}

func TestNewSessionErrors(t *testing.T) {
	tr := trace.New(grid.New(2, 2), 1)
	if _, err := NewSession(nil, sched.GOMCDS{}, 0, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewSession(tr, nil, 0, Options{}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := NewSession(tr, sched.GOMCDS{}, -1, Options{}); err == nil {
		t.Error("negative capacity accepted")
	}
	bad := trace.New(grid.New(2, 2), 1)
	bad.AddWindow().Refs = []trace.Ref{{Proc: 99, Data: 0, Volume: 1}}
	if _, err := NewSession(bad, sched.GOMCDS{}, 0, Options{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

// TestSessionTraceIsolated asserts the session clones its input and
// its Trace() output, so neither side can mutate the other.
func TestSessionTraceIsolated(t *testing.T) {
	tr := trace.New(grid.New(2, 1), 1)
	tr.AddWindow().AddVolume(0, 0, 1)
	s, err := NewSession(tr, sched.GOMCDS{}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Fingerprint()
	tr.Windows[0].Refs[0].Volume = 99 // caller mutates its copy
	if s.Fingerprint() != before {
		t.Fatal("session shares state with the caller's trace")
	}
	out := s.Trace()
	out.Windows[0].Refs[0].Volume = 77
	if s.Fingerprint() != before {
		t.Fatal("session shares state with Trace() output")
	}
}
