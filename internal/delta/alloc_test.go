package delta

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestApplyEditItemZeroAlloc pins the steady-state delta patch to zero
// allocations: once a session has seen one edit of a (window, item)
// pair, re-editing it — trace materialization, fingerprint re-hash,
// counts refresh, residence-row reprice, dirty marking — must run
// entirely in the session's own scratch. The edit alternates between
// two volume patterns so each Apply really changes state.
func TestApplyEditItemZeroAlloc(t *testing.T) {
	g := grid.Square(4)
	tr := trace.New(g, 4)
	for w := 0; w < 4; w++ {
		win := tr.AddWindow()
		win.Add(w, trace.DataID(w%4))
		win.Add(15-w, 0)
	}
	s, err := NewSession(tr, sched.GOMCDS{}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edits := [2][]int{make([]int, g.NumProcs()), make([]int, g.NumProcs())}
	edits[0][3], edits[1][5] = 2, 1
	for i := range edits {
		if _, err := s.Apply(EditItemVolumes(1, 2, edits[i])); err != nil {
			t.Fatal(err) // warm: first edits size the scratch
		}
	}
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		i++
		if _, err := s.Apply(EditItemVolumes(1, 2, edits[i%2])); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state Apply(edit_item) allocates %v per run, want 0", n)
	}
}

// TestScheduleIncrementalSuffixResumeAllocs pins the DP-resume half of
// the hot loop: after the warm-up schedule, an edit + reschedule cycle
// may allocate only the response assembly (cloned schedule and center
// matrix), never DP state — f, pred, path and the solver scratch are
// all reused. The bound is the exact assembly cost measured at the
// pinned shape; any DP-state regression pushes past it.
func TestScheduleIncrementalSuffixResumeAllocs(t *testing.T) {
	g := grid.Square(4)
	const nd, nw = 4, 4
	tr := trace.New(g, nd)
	for w := 0; w < nw; w++ {
		win := tr.AddWindow()
		win.Add(w, trace.DataID(w%nd))
	}
	s, err := NewSession(tr, sched.GOMCDS{}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.incremental {
		t.Fatal("session did not take the incremental path")
	}
	edits := [2][]int{make([]int, g.NumProcs()), make([]int, g.NumProcs())}
	edits[0][3], edits[1][5] = 2, 1
	cycle := func(i int) {
		if _, err := s.Apply(EditItemVolumes(1, 2, edits[i%2])); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Schedule(); err != nil {
			t.Fatal(err)
		}
	}
	cycle(0)
	cycle(1) // warm: DP state and scratch now sized

	// The response assembly allocates one Schedule clone per call: the
	// centers headers, nw center rows, and the cached clone's rows. On
	// this fixed 4-window shape that is a small constant; DP state reuse
	// keeps everything else off the heap.
	const assemblyBudget = 16
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		i++
		cycle(i)
	}); n > assemblyBudget {
		t.Fatalf("edit+reschedule cycle allocates %v per run, budget %d (response assembly only)",
			n, assemblyBudget)
	}
}
