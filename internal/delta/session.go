package delta

import (
	"fmt"
	"sync"

	"repro/internal/cost"
	"repro/internal/costgraph"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options tune a Session's observability hooks. The zero value is a
// fully silent session.
type Options struct {
	// Stages receives one span per patch ("delta.patch") and per
	// suffix-DP pass ("delta.dp.suffix"). Nil is a no-op.
	Stages obs.Stages

	// OnLayersRecomputed, when non-nil, is called after every schedule
	// recomputation with the number of DP layers the call actually
	// relaxed (the quantity the incremental machinery exists to keep
	// small); services feed it into a gauge.
	OnLayersRecomputed func(layers int)
}

// ApplyResult reports one applied delta: its sequence number in the
// session's delta log (1 for the first delta) and the chained
// fingerprint, which always equals the fingerprint of the materialized
// post-delta trace.
type ApplyResult struct {
	Seq         uint64
	Fingerprint trace.Fingerprint
	NumWindows  int
}

// ScheduleResult is one schedule computation over the session's current
// trace.
type ScheduleResult struct {
	Schedule cost.Schedule
	Cost     cost.Breakdown

	// LayersRecomputed is the number of DP layers this call relaxed: the
	// stale suffixes on the incremental path, or items x windows when
	// the session's algorithm/capacity forces a full scheduler re-run.
	// Zero when the result was served from the session's schedule cache.
	LayersRecomputed int

	// Cached reports whether the result was served without recomputation
	// (no delta arrived since the previous Schedule call).
	Cached bool
}

// Session is a long-lived incremental scheduling instance: it owns a
// built {cost.Model, ResidenceTable} over an evolving trace, patches
// only the rows a delta dirties, and re-runs the GOMCDS layered DP only
// from the first dirtied layer forward. It is safe for concurrent use;
// deltas are applied serially in arrival order and every ApplyResult
// carries the sequence number that orders it.
//
// The incremental DP path covers the common service configuration —
// GOMCDS with the sweep kernel and unbounded capacity, where items are
// independent and the per-item forward recurrence is strictly causal in
// the window index. Any other algorithm/capacity combination still
// benefits from incremental table patching (the dominant cost) but
// re-runs its scheduler in full, because capacity tracking threads a
// cross-item dependence (earlier items' placements forbid vertices for
// later ones) that invalidates per-item suffix caching.
type Session struct {
	mu        sync.Mutex
	tr        *trace.Trace
	fp        *trace.Fingerprinter
	model     *cost.Model
	table     cost.ResidenceTable
	scheduler sched.Scheduler
	capacity  int
	seq       uint64

	stages   obs.Stages
	onLayers func(int)

	// incremental marks the per-item suffix-DP path; solver and items
	// are only populated when it is set.
	incremental bool
	solver      *costgraph.Solver
	items       []itemState

	// sc is the session's row-pricing scratch, serialized by mu like
	// everything else, so steady-state patches allocate nothing.
	sc *cost.RowScratch

	// Schedule results are cached until the next delta invalidates them.
	cached      bool
	cachedSched cost.Schedule
	cachedBD    cost.Breakdown
}

// itemState is one item's cached DP state: the flat layers x P
// reach-cost and predecessor matrices SolveFrom resumes from, the
// chosen path, and its cost split. dirtyFrom is the first stale layer;
// a value equal to the current window count (with a path of matching
// length) means clean.
type itemState struct {
	f         []int64
	pred      []int
	path      []int
	total     int64
	residence int64
	move      int64
	dirtyFrom int
}

// NewSession builds a session over a starting trace. The trace is
// cloned, so the caller's copy stays independent; the model and
// residence table are built once here and patched in place ever after.
// The scheduler and capacity are fixed for the session's lifetime.
func NewSession(t *trace.Trace, scheduler sched.Scheduler, capacity int, opts Options) (*Session, error) {
	return newSession(t, scheduler, capacity, 0, nil, opts)
}

// RestoreSession rebuilds a session from migrated state: the
// materialized trace, the session's delta sequence counter, and the
// residence table the previous owner already built and patched. The
// table is adopted, not rebuilt — migration is a transfer — and the
// caller hands over ownership of it. Its shape must match the trace;
// content integrity is the caller's concern (the service layer pins it
// to the exported fingerprint through the pimtab-v1 echo). Per-item DP
// state starts fully dirty, so the first Schedule call re-solves every
// item from the adopted table; results are bit-identical to the
// originating session because the DP is a pure function of the table.
func RestoreSession(t *trace.Trace, scheduler sched.Scheduler, capacity int, seq uint64, table cost.ResidenceTable, opts Options) (*Session, error) {
	if t != nil {
		if table.NumWindows() != len(t.Windows) || table.NumData() != t.NumData ||
			table.NumProcs() != t.Grid.NumProcs() {
			return nil, fmt.Errorf("delta: restored table shape %dx%dx%d does not match trace %dx%dx%d",
				table.NumWindows(), table.NumData(), table.NumProcs(),
				len(t.Windows), t.NumData, t.Grid.NumProcs())
		}
	}
	return newSession(t, scheduler, capacity, seq, &table, opts)
}

// newSession is the shared constructor: with table == nil the residence
// table is built from the trace; otherwise the given table is adopted.
func newSession(t *trace.Trace, scheduler sched.Scheduler, capacity int, seq uint64, table *cost.ResidenceTable, opts Options) (*Session, error) {
	if t == nil {
		return nil, fmt.Errorf("delta: nil trace")
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("delta: %v", err)
	}
	if scheduler == nil {
		return nil, fmt.Errorf("delta: nil scheduler")
	}
	if capacity < 0 {
		return nil, fmt.Errorf("delta: negative capacity %d", capacity)
	}
	tr := t.Clone()
	model := cost.NewModel(tr)
	model.Stages = opts.Stages
	s := &Session{
		tr:        tr,
		fp:        trace.NewFingerprinter(tr.Grid, tr.NumData),
		model:     model,
		scheduler: scheduler,
		capacity:  capacity,
		seq:       seq,
		stages:    opts.Stages,
		onLayers:  opts.OnLayersRecomputed,
	}
	if table != nil {
		s.table = *table
	} else {
		s.table = model.BuildResidenceTable()
	}
	s.sc = model.NewRowScratch()
	for i := range tr.Windows {
		s.fp.AppendWindow(&tr.Windows[i])
	}
	if g, ok := scheduler.(sched.GOMCDS); ok && capacity == 0 && g.Kernel == costgraph.KernelSweep {
		s.incremental = true
		s.solver = costgraph.NewSolver(tr.Grid.Width(), tr.Grid.Height())
		s.items = make([]itemState, tr.NumData)
	}
	return s, nil
}

// Algorithm returns the session scheduler's name.
func (s *Session) Algorithm() string { return s.scheduler.Name() }

// Capacity returns the session's per-processor memory capacity.
func (s *Session) Capacity() int { return s.capacity }

// Seq returns the sequence number of the last applied delta (0 before
// any delta).
func (s *Session) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// NumData returns the size of the data space, fixed at creation.
func (s *Session) NumData() int { return s.tr.NumData }

// NumWindows returns the current window count.
func (s *Session) NumWindows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tr.Windows)
}

// Fingerprint returns the fingerprint of the session's current trace,
// combined from the incrementally maintained per-window digests.
func (s *Session) Fingerprint() trace.Fingerprint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fp.Fingerprint()
}

// Trace returns a deep copy of the session's current trace, for
// referees that recompute everything from scratch.
func (s *Session) Trace() *trace.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Clone()
}

// Table exposes the session's live residence table so referees can pin
// it cell-for-cell against a full rebuild. Callers must treat it as
// read-only and must not retain it across Apply calls.
func (s *Session) Table() cost.ResidenceTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table
}

// Apply validates and applies one delta: the trace mutates through
// Materialize, the fingerprint re-hashes only the touched window, the
// model and table patch only the dirtied rows, and the per-item DP
// dirty marks advance. Deltas are serialized; the returned sequence
// number orders them.
func (s *Session) Apply(d Delta) (ApplyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := d.Validate(s.tr.Grid, s.tr.NumData, len(s.tr.Windows)); err != nil {
		return ApplyResult{}, err
	}
	sp := s.stages.Start("delta.patch")
	oldWindows := len(s.tr.Windows)
	if err := Materialize(s.tr, d); err != nil {
		sp.End()
		return ApplyResult{}, err // unreachable: validated above
	}
	switch d.Op {
	case OpAppendWindow:
		win := &s.tr.Windows[oldWindows]
		s.fp.AppendWindow(win)
		s.table = s.model.PatchAppendWindow(s.table, win, s.sc)
		s.markDirty(-1, oldWindows)
	case OpEditItem:
		win := &s.tr.Windows[d.Window]
		s.fp.SetWindow(d.Window, win)
		s.model.PatchEditItem(s.table, d.Window, d.Data, win, s.sc)
		s.markDirty(int(d.Data), d.Window)
	case OpRemoveWindow:
		s.fp.RemoveWindow(d.Window)
		s.table = s.model.PatchRemoveWindow(s.table, d.Window)
		s.markDirty(-1, d.Window)
	}
	sp.End()
	s.seq++
	s.cached = false
	return ApplyResult{Seq: s.seq, Fingerprint: s.fp.Fingerprint(), NumWindows: len(s.tr.Windows)}, nil
}

// markDirty records that DP layers from `layer` onward are stale for
// item d, or for every item when d is negative.
func (s *Session) markDirty(d, layer int) {
	if !s.incremental {
		return
	}
	if d >= 0 {
		if layer < s.items[d].dirtyFrom {
			s.items[d].dirtyFrom = layer
		}
		return
	}
	for i := range s.items {
		if layer < s.items[i].dirtyFrom {
			s.items[i].dirtyFrom = layer
		}
	}
}

// Schedule computes (or serves from cache) the schedule and cost of the
// session's current trace. On the incremental path only items with a
// stale DP suffix are re-solved, each resuming from its first dirty
// layer; the total cost is assembled from the per-item DP totals, so no
// full-trace cost evaluation runs either.
func (s *Session) Schedule() (ScheduleResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached {
		return ScheduleResult{Schedule: s.cachedSched.Clone(), Cost: s.cachedBD, Cached: true}, nil
	}
	var layers int
	var err error
	if s.incremental {
		layers = s.scheduleIncremental()
	} else {
		layers, err = s.scheduleFull()
		if err != nil {
			return ScheduleResult{}, err
		}
	}
	if s.onLayers != nil {
		s.onLayers(layers)
	}
	s.cached = true
	return ScheduleResult{Schedule: s.cachedSched.Clone(), Cost: s.cachedBD, LayersRecomputed: layers}, nil
}

// scheduleIncremental re-solves exactly the stale per-item DP suffixes
// and assembles the schedule and cost split from the cached item
// states. It returns the number of layers relaxed.
func (s *Session) scheduleIncremental() int {
	nw, nd, np := s.model.NumWindows(), s.model.NumData, s.model.Grid.NumProcs()
	sp := s.stages.Start("delta.dp.suffix")
	layers := 0
	for d := range s.items {
		it := &s.items[d]
		if it.dirtyFrom >= nw && len(it.path) == nw {
			continue // clean: no layer at or after dirtyFrom exists
		}
		if nw == 0 {
			it.path, it.total, it.residence, it.move = nil, 0, 0, 0
			it.dirtyFrom = 0
			continue
		}
		if cap(it.f) < nw*np {
			f := make([]int64, nw*np)
			copy(f, it.f)
			it.f = f
			pred := make([]int, nw*np)
			copy(pred, it.pred)
			it.pred = pred
		}
		it.f = it.f[:nw*np]
		it.pred = it.pred[:nw*np]
		start := it.dirtyFrom
		if start > nw {
			start = nw
		}
		layers += nw - start
		nodeCost := s.solver.NodeCost(nw)
		for w := 0; w < nw; w++ {
			nodeCost[w] = s.table.Row(w, d)
		}
		total, path := s.solver.SolveFromInto(nodeCost, int64(s.model.DataSize[d]), start, it.f, it.pred, it.path)
		if path == nil {
			// Unbounded capacity and finite residence costs: every center
			// sequence is feasible, so a blocked DP is a bookkeeping bug.
			panic("delta: incremental DP found no path on an unconstrained instance")
		}
		var residence int64
		for w, c := range path {
			residence += s.table.At(w, d, c)
		}
		it.total, it.path = total, path
		it.residence, it.move = residence, total-residence
		it.dirtyFrom = nw
	}
	sp.End()

	centers := make([][]int, nw)
	var bd cost.Breakdown
	for w := range centers {
		centers[w] = make([]int, nd)
	}
	for d := range s.items {
		it := &s.items[d]
		for w := 0; w < nw; w++ {
			centers[w][d] = it.path[w]
		}
		bd.Residence += it.residence
		bd.Move += it.move
	}
	s.cachedSched = cost.Schedule{Centers: centers}
	s.cachedBD = bd
	return layers
}

// scheduleFull re-runs the session's scheduler over the patched table —
// the fallback for algorithm/capacity combinations whose cross-item
// coupling defeats per-item suffix caching. The patched residence table
// (the dominant build cost) is still reused.
func (s *Session) scheduleFull() (int, error) {
	p := &sched.Problem{Model: s.model, Table: s.table, Capacity: s.capacity}
	schedule, err := s.scheduler.Schedule(p)
	if err != nil {
		return 0, err
	}
	s.cachedSched = schedule
	s.cachedBD = s.model.Evaluate(schedule)
	return s.model.NumData * s.model.NumWindows(), nil
}
