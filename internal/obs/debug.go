package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns a mux serving the runtime's profiling and
// introspection endpoints:
//
//	/debug/pprof/           index, plus heap, goroutine, block, mutex...
//	/debug/pprof/profile    30s CPU profile
//	/debug/pprof/trace      execution trace
//	/debug/vars             expvar JSON (cmdline, memstats)
//
// It builds its own mux instead of relying on net/http/pprof's
// DefaultServeMux registration, so importing obs never leaks profiling
// endpoints onto a production handler. Profiles expose memory contents
// and timing side channels: bind the listener serving this handler to
// loopback (the pimserve -debug-addr flag defaults to off and should
// stay on 127.0.0.1 in production).
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
