package obs

import (
	"bufio"
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition validates one scrape of the text format and returns
// every sample as name{labels} -> value. It fails the test on any line
// that is neither a well-formed comment nor a well-formed sample.
func parseExposition(t testing.TB, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# ") {
			rest := line[2:]
			if !strings.HasPrefix(rest, "HELP ") && !strings.HasPrefix(rest, "TYPE ") {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "-Inf" {
			t.Fatalf("sample %q has unparsable value %q: %v", key, val, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name = key[:i]
		}
		if !metricNameRE.MatchString(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum")) {
			t.Fatalf("invalid metric name in %q", line)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q in one scrape", key)
		}
		f, _ := strconv.ParseFloat(val, 64)
		samples[key] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// Satellite gate: N goroutines hammer one histogram and one counter
// while a reader scrapes /metrics in a loop. Every scrape must parse,
// and every counter-like series (counters, histogram buckets, _count)
// must be monotone from scrape to scrape.
func TestConcurrentScrapeParsesAndIsMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "Hammered counter.")
	h := r.Histogram("hammer_seconds", "Hammered histogram.", LatencyBuckets)
	hv := r.HistogramVec("hammer_stage_seconds", "Hammered labeled histogram.", "stage", []float64{0.001, 1})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stage := []string{"decode", "sched", "verify"}[w%3]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				hv.With(stage).Observe(0.0005)
			}
		}(w)
	}

	scrapes := 40
	if testing.Short() {
		scrapes = 10
	}
	prev := map[string]float64{}
	for scrape := 0; scrape < scrapes; scrape++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: status %d err %v", scrape, resp.StatusCode, err)
		}
		samples := parseExposition(t, string(body))
		if len(samples) == 0 {
			t.Fatalf("scrape %d: no samples", scrape)
		}
		for key, v := range samples {
			if strings.Contains(key, "_sum") {
				continue // sums are floats, monotone too, but skip fp pedantry
			}
			if was, ok := prev[key]; ok && v < was {
				t.Fatalf("scrape %d: %s went backwards: %v -> %v", scrape, key, was, v)
			}
			prev[key] = v
		}
	}
	close(stop)
	wg.Wait()

	// Final consistency: a quiescent scrape agrees with the atomics.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())
	if got := samples["hammer_total"]; got != float64(c.Value()) {
		t.Fatalf("final hammer_total %v != counter %d", got, c.Value())
	}
	if got := samples["hammer_seconds_count"]; got != float64(h.Count()) {
		t.Fatalf("final hammer_seconds_count %v != histogram count %d", got, h.Count())
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	handler := AccessLog(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/teapot" {
			w.WriteHeader(http.StatusTeapot)
		}
		w.Write([]byte("hello"))
	}))
	srv := httptest.NewServer(handler)
	defer srv.Close()

	for _, path := range []string{"/ok", "/teapot"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log lines = %d, want 2:\n%s", len(lines), out)
	}
	for i, want := range []struct{ path, status string }{{"/ok", "status=200"}, {"/teapot", "status=418"}} {
		for _, frag := range []string{"method=GET", "path=" + want.path, want.status, "bytes=5", "id=", "duration="} {
			if !strings.Contains(lines[i], frag) {
				t.Fatalf("line %d missing %q: %s", i, frag, lines[i])
			}
		}
	}

	// nil logger: middleware must vanish, not panic.
	if got := AccessLog(nil, handler); got == nil {
		t.Fatal("AccessLog(nil, h) returned nil")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestDebugHandler(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/vars"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: status %d, %d bytes", path, resp.StatusCode, len(body))
		}
	}
}
