package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (inclusive, like Prometheus `le`); an implicit +Inf bucket
// catches everything else. Observe is lock-free: one atomic increment
// plus one CAS loop for the sum, so hot paths can record every request.
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64 // len(upper)+1; last is the +Inf overflow
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram with the given strictly increasing
// bucket upper bounds. It panics on unsorted or empty layouts — bucket
// layout is program structure, not runtime input.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %v", upper[i]))
		}
	}
	if math.IsInf(upper[len(upper)-1], 1) {
		upper = upper[:len(upper)-1] // +Inf is implicit
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the exposition
// convention for latency histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the per-bucket counts (len(buckets)+1, last is
// +Inf), cumulative-summed the way the exposition format wants them.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64) {
	cumulative = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return cumulative, h.Sum()
}

// render emits the _bucket/_sum/_count series. The _count equals the
// +Inf bucket by construction, so a scrape is always self-consistent
// even while writers are racing.
func (h *Histogram) render(b *strings.Builder, name string, labels []labelPair) {
	cumulative, sum := h.Snapshot()
	withLE := make([]labelPair, len(labels), len(labels)+1)
	copy(withLE, labels)
	for i, c := range cumulative {
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(append(withLE, labelPair{"le", le})), c)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(labels), formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(labels), cumulative[len(cumulative)-1])
}

// LatencyBuckets is the default latency layout: 100µs to 10s in a
// 1-2.5-5 progression, wide enough for both microsecond scheduler runs
// and multi-second table builds.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n upper bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	buckets := make([]float64, n)
	for i := range buckets {
		buckets[i] = start
		start *= factor
	}
	return buckets
}
