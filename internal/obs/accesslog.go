package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// accessSeq numbers requests process-wide so interleaved log lines from
// several listeners still correlate.
var accessSeq atomic.Uint64

// AccessLog wraps next with a structured access log: one slog record
// per request carrying the request id, method, path, response status,
// bytes written and wall duration. A nil logger returns next unchanged.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", fmt.Sprintf("%08x", accessSeq.Add(1))),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("duration", time.Since(start)),
		)
	})
}

// statusRecorder captures the status code and body size a handler
// writes; an implicit 200 (first Write without WriteHeader) is
// recorded as such.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it streams.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
