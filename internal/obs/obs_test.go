package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(1.5)
	g.Add(-0.25)
	if g.Value() != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", g.Value())
	}
}

func TestHistogramBucketMath(t *testing.T) {
	h := NewHistogram([]float64{1, 2.5, 10})
	for _, v := range []float64{0.5, 1, 1.0000001, 2.5, 3, 10, 11, -1} {
		h.Observe(v)
	}
	// le is inclusive: le="1" holds 0.5, 1 and -1; le="2.5" adds
	// 1.0000001 and 2.5; le="10" adds 3 and 10; +Inf adds 11.
	cumulative, sum := h.Snapshot()
	want := []uint64{3, 5, 7, 8}
	for i, c := range cumulative {
		if c != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (full: %v)", i, c, want[i], cumulative)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2.5 + 3 + 10 + 11 - 1
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}

	// A trailing +Inf bound is collapsed into the implicit bucket.
	h2 := NewHistogram([]float64{1, math.Inf(1)})
	h2.Observe(5)
	if c, _ := h2.Snapshot(); len(c) != 2 || c[0] != 0 || c[1] != 1 {
		t.Fatalf("explicit +Inf layout: %v", c)
	}

	for name, buckets := range map[string][]float64{
		"empty":    {},
		"unsorted": {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bucket layout did not panic", name)
				}
			}()
			NewHistogram(buckets)
		}()
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Golden test of the exposition format: every metric kind, labeled and
// unlabeled, rendered byte for byte. Values are chosen to be exact in
// binary so float formatting is deterministic.
func TestRegistryExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(3)
	r.CounterFunc("test_events_total", "Events observed.", func() uint64 { return 7 })
	r.LabeledCounterFunc("test_rejected_total", "Rejected requests.", "reason", "overload", func() uint64 { return 2 })
	r.LabeledCounterFunc("test_rejected_total", "Rejected requests.", "reason", "closed", func() uint64 { return 1 })
	g := r.Gauge("test_queue_depth", "Queue depth.")
	g.Set(1.5)
	r.GaugeFunc("test_inflight", "In-flight requests.", func() float64 { return 4 })
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.25, 1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(5)
	hv := r.HistogramVec("test_stage_seconds", "Stage latency.", "stage", []float64{1})
	hv.With("decode").Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_events_total Events observed.
# TYPE test_events_total counter
test_events_total 7
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 4
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.25"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.75
test_latency_seconds_count 3
# HELP test_queue_depth Queue depth.
# TYPE test_queue_depth gauge
test_queue_depth 1.5
# HELP test_rejected_total Rejected requests.
# TYPE test_rejected_total counter
test_rejected_total{reason="overload"} 2
test_rejected_total{reason="closed"} 1
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_stage_seconds Stage latency.
# TYPE test_stage_seconds histogram
test_stage_seconds_bucket{stage="decode",le="1"} 1
test_stage_seconds_bucket{stage="decode",le="+Inf"} 1
test_stage_seconds_sum{stage="decode"} 0.5
test_stage_seconds_count{stage="decode"} 1
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	cases := map[string]func(r *Registry){
		"bad name":       func(r *Registry) { r.Counter("1bad", "h") },
		"type conflict":  func(r *Registry) { r.Counter("m", "h"); r.Gauge("m", "h") },
		"dup series":     func(r *Registry) { r.Counter("m", "h"); r.Counter("m", "h") },
		"reserved label": func(r *Registry) { r.HistogramVec("m", "h", "le", []float64{1}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn(NewRegistry())
		}()
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "T.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "test_total 1") {
		t.Fatalf("scrape missing counter: %q", buf.String())
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	const workers, each = 16, 1000
	var c Counter
	var g Gauge
	h := NewHistogram([]float64{1, 2})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*each)
	}
	cumulative, sum := h.Snapshot()
	if h.Count() != workers*each || cumulative[0] != 0 || cumulative[1] != workers*each {
		t.Fatalf("histogram counts wrong: count=%d cumulative=%v", h.Count(), cumulative)
	}
	if want := 1.5 * workers * each; sum != want {
		t.Fatalf("histogram sum = %v, want %v (1.5 is exact in binary)", sum, want)
	}
}

func TestSpanAndStages(t *testing.T) {
	var nilStages Stages
	if d := nilStages.Start("x").End(); d != 0 {
		t.Fatalf("nil sink span returned %v", d)
	}
	nilStages.Record("x", time.Second) // must not panic

	var mu sync.Mutex
	got := map[string]time.Duration{}
	sink := Stages(func(stage string, d time.Duration) {
		mu.Lock()
		got[stage] += d
		mu.Unlock()
	})
	sp := sink.Start("work")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	if got["work"] <= 0 {
		t.Fatalf("sink not invoked: %v", got)
	}

	teed := Tee(nil, sink, nil)
	teed.Record("teed", time.Second)
	if got["teed"] != time.Second {
		t.Fatalf("tee did not forward: %v", got)
	}
	if Tee(nil, nil) != nil {
		t.Fatal("Tee of all-nil sinks should collapse to nil")
	}

	ctx := WithStages(t.Context(), sink)
	StagesFrom(ctx).Record("ctx", time.Second)
	if got["ctx"] != time.Second {
		t.Fatalf("context carrier did not deliver: %v", got)
	}
	if StagesFrom(t.Context()) != nil {
		t.Fatal("StagesFrom on a bare context should be nil")
	}
}

func TestStageBreakdown(t *testing.T) {
	b := NewStageBreakdown()
	b.Record("decode", 2*time.Millisecond)
	b.Record("sched.gomcds", 10*time.Millisecond)
	b.Record("decode", 3*time.Millisecond)
	rows := b.Rows()
	if len(rows) != 2 || rows[0].Stage != "sched.gomcds" || rows[1].Count != 2 || rows[1].Total != 5*time.Millisecond {
		t.Fatalf("rows = %+v", rows)
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sched.gomcds") || !strings.Contains(out, "decode") {
		t.Fatalf("breakdown table: %q", out)
	}
}
