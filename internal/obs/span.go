package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Stages is the span sink: it receives one (stage, duration)
// observation per completed stage. A nil Stages is a valid no-op sink,
// so instrumented code never branches on whether anyone is listening.
type Stages func(stage string, d time.Duration)

// Record forwards one observation; nil-safe.
func (s Stages) Record(stage string, d time.Duration) {
	if s != nil {
		s(stage, d)
	}
}

// Start opens a span for the named stage. On a nil sink it returns the
// zero Span, whose End is free.
func (s Stages) Start(stage string) Span {
	if s == nil {
		return Span{}
	}
	return Span{stages: s, stage: stage, start: time.Now()}
}

// Span times one pipeline stage; create with Stages.Start, finish with
// End. The zero Span is a no-op.
type Span struct {
	stages Stages
	stage  string
	start  time.Time
}

// End closes the span, records the elapsed time with the sink, and
// returns it. Safe on the zero Span.
func (sp Span) End() time.Duration {
	if sp.stages == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.stages(sp.stage, d)
	return d
}

// Tee fans observations out to every non-nil sink; it collapses to nil
// (the free no-op) when none remain.
func Tee(sinks ...Stages) Stages {
	live := make([]Stages, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(stage string, d time.Duration) {
		for _, s := range live {
			s(stage, d)
		}
	}
}

type stagesKey struct{}

// WithStages returns a context carrying the sink, for APIs (like
// sched.RunContext) that take a context but no explicit sink.
func WithStages(ctx context.Context, s Stages) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, stagesKey{}, s)
}

// StagesFrom returns the sink carried by the context, or nil.
func StagesFrom(ctx context.Context) Stages {
	s, _ := ctx.Value(stagesKey{}).(Stages)
	return s
}

// StageBreakdown accumulates per-stage totals for an end-of-run report
// — the sink behind pimbench's -stages flag. Safe for concurrent use.
type StageBreakdown struct {
	mu    sync.Mutex
	order []string
	total map[string]time.Duration
	count map[string]int
}

// NewStageBreakdown returns an empty breakdown.
func NewStageBreakdown() *StageBreakdown {
	return &StageBreakdown{total: make(map[string]time.Duration), count: make(map[string]int)}
}

// Record implements the Stages signature; install it with
// breakdown.Record or obs.Stages(breakdown.Record).
func (b *StageBreakdown) Record(stage string, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.total[stage]; !ok {
		b.order = append(b.order, stage)
	}
	b.total[stage] += d
	b.count[stage]++
}

// StageRow is one line of a breakdown report.
type StageRow struct {
	Stage string
	Count int
	Total time.Duration
}

// Rows returns the accumulated stages sorted by descending total time.
func (b *StageBreakdown) Rows() []StageRow {
	b.mu.Lock()
	defer b.mu.Unlock()
	rows := make([]StageRow, 0, len(b.order))
	for _, stage := range b.order {
		rows = append(rows, StageRow{Stage: stage, Count: b.count[stage], Total: b.total[stage]})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Total > rows[j].Total })
	return rows
}

// WriteTo renders the breakdown as an aligned text table.
func (b *StageBreakdown) WriteTo(w io.Writer) (int64, error) {
	rows := b.Rows()
	var n int64
	if len(rows) == 0 {
		c, err := fmt.Fprintln(w, "no stages recorded")
		return int64(c), err
	}
	width := len("stage")
	for _, r := range rows {
		if len(r.Stage) > width {
			width = len(r.Stage)
		}
	}
	c, err := fmt.Fprintf(w, "%-*s  %8s  %12s\n", width, "stage", "count", "total")
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, r := range rows {
		c, err := fmt.Fprintf(w, "%-*s  %8d  %12v\n", width, r.Stage, r.Count, r.Total.Round(time.Microsecond))
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
