// Package obs is the repository's stdlib-only observability layer:
// atomic counters, gauges and fixed-bucket latency histograms collected
// in a Registry that renders the Prometheus text exposition format;
// lightweight stage spans (Span) for timing pipeline phases; a
// structured slog access log for HTTP servers; and a debug handler
// bundling net/http/pprof with expvar.
//
// Everything is safe for concurrent use: writers touch only atomics,
// and a scrape taken mid-update always parses and never shows a
// counter moving backwards (each exported series is backed by a single
// monotone atomic or a snapshot of them).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can move in either direction.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is a set of named metrics rendered together. The zero value
// is not usable; create one with NewRegistry. Registration methods
// panic on invalid or conflicting names — metric topology is program
// structure, not runtime input.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	families []*family
}

type family struct {
	name, help, typ string

	mu     sync.Mutex
	series []*series
}

type labelPair struct{ key, value string }

// series is one sample stream within a family: exactly one of the
// value sources is set.
type series struct {
	labels    []labelPair
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	if !metricNameRE.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	r.byName[name] = f
	r.families = append(r.families, f)
	sort.Slice(r.families, func(i, j int) bool { return r.families[i].name < r.families[j].name })
	return f
}

func (f *family) add(s *series) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := renderLabels(s.labels)
	for _, existing := range f.series {
		if renderLabels(existing.labels) == key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", f.name, key))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a new unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.family(name, help, "counter").add(&series{counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters. fn must be
// monotone and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.family(name, help, "counter").add(&series{counterFn: fn})
}

// LabeledCounterFunc is CounterFunc with one constant label; calling it
// again with the same name and a different label value adds a series to
// the same family.
func (r *Registry) LabeledCounterFunc(name, help, label, value string, fn func() uint64) {
	mustLabel(label)
	r.family(name, help, "counter").add(&series{
		labels:    []labelPair{{label, value}},
		counterFn: fn,
	})
}

// Gauge registers and returns a new unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.family(name, help, "gauge").add(&series{gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, "gauge").add(&series{gaugeFn: fn})
}

// Histogram registers and returns a new unlabeled histogram with the
// given bucket upper bounds (see NewHistogram).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := NewHistogram(buckets)
	r.family(name, help, "histogram").add(&series{hist: h})
	return h
}

// HistogramVec registers a family of histograms keyed by one label
// (for example a pipeline stage name); child histograms are created on
// first use and share the bucket layout.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	mustLabel(label)
	f := r.family(name, help, "histogram")
	return &HistogramVec{fam: f, label: label, buckets: buckets, children: make(map[string]*Histogram)}
}

func mustLabel(label string) {
	if !labelNameRE.MatchString(label) || label == "le" {
		panic("obs: invalid label name " + strconv.Quote(label))
	}
}

// HistogramVec is a set of histograms distinguished by one label value.
type HistogramVec struct {
	fam     *family
	label   string
	buckets []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the label value, creating and
// registering it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	if h, ok := v.children[value]; ok {
		v.mu.Unlock()
		return h
	}
	h := NewHistogram(v.buckets)
	v.children[value] = h
	v.mu.Unlock()
	v.fam.add(&series{labels: []labelPair{{v.label, value}}, hist: h})
	return h
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (families sorted by name, series in registration
// order).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		f.mu.Lock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range series {
			s.render(&b, f.name)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (s *series) render(b *strings.Builder, name string) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %d\n", name, renderLabels(s.labels), s.counter.Value())
	case s.counterFn != nil:
		fmt.Fprintf(b, "%s%s %d\n", name, renderLabels(s.labels), s.counterFn())
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, renderLabels(s.labels), formatFloat(s.gauge.Value()))
	case s.gaugeFn != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, renderLabels(s.labels), formatFloat(s.gaugeFn()))
	case s.hist != nil:
		s.hist.render(b, name, s.labels)
	}
}

func renderLabels(labels []labelPair) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q covers the exposition format's label escapes:
		// backslash, double quote and newline.
		fmt.Fprintf(&b, "%s=%q", l.key, l.value)
	}
	b.WriteByte('}')
	return b.String()
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a scrape endpoint (GET only).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w) // nothing useful to do with a write error mid-scrape
	})
}
