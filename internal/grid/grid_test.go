package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 4}, {4, -1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestSquare(t *testing.T) {
	g := Square(4)
	if g.Width() != 4 || g.Height() != 4 || g.NumProcs() != 16 {
		t.Fatalf("Square(4) = %v with %d procs", g, g.NumProcs())
	}
	if g.String() != "4x4" {
		t.Errorf("String() = %q, want 4x4", g.String())
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	g := New(5, 3)
	for i := 0; i < g.NumProcs(); i++ {
		c := g.Coord(i)
		if !g.Contains(c) {
			t.Fatalf("Coord(%d) = %v not contained", i, c)
		}
		if got := g.Index(c); got != i {
			t.Fatalf("Index(Coord(%d)) = %d", i, got)
		}
	}
}

func TestIndexRowMajorOrder(t *testing.T) {
	g := New(4, 4)
	if got := g.Index(Coord{X: 2, Y: 1}); got != 6 {
		t.Errorf("Index((2,1)) = %d, want 6", got)
	}
	if got := g.Coord(6); got != (Coord{X: 2, Y: 1}) {
		t.Errorf("Coord(6) = %v, want (2,1)", got)
	}
}

func TestIndexPanicsOutside(t *testing.T) {
	g := New(2, 2)
	for _, c := range []Coord{{-1, 0}, {2, 0}, {0, 2}, {5, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%v) did not panic", c)
				}
			}()
			g.Index(c)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Coord(99) did not panic")
			}
		}()
		g.Coord(99)
	}()
}

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 0}, 3},
		{Coord{0, 0}, Coord{0, 3}, 3},
		{Coord{1, 2}, Coord{3, 1}, 3},
		{Coord{3, 3}, Coord{0, 0}, 6},
	}
	for _, c := range cases {
		if got := c.a.Manhattan(c.b); got != c.want {
			t.Errorf("Manhattan(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Manhattan distance is a metric on the grid.
func TestManhattanIsMetric(t *testing.T) {
	g := New(7, 5)
	n := g.NumProcs()
	f := func(ai, bi, ci uint8) bool {
		a := g.Coord(int(ai) % n)
		b := g.Coord(int(bi) % n)
		c := g.Coord(int(ci) % n)
		if a.Manhattan(a) != 0 {
			return false
		}
		if a.Manhattan(b) != b.Manhattan(a) {
			return false
		}
		if a.Manhattan(b) < 0 {
			return false
		}
		// Triangle inequality.
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identity of indiscernibles — zero distance iff same node.
func TestManhattanZeroIffEqual(t *testing.T) {
	g := New(6, 6)
	n := g.NumProcs()
	f := func(ai, bi uint8) bool {
		a, b := int(ai)%n, int(bi)%n
		return (g.Dist(a, b) == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteEndpointsAndLength(t *testing.T) {
	g := New(4, 4)
	f := func(si, di uint8) bool {
		s, d := int(si)%16, int(di)%16
		path := g.Route(s, d)
		if path[0] != s || path[len(path)-1] != d {
			return false
		}
		// Path length (hops) equals Manhattan distance.
		if len(path)-1 != g.Dist(s, d) {
			return false
		}
		// Consecutive elements are mesh neighbours.
		for i := 1; i < len(path); i++ {
			if g.Dist(path[i-1], path[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteIsXFirst(t *testing.T) {
	g := New(4, 4)
	// (0,0) -> (2,2): expect x movement first: (0,0)(1,0)(2,0)(2,1)(2,2).
	path := g.Route(g.Index(Coord{0, 0}), g.Index(Coord{2, 2}))
	want := []Coord{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}}
	if len(path) != len(want) {
		t.Fatalf("route length %d, want %d", len(path), len(want))
	}
	for i, p := range path {
		if g.Coord(p) != want[i] {
			t.Errorf("hop %d = %v, want %v", i, g.Coord(p), want[i])
		}
	}
}

func TestRouteSelf(t *testing.T) {
	g := New(3, 3)
	path := g.Route(4, 4)
	if len(path) != 1 || path[0] != 4 {
		t.Errorf("Route(4,4) = %v, want [4]", path)
	}
}

func TestNeighbors(t *testing.T) {
	g := New(3, 3)
	cases := []struct {
		p    Coord
		want int
	}{
		{Coord{0, 0}, 2}, // corner
		{Coord{1, 0}, 3}, // edge
		{Coord{1, 1}, 4}, // interior
	}
	for _, c := range cases {
		got := g.Neighbors(g.Index(c.p), nil)
		if len(got) != c.want {
			t.Errorf("Neighbors(%v) = %v, want %d entries", c.p, got, c.want)
		}
		for _, n := range got {
			if g.Dist(g.Index(c.p), n) != 1 {
				t.Errorf("neighbor %d of %v is not adjacent", n, c.p)
			}
		}
	}
}

func TestNeighborsReusesDst(t *testing.T) {
	g := New(3, 3)
	buf := make([]int, 0, 8)
	got := g.Neighbors(4, buf)
	if len(got) != 4 {
		t.Fatalf("interior node has %d neighbors, want 4", len(got))
	}
	if cap(got) != cap(buf) {
		t.Error("Neighbors reallocated despite sufficient capacity")
	}
}

func TestDistanceTable(t *testing.T) {
	g := New(4, 3)
	tbl := g.DistanceTable()
	n := g.NumProcs()
	if len(tbl) != n {
		t.Fatalf("table has %d rows, want %d", len(tbl), n)
	}
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if tbl[i][j] != g.Dist(i, j) {
			t.Fatalf("table[%d][%d] = %d, want %d", i, j, tbl[i][j], g.Dist(i, j))
		}
	}
}

func TestCenter(t *testing.T) {
	cases := []struct {
		g    Grid
		want Coord
	}{
		{New(4, 4), Coord{1, 1}},
		{New(3, 3), Coord{1, 1}},
		{New(1, 1), Coord{0, 0}},
		{New(5, 2), Coord{2, 0}},
	}
	for _, c := range cases {
		if got := c.g.Coord(c.g.Center()); got != c.want {
			t.Errorf("Center of %v = %v, want %v", c.g, got, c.want)
		}
	}
}

func TestCoordString(t *testing.T) {
	if got := (Coord{2, 3}).String(); got != "(2,3)" {
		t.Errorf("String() = %q", got)
	}
}

func BenchmarkDistanceTable16(b *testing.B) {
	g := Square(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.DistanceTable()
	}
}

func BenchmarkRoute(b *testing.B) {
	g := Square(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Route(0, g.NumProcs()-1)
	}
}

func TestRouteYX(t *testing.T) {
	g := New(4, 4)
	// (0,0) -> (2,2): y movement first: (0,0)(0,1)(0,2)(1,2)(2,2).
	path := g.RouteYX(g.Index(Coord{0, 0}), g.Index(Coord{2, 2}))
	want := []Coord{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}}
	if len(path) != len(want) {
		t.Fatalf("route length %d, want %d", len(path), len(want))
	}
	for i, p := range path {
		if g.Coord(p) != want[i] {
			t.Errorf("hop %d = %v, want %v", i, g.Coord(p), want[i])
		}
	}
}

func TestRouteYXProperties(t *testing.T) {
	g := New(5, 3)
	n := g.NumProcs()
	f := func(si, di uint8) bool {
		s, d := int(si)%n, int(di)%n
		path := g.RouteYX(s, d)
		if path[0] != s || path[len(path)-1] != d {
			return false
		}
		if len(path)-1 != g.Dist(s, d) {
			return false
		}
		for i := 1; i < len(path); i++ {
			if g.Dist(path[i-1], path[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
