// Package grid models the two-dimensional Processor-In-Memory (PIM)
// processor array used throughout the data-scheduling study.
//
// The array is a W x H mesh of processors. Every processor is identified
// either by its coordinate (x, y) or by a dense linear index in
// row-major order (index = y*W + x). Inter-processor communication uses
// dimension-ordered x-y routing: a message first travels along the
// x-axis to the destination column, then along the y-axis to the
// destination row. With unit link delay the cost of one transfer equals
// the Manhattan distance between source and destination.
package grid

import (
	"fmt"
)

// Unreachable is a distance sentinel strictly larger than any x-y
// routing distance a real array can produce (array dimensions are int
// sized, so genuine distances stay far below 2^30). Search loops use it
// as the initial "no candidate seen" bound; code that could return it
// as an actual distance is buggy and must validate its inputs instead.
const Unreachable = 1 << 30

// Coord is the position of a processor in the two-dimensional array.
// X grows to the right (column index) and Y grows downward (row index),
// matching the figures in the paper.
type Coord struct {
	X, Y int
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Add returns the component-wise sum of two coordinates.
func (c Coord) Add(o Coord) Coord { return Coord{c.X + o.X, c.Y + o.Y} }

// Manhattan returns the L1 distance between two coordinates, which is
// exactly the hop count of an x-y route between them.
func (c Coord) Manhattan(o Coord) int {
	return abs(c.X-o.X) + abs(c.Y-o.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Grid is a W x H processor array. The zero value is not usable; create
// grids with New.
type Grid struct {
	w, h int
}

// New returns a grid with the given width (number of columns) and
// height (number of rows). It panics if either dimension is not
// positive; grid shapes are static configuration, so a bad shape is a
// programming error rather than a runtime condition.
func New(w, h int) Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	return Grid{w: w, h: h}
}

// Square returns an n x n grid.
func Square(n int) Grid { return New(n, n) }

// Width returns the number of columns.
func (g Grid) Width() int { return g.w }

// Height returns the number of rows.
func (g Grid) Height() int { return g.h }

// NumProcs returns the total number of processors in the array.
func (g Grid) NumProcs() int { return g.w * g.h }

// String renders the grid shape as "WxH".
func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.w, g.h) }

// Contains reports whether the coordinate lies inside the array.
func (g Grid) Contains(c Coord) bool {
	return c.X >= 0 && c.X < g.w && c.Y >= 0 && c.Y < g.h
}

// Index converts a coordinate to its row-major linear index. It panics
// if the coordinate is outside the grid.
func (g Grid) Index(c Coord) int {
	if !g.Contains(c) {
		panic(fmt.Sprintf("grid: coordinate %v outside %v array", c, g))
	}
	return c.Y*g.w + c.X
}

// Coord converts a row-major linear index back to a coordinate. It
// panics if the index is out of range.
func (g Grid) Coord(index int) Coord {
	if index < 0 || index >= g.NumProcs() {
		panic(fmt.Sprintf("grid: index %d outside %v array", index, g))
	}
	return Coord{X: index % g.w, Y: index / g.w}
}

// Dist returns the x-y routing distance (Manhattan distance) between
// the processors with the given linear indices.
func (g Grid) Dist(a, b int) int {
	return g.Coord(a).Manhattan(g.Coord(b))
}

// Neighbors appends to dst the linear indices of the mesh neighbours of
// the processor with linear index p (up to four: west, east, north,
// south) and returns the extended slice. Passing a reusable dst avoids
// allocation in hot loops.
func (g Grid) Neighbors(p int, dst []int) []int {
	c := g.Coord(p)
	for _, d := range [4]Coord{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		n := c.Add(d)
		if g.Contains(n) {
			dst = append(dst, g.Index(n))
		}
	}
	return dst
}

// Route returns the sequence of processor indices visited by an x-y
// route from src to dst, inclusive of both endpoints. The route first
// adjusts the x coordinate, then the y coordinate, matching the
// dimension-ordered routing assumed by the cost model. Route(src, src)
// returns [src].
func (g Grid) Route(src, dst int) []int {
	s, d := g.Coord(src), g.Coord(dst)
	path := make([]int, 0, s.Manhattan(d)+1)
	cur := s
	path = append(path, g.Index(cur))
	for cur.X != d.X {
		cur.X += sign(d.X - cur.X)
		path = append(path, g.Index(cur))
	}
	for cur.Y != d.Y {
		cur.Y += sign(d.Y - cur.Y)
		path = append(path, g.Index(cur))
	}
	return path
}

// RouteYX returns the dimension-ordered route that adjusts the y
// coordinate first, then the x coordinate — the complementary ordering
// to Route. Interconnect studies alternate the two to balance link
// load (the O1TURN discipline); both have length Manhattan(src, dst).
func (g Grid) RouteYX(src, dst int) []int {
	s, d := g.Coord(src), g.Coord(dst)
	path := make([]int, 0, s.Manhattan(d)+1)
	cur := s
	path = append(path, g.Index(cur))
	for cur.Y != d.Y {
		cur.Y += sign(d.Y - cur.Y)
		path = append(path, g.Index(cur))
	}
	for cur.X != d.X {
		cur.X += sign(d.X - cur.X)
		path = append(path, g.Index(cur))
	}
	return path
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// DistanceTable returns a NumProcs x NumProcs matrix of pairwise x-y
// routing distances. Schedulers that evaluate many candidate centers
// use this to avoid recomputing coordinates in inner loops.
func (g Grid) DistanceTable() [][]int {
	n := g.NumProcs()
	flat := make([]int, n*n)
	table := make([][]int, n)
	for i := 0; i < n; i++ {
		table[i], flat = flat[:n], flat[n:]
		ci := g.Coord(i)
		for j := 0; j < n; j++ {
			table[i][j] = ci.Manhattan(g.Coord(j))
		}
	}
	return table
}

// Center returns the linear index of the processor closest to the
// geometric centre of the array (ties broken toward the origin). It is
// a convenient default placement target.
func (g Grid) Center() int {
	return g.Index(Coord{X: (g.w - 1) / 2, Y: (g.h - 1) / 2})
}
