package experiments

import (
	"fmt"

	"repro/internal/online"
	"repro/internal/placement"
	"repro/internal/replica"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// OnlineRow compares one online policy against the offline optimum on
// one benchmark (experiment E7: what a runtime scheduler without the
// full reference string can still achieve).
type OnlineRow struct {
	BenchmarkID int
	Size        int
	Scheme      string
	Comm        int64
	// RatioVsOffline is Comm divided by the offline GOMCDS cost (the
	// empirical competitive ratio; 1.0 = matches the clairvoyant
	// optimum).
	RatioVsOffline float64
}

// OnlineStudy runs the online policies over the paper benchmarks at
// data size n and reports their empirical competitive ratios.
func OnlineStudy(cfg Config, n int) ([]OnlineRow, error) {
	var rows []OnlineRow
	for _, b := range workload.PaperBenchmarks() {
		tr := b.Gen.Generate(n, cfg.Grid)
		p := cfg.newProblem(tr, cfg.capacity(n))
		offline, err := sched.GOMCDS{}.Schedule(p)
		if err != nil {
			return nil, err
		}
		offlineCost := p.Model.TotalCost(offline)
		schedulers := []sched.Scheduler{
			online.Scheduler{Policy: online.StayPut},
			online.Scheduler{Policy: online.Chase},
			online.Scheduler{Policy: online.Hysteresis},
		}
		for _, s := range schedulers {
			sc, err := s.Schedule(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: online %d/%s: %v", b.ID, s.Name(), err)
			}
			comm := p.Model.TotalCost(sc)
			ratio := 0.0
			if offlineCost > 0 {
				ratio = float64(comm) / float64(offlineCost)
			}
			rows = append(rows, OnlineRow{
				BenchmarkID: b.ID, Size: n, Scheme: s.Name(),
				Comm: comm, RatioVsOffline: ratio,
			})
		}
	}
	return rows, nil
}

// RenderOnlineRows formats the online study.
func RenderOnlineRows(title string, rows []OnlineRow) *report.Table {
	t := report.NewTable(title, "B.", "Size", "Policy", "Comm", "xOffline")
	for _, r := range rows {
		t.AddF(r.BenchmarkID, fmt.Sprintf("%dx%d", r.Size, r.Size), r.Scheme, r.Comm,
			fmt.Sprintf("%.2f", r.RatioVsOffline))
	}
	return t
}

// ReplicaRow is one replication-factor measurement (experiment E8:
// relaxing the paper's single-copy assumption).
type ReplicaRow struct {
	BenchmarkID int
	Size        int
	MaxCopies   int
	Serve       int64
	Replicate   int64
	Total       int64
	// VsSingle is Total relative to the single-copy GOMCDS cost
	// (fraction; < 1 means replication wins).
	VsSingle float64
}

// ReplicationStudy sweeps the per-item copy bound over the paper
// benchmarks at data size n.
func ReplicationStudy(cfg Config, n int, copyBounds []int) ([]ReplicaRow, error) {
	var rows []ReplicaRow
	for _, b := range workload.PaperBenchmarks() {
		tr := b.Gen.Generate(n, cfg.Grid)
		p := cfg.newProblem(tr, cfg.capacity(n))
		single, err := sched.GOMCDS{}.Schedule(p)
		if err != nil {
			return nil, err
		}
		singleCost := p.Model.TotalCost(single)
		for _, k := range copyBounds {
			s, err := replica.Greedy{MaxCopies: k}.Schedule(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: replica %d/k=%d: %v", b.ID, k, err)
			}
			bd := replica.Evaluate(p, s)
			ratio := 0.0
			if singleCost > 0 {
				ratio = float64(bd.Total()) / float64(singleCost)
			}
			rows = append(rows, ReplicaRow{
				BenchmarkID: b.ID, Size: n, MaxCopies: k,
				Serve: bd.Serve, Replicate: bd.Replicate, Total: bd.Total(),
				VsSingle: ratio,
			})
		}
	}
	return rows, nil
}

// RenderReplicaRows formats the replication study.
func RenderReplicaRows(title string, rows []ReplicaRow) *report.Table {
	t := report.NewTable(title, "B.", "Size", "copies", "serve", "replicate", "total", "xGOMCDS")
	for _, r := range rows {
		t.AddF(r.BenchmarkID, fmt.Sprintf("%dx%d", r.Size, r.Size), r.MaxCopies,
			r.Serve, r.Replicate, r.Total, fmt.Sprintf("%.2f", r.VsSingle))
	}
	return t
}

// ExactRow compares the paper's greedy processor-list capacity
// discipline against the exact min-cost-flow assignment (experiment
// E9), at increasing memory pressure (smaller capacity factors).
type ExactRow struct {
	BenchmarkID    int
	Size           int
	CapacityFactor int
	// Single-center total costs.
	GreedySCDS, ExactSCDS int64
	// Per-window residence costs (the objective the per-window
	// assignment optimizes).
	GreedyLOMCDS, ExactLOMCDS int64
}

// ExactAssignmentStudy measures the greedy-vs-exact gap over the paper
// benchmarks at data size n for each capacity factor.
func ExactAssignmentStudy(cfg Config, n int, factors []int) ([]ExactRow, error) {
	var rows []ExactRow
	for _, b := range workload.PaperBenchmarks() {
		tr := b.Gen.Generate(n, cfg.Grid)
		for _, f := range factors {
			if f <= 0 {
				return nil, fmt.Errorf("experiments: non-positive capacity factor %d", f)
			}
			capa := f * placement.MinCapacity(tr.NumData, cfg.Grid.NumProcs())
			p := cfg.newProblem(tr, capa)
			row := ExactRow{BenchmarkID: b.ID, Size: n, CapacityFactor: f}
			gs, err := sched.SCDS{}.Schedule(p)
			if err != nil {
				return nil, err
			}
			es, err := sched.ExactSCDS{}.Schedule(p)
			if err != nil {
				return nil, err
			}
			gl, err := sched.LOMCDS{}.Schedule(p)
			if err != nil {
				return nil, err
			}
			el, err := sched.ExactLOMCDS{}.Schedule(p)
			if err != nil {
				return nil, err
			}
			row.GreedySCDS = p.Model.TotalCost(gs)
			row.ExactSCDS = p.Model.TotalCost(es)
			row.GreedyLOMCDS = p.Model.ResidenceCost(gl)
			row.ExactLOMCDS = p.Model.ResidenceCost(el)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderExactRows formats the exact-assignment study.
func RenderExactRows(title string, rows []ExactRow) *report.Table {
	t := report.NewTable(title, "B.", "Size", "cap", "SCDS", "SCDS*", "LOMCDSres", "LOMCDS*res")
	for _, r := range rows {
		t.AddF(r.BenchmarkID, fmt.Sprintf("%dx%d", r.Size, r.Size), r.CapacityFactor,
			r.GreedySCDS, r.ExactSCDS, r.GreedyLOMCDS, r.ExactLOMCDS)
	}
	return t
}
