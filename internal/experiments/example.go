package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/trace"
)

// ExampleResult is the outcome of the §3.3 worked example: one data
// item D on a 4x4 array over four execution windows, scheduled by all
// three algorithms.
type ExampleResult struct {
	// Trace is the reconstructed instance.
	Trace *trace.Trace
	// Costs maps scheme name to total communication cost.
	Costs map[string]int64
	// Centers maps scheme name to data D's center sequence (linear
	// processor indices, one per window).
	Centers map[string][]int
}

// Example331 reconstructs the paper's Section 3.3 example (Figure 1).
// The archival text loses the literal per-processor reference counts,
// so the instance is rebuilt to preserve every qualitative property the
// paper walks through:
//
//   - a single data item D on a 4x4 array over four execution windows;
//   - SCDS collapses all windows and picks one center — the processor
//     (1,0) that dominates the merged references;
//   - LOMCDS chases each window's local-optimal center and pays
//     movement on every window boundary;
//   - GOMCDS's shortest path keeps the window-0 center through the
//     windows where moving costs more than serving remotely, moving
//     only when it pays off, and achieves the lowest total cost.
func Example331() (ExampleResult, error) {
	g := grid.Square(4)
	tr := trace.New(g, 1)
	at := func(x, y int) int { return g.Index(grid.Coord{X: x, Y: y}) }

	// Window 0: processor (1,0) needs D three times, (0,0) once.
	w0 := tr.AddWindow()
	w0.AddVolume(at(1, 0), 0, 3)
	w0.AddVolume(at(0, 0), 0, 1)
	// Window 1: a single reference from (1,3).
	w1 := tr.AddWindow()
	w1.AddVolume(at(1, 3), 0, 1)
	// Window 2: (1,0) again, three references.
	w2 := tr.AddWindow()
	w2.AddVolume(at(1, 0), 0, 3)
	// Window 3: (2,1) twice.
	w3 := tr.AddWindow()
	w3.AddVolume(at(2, 1), 0, 2)

	p := sched.NewProblem(tr, 0)
	res := ExampleResult{
		Trace:   tr,
		Costs:   make(map[string]int64),
		Centers: make(map[string][]int),
	}
	for _, s := range []sched.Scheduler{sched.SCDS{}, sched.LOMCDS{}, sched.GOMCDS{}} {
		sc, err := s.Schedule(p)
		if err != nil {
			return ExampleResult{}, fmt.Errorf("experiments: example 3.3 %s: %v", s.Name(), err)
		}
		res.Costs[s.Name()] = p.Model.TotalCost(sc)
		centers := make([]int, tr.NumWindows())
		for w := range centers {
			centers[w] = sc.Centers[w][0]
		}
		res.Centers[s.Name()] = centers
	}
	return res, nil
}

// FormatExample renders the example results like the paper's walk-
// through: the chosen centers per window (as coordinates) and the total
// communication cost per scheme.
func FormatExample(g grid.Grid, res ExampleResult) string {
	out := "Section 3.3 example (data D, 4x4 array, 4 execution windows)\n"
	for _, name := range []string{"SCDS", "LOMCDS", "GOMCDS"} {
		out += fmt.Sprintf("  %-7s centers:", name)
		for _, c := range res.Centers[name] {
			out += " " + g.Coord(c).String()
		}
		out += fmt.Sprintf("  total cost: %d\n", res.Costs[name])
	}
	return out
}

// ExampleSchedule exposes the example's schedule for one scheme as a
// cost.Schedule, for the simulator examples.
func ExampleSchedule(res ExampleResult, scheme string) (cost.Schedule, error) {
	centers, ok := res.Centers[scheme]
	if !ok {
		return cost.Schedule{}, fmt.Errorf("experiments: unknown scheme %q", scheme)
	}
	s := cost.Schedule{Centers: make([][]int, len(centers))}
	for w, c := range centers {
		s.Centers[w] = []int{c}
	}
	return s, nil
}
