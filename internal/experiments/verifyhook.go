package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// CrossCheckSchedule subjects one schedule to the independent referee:
// the structural invariants (window coverage, single-copy residency,
// center bounds, per-window capacity) and exact agreement between the
// cost model's evaluation and the referee's from-scratch recomputation.
// Experiment drivers call it on every schedule they emit when
// Config.Verify is set, so a corrupted residence table or cost model
// fails the run loudly instead of silently skewing a results table.
func CrossCheckSchedule(tr *trace.Trace, p *sched.Problem, sc cost.Schedule, label string) error {
	if err := verify.Check(tr, sc, p.Capacity); err != nil {
		return fmt.Errorf("experiments: %s: %v", label, err)
	}
	bd := p.Model.Evaluate(sc)
	if err := verify.CrossCheck(tr, sc, p.Model.DataSize, verify.Breakdown{Residence: bd.Residence, Move: bd.Move}); err != nil {
		return fmt.Errorf("experiments: %s: %v", label, err)
	}
	return nil
}
