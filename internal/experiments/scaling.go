package experiments

import (
	"fmt"
	"time"

	"repro/internal/coarse"
	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ScalingRow reports how the scheduling gains evolve as the PIM array
// grows (experiment E10 — the PetaFlop-motivated question: does data
// scheduling keep paying as the machine scales?).
type ScalingRow struct {
	BenchmarkID int
	Grid        grid.Grid
	Size        int
	SF          int64
	GOMCDS      int64
	Improvement float64
}

// ScalingStudy runs every paper benchmark at data size n on each array
// shape, comparing GOMCDS with the row-wise baseline.
func ScalingStudy(n int, grids []grid.Grid, capacityFactor int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, b := range workload.PaperBenchmarks() {
		for _, g := range grids {
			tr := b.Gen.Generate(n, g)
			capa := 0
			if capacityFactor > 0 {
				capa = capacityFactor * placement.MinCapacity(tr.NumData, g.NumProcs())
			}
			p := sched.NewProblem(tr, capa)
			sf, err := sched.Fixed{
				Label:  "S.F.",
				Assign: placement.RowWise(trace.SquareMatrix(n), g),
			}.Schedule(p)
			if err != nil {
				return nil, err
			}
			gom, err := sched.GOMCDS{}.Schedule(p)
			if err != nil {
				return nil, err
			}
			sfCost, gomCost := p.Model.TotalCost(sf), p.Model.TotalCost(gom)
			rows = append(rows, ScalingRow{
				BenchmarkID: b.ID, Grid: g, Size: n,
				SF: sfCost, GOMCDS: gomCost,
				Improvement: report.Improvement(sfCost, gomCost),
			})
		}
	}
	return rows, nil
}

// RenderScalingRows formats the scaling study.
func RenderScalingRows(title string, rows []ScalingRow) *report.Table {
	t := report.NewTable(title, "B.", "grid", "S.F.", "GOMCDS", "%")
	for _, r := range rows {
		t.AddF(r.BenchmarkID, r.Grid.String(), r.SF, r.GOMCDS, r.Improvement)
	}
	return t
}

// CoarseRow reports the multilevel-scheduling trade-off (experiment
// E11): block-level scheduling quality and speed against item-level.
type CoarseRow struct {
	BenchmarkID int
	Size        int
	Tile        int // 1 = item-level (no coarsening)
	Blocks      int
	Cost        int64
	// VsFine is Cost relative to the item-level GOMCDS cost.
	VsFine float64
	// Elapsed is the scheduling wall time (problem build + solve).
	Elapsed time.Duration
}

// CoarseningStudy sweeps tile sizes over the paper benchmarks at data
// size n (uncapacitated, isolating the granularity effect).
func CoarseningStudy(cfg Config, n int, tiles []int) ([]CoarseRow, error) {
	var rows []CoarseRow
	m := trace.SquareMatrix(n)
	for _, b := range workload.PaperBenchmarks() {
		tr := b.Gen.Generate(n, cfg.Grid)
		// Item-level reference cost, computed once regardless of the
		// requested tile list.
		fineP := sched.NewProblem(tr, 0)
		fineS, err := sched.GOMCDS{}.Schedule(fineP)
		if err != nil {
			return nil, err
		}
		fineCost := fineP.Model.TotalCost(fineS)
		for _, tile := range tiles {
			if tile <= 0 {
				return nil, fmt.Errorf("experiments: non-positive tile %d", tile)
			}
			start := time.Now()
			var itemCost int64
			var blocks int
			if tile == 1 {
				p := sched.NewProblem(tr, 0)
				s, err := sched.GOMCDS{}.Schedule(p)
				if err != nil {
					return nil, err
				}
				itemCost = p.Model.TotalCost(s)
				blocks = tr.NumData
			} else {
				tm := coarse.TileMatrix(m, tile)
				ct, err := coarse.Coarsen(tr, tm)
				if err != nil {
					return nil, err
				}
				cm := cost.NewModel(ct)
				for blk, s := range tm.BlockSizes() {
					cm.DataSize[blk] = s
				}
				p := sched.NewProblemFromModel(cm, 0)
				bs, err := sched.GOMCDS{}.Schedule(p)
				if err != nil {
					return nil, err
				}
				fineModel := cost.NewModel(tr)
				itemCost = fineModel.TotalCost(coarse.Expand(bs, tm))
				blocks = tm.NumBlocks
			}
			elapsed := time.Since(start)
			ratio := 0.0
			if fineCost > 0 {
				ratio = float64(itemCost) / float64(fineCost)
			}
			rows = append(rows, CoarseRow{
				BenchmarkID: b.ID, Size: n, Tile: tile, Blocks: blocks,
				Cost: itemCost, VsFine: ratio, Elapsed: elapsed,
			})
		}
	}
	return rows, nil
}

// RenderCoarseRows formats the coarsening study.
func RenderCoarseRows(title string, rows []CoarseRow) *report.Table {
	t := report.NewTable(title, "B.", "tile", "blocks", "cost", "xFine", "time")
	for _, r := range rows {
		t.AddF(r.BenchmarkID, r.Tile, r.Blocks, r.Cost,
			fmt.Sprintf("%.2f", r.VsFine), r.Elapsed.Round(time.Millisecond).String())
	}
	return t
}
