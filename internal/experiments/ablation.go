package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/window"
	"repro/internal/workload"
)

// AblationRow compares grouping strategies for one benchmark and size
// (experiment E6 in DESIGN.md): the design question of Section 4 is how
// large execution windows should be, answered by the greedy Algorithm 3
// against no grouping at all and against the exact DP grouper.
type AblationRow struct {
	BenchmarkID int
	Size        int
	// Ungrouped is the plain LOMCDS cost (Table 1 discipline).
	Ungrouped int64
	// Greedy is the cost after Algorithm 3 grouping with strict
	// acceptance (Table 2 discipline).
	Greedy int64
	// GreedyEq is the cost with the paper's literal accept-on-equal
	// rule.
	GreedyEq int64
	// Optimal is the cost with the exact DP partition per data item.
	Optimal int64
	// GreedyGroups and OptimalGroups count the merged windows summed
	// over all data items, showing how aggressively each strategy merges.
	GreedyGroups, OptimalGroups int
}

// GroupingAblation runs the E6 ablation over the configured benchmarks
// and sizes.
func GroupingAblation(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, b := range workload.PaperBenchmarks() {
		for _, n := range cfg.Sizes {
			tr := b.Gen.Generate(n, cfg.Grid)
			p := cfg.newProblem(tr, cfg.capacity(n))

			plain, err := sched.LOMCDS{}.Schedule(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %d/%d: %v", b.ID, n, err)
			}
			greedyGrp := window.Greedy(p, window.LocalCenters)
			greedySched, err := window.Schedule(p, greedyGrp, window.LocalCenters)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %d/%d greedy: %v", b.ID, n, err)
			}
			eqGrp := window.GreedyAcceptEqual(p, window.LocalCenters)
			eqSched, err := window.Schedule(p, eqGrp, window.LocalCenters)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %d/%d greedy-eq: %v", b.ID, n, err)
			}
			optGrp := window.Optimal(p)
			optSched, err := window.Schedule(p, optGrp, window.LocalCenters)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %d/%d optimal: %v", b.ID, n, err)
			}
			rows = append(rows, AblationRow{
				BenchmarkID:   b.ID,
				Size:          n,
				Ungrouped:     p.Model.TotalCost(plain),
				Greedy:        p.Model.TotalCost(greedySched),
				GreedyEq:      p.Model.TotalCost(eqSched),
				Optimal:       p.Model.TotalCost(optSched),
				GreedyGroups:  countGroups(greedyGrp),
				OptimalGroups: countGroups(optGrp),
			})
		}
	}
	return rows, nil
}

func countGroups(g window.Grouping) int {
	n := 0
	for _, groups := range g {
		n += len(groups)
	}
	return n
}

// WindowSweepRow reports how Table 1 costs change when the trace's
// windows are coarsened by merging fixed-size runs before scheduling —
// the paper's observation that window size drives the achievable
// reduction.
type WindowSweepRow struct {
	BenchmarkID int
	Size        int
	// MergeFactor consecutive windows were merged into one.
	MergeFactor int
	Windows     int
	LOMCDS      int64
	GOMCDS      int64
}

// WindowSweep coarsens each benchmark's windows by the given factors
// and reports LOMCDS/GOMCDS costs at each granularity.
func WindowSweep(cfg Config, n int, factors []int) ([]WindowSweepRow, error) {
	var rows []WindowSweepRow
	for _, b := range workload.PaperBenchmarks() {
		base := b.Gen.Generate(n, cfg.Grid)
		for _, f := range factors {
			if f <= 0 {
				return nil, fmt.Errorf("experiments: non-positive merge factor %d", f)
			}
			tr := base
			if f > 1 {
				tr = base.Merged(trace.UniformIntervals(base.NumWindows(), f))
			}
			p := cfg.newProblem(tr, cfg.capacity(n))
			lo, err := sched.LOMCDS{}.Schedule(p)
			if err != nil {
				return nil, err
			}
			gl, err := sched.GOMCDS{}.Schedule(p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, WindowSweepRow{
				BenchmarkID: b.ID,
				Size:        n,
				MergeFactor: f,
				Windows:     tr.NumWindows(),
				LOMCDS:      p.Model.TotalCost(lo),
				GOMCDS:      p.Model.TotalCost(gl),
			})
		}
	}
	return rows, nil
}
