package experiments

import (
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
)

// smallConfig keeps unit tests fast; the full paper setup runs in the
// top-level benchmarks and in TestPaperShapeFullConfig.
func smallConfig() Config {
	return Config{Grid: grid.Square(4), Sizes: []int{8}, CapacityFactor: 2}
}

func TestTable1Structure(t *testing.T) {
	rows, err := Table1(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (5 benchmarks x 1 size)", len(rows))
	}
	for _, r := range rows {
		if r.SF <= 0 {
			t.Errorf("benchmark %d: S.F. cost %d", r.BenchmarkID, r.SF)
		}
		if len(r.Schemes) != 3 {
			t.Fatalf("benchmark %d: %d schemes", r.BenchmarkID, len(r.Schemes))
		}
		for i, name := range []string{"SCDS", "LOMCDS", "GOMCDS"} {
			if r.Schemes[i].Name != name {
				t.Errorf("scheme %d = %q, want %q", i, r.Schemes[i].Name, name)
			}
		}
	}
}

// E4: the paper's headline — every proposed scheme improves on the
// straightforward distribution, and GOMCDS is the best of the three.
func TestPaperShapeSmall(t *testing.T) {
	cfg := Config{Grid: grid.Square(4), Sizes: []int{8, 16}, CapacityFactor: 2}
	if testing.Short() {
		cfg.Sizes = []int{8} // drop the 16x16 sweep; the shape checks still run
	}
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, s := range r.Schemes {
			if s.Comm >= r.SF {
				t.Errorf("benchmark %d size %d: %s cost %d did not improve on S.F. %d",
					r.BenchmarkID, r.Size, s.Name, s.Comm, r.SF)
			}
		}
		gom, _ := r.Scheme("GOMCDS")
		for _, name := range []string{"SCDS", "LOMCDS"} {
			s, _ := r.Scheme(name)
			if gom.Comm > s.Comm {
				t.Errorf("benchmark %d size %d: GOMCDS %d > %s %d",
					r.BenchmarkID, r.Size, gom.Comm, name, s.Comm)
			}
		}
	}
	// Average ordering across the suite: GOMCDS >= LOMCDS >= SCDS, all
	// substantial (the paper reports average improvements up to ~30%).
	aScds := AverageImprovement(rows, "SCDS")
	aLom := AverageImprovement(rows, "LOMCDS")
	aGom := AverageImprovement(rows, "GOMCDS")
	if aGom < aLom || aLom < aScds {
		t.Errorf("average ordering violated: SCDS %.1f LOMCDS %.1f GOMCDS %.1f", aScds, aLom, aGom)
	}
	if aScds < 10 || aGom < 25 {
		t.Errorf("improvements implausibly small: SCDS %.1f GOMCDS %.1f", aScds, aGom)
	}
}

// The full paper configuration (Tables 1 and 2 at 8/16/32). Slower, so
// skipped under -short.
func TestPaperShapeFullConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper sweep skipped in short mode")
	}
	cfg := DefaultConfig()
	t1, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 15 || len(t2) != 15 {
		t.Fatalf("rows: %d and %d, want 15 each", len(t1), len(t2))
	}
	// Every scheme beats S.F. in every row of both tables.
	for _, rows := range [][]Row{t1, t2} {
		for _, r := range rows {
			for _, s := range r.Schemes {
				if s.Comm >= r.SF {
					t.Errorf("benchmark %d size %d: %s %d >= S.F. %d",
						r.BenchmarkID, r.Size, s.Name, s.Comm, r.SF)
				}
			}
		}
	}
	// Table 1 ordering: GOMCDS best on average, LOMCDS above SCDS.
	if a, b := AverageImprovement(t1, "GOMCDS"), AverageImprovement(t1, "LOMCDS"); a < b {
		t.Errorf("Table 1: GOMCDS %.1f < LOMCDS %.1f", a, b)
	}
	if a, b := AverageImprovement(t1, "LOMCDS"), AverageImprovement(t1, "SCDS"); a < b {
		t.Errorf("Table 1: LOMCDS %.1f < SCDS %.1f", a, b)
	}
	// Grouping lifts LOMCDS (the Table 2 story).
	if a, b := AverageImprovement(t2, "LOMCDS"), AverageImprovement(t1, "LOMCDS"); a < b {
		t.Errorf("grouping did not improve LOMCDS: %.1f < %.1f", a, b)
	}
	// SCDS ignores window structure: identical columns in both tables.
	for i := range t1 {
		s1, _ := t1[i].Scheme("SCDS")
		s2, _ := t2[i].Scheme("SCDS")
		if s1.Comm != s2.Comm {
			t.Errorf("row %d: SCDS differs between tables: %d vs %d", i, s1.Comm, s2.Comm)
		}
	}
}

func TestTable2NeverWorseThanSF(t *testing.T) {
	rows, err := Table2(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, s := range r.Schemes {
			if s.Comm >= r.SF {
				t.Errorf("benchmark %d: %s %d >= S.F. %d", r.BenchmarkID, s.Name, s.Comm, r.SF)
			}
		}
	}
}

func TestRenderRows(t *testing.T) {
	rows, err := Table1(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRows("Table 1", rows).String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "GOMCDS") {
		t.Errorf("render output missing headers:\n%s", out)
	}
	if !strings.Contains(out, "8x8") {
		t.Errorf("render output missing size column:\n%s", out)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Table1(Config{Grid: grid.Square(4)}); err == nil {
		t.Error("empty size list accepted")
	}
}

func TestAverageImprovementUnknownScheme(t *testing.T) {
	rows, err := Table1(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := AverageImprovement(rows, "NOPE"); got != 0 {
		t.Errorf("unknown scheme average = %v", got)
	}
}

func TestExample331(t *testing.T) {
	res, err := Example331()
	if err != nil {
		t.Fatal(err)
	}
	// The worked example's qualitative outcomes (§3.3): GOMCDS cheapest;
	// SCDS uses a single center; LOMCDS moves every window boundary with
	// a referenced center change; GOMCDS keeps the window-0 center
	// through window 2 and moves only for the final window.
	if res.Costs["GOMCDS"] > res.Costs["LOMCDS"] || res.Costs["GOMCDS"] > res.Costs["SCDS"] {
		t.Errorf("costs: %v — GOMCDS is not cheapest", res.Costs)
	}
	scds := res.Centers["SCDS"]
	for _, c := range scds[1:] {
		if c != scds[0] {
			t.Errorf("SCDS moved: centers %v", scds)
		}
	}
	g := grid.Square(4)
	if scds[0] != g.Index(grid.Coord{X: 1, Y: 0}) {
		t.Errorf("SCDS center = %v, want (1,0)", g.Coord(scds[0]))
	}
	gom := res.Centers["GOMCDS"]
	if gom[0] != gom[1] || gom[1] != gom[2] {
		t.Errorf("GOMCDS did not hold the window-0 center through window 2: %v", gom)
	}
	if gom[3] == gom[0] {
		t.Errorf("GOMCDS never moved: %v", gom)
	}
	lom := res.Centers["LOMCDS"]
	if lom[0] == lom[1] || lom[1] == lom[2] {
		t.Errorf("LOMCDS did not chase the local centers: %v", lom)
	}
	// Exact reconstructed costs, pinned so regressions surface.
	if res.Costs["SCDS"] != 8 || res.Costs["LOMCDS"] != 9 || res.Costs["GOMCDS"] != 6 {
		t.Errorf("costs = %v, want SCDS 8, LOMCDS 9, GOMCDS 6", res.Costs)
	}
}

func TestFormatExample(t *testing.T) {
	res, err := Example331()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatExample(grid.Square(4), res)
	for _, want := range []string{"SCDS", "LOMCDS", "GOMCDS", "(1,0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatExample missing %q:\n%s", want, out)
		}
	}
}

func TestExampleSchedule(t *testing.T) {
	res, err := Example331()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ExampleSchedule(res, "GOMCDS")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWindows() != 4 {
		t.Fatalf("windows = %d", s.NumWindows())
	}
	if _, err := ExampleSchedule(res, "NOPE"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestGroupingAblation(t *testing.T) {
	rows, err := GroupingAblation(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Greedy > r.Ungrouped {
			t.Errorf("benchmark %d: greedy grouping %d worse than ungrouped %d",
				r.BenchmarkID, r.Greedy, r.Ungrouped)
		}
		if r.GreedyGroups <= 0 || r.OptimalGroups <= 0 {
			t.Errorf("benchmark %d: degenerate group counts %d/%d",
				r.BenchmarkID, r.GreedyGroups, r.OptimalGroups)
		}
	}
}

func TestWindowSweep(t *testing.T) {
	rows, err := WindowSweep(smallConfig(), 8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 benchmarks x 3 factors
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LOMCDS <= 0 || r.GOMCDS <= 0 {
			t.Errorf("benchmark %d factor %d: degenerate costs", r.BenchmarkID, r.MergeFactor)
		}
		// Under the memory capacity both schedulers commit items
		// greedily, so GOMCDS's optimality guarantee is per item, not
		// global; allow a small tolerance on the comparison.
		if float64(r.GOMCDS) > 1.05*float64(r.LOMCDS) {
			t.Errorf("benchmark %d factor %d: GOMCDS %d far above LOMCDS %d",
				r.BenchmarkID, r.MergeFactor, r.GOMCDS, r.LOMCDS)
		}
	}
	if _, err := WindowSweep(smallConfig(), 8, []int{0}); err == nil {
		t.Error("zero merge factor accepted")
	}
}

func TestSimStudy(t *testing.T) {
	rows, err := SimStudy(smallConfig(), 8, simOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 5 benchmarks x 4 schemes
		t.Fatalf("rows = %d", len(rows))
	}
	byBench := map[int]map[string]SimRow{}
	for _, r := range rows {
		if byBench[r.BenchmarkID] == nil {
			byBench[r.BenchmarkID] = map[string]SimRow{}
		}
		byBench[r.BenchmarkID][r.Scheme] = r
	}
	for id, schemes := range byBench {
		sf, gom := schemes["S.F."], schemes["GOMCDS"]
		if gom.FlitHops >= sf.FlitHops {
			t.Errorf("benchmark %d: GOMCDS flit-hops %d >= S.F. %d", id, gom.FlitHops, sf.FlitHops)
		}
		if gom.Cycles > sf.Cycles {
			t.Errorf("benchmark %d: GOMCDS cycles %d > S.F. %d", id, gom.Cycles, sf.Cycles)
		}
	}
	out := RenderSimRows("sim", rows).String()
	if !strings.Contains(out, "Cycles") {
		t.Error("render missing Cycles column")
	}
}

func TestVerifySimConsistency(t *testing.T) {
	if err := VerifySimConsistency(smallConfig(), 8); err != nil {
		t.Fatal(err)
	}
}

func TestSchedules(t *testing.T) {
	tr, scheds, err := Schedules(smallConfig(), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 4 {
		t.Fatalf("schemes = %d", len(scheds))
	}
	for name, sc := range scheds {
		if err := sc.Validate(tr.Grid, tr.NumData, tr.NumWindows()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, _, err := Schedules(smallConfig(), 99, 8); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// simOptions returns default simulator options for tests.
func simOptions() sim.Options { return sim.Options{} }

// The Verify knob routes every schedule through the independent
// referee; on a healthy build the tables come out unchanged.
func TestVerifyConfigTable(t *testing.T) {
	cfg := smallConfig()
	plain, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Verify = true
	checked, err := Table1(cfg)
	if err != nil {
		t.Fatalf("verified run failed: %v", err)
	}
	if len(plain) != len(checked) {
		t.Fatalf("row counts differ: %d vs %d", len(plain), len(checked))
	}
	for i := range plain {
		for j := range plain[i].Schemes {
			if plain[i].Schemes[j].Comm != checked[i].Schemes[j].Comm {
				t.Errorf("row %d scheme %s: cost changed under verification: %d vs %d",
					i, plain[i].Schemes[j].Name, plain[i].Schemes[j].Comm, checked[i].Schemes[j].Comm)
			}
		}
	}
	if _, err := Table2(cfg); err != nil {
		t.Fatalf("verified Table 2 failed: %v", err)
	}
}

func TestVerifyConfigSchedules(t *testing.T) {
	cfg := smallConfig()
	cfg.Verify = true
	if _, _, err := Schedules(cfg, 1, 8); err != nil {
		t.Fatalf("verified Schedules failed: %v", err)
	}
}
