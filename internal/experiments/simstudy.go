package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SimRow is one line of the execution-time study (experiment E5): a
// benchmark under one scheduling scheme, run through the mesh
// interconnect simulator.
type SimRow struct {
	BenchmarkID int
	Size        int
	Scheme      string
	// Cycles is the simulated makespan with link contention.
	Cycles int64
	// FlitHops equals the analytic total communication cost.
	FlitHops int64
	// Messages is the number of point-to-point transfers.
	Messages int
	// MaxLinkFlits is the hottest link's carried volume.
	MaxLinkFlits int64
}

// SimStudy simulates every paper benchmark at data size n under the
// straightforward distribution and the three schedulers, reporting
// simulated execution time alongside analytic cost. It demonstrates the
// paper's motivation: reducing communication cost shortens execution.
func SimStudy(cfg Config, n int, opts sim.Options) ([]SimRow, error) {
	var rows []SimRow
	for _, b := range workload.PaperBenchmarks() {
		tr := b.Gen.Generate(n, cfg.Grid)
		p := cfg.newProblem(tr, cfg.capacity(n))
		schedulers := []sched.Scheduler{
			sched.Fixed{Label: "S.F.", Assign: placement.RowWise(trace.SquareMatrix(n), cfg.Grid)},
			sched.SCDS{},
			sched.LOMCDS{},
			sched.GOMCDS{},
		}
		simulator := sim.New(cfg.Grid, opts)
		for _, s := range schedulers {
			sc, err := s.Schedule(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: sim study %d/%s: %v", b.ID, s.Name(), err)
			}
			if cfg.Verify {
				if err := CrossCheckSchedule(tr, p, sc, fmt.Sprintf("sim study %d/%s", b.ID, s.Name())); err != nil {
					return nil, err
				}
			}
			res, err := simulator.Run(tr, sc)
			if err != nil {
				return nil, fmt.Errorf("experiments: sim study %d/%s: %v", b.ID, s.Name(), err)
			}
			rows = append(rows, SimRow{
				BenchmarkID:  b.ID,
				Size:         n,
				Scheme:       s.Name(),
				Cycles:       res.Cycles,
				FlitHops:     res.FlitHops,
				Messages:     res.Messages,
				MaxLinkFlits: res.MaxLinkFlits,
			})
		}
	}
	return rows, nil
}

// RenderSimRows formats the simulation study as a text table.
func RenderSimRows(title string, rows []SimRow) *report.Table {
	t := report.NewTable(title, "B.", "Size", "Scheme", "Cycles", "FlitHops", "Msgs", "MaxLink")
	for _, r := range rows {
		t.AddF(r.BenchmarkID, fmt.Sprintf("%dx%d", r.Size, r.Size), r.Scheme,
			r.Cycles, r.FlitHops, r.Messages, r.MaxLinkFlits)
	}
	return t
}

// VerifySimConsistency cross-checks one benchmark: the simulator's
// flit-hops must equal the analytic cost for every scheme. It returns
// the first inconsistency found, or nil.
func VerifySimConsistency(cfg Config, n int) error {
	for _, b := range workload.PaperBenchmarks() {
		tr := b.Gen.Generate(n, cfg.Grid)
		p := cfg.newProblem(tr, cfg.capacity(n))
		for _, s := range []sched.Scheduler{sched.SCDS{}, sched.LOMCDS{}, sched.GOMCDS{}} {
			sc, err := s.Schedule(p)
			if err != nil {
				return err
			}
			res, err := sim.Simulate(tr, sc, sim.Options{})
			if err != nil {
				return err
			}
			if want := p.Model.TotalCost(sc); res.FlitHops != want {
				return fmt.Errorf("experiments: benchmark %d %s: simulated flit-hops %d != analytic cost %d",
					b.ID, s.Name(), res.FlitHops, want)
			}
		}
	}
	return nil
}

// Schedules builds the schedule of every scheme for one benchmark and
// size, for tools that want direct access (cmd/pimsim).
func Schedules(cfg Config, benchmarkID, n int) (*trace.Trace, map[string]cost.Schedule, error) {
	for _, b := range workload.PaperBenchmarks() {
		if b.ID != benchmarkID {
			continue
		}
		tr := b.Gen.Generate(n, cfg.Grid)
		p := cfg.newProblem(tr, cfg.capacity(n))
		out := make(map[string]cost.Schedule)
		schedulers := []sched.Scheduler{
			sched.Fixed{Label: "S.F.", Assign: placement.RowWise(trace.SquareMatrix(n), cfg.Grid)},
			sched.SCDS{},
			sched.LOMCDS{},
			sched.GOMCDS{},
		}
		for _, s := range schedulers {
			sc, err := s.Schedule(p)
			if err != nil {
				return nil, nil, err
			}
			if cfg.Verify {
				if err := CrossCheckSchedule(tr, p, sc, fmt.Sprintf("benchmark %d size %d %s", benchmarkID, n, s.Name())); err != nil {
					return nil, nil, err
				}
			}
			out[s.Name()] = sc
		}
		return tr, out, nil
	}
	return nil, nil, fmt.Errorf("experiments: unknown benchmark %d", benchmarkID)
}
