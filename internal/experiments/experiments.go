// Package experiments reproduces the evaluation artifacts of the
// paper: the §3.3 worked example, Table 1 (total communication cost of
// the three schedulers against the straightforward row-wise
// distribution), Table 2 (the same after execution-window grouping),
// and the ablation studies described in DESIGN.md.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/window"
	"repro/internal/workload"
)

// Config fixes the experimental setup. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Grid is the processor array (the paper uses 4x4).
	Grid grid.Grid
	// Sizes are the data matrix dimensions (the paper uses 8, 16, 32).
	Sizes []int
	// CapacityFactor scales the minimum per-processor memory; the
	// paper uses 2 ("twice more than the minimum memory size").
	CapacityFactor int
	// Verify runs every emitted schedule through the independent
	// referee (internal/verify): invariant checks plus a from-scratch
	// cost recomputation that must agree exactly with the model.
	Verify bool
	// Stages, when non-nil, receives one (stage, duration) observation
	// per pipeline phase: the model's "cost.*" table builds and a
	// "sched.<algorithm>" span per scheduler run. It is the same shape
	// as obs.Stages (declared as a plain func so the experiment driver
	// stays decoupled); pimbench installs an obs.StageBreakdown here
	// for its per-stage time report. Must be safe for concurrent use.
	Stages func(stage string, d time.Duration)
}

// stage opens a span named for one experiment phase; the returned func
// records the elapsed time. Nil-safe and free when no sink is set.
func (c Config) stage(name string) func() {
	if c.Stages == nil {
		return func() {}
	}
	start := time.Now()
	return func() { c.Stages(name, time.Since(start)) }
}

// newProblem is sched.NewProblem with the configured stage sink wired
// into the cost model, so table builds show up in the breakdown.
func (c Config) newProblem(tr *trace.Trace, capacity int) *sched.Problem {
	m := cost.NewModel(tr)
	m.Stages = c.Stages
	return sched.NewProblemFromModel(m, capacity)
}

// DefaultConfig returns the paper's setup: a 4x4 array, matrix sizes
// 8x8, 16x16 and 32x32, and memory twice the minimum.
func DefaultConfig() Config {
	return Config{Grid: grid.Square(4), Sizes: []int{8, 16, 32}, CapacityFactor: 2}
}

// capacity returns the per-processor memory for a data matrix of the
// given dimension.
func (c Config) capacity(n int) int {
	f := c.CapacityFactor
	if f <= 0 {
		f = 2
	}
	return f * placement.MinCapacity(n*n, c.Grid.NumProcs())
}

// SchemeResult is one scheduler's cell pair in a paper table: the total
// communication cost and the percentage improvement over the
// straightforward distribution.
type SchemeResult struct {
	Name        string
	Comm        int64
	Improvement float64
}

// Row is one row of Table 1 or Table 2: a benchmark at one data size.
type Row struct {
	BenchmarkID int
	Description string
	Size        int
	// SF is the total communication cost of the straightforward
	// row-wise distribution (column "S.F.").
	SF int64
	// Schemes holds the SCDS, LOMCDS and GOMCDS columns, in that order.
	Schemes []SchemeResult
}

// Scheme returns the named scheme result and whether it exists.
func (r Row) Scheme(name string) (SchemeResult, bool) {
	for _, s := range r.Schemes {
		if s.Name == name {
			return s, true
		}
	}
	return SchemeResult{}, false
}

// Table1 reproduces the paper's Table 1: the total communication cost
// of every benchmark and size before execution-window grouping.
func Table1(cfg Config) ([]Row, error) {
	return buildTable(cfg, func(p *sched.Problem, s sched.Scheduler) (cost.Schedule, error) {
		return s.Schedule(p)
	})
}

// Table2 reproduces the paper's Table 2: the total communication cost
// after applying the execution-window grouping (Algorithm 3, computing
// centers with LOMCDS as in the paper). SCDS ignores window structure,
// so its column matches Table 1; LOMCDS and GOMCDS are re-run on the
// grouped windows.
func Table2(cfg Config) ([]Row, error) {
	return buildTable(cfg, func(p *sched.Problem, s sched.Scheduler) (cost.Schedule, error) {
		switch s.(type) {
		case sched.SCDS:
			return s.Schedule(p)
		case sched.LOMCDS:
			grp := window.Greedy(p, window.LocalCenters)
			return window.Schedule(p, grp, window.LocalCenters)
		case sched.GOMCDS:
			grp := window.Greedy(p, window.LocalCenters)
			return window.Schedule(p, grp, window.GlobalCenters)
		}
		return cost.Schedule{}, fmt.Errorf("experiments: unknown scheduler %s", s.Name())
	})
}

func buildTable(cfg Config, eval func(*sched.Problem, sched.Scheduler) (cost.Schedule, error)) ([]Row, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("experiments: no data sizes configured")
	}
	var rows []Row
	for _, b := range workload.PaperBenchmarks() {
		for _, n := range cfg.Sizes {
			tr := b.Gen.Generate(n, cfg.Grid)
			p := cfg.newProblem(tr, cfg.capacity(n))
			sf, err := sched.Fixed{
				Label:  "S.F.",
				Assign: placement.RowWise(trace.SquareMatrix(n), cfg.Grid),
			}.Schedule(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: benchmark %d size %d: %v", b.ID, n, err)
			}
			if cfg.Verify {
				if err := CrossCheckSchedule(tr, p, sf, fmt.Sprintf("benchmark %d size %d S.F.", b.ID, n)); err != nil {
					return nil, err
				}
			}
			row := Row{
				BenchmarkID: b.ID,
				Description: b.Description,
				Size:        n,
				SF:          p.Model.TotalCost(sf),
			}
			for _, s := range sched.All() {
				end := cfg.stage("sched." + strings.ToLower(s.Name()))
				sc, err := eval(p, s)
				end()
				if err != nil {
					return nil, fmt.Errorf("experiments: benchmark %d size %d %s: %v", b.ID, n, s.Name(), err)
				}
				if cfg.Verify {
					if err := CrossCheckSchedule(tr, p, sc, fmt.Sprintf("benchmark %d size %d %s", b.ID, n, s.Name())); err != nil {
						return nil, err
					}
				}
				comm := p.Model.TotalCost(sc)
				row.Schemes = append(row.Schemes, SchemeResult{
					Name:        s.Name(),
					Comm:        comm,
					Improvement: report.Improvement(row.SF, comm),
				})
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AverageImprovement returns the mean percentage improvement of the
// named scheme across all rows.
func AverageImprovement(rows []Row, scheme string) float64 {
	var sum float64
	var n int
	for _, r := range rows {
		if s, ok := r.Scheme(scheme); ok {
			sum += s.Improvement
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RenderRows formats table rows in the paper's column layout.
func RenderRows(title string, rows []Row) *report.Table {
	t := report.NewTable(title,
		"B.", "Size", "S.F.",
		"SCDS", "%", "LOMCDS", "%", "GOMCDS", "%")
	for _, r := range rows {
		cells := []any{r.BenchmarkID, fmt.Sprintf("%dx%d", r.Size, r.Size), r.SF}
		for _, s := range r.Schemes {
			cells = append(cells, s.Comm, s.Improvement)
		}
		t.AddF(cells...)
	}
	return t
}
