package experiments

import (
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestOnlineStudy(t *testing.T) {
	rows, err := OnlineStudy(smallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 benchmarks x 3 policies
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RatioVsOffline < 1.0 {
			t.Errorf("benchmark %d %s: competitive ratio %.3f < 1 (beats clairvoyant optimum?)",
				r.BenchmarkID, r.Scheme, r.RatioVsOffline)
		}
		if r.RatioVsOffline > 10 {
			t.Errorf("benchmark %d %s: ratio %.1f implausibly large", r.BenchmarkID, r.Scheme, r.RatioVsOffline)
		}
	}
	out := RenderOnlineRows("online", rows).String()
	if !strings.Contains(out, "xOffline") || !strings.Contains(out, "hysteresis") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestReplicationStudy(t *testing.T) {
	rows, err := ReplicationStudy(smallConfig(), 8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Group by benchmark; within a benchmark, the k=4 total never
	// exceeds the k=1 total (the greedy only adds profitable copies,
	// and k=1 is its own baseline modulo capacity divergence — compare
	// against k=1 of the same scheduler).
	byBench := map[int]map[int]ReplicaRow{}
	for _, r := range rows {
		if byBench[r.BenchmarkID] == nil {
			byBench[r.BenchmarkID] = map[int]ReplicaRow{}
		}
		byBench[r.BenchmarkID][r.MaxCopies] = r
	}
	for id, byK := range byBench {
		if byK[4].Total > byK[1].Total {
			t.Errorf("benchmark %d: k=4 total %d > k=1 total %d", id, byK[4].Total, byK[1].Total)
		}
	}
	// Matrix square (benchmark 2) broadcasts its k-panel: replication
	// must pay off visibly there.
	if r := byBench[2][4]; r.VsSingle >= 1.0 {
		t.Errorf("benchmark 2: replication x4 ratio %.2f, expected < 1", r.VsSingle)
	}
	out := RenderReplicaRows("replica", rows).String()
	if !strings.Contains(out, "replicate") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestExactAssignmentStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("min-cost-flow sweep skipped in short mode")
	}
	rows, err := ExactAssignmentStudy(smallConfig(), 8, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ExactSCDS > r.GreedySCDS {
			t.Errorf("benchmark %d cap %d: exact SCDS %d > greedy %d",
				r.BenchmarkID, r.CapacityFactor, r.ExactSCDS, r.GreedySCDS)
		}
		// The per-window exact solver optimizes a mixed objective
		// (residence plus stay-put distance for unreferenced items),
		// and its previous-window state diverges from the greedy's, so
		// its residence can exceed the greedy's by a hair; only large
		// regressions indicate a bug.
		if float64(r.ExactLOMCDS) > 1.02*float64(r.GreedyLOMCDS) {
			t.Errorf("benchmark %d cap %d: exact LOMCDS residence %d far above greedy %d",
				r.BenchmarkID, r.CapacityFactor, r.ExactLOMCDS, r.GreedyLOMCDS)
		}
	}
	// At minimum capacity (factor 1) the greedy discipline should be
	// strictly suboptimal somewhere across the suite.
	anyGap := false
	for _, r := range rows {
		if r.CapacityFactor == 1 && (r.ExactSCDS < r.GreedySCDS || r.ExactLOMCDS < r.GreedyLOMCDS) {
			anyGap = true
		}
	}
	if !anyGap {
		t.Error("no greedy-vs-exact gap at minimum capacity (suspicious)")
	}
	if _, err := ExactAssignmentStudy(smallConfig(), 8, []int{0}); err == nil {
		t.Error("zero capacity factor accepted")
	}
	out := RenderExactRows("exact", rows).String()
	if !strings.Contains(out, "SCDS*") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestScalingStudy(t *testing.T) {
	grids := []grid.Grid{grid.Square(2), grid.Square(4)}
	rows, err := ScalingStudy(8, grids, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GOMCDS >= r.SF {
			t.Errorf("benchmark %d on %v: GOMCDS %d >= S.F. %d", r.BenchmarkID, r.Grid, r.GOMCDS, r.SF)
		}
	}
	out := RenderScalingRows("scaling", rows).String()
	if !strings.Contains(out, "2x2") || !strings.Contains(out, "4x4") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestCoarseningStudy(t *testing.T) {
	rows, err := CoarseningStudy(smallConfig(), 8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tile == 1 && r.VsFine != 1.0 {
			t.Errorf("benchmark %d: tile 1 ratio %.2f, want 1.0", r.BenchmarkID, r.VsFine)
		}
		if r.VsFine < 1.0 {
			t.Errorf("benchmark %d tile %d: coarse beat fine (%.2f)", r.BenchmarkID, r.Tile, r.VsFine)
		}
		if r.Tile > 1 && r.Blocks >= 64 {
			t.Errorf("benchmark %d tile %d: %d blocks, expected < 64", r.BenchmarkID, r.Tile, r.Blocks)
		}
	}
	if _, err := CoarseningStudy(smallConfig(), 8, []int{0}); err == nil {
		t.Error("zero tile accepted")
	}
	out := RenderCoarseRows("coarse", rows).String()
	if !strings.Contains(out, "xFine") {
		t.Errorf("render output:\n%s", out)
	}
}
