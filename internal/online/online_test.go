package online

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
)

func randomProblem(rng *rand.Rand, capacitated bool) *sched.Problem {
	g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
	nd := 1 + rng.Intn(5)
	tr := trace.New(g, nd)
	for w := 0; w < 1+rng.Intn(6); w++ {
		win := tr.AddWindow()
		for r := 0; r < rng.Intn(12); r++ {
			win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
		}
	}
	capa := 0
	if capacitated {
		capa = placement.PaperCapacity(nd, g.NumProcs())
	}
	return sched.NewProblem(tr, capa)
}

func TestNames(t *testing.T) {
	cases := map[string]Scheduler{
		"online-stay-put":      {Policy: StayPut},
		"online-chase":         {Policy: Chase},
		"online-hysteresis":    {Policy: Hysteresis},
		"online-hysteresis(2)": {Policy: Hysteresis, Factor: 2},
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy has empty string")
	}
}

func TestStayPutNeverMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, false)
		s, err := Scheduler{Policy: StayPut}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if p.Model.MoveCost(s) != 0 {
			t.Fatalf("iter %d: stay-put moved data (cost %d)", iter, p.Model.MoveCost(s))
		}
	}
}

func TestChaseMatchesLOMCDSResidence(t *testing.T) {
	// Uncapacitated, chase picks the same per-window local optima as
	// LOMCDS (both with lowest-index tie-breaking and stay-put on
	// unreferenced windows), so the residence costs agree.
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, false)
		online, err := Scheduler{Policy: Chase}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		offline, err := sched.LOMCDS{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := p.Model.ResidenceCost(online), p.Model.ResidenceCost(offline); a != b {
			t.Fatalf("iter %d: chase residence %d != LOMCDS residence %d", iter, a, b)
		}
	}
}

// The offline optimum is a lower bound for every online policy.
func TestOnlineNeverBeatsOfflineOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, false)
		opt, err := sched.GOMCDS{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		optCost := p.Model.TotalCost(opt)
		for _, policy := range []Policy{StayPut, Chase, Hysteresis} {
			s, err := Scheduler{Policy: policy}.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.Model.TotalCost(s); got < optCost {
				t.Fatalf("iter %d: %v cost %d beats offline optimum %d",
					iter, policy, got, optCost)
			}
		}
	}
}

// Hysteresis on a phase-shift workload: cheaper than stay-put (which
// pays remote references forever) and than chase on an oscillating
// workload (which pays a move every window).
func TestHysteresisBalancesExtremes(t *testing.T) {
	g := grid.Square(4)

	// Phase shift: 6 windows at corner 0, then 6 at corner 15.
	shift := trace.New(g, 1)
	for w := 0; w < 12; w++ {
		win := shift.AddWindow()
		corner := 0
		if w >= 6 {
			corner = 15
		}
		win.AddVolume(corner, 0, 2)
	}
	p := sched.NewProblem(shift, 0)
	hys, err := Scheduler{Policy: Hysteresis}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	stay, err := Scheduler{Policy: StayPut}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.TotalCost(hys) >= p.Model.TotalCost(stay) {
		t.Fatalf("phase shift: hysteresis %d >= stay-put %d",
			p.Model.TotalCost(hys), p.Model.TotalCost(stay))
	}

	// Oscillation: references alternate corners every window with tiny
	// volume, so moving every window is wasteful.
	osc := trace.New(g, 1)
	for w := 0; w < 12; w++ {
		win := osc.AddWindow()
		corner := 0
		if w%2 == 1 {
			corner = 15
		}
		win.Add(corner, 0)
	}
	p2 := sched.NewProblem(osc, 0)
	hys2, err := Scheduler{Policy: Hysteresis}.Schedule(p2)
	if err != nil {
		t.Fatal(err)
	}
	chase2, err := Scheduler{Policy: Chase}.Schedule(p2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Model.TotalCost(hys2) > p2.Model.TotalCost(chase2) {
		t.Fatalf("oscillation: hysteresis %d > chase %d",
			p2.Model.TotalCost(hys2), p2.Model.TotalCost(chase2))
	}
}

func TestCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, true)
		for _, policy := range []Policy{StayPut, Chase, Hysteresis} {
			s, err := Scheduler{Policy: policy}.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(p.Model.Grid, p.Model.NumData, p.Model.NumWindows()); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < p.Model.NumWindows(); w++ {
				used := make([]int, p.Model.Grid.NumProcs())
				for d := 0; d < p.Model.NumData; d++ {
					used[s.Centers[w][d]]++
				}
				for proc, n := range used {
					if n > p.Capacity {
						t.Fatalf("iter %d %v w%d: proc %d holds %d > %d",
							iter, policy, w, proc, n, p.Capacity)
					}
				}
			}
		}
	}
}

func TestInfeasibleRejected(t *testing.T) {
	tr := trace.New(grid.Square(2), 10)
	tr.AddWindow().Add(0, 0)
	p := sched.NewProblem(tr, 2)
	if _, err := (Scheduler{Policy: Chase}).Schedule(p); err == nil {
		t.Fatal("infeasible capacity accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := trace.New(grid.Square(2), 2)
	p := sched.NewProblem(tr, 0)
	s, err := Scheduler{Policy: Hysteresis}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWindows() != 0 {
		t.Fatal("windows scheduled for empty trace")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	p := randomProblem(rng, true)
	for _, policy := range []Policy{StayPut, Chase, Hysteresis} {
		a, err := Scheduler{Policy: policy}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Scheduler{Policy: policy}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		for w := range a.Centers {
			for d := range a.Centers[w] {
				if a.Centers[w][d] != b.Centers[w][d] {
					t.Fatalf("%v nondeterministic at (%d,%d)", policy, w, d)
				}
			}
		}
	}
}

func BenchmarkHysteresis(b *testing.B) {
	rng := rand.New(rand.NewSource(65))
	g := grid.Square(4)
	tr := trace.New(g, 256)
	for w := 0; w < 32; w++ {
		win := tr.AddWindow()
		for r := 0; r < 512; r++ {
			win.Add(rng.Intn(16), trace.DataID(rng.Intn(256)))
		}
	}
	p := sched.NewProblem(tr, placement.PaperCapacity(256, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Scheduler{Policy: Hysteresis}).Schedule(p); err != nil {
			b.Fatal(err)
		}
	}
}
