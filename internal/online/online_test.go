package online

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
)

func randomProblem(rng *rand.Rand, capacitated bool) *sched.Problem {
	g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
	nd := 1 + rng.Intn(5)
	tr := trace.New(g, nd)
	for w := 0; w < 1+rng.Intn(6); w++ {
		win := tr.AddWindow()
		for r := 0; r < rng.Intn(12); r++ {
			win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
		}
	}
	capa := 0
	if capacitated {
		capa = placement.PaperCapacity(nd, g.NumProcs())
	}
	return sched.NewProblem(tr, capa)
}

func TestNames(t *testing.T) {
	cases := map[string]Scheduler{
		"online-stay-put":      {Policy: StayPut},
		"online-chase":         {Policy: Chase},
		"online-hysteresis":    {Policy: Hysteresis},
		"online-hysteresis(2)": {Policy: Hysteresis, Factor: 2},
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy has empty string")
	}
}

func TestStayPutNeverMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, false)
		s, err := Scheduler{Policy: StayPut}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if p.Model.MoveCost(s) != 0 {
			t.Fatalf("iter %d: stay-put moved data (cost %d)", iter, p.Model.MoveCost(s))
		}
	}
}

func TestChaseMatchesLOMCDSResidence(t *testing.T) {
	// Uncapacitated, chase picks the same per-window local optima as
	// LOMCDS (both with lowest-index tie-breaking and stay-put on
	// unreferenced windows), so the residence costs agree.
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, false)
		online, err := Scheduler{Policy: Chase}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		offline, err := sched.LOMCDS{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := p.Model.ResidenceCost(online), p.Model.ResidenceCost(offline); a != b {
			t.Fatalf("iter %d: chase residence %d != LOMCDS residence %d", iter, a, b)
		}
	}
}

// The offline optimum is a lower bound for every online policy.
func TestOnlineNeverBeatsOfflineOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, false)
		opt, err := sched.GOMCDS{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		optCost := p.Model.TotalCost(opt)
		for _, policy := range []Policy{StayPut, Chase, Hysteresis} {
			s, err := Scheduler{Policy: policy}.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.Model.TotalCost(s); got < optCost {
				t.Fatalf("iter %d: %v cost %d beats offline optimum %d",
					iter, policy, got, optCost)
			}
		}
	}
}

// Hysteresis on a phase-shift workload: cheaper than stay-put (which
// pays remote references forever) and than chase on an oscillating
// workload (which pays a move every window).
func TestHysteresisBalancesExtremes(t *testing.T) {
	g := grid.Square(4)

	// Phase shift: 6 windows at corner 0, then 6 at corner 15.
	shift := trace.New(g, 1)
	for w := 0; w < 12; w++ {
		win := shift.AddWindow()
		corner := 0
		if w >= 6 {
			corner = 15
		}
		win.AddVolume(corner, 0, 2)
	}
	p := sched.NewProblem(shift, 0)
	hys, err := Scheduler{Policy: Hysteresis}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	stay, err := Scheduler{Policy: StayPut}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.TotalCost(hys) >= p.Model.TotalCost(stay) {
		t.Fatalf("phase shift: hysteresis %d >= stay-put %d",
			p.Model.TotalCost(hys), p.Model.TotalCost(stay))
	}

	// Oscillation: references alternate corners every window with tiny
	// volume, so moving every window is wasteful.
	osc := trace.New(g, 1)
	for w := 0; w < 12; w++ {
		win := osc.AddWindow()
		corner := 0
		if w%2 == 1 {
			corner = 15
		}
		win.Add(corner, 0)
	}
	p2 := sched.NewProblem(osc, 0)
	hys2, err := Scheduler{Policy: Hysteresis}.Schedule(p2)
	if err != nil {
		t.Fatal(err)
	}
	chase2, err := Scheduler{Policy: Chase}.Schedule(p2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Model.TotalCost(hys2) > p2.Model.TotalCost(chase2) {
		t.Fatalf("oscillation: hysteresis %d > chase %d",
			p2.Model.TotalCost(hys2), p2.Model.TotalCost(chase2))
	}
}

func TestCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, true)
		for _, policy := range []Policy{StayPut, Chase, Hysteresis} {
			s, err := Scheduler{Policy: policy}.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(p.Model.Grid, p.Model.NumData, p.Model.NumWindows()); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < p.Model.NumWindows(); w++ {
				used := make([]int, p.Model.Grid.NumProcs())
				for d := 0; d < p.Model.NumData; d++ {
					used[s.Centers[w][d]]++
				}
				for proc, n := range used {
					if n > p.Capacity {
						t.Fatalf("iter %d %v w%d: proc %d holds %d > %d",
							iter, policy, w, proc, n, p.Capacity)
					}
				}
			}
		}
	}
}

func TestInfeasibleRejected(t *testing.T) {
	tr := trace.New(grid.Square(2), 10)
	tr.AddWindow().Add(0, 0)
	p := sched.NewProblem(tr, 2)
	if _, err := (Scheduler{Policy: Chase}).Schedule(p); err == nil {
		t.Fatal("infeasible capacity accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := trace.New(grid.Square(2), 2)
	p := sched.NewProblem(tr, 0)
	s, err := Scheduler{Policy: Hysteresis}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWindows() != 0 {
		t.Fatal("windows scheduled for empty trace")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	p := randomProblem(rng, true)
	for _, policy := range []Policy{StayPut, Chase, Hysteresis} {
		a, err := Scheduler{Policy: policy}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Scheduler{Policy: policy}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		for w := range a.Centers {
			for d := range a.Centers[w] {
				if a.Centers[w][d] != b.Centers[w][d] {
					t.Fatalf("%v nondeterministic at (%d,%d)", policy, w, d)
				}
			}
		}
	}
}

// TestHysteresisRegretSurvivesDeniedMove pins the capacity-denial
// accounting bug: the hysteresis account must reset only when the
// placement actually changes, not when the policy merely *decides* to
// move. On this instance (3x1 array, capacity 1, factor 2) item 1's
// move from processor 0 to processor 1 is denied in window 2 because
// item 0 still holds the only slot there; the accumulated regret has
// to survive that denial so the move happens in window 3, as soon as
// item 0 vacates to processor 2. Pre-fix, decide zeroed the account at
// decision time, the denied move restarted the rent-or-buy clock, and
// item 1 stayed stranded on processor 0.
func TestHysteresisRegretSurvivesDeniedMove(t *testing.T) {
	g := grid.New(3, 1)
	tr := trace.New(g, 2)
	w0 := tr.AddWindow() // item 0 anchors on proc 1, item 1 on proc 0
	w0.AddVolume(1, 0, 10)
	w0.AddVolume(0, 1, 2)
	for w := 1; w < 3; w++ { // item 1 regrets +1 per window, threshold 2
		win := tr.AddWindow()
		win.AddVolume(1, 0, 10)
		win.AddVolume(1, 1, 1)
	}
	w3 := tr.AddWindow() // item 0 is pulled away to proc 2, freeing proc 1
	w3.AddVolume(2, 0, 10)
	w3.AddVolume(1, 1, 1)

	p := sched.NewProblem(tr, 1)
	s, err := Scheduler{Policy: Hysteresis, Factor: 2}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	// Window 2: the move is desired (regret 2 >= factor*moveCost 2) but
	// capacity-denied, so item 1 is forced back to processor 0. This
	// guards the premise of the regression.
	if got := s.Centers[2][1]; got != 0 {
		t.Fatalf("window 2: item 1 on processor %d, want capacity-denied stay on 0", got)
	}
	if got := s.Centers[3][0]; got != 2 {
		t.Fatalf("window 3: item 0 on processor %d, want 2 (vacating the contested slot)", got)
	}
	// Window 3: processor 1 is free and the surviving account (now 3)
	// is past the threshold, so the move must finally happen.
	if got := s.Centers[3][1]; got != 1 {
		t.Fatalf("window 3: item 1 on processor %d, want 1 (denied move must retry once a slot frees)", got)
	}
}

// TestUnreferencedItemsSpreadCyclically pins the initial-placement
// hotspot: items the first window never references have an all-zero
// residence row, and the argmin used to park every one of them on
// processor 0. They must spread cyclically instead.
func TestUnreferencedItemsSpreadCyclically(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 8)
	tr.AddWindow() // no references at all
	p := sched.NewProblem(tr, 0)
	for _, policy := range []Policy{StayPut, Chase, Hysteresis} {
		s, err := Scheduler{Policy: policy}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		used := make([]int, g.NumProcs())
		for d := 0; d < 8; d++ {
			used[s.Centers[0][d]]++
		}
		for proc, n := range used {
			if n != 2 {
				t.Fatalf("%v: processor %d holds %d of 8 unreferenced items, want an even 2 (placements %v)",
					policy, proc, n, s.Centers[0])
			}
		}
	}
}

// TestLateReferencedNoDegradation: on a workload whose items are only
// referenced after an idle first window — each by the processor whose
// cyclic slot the item already occupies — StayPut and Chase must both
// achieve zero cost. Pre-fix, the all-on-processor-0 initial parking
// made StayPut pay remote references forever and Chase pay a migration
// per item.
func TestLateReferencedNoDegradation(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 4)
	tr.AddWindow() // idle window: nothing referenced yet
	w1 := tr.AddWindow()
	for d := 0; d < 4; d++ {
		w1.AddVolume(d, trace.DataID(d), 5)
	}
	p := sched.NewProblem(tr, 0)
	for _, policy := range []Policy{StayPut, Chase} {
		s, err := Scheduler{Policy: policy}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Model.TotalCost(s); got != 0 {
			t.Fatalf("%v: total cost %d on the aligned late-reference workload, want 0", policy, got)
		}
	}
}

func BenchmarkHysteresis(b *testing.B) {
	rng := rand.New(rand.NewSource(65))
	g := grid.Square(4)
	tr := trace.New(g, 256)
	for w := 0; w < 32; w++ {
		win := tr.AddWindow()
		for r := 0; r < 512; r++ {
			win.Add(rng.Intn(16), trace.DataID(rng.Intn(256)))
		}
	}
	p := sched.NewProblem(tr, placement.PaperCapacity(256, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Scheduler{Policy: Hysteresis}).Schedule(p); err != nil {
			b.Fatal(err)
		}
	}
}
