// Package online provides run-time (online) data-scheduling policies
// for PIM arrays: schedulers that decide each execution window's
// placement knowing only the windows seen so far, the way a runtime
// system must when the full reference string is not available at
// compile time.
//
// The decision model gives the scheduler one window of lookahead: when
// execution window w is about to start, its reference counts are known
// (windows are dispatched as compiled units), but nothing is known
// about later windows. The offline algorithms of the sched package are
// the clairvoyant upper bound; the experiments measure the competitive
// gap between the two.
//
// Per data item the problem is the classic page-migration game, so the
// policies are its standard strategies:
//
//   - StayPut never moves after the initial placement (online SCDS);
//   - Chase always moves to the current window's local-optimal center
//     (online LOMCDS — fast to react, pays movement on every shift);
//   - Hysteresis moves only after the accumulated extra residence cost
//     of staying has reached Factor times the movement cost, the
//     rent-or-buy rule that bounds the worst case of both extremes.
package online

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Policy selects the online decision rule.
type Policy int

const (
	// StayPut keeps the initial placement forever.
	StayPut Policy = iota
	// Chase moves to every window's local-optimal center.
	Chase
	// Hysteresis moves once the regret of staying exceeds Factor times
	// the movement cost.
	Hysteresis
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case StayPut:
		return "stay-put"
	case Chase:
		return "chase"
	case Hysteresis:
		return "hysteresis"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Scheduler is an online data scheduler. It satisfies sched.Scheduler
// so the experiment harness can compare it directly with the offline
// algorithms; Schedule only ever reads the residence-table row of the
// window it is currently deciding.
type Scheduler struct {
	Policy Policy
	// Factor tunes Hysteresis: a move happens when the accumulated
	// extra residence cost reaches Factor x (item size x distance).
	// 0 means 1.
	Factor float64
}

// Name implements sched.Scheduler.
func (s Scheduler) Name() string {
	if s.Policy == Hysteresis && s.Factor != 0 && s.Factor != 1 {
		return fmt.Sprintf("online-%v(%g)", s.Policy, s.Factor)
	}
	return "online-" + s.Policy.String()
}

// Schedule implements sched.Scheduler.
func (s Scheduler) Schedule(p *sched.Problem) (cost.Schedule, error) {
	if p.Capacity > 0 && p.Capacity*p.Model.Grid.NumProcs() < p.Model.NumData {
		return cost.Schedule{}, fmt.Errorf("online: %d data items exceed total memory %d x %d",
			p.Model.NumData, p.Model.Grid.NumProcs(), p.Capacity)
	}
	factor := s.Factor
	if factor == 0 {
		factor = 1
	}
	nd, np, nw := p.Model.NumData, p.Model.Grid.NumProcs(), p.Model.NumWindows()
	centers := make([][]int, nw)

	cur := make([]int, nd) // current center per item, -1 before placement
	for d := range cur {
		cur[d] = -1
	}
	regret := make([]int64, nd)
	counts := p.Model.Counts()

	for w := 0; w < nw; w++ {
		tracker := placement.NewTracker(np, p.Capacity)
		row := make([]int, nd)
		for d := 0; d < nd; d++ {
			desired := s.decide(p, counts, w, d, cur[d], factor, regret)
			row[d] = nearestFree(p, tracker, desired)
			// The hysteresis account tracks the regret of staying at the
			// current center, so it resets exactly when the placement
			// actually changes — whether the move was the policy's own or
			// a capacity-forced one. A desired move that capacity denies
			// (the item is pushed back to cur) keeps its accumulated
			// regret, so the policy retries once a slot frees up.
			if cur[d] >= 0 && row[d] != cur[d] {
				regret[d] = 0
			}
			cur[d] = row[d]
		}
		centers[w] = row
	}
	return cost.Schedule{Centers: centers}, nil
}

// decide returns the policy's desired center for item d in window w,
// updating the hysteresis regret account.
func (s Scheduler) decide(p *sched.Problem, counts trace.Counts, w, d, cur int, factor float64, regret []int64) int {
	// Local-optimal center of this window (lowest index on ties).
	tr := p.Table.Row(w, d)
	best, bestCost := 0, tr[0]
	for c := 1; c < p.Model.Grid.NumProcs(); c++ {
		if tr[c] < bestCost {
			best, bestCost = c, tr[c]
		}
	}
	referenced := counts.Referenced(w, trace.DataID(d))
	if cur < 0 {
		// Initial placement: every policy starts at the first window's
		// local center. An item the first window never references has an
		// all-zero residence row — the argmin would park every such item
		// on processor 0, hot-spotting its memory and evicting referenced
		// items from their desired centers under capacity — so those are
		// spread cyclically instead.
		if !referenced {
			return d % p.Model.Grid.NumProcs()
		}
		return best
	}
	if !referenced {
		return cur
	}
	switch s.Policy {
	case StayPut:
		return cur
	case Chase:
		return best
	case Hysteresis:
		regret[d] += tr[cur] - bestCost
		moveCost := int64(p.Model.DataSize[d]) * int64(p.Model.Dist(cur, best))
		if float64(regret[d]) >= factor*float64(moveCost) && best != cur {
			// Only *desire* the move here; the account is reset by
			// Schedule once the placement is final, because a
			// capacity-denied move must keep its accumulated regret.
			return best
		}
		return cur
	}
	panic(fmt.Sprintf("online: unknown policy %v", s.Policy))
}

// nearestFree reserves the free processor closest to desired (ties by
// index). Feasibility is checked by Schedule, so a slot always exists.
func nearestFree(p *sched.Problem, tracker *placement.Tracker, desired int) int {
	if tracker.TryPlace(desired) {
		return desired
	}
	best, bestDist := -1, grid.Unreachable
	for c := 0; c < p.Model.Grid.NumProcs(); c++ {
		if tracker.Capacity() > 0 && tracker.Used(c) >= tracker.Capacity() {
			continue
		}
		if d := p.Model.Dist(desired, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	if best < 0 {
		panic("online: no free processor on a feasible instance")
	}
	if !tracker.TryPlace(best) {
		panic("online: reservation failed on a free processor")
	}
	return best
}

// verify interface conformance.
var _ sched.Scheduler = Scheduler{}
