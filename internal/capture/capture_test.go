package capture

import (
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/trace"
)

func TestBasicCapture(t *testing.T) {
	r := NewRecorder(grid.Square(2), 4)
	r.Touch(0, 1)
	r.TouchVolume(3, 2, 5)
	if r.Pending() != 2 {
		t.Fatalf("Pending = %d", r.Pending())
	}
	r.Barrier()
	r.Touch(1, 0)
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 2 {
		t.Fatalf("windows = %d", tr.NumWindows())
	}
	if tr.NumRefs() != 3 {
		t.Fatalf("refs = %d", tr.NumRefs())
	}
	// Window 0 events in processor order.
	if tr.Windows[0].Refs[0].Proc != 0 || tr.Windows[0].Refs[1].Proc != 3 {
		t.Fatalf("window 0 order: %v", tr.Windows[0].Refs)
	}
	if tr.Windows[0].Refs[1].Volume != 5 {
		t.Fatalf("volume lost: %v", tr.Windows[0].Refs[1])
	}
}

func TestEmptyWindowKept(t *testing.T) {
	r := NewRecorder(grid.Square(2), 1)
	r.Barrier() // empty window
	r.Touch(0, 0)
	tr := r.Finish()
	if tr.NumWindows() != 2 {
		t.Fatalf("windows = %d, want 2 (empty + final)", tr.NumWindows())
	}
	if len(tr.Windows[0].Refs) != 0 {
		t.Fatal("first window should be empty")
	}
}

func TestFinishWithoutPending(t *testing.T) {
	r := NewRecorder(grid.Square(2), 1)
	r.Touch(0, 0)
	r.Barrier()
	tr := r.Finish()
	if tr.NumWindows() != 1 {
		t.Fatalf("windows = %d, want 1 (no extra empty window)", tr.NumWindows())
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	r := NewRecorder(grid.Square(2), 2)
	cases := []func(){
		func() { r.Touch(9, 0) },
		func() { r.Touch(-1, 0) },
		func() { r.Touch(0, 5) },
		func() { r.TouchVolume(0, 0, 0) },
		func() { NewRecorder(grid.Square(2), -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// SPMD-style capture: one goroutine per processor records between
// barriers, like an instrumented BSP program.
func TestConcurrentPerProcessorRecording(t *testing.T) {
	g := grid.Square(4)
	r := NewRecorder(g, 64)
	for step := 0; step < 3; step++ {
		var wg sync.WaitGroup
		for p := 0; p < g.NumProcs(); p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					r.Touch(p, trace.DataID((p*10+i+step)%64))
				}
			}(p)
		}
		wg.Wait()
		r.Barrier()
	}
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 3 || tr.NumRefs() != 3*16*10 {
		t.Fatalf("windows=%d refs=%d", tr.NumWindows(), tr.NumRefs())
	}
	// Determinism of the merged order: events grouped by processor.
	lastProc := -1
	for _, ref := range tr.Windows[0].Refs {
		if ref.Proc < lastProc {
			t.Fatalf("window events not in processor order: %d after %d", ref.Proc, lastProc)
		}
		lastProc = ref.Proc
	}
}

// TestConcurrentRecordingEqualsSerial drives one goroutine per
// processor through several barriers — the natural instrumentation of
// an SPMD program — and requires the result to be byte-identical to the
// same event sequence recorded serially. Under -race this doubles as
// the recorder's concurrency referee: any unsynchronized access to the
// per-processor buffers or the window list trips the detector.
func TestConcurrentRecordingEqualsSerial(t *testing.T) {
	g := grid.New(4, 3)
	const numData, steps, refsPerStep = 48, 5, 20

	// events(p, step) is a deterministic per-processor program, so the
	// serial and concurrent recordings see exactly the same input.
	events := func(p, step int) []trace.Ref {
		refs := make([]trace.Ref, 0, refsPerStep)
		for i := 0; i < refsPerStep; i++ {
			refs = append(refs, trace.Ref{
				Proc:   p,
				Data:   trace.DataID((p*31 + step*17 + i*7) % numData),
				Volume: 1 + (p+step+i)%3,
			})
		}
		return refs
	}

	conc := NewRecorder(g, numData)
	for step := 0; step < steps; step++ {
		var wg sync.WaitGroup
		for p := 0; p < g.NumProcs(); p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for _, ref := range events(p, step) {
					conc.TouchVolume(ref.Proc, ref.Data, ref.Volume)
				}
			}(p)
		}
		wg.Wait()
		conc.Barrier()
	}

	serial := NewRecorder(g, numData)
	for step := 0; step < steps; step++ {
		for p := 0; p < g.NumProcs(); p++ {
			for _, ref := range events(p, step) {
				serial.TouchVolume(ref.Proc, ref.Data, ref.Volume)
			}
		}
		serial.Barrier()
	}

	got, want := conc.Finish(), serial.Finish()
	if got.NumWindows() != want.NumWindows() || got.NumRefs() != want.NumRefs() {
		t.Fatalf("shape mismatch: %d/%d windows, %d/%d refs",
			got.NumWindows(), want.NumWindows(), got.NumRefs(), want.NumRefs())
	}
	for w := range want.Windows {
		for i, ref := range want.Windows[w].Refs {
			if got.Windows[w].Refs[i] != ref {
				t.Fatalf("window %d ref %d: concurrent %v != serial %v", w, i, got.Windows[w].Refs[i], ref)
			}
		}
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("concurrent and serial recordings have different fingerprints")
	}
}

func TestNumWindows(t *testing.T) {
	r := NewRecorder(grid.Square(2), 1)
	if r.NumWindows() != 0 {
		t.Fatal("fresh recorder has windows")
	}
	r.Barrier()
	r.Barrier()
	if r.NumWindows() != 2 {
		t.Fatalf("NumWindows = %d", r.NumWindows())
	}
}
