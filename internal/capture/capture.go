// Package capture records data reference strings from a running
// application and turns them into scheduling traces. It is the
// instrumentation front end a downstream user wires into an application
// (or an application simulator) instead of writing trace files by hand:
// every processor reports the data items it touches, and a barrier
// closes the current execution window, mirroring the BSP-style
// supersteps the paper's execution windows represent.
package capture

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/trace"
)

// Recorder accumulates reference events per processor. Distinct
// processors may record concurrently (one goroutine per processor, the
// natural instrumentation of an SPMD program); events for the same
// processor must be recorded serially, and Barrier/Finish require all
// recording to be quiescent, exactly like the barrier of the program
// being traced.
type Recorder struct {
	g       grid.Grid
	numData int

	// perProc[p] holds processor p's events of the current window.
	// Each slice is touched only by its processor between barriers, so
	// recording needs no locking; the mutex only guards window turnover.
	mu      sync.Mutex
	perProc [][]trace.Ref
	windows []trace.Window
}

// NewRecorder returns a recorder for the given array and data space.
func NewRecorder(g grid.Grid, numData int) *Recorder {
	if numData < 0 {
		panic(fmt.Sprintf("capture: negative data count %d", numData))
	}
	return &Recorder{
		g:       g,
		numData: numData,
		perProc: make([][]trace.Ref, g.NumProcs()),
	}
}

// Touch records a unit-volume reference by processor proc to item d.
func (r *Recorder) Touch(proc int, d trace.DataID) {
	r.TouchVolume(proc, d, 1)
}

// TouchVolume records a reference with an explicit volume. It panics on
// out-of-range arguments: instrumentation bugs should fail loudly at
// the recording site, not surface later as an invalid trace.
func (r *Recorder) TouchVolume(proc int, d trace.DataID, volume int) {
	if proc < 0 || proc >= r.g.NumProcs() {
		panic(fmt.Sprintf("capture: processor %d outside %v array", proc, r.g))
	}
	if d < 0 || int(d) >= r.numData {
		panic(fmt.Sprintf("capture: data %d outside [0,%d)", d, r.numData))
	}
	if volume <= 0 {
		panic(fmt.Sprintf("capture: non-positive volume %d", volume))
	}
	r.perProc[proc] = append(r.perProc[proc], trace.Ref{Proc: proc, Data: d, Volume: volume})
}

// Barrier closes the current execution window: all events recorded
// since the previous barrier form one window, in processor order (the
// deterministic interleaving; within a processor, program order). An
// empty window is kept — a parallel step with no references is still a
// scheduling point.
func (r *Recorder) Barrier() {
	r.mu.Lock()
	defer r.mu.Unlock()
	var w trace.Window
	for p := range r.perProc {
		w.Refs = append(w.Refs, r.perProc[p]...)
		r.perProc[p] = r.perProc[p][:0]
	}
	r.windows = append(r.windows, w)
}

// Pending returns the number of events recorded since the last barrier.
func (r *Recorder) Pending() int {
	n := 0
	for p := range r.perProc {
		n += len(r.perProc[p])
	}
	return n
}

// NumWindows returns the number of closed windows.
func (r *Recorder) NumWindows() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.windows)
}

// Finish closes a final window if events are pending and returns the
// captured trace. The recorder can keep recording afterwards; Finish
// snapshots the windows so far.
func (r *Recorder) Finish() *trace.Trace {
	if r.Pending() > 0 {
		r.Barrier()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := trace.New(r.g, r.numData)
	for i := range r.windows {
		w := t.AddWindow()
		w.Refs = append(w.Refs, r.windows[i].Refs...)
	}
	return t
}
