// Package parallel provides small worker-pool helpers used by the
// schedulers and the cost model to spread independent per-data-item
// work across CPU cores. The data-scheduling problem decomposes
// perfectly by data item (the paper schedules every item
// independently), so a static block partition of the index space is
// both simple and balanced.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach invokes fn(i) for every i in [0, n), distributing iterations
// over up to GOMAXPROCS goroutines. fn must be safe for concurrent
// invocation on distinct indices. ForEach returns after every call has
// completed. It runs inline when n is small to avoid goroutine
// overhead on tiny problems.
func ForEach(n int, fn func(i int)) {
	ForEachN(n, runtime.GOMAXPROCS(0), fn)
}

// ForEachN is ForEach with an explicit worker count, primarily for
// tests and scaling benchmarks. workers < 1 is treated as 1.
func ForEachN(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// Static block partition: worker w handles [lo, hi).
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MapReduce applies fn(i) for every i in [0, n) in parallel and
// combines the results with merge, always in ascending index order:
// each worker folds its contiguous block serially, and the per-worker
// accumulators are then folded in block order. merge therefore needs no
// synchronization and no commutativity — it must be associative with
// zero as its left identity, and must not mutate its arguments (every
// worker starts its fold from the same zero) — and the result is
// deterministic. Only O(workers) intermediate storage is allocated,
// not O(n).
func MapReduce[T any](n int, fn func(i int) T, zero T, merge func(a, b T) T) T {
	return MapReduceN(n, runtime.GOMAXPROCS(0), fn, zero, merge)
}

// MapReduceN is MapReduce with an explicit worker count, primarily for
// tests and scaling benchmarks. workers < 1 is treated as 1.
func MapReduceN[T any](n, workers int, fn func(i int) T, zero T, merge func(a, b T) T) T {
	if n <= 0 {
		return zero
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		acc := zero
		for i := 0; i < n; i++ {
			acc = merge(acc, fn(i))
		}
		return acc
	}
	partial := make([]T, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// Static block partition: worker w folds [lo, hi) into its own
		// accumulator, preserving index order within the block.
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := zero
			for i := lo; i < hi; i++ {
				acc = merge(acc, fn(i))
			}
			partial[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	acc := zero
	for _, p := range partial {
		acc = merge(acc, p)
	}
	return acc
}

// SumInt64 runs fn(i) for i in [0, n) in parallel and returns the sum
// of the results. It is the common reduction in cost evaluation.
func SumInt64(n int, fn func(i int) int64) int64 {
	return MapReduce(n, fn, 0, func(a, b int64) int64 { return a + b })
}
