package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForEachNWorkerCounts(t *testing.T) {
	for _, workers := range []int{-3, 0, 1, 2, 7, 64} {
		const n = 57
		var count int64
		ForEachN(n, workers, func(i int) { atomic.AddInt64(&count, 1) })
		if count != n {
			t.Fatalf("workers=%d: %d calls, want %d", workers, count, n)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, func(int) { called = true })
	ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestSumInt64(t *testing.T) {
	got := SumInt64(100, func(i int) int64 { return int64(i) })
	if got != 4950 {
		t.Fatalf("SumInt64 = %d, want 4950", got)
	}
	if got := SumInt64(0, func(i int) int64 { return 1 }); got != 0 {
		t.Fatalf("empty SumInt64 = %d", got)
	}
}

// Property: parallel sum equals serial sum for arbitrary inputs.
func TestSumMatchesSerial(t *testing.T) {
	f := func(vals []int32) bool {
		want := int64(0)
		for _, v := range vals {
			want += int64(v)
		}
		got := SumInt64(len(vals), func(i int) int64 { return int64(vals[i]) })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapReduceMax(t *testing.T) {
	vals := []int{3, 9, 2, 9, 1}
	got := MapReduce(len(vals), func(i int) int { return vals[i] }, -1,
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
	if got != 9 {
		t.Fatalf("max = %d", got)
	}
}

func BenchmarkForEach(b *testing.B) {
	work := func(i int) {
		s := 0
		for j := 0; j < 1000; j++ {
			s += i * j
		}
		_ = s
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForEachN(256, 1, work)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForEach(256, work)
		}
	})
}
