package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForEachNWorkerCounts(t *testing.T) {
	for _, workers := range []int{-3, 0, 1, 2, 7, 64} {
		const n = 57
		var count int64
		ForEachN(n, workers, func(i int) { atomic.AddInt64(&count, 1) })
		if count != n {
			t.Fatalf("workers=%d: %d calls, want %d", workers, count, n)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, func(int) { called = true })
	ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestSumInt64(t *testing.T) {
	got := SumInt64(100, func(i int) int64 { return int64(i) })
	if got != 4950 {
		t.Fatalf("SumInt64 = %d, want 4950", got)
	}
	if got := SumInt64(0, func(i int) int64 { return 1 }); got != 0 {
		t.Fatalf("empty SumInt64 = %d", got)
	}
}

// Property: parallel sum equals serial sum for arbitrary inputs.
func TestSumMatchesSerial(t *testing.T) {
	f := func(vals []int32) bool {
		want := int64(0)
		for _, v := range vals {
			want += int64(v)
		}
		got := SumInt64(len(vals), func(i int) int64 { return int64(vals[i]) })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapReduceMax(t *testing.T) {
	vals := []int{3, 9, 2, 9, 1}
	got := MapReduce(len(vals), func(i int) int { return vals[i] }, -1,
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
	if got != 9 {
		t.Fatalf("max = %d", got)
	}
}

// MapReduce documents a deterministic index-order merge, so a
// non-commutative (but associative) merge — string concatenation —
// must reproduce the serial left fold exactly for every worker count.
func TestMapReduceIndexOrder(t *testing.T) {
	concat := func(a, b string) string { return a + b }
	for _, n := range []int{0, 1, 2, 7, 57, 256} {
		want := ""
		for i := 0; i < n; i++ {
			want += string(rune('a' + i%26))
		}
		for _, workers := range []int{-1, 0, 1, 2, 3, 8, 64} {
			got := MapReduceN(n, workers, func(i int) string { return string(rune('a' + i%26)) }, "", concat)
			if got != want {
				t.Fatalf("n=%d workers=%d: %q, want serial fold %q", n, workers, got, want)
			}
		}
		if got := MapReduce(n, func(i int) string { return string(rune('a' + i%26)) }, "", concat); got != want {
			t.Fatalf("n=%d: MapReduce %q, want %q", n, got, want)
		}
	}
}

// The reduction must keep one accumulator per worker, not one slot per
// index: a million-element sum may not allocate anywhere near the 8 MiB
// an O(n) intermediate-results slice would cost. (Fails against the
// old implementation, which materialized every fn(i) before merging.)
func TestMapReduceAllocatesPerWorkerNotPerItem(t *testing.T) {
	const n = 1 << 20
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if got := SumInt64(n, func(i int) int64 { return int64(i) }); got != int64(n)*(n-1)/2 {
		t.Fatalf("sum = %d", got)
	}
	runtime.ReadMemStats(&after)
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > n*4 {
		t.Fatalf("MapReduce allocated %d bytes on %d items — O(n) intermediate storage is back", alloc, n)
	}
}

// The rewritten reduction keeps only one accumulator per worker; the
// benchmark's allocs/op makes a regression back to O(n) storage visible.
func BenchmarkMapReduceSum(b *testing.B) {
	const n = 1 << 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := SumInt64(n, func(i int) int64 { return int64(i) }); got != int64(n)*(n-1)/2 {
			b.Fatalf("sum = %d", got)
		}
	}
}

func BenchmarkForEach(b *testing.B) {
	work := func(i int) {
		s := 0
		for j := 0; j < 1000; j++ {
			s += i * j
		}
		_ = s
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForEachN(256, 1, work)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForEach(256, work)
		}
	})
}
