package mcmf

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimpleFlow(t *testing.T) {
	// src -> a -> dst and src -> b -> dst; capacities 1 each.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 1)
	g.AddEdge(0, 2, 1, 5)
	g.AddEdge(2, 3, 1, 5)
	flow, cost := g.MinCostFlow(0, 3, math.MaxInt64)
	if flow != 2 || cost != 12 {
		t.Fatalf("flow=%d cost=%d, want 2/12", flow, cost)
	}
}

func TestPrefersCheapPath(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 1)
	g.AddEdge(0, 2, 2, 5)
	g.AddEdge(2, 3, 2, 5)
	flow, cost := g.MinCostFlow(0, 3, 1)
	if flow != 1 || cost != 2 {
		t.Fatalf("flow=%d cost=%d, want 1/2 (cheap path only)", flow, cost)
	}
}

func TestFlowLimit(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 10, 3)
	flow, cost := g.MinCostFlow(0, 1, 4)
	if flow != 4 || cost != 12 {
		t.Fatalf("flow=%d cost=%d", flow, cost)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1, 1)
	flow, cost := g.MinCostFlow(0, 2, math.MaxInt64)
	if flow != 0 || cost != 0 {
		t.Fatalf("flow=%d cost=%d, want 0/0", flow, cost)
	}
}

func TestEdgeFlowReadback(t *testing.T) {
	g := NewGraph(3)
	a := g.AddEdge(0, 1, 2, 1)
	b := g.AddEdge(1, 2, 1, 1)
	g.MinCostFlow(0, 2, math.MaxInt64)
	if g.Flow(a) != 1 || g.Flow(b) != 1 {
		t.Fatalf("edge flows %d/%d, want 1/1", g.Flow(a), g.Flow(b))
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewGraph(0) },
		func() { NewGraph(2).AddEdge(0, 5, 1, 1) },
		func() { NewGraph(2).AddEdge(0, 1, -1, 1) },
		func() { NewGraph(2).AddEdge(0, 1, 1, -1) },
		func() { NewGraph(2).MinCostFlow(0, 9, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAssignEmpty(t *testing.T) {
	a, c, err := Assign(0, 4, 1, nil)
	if err != nil || a != nil || c != 0 {
		t.Fatalf("empty assign: %v %v %v", a, c, err)
	}
}

func TestAssignInfeasible(t *testing.T) {
	if _, _, err := Assign(5, 2, 2, func(i, b int) int64 { return 0 }); err == nil {
		t.Fatal("infeasible assignment accepted")
	}
	if _, _, err := Assign(1, 0, 1, func(i, b int) int64 { return 0 }); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestAssignHandExample(t *testing.T) {
	// Two items, two bins of capacity 1. Both prefer bin 0; the exact
	// solver must split them to minimize the sum.
	costs := [][]int64{{0, 10}, {1, 3}}
	assign, total, err := Assign(2, 2, 1, func(i, b int) int64 { return costs[i][b] })
	if err != nil {
		t.Fatal(err)
	}
	// Options: item0->0,item1->1 = 3; item0->1,item1->0 = 11.
	if total != 3 || assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("assign=%v total=%d", assign, total)
	}
}

func TestAssignGreedyIsWorse(t *testing.T) {
	// The greedy processor-list order (item 0 first) takes bin 0 for
	// item 0 and forces item 1 to a terrible bin; the exact solver
	// avoids that.
	costs := [][]int64{{0, 1}, {0, 100}}
	assign, total, err := Assign(2, 2, 1, func(i, b int) int64 { return costs[i][b] })
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Fatalf("total=%d assign=%v, want 1 (item0->1, item1->0)", total, assign)
	}
}

// Property: on random instances the exact assignment is never worse
// than the greedy first-fit-by-cost discipline, and matches brute force
// on tiny instances.
func TestAssignOptimalVsBruteAndGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 60; iter++ {
		nItems := 1 + rng.Intn(5)
		nBins := 1 + rng.Intn(4)
		capacity := int64(1 + rng.Intn(3))
		if capacity*int64(nBins) < int64(nItems) {
			capacity = int64(nItems) // keep feasible
		}
		costs := make([][]int64, nItems)
		for i := range costs {
			costs[i] = make([]int64, nBins)
			for b := range costs[i] {
				costs[i][b] = int64(rng.Intn(50))
			}
		}
		costFn := func(i, b int) int64 { return costs[i][b] }

		_, got, err := Assign(nItems, nBins, capacity, costFn)
		if err != nil {
			t.Fatal(err)
		}

		// Brute force over all bin sequences respecting capacity.
		best := int64(math.MaxInt64)
		used := make([]int64, nBins)
		var rec func(i int, sofar int64)
		rec = func(i int, sofar int64) {
			if sofar >= best {
				return
			}
			if i == nItems {
				best = sofar
				return
			}
			for b := 0; b < nBins; b++ {
				if used[b] < capacity {
					used[b]++
					rec(i+1, sofar+costs[i][b])
					used[b]--
				}
			}
		}
		rec(0, 0)
		if got != best {
			t.Fatalf("iter %d: exact %d != brute %d", iter, got, best)
		}

		// Greedy first-fit in item order.
		greedy := int64(0)
		for b := range used {
			used[b] = 0
		}
		for i := 0; i < nItems; i++ {
			bestBin, bestCost := -1, int64(math.MaxInt64)
			for b := 0; b < nBins; b++ {
				if used[b] < capacity && costs[i][b] < bestCost {
					bestBin, bestCost = b, costs[i][b]
				}
			}
			used[bestBin]++
			greedy += bestCost
		}
		if got > greedy {
			t.Fatalf("iter %d: exact %d > greedy %d", iter, got, greedy)
		}
	}
}

func BenchmarkAssign256x16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	costs := make([][]int64, 256)
	for i := range costs {
		costs[i] = make([]int64, 16)
		for j := range costs[i] {
			costs[i][j] = int64(rng.Intn(100))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Assign(256, 16, 32, func(i, j int) int64 { return costs[i][j] }); err != nil {
			b.Fatal(err)
		}
	}
}

// Regression test for the int64 overflow guard. Before MaxCost, AddEdge
// accepted arbitrary int64 costs; the solver's Dijkstra then computed
// dist + cost sums that blew past its internal infinity (and, with
// accumulated Johnson potentials, past MaxInt64), so edges carrying
// overflow-scale costs were silently unroutable and potentials could
// corrupt. The adversarial instance below is a single feasible edge
// whose cost exceeds the solver's infinity: pre-fix it is accepted and
// then strands the flow at 0.
func TestOverflowScaleCostGuard(t *testing.T) {
	g := NewGraph(2)
	rejected := func() (r bool) {
		defer func() { r = recover() != nil }()
		g.AddEdge(0, 1, 1, math.MaxInt64/2)
		return
	}()
	if !rejected {
		// Pre-fix behavior: the edge was accepted, so it must at least
		// be routable — it is the only path and it has capacity.
		flow, _ := g.MinCostFlow(0, 1, 1)
		if flow != 1 {
			t.Fatalf("AddEdge accepted cost %d but MinCostFlow stranded the flow (flow=%d, want 1): cost overflow corrupts shortest-path distances", int64(math.MaxInt64/2), flow)
		}
		t.Fatal("AddEdge accepted an overflow-scale cost; it must reject costs above MaxCost")
	}
}

// Costs at the documented bound must route exactly: a two-edge chain of
// MaxCost edges yields flow 1 at cost 2*MaxCost, and repeated
// augmentations over a ladder of near-bound parallel paths keep exact
// totals (the saturating adds only clamp genuinely unreachable sums).
func TestMaxCostEdgesRouteExactly(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1, MaxCost)
	g.AddEdge(1, 2, 1, MaxCost)
	flow, cost := g.MinCostFlow(0, 2, 1)
	if flow != 1 || cost != 2*MaxCost {
		t.Fatalf("flow=%d cost=%d, want 1 and %d", flow, cost, int64(2*MaxCost))
	}

	// Ladder: k parallel src->mid_i->dst paths with ascending near-bound
	// costs; max flow must use all of them at the exact total.
	const k = 5
	g = NewGraph(2 + k)
	var want int64
	for i := 0; i < k; i++ {
		c := MaxCost - int64(i)
		g.AddEdge(0, 2+i, 1, c)
		g.AddEdge(2+i, 1, 1, c)
		want += 2 * c
	}
	flow, cost = g.MinCostFlow(0, 1, math.MaxInt64)
	if flow != k || cost != want {
		t.Fatalf("ladder: flow=%d cost=%d, want %d and %d", flow, cost, k, want)
	}

	// And through the transportation front end.
	assign, total, err := Assign(2, 2, 1, func(i, b int) int64 {
		if i == b {
			return 0
		}
		return MaxCost
	})
	if err != nil || total != 0 || assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("Assign with MaxCost off-diagonal: assign=%v total=%d err=%v", assign, total, err)
	}
}
