// Package mcmf implements min-cost max-flow by successive shortest
// paths with Johnson potentials (Dijkstra throughout; zero initial
// potentials are valid because edge costs are non-negative), plus a
// transportation-problem front end.
//
// The capacitated data-placement problem of one execution window —
// assign every data item to a processor, at most `capacity` items per
// processor, minimizing total residence cost — is exactly a
// transportation problem. The paper solves it greedily with processor
// lists (Algorithm 1, line 7); this package provides the exact optimum,
// which the experiments use to measure how much the greedy discipline
// gives away under memory pressure.
package mcmf

import (
	"container/heap"
	"fmt"
	"math"
)

type edge struct {
	to   int
	cap  int64
	cost int64
	flow int64
}

// Graph is a flow network on n nodes. Add edges with AddEdge, then call
// MinCostFlow once.
type Graph struct {
	n     int
	edges []edge
	adj   [][]int // adj[v] = indices into edges (even: forward, odd: residual)
}

// MaxCost is the largest per-unit edge cost AddEdge accepts. It leaves
// four decimal orders of magnitude between the costliest legal edge and
// the solver's internal infinity (MaxInt64/4), so path sums and Johnson
// potentials over any graph of fewer than ~2 million nodes stay exact;
// beyond that the saturating adds clamp at infinity (conservatively
// treating the path as unreachable) instead of wrapping around and
// corrupting potentials. Callers with larger native costs (for example
// grid.Unreachable-scale sentinels multiplied by reference volumes)
// must rescale before building the graph.
const MaxCost int64 = 1 << 40

// NewGraph returns an empty flow network with n nodes.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("mcmf: non-positive node count %d", n))
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge with the given capacity and per-unit
// cost, returning its index (usable with Flow after solving). Costs
// must be non-negative (the solver's Dijkstra relies on it once
// potentials are established; negative costs would require the initial
// Bellman-Ford to run on every augmentation) and at most MaxCost —
// larger costs would let dist + cost sums overflow int64 and corrupt
// the potentials, so they are rejected up front.
func (g *Graph) AddEdge(from, to int, capacity, cost int64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mcmf: edge (%d,%d) outside %d-node graph", from, to, g.n))
	}
	if capacity < 0 || cost < 0 {
		panic(fmt.Sprintf("mcmf: negative capacity %d or cost %d", capacity, cost))
	}
	if cost > MaxCost {
		panic(fmt.Sprintf("mcmf: cost %d exceeds MaxCost %d (rescale costs to avoid int64 overflow)", cost, MaxCost))
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: to, cap: capacity, cost: cost})
	g.edges = append(g.edges, edge{to: from, cap: 0, cost: -cost})
	g.adj[from] = append(g.adj[from], id)
	g.adj[to] = append(g.adj[to], id+1)
	return id
}

// Flow returns the flow routed over the edge with the given index after
// MinCostFlow.
func (g *Graph) Flow(edgeID int) int64 { return g.edges[edgeID].flow }

type pqItem struct {
	node int
	dist int64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// satAdd adds two int64 path costs, clamping at the solver's infinity.
// a is a distance in [0, inf]; b may be negative (a reduced-cost
// correction) but never drives a legal sum below zero.
func satAdd(a, b int64) int64 {
	const inf = math.MaxInt64 / 4
	s := a + b
	if s > inf || (b > 0 && s < a) {
		return inf
	}
	return s
}

// MinCostFlow sends up to maxFlow units from src to dst (use
// math.MaxInt64 for max flow) and returns the flow actually sent and
// its total cost.
func (g *Graph) MinCostFlow(src, dst int, maxFlow int64) (flow, cost int64) {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		panic(fmt.Sprintf("mcmf: endpoints (%d,%d) outside %d-node graph", src, dst, g.n))
	}
	const inf = math.MaxInt64 / 4
	// All stored costs are non-negative, so zero potentials are valid.
	pot := make([]int64, g.n)
	dist := make([]int64, g.n)
	prevEdge := make([]int, g.n)

	for flow < maxFlow {
		for i := range dist {
			dist[i] = inf
			prevEdge[i] = -1
		}
		dist[src] = 0
		q := pq{{node: src, dist: 0}}
		for len(q) > 0 {
			it := heap.Pop(&q).(pqItem)
			if it.dist > dist[it.node] {
				continue
			}
			for _, id := range g.adj[it.node] {
				e := g.edges[id]
				if e.cap-e.flow <= 0 {
					continue
				}
				// Reduced-cost relaxation, saturating at inf: with costs
				// bounded by MaxCost the sums are exact for any graph the
				// transportation front end can build; pathological graphs
				// clamp (the node is treated as unreachable) instead of
				// wrapping around and corrupting the potentials.
				nd := satAdd(satAdd(it.dist, e.cost), pot[it.node]-pot[e.to])
				if nd < dist[e.to] {
					dist[e.to] = nd
					prevEdge[e.to] = id
					heap.Push(&q, pqItem{node: e.to, dist: nd})
				}
			}
		}
		if dist[dst] >= inf {
			break // no augmenting path
		}
		for i := range pot {
			if dist[i] < inf {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		for v := dst; v != src; {
			e := g.edges[prevEdge[v]]
			if r := e.cap - e.flow; r < push {
				push = r
			}
			v = g.edges[prevEdge[v]^1].to
		}
		for v := dst; v != src; {
			id := prevEdge[v]
			g.edges[id].flow += push
			g.edges[id^1].flow -= push
			cost += push * g.edges[id].cost
			v = g.edges[id^1].to
		}
		flow += push
	}
	return flow, cost
}

// Assign solves the transportation problem: nItems items, each placed
// on exactly one of nBins bins holding at most capacity items
// (capacity <= 0 means unbounded), minimizing the total of
// cost(item, bin). It returns the assignment and its total cost, or an
// error when the items do not fit.
func Assign(nItems, nBins int, capacity int64, cost func(item, bin int) int64) ([]int, int64, error) {
	if nItems == 0 {
		return nil, 0, nil
	}
	if nBins <= 0 {
		return nil, 0, fmt.Errorf("mcmf: no bins for %d items", nItems)
	}
	if capacity > 0 && capacity*int64(nBins) < int64(nItems) {
		return nil, 0, fmt.Errorf("mcmf: %d items exceed %d bins x %d capacity", nItems, nBins, capacity)
	}
	// Nodes: 0 = source, 1..nItems = items, nItems+1..nItems+nBins =
	// bins, last = sink.
	src := 0
	sink := nItems + nBins + 1
	g := NewGraph(nItems + nBins + 2)
	itemEdges := make([][]int, nItems) // per item, edge IDs toward bins
	for i := 0; i < nItems; i++ {
		g.AddEdge(src, 1+i, 1, 0)
		itemEdges[i] = make([]int, nBins)
		for b := 0; b < nBins; b++ {
			itemEdges[i][b] = g.AddEdge(1+i, 1+nItems+b, 1, cost(i, b))
		}
	}
	binCap := capacity
	if binCap <= 0 {
		binCap = int64(nItems)
	}
	for b := 0; b < nBins; b++ {
		g.AddEdge(1+nItems+b, sink, binCap, 0)
	}
	flow, total := g.MinCostFlow(src, sink, int64(nItems))
	if flow != int64(nItems) {
		return nil, 0, fmt.Errorf("mcmf: placed only %d of %d items", flow, nItems)
	}
	assign := make([]int, nItems)
	for i := 0; i < nItems; i++ {
		assign[i] = -1
		for b := 0; b < nBins; b++ {
			if g.Flow(itemEdges[i][b]) > 0 {
				assign[i] = b
				break
			}
		}
		if assign[i] < 0 {
			return nil, 0, fmt.Errorf("mcmf: item %d left unassigned despite full flow", i)
		}
	}
	return assign, total, nil
}
