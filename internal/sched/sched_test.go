package sched

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/trace"
)

// randomProblem builds a random feasible scheduling instance.
func randomProblem(rng *rand.Rand, capacitated bool) *Problem {
	g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
	nd := 1 + rng.Intn(6)
	tr := trace.New(g, nd)
	for w := 0; w < 1+rng.Intn(4); w++ {
		win := tr.AddWindow()
		for r := 0; r < rng.Intn(15); r++ {
			win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
		}
	}
	capa := 0
	if capacitated {
		capa = placement.PaperCapacity(nd, g.NumProcs())
	}
	return NewProblem(tr, capa)
}

// bruteSingleCenter finds the true optimal single center for item d.
func bruteSingleCenter(p *Problem, d int) int64 {
	np, nw := p.Model.Grid.NumProcs(), p.Model.NumWindows()
	best := int64(1) << 62
	for c := 0; c < np; c++ {
		var total int64
		for w := 0; w < nw; w++ {
			total += p.Table.At(w, d, c)
		}
		if total < best {
			best = total
		}
	}
	if nw == 0 {
		return 0
	}
	return best
}

// bruteBestSequence enumerates every center sequence for item d and
// returns the minimum total (residence + movement) cost. Exponential;
// only for tiny instances.
func bruteBestSequence(p *Problem, d int) int64 {
	np, nw := p.Model.Grid.NumProcs(), p.Model.NumWindows()
	if nw == 0 {
		return 0
	}
	best := int64(1) << 62
	seq := make([]int, nw)
	var rec func(w int, sofar int64)
	rec = func(w int, sofar int64) {
		if sofar >= best {
			return
		}
		if w == nw {
			best = sofar
			return
		}
		for c := 0; c < np; c++ {
			add := p.Table.At(w, d, c)
			if w > 0 {
				add += int64(p.Model.DataSize[d]) * int64(p.Model.Dist(seq[w-1], c))
			}
			seq[w] = c
			rec(w+1, sofar+add)
		}
	}
	rec(0, 0)
	return best
}

func mustSchedule(t *testing.T, s Scheduler, p *Problem) cost.Schedule {
	t.Helper()
	sched, err := s.Schedule(p)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if err := sched.Validate(p.Model.Grid, p.Model.NumData, p.Model.NumWindows()); err != nil {
		t.Fatalf("%s produced invalid schedule: %v", s.Name(), err)
	}
	return sched
}

func TestNames(t *testing.T) {
	if (SCDS{}).Name() != "SCDS" || (LOMCDS{}).Name() != "LOMCDS" || (GOMCDS{}).Name() != "GOMCDS" {
		t.Fatal("scheduler names wrong")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"scds", "SCDS", "LomCds", "gomcds"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded")
	}
}

// SCDS without capacity matches the brute-force optimal single center
// for every item.
func TestSCDSOptimalUncapacitated(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, false)
		s := mustSchedule(t, SCDS{}, p)
		for d := 0; d < p.Model.NumData; d++ {
			var got int64
			for w := 0; w < p.Model.NumWindows(); w++ {
				got += p.Table.At(w, d, s.Centers[w][d])
			}
			if want := bruteSingleCenter(p, d); got != want {
				t.Fatalf("iter %d item %d: SCDS cost %d, optimal %d", iter, d, got, want)
			}
		}
		if p.Model.MoveCost(s) != 0 {
			t.Fatalf("iter %d: SCDS schedule moves data", iter)
		}
	}
}

// LOMCDS without capacity picks the per-window optimal center.
func TestLOMCDSPerWindowOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, false)
		s := mustSchedule(t, LOMCDS{}, p)
		for w := 0; w < p.Model.NumWindows(); w++ {
			for d := 0; d < p.Model.NumData; d++ {
				got := p.Table.At(w, d, s.Centers[w][d])
				for c := 0; c < p.Model.Grid.NumProcs(); c++ {
					if p.Table.At(w, d, c) < got {
						t.Fatalf("iter %d w%d d%d: LOMCDS chose cost %d, center %d costs %d",
							iter, w, d, got, c, p.Table.At(w, d, c))
					}
				}
			}
		}
	}
}

// GOMCDS without capacity matches the exponential brute force per item.
func TestGOMCDSOptimalUncapacitated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 30; iter++ {
		g := grid.New(1+rng.Intn(2), 1+rng.Intn(2)) // <= 4 procs
		nd := 1 + rng.Intn(3)
		tr := trace.New(g, nd)
		for w := 0; w < 1+rng.Intn(3); w++ { // <= 3 windows
			win := tr.AddWindow()
			for r := 0; r < rng.Intn(10); r++ {
				win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
			}
		}
		p := NewProblem(tr, 0)
		s := mustSchedule(t, GOMCDS{}, p)
		for d := 0; d < nd; d++ {
			centers := make([]int, p.Model.NumWindows())
			for w := range centers {
				centers[w] = s.Centers[w][d]
			}
			got := p.Model.DataCost(trace.DataID(d), centers)
			if want := bruteBestSequence(p, d); got != want {
				t.Fatalf("iter %d item %d: GOMCDS cost %d, optimal %d", iter, d, got, want)
			}
		}
	}
}

// Paper ordering (§5): GOMCDS total <= LOMCDS total, and without
// movement SCDS residence is the best single-center residence, when no
// capacity pressure exists.
func TestSchedulerOrderingUncapacitated(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for iter := 0; iter < 60; iter++ {
		p := randomProblem(rng, false)
		scds := mustSchedule(t, SCDS{}, p)
		lo := mustSchedule(t, LOMCDS{}, p)
		go_ := mustSchedule(t, GOMCDS{}, p)
		cScds := p.Model.TotalCost(scds)
		cLo := p.Model.TotalCost(lo)
		cGo := p.Model.TotalCost(go_)
		if cGo > cLo {
			t.Fatalf("iter %d: GOMCDS %d > LOMCDS %d", iter, cGo, cLo)
		}
		if cGo > cScds {
			// A single-center schedule is one feasible path of the cost
			// graph, so the global optimum can never exceed it.
			t.Fatalf("iter %d: GOMCDS %d > SCDS %d", iter, cGo, cScds)
		}
		// LOMCDS residence cost alone is minimal per window; its total
		// may exceed SCDS only via movement.
		if p.Model.ResidenceCost(lo) > p.Model.ResidenceCost(scds) {
			t.Fatalf("iter %d: LOMCDS residence %d > SCDS residence %d",
				iter, p.Model.ResidenceCost(lo), p.Model.ResidenceCost(scds))
		}
	}
}

// All schedulers respect the memory capacity in every window.
func TestCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, true)
		for _, s := range []Scheduler{SCDS{}, LOMCDS{}, GOMCDS{}} {
			sched := mustSchedule(t, s, p)
			for w := 0; w < p.Model.NumWindows(); w++ {
				used := make([]int, p.Model.Grid.NumProcs())
				for d := 0; d < p.Model.NumData; d++ {
					used[sched.Centers[w][d]]++
				}
				for proc, n := range used {
					if n > p.Capacity {
						t.Fatalf("iter %d %s w%d: proc %d holds %d > capacity %d",
							iter, s.Name(), w, proc, n, p.Capacity)
					}
				}
			}
		}
	}
}

func TestInfeasibleCapacityRejected(t *testing.T) {
	tr := trace.New(grid.Square(2), 10)
	tr.AddWindow().Add(0, 0)
	p := NewProblem(tr, 2) // 4 procs x 2 slots = 8 < 10 items
	for _, s := range []Scheduler{SCDS{}, LOMCDS{}, GOMCDS{}} {
		if _, err := s.Schedule(p); err == nil {
			t.Errorf("%s accepted infeasible capacity", s.Name())
		}
	}
}

// Capacity pressure forces overflow items to the second-best
// processor, matching the paper's processor-list discipline.
func TestProcessorListOverflow(t *testing.T) {
	g := grid.New(3, 1) // procs 0,1,2 in a row
	tr := trace.New(g, 2)
	w := tr.AddWindow()
	// Both items are hammered by processor 0 only.
	w.AddVolume(0, 0, 10)
	w.AddVolume(0, 1, 10)
	p := NewProblem(tr, 1) // one slot per processor
	s := mustSchedule(t, SCDS{}, p)
	if s.Centers[0][0] != 0 {
		t.Fatalf("item 0 on %d, want 0", s.Centers[0][0])
	}
	if s.Centers[0][1] != 1 {
		t.Fatalf("item 1 on %d, want the second-best processor 1", s.Centers[0][1])
	}
}

func TestGOMCDSPrefersStayingWhenMovesAreDear(t *testing.T) {
	// One item, large size; referenced from different corners in
	// different windows. With a huge item size, GOMCDS must keep a
	// single center while LOMCDS bounces between corners.
	g := grid.Square(4)
	tr := trace.New(g, 1)
	corners := []int{0, 3, 12, 15}
	for _, c := range corners {
		tr.AddWindow().Add(c, 0)
	}
	m := cost.NewModel(tr)
	m.DataSize[0] = 1000
	p := NewProblemFromModel(m, 0)
	lo := mustSchedule(t, LOMCDS{}, p)
	go_ := mustSchedule(t, GOMCDS{}, p)
	if m.MoveCost(lo) == 0 {
		t.Fatal("LOMCDS unexpectedly did not move")
	}
	if m.MoveCost(go_) != 0 {
		t.Fatalf("GOMCDS moved a size-1000 item (move cost %d)", m.MoveCost(go_))
	}
	if m.TotalCost(go_) > m.TotalCost(lo) {
		t.Fatalf("GOMCDS %d > LOMCDS %d", m.TotalCost(go_), m.TotalCost(lo))
	}
}

func TestFixedScheduler(t *testing.T) {
	g := grid.Square(2)
	tr := trace.New(g, 2)
	tr.AddWindow().Add(0, 0)
	tr.AddWindow().Add(1, 1)
	p := NewProblem(tr, 0)
	f := Fixed{Label: "S.F.", Assign: placement.Assignment{2, 3}}
	if f.Name() != "S.F." {
		t.Fatalf("Name = %q", f.Name())
	}
	s := mustSchedule(t, f, p)
	for w := 0; w < 2; w++ {
		if s.Centers[w][0] != 2 || s.Centers[w][1] != 3 {
			t.Fatalf("window %d centers = %v", w, s.Centers[w])
		}
	}
	if p.Model.MoveCost(s) != 0 {
		t.Fatal("fixed schedule moves data")
	}
}

func TestFixedSchedulerRejectsWrongLength(t *testing.T) {
	tr := trace.New(grid.Square(2), 2)
	tr.AddWindow().Add(0, 0)
	p := NewProblem(tr, 0)
	if _, err := (Fixed{Label: "x", Assign: placement.Assignment{0}}).Schedule(p); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := (Fixed{Label: "x", Assign: placement.Assignment{0, 9}}).Schedule(p); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func TestEmptyTraceSchedules(t *testing.T) {
	tr := trace.New(grid.Square(2), 3)
	p := NewProblem(tr, 0)
	for _, s := range []Scheduler{SCDS{}, LOMCDS{}, GOMCDS{}} {
		sched, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sched.NumWindows() != 0 {
			t.Fatalf("%s scheduled %d windows for empty trace", s.Name(), sched.NumWindows())
		}
	}
}

func TestZeroDataSchedules(t *testing.T) {
	tr := trace.New(grid.Square(2), 0)
	tr.AddWindow()
	p := NewProblem(tr, 4)
	for _, s := range []Scheduler{SCDS{}, LOMCDS{}, GOMCDS{}} {
		sched, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(sched.Centers[0]) != 0 {
			t.Fatalf("%s placed phantom items", s.Name())
		}
	}
}

// Determinism: the same problem always yields the same schedule, even
// with parallel execution inside the schedulers.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	p := randomProblem(rng, true)
	for _, s := range []Scheduler{SCDS{}, LOMCDS{}, GOMCDS{}} {
		a := mustSchedule(t, s, p)
		for i := 0; i < 5; i++ {
			b := mustSchedule(t, s, p)
			for w := range a.Centers {
				for d := range a.Centers[w] {
					if a.Centers[w][d] != b.Centers[w][d] {
						t.Fatalf("%s run %d: nondeterministic at (%d,%d)", s.Name(), i, w, d)
					}
				}
			}
		}
	}
}

// GOMCDS under capacity is never worse than SCDS under the same
// capacity when both use the same item order... not guaranteed in
// general by greedy per-item commitment, but GOMCDS must still beat
// LOMCDS's residence+movement on uncapacitated instances; under
// capacity we check only feasibility plus the weaker property that the
// reported schedule's cost equals re-evaluation (no bookkeeping skew).
func TestCapacitatedCostsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, true)
		for _, s := range []Scheduler{SCDS{}, LOMCDS{}, GOMCDS{}} {
			sched := mustSchedule(t, s, p)
			// Per-item decomposition must agree with the model total.
			var sum int64
			for d := 0; d < p.Model.NumData; d++ {
				centers := make([]int, p.Model.NumWindows())
				for w := range centers {
					centers[w] = sched.Centers[w][d]
				}
				sum += p.Model.DataCost(trace.DataID(d), centers)
			}
			if sum != p.Model.TotalCost(sched) {
				t.Fatalf("iter %d %s: decomposed %d != total %d", iter, s.Name(), sum, p.Model.TotalCost(sched))
			}
		}
	}
}

func BenchmarkSCDS(b *testing.B)   { benchScheduler(b, SCDS{}) }
func BenchmarkLOMCDS(b *testing.B) { benchScheduler(b, LOMCDS{}) }
func BenchmarkGOMCDS(b *testing.B) { benchScheduler(b, GOMCDS{}) }

func benchScheduler(b *testing.B, s Scheduler) {
	rng := rand.New(rand.NewSource(30))
	g := grid.Square(4)
	tr := trace.New(g, 256)
	for w := 0; w < 32; w++ {
		win := tr.AddWindow()
		for r := 0; r < 512; r++ {
			win.Add(rng.Intn(16), trace.DataID(rng.Intn(256)))
		}
	}
	p := NewProblem(tr, placement.PaperCapacity(256, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(p); err != nil {
			b.Fatal(err)
		}
	}
}

// As the item size grows, movement becomes prohibitive and GOMCDS
// converges to the best single-center schedule: its movement cost drops
// to zero and its total matches SCDS's residence optimum.
func TestGOMCDSConvergesToSCDSForHeavyItems(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for iter := 0; iter < 20; iter++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := 1 + rng.Intn(4)
		tr := trace.New(g, nd)
		for w := 0; w < 1+rng.Intn(4); w++ {
			win := tr.AddWindow()
			for r := 0; r < rng.Intn(10); r++ {
				win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
			}
		}
		m := cost.NewModel(tr)
		for d := range m.DataSize {
			m.DataSize[d] = 1 << 20
		}
		p := NewProblemFromModel(m, 0)
		gom := mustSchedule(t, GOMCDS{}, p)
		if m.MoveCost(gom) != 0 {
			t.Fatalf("iter %d: GOMCDS moved a 2^20-size item", iter)
		}
		scds := mustSchedule(t, SCDS{}, p)
		if m.TotalCost(gom) != m.TotalCost(scds) {
			t.Fatalf("iter %d: heavy-item GOMCDS %d != SCDS %d",
				iter, m.TotalCost(gom), m.TotalCost(scds))
		}
	}
}

// GOMCDS cost is monotone in item size: lighter items can only make the
// optimum cheaper (more freedom to move).
func TestGOMCDSMonotoneInItemSize(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 20; iter++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := 1 + rng.Intn(4)
		tr := trace.New(g, nd)
		for w := 0; w < 1+rng.Intn(4); w++ {
			win := tr.AddWindow()
			for r := 0; r < rng.Intn(10); r++ {
				win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
			}
		}
		var prev int64 = -1
		for _, size := range []int{1, 2, 4, 16} {
			m := cost.NewModel(tr)
			for d := range m.DataSize {
				m.DataSize[d] = size
			}
			p := NewProblemFromModel(m, 0)
			s := mustSchedule(t, GOMCDS{}, p)
			c := m.TotalCost(s)
			if prev >= 0 && c < prev {
				t.Fatalf("iter %d: cost decreased as size grew: %d -> %d", iter, prev, c)
			}
			prev = c
		}
	}
}

func TestAllListsThePaperSchedulers(t *testing.T) {
	all := All()
	want := []string{"SCDS", "LOMCDS", "GOMCDS"}
	if len(all) != len(want) {
		t.Fatalf("All() returned %d schedulers", len(all))
	}
	for i, s := range all {
		if s.Name() != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, s.Name(), want[i])
		}
	}
}
