package sched

import (
	"repro/internal/cost"
	"repro/internal/mcmf"
	"repro/internal/parallel"
)

// ExactSCDS is single-center data scheduling with the capacitated
// assignment solved exactly: instead of committing items one at a time
// through processor lists, it solves the transportation problem over
// all items at once (min-cost flow), minimizing the total residence
// cost subject to the memory capacity. Without a capacity it reduces
// to SCDS. It exists to measure how much the paper's greedy
// processor-list discipline costs (the exact-assignment ablation).
type ExactSCDS struct{}

// Name implements Scheduler.
func (ExactSCDS) Name() string { return "SCDS*" }

// Schedule implements Scheduler.
func (ExactSCDS) Schedule(p *Problem) (cost.Schedule, error) {
	if err := p.feasible(); err != nil {
		return cost.Schedule{}, err
	}
	nd, np, nw := p.Model.NumData, p.Model.Grid.NumProcs(), p.Model.NumWindows()
	agg := make([][]int64, nd)
	parallel.ForEach(nd, func(d int) {
		row := make([]int64, np)
		for w := 0; w < nw; w++ {
			tr := p.Table.Row(w, d)
			for c := 0; c < np; c++ {
				row[c] += tr[c]
			}
		}
		agg[d] = row
	})
	assign, _, err := mcmf.Assign(nd, np, int64(p.Capacity), func(d, c int) int64 {
		return agg[d][c]
	})
	if err != nil {
		return cost.Schedule{}, err
	}
	if assign == nil {
		assign = []int{}
	}
	return cost.Uniform(assign, nw), nil
}

// ExactLOMCDS is local-optimal multiple-center scheduling with each
// window's capacitated placement solved exactly by min-cost flow. Like
// LOMCDS it ignores movement cost when choosing centers, so for items a
// window does not reference (whose residence row is all zeros, leaving
// the flow solver free to scatter them) it keeps the previous window's
// center by seeding the cost with a small movement preference — the
// same stay-put discipline LOMCDS uses, folded into the assignment
// objective.
type ExactLOMCDS struct{}

// Name implements Scheduler.
func (ExactLOMCDS) Name() string { return "LOMCDS*" }

// Schedule implements Scheduler.
func (ExactLOMCDS) Schedule(p *Problem) (cost.Schedule, error) {
	if err := p.feasible(); err != nil {
		return cost.Schedule{}, err
	}
	nd, np, nw := p.Model.NumData, p.Model.Grid.NumProcs(), p.Model.NumWindows()
	centers := make([][]int, nw)

	// Aggregate rows pre-place never-referenced-yet items, exactly as
	// in LOMCDS.
	agg := make([][]int64, nd)
	referenced := make([][]bool, nw)
	for w := range referenced {
		referenced[w] = make([]bool, nd)
	}
	counts := p.Model.Counts()
	parallel.ForEach(nd, func(d int) {
		row := make([]int64, np)
		for w := 0; w < nw; w++ {
			tr := p.Table.Row(w, d)
			for c := 0; c < np; c++ {
				row[c] += tr[c]
			}
			for _, v := range counts[w][d] {
				if v != 0 {
					referenced[w][d] = true
					break
				}
			}
		}
		agg[d] = row
	})

	prev := make([]int, nd)
	for d := range prev {
		prev[d] = -1
	}
	for w := 0; w < nw; w++ {
		costFn := func(d, c int) int64 {
			switch {
			case referenced[w][d]:
				return p.Table.At(w, d, c)
			case prev[d] >= 0:
				return int64(p.Model.Dist(prev[d], c))
			default:
				return agg[d][c]
			}
		}
		assign, _, err := mcmf.Assign(nd, np, int64(p.Capacity), costFn)
		if err != nil {
			return cost.Schedule{}, err
		}
		row := make([]int, nd)
		copy(row, assign)
		centers[w] = row
		copy(prev, row)
	}
	return cost.Schedule{Centers: centers}, nil
}

// verify interface conformance.
var (
	_ Scheduler = ExactSCDS{}
	_ Scheduler = ExactLOMCDS{}
)
