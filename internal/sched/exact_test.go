package sched

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/trace"
)

func TestExactNames(t *testing.T) {
	if (ExactSCDS{}).Name() != "SCDS*" || (ExactLOMCDS{}).Name() != "LOMCDS*" {
		t.Fatal("exact scheduler names wrong")
	}
}

// Without capacity the exact schedulers match their greedy
// counterparts on the quantity each optimizes: total cost for the
// single-center pair (no movement exists), residence cost for the
// per-window pair (movement falls out of tie-breaking, which the two
// implementations resolve differently).
func TestExactMatchesGreedyUncapacitated(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, false)
		a := mustSchedule(t, SCDS{}, p)
		b := mustSchedule(t, ExactSCDS{}, p)
		if ca, cb := p.Model.TotalCost(a), p.Model.TotalCost(b); ca != cb {
			t.Fatalf("iter %d: SCDS cost %d != SCDS* cost %d", iter, ca, cb)
		}
		a = mustSchedule(t, LOMCDS{}, p)
		b = mustSchedule(t, ExactLOMCDS{}, p)
		if ca, cb := p.Model.ResidenceCost(a), p.Model.ResidenceCost(b); ca != cb {
			t.Fatalf("iter %d: LOMCDS residence %d != LOMCDS* residence %d", iter, ca, cb)
		}
	}
}

// Under capacity, the exact single-center residence cost is never worse
// than the greedy processor-list one.
func TestExactSCDSNeverWorseUnderCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 40; iter++ {
		p := randomProblem(rng, true)
		greedy := mustSchedule(t, SCDS{}, p)
		exact := mustSchedule(t, ExactSCDS{}, p)
		if p.Model.TotalCost(exact) > p.Model.TotalCost(greedy) {
			t.Fatalf("iter %d: exact %d > greedy %d", iter,
				p.Model.TotalCost(exact), p.Model.TotalCost(greedy))
		}
	}
}

// On traces where every window references every item, each window's
// assignment objective is pure residence, so the exact per-window
// solver's residence cost can never exceed the greedy processor-list
// one. (With unreferenced items both schedulers optimize a mixed
// residence-plus-stay-put objective whose previous-window state
// diverges between them, so the clean per-window dominance only holds
// in the fully-referenced case.)
func TestExactLOMCDSResidenceNeverWorseFullyReferenced(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for iter := 0; iter < 40; iter++ {
		g := grid.New(1+rng.Intn(3), 1+rng.Intn(3))
		nd := 1 + rng.Intn(5)
		tr := trace.New(g, nd)
		for w := 0; w < 1+rng.Intn(4); w++ {
			win := tr.AddWindow()
			for d := 0; d < nd; d++ {
				// Every item referenced at least once per window.
				win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(d), 1+rng.Intn(3))
			}
			for r := 0; r < rng.Intn(8); r++ {
				win.AddVolume(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)), 1+rng.Intn(3))
			}
		}
		p := NewProblem(tr, placement.PaperCapacity(nd, g.NumProcs()))
		greedy := mustSchedule(t, LOMCDS{}, p)
		exact := mustSchedule(t, ExactLOMCDS{}, p)
		if p.Model.ResidenceCost(exact) > p.Model.ResidenceCost(greedy) {
			t.Fatalf("iter %d: exact residence %d > greedy residence %d", iter,
				p.Model.ResidenceCost(exact), p.Model.ResidenceCost(greedy))
		}
	}
}

// Exact schedulers respect the memory capacity in every window.
func TestExactCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 30; iter++ {
		p := randomProblem(rng, true)
		for _, s := range []Scheduler{ExactSCDS{}, ExactLOMCDS{}} {
			sched := mustSchedule(t, s, p)
			for w := 0; w < p.Model.NumWindows(); w++ {
				used := make([]int, p.Model.Grid.NumProcs())
				for d := 0; d < p.Model.NumData; d++ {
					used[sched.Centers[w][d]]++
				}
				for proc, n := range used {
					if n > p.Capacity {
						t.Fatalf("iter %d %s w%d: proc %d holds %d > %d",
							iter, s.Name(), w, proc, n, p.Capacity)
					}
				}
			}
		}
	}
}

// A capacity-pressure instance where the greedy processor list is
// provably suboptimal: item 0 claims the shared best processor and
// forces item 1 far away, while the exact solver swaps them.
func TestExactBeatsGreedyOnAdversarialInstance(t *testing.T) {
	g := grid.New(4, 1)
	tr := trace.New(g, 2)
	w := tr.AddWindow()
	// Item 0: slight preference for proc 0 over proc 1.
	w.AddVolume(0, 0, 2)
	w.AddVolume(1, 0, 1)
	// Item 1: strong preference for proc 0, terrible elsewhere.
	w.AddVolume(0, 1, 10)
	p := NewProblem(tr, 1)
	greedy := mustSchedule(t, SCDS{}, p)
	exact := mustSchedule(t, ExactSCDS{}, p)
	// Greedy: item 0 -> proc 0 (cost 1), item 1 -> proc 1 (cost 10).
	// Exact: item 0 -> proc 1 (cost 2), item 1 -> proc 0 (cost 0).
	if got := p.Model.TotalCost(greedy); got != 11 {
		t.Fatalf("greedy cost = %d, want 11", got)
	}
	if got := p.Model.TotalCost(exact); got != 2 {
		t.Fatalf("exact cost = %d, want 2", got)
	}
}

func TestExactInfeasible(t *testing.T) {
	tr := trace.New(grid.Square(2), 10)
	tr.AddWindow().Add(0, 0)
	p := NewProblem(tr, 2)
	for _, s := range []Scheduler{ExactSCDS{}, ExactLOMCDS{}} {
		if _, err := s.Schedule(p); err == nil {
			t.Errorf("%s accepted infeasible capacity", s.Name())
		}
	}
}

func TestExactEmptyTrace(t *testing.T) {
	tr := trace.New(grid.Square(2), 3)
	p := NewProblem(tr, 0)
	for _, s := range []Scheduler{ExactSCDS{}, ExactLOMCDS{}} {
		sched, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sched.NumWindows() != 0 {
			t.Fatalf("%s scheduled windows for empty trace", s.Name())
		}
	}
}

func BenchmarkExactSCDS(b *testing.B)   { benchScheduler(b, ExactSCDS{}) }
func BenchmarkExactLOMCDS(b *testing.B) { benchScheduler(b, ExactLOMCDS{}) }
