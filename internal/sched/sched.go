// Package sched implements the paper's three data-scheduling
// algorithms:
//
//   - SCDS, single-center data scheduling (Algorithm 1): one center per
//     data item for the whole execution;
//   - LOMCDS, local-optimal multiple-center data scheduling (§3.2.1):
//     the best center per execution window, chosen without regard to
//     movement cost; and
//   - GOMCDS, global-optimal multiple-center data scheduling
//     (Algorithm 2): the center sequence minimizing residence plus
//     movement cost, found by a shortest path through the per-item
//     cost-graph.
//
// All three honor the PIM array's per-processor memory capacity using
// the paper's processor-list technique: candidate centers are ranked by
// cost and the first processor with a free memory slot wins.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/costgraph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/trace"
)

// Problem is a prepared scheduling instance: the cost model, its
// precomputed residence table, and the memory capacity. Build one with
// NewProblem and feed it to any scheduler; the residence table is
// shared across scheduler runs.
type Problem struct {
	Model *cost.Model
	Table cost.ResidenceTable

	// Capacity is the per-processor memory size in data items;
	// 0 or less means unbounded.
	Capacity int
}

// NewProblem builds a Problem from a trace, computing the residence
// table in parallel.
func NewProblem(t *trace.Trace, capacity int) *Problem {
	m := cost.NewModel(t)
	return &Problem{Model: m, Table: m.BuildResidenceTable(), Capacity: capacity}
}

// NewProblemFromModel wraps an existing model (for callers that tweak
// DataSize before building the table).
func NewProblemFromModel(m *cost.Model, capacity int) *Problem {
	return &Problem{Model: m, Table: m.BuildResidenceTable(), Capacity: capacity}
}

// feasible reports whether the capacity can hold all data at all.
func (p *Problem) feasible() error {
	if p.Capacity > 0 && p.Capacity*p.Model.Grid.NumProcs() < p.Model.NumData {
		return fmt.Errorf("sched: %d data items exceed total memory %d processors x %d slots",
			p.Model.NumData, p.Model.Grid.NumProcs(), p.Capacity)
	}
	return nil
}

// Scheduler produces a data schedule (one center per item per window)
// for a problem instance.
type Scheduler interface {
	// Name returns the algorithm's identifier as used in the paper's
	// tables ("SCDS", "LOMCDS", "GOMCDS", ...).
	Name() string
	// Schedule computes the placement. It returns an error when the
	// instance is infeasible (total memory smaller than the data set).
	Schedule(p *Problem) (cost.Schedule, error)
}

// ContextScheduler is a Scheduler with internal cancellation points:
// ScheduleContext observes the context between units of work and
// returns the context's error promptly once it expires, instead of
// running the full schedule to completion in the background.
// RunContext routes through it when available.
type ContextScheduler interface {
	Scheduler
	ScheduleContext(ctx context.Context, p *Problem) (cost.Schedule, error)
}

// processorList returns the processor indices sorted by ascending cost
// (ties broken by processor index), the paper's "processor list".
func processorList(costs []int64, scratch []int) []int {
	list := scratch[:0]
	for c := range costs {
		list = append(list, c)
	}
	sort.Slice(list, func(i, j int) bool {
		if costs[list[i]] != costs[list[j]] {
			return costs[list[i]] < costs[list[j]]
		}
		return list[i] < list[j]
	})
	return list
}

// firstAvailable walks the processor list and reserves the first
// processor with a free slot. The caller guarantees feasibility, so a
// slot always exists; firstAvailable panics otherwise.
func firstAvailable(list []int, tracker *placement.Tracker) int {
	for _, c := range list {
		if tracker.TryPlace(c) {
			return c
		}
	}
	panic("sched: no processor with free memory (feasibility was checked)")
}

// SCDS is the single-center data scheduler (Algorithm 1). The data
// stays at one processor for the entire execution; the center of each
// item is the feasible processor minimizing the item's total residence
// cost over all windows.
type SCDS struct{}

// Name implements Scheduler.
func (SCDS) Name() string { return "SCDS" }

// Schedule implements Scheduler.
func (SCDS) Schedule(p *Problem) (cost.Schedule, error) {
	if err := p.feasible(); err != nil {
		return cost.Schedule{}, err
	}
	nd, np, nw := p.Model.NumData, p.Model.Grid.NumProcs(), p.Model.NumWindows()

	// Total residence cost of each item at each candidate center,
	// aggregated over every window (the merged single execution
	// window), priced separably from the whole-run volume histograms.
	agg := p.Model.BuildAggregateTable()

	// Assignment is sequential: items compete for memory slots in ID
	// order, exactly as Algorithm 1's outer loop iterates.
	tracker := placement.NewTracker(np, p.Capacity)
	assign := make([]int, nd)
	scratch := make([]int, np)
	for d := 0; d < nd; d++ {
		assign[d] = firstAvailable(processorList(agg[d], scratch), tracker)
	}
	return cost.Uniform(assign, nw), nil
}

// LOMCDS is the local-optimal multiple-center scheduler: Algorithm 1
// applied independently to every execution window. Data migrates to
// each window's local-optimal center; the movement cost is paid at run
// time but ignored while choosing centers.
//
// A window that does not reference an item at all defines no center for
// it (every processor has residence cost zero); the item then stays
// where the previous window left it rather than being dragged to the
// tie-break processor. Items not referenced by any window seen so far
// are pre-placed at their whole-run best center, the initialization
// role of the paper's Section 3.2 first part.
type LOMCDS struct{}

// Name implements Scheduler.
func (LOMCDS) Name() string { return "LOMCDS" }

// Schedule implements Scheduler.
func (LOMCDS) Schedule(p *Problem) (cost.Schedule, error) {
	if err := p.feasible(); err != nil {
		return cost.Schedule{}, err
	}
	nd, np, nw := p.Model.NumData, p.Model.Grid.NumProcs(), p.Model.NumWindows()
	centers := make([][]int, nw)

	// Whole-run aggregate residence, used to pre-place items before
	// their first reference (priced separably from the whole-run volume
	// histograms); and the per-(window, item) referenced-ness.
	agg := p.Model.BuildAggregateTable()
	referenced := make([][]bool, nw)
	for w := range referenced {
		referenced[w] = make([]bool, nd)
	}
	counts := p.Model.Counts()
	parallel.ForEach(nd, func(d int) {
		for w := 0; w < nw; w++ {
			referenced[w][d] = counts.Referenced(w, trace.DataID(d))
		}
	})

	prev := make([]int, nd)
	for d := range prev {
		prev[d] = -1
	}
	scratch := make([]int, np)
	distRow := make([]int64, np)
	for w := 0; w < nw; w++ {
		tracker := placement.NewTracker(np, p.Capacity)
		row := make([]int, nd)
		for d := 0; d < nd; d++ {
			var list []int
			switch {
			case referenced[w][d]:
				list = processorList(p.Table.Row(w, d), scratch)
			case prev[d] >= 0:
				// No center defined by this window: prefer staying put,
				// then the nearest processors.
				for c := 0; c < np; c++ {
					distRow[c] = int64(p.Model.Dist(prev[d], c))
				}
				list = processorList(distRow, scratch)
			default:
				list = processorList(agg[d], scratch)
			}
			row[d] = firstAvailable(list, tracker)
			prev[d] = row[d]
		}
		centers[w] = row
	}
	return cost.Schedule{Centers: centers}, nil
}

// GOMCDS is the global-optimal multiple-center scheduler (Algorithm 2):
// for each data item it builds the layered cost-graph over (window,
// processor) states — residence cost on the vertices, movement cost on
// the edges — and takes the shortest source-to-sink path as the
// center sequence.
//
// Under a memory capacity the items are scheduled one after another in
// ID order (the paper's processor-list discipline); processors whose
// memory is full in a window are forbidden vertices for later items.
// Without a capacity all items are independent and are scheduled in
// parallel; the result is then exactly optimal per item.
//
// The per-item DP runs the separable min-plus sweep kernel by default
// (costgraph.KernelSweep, O(P) per layer); set Kernel to
// costgraph.KernelNaive for the dense O(P²) relaxation. Both kernels
// produce identical schedules — internal/verify pins them together —
// so the choice is purely a speed/diagnostics knob.
type GOMCDS struct {
	// Kernel selects the layered-DP relaxation. The zero value is
	// costgraph.KernelSweep, the fast separable kernel.
	Kernel costgraph.Kernel
}

// Name implements Scheduler.
func (GOMCDS) Name() string { return "GOMCDS" }

// Schedule implements Scheduler.
func (g GOMCDS) Schedule(p *Problem) (cost.Schedule, error) {
	return g.ScheduleContext(context.Background(), p)
}

// dpStage names the DP span recorded on the model's stage sink.
func (g GOMCDS) dpStage() string {
	if g.Kernel == costgraph.KernelNaive {
		return "sched.dp.naive"
	}
	return "sched.dp.sweep"
}

// ScheduleContext implements ContextScheduler: it is Schedule with a
// cancellation point between units of work (data items under a
// capacity, item blocks on the batched unbounded path), so deadlines
// and cancellation abort long runs mid-schedule instead of after the
// full D-item loop. A partial schedule is never returned; on
// cancellation the result is the zero Schedule and the context's error.
func (g GOMCDS) ScheduleContext(ctx context.Context, p *Problem) (cost.Schedule, error) {
	if err := p.feasible(); err != nil {
		return cost.Schedule{}, err
	}
	nd, np, nw := p.Model.NumData, p.Model.Grid.NumProcs(), p.Model.NumWindows()
	centers := make([][]int, nw)
	for w := range centers {
		centers[w] = make([]int, nd)
	}
	if nw == 0 {
		return cost.Schedule{Centers: centers}, nil
	}
	sp := obs.Stages(p.Model.Stages).Start(g.dpStage())
	defer sp.End()

	if p.Capacity <= 0 {
		// Independent items. With the sweep kernel the items are solved
		// by the batched layer-major DP: contiguous item blocks stream
		// through the flat residence table one window at a time, so one
		// layer pass touches one contiguous run of table cells. With the
		// naive kernel (a diagnostics knob) items are solved one at a
		// time as before. Either way solvers come from the
		// process-lifetime pool and survive across requests; cancellation
		// is checked per item (naive) or per block (sweep) — work already
		// in flight finishes its current unit, later units are skipped
		// and the error returned.
		if g.Kernel == costgraph.KernelNaive {
			parallel.ForEach(nd, func(d int) {
				if ctx.Err() != nil {
					return
				}
				solver := costgraph.GetSolver(p.Model.Grid.Width(), p.Model.Grid.Height())
				path := g.bestPath(p, d, nil, solver)
				for w := 0; w < nw; w++ {
					centers[w][d] = path[w]
				}
				costgraph.PutSolver(solver)
			})
		} else {
			cells := p.Table.Cells()
			blocks := runtime.GOMAXPROCS(0)
			if blocks > nd {
				blocks = nd
			}
			parallel.ForEach(blocks, func(b int) {
				if ctx.Err() != nil {
					return
				}
				lo, hi := b*nd/blocks, (b+1)*nd/blocks
				solver := costgraph.GetSolver(p.Model.Grid.Width(), p.Model.Grid.Height())
				sizes := solver.BatchSizes(hi - lo)
				for i := range sizes {
					sizes[i] = int64(p.Model.DataSize[lo+i])
				}
				totals, paths := solver.SolveBatch(cells, nw, nd, lo, hi, sizes)
				for i := 0; i < hi-lo; i++ {
					if totals[i] == costgraph.Inf {
						// Feasibility was checked and nothing is forbidden
						// without a capacity, so a blocked item is a bug.
						panic("sched: GOMCDS found no feasible center sequence")
					}
					path := paths[i*nw : (i+1)*nw]
					for w := 0; w < nw; w++ {
						centers[w][lo+i] = path[w]
					}
				}
				costgraph.PutSolver(solver)
			})
		}
		if err := ctx.Err(); err != nil {
			return cost.Schedule{}, err
		}
		return cost.Schedule{Centers: centers}, nil
	}

	trackers := make([]*placement.Tracker, nw)
	for w := range trackers {
		trackers[w] = placement.NewTracker(np, p.Capacity)
	}
	solver := costgraph.GetSolver(p.Model.Grid.Width(), p.Model.Grid.Height())
	defer costgraph.PutSolver(solver)
	for d := 0; d < nd; d++ {
		if err := ctx.Err(); err != nil {
			return cost.Schedule{}, err
		}
		path := g.bestPath(p, d, trackers, solver)
		for w := 0; w < nw; w++ {
			if !trackers[w].TryPlace(path[w]) {
				panic("sched: GOMCDS chose a full processor (forbidden vertex leaked)")
			}
			centers[w][d] = path[w]
		}
	}
	return cost.Schedule{Centers: centers}, nil
}

// bestPath runs the cost-graph shortest path for one item. trackers,
// when non-nil, mark full processors as forbidden vertices. The
// solver's NodeCost scratch assembles the layer costs without per-item
// allocation: rows alias the residence table directly when nothing is
// forbidden and are materialized (table value or Inf) under capacity
// tracking.
func (g GOMCDS) bestPath(p *Problem, d int, trackers []*placement.Tracker, solver *costgraph.Solver) []int {
	nw, np := p.Model.NumWindows(), p.Model.Grid.NumProcs()
	nodeCost := solver.NodeCost(nw)
	for w := 0; w < nw; w++ {
		if trackers == nil {
			nodeCost[w] = p.Table.Row(w, d)
			continue
		}
		row := nodeCost[w]
		tableRow := p.Table.Row(w, d)
		for c := 0; c < np; c++ {
			if trackers[w].Capacity() > 0 && trackers[w].Used(c) >= trackers[w].Capacity() {
				row[c] = costgraph.Inf
			} else {
				row[c] = tableRow[c]
			}
		}
	}
	size := int64(p.Model.DataSize[d])
	var total int64
	var path []int
	if g.Kernel == costgraph.KernelNaive {
		total, path = costgraph.ShortestLayeredPathNaive(nodeCost, p.Model.Grid.Width(), p.Model.Grid.Height(), size)
	} else {
		total, path = solver.Solve(nodeCost, size)
	}
	if path == nil || total == costgraph.Inf {
		// Feasibility was checked: every window has at least one free
		// slot for every item scheduled one at a time.
		panic("sched: GOMCDS found no feasible center sequence")
	}
	return path
}

// Fixed wraps a precomputed single-window assignment (such as a
// row-wise baseline distribution) as a no-movement Scheduler, so the
// experiment harness can treat baselines and real schedulers uniformly.
type Fixed struct {
	Label  string
	Assign placement.Assignment
}

// Name implements Scheduler.
func (f Fixed) Name() string { return f.Label }

// Schedule implements Scheduler.
func (f Fixed) Schedule(p *Problem) (cost.Schedule, error) {
	if len(f.Assign) != p.Model.NumData {
		return cost.Schedule{}, fmt.Errorf("sched: fixed assignment covers %d items, trace has %d",
			len(f.Assign), p.Model.NumData)
	}
	if err := f.Assign.Validate(p.Model.Grid, p.Capacity); err != nil {
		return cost.Schedule{}, err
	}
	return cost.Uniform(f.Assign, p.Model.NumWindows()), nil
}

// All returns the paper's three schedulers in presentation order
// (SCDS, LOMCDS, GOMCDS), for drivers that run the full comparison.
func All() []Scheduler {
	return []Scheduler{SCDS{}, LOMCDS{}, GOMCDS{}}
}

// ByName returns the scheduler with the given case-insensitive name
// ("scds", "lomcds" or "gomcds"), for command-line tools.
func ByName(name string) (Scheduler, error) {
	switch strings.ToLower(name) {
	case "scds":
		return SCDS{}, nil
	case "lomcds":
		return LOMCDS{}, nil
	case "gomcds":
		return GOMCDS{}, nil
	}
	return nil, fmt.Errorf("sched: unknown scheduler %q (want scds, lomcds or gomcds)", name)
}
