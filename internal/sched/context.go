package sched

import (
	"context"
	"strings"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/trace"
)

// The schedulers and the residence-table builder are pure CPU-bound
// loops with no internal cancellation points, so the context-aware
// wrappers below run the work in a goroutine and select against the
// context. When the context expires first the caller gets control back
// immediately and the abandoned computation runs to completion in the
// background with its result discarded; callers that bound concurrency
// (such as the scheduling service's worker pool) should release their
// slot only when the background work has actually finished, via the
// done callback variants.
//
// All wrappers record stage spans into any obs.Stages carried by the
// context (obs.WithStages): "sched.<algorithm>" around scheduler runs
// and the model's "cost.*" stages around table builds. The spans time
// the work itself, inside the worker goroutine, so a run abandoned by
// an expired context still records its true duration on completion.

// NewProblemContext is NewProblem under a context: it builds the cost
// model and residence table unless the context expires first, in which
// case it returns the context's error. The abandoned build completes in
// the background.
func NewProblemContext(ctx context.Context, t *trace.Trace, capacity int) (*Problem, error) {
	stages := obs.StagesFrom(ctx)
	return await(ctx, func() (*Problem, error) {
		m := cost.NewModel(t)
		if stages != nil {
			m.Stages = stages
		}
		return &Problem{Model: m, Table: m.BuildResidenceTable(), Capacity: capacity}, nil
	})
}

// RunContext runs s.Schedule(p) unless the context expires first.
func RunContext(ctx context.Context, s Scheduler, p *Problem) (cost.Schedule, error) {
	return RunContextDone(ctx, s, p, nil)
}

// RunContextDone is RunContext with a completion hook: done is called
// exactly once, when the underlying scheduler run actually finishes —
// even if the context expired and RunContextDone already returned.
// Worker pools use it to hold their concurrency slot for the full
// lifetime of the computation, not just of the request.
//
// Schedulers implementing ContextScheduler (GOMCDS) receive the
// context and abort between data items once it expires, so an
// abandoned run releases its concurrency slot promptly instead of
// grinding through the remaining items with the result discarded.
func RunContextDone(ctx context.Context, s Scheduler, p *Problem, done func()) (cost.Schedule, error) {
	stages := obs.StagesFrom(ctx)
	return awaitDone(ctx, func() (cost.Schedule, error) {
		sp := stages.Start("sched." + strings.ToLower(s.Name()))
		defer sp.End()
		if cs, ok := s.(ContextScheduler); ok {
			return cs.ScheduleContext(ctx, p)
		}
		return s.Schedule(p)
	}, done)
}

// await runs fn in a goroutine and waits for it or the context,
// whichever finishes first.
func await[T any](ctx context.Context, fn func() (T, error)) (T, error) {
	return awaitDone(ctx, fn, nil)
}

func awaitDone[T any](ctx context.Context, fn func() (T, error), done func()) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		if done != nil {
			done()
		}
		return zero, err
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := fn()
		ch <- result{v, err}
		if done != nil {
			done()
		}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}
