package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/trace"
)

func contextTrace() *trace.Trace {
	tr := trace.New(grid.Square(2), 3)
	w := tr.AddWindow()
	w.Add(0, 0)
	w.Add(1, 1)
	w.Add(3, 2)
	w = tr.AddWindow()
	w.Add(2, 0)
	w.Add(3, 1)
	return tr
}

func TestNewProblemContextMatchesNewProblem(t *testing.T) {
	tr := contextTrace()
	got, err := NewProblemContext(context.Background(), tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := NewProblem(tr, 2)
	if got.Capacity != want.Capacity || got.Model.NumData != want.Model.NumData {
		t.Fatal("problems differ")
	}
	for w := 0; w < want.Table.NumWindows(); w++ {
		for d := 0; d < want.Table.NumData(); d++ {
			for c := 0; c < want.Table.NumProcs(); c++ {
				if got.Table.At(w, d, c) != want.Table.At(w, d, c) {
					t.Fatalf("table cell [%d][%d][%d] differs", w, d, c)
				}
			}
		}
	}
}

func TestRunContextMatchesDirectRun(t *testing.T) {
	tr := contextTrace()
	p := NewProblem(tr, 0)
	for _, s := range All() {
		got, err := RunContext(context.Background(), s, p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		want, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: RunContext schedule differs from direct run", s.Name())
		}
	}
}

func TestRunContextExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewProblem(contextTrace(), 0)
	if _, err := RunContext(ctx, GOMCDS{}, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := NewProblemContext(ctx, contextTrace(), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewProblemContext err = %v, want context.Canceled", err)
	}
}

// TestContextStageSpans: the context wrappers record stage spans into
// an obs.Stages carried by the context — "sched.<algorithm>" around the
// run and the model's "cost.*" stages around the table build — and a
// run abandoned by a cancelled context still records on completion.
func TestContextStageSpans(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	ctx := obs.WithStages(context.Background(), func(stage string, _ time.Duration) {
		mu.Lock()
		got[stage]++
		mu.Unlock()
	})

	p, err := NewProblemContext(ctx, contextTrace(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunContext(ctx, SCDS{}, p); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if got["cost.residence_table"] != 1 || got["sched.scds"] != 1 {
		t.Fatalf("stage counts = %v, want one cost.residence_table and one sched.scds", got)
	}
	mu.Unlock()

	// A bare context must not record anywhere (nil-safe path).
	if _, err := RunContext(context.Background(), SCDS{}, p); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if got["sched.scds"] != 1 {
		t.Fatalf("bare-context run leaked a span: %v", got)
	}
	mu.Unlock()

	// Abandoned runs record when the work actually finishes.
	recorded := make(chan string, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	actx := obs.WithStages(context.Background(), func(stage string, _ time.Duration) {
		recorded <- stage
	})
	actx, cancel := context.WithCancel(actx)
	slow := hookScheduler{name: "SLOW", hook: func() {
		close(started)
		<-release
	}}
	go func() {
		<-started
		cancel()
	}()
	if _, err := RunContext(actx, slow, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case s := <-recorded:
		t.Fatalf("span %q recorded before the abandoned run finished", s)
	default:
	}
	close(release)
	select {
	case s := <-recorded:
		if s != "sched.slow" {
			t.Fatalf("abandoned run recorded stage %q, want sched.slow", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned run never recorded its span")
	}
}

// hookScheduler blocks inside Schedule until its hook returns, to model
// a long scheduler run.
type hookScheduler struct {
	name string
	hook func()
}

func (h hookScheduler) Name() string { return h.name }
func (h hookScheduler) Schedule(p *Problem) (cost.Schedule, error) {
	h.hook()
	return SCDS{}.Schedule(p)
}

// TestRunContextDoneFiresAfterAbandonment pins the worker-pool
// contract: the done hook fires exactly once, when the abandoned run
// actually completes, so a concurrency slot is never released while the
// computation still burns a CPU.
func TestRunContextDoneFiresAfterAbandonment(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		_, err := awaitDone(ctx, func() (int, error) {
			close(started)
			<-release // simulate a long scheduler run
			return 42, nil
		}, func() { close(done) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel()
	select {
	case <-done:
		t.Fatal("done fired before the abandoned run finished")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("done never fired after the run completed")
	}
}

// TestRunContextDoneExpiredBeforeStart: with an already-dead context no
// run starts, and done still fires so slot accounting balances.
func TestRunContextDoneExpiredBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fired := false
	_, err := RunContextDone(ctx, SCDS{}, NewProblem(contextTrace(), 0), func() { fired = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !fired {
		t.Fatal("done did not fire for an expired context")
	}
}
