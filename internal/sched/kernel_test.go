package sched

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/costgraph"
	"repro/internal/grid"
	"repro/internal/placement"
	"repro/internal/trace"
)

// randomProblem builds a seeded random instance for the kernel and
// allocation tests.
func randomKernelProblem(rng *rand.Rand, g grid.Grid, nd, nw, refs, capacity int) *Problem {
	tr := trace.New(g, nd)
	for w := 0; w < nw; w++ {
		win := tr.AddWindow()
		for r := 0; r < refs; r++ {
			win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
		}
	}
	return NewProblem(tr, capacity)
}

// TestGOMCDSKernelsProduceIdenticalSchedules pins the sweep and naive
// DP kernels together at the scheduler level: same schedules (not just
// costs) with and without capacity tracking, across random instances
// including 1xN and Nx1 arrays.
func TestGOMCDSKernelsProduceIdenticalSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	grids := []grid.Grid{grid.Square(3), grid.New(6, 1), grid.New(1, 6), grid.New(4, 2)}
	for iter := 0; iter < 30; iter++ {
		g := grids[iter%len(grids)]
		nd := 1 + rng.Intn(8)
		for _, capacity := range []int{0, 1 + (nd-1)/g.NumProcs()} {
			p := randomKernelProblem(rng, g, nd, 1+rng.Intn(5), 1+rng.Intn(20), capacity)
			// Vary item sizes so movement cost matters.
			for d := range p.Model.DataSize {
				p.Model.DataSize[d] = 1 + rng.Intn(3)
			}
			sweep := mustSchedule(t, GOMCDS{Kernel: costgraph.KernelSweep}, p)
			naive := mustSchedule(t, GOMCDS{Kernel: costgraph.KernelNaive}, p)
			if !sweep.Equal(naive) {
				t.Fatalf("iter %d (%v, nd=%d, cap=%d): sweep schedule %v != naive %v",
					iter, g, nd, capacity, sweep.Centers, naive.Centers)
			}
		}
	}
}

// TestGOMCDSCapacityAllocsBounded is the -benchmem regression guard for
// the capacity branch: before the Solver, every item allocated a fresh
// W x P nodeCost matrix plus the DP's choice/next rows — Θ(D·W)
// allocations per run. With solver scratch the per-item cost is one
// path slice, so a whole run must stay well under D·W allocations.
func TestGOMCDSCapacityAllocsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nd, nw = 32, 8
	p := randomKernelProblem(rng, grid.Square(8), nd, nw, 256, placement.PaperCapacity(nd, 64))
	if _, err := (GOMCDS{}).Schedule(p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := (GOMCDS{}).Schedule(p); err != nil {
			t.Fatal(err)
		}
	})
	if limit := float64(nd * nw); allocs >= limit {
		t.Fatalf("GOMCDS capacity run allocated %.0f times, want < %.0f (per-item scratch is back)", allocs, limit)
	}
}

// TestGOMCDSPreCancelledContext checks the cancellation point: a
// context that is already cancelled must abort both GOMCDS branches
// promptly with the context's error and no partial schedule.
func TestGOMCDSPreCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, capacity := range []int{0, 8} {
		p := randomKernelProblem(rng, grid.Square(4), 16, 4, 64, capacity)
		s, err := GOMCDS{}.ScheduleContext(ctx, p)
		if err != context.Canceled {
			t.Fatalf("capacity=%d: err = %v, want context.Canceled", capacity, err)
		}
		if s.Centers != nil {
			t.Fatalf("capacity=%d: got partial schedule %v on cancellation", capacity, s.Centers)
		}
	}
}

// countingCtx reports Canceled from Err after a fixed number of calls,
// making the "checks between items" property deterministic: the
// capacity-tracked loop consults Err once per item, so a large instance
// must stop early rather than run all D items.
type countingCtx struct {
	context.Context
	calls       atomic.Int64
	cancelAfter int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.cancelAfter {
		return context.Canceled
	}
	return nil
}

func TestGOMCDSCancelsBetweenItems(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const nd = 64
	p := randomKernelProblem(rng, grid.Square(4), nd, 4, 64, 2*((nd+15)/16))
	ctx := &countingCtx{Context: context.Background(), cancelAfter: 3}
	if _, err := (GOMCDS{}).ScheduleContext(ctx, p); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled after mid-run cancellation", err)
	}
	if calls := ctx.calls.Load(); calls > 10 {
		t.Fatalf("loop consulted ctx.Err %d times after cancellation, expected an early abort", calls)
	}
}

// TestRunContextRoutesContextScheduler verifies the RunContext plumbing
// hands the live context to ContextScheduler implementations: a
// pre-cancelled context must yield the context error with the done
// callback fired promptly (the background run aborts instead of
// completing the full schedule).
func TestRunContextRoutesContextScheduler(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p := randomKernelProblem(rng, grid.Square(4), 32, 8, 128, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	_, err := RunContextDone(ctx, GOMCDS{}, p, func() { close(done) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	<-done // fires immediately: pre-expiry short-circuits before the run
}
