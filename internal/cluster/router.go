package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/trace"
)

// Defaults for RouterConfig fields left zero.
const (
	DefaultHealthInterval = 2 * time.Second
	DefaultHealthTimeout  = 500 * time.Millisecond
	DefaultRouterMaxBody  = 32 << 20

	// DefaultReplication is the number of ring owners per fingerprint
	// key: the primary plus one replica, enough that a single shard
	// death is a failover instead of a rebuild.
	DefaultReplication = 2

	// DefaultReadmitAfter is the number of consecutive passing health
	// probes an ejected backend needs before readmission. Requiring two
	// keeps a backend that alternates one good and one bad probe out of
	// the ring instead of remapping its keys every sweep.
	DefaultReadmitAfter = 2
)

// replicaFillTimeout bounds one replica-fill round trip (the replica's
// own peer fetch is bounded by its PeerFillTimeout, so this is slack,
// not the budget).
const replicaFillTimeout = 10 * time.Second

// coalesceLeaderTimeout caps a coalesced upstream call. The leader runs
// detached from its own client's context — followers still need the
// response after the leader's client hangs up — so a hung backend must
// be cut off by something, and this is it.
const coalesceLeaderTimeout = 5 * time.Minute

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Backends are the base URLs of the pimserve fleet (e.g.
	// "http://10.0.0.3:8080"). All start as ring members; health checks
	// eject and readmit them afterwards.
	Backends []string

	// Replicas is the ring's virtual-node count per backend; <= 0 means
	// DefaultReplicas.
	Replicas int

	// Replication is the number of ring owners per fingerprint key
	// (primary + replicas); <= 0 means DefaultReplication. With
	// PeerFill on, the router pushes each key's table to the non-primary
	// owners asynchronously after the primary serves it, so losing the
	// primary costs a transfer, not a rebuild. 1 disables replication.
	Replication int

	// ReadmitAfter is the number of consecutive passing health probes
	// required to readmit an ejected backend; <= 0 means
	// DefaultReadmitAfter.
	ReadmitAfter int

	// PeerFill attaches an X-Pim-Peer hint to proxied schedule
	// requests, naming the ring's previous owner of the key, so a shard
	// that inherited the key after churn can adopt that peer's cached
	// table instead of rebuilding it. It also gates replica fills: both
	// mechanisms ride the same GET /table/{fp} codec on the shard side.
	PeerFill bool

	// HealthInterval spaces background health sweeps; 0 means
	// DefaultHealthInterval, < 0 disables the background loop (tests
	// drive CheckHealth directly).
	HealthInterval time.Duration

	// HealthTimeout bounds one backend probe; <= 0 means
	// DefaultHealthTimeout.
	HealthTimeout time.Duration

	// MaxBodyBytes bounds a routed request body; <= 0 means
	// DefaultRouterMaxBody.
	MaxBodyBytes int64

	// Client issues proxied requests and health probes; nil means a
	// dedicated client with sane connection pooling.
	Client *http.Client
}

// sessionPin records which backend owns a session. moving is non-nil
// while a drain migration is relocating the session; requests for it
// wait on the channel instead of racing the move (an op that slipped to
// the old shard after export would be silently lost).
type sessionPin struct {
	backend string
	moving  chan struct{}
}

// Router shards schedule traffic across a pimserve fleet by trace
// fingerprint. One trace always lands on one shard — its primary owner
// — so each residence table is built once fleet-wide; with replication
// the next R-1 owners hold pushed copies, so the primary's death moves
// the key to a shard that already has the table. Session traffic is
// pinned to the shard that created (or imported) the session.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client

	sessMu   sync.Mutex
	sessions map[string]*sessionPin // session id -> pin

	// healthMu guards the readmission streaks and the drained set.
	healthMu sync.Mutex
	streak   map[string]int
	drained  map[string]struct{}

	// Replica-fill bookkeeping: fills in flight and fills known done,
	// keyed "backend|fingerprint". fillPending counts live fill
	// goroutines; fillCond wakes WaitReplicaFills and Close.
	fillMu       sync.Mutex
	fillCond     *sync.Cond
	fillPending  int
	fillInflight map[string]struct{}
	fillFilled   map[string]struct{}

	// coalesce holds the in-flight single /schedule calls by
	// fingerprint+spec; followers of an identical request wait on the
	// leader's response instead of issuing their own upstream call.
	coalMu   sync.Mutex
	coalesce map[string]*coalesceCall

	reg              *obs.Registry
	requests         *obs.Counter
	badRequests      *obs.Counter
	retries          *obs.Counter
	ejections        *obs.Counter
	readmissions     *obs.Counter
	noBackend        *obs.Counter
	peerHints        *obs.Counter
	coalesced        *obs.Counter
	replicaFills     *obs.Counter
	replicaFillErrs  *obs.Counter
	drains           *obs.Counter
	sessionsMigrated *obs.Counter
	latency          *obs.Histogram

	stop     chan struct{}
	loopDone chan struct{}
}

type coalesceCall struct {
	done chan struct{}
	res  forwardResult // written by the leader before done is closed
}

// NewRouter builds a router over the configured fleet and, unless
// disabled, starts its health loop. Close releases it.
func NewRouter(cfg RouterConfig) *Router {
	rt := &Router{
		cfg:          cfg,
		ring:         NewRing(cfg.Replicas),
		client:       cfg.Client,
		sessions:     make(map[string]*sessionPin),
		streak:       make(map[string]int),
		drained:      make(map[string]struct{}),
		fillInflight: make(map[string]struct{}),
		fillFilled:   make(map[string]struct{}),
		coalesce:     make(map[string]*coalesceCall),
		reg:          obs.NewRegistry(),
		stop:         make(chan struct{}),
		loopDone:     make(chan struct{}),
	}
	rt.fillCond = sync.NewCond(&rt.fillMu)
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	for _, b := range cfg.Backends {
		rt.ring.Add(strings.TrimRight(b, "/"))
	}

	rt.requests = rt.reg.Counter("pim_router_requests_total", "Requests routed to a backend.")
	rt.badRequests = rt.reg.Counter("pim_router_bad_requests_total", "Requests rejected before routing (unroutable body).")
	rt.retries = rt.reg.Counter("pim_router_retries_total", "Proxied requests retried on a second backend after a connection error.")
	rt.ejections = rt.reg.Counter("pim_router_ejections_total", "Backends ejected from the ring (health check or connection error).")
	rt.readmissions = rt.reg.Counter("pim_router_readmissions_total", "Ejected backends readmitted after consecutive passing health checks.")
	rt.noBackend = rt.reg.Counter("pim_router_no_backend_total", "Requests failed 503 because the ring was empty.")
	rt.peerHints = rt.reg.Counter("pim_router_peer_hints_total", "Schedule requests forwarded with a peer cache-fill hint.")
	rt.coalesced = rt.reg.Counter("pim_router_coalesced_total", "Single schedule requests served by piggybacking on an identical in-flight upstream call.")
	rt.replicaFills = rt.reg.Counter("pim_router_replica_fills_total", "Replica shards asked to adopt a key's table after the primary served it.")
	rt.replicaFillErrs = rt.reg.Counter("pim_router_replica_fill_errors_total", "Replica fill attempts that failed (retried on the key's next request).")
	rt.drains = rt.reg.Counter("pim_router_drains_total", "Backends administratively drained out of the ring.")
	rt.sessionsMigrated = rt.reg.Counter("pim_router_sessions_migrated_total", "Sessions exported off a draining backend and imported on their new owner.")
	rt.latency = rt.reg.Histogram("pim_router_request_duration_seconds",
		"End-to-end latency of proxied requests.", obs.LatencyBuckets)
	rt.reg.GaugeFunc("pim_router_backends_healthy", "Ring members currently routable.",
		func() float64 { return float64(rt.ring.Len()) })
	rt.reg.GaugeFunc("pim_router_backends_known", "Backends configured, healthy or not.",
		func() float64 { return float64(len(rt.cfg.Backends)) })
	rt.reg.GaugeFunc("pim_router_sessions_pinned", "Sessions currently pinned to a backend.",
		func() float64 {
			rt.sessMu.Lock()
			defer rt.sessMu.Unlock()
			return float64(len(rt.sessions))
		})
	rt.reg.GaugeFunc("pim_router_replica_fills_pending", "Replica fills currently in flight.",
		func() float64 {
			rt.fillMu.Lock()
			defer rt.fillMu.Unlock()
			return float64(rt.fillPending)
		})

	if cfg.HealthInterval >= 0 {
		go rt.healthLoop()
	} else {
		close(rt.loopDone)
	}
	return rt
}

// Close stops the health loop and waits out in-flight replica fills.
// In-flight proxied requests finish on their own; the router holds no
// other resources.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	<-rt.loopDone
	rt.WaitReplicaFills()
}

// Ring exposes the live membership view, mainly for tests and /stats.
func (rt *Router) Ring() *Ring { return rt.ring }

func (rt *Router) healthInterval() time.Duration {
	if rt.cfg.HealthInterval == 0 {
		return DefaultHealthInterval
	}
	return rt.cfg.HealthInterval
}

func (rt *Router) healthTimeout() time.Duration {
	if rt.cfg.HealthTimeout <= 0 {
		return DefaultHealthTimeout
	}
	return rt.cfg.HealthTimeout
}

func (rt *Router) maxBodyBytes() int64 {
	if rt.cfg.MaxBodyBytes <= 0 {
		return DefaultRouterMaxBody
	}
	return rt.cfg.MaxBodyBytes
}

func (rt *Router) replication() int {
	if rt.cfg.Replication <= 0 {
		return DefaultReplication
	}
	return rt.cfg.Replication
}

func (rt *Router) readmitAfter() int {
	if rt.cfg.ReadmitAfter <= 0 {
		return DefaultReadmitAfter
	}
	return rt.cfg.ReadmitAfter
}

func (rt *Router) healthLoop() {
	defer close(rt.loopDone)
	t := time.NewTicker(rt.healthInterval())
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckHealth()
		}
	}
}

// CheckHealth probes every configured backend's /healthz once, ejecting
// failures from the ring and readmitting recoveries after readmitAfter
// consecutive passing probes (a single good probe from a flapping
// backend must not remap its keys). Drained backends are skipped
// entirely: an operator took them out, only an undrain lets them back.
// It is the only path back into the ring after an ejection.
func (rt *Router) CheckHealth() {
	for _, b := range rt.cfg.Backends {
		backend := strings.TrimRight(b, "/")
		if rt.isDrained(backend) {
			continue
		}
		healthy := rt.probe(backend)
		switch {
		case healthy && !rt.ring.Has(backend):
			rt.healthMu.Lock()
			rt.streak[backend]++
			readmit := rt.streak[backend] >= rt.readmitAfter()
			if readmit {
				delete(rt.streak, backend)
			}
			rt.healthMu.Unlock()
			if readmit {
				rt.ring.Add(backend)
				rt.readmissions.Inc()
			}
		case !healthy:
			rt.healthMu.Lock()
			delete(rt.streak, backend)
			rt.healthMu.Unlock()
			rt.eject(backend)
		}
	}
}

func (rt *Router) isDrained(backend string) bool {
	rt.healthMu.Lock()
	defer rt.healthMu.Unlock()
	_, ok := rt.drained[backend]
	return ok
}

// eject removes a backend from the ring and forgets everything that
// assumed it was alive: its readmission streak, its replica-fill
// completions (a restarted process comes back with an empty cache), and
// the session pins that pointed at it (their sessions died with the
// process; keeping the pins would leak them forever and turn every
// request into a doomed proxy attempt). No-op for non-members.
func (rt *Router) eject(backend string) {
	if !rt.ring.Has(backend) {
		return
	}
	rt.ring.Remove(backend)
	rt.ejections.Inc()

	rt.healthMu.Lock()
	delete(rt.streak, backend)
	rt.healthMu.Unlock()

	rt.forgetFills(backend)

	rt.sessMu.Lock()
	for id, pin := range rt.sessions {
		if pin.backend == backend && pin.moving == nil {
			delete(rt.sessions, id)
		}
	}
	rt.sessMu.Unlock()
}

func (rt *Router) probe(backend string) bool {
	req, err := http.NewRequest(http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return false
	}
	// The probe deadline rides on the request, not a context, so one
	// hung backend cannot stall the whole sweep past its own budget.
	c := *rt.client
	c.Timeout = rt.healthTimeout()
	resp, err := c.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Handler returns the router's HTTP surface: the schedule and session
// endpoints proxied by ownership, the drain admin endpoints, plus the
// router's own /healthz, /stats and /metrics. Paths it does not
// understand are 404s — the router never blind-forwards, because a
// request it cannot key would land on an arbitrary shard and quietly
// violate the one-trace-one-shard invariant.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schedule", rt.handleByTrace)
	mux.HandleFunc("POST /schedule/batch", rt.handleByTrace)
	mux.HandleFunc("POST /session", rt.handleSessionCreate)
	mux.HandleFunc("GET /session/{id}", rt.handleBySession)
	mux.HandleFunc("DELETE /session/{id}", rt.handleBySession)
	mux.HandleFunc("POST /session/{id}/delta", rt.handleBySession)
	mux.HandleFunc("POST /session/{id}/schedule", rt.handleBySession)
	mux.HandleFunc("POST /admin/drain", rt.handleDrain)
	mux.HandleFunc("POST /admin/undrain", rt.handleUndrain)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.Handle("GET /metrics", rt.reg.Handler())
	return mux
}

// routeInfo is what the router extracts from a schedule-class body: the
// ring key (the trace fingerprint, exactly the cache key every shard
// uses, which is what makes routing and caching agree), the request
// spec discriminator for coalescing, and the raw trace text for replica
// prefill bodies.
type routeInfo struct {
	key   []byte
	spec  string
	trace string
}

func routeKey(body []byte) (routeInfo, error) {
	var probe struct {
		Trace     string `json:"trace"`
		Algorithm string `json:"algorithm"`
		Capacity  int    `json:"capacity"`
		Verify    bool   `json:"verify"`
	}
	// Lenient decode: unknown fields are the backend's business; the
	// router only needs the trace and the coalescing discriminator.
	if err := json.Unmarshal(body, &probe); err != nil {
		return routeInfo{}, fmt.Errorf("cluster: unroutable body: %v", err)
	}
	if probe.Trace == "" {
		return routeInfo{}, errors.New("cluster: unroutable body: no trace field")
	}
	tr, err := trace.Decode(strings.NewReader(probe.Trace))
	if err != nil {
		return routeInfo{}, fmt.Errorf("cluster: unroutable body: %v", err)
	}
	fp := tr.Fingerprint()
	return routeInfo{
		key:   fp[:],
		spec:  fmt.Sprintf("%s|%d|%t", probe.Algorithm, probe.Capacity, probe.Verify),
		trace: probe.Trace,
	}, nil
}

func (rt *Router) handleByTrace(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	info, err := routeKey(body)
	if err != nil {
		rt.badRequests.Inc()
		routerError(w, http.StatusBadRequest, err.Error())
		return
	}

	if r.URL.Path == "/schedule" {
		res, ok := rt.coalescedForward(r, info, body)
		if !ok {
			return // client hung up while waiting on the leader
		}
		rt.writeResult(w, res)
		return
	}

	res := rt.forwardByKey(r.Context(), r, info.key, body)
	if res.rr != nil && res.rr.status/100 == 2 {
		rt.maybeFillReplicas(info, res.backend)
	}
	rt.writeResult(w, res)
}

// coalescedForward collapses identical in-flight single /schedule
// requests (same fingerprint, same algorithm/capacity/verify spec, same
// query string) into one upstream call. The first request becomes the
// leader and forwards; every request that arrives while the leader is
// in flight waits for the leader's response and relays the same bytes.
// The leader runs detached from its own client's context — followers
// need the response even if the leader's client disconnects. Returns
// ok=false when the caller's client hung up mid-wait.
func (rt *Router) coalescedForward(r *http.Request, info routeInfo, body []byte) (forwardResult, bool) {
	ck := string(info.key) + "\x00" + info.spec + "\x00" + r.URL.RawQuery
	rt.coalMu.Lock()
	if call, ok := rt.coalesce[ck]; ok {
		rt.coalMu.Unlock()
		rt.coalesced.Inc()
		select {
		case <-call.done:
			return call.res, true
		case <-r.Context().Done():
			return forwardResult{}, false
		}
	}
	call := &coalesceCall{done: make(chan struct{})}
	rt.coalesce[ck] = call
	rt.coalMu.Unlock()

	ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), coalesceLeaderTimeout)
	defer cancel()
	res := rt.forwardByKey(ctx, r, info.key, body)
	if res.rr != nil && res.rr.status/100 == 2 {
		rt.maybeFillReplicas(info, res.backend)
	}
	call.res = res
	rt.coalMu.Lock()
	delete(rt.coalesce, ck)
	rt.coalMu.Unlock()
	close(call.done)
	return res, true
}

func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	info, err := routeKey(body)
	if err != nil {
		rt.badRequests.Inc()
		routerError(w, http.StatusBadRequest, err.Error())
		return
	}
	res := rt.forwardByKey(r.Context(), r, info.key, body)
	if res.rr != nil && res.rr.status == http.StatusCreated {
		var created struct {
			SessionID string `json:"session_id"`
		}
		if json.Unmarshal(res.rr.body, &created) == nil && created.SessionID != "" {
			rt.pinSession(created.SessionID, res.backend)
		}
	}
	rt.writeResult(w, res)
}

func (rt *Router) handleBySession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	backend, ok := rt.sessionBackend(r.Context(), id)
	if !ok {
		routerError(w, http.StatusNotFound, "cluster: unknown session "+id)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	res := rt.sendResult(r.Context(), r.Method, backend, r.URL.Path, r.URL.RawQuery,
		r.Header.Get("Content-Type"), body, "")
	if res.rr == nil && res.connErr {
		// The pinned shard is gone, and the session's state with it:
		// eject now (which also drops this and its sibling pins) so the
		// next request gets a clean 404 instead of another doomed proxy.
		rt.eject(backend)
		res.errMsg = "cluster: session backend unreachable: " + res.errMsg
	}
	status := rt.writeResult(w, res)
	// Any 2xx DELETE means the shard no longer owns the session; a pin
	// that only fell on exactly 204 leaked an entry per deleted session.
	if r.Method == http.MethodDelete && status/100 == 2 {
		rt.unpinSession(id)
	}
}

// sessionBackend resolves a session pin, waiting out an in-flight drain
// migration (bounded by the request context). ok=false means the
// session is unknown — or vanished while migrating.
func (rt *Router) sessionBackend(ctx context.Context, id string) (string, bool) {
	for {
		rt.sessMu.Lock()
		pin, ok := rt.sessions[id]
		if !ok {
			rt.sessMu.Unlock()
			return "", false
		}
		backend, moving := pin.backend, pin.moving
		rt.sessMu.Unlock()
		if moving == nil {
			return backend, true
		}
		select {
		case <-moving:
		case <-ctx.Done():
			return "", false
		}
	}
}

func (rt *Router) pinSession(id, backend string) {
	rt.sessMu.Lock()
	rt.sessions[id] = &sessionPin{backend: backend}
	rt.sessMu.Unlock()
}

func (rt *Router) unpinSession(id string) {
	rt.sessMu.Lock()
	delete(rt.sessions, id)
	rt.sessMu.Unlock()
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBodyBytes()))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		rt.badRequests.Inc()
		routerError(w, status, "cluster: read request: "+err.Error())
		return nil, false
	}
	return body, true
}

// forwardResult is the outcome of one routed request: either a fully
// received backend response (rr set, backend naming who answered) or a
// router-generated error (errStatus/errMsg, with retryAfter for shed
// responses and connErr marking transport-level failures).
type forwardResult struct {
	rr         *relayedResponse
	backend    string
	errStatus  int
	errMsg     string
	retryAfter string
	connErr    bool
}

// forwardByKey resolves the key's owner and forwards, ejecting the
// owner and retrying once on the key's next owner — with replication,
// the replica that already holds the table — if the first connection
// fails. r supplies method, path, query and content type; ctx bounds
// the exchange (it is distinct from r.Context() for coalesced leaders).
func (rt *Router) forwardByKey(ctx context.Context, r *http.Request, key, body []byte) forwardResult {
	backend, ok := rt.ring.Owner(key)
	if !ok {
		rt.noBackend.Inc()
		return forwardResult{
			errStatus:  http.StatusServiceUnavailable,
			errMsg:     "cluster: no healthy backends",
			retryAfter: strconv.Itoa(int(rt.healthInterval().Seconds()) + 1),
		}
	}
	res := rt.sendResult(ctx, r.Method, backend, r.URL.Path, r.URL.RawQuery,
		r.Header.Get("Content-Type"), body, rt.peerHintFor(key, backend))
	if res.rr != nil || !res.connErr {
		return res
	}
	// The backend is unreachable: eject it now rather than waiting out
	// a health interval, then rerun ownership on the shrunken ring. The
	// request itself never reached a scheduler, so the retry cannot
	// double-execute anything.
	rt.eject(backend)
	next, ok := rt.ring.Owner(key)
	if ok && next != backend {
		rt.retries.Inc()
		res2 := rt.sendResult(ctx, r.Method, next, r.URL.Path, r.URL.RawQuery,
			r.Header.Get("Content-Type"), body, rt.peerHintFor(key, next))
		if res2.rr != nil || !res2.connErr {
			return res2
		}
		res = res2
	}
	rt.noBackend.Inc()
	return forwardResult{
		errStatus:  http.StatusServiceUnavailable,
		errMsg:     "cluster: backend unreachable: " + res.errMsg,
		retryAfter: strconv.Itoa(int(rt.healthInterval().Seconds()) + 1),
		connErr:    true,
	}
}

// peerHintFor names the backend that owned key before the current owner
// joined (equally: the one that inherits it if the owner leaves) — the
// most likely holder of the key's table after ring churn.
func (rt *Router) peerHintFor(key []byte, owner string) string {
	if !rt.cfg.PeerFill {
		return ""
	}
	peer, ok := rt.ring.OwnerExcluding(key, owner)
	if !ok {
		return ""
	}
	return peer
}

// maybeFillReplicas pushes the key's table toward its non-primary
// owners: for each replica that has not been filled yet, an async POST
// /table/prefill tells it to adopt the table from the shard that just
// served the request, over the same pimtab-v1 codec peer fill uses.
// Fills are deduplicated per (backend, fingerprint), forgotten when the
// backend is ejected (a crash-restarted process lost its cache), and
// never touch the request counters — they are the router's own
// background traffic, not routed load. Called before the response is
// relayed, so once a client has its answer the fill is at least in
// flight (WaitReplicaFills then makes tests deterministic).
func (rt *Router) maybeFillReplicas(info routeInfo, source string) {
	if !rt.cfg.PeerFill || rt.replication() < 2 || source == "" {
		return
	}
	owners := rt.ring.Owners(info.key, rt.replication())
	fp := fmt.Sprintf("%x", info.key)
	for _, o := range owners {
		if o == source {
			continue
		}
		k := o + "|" + fp
		rt.fillMu.Lock()
		_, filled := rt.fillFilled[k]
		_, inflight := rt.fillInflight[k]
		if filled || inflight {
			rt.fillMu.Unlock()
			continue
		}
		rt.fillInflight[k] = struct{}{}
		rt.fillPending++
		rt.fillMu.Unlock()
		go rt.fillReplica(k, o, source, info.trace)
	}
}

func (rt *Router) fillReplica(k, replica, source, traceText string) {
	err := rt.postPrefill(replica, source, traceText)
	rt.fillMu.Lock()
	delete(rt.fillInflight, k)
	if err == nil {
		rt.fillFilled[k] = struct{}{}
	}
	rt.fillPending--
	rt.fillCond.Broadcast()
	rt.fillMu.Unlock()
	if err == nil {
		rt.replicaFills.Inc()
	} else {
		rt.replicaFillErrs.Inc()
	}
}

func (rt *Router) postPrefill(replica, source, traceText string) error {
	body, err := json.Marshal(service.PrefillRequest{Trace: traceText})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), replicaFillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/table/prefill", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.PeerHintHeader, source)
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: prefill %s: status %d", replica, resp.StatusCode)
	}
	return nil
}

// forgetFills drops a backend's replica-fill completions so the fills
// re-run when it returns (a restarted process has an empty cache).
func (rt *Router) forgetFills(backend string) {
	prefix := backend + "|"
	rt.fillMu.Lock()
	for k := range rt.fillFilled {
		if strings.HasPrefix(k, prefix) {
			delete(rt.fillFilled, k)
		}
	}
	rt.fillMu.Unlock()
}

// WaitReplicaFills blocks until no replica fill is in flight. Tests use
// it to make the asynchronous fill path deterministic; Close uses it so
// a router never leaks fill goroutines past its own lifetime.
func (rt *Router) WaitReplicaFills() {
	rt.fillMu.Lock()
	for rt.fillPending > 0 {
		rt.fillCond.Wait()
	}
	rt.fillMu.Unlock()
}

// relayedResponse is one fully-received backend response: status plus
// the headers the router forwards and the buffered body. Buffering
// (rather than streaming) is deliberate — it pulls mid-stream
// connection cuts into send's error return where the retry logic can
// see them, and it lets the session-create hook and coalesced followers
// reuse the bytes.
type relayedResponse struct {
	status     int
	body       []byte
	contentTyp string
	retryAfter string
}

// sendResult wraps send into a forwardResult, classifying transport
// errors for the retry logic.
func (rt *Router) sendResult(ctx context.Context, method, backend, path, rawQuery, contentType string, body []byte, peer string) forwardResult {
	rr, err := rt.send(ctx, method, backend, path, rawQuery, contentType, body, peer)
	if err != nil {
		if isConnError(err) {
			return forwardResult{backend: backend, errStatus: http.StatusServiceUnavailable,
				errMsg: err.Error(), connErr: true}
		}
		return forwardResult{backend: backend, errStatus: http.StatusBadGateway,
			errMsg: "cluster: proxy: " + err.Error()}
	}
	return forwardResult{rr: rr, backend: backend}
}

// send issues one proxied request and reads the whole response. Any
// error — dial, send, or a connection cut mid-body — means no response,
// so isConnError on it decides retryability for the entire exchange.
func (rt *Router) send(ctx context.Context, method, backend, path, rawQuery, contentType string, body []byte, peer string) (*relayedResponse, error) {
	start := time.Now()
	url := backend + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if peer != "" {
		req.Header.Set(service.PeerHintHeader, peer)
		rt.peerHints.Inc()
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	rt.requests.Inc()
	rt.latency.ObserveDuration(time.Since(start))
	return &relayedResponse{
		status:     resp.StatusCode,
		body:       respBody,
		contentTyp: resp.Header.Get("Content-Type"),
		retryAfter: resp.Header.Get("Retry-After"),
	}, nil
}

// writeResult relays a forwardResult to the client and returns the
// status actually written.
func (rt *Router) writeResult(w http.ResponseWriter, res forwardResult) int {
	if res.rr == nil {
		if res.retryAfter != "" {
			w.Header().Set("Retry-After", res.retryAfter)
		}
		routerError(w, res.errStatus, res.errMsg)
		return res.errStatus
	}
	rr := res.rr
	if rr.contentTyp != "" {
		w.Header().Set("Content-Type", rr.contentTyp)
	}
	if rr.retryAfter != "" {
		w.Header().Set("Retry-After", rr.retryAfter)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(rr.body)))
	w.WriteHeader(rr.status)
	w.Write(rr.body)
	return rr.status
}

// handleDrain administratively removes a backend: its pinned sessions
// are exported, imported on their new owners, and deleted at the
// source before the backend leaves the ring's future — so unlike an
// ejection, a drain loses no session state. The drained mark keeps the
// health loop from readmitting the backend until an explicit undrain.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	backend, ok := rt.adminBackend(w, r)
	if !ok {
		return
	}
	rt.healthMu.Lock()
	rt.drained[backend] = struct{}{}
	rt.healthMu.Unlock()

	// Claim every settled pin on the backend: the moving gate parks
	// session requests until the migration lands, so no delta can slip
	// onto the old shard after its state was exported.
	type claim struct {
		id   string
		gate chan struct{}
	}
	var claims []claim
	rt.sessMu.Lock()
	for id, pin := range rt.sessions {
		if pin.backend == backend && pin.moving == nil {
			pin.moving = make(chan struct{})
			claims = append(claims, claim{id, pin.moving})
		}
	}
	rt.sessMu.Unlock()
	sort.Slice(claims, func(i, j int) bool { return claims[i].id < claims[j].id })

	// Leave the ring first: schedule keys fail over to their replicas
	// (which hold pushed tables) and no new session can pin here while
	// the migrations run.
	rt.ring.Remove(backend)
	rt.drains.Inc()

	migrated, failed := 0, 0
	for _, c := range claims {
		dst, err := rt.migrateSession(r.Context(), c.id, backend)
		rt.sessMu.Lock()
		if pin, ok := rt.sessions[c.id]; ok {
			if err != nil {
				delete(rt.sessions, c.id)
			} else {
				pin.backend = dst
				pin.moving = nil
			}
		}
		rt.sessMu.Unlock()
		close(c.gate)
		if err != nil {
			failed++
		} else {
			migrated++
			rt.sessionsMigrated.Inc()
		}
	}
	routerJSON(w, http.StatusOK, map[string]any{
		"backend":  backend,
		"migrated": migrated,
		"failed":   failed,
	})
}

// migrateSession moves one session off src: export the serialized state
// (materialized trace, fingerprint chain head, patched table), import
// it on the session's new owner, then delete the source copy. Returns
// the destination backend.
func (rt *Router) migrateSession(ctx context.Context, id, src string) (string, error) {
	dst, ok := rt.ring.Owner([]byte(id))
	if !ok {
		return "", errors.New("no backend left to migrate to")
	}
	exp, err := rt.send(ctx, http.MethodPost, src, "/session/"+id+"/export", "", "", nil, "")
	if err != nil {
		return "", fmt.Errorf("export: %w", err)
	}
	if exp.status != http.StatusOK {
		return "", fmt.Errorf("export: status %d: %.200s", exp.status, exp.body)
	}
	imp, err := rt.send(ctx, http.MethodPost, dst, "/session/import", "", "application/json", exp.body, "")
	if err != nil {
		return "", fmt.Errorf("import on %s: %w", dst, err)
	}
	if imp.status != http.StatusCreated {
		return "", fmt.Errorf("import on %s: status %d: %.200s", dst, imp.status, imp.body)
	}
	// Best effort: the drained shard is leaving anyway, but deleting
	// now frees its MaxSessions slot and makes double-export impossible.
	rt.send(ctx, http.MethodDelete, src, "/session/"+id, "", "", nil, "")
	return dst, nil
}

// handleUndrain clears a backend's drained mark; the health loop
// readmits it after the usual consecutive passing probes.
func (rt *Router) handleUndrain(w http.ResponseWriter, r *http.Request) {
	backend, ok := rt.adminBackend(w, r)
	if !ok {
		return
	}
	rt.healthMu.Lock()
	delete(rt.drained, backend)
	rt.healthMu.Unlock()
	routerJSON(w, http.StatusOK, map[string]any{"backend": backend, "drained": false})
}

// adminBackend validates the ?backend= parameter of an admin endpoint
// against the configured fleet.
func (rt *Router) adminBackend(w http.ResponseWriter, r *http.Request) (string, bool) {
	backend := strings.TrimRight(r.URL.Query().Get("backend"), "/")
	if backend == "" {
		routerError(w, http.StatusBadRequest, "cluster: missing ?backend= parameter")
		return "", false
	}
	for _, b := range rt.cfg.Backends {
		if strings.TrimRight(b, "/") == backend {
			return backend, true
		}
	}
	routerError(w, http.StatusNotFound, "cluster: unknown backend "+backend)
	return "", false
}

// isConnError reports whether err means the request never got a
// response — dial refused, connection reset, or the wire cut mid-reply
// — the class where the backend did no (visible) work and a retry on
// another shard is safe for pure compute.
func isConnError(err error) bool {
	var opErr *net.OpError
	return errors.As(err, &opErr) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.ring.Len() == 0 {
		routerError(w, http.StatusServiceUnavailable, "cluster: no healthy backends")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// RouterStats is the /stats snapshot.
type RouterStats struct {
	Backends            []string `json:"backends"`
	Healthy             []string `json:"healthy"`
	Drained             []string `json:"drained,omitempty"`
	Replication         int      `json:"replication"`
	Requests            uint64   `json:"requests"`
	BadRequests         uint64   `json:"bad_requests"`
	Retries             uint64   `json:"retries"`
	Ejections           uint64   `json:"ejections"`
	Readmissions        uint64   `json:"readmissions"`
	NoBackend           uint64   `json:"no_backend"`
	PeerHints           uint64   `json:"peer_hints"`
	Coalesced           uint64   `json:"coalesced"`
	ReplicaFills        uint64   `json:"replica_fills"`
	ReplicaFillErrors   uint64   `json:"replica_fill_errors"`
	ReplicaFillsPending int      `json:"replica_fills_pending"`
	Drains              uint64   `json:"drains"`
	SessionsMigrated    uint64   `json:"sessions_migrated"`
	SessionsPinned      int      `json:"sessions_pinned"`
}

// Stats snapshots the router's counters.
func (rt *Router) Stats() RouterStats {
	rt.sessMu.Lock()
	pinned := len(rt.sessions)
	rt.sessMu.Unlock()
	rt.fillMu.Lock()
	pending := rt.fillPending
	rt.fillMu.Unlock()
	rt.healthMu.Lock()
	drained := make([]string, 0, len(rt.drained))
	for b := range rt.drained {
		drained = append(drained, b)
	}
	rt.healthMu.Unlock()
	sort.Strings(drained)
	known := make([]string, len(rt.cfg.Backends))
	for i, b := range rt.cfg.Backends {
		known[i] = strings.TrimRight(b, "/")
	}
	return RouterStats{
		Backends:            known,
		Healthy:             rt.ring.Members(),
		Drained:             drained,
		Replication:         rt.replication(),
		Requests:            rt.requests.Value(),
		BadRequests:         rt.badRequests.Value(),
		Retries:             rt.retries.Value(),
		Ejections:           rt.ejections.Value(),
		Readmissions:        rt.readmissions.Value(),
		NoBackend:           rt.noBackend.Value(),
		PeerHints:           rt.peerHints.Value(),
		Coalesced:           rt.coalesced.Value(),
		ReplicaFills:        rt.replicaFills.Value(),
		ReplicaFillErrors:   rt.replicaFillErrs.Value(),
		ReplicaFillsPending: pending,
		Drains:              rt.drains.Value(),
		SessionsMigrated:    rt.sessionsMigrated.Value(),
		SessionsPinned:      pinned,
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rt.Stats())
}

func routerError(w http.ResponseWriter, status int, msg string) {
	routerJSON(w, status, map[string]string{"error": msg})
}

func routerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
