package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/trace"
)

// Defaults for RouterConfig fields left zero.
const (
	DefaultHealthInterval = 2 * time.Second
	DefaultHealthTimeout  = 500 * time.Millisecond
	DefaultRouterMaxBody  = 32 << 20
)

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Backends are the base URLs of the pimserve fleet (e.g.
	// "http://10.0.0.3:8080"). All start as ring members; health checks
	// eject and readmit them afterwards.
	Backends []string

	// Replicas is the ring's virtual-node count per backend; <= 0 means
	// DefaultReplicas.
	Replicas int

	// PeerFill attaches an X-Pim-Peer hint to proxied schedule
	// requests, naming the ring's previous owner of the key, so a shard
	// that inherited the key after churn can adopt that peer's cached
	// table instead of rebuilding it.
	PeerFill bool

	// HealthInterval spaces background health sweeps; 0 means
	// DefaultHealthInterval, < 0 disables the background loop (tests
	// drive CheckHealth directly).
	HealthInterval time.Duration

	// HealthTimeout bounds one backend probe; <= 0 means
	// DefaultHealthTimeout.
	HealthTimeout time.Duration

	// MaxBodyBytes bounds a routed request body; <= 0 means
	// DefaultRouterMaxBody.
	MaxBodyBytes int64

	// Client issues proxied requests and health probes; nil means a
	// dedicated client with sane connection pooling.
	Client *http.Client
}

// Router shards schedule traffic across a pimserve fleet by trace
// fingerprint. One trace always lands on one shard, so each residence
// table is built once fleet-wide and every shard's cache stays disjoint.
// Session traffic is pinned to the shard that created the session.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client

	sessMu   sync.Mutex
	sessions map[string]string // session id -> backend base URL

	reg          *obs.Registry
	requests     *obs.Counter
	badRequests  *obs.Counter
	retries      *obs.Counter
	ejections    *obs.Counter
	readmissions *obs.Counter
	noBackend    *obs.Counter
	peerHints    *obs.Counter
	latency      *obs.Histogram

	stop     chan struct{}
	loopDone chan struct{}
}

// NewRouter builds a router over the configured fleet and, unless
// disabled, starts its health loop. Close releases it.
func NewRouter(cfg RouterConfig) *Router {
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.Replicas),
		client:   cfg.Client,
		sessions: make(map[string]string),
		reg:      obs.NewRegistry(),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	for _, b := range cfg.Backends {
		rt.ring.Add(strings.TrimRight(b, "/"))
	}

	rt.requests = rt.reg.Counter("pim_router_requests_total", "Requests routed to a backend.")
	rt.badRequests = rt.reg.Counter("pim_router_bad_requests_total", "Requests rejected before routing (unroutable body).")
	rt.retries = rt.reg.Counter("pim_router_retries_total", "Proxied requests retried on a second backend after a connection error.")
	rt.ejections = rt.reg.Counter("pim_router_ejections_total", "Backends ejected from the ring (health check or connection error).")
	rt.readmissions = rt.reg.Counter("pim_router_readmissions_total", "Ejected backends readmitted by a passing health check.")
	rt.noBackend = rt.reg.Counter("pim_router_no_backend_total", "Requests failed 503 because the ring was empty.")
	rt.peerHints = rt.reg.Counter("pim_router_peer_hints_total", "Schedule requests forwarded with a peer cache-fill hint.")
	rt.latency = rt.reg.Histogram("pim_router_request_duration_seconds",
		"End-to-end latency of proxied requests.", obs.LatencyBuckets)
	rt.reg.GaugeFunc("pim_router_backends_healthy", "Ring members currently routable.",
		func() float64 { return float64(rt.ring.Len()) })
	rt.reg.GaugeFunc("pim_router_backends_known", "Backends configured, healthy or not.",
		func() float64 { return float64(len(rt.cfg.Backends)) })
	rt.reg.GaugeFunc("pim_router_sessions_pinned", "Sessions currently pinned to a backend.",
		func() float64 {
			rt.sessMu.Lock()
			defer rt.sessMu.Unlock()
			return float64(len(rt.sessions))
		})

	if cfg.HealthInterval >= 0 {
		go rt.healthLoop()
	} else {
		close(rt.loopDone)
	}
	return rt
}

// Close stops the health loop. In-flight proxied requests finish on
// their own; the router holds no other resources.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	<-rt.loopDone
}

// Ring exposes the live membership view, mainly for tests and /stats.
func (rt *Router) Ring() *Ring { return rt.ring }

func (rt *Router) healthInterval() time.Duration {
	if rt.cfg.HealthInterval == 0 {
		return DefaultHealthInterval
	}
	return rt.cfg.HealthInterval
}

func (rt *Router) healthTimeout() time.Duration {
	if rt.cfg.HealthTimeout <= 0 {
		return DefaultHealthTimeout
	}
	return rt.cfg.HealthTimeout
}

func (rt *Router) maxBodyBytes() int64 {
	if rt.cfg.MaxBodyBytes <= 0 {
		return DefaultRouterMaxBody
	}
	return rt.cfg.MaxBodyBytes
}

func (rt *Router) healthLoop() {
	defer close(rt.loopDone)
	t := time.NewTicker(rt.healthInterval())
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckHealth()
		}
	}
}

// CheckHealth probes every configured backend's /healthz once, ejecting
// failures from the ring and readmitting recoveries. It is the only
// path back into the ring after an ejection.
func (rt *Router) CheckHealth() {
	for _, b := range rt.cfg.Backends {
		backend := strings.TrimRight(b, "/")
		healthy := rt.probe(backend)
		switch {
		case healthy && !rt.ring.Has(backend):
			rt.ring.Add(backend)
			rt.readmissions.Inc()
		case !healthy && rt.ring.Has(backend):
			rt.ring.Remove(backend)
			rt.ejections.Inc()
		}
	}
}

func (rt *Router) probe(backend string) bool {
	req, err := http.NewRequest(http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return false
	}
	// The probe deadline rides on the request, not a context, so one
	// hung backend cannot stall the whole sweep past its own budget.
	c := *rt.client
	c.Timeout = rt.healthTimeout()
	resp, err := c.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Handler returns the router's HTTP surface: the schedule and session
// endpoints proxied by ownership, plus the router's own /healthz,
// /stats and /metrics. Paths it does not understand are 404s — the
// router never blind-forwards, because a request it cannot key would
// land on an arbitrary shard and quietly violate the one-trace-one-
// shard invariant.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schedule", rt.handleByTrace)
	mux.HandleFunc("POST /schedule/batch", rt.handleByTrace)
	mux.HandleFunc("POST /session", rt.handleSessionCreate)
	mux.HandleFunc("GET /session/{id}", rt.handleBySession)
	mux.HandleFunc("DELETE /session/{id}", rt.handleBySession)
	mux.HandleFunc("POST /session/{id}/delta", rt.handleBySession)
	mux.HandleFunc("POST /session/{id}/schedule", rt.handleBySession)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.Handle("GET /metrics", rt.reg.Handler())
	return mux
}

// routeKey extracts the trace from a schedule-class body and returns
// the ring key it hashes to: the trace fingerprint, exactly the cache
// key every shard uses, which is what makes routing and caching agree.
func routeKey(body []byte) ([]byte, error) {
	var probe struct {
		Trace string `json:"trace"`
	}
	// Lenient decode: unknown fields are the backend's business; the
	// router only needs the trace.
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, fmt.Errorf("cluster: unroutable body: %v", err)
	}
	if probe.Trace == "" {
		return nil, errors.New("cluster: unroutable body: no trace field")
	}
	tr, err := trace.Decode(strings.NewReader(probe.Trace))
	if err != nil {
		return nil, fmt.Errorf("cluster: unroutable body: %v", err)
	}
	fp := tr.Fingerprint()
	return fp[:], nil
}

func (rt *Router) handleByTrace(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	key, err := routeKey(body)
	if err != nil {
		rt.badRequests.Inc()
		routerError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.proxyByKey(w, r, key, body, nil)
}

func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	key, err := routeKey(body)
	if err != nil {
		rt.badRequests.Inc()
		routerError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.proxyByKey(w, r, key, body, func(backend string, status int, respBody []byte) {
		if status != http.StatusCreated {
			return
		}
		var info struct {
			SessionID string `json:"session_id"`
		}
		if json.Unmarshal(respBody, &info) == nil && info.SessionID != "" {
			rt.pinSession(info.SessionID, backend)
		}
	})
}

func (rt *Router) handleBySession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	backend, ok := rt.lookupSession(id)
	if !ok {
		routerError(w, http.StatusNotFound, "cluster: unknown session "+id)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	status := rt.proxyTo(w, r, backend, body, "")
	if r.Method == http.MethodDelete && status == http.StatusNoContent {
		rt.unpinSession(id)
	}
}

func (rt *Router) pinSession(id, backend string) {
	rt.sessMu.Lock()
	rt.sessions[id] = backend
	rt.sessMu.Unlock()
}

func (rt *Router) unpinSession(id string) {
	rt.sessMu.Lock()
	delete(rt.sessions, id)
	rt.sessMu.Unlock()
}

func (rt *Router) lookupSession(id string) (string, bool) {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	b, ok := rt.sessions[id]
	return b, ok
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBodyBytes()))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		rt.badRequests.Inc()
		routerError(w, status, "cluster: read request: "+err.Error())
		return nil, false
	}
	return body, true
}

// proxyByKey resolves the key's owner and forwards, retrying once on a
// fresh owner if the first connection fails. onResponse, when set, sees
// the backend and response of the attempt that got through.
func (rt *Router) proxyByKey(w http.ResponseWriter, r *http.Request, key, body []byte, onResponse func(backend string, status int, respBody []byte)) {
	backend, ok := rt.ring.Owner(key)
	if !ok {
		rt.noBackend.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(rt.healthInterval().Seconds())+1))
		routerError(w, http.StatusServiceUnavailable, "cluster: no healthy backends")
		return
	}
	peer := rt.peerHintFor(key, backend)
	rt.proxyAttempt(w, r, backend, key, body, peer, onResponse, true)
}

// peerHintFor names the backend that owned key before the current owner
// joined (equally: the one that inherits it if the owner leaves) — the
// most likely holder of the key's table after ring churn.
func (rt *Router) peerHintFor(key []byte, owner string) string {
	if !rt.cfg.PeerFill {
		return ""
	}
	peer, ok := rt.ring.OwnerExcluding(key, owner)
	if !ok {
		return ""
	}
	return peer
}

func (rt *Router) proxyAttempt(w http.ResponseWriter, r *http.Request, backend string, key, body []byte, peer string, onResponse func(string, int, []byte), mayRetry bool) {
	rr, err := rt.send(r, backend, body, peer)
	if err != nil {
		if mayRetry && isConnError(err) {
			// The backend is unreachable: eject it now rather than
			// waiting out a health interval, then rerun ownership on
			// the shrunken ring. The request itself never reached a
			// scheduler, so the retry cannot double-execute anything.
			if rt.ring.Has(backend) {
				rt.ring.Remove(backend)
				rt.ejections.Inc()
			}
			next, ok := rt.ring.Owner(key)
			if ok && next != backend {
				rt.retries.Inc()
				rt.proxyAttempt(w, r, next, key, body, rt.peerHintFor(key, next), onResponse, false)
				return
			}
		}
		if isConnError(err) {
			rt.noBackend.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(rt.healthInterval().Seconds())+1))
			routerError(w, http.StatusServiceUnavailable, "cluster: backend unreachable: "+err.Error())
			return
		}
		routerError(w, http.StatusBadGateway, "cluster: proxy: "+err.Error())
		return
	}
	rt.relay(w, rr, onResponse, backend)
}

// proxyTo forwards to a fixed backend (session traffic; the pin, not
// the ring, owns placement) and returns the relayed status, or 0 when
// the backend could not be reached.
func (rt *Router) proxyTo(w http.ResponseWriter, r *http.Request, backend string, body []byte, peer string) int {
	rr, err := rt.send(r, backend, body, peer)
	if err != nil {
		if isConnError(err) {
			routerError(w, http.StatusServiceUnavailable, "cluster: session backend unreachable: "+err.Error())
		} else {
			routerError(w, http.StatusBadGateway, "cluster: proxy: "+err.Error())
		}
		return 0
	}
	return rt.relay(w, rr, nil, backend)
}

// relayedResponse is one fully-received backend response: status plus
// the headers the router forwards and the buffered body. Buffering
// (rather than streaming) is deliberate — it pulls mid-stream
// connection cuts into send's error return where the retry logic can
// see them, and it lets the session-create hook parse what it forwards.
type relayedResponse struct {
	status     int
	body       []byte
	contentTyp string
	retryAfter string
}

// send issues one proxied request and reads the whole response. Any
// error — dial, send, or a connection cut mid-body — means no response,
// so isConnError on it decides retryability for the entire exchange.
func (rt *Router) send(r *http.Request, backend string, body []byte, peer string) (*relayedResponse, error) {
	start := time.Now()
	url := backend + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if peer != "" {
		req.Header.Set(service.PeerHintHeader, peer)
		rt.peerHints.Inc()
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	rt.requests.Inc()
	rt.latency.ObserveDuration(time.Since(start))
	return &relayedResponse{
		status:     resp.StatusCode,
		body:       respBody,
		contentTyp: resp.Header.Get("Content-Type"),
		retryAfter: resp.Header.Get("Retry-After"),
	}, nil
}

func (rt *Router) relay(w http.ResponseWriter, rr *relayedResponse, onResponse func(string, int, []byte), backend string) int {
	if onResponse != nil {
		onResponse(backend, rr.status, rr.body)
	}
	if rr.contentTyp != "" {
		w.Header().Set("Content-Type", rr.contentTyp)
	}
	if rr.retryAfter != "" {
		w.Header().Set("Retry-After", rr.retryAfter)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(rr.body)))
	w.WriteHeader(rr.status)
	w.Write(rr.body)
	return rr.status
}

// isConnError reports whether err means the request never got a
// response — dial refused, connection reset, or the wire cut mid-reply
// — the class where the backend did no (visible) work and a retry on
// another shard is safe for pure compute.
func isConnError(err error) bool {
	var opErr *net.OpError
	return errors.As(err, &opErr) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.ring.Len() == 0 {
		routerError(w, http.StatusServiceUnavailable, "cluster: no healthy backends")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// RouterStats is the /stats snapshot.
type RouterStats struct {
	Backends       []string `json:"backends"`
	Healthy        []string `json:"healthy"`
	Requests       uint64   `json:"requests"`
	BadRequests    uint64   `json:"bad_requests"`
	Retries        uint64   `json:"retries"`
	Ejections      uint64   `json:"ejections"`
	Readmissions   uint64   `json:"readmissions"`
	NoBackend      uint64   `json:"no_backend"`
	PeerHints      uint64   `json:"peer_hints"`
	SessionsPinned int      `json:"sessions_pinned"`
}

// Stats snapshots the router's counters.
func (rt *Router) Stats() RouterStats {
	rt.sessMu.Lock()
	pinned := len(rt.sessions)
	rt.sessMu.Unlock()
	known := make([]string, len(rt.cfg.Backends))
	for i, b := range rt.cfg.Backends {
		known[i] = strings.TrimRight(b, "/")
	}
	return RouterStats{
		Backends:       known,
		Healthy:        rt.ring.Members(),
		Requests:       rt.requests.Value(),
		BadRequests:    rt.badRequests.Value(),
		Retries:        rt.retries.Value(),
		Ejections:      rt.ejections.Value(),
		Readmissions:   rt.readmissions.Value(),
		NoBackend:      rt.noBackend.Value(),
		PeerHints:      rt.peerHints.Value(),
		SessionsPinned: pinned,
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rt.Stats())
}

func routerError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
