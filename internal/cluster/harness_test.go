package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Cluster harness: a router over N real service.Service instances on
// real listeners, with backends that can be killed and restarted on the
// same address mid-stream. The tests below are the cluster's referee:
// whatever path a request takes — routed, batched, peer-filled,
// retried around a dying shard — the bytes that matter in the response
// must equal a single-node serial run, and the fleet must never build
// the same residence table twice while the ring is stable.
// ---------------------------------------------------------------------

// restartableBackend is one shard whose process can "die" (hard-close,
// dropping live connections) and come back on the same address with an
// empty cache, like a real crash-restart.
type restartableBackend struct {
	cfg  service.Config
	addr string

	mu  sync.Mutex
	svc *service.Service
	srv *http.Server
	// retired services stay alive for stats: tables built by a previous
	// incarnation still count toward fleet totals.
	retired []*service.Service
}

func newRestartableBackend(t testing.TB, cfg service.Config) *restartableBackend {
	t.Helper()
	b := &restartableBackend{cfg: cfg}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.addr = ln.Addr().String()
	b.serveOn(ln)
	t.Cleanup(func() { b.kill() })
	return b
}

func (b *restartableBackend) serveOn(ln net.Listener) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.svc = service.New(b.cfg)
	b.srv = &http.Server{Handler: b.svc.Handler()}
	go b.srv.Serve(ln)
}

func (b *restartableBackend) url() string { return "http://" + b.addr }

// kill hard-closes the listener and every live connection; in-flight
// requests are cut mid-stream, exactly like a crash.
func (b *restartableBackend) kill() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.srv == nil {
		return
	}
	b.srv.Close()
	b.srv = nil
	// Hand the service over to retired and clear the live slot, or
	// stats() would count the dead incarnation twice until a restart.
	b.retired = append(b.retired, b.svc)
	b.svc = nil
}

// restart rebinds the same address with a fresh service — empty cache,
// zeroed counters — as a crash-restarted process would.
func (b *restartableBackend) restart(t testing.TB) {
	t.Helper()
	var ln net.Listener
	var err error
	// The old listener's port can sit in TIME_WAIT briefly; rebinding
	// the identical address is the whole point, so spin for it.
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", b.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", b.addr, err)
	}
	b.serveOn(ln)
}

// fleetStats sums a counter over every incarnation of every backend.
func (b *restartableBackend) stats() []service.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []service.Stats
	if b.svc != nil {
		out = append(out, b.svc.Stats())
	}
	for _, s := range b.retired {
		out = append(out, s.Stats())
	}
	return out
}

type clusterHarness struct {
	backends []*restartableBackend
	router   *Router
	ts       *httptest.Server
	client   *http.Client
}

func newClusterHarness(t testing.TB, numBackends int, healthInterval time.Duration) *clusterHarness {
	t.Helper()
	fill := NewPeerFill(nil, 0)
	h := &clusterHarness{}
	urls := make([]string, numBackends)
	for i := 0; i < numBackends; i++ {
		b := newRestartableBackend(t, service.Config{PeerFill: fill, PeerFillTimeout: 250 * time.Millisecond})
		h.backends = append(h.backends, b)
		urls[i] = b.url()
	}
	h.router = NewRouter(RouterConfig{
		Backends:       urls,
		PeerFill:       true,
		HealthInterval: healthInterval,
		HealthTimeout:  250 * time.Millisecond,
	})
	h.ts = httptest.NewServer(h.router.Handler())
	h.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	t.Cleanup(func() {
		h.ts.Close()
		h.router.Close()
		h.client.CloseIdleConnections()
	})
	return h
}

func (h *clusterHarness) fleetBuilt() uint64 {
	var n uint64
	for _, b := range h.backends {
		for _, st := range b.stats() {
			n += st.TablesBuilt
		}
	}
	return n
}

func (h *clusterHarness) fleetPeerFills() uint64 {
	var n uint64
	for _, b := range h.backends {
		for _, st := range b.stats() {
			n += st.PeerFills
		}
	}
	return n
}

// reference answers, computed once on a single node, serially.
type refKey struct {
	trace int
	algo  string
	cap   int
}

type refAnswer struct {
	centers [][]int
	cost    service.CostJSON
	fp      string
}

var harnessSpecs = []struct {
	algo string
	cap  int
}{
	{"scds", 0},
	{"gomcds", 100},
	{"lomcds", 100},
}

func buildReferences(t testing.TB, numTraces int, traceFn func(testing.TB, int) string) map[refKey]refAnswer {
	t.Helper()
	single := service.New(service.Config{CacheSize: numTraces + 1})
	defer single.Close()
	refs := make(map[refKey]refAnswer)
	for i := 0; i < numTraces; i++ {
		for _, spec := range harnessSpecs {
			resp, err := single.Schedule(context.Background(), service.Request{
				Trace: traceFn(t, i), Algorithm: spec.algo, Capacity: spec.cap,
			})
			if err != nil {
				t.Fatalf("reference trace %d %s: %v", i, spec.algo, err)
			}
			refs[refKey{i, spec.algo, spec.cap}] = refAnswer{
				centers: resp.Centers, cost: resp.Cost, fp: resp.Fingerprint,
			}
		}
	}
	return refs
}

func checkAgainstRef(refs map[refKey]refAnswer, k refKey, fp string, centers [][]int, cost service.CostJSON) error {
	want, ok := refs[k]
	if !ok {
		return fmt.Errorf("no reference for %+v", k)
	}
	if fp != want.fp {
		return fmt.Errorf("%+v: fingerprint %s, reference %s", k, fp, want.fp)
	}
	if !reflect.DeepEqual(centers, want.centers) {
		return fmt.Errorf("%+v: centers diverge from single-node run", k)
	}
	if cost != want.cost {
		return fmt.Errorf("%+v: cost %+v, reference %+v", k, cost, want.cost)
	}
	return nil
}

// retryingPost retries shed-class responses (503 empty ring during
// churn, 429 overload) and transport errors; anything else is final.
// It returns the final status and body.
func retryingPost(client *http.Client, url string, body []byte) (int, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < 60; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			// The router itself stays up; a transport error here is
			// connection churn under load. Back off and retry.
			lastErr = err
			time.Sleep(25 * time.Millisecond)
			continue
		}
		data, err := readAllAndClose(resp)
		if err != nil {
			lastErr = err
			time.Sleep(25 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			lastErr = fmt.Errorf("status %d: %s", resp.StatusCode, data)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		return resp.StatusCode, data, nil
	}
	return 0, nil, fmt.Errorf("request never settled: %v", lastErr)
}

func readAllAndClose(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestClusterDifferential is the core harness check on a stable fleet:
// every routed single request and every batched request answers
// bit-identically to the single-node serial reference, and the fleet
// builds exactly one table per distinct trace — routing, caching, and
// batching never disagree about who owns what.
func TestClusterDifferential(t *testing.T) {
	const numTraces = 12
	h := newClusterHarness(t, 3, -1) // stable ring; no health loop needed
	refs := buildReferences(t, numTraces, clusterTrace)

	// Singles, twice over (second round must be all cache hits).
	for round := 0; round < 2; round++ {
		for i := 0; i < numTraces; i++ {
			for _, spec := range harnessSpecs {
				body, _ := json.Marshal(service.Request{
					Trace: clusterTrace(t, i), Algorithm: spec.algo, Capacity: spec.cap,
				})
				status, data, err := retryingPost(h.client, h.ts.URL+"/schedule", body)
				if err != nil || status != http.StatusOK {
					t.Fatalf("trace %d %s: status %d err %v: %s", i, spec.algo, status, err, data)
				}
				var resp service.Response
				if err := json.Unmarshal(data, &resp); err != nil {
					t.Fatal(err)
				}
				if err := checkAgainstRef(refs, refKey{i, spec.algo, spec.cap}, resp.Fingerprint, resp.Centers, resp.Cost); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Batches: all specs for a trace in one request.
	specs := make([]service.BatchSpec, len(harnessSpecs))
	for j, s := range harnessSpecs {
		specs[j] = service.BatchSpec{Algorithm: s.algo, Capacity: s.cap}
	}
	for i := 0; i < numTraces; i++ {
		body, _ := json.Marshal(service.BatchRequest{Trace: clusterTrace(t, i), Requests: specs})
		status, data, err := retryingPost(h.client, h.ts.URL+"/schedule/batch", body)
		if err != nil || status != http.StatusOK {
			t.Fatalf("batch trace %d: status %d err %v: %s", i, status, err, data)
		}
		var resp service.BatchResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Responses) != len(specs) {
			t.Fatalf("batch trace %d: %d responses for %d specs", i, len(resp.Responses), len(specs))
		}
		for j, item := range resp.Responses {
			if item.Error != "" || item.Response == nil {
				t.Fatalf("batch trace %d spec %d: %+v", i, j, item)
			}
			k := refKey{i, harnessSpecs[j].algo, harnessSpecs[j].cap}
			if err := checkAgainstRef(refs, k, resp.Fingerprint, item.Response.Centers, item.Response.Cost); err != nil {
				t.Fatal(err)
			}
		}
	}

	if built := h.fleetBuilt(); built != numTraces {
		t.Fatalf("fleet tables_built = %d, want %d (one per distinct trace)", built, numTraces)
	}
}

// loadTrace generates small distinct traces for the load variant: the
// point there is request volume through the router, not per-spec DP
// weight, so traces stay small enough that 100k specs finish under
// -race in test-suite time.
func loadTrace(t testing.TB, i int) string {
	t.Helper()
	gen, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, gen.Generate(3+i%4, grid.Square(2+(i/4)%2))); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestClusterLoad is the load variant: concurrent workers push 100k+
// scheduling requests (singles and batches) through the router under
// -race while one backend is killed and restarted mid-stream. Every
// request must end in a 200 whose payload matches the single-node
// reference, or in a shed-class response the client retried — never in
// a non-retried error. Under -short the volume drops ~50x but the
// kill/restart choreography is identical.
func TestClusterLoad(t *testing.T) {
	numTraces := 8 // loadTrace yields 8 distinct (n, grid) shapes
	workers := 8
	batchesPerWorker := 125 // x100 specs = 100k specs fleet-wide
	singlesPerWorker := 250
	if testing.Short() {
		batchesPerWorker = 3
		singlesPerWorker = 20
	}
	const specsPerBatch = 100

	h := newClusterHarness(t, 3, 25*time.Millisecond)
	refs := buildReferences(t, numTraces, loadTrace)

	specs := make([]service.BatchSpec, specsPerBatch)
	for j := range specs {
		s := harnessSpecs[j%len(harnessSpecs)]
		specs[j] = service.BatchSpec{Algorithm: s.algo, Capacity: s.cap}
	}

	var totalSpecs, totalRequests atomic.Uint64
	var progress atomic.Uint64
	totalWork := uint64(workers * (batchesPerWorker + singlesPerWorker))
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < batchesPerWorker+singlesPerWorker; n++ {
				ti := (w*31 + n*7) % numTraces
				if n < batchesPerWorker {
					body, _ := json.Marshal(service.BatchRequest{Trace: loadTrace(t, ti), Requests: specs})
					status, data, err := retryingPost(h.client, h.ts.URL+"/schedule/batch", body)
					if err != nil || status != http.StatusOK {
						errc <- fmt.Errorf("worker %d batch %d: status %d err %v: %.200s", w, n, status, err, data)
						return
					}
					var resp service.BatchResponse
					if err := json.Unmarshal(data, &resp); err != nil {
						errc <- err
						return
					}
					for j, item := range resp.Responses {
						if item.Error != "" || item.Response == nil {
							errc <- fmt.Errorf("worker %d batch %d spec %d: %+v", w, n, j, item)
							return
						}
						k := refKey{ti, specs[j].Algorithm, specs[j].Capacity}
						if err := checkAgainstRef(refs, k, resp.Fingerprint, item.Response.Centers, item.Response.Cost); err != nil {
							errc <- err
							return
						}
					}
					totalSpecs.Add(specsPerBatch)
					totalRequests.Add(1)
				} else {
					spec := harnessSpecs[n%len(harnessSpecs)]
					body, _ := json.Marshal(service.Request{Trace: loadTrace(t, ti), Algorithm: spec.algo, Capacity: spec.cap})
					status, data, err := retryingPost(h.client, h.ts.URL+"/schedule", body)
					if err != nil || status != http.StatusOK {
						errc <- fmt.Errorf("worker %d single %d: status %d err %v: %.200s", w, n, status, err, data)
						return
					}
					var resp service.Response
					if err := json.Unmarshal(data, &resp); err != nil {
						errc <- err
						return
					}
					if err := checkAgainstRef(refs, refKey{ti, spec.algo, spec.cap}, resp.Fingerprint, resp.Centers, resp.Cost); err != nil {
						errc <- err
						return
					}
					totalSpecs.Add(1)
					totalRequests.Add(1)
				}
				progress.Add(1)
			}
		}(w)
	}

	// Kill backend 1 once the stream is ~20% through, hold it down for
	// a few health intervals, then restart it and let readmission pull
	// keys back (exercising peer fill on the way).
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		for progress.Load() < totalWork/5 {
			time.Sleep(5 * time.Millisecond)
		}
		h.backends[1].kill()
		time.Sleep(250 * time.Millisecond)
		h.backends[1].restart(t)
	}()

	wg.Wait()
	<-killDone
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	wantSpecs := uint64(workers * (batchesPerWorker*specsPerBatch + singlesPerWorker))
	if got := totalSpecs.Load(); got != wantSpecs {
		t.Fatalf("completed %d specs, want %d", got, wantSpecs)
	}
	if !testing.Short() && wantSpecs < 100_000 {
		t.Fatalf("load variant sized at %d specs, spec requires 100k+", wantSpecs)
	}

	// Every build beyond one-per-trace must be explained by the crash:
	// the dead incarnation's tables died with it, and the restarted
	// shard either re-adopted them from peers (peer_fills) or rebuilt.
	built := h.fleetBuilt()
	if built < uint64(numTraces) {
		t.Fatalf("fleet tables_built = %d < %d distinct traces", built, numTraces)
	}
	// Worst case per trace owned by the killed shard: built by the dead
	// incarnation, rebuilt by the interim owner, rebuilt again by the
	// restarted shard if its peer fill times out under load — three
	// builds; plus slack for fills racing the ring transition.
	rebuildBudget := uint64(3*numTraces) + 8
	if built > rebuildBudget {
		t.Fatalf("fleet tables_built = %d across one crash-restart, budget %d — caches are not being shared or routed stably", built, rebuildBudget)
	}
	t.Logf("load: %d requests, %d specs, fleet built %d tables (%d traces), %d peer fills, router stats %+v",
		totalRequests.Load(), totalSpecs.Load(), built, numTraces, h.fleetPeerFills(), h.router.Stats())
}

// TestClusterKillLosesNothing drives a steady stream of single
// requests while a backend dies and returns, asserting the stronger
// per-request property: every response the client actually receives is
// either a correct 200 or an explicitly retryable shed — no 502s, no
// torn bodies, no silent wrong answers.
func TestClusterKillLosesNothing(t *testing.T) {
	const numTraces = 8
	requests := 3000
	if testing.Short() {
		requests = 300
	}
	h := newClusterHarness(t, 3, 25*time.Millisecond)
	refs := buildReferences(t, numTraces, clusterTrace)

	var retriedShed atomic.Uint64
	var done atomic.Bool
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		// Two full kill/restart cycles while the stream runs.
		for cycle := 0; cycle < 2 && !done.Load(); cycle++ {
			time.Sleep(150 * time.Millisecond)
			h.backends[cycle%len(h.backends)].kill()
			time.Sleep(200 * time.Millisecond)
			h.backends[cycle%len(h.backends)].restart(t)
		}
	}()

	for n := 0; n < requests; n++ {
		ti := n % numTraces
		spec := harnessSpecs[n%len(harnessSpecs)]
		body, _ := json.Marshal(service.Request{Trace: clusterTrace(t, ti), Algorithm: spec.algo, Capacity: spec.cap})
		var status int
		var data []byte
		for attempt := 0; ; attempt++ {
			resp, err := h.client.Post(h.ts.URL+"/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("request %d: transport error through the router: %v", n, err)
			}
			data, err = readAllAndClose(resp)
			if err != nil {
				t.Fatalf("request %d: torn response body: %v", n, err)
			}
			status = resp.StatusCode
			if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
				// Shed is the one acceptable non-200: explicitly
				// retryable, Retry-After attached, nothing half-done.
				if resp.Header.Get("Retry-After") == "" {
					t.Fatalf("request %d: shed status %d without Retry-After", n, status)
				}
				retriedShed.Add(1)
				if attempt > 400 {
					t.Fatalf("request %d: still shed after %d attempts", n, attempt)
				}
				time.Sleep(10 * time.Millisecond)
				continue
			}
			break
		}
		if status != http.StatusOK {
			t.Fatalf("request %d: non-retried error %d: %.300s", n, status, data)
		}
		var resp service.Response
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatalf("request %d: 200 with unparseable body: %v", n, err)
		}
		if err := checkAgainstRef(refs, refKey{ti, spec.algo, spec.cap}, resp.Fingerprint, resp.Centers, resp.Cost); err != nil {
			t.Fatalf("request %d: %v", n, err)
		}
	}
	done.Store(true)
	<-killDone
	st := h.router.Stats()
	if st.Ejections == 0 {
		t.Fatal("no ejection recorded — the kill never bit, test proved nothing")
	}
	t.Logf("kill/restart: %d requests, %d shed-and-retried, router stats %+v", requests, retriedShed.Load(), st)
}
