package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"repro/internal/cost"
	"repro/internal/service"
	"repro/internal/trace"
)

// maxPeerTableBytes bounds one peer-fill response. It matches the
// codec's own decode ceiling; a peer advertising more than this is
// cheaper to rebuild from than to download.
const maxPeerTableBytes = 1 << 30

// NewPeerFill returns the service.PeerFillFunc a shard installs to
// adopt tables from peers: GET {peer}/table/{fingerprint}, negotiating
// the compressed pimtab-v2 codec (a v1-only peer ignores the header and
// sends flat tables; both decode), and verify the echoed fingerprint.
// maxTableCells bounds the cell count a payload's header may declare —
// pass the same value as service.Config.MaxTableCells, so a shard never
// adopts a table its own trace guards would refuse to build (<= 0 means
// only the codec's 1 GiB hard ceiling applies). Every failure is an
// error — the service treats any error as a silent fallback to a local
// build, so this client never needs to be clever. The caller's context
// carries the fetch deadline (service.Config.PeerFillTimeout).
func NewPeerFill(client *http.Client, maxTableCells int64) service.PeerFillFunc {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	return func(ctx context.Context, fp trace.Fingerprint, peerURL string) (cost.ResidenceTable, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL+"/table/"+fp.String(), nil)
		if err != nil {
			return cost.ResidenceTable{}, fmt.Errorf("cluster: peer fill: %w", err)
		}
		req.Header.Set(service.TableCodecHeader, cost.TableCodecV2)
		resp, err := client.Do(req)
		if err != nil {
			return cost.ResidenceTable{}, fmt.Errorf("cluster: peer fill: %w", err)
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			return cost.ResidenceTable{}, fmt.Errorf("cluster: peer fill: %s has no table (status %d)", peerURL, resp.StatusCode)
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerTableBytes+1))
		if err != nil {
			return cost.ResidenceTable{}, fmt.Errorf("cluster: peer fill: read: %w", err)
		}
		if len(payload) > maxPeerTableBytes {
			return cost.ResidenceTable{}, fmt.Errorf("cluster: peer fill: table exceeds %d bytes", maxPeerTableBytes)
		}
		gotFP, table, err := cost.DecodeTableAny(payload, maxTableCells)
		if err != nil {
			return cost.ResidenceTable{}, fmt.Errorf("cluster: peer fill: %w", err)
		}
		if gotFP != fp {
			return cost.ResidenceTable{}, fmt.Errorf("cluster: peer fill: payload is for %s, want %s", gotFP, fp)
		}
		return table, nil
	}
}
