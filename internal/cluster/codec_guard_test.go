package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/service"
	"repro/internal/trace"
)

// evilTableServer serves, for every GET /table/{fp} request, a
// well-formed pimtab payload whose fingerprint matches the URL but
// whose declared shape is 100x100x10 = 100k cells — modest on the wire,
// but over any tight cell budget.
func evilTableServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(r.URL.Path, "/")
		fp, err := trace.ParseFingerprint(parts[len(parts)-1])
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload := cost.EncodeTable(fp, cost.NewResidenceTable(100, 100, 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(payload)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestPeerFillRejectsOversizedTablePayload is the GET /table/{fp} adopt
// half of the DoS-guard fix: the peer-fill client used to decode any
// payload under the codec's 1 GiB hard ceiling, so a compromised or
// buggy peer could commit the adopting shard to an allocation its own
// MaxTableCells guard would refuse. With the budget threaded through,
// the decode must fail at the cell limit — before allocating.
func TestPeerFillRejectsOversizedTablePayload(t *testing.T) {
	ts := evilTableServer(t)
	tr, err := trace.Decode(bytes.NewReader([]byte(clusterTrace(t, 2))))
	if err != nil {
		t.Fatal(err)
	}
	fill := NewPeerFill(nil, 4096)
	_, err = fill(context.Background(), tr.Fingerprint(), ts.URL)
	if err == nil {
		t.Fatal("peer fill adopted a table payload over the cell budget")
	}
	if !strings.Contains(err.Error(), "cell limit") {
		t.Fatalf("error %q does not name the cell limit — the payload was rejected for the wrong reason", err)
	}

	// Unlimited (<= 0) keeps only the codec's hard ceiling, so the same
	// payload decodes — which is exactly the pre-fix behaviour the
	// budget exists to close off.
	if _, err := NewPeerFill(nil, 0)(context.Background(), tr.Fingerprint(), ts.URL); err != nil {
		t.Fatalf("unbudgeted peer fill rejected an in-ceiling payload: %v", err)
	}
}

// TestScheduleFallsBackOnOversizedPeerTable drives the same guard end
// to end through a schedule with a peer hint: the oversized payload is
// refused, the shard falls back to a local build, and the request still
// succeeds.
func TestScheduleFallsBackOnOversizedPeerTable(t *testing.T) {
	ts := evilTableServer(t)
	svc := service.New(service.Config{
		MaxTableCells: 4096,
		PeerFill:      NewPeerFill(nil, 4096),
	})
	defer svc.Close()
	resp, err := svc.Schedule(context.Background(), service.Request{
		Trace: clusterTrace(t, 2), Algorithm: "scds", PeerHint: ts.URL,
	})
	if err != nil {
		t.Fatalf("schedule with oversized peer table: %v", err)
	}
	if resp.CacheHit {
		t.Fatal("response claims a cache hit; the poisoned fill must have been a local build")
	}
	st := svc.Stats()
	if st.TablesBuilt != 1 || st.PeerFillFallback != 1 || st.PeerFills != 0 {
		t.Fatalf("stats after poisoned fill: built=%d fallbacks=%d fills=%d, want 1/1/0",
			st.TablesBuilt, st.PeerFillFallback, st.PeerFills)
	}
}

// TestPrefillRejectsOversizedPeerTable covers the POST /table/prefill
// half: a replica push whose source serves an oversized table must be
// refused at the cell limit and adopt nothing.
func TestPrefillRejectsOversizedPeerTable(t *testing.T) {
	ts := evilTableServer(t)
	svc := service.New(service.Config{
		MaxTableCells: 4096,
		PeerFill:      NewPeerFill(nil, 4096),
	})
	defer svc.Close()
	err := svc.Prefill(context.Background(), service.PrefillRequest{
		Trace: clusterTrace(t, 2), PeerHint: ts.URL,
	})
	if err == nil {
		t.Fatal("prefill adopted a table payload over the cell budget")
	}
	if !strings.Contains(err.Error(), "cell limit") {
		t.Fatalf("error %q does not name the cell limit", err)
	}
	if st := svc.Stats(); st.TablesPrefilled != 0 {
		t.Fatalf("tables_prefilled = %d after a rejected prefill, want 0", st.TablesPrefilled)
	}
}

// TestPeerFillNegotiatesV2 pins the wire-format negotiation matrix on a
// real service: no header (or junk) serves pimtab-v1, the negotiation
// token serves pimtab-v2, and both decode to the same cells — so old
// and new peers interoperate in either direction.
func TestPeerFillNegotiatesV2(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	text := clusterTrace(t, 3)
	if _, err := svc.Schedule(context.Background(), service.Request{Trace: text, Algorithm: "scds"}); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(bytes.NewReader([]byte(text)))
	if err != nil {
		t.Fatal(err)
	}
	fp := tr.Fingerprint()

	get := func(codec string) []byte {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/table/"+fp.String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if codec != "" {
			req.Header.Set(service.TableCodecHeader, codec)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /table with codec %q: status %d", codec, resp.StatusCode)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Bytes()
	}

	v1 := get("")
	junk := get("pimtab-v9")
	v2 := get(cost.TableCodecV2)
	if !bytes.HasPrefix(v1, []byte("pimtab-v1\n")) || !bytes.HasPrefix(junk, []byte("pimtab-v1\n")) {
		t.Fatal("unnegotiated GET /table did not serve pimtab-v1")
	}
	if !bytes.HasPrefix(v2, []byte("pimtab-v2\n")) {
		t.Fatal("negotiated GET /table did not serve pimtab-v2")
	}
	if len(v2) >= len(v1) {
		t.Fatalf("v2 payload (%d bytes) not smaller than v1 (%d bytes)", len(v2), len(v1))
	}
	fp1, t1, err := cost.DecodeTableAny(v1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp2, t2, err := cost.DecodeTableAny(v2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp || fp2 != fp {
		t.Fatal("served payloads carry the wrong fingerprint")
	}
	c1, c2 := t1.Cells(), t2.Cells()
	if len(c1) != len(c2) {
		t.Fatalf("cell counts differ: v1 %d, v2 %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("cell %d differs across codecs: v1 %d, v2 %d", i, c1[i], c2[i])
		}
	}
}
