// Package cluster shards the scheduling service across many pimserve
// backends: a consistent-hash ring keyed on trace fingerprints, an HTTP
// router that pins every trace to one shard (so each residence table is
// built once fleet-wide), and a peer cache-fill client that lets a
// shard inheriting a key after ring churn adopt the previous owner's
// table instead of rebuilding it.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultReplicas is the virtual-node count per backend when NewRing is
// given zero. 128 points per backend keeps the expected load imbalance
// across a handful of shards within a few percent, while membership
// changes stay O(replicas log points).
const DefaultReplicas = 128

// Ring is a consistent-hash ring with virtual nodes. Hashing is
// SHA-256-derived, so ownership is a pure function of (members,
// replicas, key): every router instance, and every future process,
// computes the same owner for the same view of the fleet. All methods
// are safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	members  map[string]struct{}
	points   []ringPoint // sorted by hash, ties broken by backend
}

type ringPoint struct {
	hash    uint64
	backend string
}

// NewRing returns an empty ring; replicas <= 0 means DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]struct{})}
}

// ringHash maps a byte string onto the ring's key space. SHA-256
// truncated to 64 bits: stable across processes and Go versions (unlike
// maphash), uniform enough that vnode placement needs no balancing.
func ringHash(data []byte) uint64 {
	sum := sha256.Sum256(data)
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a backend's virtual nodes. Adding a present member is a
// no-op, so health-check readmission needs no separate bookkeeping.
func (r *Ring) Add(backend string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[backend]; ok {
		return
	}
	r.members[backend] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash:    ringHash(fmt.Appendf(nil, "%s#%d", backend, i)),
			backend: backend,
		})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].backend < r.points[b].backend
	})
}

// Remove ejects a backend. Keys it owned move to each arc's next
// backend; everything else keeps its owner — that bounded movement is
// the whole point of consistent hashing.
func (r *Ring) Remove(backend string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[backend]; !ok {
		return
	}
	delete(r.members, backend)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.backend != backend {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports current membership.
func (r *Ring) Has(backend string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[backend]
	return ok
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the backends in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for b := range r.members {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Owner returns the backend owning key: the member whose first virtual
// node sits at or clockwise-after the key's hash. ok is false on an
// empty ring.
func (r *Ring) Owner(key []byte) (backend string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerLocked(key, "")
}

// Owners returns up to n distinct backends for key in ownership order:
// the primary first (identical to Owner), then the next distinct
// backends clockwise around the ring. This is the replication walk —
// with a replication factor R, Owners(key, R)[1:] are the replicas
// that hold a copy of the key's table so the primary's death is a
// failover, not a rebuild. Fewer than n members yields all of them;
// an empty ring yields nil. The returned slice is freshly allocated.
func (r *Ring) Owners(key []byte, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	h := ringHash(key)
	pts := len(r.points)
	start := sort.Search(pts, func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < pts && len(out) < n; i++ {
		p := r.points[(start+i)%pts]
		if !contains(out, p.backend) {
			out = append(out, p.backend)
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// OwnerExcluding returns who would own key if exclude were not a
// member. For a key owned by exclude, that is both the owner before
// exclude joined and the inheritor after it leaves — which makes it the
// peer most likely to hold the key's table already, and therefore the
// peer cache-fill target. ok is false when no other member exists.
func (r *Ring) OwnerExcluding(key []byte, exclude string) (backend string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerLocked(key, exclude)
}

func (r *Ring) ownerLocked(key []byte, exclude string) (string, bool) {
	n := len(r.points)
	if n == 0 {
		return "", false
	}
	h := ringHash(key)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if p.backend != exclude {
			return p.backend, true
		}
	}
	return "", false
}
