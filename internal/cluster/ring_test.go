package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Appendf(nil, "trace-fingerprint-%d", i)
	}
	return keys
}

// Ownership is a pure function of (members, replicas, key): the same
// view must hash identically in every process, every run, every Go
// release — routers never coordinate, they just agree. The golden
// assignment below was computed once and must never drift; a hash
// change silently remaps the whole fleet and orphans every cached
// table.
func TestRingDeterministicOwnershipGolden(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		r.Add("http://b/")
		r.Add("http://a/")
		r.Add("http://c/")
		return r
	}
	golden := []struct {
		key  string
		want string
	}{
		{"trace-fingerprint-0", "http://b/"},
		{"trace-fingerprint-1", "http://b/"},
		{"trace-fingerprint-2", "http://a/"},
		{"trace-fingerprint-3", "http://a/"},
		{"trace-fingerprint-4", "http://a/"},
		{"trace-fingerprint-5", "http://b/"},
		{"trace-fingerprint-6", "http://b/"},
		{"trace-fingerprint-7", "http://a/"},
	}
	r1, r2 := build(), build()
	for _, g := range golden {
		got, ok := r1.Owner([]byte(g.key))
		if !ok || got != g.want {
			t.Errorf("Owner(%q) = %q,%v; golden %q", g.key, got, ok, g.want)
		}
		again, _ := r2.Owner([]byte(g.key))
		if again != got {
			t.Errorf("Owner(%q) differs across identically-built rings: %q vs %q", g.key, got, again)
		}
	}
	// Insertion order must not matter.
	r3 := NewRing(64)
	r3.Add("http://c/")
	r3.Add("http://a/")
	r3.Add("http://b/")
	for _, g := range golden {
		if got, _ := r3.Owner([]byte(g.key)); got != g.want {
			t.Errorf("Owner(%q) = %q after reordered Adds, golden %q", g.key, got, g.want)
		}
	}
}

// Removing 1 of 4 backends must move only the keys the leaver owned —
// about a quarter — and no key between two surviving backends. A naive
// mod-N hash would reshuffle ~75% here, stampeding every shard's cache.
func TestRingBoundedMovementOnLeave(t *testing.T) {
	backends := []string{"http://b0/", "http://b1/", "http://b2/", "http://b3/"}
	r := NewRing(0)
	for _, b := range backends {
		r.Add(b)
	}
	const numKeys = 4000
	keys := ringKeys(numKeys)
	before := make([]string, numKeys)
	for i, k := range keys {
		before[i], _ = r.Owner(k)
	}

	r.Remove(backends[1])
	moved := 0
	for i, k := range keys {
		after, ok := r.Owner(k)
		if !ok {
			t.Fatal("ring emptied by removing one of four backends")
		}
		if after == backends[1] {
			t.Fatalf("key %d still owned by removed backend", i)
		}
		if after != before[i] {
			if before[i] != backends[1] {
				t.Fatalf("key %d moved %s -> %s though neither is the leaver", i, before[i], after)
			}
			moved++
		}
	}
	// The loop above proved every moved key belonged to the leaver, so
	// `moved` is exactly the leaver's share: 1/4 in expectation, plus a
	// few percent of vnode placement variance (deterministic for this
	// key set). A mod-N remap would move ~75% here.
	if limit := numKeys * 28 / 100; moved > limit {
		t.Fatalf("%d/%d keys moved when 1 of 4 backends left; consistent hashing bounds this near %d", moved, numKeys, numKeys/4)
	}
	if moved == 0 {
		t.Fatal("no keys moved — the removed backend owned nothing, ring balance is broken")
	}

	// Rejoin restores the exact prior assignment: membership sets, not
	// membership histories, determine ownership.
	r.Add(backends[1])
	for i, k := range keys {
		if got, _ := r.Owner(k); got != before[i] {
			t.Fatalf("key %d owned by %s after leave+rejoin, was %s", i, got, before[i])
		}
	}
}

// OwnerExcluding(key, owner) is the peer-fill target: it must equal the
// backend that inherits the key once the owner actually leaves.
func TestRingOwnerExcludingMatchesInheritance(t *testing.T) {
	backends := []string{"http://b0/", "http://b1/", "http://b2/", "http://b3/"}
	for _, k := range ringKeys(500) {
		r := NewRing(32)
		for _, b := range backends {
			r.Add(b)
		}
		owner, ok := r.Owner(k)
		if !ok {
			t.Fatal("no owner on a populated ring")
		}
		predicted, ok := r.OwnerExcluding(k, owner)
		if !ok {
			t.Fatal("no excluded owner with three other members")
		}
		if predicted == owner {
			t.Fatalf("OwnerExcluding returned the excluded backend %s", owner)
		}
		r.Remove(owner)
		inherited, _ := r.Owner(k)
		if predicted != inherited {
			t.Fatalf("key %q: predicted inheritor %s, actual %s", k, predicted, inherited)
		}
	}
}

// Owners is the replication walk: Owners(key, n)[0] must be Owner,
// every entry distinct, and — the property failover leans on —
// removing the primary makes the old Owners(key, 2)[1] the new Owner,
// so a pushed replica is by construction the inheritor.
func TestRingOwnersReplicationWalk(t *testing.T) {
	backends := []string{"http://b0/", "http://b1/", "http://b2/", "http://b3/"}
	for _, k := range ringKeys(500) {
		r := NewRing(32)
		for _, b := range backends {
			r.Add(b)
		}
		owners := r.Owners(k, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("key %q: Owners(2) = %v, want two distinct backends", k, owners)
		}
		if primary, _ := r.Owner(k); owners[0] != primary {
			t.Fatalf("key %q: Owners[0] = %s, Owner = %s", k, owners[0], primary)
		}
		all := r.Owners(k, len(backends)+3)
		if len(all) != len(backends) {
			t.Fatalf("key %q: Owners beyond membership returned %v", k, all)
		}
		seen := map[string]bool{}
		for _, b := range all {
			if seen[b] {
				t.Fatalf("key %q: duplicate owner %s in %v", k, b, all)
			}
			seen[b] = true
		}
		r.Remove(owners[0])
		if inherited, _ := r.Owner(k); inherited != owners[1] {
			t.Fatalf("key %q: replica %s is not the inheritor %s", k, owners[1], inherited)
		}
	}
	if got := NewRing(16).Owners([]byte("k"), 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(16)
	if _, ok := r.Owner([]byte("k")); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if _, ok := r.OwnerExcluding([]byte("k"), "x"); ok {
		t.Fatal("empty ring claimed an excluded owner")
	}
	if r.Len() != 0 || len(r.Members()) != 0 {
		t.Fatal("empty ring reports members")
	}

	// Single backend owns everything; excluding it leaves nobody.
	r.Add("http://only/")
	for _, k := range ringKeys(50) {
		if got, ok := r.Owner(k); !ok || got != "http://only/" {
			t.Fatalf("single-member ring: Owner = %q,%v", got, ok)
		}
		if _, ok := r.OwnerExcluding(k, "http://only/"); ok {
			t.Fatal("excluding the only member still found an owner")
		}
	}

	// Duplicate Add and absent Remove are no-ops.
	r.Add("http://only/")
	if r.Len() != 1 {
		t.Fatalf("duplicate Add changed Len to %d", r.Len())
	}
	r.Remove("http://ghost/")
	if r.Len() != 1 || !r.Has("http://only/") {
		t.Fatal("removing an absent backend disturbed membership")
	}
	r.Remove("http://only/")
	if r.Len() != 0 {
		t.Fatal("ring not empty after removing its only member")
	}
	if _, ok := r.Owner([]byte("k")); ok {
		t.Fatal("emptied ring claimed an owner")
	}
}

// Virtual nodes must spread keys roughly evenly: with 128 vnodes per
// backend, no shard of four should stray past ~2x its fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	counts := map[string]int{}
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("http://b%d/", i))
	}
	const numKeys = 8000
	for _, k := range ringKeys(numKeys) {
		owner, _ := r.Owner(k)
		counts[owner]++
	}
	fair := numKeys / 4
	for b, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("backend %s owns %d keys, fair share %d", b, n, fair)
		}
	}
}
