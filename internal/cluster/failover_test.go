package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/service"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Replication, drain migration, and coalescing referees: the acceptance
// harness for replicated ownership. Everything here runs with the
// health loop disabled so ring transitions happen only where the test
// makes them happen.
// ---------------------------------------------------------------------

// TestClusterReplicatedFailoverNoRebuild is acceptance (a): with R=2,
// every table the fleet builds is pushed to the key's replica before
// the primary can die; killing one of three shards then serves every
// subsequent schedule from replicas with zero new table builds and
// zero non-retried errors.
func TestClusterReplicatedFailoverNoRebuild(t *testing.T) {
	const numTraces = 8
	h := newClusterHarness(t, 3, -1) // replication defaults to 2
	refs := buildReferences(t, numTraces, clusterTrace)

	drive := func(phase string) {
		for i := 0; i < numTraces; i++ {
			for _, spec := range harnessSpecs {
				body, _ := json.Marshal(service.Request{
					Trace: clusterTrace(t, i), Algorithm: spec.algo, Capacity: spec.cap,
				})
				status, data, err := retryingPost(h.client, h.ts.URL+"/schedule", body)
				if err != nil || status != http.StatusOK {
					t.Fatalf("%s: trace %d %s: status %d err %v: %.300s", phase, i, spec.algo, status, err, data)
				}
				var resp service.Response
				if err := json.Unmarshal(data, &resp); err != nil {
					t.Fatal(err)
				}
				if err := checkAgainstRef(refs, refKey{i, spec.algo, spec.cap}, resp.Fingerprint, resp.Centers, resp.Cost); err != nil {
					t.Fatalf("%s: %v", phase, err)
				}
			}
		}
	}

	drive("warm")
	h.router.WaitReplicaFills()
	st := h.router.Stats()
	if st.ReplicaFillErrors != 0 {
		t.Fatalf("replica fill errors on a healthy fleet: %+v", st)
	}
	// Every distinct trace must have exactly one pushed copy (R=2: one
	// replica beyond the serving primary).
	if st.ReplicaFills != numTraces {
		t.Fatalf("replica_fills = %d, want %d (one replica per distinct trace)", st.ReplicaFills, numTraces)
	}
	built := h.fleetBuilt()
	if built != numTraces {
		t.Fatalf("fleet tables_built = %d before kill, want %d", built, numTraces)
	}
	var prefilled uint64
	for _, b := range h.backends {
		for _, s := range b.stats() {
			prefilled += s.TablesPrefilled
		}
	}
	if prefilled != numTraces {
		t.Fatalf("fleet tables_prefilled = %d, want %d", prefilled, numTraces)
	}

	// Kill one shard. The first request per key it owned sees a
	// connection error, which the router turns into an ejection plus an
	// in-request retry on the key's next owner — the replica that
	// already adopted the table. No request fails, nothing rebuilds.
	h.backends[0].kill()
	drive("failover")
	h.router.WaitReplicaFills()

	if got := h.fleetBuilt(); got != built {
		var detail string
		for i, b := range h.backends {
			for j, s := range b.stats() {
				detail += fmt.Sprintf("\nbackend %d incarnation %d: built=%d prefilled=%d peer_fills=%d fallbacks=%d requests=%d misses=%d",
					i, j, s.TablesBuilt, s.TablesPrefilled, s.PeerFills, s.PeerFillFallback, s.Requests, s.CacheMisses)
			}
		}
		t.Fatalf("fleet tables_built grew %d -> %d across a single-shard kill with R=2 — failover rebuilt instead of transferring%s\nrouter: %+v",
			built, got, detail, h.router.Stats())
	}
	st = h.router.Stats()
	if st.Ejections != 1 {
		t.Fatalf("ejections = %d, want exactly 1", st.Ejections)
	}
	if st.NoBackend != 0 {
		t.Fatalf("no_backend = %d, want 0 — some request found no owner", st.NoBackend)
	}
}

// TestClusterDrainMigratesSessionsBitIdentical is acceptance (b): a
// drained shard's sessions continue on their new owner, and every
// post-drain fingerprint, sequence number, and schedule is
// bit-identical to an uninterrupted serial replay on a single node.
func TestClusterDrainMigratesSessionsBitIdentical(t *testing.T) {
	const numSessions = 6
	h := newClusterHarness(t, 3, -1)

	// The serial referee: the same create/delta/schedule sequence
	// against one local service, never migrated.
	ref := service.New(service.Config{})
	defer ref.Close()

	type sessionPair struct {
		traceIdx int
		routerID string
		refID    string
	}
	var sessions []sessionPair
	for i := 0; i < numSessions; i++ {
		req := service.CreateSessionRequest{Trace: clusterTrace(t, i), Algorithm: "gomcds"}
		status, body := postJSON(t, h.client, h.ts.URL+"/session", req)
		if status != http.StatusCreated {
			t.Fatalf("create session %d: status %d: %s", i, status, body)
		}
		var info service.SessionInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		refInfo, err := ref.CreateSession(req)
		if err != nil {
			t.Fatal(err)
		}
		if info.Fingerprint != refInfo.Fingerprint {
			t.Fatalf("session %d: creation fingerprint %s, serial %s", i, info.Fingerprint, refInfo.Fingerprint)
		}
		sessions = append(sessions, sessionPair{i, info.SessionID, refInfo.SessionID})
	}

	// One deterministic delta+schedule round against both sides,
	// asserting the routed responses match the serial replay bit for
	// bit (fingerprint chain, seq, centers, cost — everything except
	// the session IDs, which are per-side).
	round := func(phase string, seq int) {
		for _, sp := range sessions {
			dd := delta.Delta{Op: delta.OpAppendWindow, Refs: []delta.Ref{
				{Proc: 0, Data: trace.DataID(sp.traceIdx % 3), Volume: 5 + seq},
				{Proc: 1, Data: trace.DataID((sp.traceIdx + 1) % 3), Volume: 2 + sp.traceIdx},
			}}
			status, body := postJSON(t, h.client, h.ts.URL+"/session/"+sp.routerID+"/delta", dd)
			if status != http.StatusOK {
				t.Fatalf("%s: delta on %s: status %d: %s", phase, sp.routerID, status, body)
			}
			var got service.DeltaResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			want, err := ref.ApplySessionDelta(sp.refID, dd)
			if err != nil {
				t.Fatalf("%s: serial delta: %v", phase, err)
			}
			if got.Seq != want.Seq || got.Fingerprint != want.Fingerprint || got.NumWindows != want.NumWindows {
				t.Fatalf("%s: delta response diverged: routed %+v, serial %+v", phase, got, want)
			}

			status, body = postJSON(t, h.client, h.ts.URL+"/session/"+sp.routerID+"/schedule", struct{}{})
			if status != http.StatusOK {
				t.Fatalf("%s: schedule on %s: status %d: %s", phase, sp.routerID, status, body)
			}
			var gotSched service.SessionScheduleResponse
			if err := json.Unmarshal(body, &gotSched); err != nil {
				t.Fatal(err)
			}
			wantSched, err := ref.ScheduleSession(sp.refID)
			if err != nil {
				t.Fatalf("%s: serial schedule: %v", phase, err)
			}
			if gotSched.Fingerprint != wantSched.Fingerprint || gotSched.Seq != wantSched.Seq ||
				gotSched.Cost != wantSched.Cost || !jsonEqualCenters(gotSched.Centers, wantSched.Centers) {
				t.Fatalf("%s: schedule diverged on %s:\nrouted fp=%s seq=%d cost=%+v\nserial fp=%s seq=%d cost=%+v",
					phase, sp.routerID, gotSched.Fingerprint, gotSched.Seq, gotSched.Cost,
					wantSched.Fingerprint, wantSched.Seq, wantSched.Cost)
			}
		}
	}

	round("pre-drain", 0)

	// Pick a victim that actually holds sessions (creation pins spread
	// by trace fingerprint, so at least one of three shards must).
	victim := -1
	for i, b := range h.backends {
		for _, st := range b.stats() {
			if st.SessionsActive > 0 {
				victim = i
			}
		}
	}
	if victim < 0 {
		t.Fatal("no backend holds a session")
	}
	var migrating int
	for _, st := range h.backends[victim].stats() {
		migrating += st.SessionsActive
	}

	resp, err := h.client.Post(h.ts.URL+"/admin/drain?backend="+h.backends[victim].url(), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAllAndClose(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d: %s", resp.StatusCode, body)
	}
	var drainResp struct {
		Backend  string `json:"backend"`
		Migrated int    `json:"migrated"`
		Failed   int    `json:"failed"`
	}
	if err := json.Unmarshal(body, &drainResp); err != nil {
		t.Fatal(err)
	}
	if drainResp.Failed != 0 || drainResp.Migrated != migrating {
		t.Fatalf("drain migrated %d, failed %d; want %d migrated, 0 failed", drainResp.Migrated, drainResp.Failed, migrating)
	}
	for _, st := range h.backends[victim].stats() {
		if st.SessionsActive != 0 {
			t.Fatalf("drained backend still holds %d sessions", st.SessionsActive)
		}
	}
	if h.router.Ring().Has(h.backends[victim].url()) {
		t.Fatal("drained backend still in the ring")
	}
	if st := h.router.Stats(); st.SessionsMigrated != uint64(migrating) || st.SessionsPinned != numSessions {
		t.Fatalf("router stats after drain: %+v (want %d migrated, %d still pinned)", st, migrating, numSessions)
	}

	// Post-drain rounds: the migrated sessions must continue exactly
	// where they stopped — same fingerprint chain, same schedules.
	round("post-drain", 1)
	round("post-drain-2", 2)

	// Sessions are transferred, never rebuilt: one table per created
	// session fleet-wide, imports included.
	if built := h.fleetBuilt(); built != numSessions {
		t.Fatalf("fleet tables_built = %d, want %d (imports must not rebuild)", built, numSessions)
	}
}

// jsonEqualCenters compares two center matrices by value.
func jsonEqualCenters(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestRouterCoalescesConcurrentIdenticalSingles is acceptance (c): N
// concurrent identical single /schedule requests reach the backend as
// exactly one upstream call, and every caller receives the leader's
// bytes.
func TestRouterCoalescesConcurrentIdenticalSingles(t *testing.T) {
	const followers = 7
	var hits atomic.Uint64
	gate := make(chan struct{})
	var gateOnce sync.Once
	releaseGate := func() { gateOnce.Do(func() { close(gate) }) }
	responseBody := []byte(`{"fingerprint":"stub","centers":[[0]]}`)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/schedule" {
			w.WriteHeader(http.StatusOK)
			return
		}
		hits.Add(1)
		<-gate // hold the upstream call open so followers pile up
		w.Header().Set("Content-Type", "application/json")
		w.Write(responseBody)
	}))
	defer backend.Close()

	rt := NewRouter(RouterConfig{Backends: []string{backend.URL}, HealthInterval: -1})
	ts := httptest.NewServer(rt.Handler())
	// On any exit (incl. a mid-test Fatal) the gate must open before the
	// servers close, or Close would wait forever on the parked handlers.
	defer backend.Close()
	defer rt.Close()
	defer ts.Close()
	defer releaseGate()

	body, _ := json.Marshal(service.Request{Trace: clusterTrace(t, 0), Algorithm: "scds"})
	results := make(chan []byte, followers+2)
	errs := make(chan error, followers+2)
	post := func() {
		resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			errs <- err
			return
		}
		data, err := readAllAndClose(resp)
		if err != nil {
			errs <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
			return
		}
		results <- data
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); post() }()
	// The leader registers its in-flight call before sending upstream,
	// so once the backend has seen the request every later identical
	// request must coalesce.
	waitFor(t, "leader reached backend", func() bool { return hits.Load() == 1 })

	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); post() }()
	}
	waitFor(t, "followers coalesced", func() bool { return rt.Stats().Coalesced == followers })

	// A request with a different spec must NOT coalesce: it opens its
	// own upstream call (which also parks on the gate).
	wg.Add(1)
	go func() {
		defer wg.Done()
		other, _ := json.Marshal(service.Request{Trace: clusterTrace(t, 0), Algorithm: "gomcds"})
		resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", bytes.NewReader(other))
		if err != nil {
			errs <- err
			return
		}
		data, _ := readAllAndClose(resp)
		results <- data
	}()
	waitFor(t, "distinct spec opened its own call", func() bool { return hits.Load() == 2 })

	releaseGate()
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var got int
	for data := range results {
		if !bytes.Equal(data, responseBody) {
			t.Fatalf("caller received %q, want the leader's bytes %q", data, responseBody)
		}
		got++
	}
	if got != followers+2 {
		t.Fatalf("%d callers finished, want %d", got, followers+2)
	}
	st := rt.Stats()
	if hits.Load() != 2 {
		t.Fatalf("backend saw %d /schedule calls, want 2 (one per distinct spec)", hits.Load())
	}
	if st.Requests != 2 {
		t.Fatalf("router requests = %d, want 2 upstream sends", st.Requests)
	}
	if st.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, followers)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPeerFillStallFallsBackWithinDeadline pins the peer-fill deadline
// path: a peer that answers GET /table/{fp} with valid pimtab-v1 header
// bytes and then stalls mid-body must cost the builder at most
// PeerFillTimeout before it falls back to a local build — and the hung
// connection must not outlive the stall.
func TestPeerFillStallFallsBackWithinDeadline(t *testing.T) {
	traceText := clusterTrace(t, 2)
	tr, err := trace.Decode(bytes.NewReader([]byte(traceText)))
	if err != nil {
		t.Fatal(err)
	}
	fp := tr.Fingerprint()
	payload := cost.EncodeTable(fp, cost.NewModel(tr).BuildResidenceTable())

	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseStall := func() { releaseOnce.Do(func() { close(release) }) }
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Valid header and a slice of real body bytes, then silence:
		// the worst kind of sick peer, alive enough to defeat a
		// connect-level check.
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		w.WriteHeader(http.StatusOK)
		w.Write(payload[:40])
		w.(http.Flusher).Flush()
		<-release
	}))
	defer stall.Close()
	defer releaseStall()

	baseline := runtime.NumGoroutine()
	svc := service.New(service.Config{
		PeerFill:        NewPeerFill(nil, 0),
		PeerFillTimeout: 150 * time.Millisecond,
	})
	defer svc.Close()

	start := time.Now()
	resp, err := svc.Schedule(context.Background(), service.Request{
		Trace: traceText, Algorithm: "scds", PeerHint: stall.URL,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("schedule with stalling peer: %v", err)
	}
	if resp.Fingerprint != fp.String() {
		t.Fatalf("fingerprint %s, want %s", resp.Fingerprint, fp.String())
	}
	// Build budget: exactly one local build, one counted fallback, no
	// adopted table.
	st := svc.Stats()
	if st.TablesBuilt != 1 || st.PeerFillFallback != 1 || st.PeerFills != 0 {
		t.Fatalf("stats after stalled fill: built=%d fallbacks=%d fills=%d, want 1/1/0",
			st.TablesBuilt, st.PeerFillFallback, st.PeerFills)
	}
	// The stall must cost about one PeerFillTimeout, not a client or
	// request deadline: generous 10x bound to stay unflaky under -race.
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("fallback took %v, budget is ~PeerFillTimeout (150ms)", elapsed)
	}

	// The aborted fetch must tear down its connection: once the handler
	// unblocks, the process returns to its goroutine baseline (the
	// transport holds no goroutine pinned on the dead read).
	releaseStall()
	stall.CloseClientConnections()
	waitFor(t, "goroutines back to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
}
