package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

// backend is one in-process pimserve shard: a real service.Service
// behind a real HTTP listener.
type backend struct {
	svc *service.Service
	ts  *httptest.Server
}

func newBackend(t testing.TB, cfg service.Config) *backend {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return &backend{svc: svc, ts: ts}
}

func backendURLs(bs []*backend) []string {
	urls := make([]string, len(bs))
	for i, b := range bs {
		urls[i] = b.ts.URL
	}
	return urls
}

// clusterTrace builds the i-th distinct trace text: the lu kernel at
// varying sizes, so fingerprints differ but every trace stays cheap.
func clusterTrace(t testing.TB, i int) string {
	t.Helper()
	gen, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, gen.Generate(4+i%13, grid.Square(2+i%3))); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJSON(t testing.TB, client *http.Client, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func newTestRouter(t testing.TB, cfg RouterConfig) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1 // tests drive CheckHealth explicitly
	}
	rt := NewRouter(cfg)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts
}

// Every request for one trace must land on one shard: fleet-wide
// tables_built stays equal to distinct traces, the invariant the whole
// cluster design exists to hold.
func TestRouterPinsTraceToOneShard(t *testing.T) {
	backends := []*backend{newBackend(t, service.Config{}), newBackend(t, service.Config{}), newBackend(t, service.Config{})}
	_, ts := newTestRouter(t, RouterConfig{Backends: backendURLs(backends)})

	const distinct = 9
	for round := 0; round < 3; round++ {
		for i := 0; i < distinct; i++ {
			status, body := postJSON(t, ts.Client(), ts.URL+"/schedule",
				service.Request{Trace: clusterTrace(t, i), Algorithm: "scds"})
			if status != http.StatusOK {
				t.Fatalf("trace %d round %d: status %d: %s", i, round, status, body)
			}
		}
	}
	var fleetBuilt, shardsUsed uint64
	for _, b := range backends {
		st := b.svc.Stats()
		fleetBuilt += st.TablesBuilt
		if st.Requests > 0 {
			shardsUsed++
		}
	}
	if fleetBuilt != distinct {
		t.Fatalf("fleet tables_built = %d, want %d (one per distinct trace)", fleetBuilt, distinct)
	}
	if shardsUsed < 2 {
		t.Fatalf("only %d of 3 shards saw traffic across %d traces — routing is not spreading", shardsUsed, distinct)
	}
}

func TestRouterEmptyRing503(t *testing.T) {
	rt, ts := newTestRouter(t, RouterConfig{Backends: nil})
	req := service.Request{Trace: clusterTrace(t, 0), Algorithm: "scds"}
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d on empty ring, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 on empty ring lacks Retry-After")
	}
	if st := rt.Stats(); st.NoBackend != 1 {
		t.Fatalf("no_backend = %d, want 1", st.NoBackend)
	}
}

func TestRouterUnroutableBody400(t *testing.T) {
	b := newBackend(t, service.Config{})
	rt, ts := newTestRouter(t, RouterConfig{Backends: backendURLs([]*backend{b})})
	for _, body := range []string{
		`{"algorithm": "scds"}`, // no trace
		`not json`,
		`{"trace": "junk", "algorithm": "scds"}`, // trace won't decode
	} {
		resp, err := ts.Client().Post(ts.URL+"/schedule", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if st := rt.Stats(); st.BadRequests != 3 || st.Requests != 0 {
		t.Fatalf("bad_requests/requests = %d/%d, want 3/0 (nothing proxied)", st.BadRequests, st.Requests)
	}
}

// A backend that dies answers nothing; the router must eject it, re-own
// the key on the shrunken ring, and retry so the client still gets a
// 200 — exactly once, on a live shard.
func TestRouterRetriesOnDeadBackend(t *testing.T) {
	backends := []*backend{newBackend(t, service.Config{}), newBackend(t, service.Config{}), newBackend(t, service.Config{})}
	rt, ts := newTestRouter(t, RouterConfig{Backends: backendURLs(backends)})

	// Find a trace owned by backend 0, then kill backend 0.
	var traceStr string
	for i := 0; i < 100; i++ {
		text := clusterTrace(t, i)
		tr, err := trace.Decode(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		fp := tr.Fingerprint()
		if owner, _ := rt.Ring().Owner(fp[:]); owner == backends[0].ts.URL {
			traceStr = text
			break
		}
	}
	if traceStr == "" {
		t.Fatal("no probe trace hashed to backend 0")
	}
	backends[0].ts.CloseClientConnections()
	backends[0].ts.Close()

	status, body := postJSON(t, ts.Client(), ts.URL+"/schedule",
		service.Request{Trace: traceStr, Algorithm: "scds"})
	if status != http.StatusOK {
		t.Fatalf("status %d after backend death, want 200 via retry: %s", status, body)
	}
	st := rt.Stats()
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if st.Ejections != 1 || rt.Ring().Has(backends[0].ts.URL) {
		t.Fatal("dead backend not ejected from the ring")
	}
	// The survivor now owns the key; the next request goes straight
	// through with no further retry.
	if status, _ := postJSON(t, ts.Client(), ts.URL+"/schedule",
		service.Request{Trace: traceStr, Algorithm: "scds"}); status != http.StatusOK {
		t.Fatalf("status %d on re-request after ejection", status)
	}
	if st := rt.Stats(); st.Retries != 1 {
		t.Fatalf("retries grew to %d on a settled ring", st.Retries)
	}
}

// Health checks are the only readmission path: a 503-ing backend leaves
// the ring on the next sweep and rejoins once it recovers, restoring
// the original key assignment.
func TestRouterHealthEjectAndReadmit(t *testing.T) {
	flaky := newBackend(t, service.Config{})
	steady := newBackend(t, service.Config{})

	// Wrap the flaky backend so health can be toggled without killing
	// the listener.
	var sick atomic.Bool
	wrapped := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			http.Error(w, "sick", http.StatusServiceUnavailable)
			return
		}
		flaky.ts.Config.Handler.ServeHTTP(w, r)
	}))
	defer wrapped.Close()
	setHealthy := func(h bool) { sick.Store(!h) }

	rt, _ := newTestRouter(t, RouterConfig{Backends: []string{wrapped.URL, steady.ts.URL}})
	if rt.Ring().Len() != 2 {
		t.Fatalf("ring starts with %d members, want 2", rt.Ring().Len())
	}

	setHealthy(false)
	rt.CheckHealth()
	if rt.Ring().Has(wrapped.URL) || rt.Ring().Len() != 1 {
		t.Fatal("sick backend still in the ring after a failing sweep")
	}
	if st := rt.Stats(); st.Ejections != 1 {
		t.Fatalf("ejections = %d, want 1", st.Ejections)
	}

	// Sweeps while it stays sick change nothing.
	setHealthy(false)
	rt.CheckHealth()
	if st := rt.Stats(); st.Ejections != 1 || st.Readmissions != 0 {
		t.Fatalf("sweep on a stable-sick fleet moved counters: %+v", st)
	}

	// One passing probe is not enough: readmission needs
	// DefaultReadmitAfter consecutive successes, so the first good sweep
	// only builds streak.
	setHealthy(true)
	rt.CheckHealth()
	if rt.Ring().Has(wrapped.URL) {
		t.Fatal("backend readmitted after a single passing probe")
	}
	if st := rt.Stats(); st.Readmissions != 0 {
		t.Fatalf("readmissions = %d after one passing probe, want 0", st.Readmissions)
	}

	rt.CheckHealth()
	if !rt.Ring().Has(wrapped.URL) || rt.Ring().Len() != 2 {
		t.Fatal("recovered backend not readmitted")
	}
	if st := rt.Stats(); st.Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", st.Readmissions)
	}
}

// A backend that alternates one passing and one failing probe must stay
// out of the ring: before the consecutive-success requirement, every
// good probe readmitted it and every bad one ejected it, remapping its
// keys twice per cycle.
func TestRouterFlappingBackendStaysEjected(t *testing.T) {
	steady := newBackend(t, service.Config{})

	// Scripted backend: /healthz alternates 200 and 503 per probe.
	var probes atomic.Uint64
	flapping := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && probes.Add(1)%2 == 1 {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "flap", http.StatusServiceUnavailable)
	}))
	defer flapping.Close()

	rt, _ := newTestRouter(t, RouterConfig{Backends: []string{flapping.URL, steady.ts.URL}})

	// First sweep probes healthy (probe 1, odd): the member stays.
	rt.CheckHealth()
	if !rt.Ring().Has(flapping.URL) {
		t.Fatal("healthy first probe ejected the backend")
	}
	// Second sweep fails (probe 2): ejected. From here on the backend
	// alternates pass/fail, never reaching two consecutive passes, so
	// it must never rejoin.
	for i := 0; i < 10; i++ {
		rt.CheckHealth()
		if i > 0 && rt.Ring().Has(flapping.URL) {
			t.Fatalf("flapping backend readmitted on sweep %d", i)
		}
	}
	st := rt.Stats()
	if st.Ejections != 1 {
		t.Fatalf("ejections = %d, want exactly 1 (eject once, stay out)", st.Ejections)
	}
	if st.Readmissions != 0 {
		t.Fatalf("readmissions = %d, want 0 for a flapping backend", st.Readmissions)
	}
}

// The pin map must forget sessions: any 2xx DELETE observed through the
// router removes the pin, and ejecting a backend drops the pins of the
// sessions that died with it. Before the fix both paths leaked an entry
// per session forever.
func TestRouterSessionPinMapForgets(t *testing.T) {
	backends := []*backend{newBackend(t, service.Config{}), newBackend(t, service.Config{})}
	rt, ts := newTestRouter(t, RouterConfig{Backends: backendURLs(backends)})

	ids := make([]string, 8)
	for i := range ids {
		status, body := postJSON(t, ts.Client(), ts.URL+"/session",
			service.CreateSessionRequest{Trace: clusterTrace(t, i), Algorithm: "scds"})
		if status != http.StatusCreated {
			t.Fatalf("create session %d: status %d: %s", i, status, body)
		}
		var info struct {
			SessionID string `json:"session_id"`
		}
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		ids[i] = info.SessionID
	}
	if st := rt.Stats(); st.SessionsPinned != len(ids) {
		t.Fatalf("sessions_pinned = %d, want %d", st.SessionsPinned, len(ids))
	}

	// Delete half through the router: each observed 2xx must unpin.
	for _, id := range ids[:4] {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+id, nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readAllAndClose(resp)
		if resp.StatusCode/100 != 2 {
			t.Fatalf("delete %s: status %d", id, resp.StatusCode)
		}
	}
	if st := rt.Stats(); st.SessionsPinned != 4 {
		t.Fatalf("sessions_pinned = %d after 4 deletes, want 4 (pin map leak)", st.SessionsPinned)
	}

	// Ejecting a backend must drop the pins of its sessions: they died
	// with the process, and a retained pin is both a memory leak and a
	// guaranteed-failing route.
	for _, b := range backends {
		rt.eject(b.ts.URL)
	}
	if st := rt.Stats(); st.SessionsPinned != 0 {
		t.Fatalf("sessions_pinned = %d after ejecting every backend, want 0", st.SessionsPinned)
	}
}

// Session traffic follows the pin, not the ring: every request for a
// session lands on the shard that created it, and deletion unpins.
func TestRouterSessionPinning(t *testing.T) {
	backends := []*backend{newBackend(t, service.Config{}), newBackend(t, service.Config{}), newBackend(t, service.Config{})}
	rt, ts := newTestRouter(t, RouterConfig{Backends: backendURLs(backends)})

	ids := make([]string, 6)
	for i := range ids {
		status, body := postJSON(t, ts.Client(), ts.URL+"/session",
			service.CreateSessionRequest{Trace: clusterTrace(t, i), Algorithm: "scds"})
		if status != http.StatusCreated {
			t.Fatalf("create session %d: status %d: %s", i, status, body)
		}
		var info struct {
			SessionID string `json:"session_id"`
		}
		if err := json.Unmarshal(body, &info); err != nil || info.SessionID == "" {
			t.Fatalf("create session %d: bad body %s", i, body)
		}
		ids[i] = info.SessionID
	}
	if st := rt.Stats(); st.SessionsPinned != len(ids) {
		t.Fatalf("sessions_pinned = %d, want %d", st.SessionsPinned, len(ids))
	}

	// Schedule each session several times through the router; a
	// mis-pinned request would 404 on the wrong shard.
	for _, id := range ids {
		for round := 0; round < 3; round++ {
			status, body := postJSON(t, ts.Client(), ts.URL+"/session/"+id+"/schedule", struct{}{})
			if status != http.StatusOK {
				t.Fatalf("session %s schedule: status %d: %s", id, status, body)
			}
		}
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+ids[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete session: status %d", resp.StatusCode)
	}
	if st := rt.Stats(); st.SessionsPinned != len(ids)-1 {
		t.Fatalf("sessions_pinned = %d after delete, want %d", st.SessionsPinned, len(ids)-1)
	}

	// Unknown and deleted sessions are 404s at the router.
	for _, id := range []string{ids[0], "no-such-session"} {
		status, _ := postJSON(t, ts.Client(), ts.URL+"/session/"+id+"/schedule", struct{}{})
		if status != http.StatusNotFound {
			t.Fatalf("session %q: status %d, want 404", id, status)
		}
	}
}

// With peer fill on, a shard that (re)joins the ring inherits keys
// from whichever shard served them in its absence — and the router's
// hint (OwnerExcluding the new owner) names exactly that shard, so the
// joiner adopts the cached table instead of rebuilding. Fleet-wide
// tables_built stays at one per trace across the membership change.
func TestRouterPeerFillAcrossChurn(t *testing.T) {
	fill := NewPeerFill(nil, 0)
	mk := func() *backend { return newBackend(t, service.Config{PeerFill: fill}) }
	backends := []*backend{mk(), mk(), mk()}
	rt, ts := newTestRouter(t, RouterConfig{Backends: backendURLs(backends), PeerFill: true})

	// Take backend 2 out (down for maintenance) and find a trace whose
	// key belongs to it on the full ring: while it is away, another
	// shard owns the key; when it returns, the key moves back.
	joiner := backends[2].ts.URL
	rt.Ring().Remove(joiner)
	var text string
	var interim string
	for i := 0; i < 200; i++ {
		cand := clusterTrace(t, i)
		tr, err := trace.Decode(strings.NewReader(cand))
		if err != nil {
			t.Fatal(err)
		}
		fp := tr.Fingerprint()
		ownerWhileAway, _ := rt.Ring().Owner(fp[:])
		full := NewRing(0)
		for _, b := range backendURLs(backends) {
			full.Add(b)
		}
		ownerWhenBack, _ := full.Owner(fp[:])
		if ownerWhenBack == joiner {
			text, interim = cand, ownerWhileAway
			break
		}
	}
	if text == "" {
		t.Fatal("no probe trace moves to the joining backend")
	}

	if status, body := postJSON(t, ts.Client(), ts.URL+"/schedule",
		service.Request{Trace: text, Algorithm: "scds"}); status != http.StatusOK {
		t.Fatalf("status %d while joiner away: %s", status, body)
	}

	rt.Ring().Add(joiner) // readmission
	if status, body := postJSON(t, ts.Client(), ts.URL+"/schedule",
		service.Request{Trace: text, Algorithm: "scds"}); status != http.StatusOK {
		t.Fatalf("status %d after rejoin: %s", status, body)
	}

	var fleetBuilt, fleetFills uint64
	for _, b := range backends {
		st := b.svc.Stats()
		fleetBuilt += st.TablesBuilt
		fleetFills += st.PeerFills
	}
	if fleetBuilt != 1 {
		t.Fatalf("fleet tables_built = %d across churn, want 1 (joiner should adopt %s's table, not rebuild)", fleetBuilt, interim)
	}
	if fleetFills != 1 {
		t.Fatalf("fleet peer_fills = %d, want 1", fleetFills)
	}
	joinerStats := backends[2].svc.Stats()
	if joinerStats.PeerFills != 1 || joinerStats.TablesBuilt != 0 {
		t.Fatalf("joiner peer_fills/built = %d/%d, want 1/0", joinerStats.PeerFills, joinerStats.TablesBuilt)
	}
	if st := rt.Stats(); st.PeerHints == 0 {
		t.Fatal("router never attached a peer hint with PeerFill on")
	}
}

// The router's own endpoints: /metrics exposes pim_router_* series,
// /healthz tracks ring emptiness, /stats is valid JSON.
func TestRouterObservability(t *testing.T) {
	b := newBackend(t, service.Config{})
	rt, ts := newTestRouter(t, RouterConfig{Backends: backendURLs([]*backend{b})})
	if status, _ := postJSON(t, ts.Client(), ts.URL+"/schedule",
		service.Request{Trace: clusterTrace(t, 0), Algorithm: "scds"}); status != http.StatusOK {
		t.Fatalf("schedule via router: status %d", status)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"pim_router_requests_total 1",
		"pim_router_retries_total 0",
		"pim_router_ejections_total 0",
		"pim_router_readmissions_total 0",
		"pim_router_no_backend_total 0",
		"pim_router_backends_healthy 1",
		"pim_router_request_duration_seconds_bucket",
	} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("metrics exposition lacks %q", series)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz: %d", resp.StatusCode)
	}
	rt.Ring().Remove(b.ts.URL)
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router healthz with empty ring: %d, want 503", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st RouterStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || len(st.Backends) != 1 {
		t.Fatalf("stats snapshot %+v", st)
	}
}

// The background health loop runs without manual driving and notices a
// death within a couple of intervals.
func TestRouterBackgroundHealthLoop(t *testing.T) {
	b1 := newBackend(t, service.Config{})
	b2 := newBackend(t, service.Config{})
	rt := NewRouter(RouterConfig{
		Backends:       []string{b1.ts.URL, b2.ts.URL},
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
	})
	defer rt.Close()

	b1.ts.CloseClientConnections()
	b1.ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Ring().Has(b1.ts.URL) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if rt.Ring().Has(b1.ts.URL) {
		t.Fatal("health loop never ejected a dead backend")
	}
	if !rt.Ring().Has(b2.ts.URL) {
		t.Fatal("health loop ejected a live backend")
	}
}
